#!/bin/sh
# The repo's verify loop: build, vet (plus staticcheck when installed), tests,
# the race detector over the full suite (the parallel sweep runner and the
# shared topology cache are exercised concurrently by the exp tests, so -race
# is load-bearing here), and finally a benchmark regression guard comparing
# BenchmarkEventEngine against the recorded baseline in BENCH_PR1.json.
#
# Set SKIP_BENCH_GUARD=1 to skip the benchmark guard (e.g. on a loaded or
# throttled machine where timings are meaningless).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping (go vet already ran)"
fi

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

# Crash-path gate: churn storms and recovery paths under injected message
# faults, with the full invariant checker run at every quiescence point.
# -count=1 defeats the test cache so the gate always actually executes.
echo "== fault-injection invariant gate"
go test ./internal/core -count=1 \
    -run '^(TestChurnStormUnderFaults|TestRecoveryPathsUnderFaults|TestSustainedChurnKeepsInvariants)$'

# Determinism gate: with the fault layer compiled in but disabled, sweep
# output must stay byte-identical to a build with no fault layer armed.
echo "== fault-layer-off determinism gate"
go test ./internal/exp -count=1 \
    -run '^(TestFaultLayerOffIsByteIdentical|TestParallelSweepDeterminism)$'

# Cross-runtime conformance gate: the same join/store/crash/lookup scenario
# on the DES, the live goroutine runtime and the TCP socket runtime, the
# structural audit green on all three, under the race detector. -count=1 so
# the wall-clock halves always execute.
echo "== cross-runtime conformance gate (DES vs live vs net, -race)"
go test -race ./internal/conformance -count=1

# Allocation budgets: the event-engine hot path must stay at zero allocs per
# event, and a no-churn lookup must stay within its per-op budget. -count=1
# defeats the cache; these are the cheap tripwires for the pooling work.
echo "== allocation budget gate (event engine, lookup path, histogram record)"
go test . -count=1 -run '^(TestEventEngineAllocFree|TestLookupAllocBudget)$'
go test ./internal/obs -count=1 -run '^TestHistogramRecordAllocFree$'

# Routing-seam gate: Kademlia baseline unit tests, four-arm baseline
# determinism (two full RunBaselines passes byte-identical), the α-parallel
# + path-cache ablation acceptance test, and the path-cache invalidation
# suite under churn. -count=1 defeats the cache so the gates always execute.
echo "== routing-seam gate (kad, baseline determinism, alpha/path-cache ablation)"
go test ./internal/kad -count=1
go test ./internal/exp -count=1 \
    -run '^(TestBaselinesDeterminism|TestAblationRoutingGate)$'
go test ./internal/core -count=1 \
    -run '^(TestPathCache|TestAlphaProbes)'

# Introspection smoke gate: boot a live hybridnode with -http, poll /healthz
# until the ring-health sampler reports healthy, and assert /metrics serves
# well-formed Prometheus exposition (see scripts/introspect_smoke.sh).
echo "== introspection smoke gate (hybridnode -http)"
sh ./scripts/introspect_smoke.sh

# Multi-process smoke gate: a 3-process hybridnode TCP cluster on loopback —
# cross-process store/lookup, a SIGKILLed worker, /healthz back to green on
# the survivors, clean SIGTERM shutdown (see scripts/net_smoke.sh).
echo "== multi-process socket smoke gate (hybridnode -addr/-bootstrap)"
sh ./scripts/net_smoke.sh

# Replication smoke gate: a 4-process cluster at k=3 stores 50 keys through
# the /kv surface, both all-s workers are SIGKILLed, and every key must still
# be readable with /healthz back at zero replica deficit (see
# scripts/replication_smoke.sh).
echo "== replication smoke gate (hybridnode -k 3, /kv, 2-process kill)"
sh ./scripts/replication_smoke.sh

# Quick scale point: one reduced build-and-drive pass through the Scale
# experiment (peers/GB, events/sec). Catches OOM-class regressions in the
# dense peer/finger tables; the full 10k/100k/1M ladder is `make benchscale`
# and `go run ./cmd/paperexp -run Scale`.
echo "== quick scale sweep (Scale, n=2000)"
go run ./cmd/paperexp -run Scale -quick -n 2000 >/dev/null

if [ "${SKIP_BENCH_GUARD:-0}" = "1" ]; then
    echo "== bench guard skipped (SKIP_BENCH_GUARD=1)"
else
    echo "== bench guard: BenchmarkEventEngine vs BENCH_PR1.json (best of 3, 20% tolerance)"
    go test -run='^$' -bench='^BenchmarkEventEngine$' -benchtime=2s -count=3 . \
        | go run ./cmd/benchjson -baseline BENCH_PR1.json -bench BenchmarkEventEngine -tolerance 0.2
fi

echo "check: OK"

#!/bin/sh
# The repo's verify loop: build, vet, tests, then the race detector over the
# full suite (the parallel sweep runner and the shared topology cache are
# exercised concurrently by the exp tests, so -race is load-bearing here).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"

#!/bin/sh
# kv_bench.sh — automated k-sweep of the /kv HTTP surface on a live cluster.
#
# For each replication factor k in 1, 2, 3 the script boots a fresh
# 2-process hybridnode TCP cluster on loopback, drives NOPS PUTs and NOPS
# GETs through the bootstrap's /kv endpoint, and records the p50/p99
# wall-clock latency of each phase. Results land in one JSON document so a
# plotting pipeline (or the CI log) can compare the cost of replication on
# the client-facing path.
#
# Environment knobs:
#
#   OUT        output JSON path (default: kv_bench.json in the repo root)
#   NOPS       operations per phase per k (default 40)
#   BASE_PORT  first cluster port; sweep point i uses BASE_PORT+10*i
#              (default 7600)
#   PEERS      peers per process (default 8)
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-kv_bench.json}
NOPS=${NOPS:-40}
BASE_PORT=${BASE_PORT:-7600}
PEERS=${PEERS:-8}

TMP=$(mktemp -d /tmp/kv-bench.XXXXXX)
BOOT_PID=""
WORK_PID=""

stop_cluster() {
    for pid in "$BOOT_PID" "$WORK_PID"; do
        [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "$BOOT_PID" "$WORK_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    BOOT_PID=""
    WORK_PID=""
}

cleanup() {
    for pid in "$BOOT_PID" "$WORK_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "kv_bench: $1" >&2
    for log in boot worker; do
        [ -f "$TMP/$log.log" ] && { echo "--- $log ---" >&2; cat "$TMP/$log.log" >&2; }
    done
    exit 1
}

# await_line PID LOG PATTERN TRIES — poll a log for a line, failing if the
# process dies first.
await_line() {
    i=0
    while ! grep -q "$3" "$2" 2>/dev/null; do
        kill -0 "$1" 2>/dev/null || fail "process died waiting for '$3' in $2"
        i=$((i + 1))
        [ "$i" -gt "$4" ] && fail "timeout waiting for '$3' in $2"
        sleep 0.2
    done
}

# pctl FILE P — the P-th percentile (nearest-rank) of the sorted
# one-number-per-line FILE, converted from seconds to milliseconds.
pctl() {
    sort -g "$1" | awk -v p="$2" '
        { v[NR] = $1 }
        END {
            if (NR == 0) { print "0"; exit }
            r = int((p / 100) * NR + 0.999999)
            if (r < 1) r = 1
            if (r > NR) r = NR
            printf "%.3f", v[r] * 1000
        }'
}

echo "building hybridnode..."
go build -o "$TMP/hybridnode" ./cmd/hybridnode

command -v curl >/dev/null 2>&1 || { echo "kv_bench: curl not found" >&2; exit 1; }

printf '{\n  "bench": "kv",\n  "ops_per_phase": %d,\n  "peers_per_process": %d,\n  "results": [\n' \
    "$NOPS" "$PEERS" > "$OUT.tmp"

POINT=0
for K in 1 2 3; do
    PORT=$((BASE_PORT + 10 * POINT))
    HTTP="127.0.0.1:$((PORT + 100))"
    echo "== k=$K: cluster on 127.0.0.1:$PORT (http $HTTP) =="

    # The bootstrap runs t-peers only so k-1 ring successors always exist for
    # replica chains; the worker adds a mixed population.
    "$TMP/hybridnode" -addr "127.0.0.1:$PORT" -http "$HTTP" -role t \
        -n "$PEERS" -items 4 -keys 4 -lookups 4 -crash 0 -k "$K" \
        -linger 10m > "$TMP/boot.log" 2>&1 &
    BOOT_PID=$!
    await_line "$BOOT_PID" "$TMP/boot.log" '^lingering ' 300

    "$TMP/hybridnode" -addr "127.0.0.1:$((PORT + 1))" -bootstrap "127.0.0.1:$PORT" \
        -n "$PEERS" -items 0 -keys 4 -lookups 4 -crash 0 -k "$K" \
        -linger 10m > "$TMP/worker.log" 2>&1 &
    WORK_PID=$!
    await_line "$WORK_PID" "$TMP/worker.log" '^lingering ' 300

    : > "$TMP/put.times"
    : > "$TMP/get.times"
    i=0
    while [ $i -lt "$NOPS" ]; do
        curl -fsS -o /dev/null -w '%{time_total}\n' -X PUT \
            --data "value-$K-$i" "http://$HTTP/kv/bench-$K-$i" \
            >> "$TMP/put.times" || fail "PUT bench-$K-$i failed"
        i=$((i + 1))
    done
    i=0
    while [ $i -lt "$NOPS" ]; do
        curl -fsS -o /dev/null -w '%{time_total}\n' \
            "http://$HTTP/kv/bench-$K-$i" \
            >> "$TMP/get.times" || fail "GET bench-$K-$i failed"
        i=$((i + 1))
    done

    PUT50=$(pctl "$TMP/put.times" 50)
    PUT99=$(pctl "$TMP/put.times" 99)
    GET50=$(pctl "$TMP/get.times" 50)
    GET99=$(pctl "$TMP/get.times" 99)
    echo "   put p50=${PUT50}ms p99=${PUT99}ms   get p50=${GET50}ms p99=${GET99}ms"

    [ $POINT -gt 0 ] && printf ',\n' >> "$OUT.tmp"
    printf '    {"k": %d, "put_p50_ms": %s, "put_p99_ms": %s, "get_p50_ms": %s, "get_p99_ms": %s}' \
        "$K" "$PUT50" "$PUT99" "$GET50" "$GET99" >> "$OUT.tmp"

    stop_cluster
    POINT=$((POINT + 1))
done

printf '\n  ]\n}\n' >> "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "kv_bench: wrote $OUT"

#!/bin/sh
# Introspection smoke gate: start a live hybridnode cluster with -http, poll
# /healthz until the ring-health sampler reports healthy, and assert /metrics
# serves well-formed Prometheus text exposition including the lookup latency
# histogram. Complements the in-tree test (internal/introspect) by exercising
# the real binary end to end, flags and all.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
HN_PID=""
cleanup() {
    [ -n "$HN_PID" ] && kill "$HN_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/hybridnode" ./cmd/hybridnode

# Port 0 lets the kernel pick; the bound address is parsed from the banner.
"$TMP/hybridnode" -n 64 -items 50 -lookups 50 -crash 4 \
    -http 127.0.0.1:0 -linger 60s > "$TMP/hybridnode.log" 2>&1 &
HN_PID=$!

ADDR=""
i=0
while [ $i -lt 50 ]; do
    ADDR=$(sed -n 's|^introspection: http://\([^/]*\)/.*|\1|p' "$TMP/hybridnode.log")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$HN_PID" 2>/dev/null; then
        echo "introspect smoke: hybridnode exited before serving" >&2
        cat "$TMP/hybridnode.log" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "introspect smoke: no introspection banner within 10s" >&2
    cat "$TMP/hybridnode.log" >&2
    exit 1
fi

# Poll /healthz until the sampler verdict is healthy (200). The cluster is
# joining and crash-recovering underneath, so 503s are expected transients.
healthy=0
i=0
while [ $i -lt 150 ]; do
    if curl -fsS -o "$TMP/healthz.json" "http://$ADDR/healthz" 2>/dev/null; then
        healthy=1
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$healthy" != "1" ]; then
    echo "introspect smoke: /healthz never reported healthy" >&2
    curl -sS "http://$ADDR/healthz" >&2 || true
    exit 1
fi
grep -q '"healthy": true' "$TMP/healthz.json" || {
    echo "introspect smoke: /healthz 200 without healthy verdict" >&2
    cat "$TMP/healthz.json" >&2
    exit 1
}

# /metrics: well-formed exposition with the sampler gauges and, once lookups
# have run, the lookup latency histogram (poll briefly for the latter).
i=0
while [ $i -lt 150 ]; do
    curl -fsS -o "$TMP/metrics.txt" "http://$ADDR/metrics"
    if grep -q '^# TYPE lookup_latency_us histogram$' "$TMP/metrics.txt"; then
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
for want in \
    '^# TYPE lookup_latency_us histogram$' \
    '^lookup_latency_us_bucket{le="+Inf"} ' \
    '^lookup_latency_us_count ' \
    '^# TYPE health_live_peers gauge$' \
    '^# TYPE health_samples counter$'
do
    grep -q "$want" "$TMP/metrics.txt" || {
        echo "introspect smoke: /metrics missing $want" >&2
        head -40 "$TMP/metrics.txt" >&2
        exit 1
    }
done
# Every non-comment line must be exactly "name value".
if awk '!/^#/ && NF != 2 { bad = 1 } END { exit bad }' "$TMP/metrics.txt"; then :; else
    echo "introspect smoke: malformed exposition line in /metrics" >&2
    exit 1
fi

echo "introspect smoke: OK (addr=$ADDR)"

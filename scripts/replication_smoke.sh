#!/bin/sh
# Replication smoke gate: a 4-process hybridnode cluster at k=3 must survive
# losing half its processes without losing a single key. The bootstrap runs
# t-peers only (so replica chains have somewhere to live), worker 1 is mixed,
# and workers 2 and 3 are forced all-s — under spread placement their s-peers
# hold real data bytes, so SIGKILLing both is genuine data loss at k=1 and a
# pure recovery exercise at k=3: every key must still be readable through the
# owners' authoritative copies and replica chains, and /healthz must settle
# back to a zero replica deficit. Keys go in and come out through the /kv
# HTTP surface, so the client-facing store path is exercised end to end.
set -eu

cd "$(dirname "$0")/.."

KEYS=50

TMP=$(mktemp -d)
BOOT_PID=""
W1_PID=""
W2_PID=""
W3_PID=""
cleanup() {
    for pid in "$BOOT_PID" "$W1_PID" "$W2_PID" "$W3_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "replication smoke: $1" >&2
    for log in boot w1 w2 w3; do
        [ -f "$TMP/$log.log" ] && { echo "--- $log ---" >&2; cat "$TMP/$log.log" >&2; }
    done
    exit 1
}

# await_line PID LOG PATTERN TRIES — poll a log for a line, failing if the
# process dies first.
await_line() {
    i=0
    while ! grep -q "$3" "$2" 2>/dev/null; do
        kill -0 "$1" 2>/dev/null || fail "process died waiting for '$3' in $2"
        i=$((i + 1))
        [ $i -gt "$4" ] && fail "timeout waiting for '$3' in $2"
        sleep 0.2
    done
}

# await_healthz NAME ADDR — poll /healthz until it reports healthy with a
# zero replica deficit (the replication invariant as seen by the sampler).
await_healthz() {
    i=0
    while :; do
        if curl -fsS -o "$TMP/$1.healthz" "http://$2/healthz" 2>/dev/null \
            && grep -q '"healthy": true' "$TMP/$1.healthz" \
            && grep -q '"replica_deficit": 0' "$TMP/$1.healthz"; then
            return 0
        fi
        i=$((i + 1))
        [ $i -gt 300 ] && fail "$1 /healthz never reached healthy with zero replica deficit"
        sleep 0.2
    done
}

# http_addr LOG — extract the introspection address from the banner.
http_addr() {
    sed -n 's|^introspection: http://\([^/]*\)/.*|\1|p' "$1"
}

# cluster_ep LOG — extract the node's cluster endpoint from the banner.
cluster_ep() {
    sed -n 's|^socket transport: .* node at \(.*\)$|\1|p' "$1"
}

go build -o "$TMP/hybridnode" ./cmd/hybridnode

COMMON="-n 8 -k 3 -items 0 -lookups 0 -crash 0 -linger 300s"

# 1. Bootstrap: hosts the server; all eight of its peers are t-peers so the
# ring is deep enough for k=3 replica chains from the start.
"$TMP/hybridnode" -addr 127.0.0.1:0 -http 127.0.0.1:0 -role t \
    $COMMON > "$TMP/boot.log" 2>&1 &
BOOT_PID=$!
await_line "$BOOT_PID" "$TMP/boot.log" '^lingering' 300
BOOT_EP=$(cluster_ep "$TMP/boot.log")
BOOT_HTTP=$(http_addr "$TMP/boot.log")
[ -n "$BOOT_EP" ] || fail "no cluster endpoint in bootstrap banner"
[ -n "$BOOT_HTTP" ] || fail "no introspection endpoint in bootstrap banner"

# 2. Worker 1: a mixed-role survivor with its own /kv endpoint, so reads
# after the kill go through a process that stored nothing itself.
"$TMP/hybridnode" -addr 127.0.0.1:0 -bootstrap "$BOOT_EP" -http 127.0.0.1:0 \
    $COMMON > "$TMP/w1.log" 2>&1 &
W1_PID=$!
await_line "$W1_PID" "$TMP/w1.log" '^lingering' 300
W1_HTTP=$(http_addr "$TMP/w1.log")
[ -n "$W1_HTTP" ] || fail "no introspection endpoint in worker1 banner"

# 3. Workers 2 and 3: forced all-s, the future SIGKILL victims. Their s-peers
# attach under the surviving processes' t-peers and will hold spread data.
"$TMP/hybridnode" -addr 127.0.0.1:0 -bootstrap "$BOOT_EP" -role s \
    $COMMON > "$TMP/w2.log" 2>&1 &
W2_PID=$!
await_line "$W2_PID" "$TMP/w2.log" '^lingering' 300
"$TMP/hybridnode" -addr 127.0.0.1:0 -bootstrap "$BOOT_EP" -role s \
    $COMMON > "$TMP/w3.log" 2>&1 &
W3_PID=$!
await_line "$W3_PID" "$TMP/w3.log" '^lingering' 300

await_healthz boot "$BOOT_HTTP"

# 4. Store the key universe through the bootstrap's /kv surface. A request
# can hit a transient routing window during settling, so each key retries.
i=0
while [ $i -lt $KEYS ]; do
    ok=0
    tries=0
    while [ $tries -lt 10 ]; do
        if curl -fsS -X PUT --data "value-$i" \
            "http://$BOOT_HTTP/kv/smoke-$i" >/dev/null 2>&1; then
            ok=1
            break
        fi
        tries=$((tries + 1))
        sleep 0.3
    done
    [ "$ok" = "1" ] || fail "PUT smoke-$i never succeeded"
    i=$((i + 1))
done

# 5. The cluster must report zero replica deficit once the chains settle, and
# every key must be readable cross-process before the kill.
await_healthz boot "$BOOT_HTTP"
await_healthz w1 "$W1_HTTP"
i=0
while [ $i -lt $KEYS ]; do
    GOT=$(curl -fsS "http://$W1_HTTP/kv/smoke-$i" 2>/dev/null) \
        || fail "pre-kill GET smoke-$i via worker1 failed"
    [ "$GOT" = "value-$i" ] || fail "pre-kill smoke-$i returned '$GOT'"
    i=$((i + 1))
done

# 6. SIGKILL both all-s workers at once: sixteen peers — and whatever data
# was spread onto them — vanish mid-heartbeat.
kill -9 "$W2_PID" "$W3_PID"
wait "$W2_PID" 2>/dev/null || true
wait "$W3_PID" 2>/dev/null || true
W2_PID=""
W3_PID=""

# 7. Survivors must repair the trees and re-converge to zero replica deficit.
sleep 2
await_healthz boot "$BOOT_HTTP"
await_healthz w1 "$W1_HTTP"

# 8. Every key must still be readable through the survivor: served from the
# owners' authoritative copies and replica chains, with read-repair filling
# the holes the dead s-peers left. Retries absorb in-flight repair.
i=0
while [ $i -lt $KEYS ]; do
    ok=0
    tries=0
    while [ $tries -lt 25 ]; do
        GOT=$(curl -fsS "http://$W1_HTTP/kv/smoke-$i" 2>/dev/null) || GOT=""
        if [ "$GOT" = "value-$i" ]; then
            ok=1
            break
        fi
        tries=$((tries + 1))
        sleep 0.2
    done
    [ "$ok" = "1" ] || fail "key smoke-$i lost after killing both s-workers"
    i=$((i + 1))
done

# 9. Clean shutdown: SIGTERM both survivors; the signal handler must close
# the runtime and exit 0.
kill -TERM "$BOOT_PID" "$W1_PID"
wait "$BOOT_PID" || fail "bootstrap exited nonzero after SIGTERM"
BOOT_PID=""
wait "$W1_PID" || fail "worker1 exited nonzero after SIGTERM"
W1_PID=""

echo "replication smoke: OK ($KEYS/$KEYS keys survived losing 2 of 4 processes at k=3)"

#!/bin/sh
# run_cluster.sh — launch an N-process hybridnode TCP cluster on loopback.
#
#   scripts/run_cluster.sh [NODES] [PEERS_PER_NODE]
#
# Node 0 is the bootstrap: it hosts the well-known server, brokers address
# allocation, and stores the shared key universe. Every other node is a
# worker that joins the same ring over TCP and looks the keys up. Each node
# gets its own log and introspection endpoint; a servers.json manifest maps
# node -> {role, cluster endpoint, http endpoint, pid, log} for tooling.
#
# The cluster keeps running (all nodes linger) until this script receives
# INT/TERM or LINGER expires; on shutdown every node is SIGTERMed and its
# exit code reported. Environment knobs:
#
#   RUN_DIR    where logs and the manifest land (default: mktemp -d)
#   BASE_PORT  first cluster port; node i listens on BASE_PORT+i and serves
#              introspection on BASE_PORT+100+i (default 7400)
#   ITEMS      size of the shared key universe (default 40)
#   LINGER     how long nodes linger after their phases (default 10m)
set -eu

cd "$(dirname "$0")/.."

NODES=${1:-3}
PEERS=${2:-8}
BASE_PORT=${BASE_PORT:-7400}
ITEMS=${ITEMS:-40}
LINGER=${LINGER:-10m}
RUN_DIR=${RUN_DIR:-$(mktemp -d /tmp/hybridnode-cluster.XXXXXX)}
mkdir -p "$RUN_DIR"

if [ "$NODES" -lt 2 ]; then
    echo "run_cluster: need at least 2 nodes (a bootstrap and a worker)" >&2
    exit 2
fi

echo "building hybridnode..."
go build -o "$RUN_DIR/hybridnode" ./cmd/hybridnode

PIDS=""
shutdown() {
    trap - INT TERM
    echo "stopping cluster..."
    for pid in $PIDS; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    rc=0
    i=0
    for pid in $PIDS; do
        if wait "$pid"; then
            echo "node $i: exit 0"
        else
            echo "node $i: exit $?" >&2
            rc=1
        fi
        i=$((i + 1))
    done
    exit $rc
}
trap shutdown INT TERM

BOOT_EP="127.0.0.1:$BASE_PORT"
MANIFEST="$RUN_DIR/servers.json"
printf '[\n' > "$MANIFEST"

i=0
while [ $i -lt "$NODES" ]; do
    EP="127.0.0.1:$((BASE_PORT + i))"
    HTTP="127.0.0.1:$((BASE_PORT + 100 + i))"
    LOG="$RUN_DIR/node$i.log"
    if [ $i -eq 0 ]; then
        ROLE=bootstrap
        "$RUN_DIR/hybridnode" -addr "$EP" -http "$HTTP" \
            -n "$PEERS" -items "$ITEMS" -keys "$ITEMS" -lookups "$ITEMS" \
            -crash 0 -linger "$LINGER" > "$LOG" 2>&1 &
    else
        ROLE=worker
        "$RUN_DIR/hybridnode" -addr "$EP" -bootstrap "$BOOT_EP" -http "$HTTP" \
            -n "$PEERS" -items 0 -keys "$ITEMS" -lookups "$ITEMS" \
            -crash 0 -linger "$LINGER" > "$LOG" 2>&1 &
    fi
    PID=$!
    PIDS="$PIDS $PID"
    [ $i -gt 0 ] && printf ',\n' >> "$MANIFEST"
    printf '  {"node": %d, "role": "%s", "addr": "%s", "http": "%s", "pid": %d, "log": "%s"}' \
        "$i" "$ROLE" "$EP" "$HTTP" "$PID" "$LOG" >> "$MANIFEST"
    echo "node $i ($ROLE): cluster=$EP http=http://$HTTP/healthz log=$LOG pid=$PID"

    if [ $i -eq 0 ]; then
        # Wait for the bootstrap to finish every phase (the linger banner)
        # before starting workers: the shared keys must exist before anyone
        # looks them up, the bootstrap's own lookup phases must not race
        # worker join churn, and only a lingering node handles SIGTERM.
        j=0
        while ! grep -q '^lingering ' "$LOG" 2>/dev/null; do
            if ! kill -0 "$PID" 2>/dev/null; then
                echo "run_cluster: bootstrap exited during startup" >&2
                cat "$LOG" >&2
                exit 1
            fi
            j=$((j + 1))
            if [ $j -gt 300 ]; then
                echo "run_cluster: bootstrap never finished storing" >&2
                exit 1
            fi
            sleep 0.2
        done
    fi
    i=$((i + 1))
done
printf '\n]\n' >> "$MANIFEST"

echo "cluster up: $NODES nodes x $PEERS peers; manifest $MANIFEST"
echo "Ctrl-C to stop."
wait

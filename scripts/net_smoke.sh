#!/bin/sh
# Multi-process smoke gate for the TCP socket runtime: boot a 3-process
# hybridnode cluster on loopback (one bootstrap + two workers, kernel-picked
# ports), have the bootstrap store a shared key universe and each worker look
# it up over the wire, then SIGKILL one worker and require the survivors'
# /healthz to go green again — the cross-process crash-repair path (conn-drop
# detection, server arbitration, s-peer rejoin) exercised end to end.
# Finally SIGTERM the survivors and require clean exits: the signal handler
# must shut the sockets down and still report the run's verdict.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BOOT_PID=""
W1_PID=""
W2_PID=""
cleanup() {
    for pid in "$BOOT_PID" "$W1_PID" "$W2_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "net smoke: $1" >&2
    for log in boot w1 w2; do
        [ -f "$TMP/$log.log" ] && { echo "--- $log ---" >&2; cat "$TMP/$log.log" >&2; }
    done
    exit 1
}

# await_line PID LOG PATTERN TRIES — poll a log for a line, failing if the
# process dies first.
await_line() {
    i=0
    while ! grep -q "$3" "$2" 2>/dev/null; do
        kill -0 "$1" 2>/dev/null || fail "process died waiting for '$3' in $2"
        i=$((i + 1))
        [ $i -gt "$4" ] && fail "timeout waiting for '$3' in $2"
        sleep 0.2
    done
}

# http_addr LOG — extract the introspection address from the banner.
http_addr() {
    sed -n 's|^introspection: http://\([^/]*\)/.*|\1|p' "$1"
}

# cluster_ep LOG — extract the node's cluster endpoint from the banner.
cluster_ep() {
    sed -n 's|^socket transport: .* node at \(.*\)$|\1|p' "$1"
}

go build -o "$TMP/hybridnode" ./cmd/hybridnode

COMMON="-n 8 -items 0 -keys 40 -lookups 40 -crash 0 -minsuccess 0.9 -linger 300s"

# 1. Bootstrap: hosts the server, stores the 40-key universe.
"$TMP/hybridnode" -addr 127.0.0.1:0 -http 127.0.0.1:0 \
    -n 8 -items 40 -keys 40 -lookups 40 -crash 0 -minsuccess 0.9 -linger 300s \
    > "$TMP/boot.log" 2>&1 &
BOOT_PID=$!
await_line "$BOOT_PID" "$TMP/boot.log" '^stored 40/40' 150
# Wait for the bootstrap to finish every phase (it prints the linger banner)
# before starting workers: its lookup phases must not race worker join churn,
# and only a lingering node has the signal handler installed for step 6.
await_line "$BOOT_PID" "$TMP/boot.log" '^lingering' 300
BOOT_EP=$(cluster_ep "$TMP/boot.log")
BOOT_HTTP=$(http_addr "$TMP/boot.log")
[ -n "$BOOT_EP" ] || fail "no cluster endpoint in bootstrap banner"
[ -n "$BOOT_HTTP" ] || fail "no introspection endpoint in bootstrap banner"

# 2. Worker 1: joins over TCP, looks up the keys the bootstrap stored.
# Sequential starts keep each lookup phase free of concurrent join churn.
"$TMP/hybridnode" -addr 127.0.0.1:0 -bootstrap "$BOOT_EP" -http 127.0.0.1:0 \
    $COMMON > "$TMP/w1.log" 2>&1 &
W1_PID=$!
await_line "$W1_PID" "$TMP/w1.log" '^lingering' 300
W1_HTTP=$(http_addr "$TMP/w1.log")
[ -n "$W1_HTTP" ] || fail "no introspection endpoint in worker1 banner"

# 3. Worker 2: same dance, then it becomes the crash victim.
"$TMP/hybridnode" -addr 127.0.0.1:0 -bootstrap "$BOOT_EP" -http 127.0.0.1:0 \
    $COMMON > "$TMP/w2.log" 2>&1 &
W2_PID=$!
await_line "$W2_PID" "$TMP/w2.log" '^lingering' 300

# Cross-process lookups must actually succeed: each worker stored nothing,
# so every hit came over the wire from another process's peers.
for log in w1 w2; do
    OK=$(sed -n 's|^pre-crash lookups: \([0-9]*\)/40.*|\1|p' "$TMP/$log.log")
    [ -n "$OK" ] && [ "$OK" -ge 36 ] || fail "$log cross-process lookups: ${OK:-none}/40"
done

# 4. Kill worker 2 abruptly: 8 peers vanish mid-heartbeat. The bootstrap sees
# the TCP connection drop, the failure detectors and the server's crash
# arbitration repair the ring and trees across the surviving processes.
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true
W2_PID=""

# 5. Survivors' /healthz must go green again within the repair budget. Give
# the failure detectors a few heartbeat-timeout windows first, so the poll
# cannot pass on a sample taken before the damage registered.
sleep 2
for node in "boot:$BOOT_HTTP" "w1:$W1_HTTP"; do
    name=${node%%:*}
    addr=${node#*:}
    healthy=0
    i=0
    while [ $i -lt 300 ]; do
        if curl -fsS -o "$TMP/$name.healthz" "http://$addr/healthz" 2>/dev/null \
            && grep -q '"healthy": true' "$TMP/$name.healthz"; then
            healthy=1
            break
        fi
        i=$((i + 1))
        sleep 0.2
    done
    [ "$healthy" = "1" ] || fail "$name /healthz never went green after the kill"
done

# 6. Clean shutdown: SIGTERM both survivors; the signal handler must close
# the runtime and report the verdict, i.e. exit 0.
kill -TERM "$BOOT_PID" "$W1_PID"
wait "$BOOT_PID" || fail "bootstrap exited nonzero after SIGTERM"
BOOT_PID=""
wait "$W1_PID" || fail "worker1 exited nonzero after SIGTERM"
W1_PID=""

echo "net smoke: OK (bootstrap=$BOOT_EP, survivors repaired after kill)"

// Package repro_test holds the benchmark harness: one benchmark per paper
// table/figure (regenerating it at a reduced, fixed scale so timings are
// comparable across runs) plus micro-benchmarks on the hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// benchOptions is the fixed scale every per-figure benchmark runs at.
func benchOptions() exp.Options {
	return exp.Options{Seed: 42, N: 120, Items: 400, Lookups: 200, Quick: true}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure -----------------------------------

func BenchmarkFig3aJoinLatency(b *testing.B)     { runExperiment(b, "Fig3a") }
func BenchmarkFig3bLookupLatency(b *testing.B)   { runExperiment(b, "Fig3b") }
func BenchmarkFig4DataDistribution(b *testing.B) { runExperiment(b, "Fig4") }
func BenchmarkFig5aFailureRatio(b *testing.B)    { runExperiment(b, "Fig5a") }
func BenchmarkFig5bCrashFailure(b *testing.B)    { runExperiment(b, "Fig5b") }
func BenchmarkFig6aHeterogeneity(b *testing.B)   { runExperiment(b, "Fig6a") }
func BenchmarkFig6bTopologyAware(b *testing.B)   { runExperiment(b, "Fig6b") }
func BenchmarkTable2Connum(b *testing.B)         { runExperiment(b, "Table2") }

// --- Ablation benchmarks (design decisions from DESIGN.md) -------------------

func BenchmarkAblationSNetTopology(b *testing.B) { runExperiment(b, "AblationTree") }
func BenchmarkAblationBypassLinks(b *testing.B)  { runExperiment(b, "AblationBypass") }
func BenchmarkBaselines(b *testing.B)            { runExperiment(b, "Baselines") }

// --- Parallel sweep ----------------------------------------------------------

// BenchmarkSweepParallel runs one full multi-point experiment through the
// worker-pool sweep runner at 1 and 4 workers. On a multi-core machine the
// 4-worker variant should approach a 4x speedup (the points are independent
// simulations over one shared topology); on a single-core machine the two
// are expected to tie.
func BenchmarkSweepParallel(b *testing.B) {
	e, ok := exp.ByID("Fig5a")
	if !ok {
		b.Fatal("Fig5a not registered")
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := benchOptions()
			o.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatencyMatrix compares point latency queries answered by the
// precomputed stub-to-stub matrix against the on-demand Dijkstra tree cache,
// plus the one-time cost of building the matrix itself.
func BenchmarkLatencyMatrix(b *testing.B) {
	build := func(b *testing.B) *topology.Graph {
		g, err := topology.GenerateTransitStub(topology.DefaultConfig(), 11)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}

	b.Run("precompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := build(b)
			b.StartTimer()
			g.PrecomputeStubMatrix(4)
		}
	})

	queryLoop := func(b *testing.B, g *topology.Graph) {
		stubs := g.StubNodes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Latency(stubs[(i*31)%len(stubs)], stubs[(i*17+5)%len(stubs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("lookup/dijkstra", func(b *testing.B) {
		g := build(b)
		queryLoop(b, g) // first pass per source pays Dijkstra, then tree reads
	})
	b.Run("lookup/matrix", func(b *testing.B) {
		g := build(b)
		g.PrecomputeStubMatrix(4)
		queryLoop(b, g)
	})
}

// --- Micro-benchmarks on the hot paths ---------------------------------------

func BenchmarkEventEngine(b *testing.B) {
	eng := sim.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Time(i%1000+1), func() {})
		if i%64 == 63 {
			eng.RunSteps(64)
		}
	}
	eng.Run()
}

func BenchmarkHashKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = idspace.HashKey("item-000123")
	}
}

func BenchmarkBetween(b *testing.B) {
	a, x, c := idspace.ID(10), idspace.ID(500), idspace.ID(100)
	for i := 0; i < b.N; i++ {
		_ = idspace.Between(a, x, c)
	}
}

func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.GenerateTransitStub(cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraShortestPath(b *testing.B) {
	g, err := topology.GenerateTransitStub(topology.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	stubs := g.StubNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Uncached source each iteration defeats memoization on the
		// first pass; later passes measure the cached path.
		if _, err := g.Latency(stubs[i%len(stubs)], stubs[(i*31+7)%len(stubs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSystem builds a reusable hybrid system for operation benchmarks.
func benchSystem(b testing.TB, ps float64) (*core.System, []*core.Peer) {
	b.Helper()
	tc := topology.Config{
		TransitDomains: 2, TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2, StubNodesPerDomain: 12,
		ExtraTransitEdges: 2, ExtraStubEdges: 2,
		TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
	}
	topo, err := topology.GenerateTransitStub(tc, 7)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.New(7)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cfg := core.DefaultConfig()
	cfg.Ps = ps
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		b.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 100})
	if err != nil {
		b.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	return sys, peers
}

func BenchmarkHybridJoin(b *testing.B) {
	sys, _ := benchSystem(b, 0.7)
	stubs := sys.Runtime().Placement().StubHosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.JoinSync(core.JoinOpts{Host: stubs[i%len(stubs)], Capacity: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridStore(b *testing.B) {
	sys, peers := benchSystem(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.StoreSync(peers[i%len(peers)], fmt.Sprintf("bench-%08d", i), "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridLookup(b *testing.B) {
	sys, peers := benchSystem(b, 0.7)
	const keys = 256
	for i := 0; i < keys; i++ {
		if _, err := sys.StoreSync(peers[i%len(peers)], fmt.Sprintf("lk-%04d", i), "v"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.LookupSync(peers[(i*13)%len(peers)], fmt.Sprintf("lk-%04d", i%keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticJoinLatency(b *testing.B) {
	p := analytic.Params{N: 1000, Ps: 0.7, Delta: 3, TTL: 4}
	for i := 0; i < b.N; i++ {
		_ = analytic.JoinLatency(p)
	}
}

GO ?= go

.PHONY: all build check vet staticcheck test race faultcheck determinism conformance allocguard routinggate introspect-smoke net-smoke replication-smoke cluster bench bench-json bench-guard benchscale kv-bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when installed; falls back to a note otherwise (the
# container may not ship it, and go vet already ran as part of check).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The verify loop: everything a change must pass before it lands.
# Set SKIP_BENCH_GUARD=1 to skip the benchmark regression guard.
check: build vet staticcheck test race faultcheck determinism conformance allocguard routinggate introspect-smoke net-smoke replication-smoke bench-guard

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-path gate: churn storms and recovery paths under injected message
# faults, invariant-checked at every quiescence point (-count=1 defeats the
# test cache so the gate always executes).
faultcheck:
	$(GO) test ./internal/core -count=1 \
		-run '^(TestChurnStormUnderFaults|TestRecoveryPathsUnderFaults|TestSustainedChurnKeepsInvariants)$$'

# Determinism gate: sweeps with the fault layer compiled in but disabled must
# be byte-identical to ones that never touch it.
determinism:
	$(GO) test ./internal/exp -count=1 \
		-run '^(TestFaultLayerOffIsByteIdentical|TestParallelSweepDeterminism)$$'

# Cross-runtime conformance gate: the same scenario on the DES, the live
# goroutine runtime and the TCP socket runtime, audited on all three, under
# the race detector (the wall-clock runtimes' whole point is real
# concurrency, so -race is load-bearing).
conformance:
	$(GO) test -race ./internal/conformance -count=1

# Allocation budgets: the event-engine hot path and Histogram.Record must
# stay at zero allocs, and a no-churn lookup within its per-op budget.
allocguard:
	$(GO) test . -count=1 -run '^(TestEventEngineAllocFree|TestLookupAllocBudget)$$'
	$(GO) test ./internal/obs -count=1 -run '^TestHistogramRecordAllocFree$$'

# Routing-seam gate (PR 10): the Kademlia baseline's own unit tests, a
# four-arm baseline determinism check (two full RunBaselines passes must be
# byte-identical), the α-parallel + path-cache ablation acceptance test
# (alpha=3+cache must strictly beat alpha=1 on failure ratio or latency at
# the same fault schedule), and the path-cache invalidation suite under
# churn (-count=1 defeats the test cache so the gates always execute).
routinggate:
	$(GO) test ./internal/kad -count=1
	$(GO) test ./internal/exp -count=1 \
		-run '^(TestBaselinesDeterminism|TestAblationRoutingGate)$$'
	$(GO) test ./internal/core -count=1 \
		-run '^(TestPathCache|TestAlphaProbes)'

# Introspection smoke gate: boot a live hybridnode with -http, poll /healthz
# until healthy, and assert /metrics serves well-formed Prometheus exposition.
introspect-smoke:
	sh ./scripts/introspect_smoke.sh

# Multi-process smoke gate: 3-process hybridnode TCP cluster on loopback,
# cross-process lookups, a SIGKILLed worker, /healthz green again on the
# survivors, clean SIGTERM shutdown.
net-smoke:
	sh ./scripts/net_smoke.sh

# Replication smoke gate: 4-process cluster at k=3, 50 keys stored through
# the /kv HTTP surface, both all-s workers SIGKILLed — every key must still
# read back and /healthz must return to a zero replica deficit.
replication-smoke:
	sh ./scripts/replication_smoke.sh

# Latency k-sweep of the /kv HTTP surface on live 2-process clusters:
# put/get p50/p99 for k in 1..3, written to kv_bench.json (see
# scripts/kv_bench.sh for the OUT/NOPS/BASE_PORT/PEERS knobs).
kv-bench:
	sh ./scripts/kv_bench.sh

# Interactive: launch an N-process TCP cluster with per-node logs and a
# servers.json manifest; Ctrl-C stops it (see scripts/run_cluster.sh).
cluster:
	sh ./scripts/run_cluster.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Re-record the benchmark baseline (see BENCH_PR1.json).
bench-json:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=1x | $(GO) run ./cmd/benchjson

# Short-mode scale sweep: one 10k-peer point of the Scale experiment,
# reporting bytes/peer, peers/GB and events/sec (see EXPERIMENTS.md "Scale").
# The full 10k/100k/1M ladder is `go run ./cmd/paperexp -run Scale`.
benchscale:
	$(GO) run ./cmd/paperexp -run Scale -quick -n 10000

# Fail if BenchmarkEventEngine regresses >20% against the recorded baseline
# (best of 3 runs, so a loaded machine does not read as a regression).
bench-guard:
	@if [ "$${SKIP_BENCH_GUARD:-0}" = "1" ]; then \
		echo "bench guard skipped (SKIP_BENCH_GUARD=1)"; \
	else \
		$(GO) test -run='^$$' -bench='^BenchmarkEventEngine$$' -benchtime=2s -count=3 . \
			| $(GO) run ./cmd/benchjson -baseline BENCH_PR1.json -bench BenchmarkEventEngine -tolerance 0.2; \
	fi

GO ?= go

.PHONY: all build check vet staticcheck test race bench bench-json bench-guard

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when installed; falls back to a note otherwise (the
# container may not ship it, and go vet already ran as part of check).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The verify loop: everything a change must pass before it lands.
# Set SKIP_BENCH_GUARD=1 to skip the benchmark regression guard.
check: build vet staticcheck test race bench-guard

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Re-record the benchmark baseline (see BENCH_PR1.json).
bench-json:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=1x | $(GO) run ./cmd/benchjson

# Fail if BenchmarkEventEngine regresses >20% against the recorded baseline
# (best of 3 runs, so a loaded machine does not read as a regression).
bench-guard:
	@if [ "$${SKIP_BENCH_GUARD:-0}" = "1" ]; then \
		echo "bench guard skipped (SKIP_BENCH_GUARD=1)"; \
	else \
		$(GO) test -run='^$$' -bench='^BenchmarkEventEngine$$' -benchtime=2s -count=3 . \
			| $(GO) run ./cmd/benchjson -baseline BENCH_PR1.json -bench BenchmarkEventEngine -tolerance 0.2; \
	fi

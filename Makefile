GO ?= go

.PHONY: all build check vet test race bench bench-json

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The verify loop: everything a change must pass before it lands.
check: build vet test race

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Re-record the benchmark baseline (see BENCH_PR1.json).
bench-json:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=1x | $(GO) run ./cmd/benchjson

// Package gnutella implements a Gnutella-style unstructured peer-to-peer
// network: an arbitrary mesh overlay searched by TTL-bounded flooding or
// random walks.
//
// It is the unstructured comparator from the paper (the hybrid system with
// p_s = 1 "becomes a Gnutella-style unstructured peer-to-peer system") and
// the ablation target for the hybrid s-network's tree topology: in a mesh, a
// peer can receive the same query many times, so the package counts duplicate
// deliveries explicitly.
package gnutella

import (
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// Config tunes a Gnutella deployment.
type Config struct {
	// DegreeTarget is how many random neighbors a joining peer links to.
	DegreeTarget int
	// DefaultTTL is the flood radius used when a query does not override it.
	DefaultTTL int
	// MessageBytes is the nominal control-message size.
	MessageBytes int
	// LookupTimeout bounds a query before it is declared failed.
	LookupTimeout runtime.Time
	// WalkCount is the number of walkers a random-walk query launches.
	WalkCount int
	// WalkTTL is the hop budget of each walker.
	WalkTTL int
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		DegreeTarget:  4,
		DefaultTTL:    5,
		MessageBytes:  128,
		LookupTimeout: 30 * runtime.Second,
		WalkCount:     4,
		WalkTTL:       32,
	}
}

// Network owns a set of Gnutella peers on one simnet.
type Network struct {
	rt  runtime.Runtime
	Cfg Config

	peers map[runtime.Addr]*Peer
	next  runtime.Addr

	// DuplicateDeliveries counts query copies received by peers that had
	// already seen the query — the mesh's flooding overhead.
	DuplicateDeliveries uint64
	// QueryDeliveries counts first-time query deliveries.
	QueryDeliveries uint64
}

// NewNetwork creates an empty deployment.
func NewNetwork(rt runtime.Runtime, cfg Config) *Network {
	def := DefaultConfig()
	if cfg.DegreeTarget <= 0 {
		cfg.DegreeTarget = def.DegreeTarget
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = def.DefaultTTL
	}
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = def.MessageBytes
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = def.LookupTimeout
	}
	if cfg.WalkCount <= 0 {
		cfg.WalkCount = def.WalkCount
	}
	if cfg.WalkTTL <= 0 {
		cfg.WalkTTL = def.WalkTTL
	}
	return &Network{rt: rt, Cfg: cfg, peers: make(map[runtime.Addr]*Peer)}
}

// Peer is one Gnutella participant.
type Peer struct {
	Addr runtime.Addr

	net       *Network
	neighbors map[runtime.Addr]bool
	data      map[idspace.ID]Item
	seen      map[uint64]bool // query ids already processed
	alive     bool

	pending map[uint64]*query
	nextTag uint64
}

// Item is a stored (key, value) pair.
type Item struct {
	Key   string
	Value string
	DID   idspace.ID
}

// query is an outstanding search issued by this peer.
type query struct {
	start   runtime.Time
	done    func(Result)
	timeout runtime.Handle
	found   bool
}

// Result reports the outcome of a search.
type Result struct {
	OK      bool
	Key     string
	Value   string
	Hops    int
	Latency runtime.Time
}

// Join creates a peer on the given host and links it to up to DegreeTarget
// uniformly chosen existing peers (the "loose rules" of Gnutella overlay
// formation).
func (nw *Network) Join(host int, capacity float64) *Peer {
	addr := nw.next
	nw.next++
	p := &Peer{
		Addr:      addr,
		net:       nw,
		neighbors: make(map[runtime.Addr]bool),
		data:      make(map[idspace.ID]Item),
		seen:      make(map[uint64]bool),
		pending:   make(map[uint64]*query),
		alive:     true,
	}
	existing := nw.alivePeers()
	nw.peers[addr] = p
	nw.rt.Attach(addr, runtime.Endpoint{Host: host, Capacity: capacity}, runtime.HandlerFunc(p.recv))

	rng := nw.rt.Rand()
	want := nw.Cfg.DegreeTarget
	if want > len(existing) {
		want = len(existing)
	}
	for _, i := range rng.Perm(len(existing))[:want] {
		other := existing[i]
		p.neighbors[other.Addr] = true
		other.neighbors[addr] = true
	}
	return p
}

// alivePeers returns live peers sorted by address for determinism.
func (nw *Network) alivePeers() []*Peer {
	out := make([]*Peer, 0, len(nw.peers))
	for _, p := range nw.peers {
		if p.alive {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Peers returns all live peers sorted by address.
func (nw *Network) Peers() []*Peer { return nw.alivePeers() }

// Runtime returns the runtime the network executes on.
func (nw *Network) Runtime() runtime.Runtime { return nw.rt }

// Peer returns the peer at addr, or nil.
func (nw *Network) Peer(a runtime.Addr) *Peer { return nw.peers[a] }

// Alive reports whether the peer is participating.
func (p *Peer) Alive() bool { return p.alive }

// Degree returns the current neighbor count.
func (p *Peer) Degree() int { return len(p.neighbors) }

// Neighbors returns the neighbor addresses in ascending order.
func (p *Peer) Neighbors() []runtime.Addr {
	out := make([]runtime.Addr, 0, len(p.neighbors))
	for a := range p.neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumItems returns the number of locally stored items.
func (p *Peer) NumItems() int { return len(p.data) }

// StoreLocal inserts the item at this peer. Gnutella has no data placement:
// content lives wherever it was published.
func (p *Peer) StoreLocal(key, value string) {
	did := idspace.HashKey(key)
	p.data[did] = Item{Key: key, Value: value, DID: did}
}

// Messages.
type (
	queryMsg struct {
		QID    uint64
		DID    idspace.ID
		Origin runtime.Addr
		TTL    int
		Hops   int
		Walk   bool // random walk instead of flood
	}
	queryHit struct {
		QID   uint64
		Value string
		Hops  int
	}
	byeMsg struct{}
)

func (p *Peer) recv(from runtime.Addr, msg any) {
	if !p.alive {
		return
	}
	switch m := msg.(type) {
	case queryMsg:
		p.handleQuery(from, m)
	case queryHit:
		p.handleHit(m)
	case byeMsg:
		delete(p.neighbors, from)
	default:
		panic(fmt.Sprintf("gnutella: unknown message %T", msg))
	}
}

func (p *Peer) send(to runtime.Addr, msg any) {
	p.net.rt.Send(p.Addr, to, p.net.Cfg.MessageBytes, msg)
}

// Lookup floods a query with the given TTL (0 uses the default) and reports
// the first hit, or failure after the timeout.
func (p *Peer) Lookup(key string, ttl int, done func(Result)) {
	p.search(key, ttl, false, done)
}

// LookupWalk performs a k-walker random walk search instead of flooding.
func (p *Peer) LookupWalk(key string, done func(Result)) {
	p.search(key, 0, true, done)
}

func (p *Peer) search(key string, ttl int, walk bool, done func(Result)) {
	if ttl <= 0 {
		ttl = p.net.Cfg.DefaultTTL
	}
	did := idspace.HashKey(key)
	p.nextTag++
	qid := uint64(p.Addr)<<32 | p.nextTag
	q := &query{start: p.net.rt.Now(), done: done}
	p.pending[qid] = q
	q.timeout = p.net.rt.Schedule(p.net.Cfg.LookupTimeout, func() {
		p.finish(qid, Result{OK: false, Key: key})
	})
	p.seen[qid] = true

	// Local database check comes first, as in any Gnutella servent.
	if it, ok := p.data[did]; ok {
		p.net.rt.SendLocal(p.Addr, queryHit{QID: qid, Value: it.Value, Hops: 0})
		return
	}
	m := queryMsg{QID: qid, DID: did, Origin: p.Addr, TTL: ttl, Hops: 0, Walk: walk}
	if walk {
		m.TTL = p.net.Cfg.WalkTTL
		p.forwardWalkers(m, p.net.Cfg.WalkCount)
		return
	}
	for _, nb := range p.Neighbors() {
		p.send(nb, m)
	}
}

// forwardWalkers sends k copies of a walk query to random neighbors.
func (p *Peer) forwardWalkers(m queryMsg, k int) {
	nbs := p.Neighbors()
	if len(nbs) == 0 {
		return
	}
	rng := p.net.rt.Rand()
	for i := 0; i < k; i++ {
		p.send(nbs[rng.Intn(len(nbs))], m)
	}
}

func (p *Peer) handleQuery(from runtime.Addr, m queryMsg) {
	if p.seen[m.QID] && !m.Walk {
		// Mesh duplicate: the cost the hybrid system's tree eliminates.
		p.net.DuplicateDeliveries++
		return
	}
	p.seen[m.QID] = true
	p.net.QueryDeliveries++

	if it, ok := p.data[m.DID]; ok {
		p.send(m.Origin, queryHit{QID: m.QID, Value: it.Value, Hops: m.Hops + 1})
		if !m.Walk {
			return // stop flooding on hit
		}
		return
	}
	if m.TTL <= 1 {
		return
	}
	m.TTL--
	m.Hops++
	if m.Walk {
		p.forwardWalkers(m, 1)
		return
	}
	for _, nb := range p.Neighbors() {
		if nb != from {
			p.send(nb, m)
		}
	}
}

func (p *Peer) handleHit(m queryHit) {
	p.finish(m.QID, Result{OK: true, Value: m.Value, Hops: m.Hops})
}

func (p *Peer) finish(qid uint64, r Result) {
	q, ok := p.pending[qid]
	if !ok || q.found {
		return
	}
	q.found = true
	delete(p.pending, qid)
	p.net.rt.Unschedule(q.timeout)
	r.Latency = p.net.rt.Now() - q.start
	if q.done != nil {
		q.done(r)
	}
}

// Leave removes the peer gracefully, telling neighbors to drop it.
func (p *Peer) Leave() {
	if !p.alive {
		return
	}
	for _, nb := range p.Neighbors() {
		p.send(nb, byeMsg{})
	}
	p.Crash()
}

// Crash removes the peer abruptly; neighbors discover the gap only through
// failed queries (pure Gnutella has no repair protocol to run here because
// the topology is unconstrained).
func (p *Peer) Crash() {
	if !p.alive {
		return
	}
	p.alive = false
	p.net.rt.Detach(p.Addr)
	delete(p.net.peers, p.Addr)
}

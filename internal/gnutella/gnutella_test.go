package gnutella

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func mesh(t *testing.T, n int, seed int64, cfg Config) (*sim.Engine, *Network, []*Peer) {
	t.Helper()
	tc := topology.Config{
		TransitDomains: 2, TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2, StubNodesPerDomain: 12,
		ExtraTransitEdges: 2, ExtraStubEdges: 2,
		TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
	}
	topo, err := topology.GenerateTransitStub(tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	gnet := NewNetwork(simnet.NewRuntime(eng, net), cfg)
	stubs := topo.StubNodes()
	peers := make([]*Peer, n)
	for i := range peers {
		peers[i] = gnet.Join(stubs[eng.Rand().Intn(len(stubs))], 1)
	}
	return eng, gnet, peers
}

func search(t *testing.T, eng *sim.Engine, p *Peer, key string, ttl int) Result {
	t.Helper()
	done := false
	var r Result
	p.Lookup(key, ttl, func(res Result) { done = true; r = res })
	for steps := 0; !done; steps++ {
		if steps > 20_000_000 {
			t.Fatal("lookup stuck")
		}
		if !eng.Step() {
			t.Fatal("engine dry before lookup resolved")
		}
	}
	return r
}

func TestJoinDegrees(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegreeTarget = 4
	_, gnet, peers := mesh(t, 100, 1, cfg)
	if len(gnet.Peers()) != 100 {
		t.Fatal("peer count")
	}
	for i, p := range peers {
		if i > 0 && p.Degree() == 0 {
			t.Fatalf("peer %d isolated", i)
		}
	}
	// The first few joiners cannot reach the target degree; later ones get
	// exactly DegreeTarget links at join time (plus links from even later
	// joiners).
	last := peers[99]
	if last.Degree() < 4 {
		t.Fatalf("late joiner degree %d < 4", last.Degree())
	}
	// Symmetry: every neighbor lists us back.
	for _, p := range peers {
		for _, nb := range p.Neighbors() {
			q := gnet.Peer(nb)
			found := false
			for _, back := range q.Neighbors() {
				if back == p.Addr {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric link %d->%d", p.Addr, nb)
			}
		}
	}
}

func TestFloodingFindsNearbyData(t *testing.T) {
	eng, _, peers := mesh(t, 80, 2, DefaultConfig())
	owner := peers[10]
	owner.StoreLocal("the-file", "payload")
	// A direct neighbor finds it in one hop.
	nb := peers[10].Neighbors()[0]
	var nbPeer *Peer
	for _, p := range peers {
		if p.Addr == nb {
			nbPeer = p
		}
	}
	r := search(t, eng, nbPeer, "the-file", 2)
	if !r.OK || r.Value != "payload" {
		t.Fatalf("neighbor lookup failed: %+v", r)
	}
	if r.Hops > 2 {
		t.Fatalf("neighbor lookup took %d hops", r.Hops)
	}
}

func TestLocalHitIsImmediate(t *testing.T) {
	eng, _, peers := mesh(t, 20, 3, DefaultConfig())
	peers[5].StoreLocal("mine", "v")
	r := search(t, eng, peers[5], "mine", 1)
	if !r.OK || r.Hops != 0 {
		t.Fatalf("local hit: %+v", r)
	}
}

func TestTTLBoundsReach(t *testing.T) {
	// A line topology: peers joined with DegreeTarget 1 form a tree/line;
	// TTL 1 must fail for distant data while a large TTL succeeds.
	cfg := DefaultConfig()
	cfg.DegreeTarget = 1
	cfg.LookupTimeout = 5 * sim.Second
	eng, _, peers := mesh(t, 30, 4, cfg)
	peers[29].StoreLocal("far", "v")
	rSmall := search(t, eng, peers[0], "far", 1)
	rBig := search(t, eng, peers[0], "far", 64)
	if rSmall.OK {
		t.Fatal("TTL 1 should not reach distant data in a sparse overlay")
	}
	if !rBig.OK {
		t.Fatal("large TTL failed to find data in a connected overlay")
	}
}

func TestFailureRatioDropsWithTTL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegreeTarget = 3
	cfg.LookupTimeout = 3 * sim.Second
	eng, _, peers := mesh(t, 150, 5, cfg)
	for i := 0; i < 100; i++ {
		peers[(i*7)%150].StoreLocal(fmt.Sprintf("f-%03d", i), "v")
	}
	fail := func(ttl int) int {
		fails := 0
		for i := 0; i < 100; i++ {
			r := search(t, eng, peers[(i*13+1)%150], fmt.Sprintf("f-%03d", i), ttl)
			if !r.OK {
				fails++
			}
		}
		return fails
	}
	f2, f6 := fail(2), fail(6)
	if f6 > f2 {
		t.Fatalf("failures grew with TTL: ttl2=%d ttl6=%d", f2, f6)
	}
	if f2 == 0 {
		t.Log("note: ttl2 already found everything (dense overlay)")
	}
}

func TestDuplicateDeliveriesCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegreeTarget = 6 // dense mesh => duplicates guaranteed
	eng, gnet, peers := mesh(t, 60, 6, cfg)
	peers[59].StoreLocal("dup-target", "v")
	search(t, eng, peers[0], "no-such-key", 5) // full flood, no early stop
	if gnet.DuplicateDeliveries == 0 {
		t.Fatal("dense mesh flooding produced no duplicates")
	}
	if gnet.QueryDeliveries == 0 {
		t.Fatal("no deliveries counted")
	}
}

func TestRandomWalk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WalkCount = 8
	cfg.WalkTTL = 64
	cfg.LookupTimeout = 10 * sim.Second
	eng, _, peers := mesh(t, 60, 7, cfg)
	// Popular item: many replicas make walks effective.
	for i := 0; i < 20; i++ {
		peers[i*3].StoreLocal("popular", "v")
	}
	done := false
	var r Result
	peers[1].LookupWalk("popular", func(res Result) { done = true; r = res })
	for steps := 0; !done; steps++ {
		if steps > 20_000_000 {
			t.Fatal("walk stuck")
		}
		if !eng.Step() {
			t.Fatal("engine dry")
		}
	}
	if !r.OK {
		t.Fatal("random walk failed to find a 33%-replicated item")
	}
}

func TestLeaveNotifiesNeighbors(t *testing.T) {
	eng, gnet, peers := mesh(t, 30, 8, DefaultConfig())
	victim := peers[10]
	nbs := victim.Neighbors()
	victim.Leave()
	eng.RunUntil(eng.Now() + 5*sim.Second)
	if gnet.Peer(victim.Addr) != nil {
		t.Fatal("left peer still registered")
	}
	for _, nb := range nbs {
		p := gnet.Peer(nb)
		for _, back := range p.Neighbors() {
			if back == victim.Addr {
				t.Fatalf("peer %d still lists the departed neighbor", nb)
			}
		}
	}
}

func TestCrashLeavesStaleLinks(t *testing.T) {
	eng, gnet, peers := mesh(t, 30, 9, DefaultConfig())
	victim := peers[10]
	nbs := victim.Neighbors()
	victim.Crash()
	eng.RunUntil(eng.Now() + 5*sim.Second)
	// Pure Gnutella has no repair: stale links remain but queries still
	// resolve around them.
	stale := 0
	for _, nb := range nbs {
		p := gnet.Peer(nb)
		for _, back := range p.Neighbors() {
			if back == victim.Addr {
				stale++
			}
		}
	}
	if stale == 0 {
		t.Fatal("expected stale links after an abrupt crash (no repair protocol)")
	}
	peers[0].StoreLocal("post-crash", "v")
	r := search(t, eng, peers[1], "post-crash", 6)
	if !r.OK {
		t.Fatal("network unusable after a single crash")
	}
}

func TestQueryStopsOnHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DegreeTarget = 2
	eng, gnet, peers := mesh(t, 40, 10, cfg)
	peers[1].StoreLocal("close", "v")
	before := gnet.QueryDeliveries
	r := search(t, eng, peers[0], "close", 6)
	if !r.OK {
		t.Fatal("lookup failed")
	}
	// The flood stops at the hit, so deliveries stay well below N.
	if gnet.QueryDeliveries-before > 40 {
		t.Fatalf("flood did not stop on hit: %d deliveries", gnet.QueryDeliveries-before)
	}
}

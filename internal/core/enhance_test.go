package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// --- Link heterogeneity (§5.1) -------------------------------------------------

func TestHeterogeneityPrefersFastTPeers(t *testing.T) {
	sys := newTestSystem(t, 60, func(c *Config) {
		c.Ps = 0.7
		c.Heterogeneity = true
	})
	caps := workload.CapacityClasses(90)
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 90, Capacities: caps}); err != nil {
		t.Fatal(err)
	}
	var tCapSum, sCapSum float64
	tps, sps := sys.TPeers(), sys.SPeers()
	for _, p := range tps {
		tCapSum += p.Capacity
	}
	for _, p := range sps {
		sCapSum += p.Capacity
	}
	tAvg := tCapSum / float64(len(tps))
	sAvg := sCapSum / float64(len(sps))
	if tAvg <= sAvg {
		t.Fatalf("t-peers not faster on average: t=%.2f s=%.2f", tAvg, sAvg)
	}
	// With a third of peers at capacity 10 and 30% t-peers, essentially
	// every t-peer should come from the top class.
	fast := 0
	for _, p := range tps {
		if p.Capacity >= 10 {
			fast++
		}
	}
	if fast*10 < len(tps)*8 {
		t.Fatalf("only %d/%d t-peers from the fastest class", fast, len(tps))
	}
}

func TestLinkUsageGatesConnectPoints(t *testing.T) {
	sys := newTestSystem(t, 61, func(c *Config) {
		c.Ps = 0.8
		c.Delta = 5
		c.Heterogeneity = true
		c.MaxLinkUsage = 2
	})
	caps := workload.CapacityClasses(80)
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80, Capacities: caps}); err != nil {
		t.Fatal(err)
	}
	// Peers with capacity 1 must not exceed usage 2 (degree 2) unless they
	// were the only possible attachment (leaf exemption).
	for _, p := range sys.SPeers() {
		if p.Capacity == 1 && p.Degree() > 3 {
			t.Errorf("slow peer %d carries degree %d", p.Addr, p.Degree())
		}
	}
}

func TestHeterogeneityLowersLatency(t *testing.T) {
	run := func(hetero bool) float64 {
		sys := newTestSystem(t, 62, func(c *Config) {
			c.Ps = 0.7
			c.Heterogeneity = hetero
		})
		caps := workload.CapacityClasses(80)
		peers, _, err := sys.BuildPopulation(PopulationOpts{N: 80, Capacities: caps})
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(6 * sys.Cfg.HelloEvery)
		keys := make([]string, 80)
		for i := range keys {
			keys[i] = fmt.Sprintf("het-%03d", i)
			if _, err := sys.StoreSync(peers[(i*7)%80], keys[i], "v"); err != nil {
				t.Fatal(err)
			}
		}
		var total float64
		n := 0
		for i, key := range keys {
			r, err := sys.LookupSync(peers[(i*13+5)%80], key)
			if err != nil {
				t.Fatal(err)
			}
			if r.OK {
				total += float64(r.Latency)
				n++
			}
		}
		return total / float64(n)
	}
	base, het := run(false), run(true)
	if het >= base {
		t.Fatalf("heterogeneity support did not lower mean lookup latency: %.0f vs %.0f", het, base)
	}
}

// --- Topology awareness (§5.2) ---------------------------------------------------

func TestClusterAssignmentGroupsNearbyPeers(t *testing.T) {
	sys := newTestSystem(t, 63, func(c *Config) {
		c.Ps = 0.8
		c.TopologyAware = true
		c.Landmarks = 6
		c.Assignment = AssignCluster
	})
	// Host peers in pairs on the same physical node: both halves of a pair
	// have identical landmark coordinates and should mostly share an
	// s-network.
	stubs := sys.Topo().StubNodes()
	hosts := make([]int, 60)
	for i := range hosts {
		hosts[i] = stubs[(i/2)*7%len(stubs)]
	}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	same, pairs := 0, 0
	for i := 0; i+1 < 60; i += 2 {
		a, b := peers[i], peers[i+1]
		if a.Role != SPeer || b.Role != SPeer || !a.Alive() || !b.Alive() {
			continue
		}
		pairs++
		if a.tpeer.Addr == b.tpeer.Addr {
			same++
		}
	}
	if pairs == 0 {
		t.Skip("no s-peer pairs")
	}
	if same*2 < pairs {
		t.Fatalf("only %d/%d co-located pairs share an s-network", same, pairs)
	}
}

func TestLandmarkCoordOrdersByDistance(t *testing.T) {
	sys := newTestSystem(t, 64, func(c *Config) {
		c.TopologyAware = true
		c.Landmarks = 4
	})
	stubs := sys.Topo().StubNodes()
	a := sys.landmarkCoord(stubs[0])
	b := sys.landmarkCoord(stubs[0])
	if a != b {
		t.Fatal("coordinate not deterministic")
	}
	if len(a) != 8 { // 4 landmarks x 2 chars
		t.Fatalf("coordinate %q has wrong length", a)
	}
	// Same host same coord; a far host usually differs.
	c := sys.landmarkCoord(stubs[len(stubs)-1])
	if a == c {
		t.Log("note: far host shares the bin (possible, not an error)")
	}
}

// --- Interest-based s-networks (§5.3) --------------------------------------------

func TestInterestLookupStaysLocal(t *testing.T) {
	sys := newTestSystem(t, 65, func(c *Config) {
		c.Ps = 0.8
		c.InterestCategories = 4
		c.Assignment = AssignInterest
		c.TTL = 10
	})
	// Ring first so category segments are stable, then interest s-peers.
	tRole, sRole := TPeer, SPeer
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 12, ForceRole: &tRole}); err != nil {
		t.Fatal(err)
	}
	// Let the last t-peer's registration land before interest assignment
	// starts consulting the ring registry.
	sys.Settle(2 * sim.Second)
	interests := make([]int, 48)
	for i := range interests {
		interests[i] = i % 4
	}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 48, Interests: interests, ForceRole: &sRole})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)

	// Publishers store within their own category.
	keys := workload.InterestKeys(60, 4)
	for i, key := range keys {
		cat := workload.KeyCategory(key)
		var pub *Peer
		for _, p := range peers {
			if p.Interest == cat && p.Alive() {
				pub = p
				break
			}
		}
		r, err := sys.StoreSync(pub, key, "v")
		if err != nil || !r.OK {
			t.Fatalf("store %d: %+v %v", i, r, err)
		}
		// Interest placement: the item must stay in the category's
		// s-network.
		holder := sys.Peer(r.Holder.Addr)
		root := snetOf(sys, holder)
		if owner := ownerOf(sys, CategoryID(cat)); owner != nil && root != nil && owner.Addr != root.Addr {
			t.Errorf("key %s (cat %d) landed in s-network %d, want %d", key, cat, root.Addr, owner.Addr)
		}
	}

	// Same-interest lookups must not touch the ring.
	before := sys.Stats().RingForwards
	okCount := 0
	for i, key := range keys {
		cat := workload.KeyCategory(key)
		var origin *Peer
		for j := range peers {
			p := peers[(i+j)%len(peers)]
			if p.Interest == cat && p.Alive() {
				origin = p
				break
			}
		}
		r, err := sys.LookupSync(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			okCount++
		}
	}
	if got := sys.Stats().RingForwards - before; got != 0 {
		t.Fatalf("same-interest lookups used %d ring forwards, want 0", got)
	}
	if okCount*4 < len(keys)*3 {
		t.Fatalf("only %d/%d same-interest lookups succeeded", okCount, len(keys))
	}
}

// --- Bypass links (§5.4) -----------------------------------------------------------

func TestBypassLinksCreatedAndUsed(t *testing.T) {
	sys := newTestSystem(t, 66, func(c *Config) {
		c.Ps = 0.7
		c.Bypass = true
		c.BypassTTL = 600 * sim.Second
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	// Rule 1 forbids bypass links at full-degree peers, so drive the
	// workload from a leaf s-peer with spare degree.
	var origin *Peer
	for _, sp := range sys.SPeers() {
		if sp.Degree() == 1 {
			origin = sp
			break
		}
	}
	if origin == nil {
		t.Fatal("no leaf s-peer")
	}
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("bp-%03d", i)
		if _, err := sys.StoreSync(origin, keys[i], "v"); err != nil {
			t.Fatal(err)
		}
	}
	// First pass creates links (rule 2/3), repeat passes should use them.
	for pass := 0; pass < 3; pass++ {
		for _, key := range keys {
			if _, err := sys.LookupSync(origin, key); err != nil {
				t.Fatal(err)
			}
		}
	}
	if origin.NumBypass() == 0 {
		t.Fatal("no bypass links created despite cross-s-network traffic")
	}
	if sys.Stats().BypassUses == 0 {
		t.Fatal("bypass links never used")
	}
}

func TestBypassRespectsDegreeRule(t *testing.T) {
	sys := newTestSystem(t, 67, func(c *Config) {
		c.Ps = 0.7
		c.Delta = 3
		c.Bypass = true
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("deg-%03d", i)
		if _, err := sys.StoreSync(peers[i%60], key, "v"); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.LookupSync(peers[(i*7)%60], key); err != nil {
			t.Fatal(err)
		}
	}
	// Rule 1: tree degree + bypass links never exceed δ.
	for _, p := range sys.Peers() {
		if p.Degree()+p.NumBypass() > sys.Cfg.Delta {
			t.Errorf("peer %d: degree %d + bypass %d > delta %d",
				p.Addr, p.Degree(), p.NumBypass(), sys.Cfg.Delta)
		}
	}
}

func TestBypassLinksExpire(t *testing.T) {
	sys := newTestSystem(t, 68, func(c *Config) {
		c.Ps = 0.7
		c.Bypass = true
		c.BypassTTL = 20 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 40})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("exp-%02d", i)
		if _, err := sys.StoreSync(peers[1], key, "v"); err != nil {
			t.Fatal(err)
		}
	}
	had := peers[1].NumBypass()
	if had == 0 {
		t.Skip("no bypass links created at this seed")
	}
	// Idle well past the TTL: links must vanish.
	sys.Settle(60 * sim.Second)
	if got := peers[1].NumBypass(); got != 0 {
		t.Fatalf("%d bypass links survived their idle TTL", got)
	}
}

// --- Tracker mode (§5.5) --------------------------------------------------------------

func TestTrackerLookupNoFlooding(t *testing.T) {
	sys := newTestSystem(t, 69, func(c *Config) {
		c.Ps = 0.8
		c.TrackerMode = true
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	keys := make([]string, 60)
	for i := range keys {
		keys[i] = fmt.Sprintf("trk-%03d", i)
		r, err := sys.StoreSync(peers[(i*7)%60], keys[i], "v")
		if err != nil || !r.OK {
			t.Fatalf("store: %+v %v", r, err)
		}
	}
	before := sys.Stats().FloodsSent
	okCount := 0
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+3)%60], key)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			okCount++
		}
	}
	if got := sys.Stats().FloodsSent - before; got != 0 {
		t.Fatalf("tracker mode flooded %d times; must be 0", got)
	}
	if okCount < 57 {
		t.Fatalf("only %d/60 tracker lookups succeeded", okCount)
	}
	// Trackers actually hold index entries.
	indexed := 0
	for _, tp := range sys.TPeers() {
		indexed += tp.IndexSize()
	}
	if indexed == 0 {
		t.Fatal("no tracker index entries")
	}
}

func TestTrackerMissFailsFast(t *testing.T) {
	sys := newTestSystem(t, 70, func(c *Config) {
		c.Ps = 0.6
		c.TrackerMode = true
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	r, err := sys.LookupSync(peers[2], "tracker-miss")
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("miss succeeded")
	}
	// notFoundMsg beats the timeout by a wide margin.
	if r.Latency >= sys.Cfg.LookupTimeout {
		t.Fatalf("tracker miss waited for the timeout (%v)", r.Latency)
	}
}

func TestTrackerSurvivesHolderLeave(t *testing.T) {
	sys := newTestSystem(t, 71, func(c *Config) {
		c.Ps = 0.8
		c.TrackerMode = true
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	r, err := sys.StoreSync(peers[4], "leaving-holder", "v")
	if err != nil || !r.OK {
		t.Fatal(err)
	}
	holder := sys.Peer(r.Holder.Addr)
	if holder.Role != SPeer {
		t.Skip("holder is a t-peer at this seed")
	}
	holder.Leave() // load moves to a neighbor, which re-announces
	sys.Settle(10 * sim.Second)
	lr, err := sys.LookupSync(peers[9], "leaving-holder")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.OK {
		t.Fatal("item unreachable after its holder left gracefully")
	}
}

package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestSetMetricsRecordsLookups checks the hot-path instrumentation: every
// synchronous store and lookup lands in the registry histograms with
// plausible values, and detaching the registry stops recording.
func TestSetMetricsRecordsLookups(t *testing.T) {
	sys := newTestSystem(t, 21, func(c *Config) { c.Ps = 0.5 })
	reg := obs.NewRegistry()
	sys.SetMetrics(reg)

	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(10 * sim.Second)

	const ops = 30
	for i := 0; i < ops; i++ {
		if _, err := sys.StoreSync(peers[i], keyf("met-%03d", i), "v"); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	okCount := 0
	for i := 0; i < ops; i++ {
		r, err := sys.LookupSync(peers[(i*7+1)%len(peers)], keyf("met-%03d", i))
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if r.OK {
			okCount++
		}
	}

	lat := reg.Histogram("lookup.latency_us")
	hops := reg.Histogram("lookup.hops")
	if got := reg.Counter("lookup.ok").Value(); got != int64(okCount) {
		t.Fatalf("lookup.ok = %d, want %d", got, okCount)
	}
	if got := reg.Counter("lookup.fail").Value(); got != int64(ops-okCount) {
		t.Fatalf("lookup.fail = %d, want %d", got, ops-okCount)
	}
	if lat.Count() != uint64(okCount) || hops.Count() != uint64(okCount) {
		t.Fatalf("histogram counts lat=%d hops=%d, want %d", lat.Count(), hops.Count(), okCount)
	}
	if st := reg.Histogram("store.latency_us"); st.Count() != ops {
		t.Fatalf("store.latency_us count = %d, want %d", st.Count(), ops)
	}
	// Latencies are end-to-end simulated microseconds: nonzero for any
	// lookup that left the origin, bounded by the op timeout.
	if max := lat.Quantile(1); max <= 0 || max > float64(sys.Cfg.LookupTimeout) {
		t.Fatalf("lookup latency max %v outside (0, %v]", max, sys.Cfg.LookupTimeout)
	}

	sys.SetMetrics(nil)
	if _, err := sys.LookupSync(peers[1], "met-000"); err != nil {
		t.Fatalf("lookup after detach: %v", err)
	}
	if got := lat.Count(); got != uint64(okCount) {
		t.Fatalf("recording continued after SetMetrics(nil): %d", got)
	}
}

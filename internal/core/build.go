package core

import (
	"fmt"

	"repro/internal/runtime"
)

// PopulationOpts configures BuildPopulation.
type PopulationOpts struct {
	// N is how many peers to create.
	N int
	// Capacities optionally assigns per-peer link capacities (index i for
	// the i-th created peer); missing entries default to 1.
	Capacities []float64
	// Hosts optionally pins peers to physical hosts; missing entries are
	// drawn uniformly from the topology's stub nodes.
	Hosts []int
	// Interests optionally assigns per-peer interest categories.
	Interests []int
	// ForceRole pins every peer's role instead of letting the server
	// decide (used to build the ring before populating s-networks).
	ForceRole *Role
}

// BuildPopulation joins N peers one at a time, driving the engine until each
// join completes, and returns the peers with their join statistics. Joining
// sequentially keeps runs deterministic; concurrent joins are exercised
// separately by the tests.
func (s *System) BuildPopulation(o PopulationOpts) ([]*Peer, []JoinStats, error) {
	var stubs []int
	if pl := s.rt.Placement(); pl != nil {
		stubs = pl.StubHosts()
	}
	if len(stubs) == 0 {
		// Placement-free runtimes host every peer on host 0.
		stubs = []int{0}
	}
	peers := make([]*Peer, 0, o.N)
	stats := make([]JoinStats, 0, o.N)
	for i := 0; i < o.N; i++ {
		opts := JoinOpts{Capacity: 1, ForceRole: o.ForceRole}
		if i < len(o.Capacities) {
			opts.Capacity = o.Capacities[i]
		}
		if i < len(o.Hosts) {
			opts.Host = o.Hosts[i]
		} else {
			s.rt.Do(func() { opts.Host = stubs[s.rt.Rand().Intn(len(stubs))] })
		}
		if i < len(o.Interests) {
			opts.Interest = o.Interests[i]
		}
		p, js, err := s.JoinSync(opts)
		if err != nil {
			return peers, stats, fmt.Errorf("core: peer %d of %d: %w", i, o.N, err)
		}
		peers = append(peers, p)
		stats = append(stats, js)
	}
	return peers, stats, nil
}

// JoinSync joins one peer and drives the engine until the join completes.
func (s *System) JoinSync(opts JoinOpts) (*Peer, JoinStats, error) {
	var (
		done  bool
		stats JoinStats
	)
	var p *Peer
	s.rt.Do(func() {
		p = s.Join(opts, func(_ *Peer, js JoinStats) {
			done = true
			stats = js
		})
	})
	if err := s.rt.Await(func() bool { return done }); err != nil {
		return p, stats, fmt.Errorf("join of peer %d: %w", p.Addr, err)
	}
	return p, stats, nil
}

// StoreSync stores a key and drives the engine until the operation resolves.
func (s *System) StoreSync(p *Peer, key, value string) (OpResult, error) {
	return s.runOp(func(done func(OpResult)) { p.Store(key, value, done) })
}

// LookupSync looks up a key and drives the engine until the operation
// resolves (success, definitive miss, or timeout).
func (s *System) LookupSync(p *Peer, key string) (OpResult, error) {
	return s.runOp(func(done func(OpResult)) { p.Lookup(key, done) })
}

// DeleteSync deletes a key and drives the engine until the operation
// resolves. A successful result with an empty Value means the key did not
// exist at its owner.
func (s *System) DeleteSync(p *Peer, key string) (OpResult, error) {
	return s.runOp(func(done func(OpResult)) { p.Delete(key, done) })
}

// runOp drives the engine until the issued operation completes. Every
// operation carries a timeout, so completion is guaranteed while the engine
// has events.
func (s *System) runOp(issue func(done func(OpResult))) (OpResult, error) {
	var (
		finished bool
		result   OpResult
	)
	s.rt.Do(func() {
		issue(func(r OpResult) {
			finished = true
			result = r
		})
	})
	if err := s.rt.Await(func() bool { return finished }); err != nil {
		return result, fmt.Errorf("core: operation: %w", err)
	}
	return result, nil
}

// SearchSync runs a prefix search and drives the engine until its window
// closes (or it fills maxResults).
func (s *System) SearchSync(p *Peer, prefix string, maxResults int, window runtime.Time) (SearchResult, error) {
	var (
		finished bool
		result   SearchResult
	)
	s.rt.Do(func() {
		p.SearchPrefix(prefix, maxResults, window, func(r SearchResult) {
			finished = true
			result = r
		})
	})
	if err := s.rt.Await(func() bool { return finished }); err != nil {
		return result, fmt.Errorf("core: search: %w", err)
	}
	return result, nil
}

// Settle advances time by d, letting periodic maintenance (HELLO rounds,
// finger refresh, watchdogs) run.
func (s *System) Settle(d runtime.Time) {
	s.rt.Sleep(d)
}

package core

import (
	"fmt"

	"repro/internal/sim"
)

// maxStepsPerOp bounds how many engine events a single synchronous join or
// data operation may consume before the builder declares it stuck. The
// periodic tickers keep the event queue non-empty forever, so "run to
// quiescence" is not a usable stop condition.
const maxStepsPerOp = 20_000_000

// PopulationOpts configures BuildPopulation.
type PopulationOpts struct {
	// N is how many peers to create.
	N int
	// Capacities optionally assigns per-peer link capacities (index i for
	// the i-th created peer); missing entries default to 1.
	Capacities []float64
	// Hosts optionally pins peers to physical hosts; missing entries are
	// drawn uniformly from the topology's stub nodes.
	Hosts []int
	// Interests optionally assigns per-peer interest categories.
	Interests []int
	// ForceRole pins every peer's role instead of letting the server
	// decide (used to build the ring before populating s-networks).
	ForceRole *Role
}

// BuildPopulation joins N peers one at a time, driving the engine until each
// join completes, and returns the peers with their join statistics. Joining
// sequentially keeps runs deterministic; concurrent joins are exercised
// separately by the tests.
func (s *System) BuildPopulation(o PopulationOpts) ([]*Peer, []JoinStats, error) {
	stubs := s.Topo.StubNodes()
	if len(stubs) == 0 {
		return nil, nil, fmt.Errorf("core: topology has no stub nodes to host peers")
	}
	peers := make([]*Peer, 0, o.N)
	stats := make([]JoinStats, 0, o.N)
	for i := 0; i < o.N; i++ {
		opts := JoinOpts{Capacity: 1, ForceRole: o.ForceRole}
		if i < len(o.Capacities) {
			opts.Capacity = o.Capacities[i]
		}
		if i < len(o.Hosts) {
			opts.Host = o.Hosts[i]
		} else {
			opts.Host = stubs[s.Eng.Rand().Intn(len(stubs))]
		}
		if i < len(o.Interests) {
			opts.Interest = o.Interests[i]
		}
		p, js, err := s.JoinSync(opts)
		if err != nil {
			return peers, stats, fmt.Errorf("core: peer %d of %d: %w", i, o.N, err)
		}
		peers = append(peers, p)
		stats = append(stats, js)
	}
	return peers, stats, nil
}

// JoinSync joins one peer and drives the engine until the join completes.
func (s *System) JoinSync(opts JoinOpts) (*Peer, JoinStats, error) {
	var (
		done  bool
		stats JoinStats
	)
	p := s.Join(opts, func(_ *Peer, js JoinStats) {
		done = true
		stats = js
	})
	for steps := 0; !done; steps++ {
		if steps > maxStepsPerOp {
			return p, stats, fmt.Errorf("join of peer %d did not complete in %d events", p.Addr, maxStepsPerOp)
		}
		if !s.Eng.Step() {
			return p, stats, fmt.Errorf("join of peer %d stalled: event queue empty", p.Addr)
		}
	}
	return p, stats, nil
}

// StoreSync stores a key and drives the engine until the operation resolves.
func (s *System) StoreSync(p *Peer, key, value string) (OpResult, error) {
	return s.runOp(func(done func(OpResult)) { p.Store(key, value, done) })
}

// LookupSync looks up a key and drives the engine until the operation
// resolves (success, definitive miss, or timeout).
func (s *System) LookupSync(p *Peer, key string) (OpResult, error) {
	return s.runOp(func(done func(OpResult)) { p.Lookup(key, done) })
}

// runOp drives the engine until the issued operation completes. Every
// operation carries a timeout, so completion is guaranteed while the engine
// has events.
func (s *System) runOp(issue func(done func(OpResult))) (OpResult, error) {
	var (
		finished bool
		result   OpResult
	)
	issue(func(r OpResult) {
		finished = true
		result = r
	})
	for steps := 0; !finished; steps++ {
		if steps > maxStepsPerOp {
			return result, fmt.Errorf("core: operation did not complete in %d events", maxStepsPerOp)
		}
		if !s.Eng.Step() {
			return result, fmt.Errorf("core: operation stalled: event queue empty")
		}
	}
	return result, nil
}

// SearchSync runs a prefix search and drives the engine until its window
// closes (or it fills maxResults).
func (s *System) SearchSync(p *Peer, prefix string, maxResults int, window sim.Time) (SearchResult, error) {
	var (
		finished bool
		result   SearchResult
	)
	p.SearchPrefix(prefix, maxResults, window, func(r SearchResult) {
		finished = true
		result = r
	})
	for steps := 0; !finished; steps++ {
		if steps > maxStepsPerOp {
			return result, fmt.Errorf("core: search did not complete in %d events", maxStepsPerOp)
		}
		if !s.Eng.Step() {
			return result, fmt.Errorf("core: search stalled: event queue empty")
		}
	}
	return result, nil
}

// Settle advances simulated time by d, letting periodic maintenance (HELLO
// rounds, finger refresh, watchdogs) run.
func (s *System) Settle(d sim.Time) {
	s.Eng.RunUntil(s.Eng.Now() + d)
}

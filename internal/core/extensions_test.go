package core

import (
	"fmt"
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

// --- Random-walk search ---------------------------------------------------------

func TestWalkFindsReplicatedItem(t *testing.T) {
	sys := newTestSystem(t, 80, func(c *Config) {
		c.Ps = 0.9
		c.RandomWalk = true
		c.WalkCount = 6
		c.WalkTTL = 48
		c.LookupTimeout = 10 * sim.Second
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	// Plant replicas across one big s-network so walkers likely cross one.
	sps := sys.SPeers()
	key := "walk-target"
	did := sps[0].segmentID(key)
	var owner *Peer
	for _, sp := range sps {
		if sp.inLocalSegment(did) {
			owner = sp
			break
		}
	}
	if owner == nil {
		t.Skip("no s-peer owns the key locally at this seed")
	}
	// Replicate the item on many members of that s-network.
	root := snetOf(sys, owner)
	count := 0
	for _, p := range sys.Peers() {
		if r := snetOf(sys, p); r != nil && r.Addr == root.Addr {
			p.storeLocal(Item{Key: key, Value: "v", DID: idHash(key)})
			count++
		}
	}
	if count < 3 {
		t.Skip("s-network too small for a walk test")
	}
	r, err := sys.LookupSync(owner, key)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		// owner itself holds it; local hit expected
		t.Fatal("walker/local lookup failed on an owned key")
	}
	// Now from a peer in the same s-network without the item.
	if sys.Stats().WalksSent == 0 {
		// Delete the item at one member and look up from there.
		var seeker *Peer
		for _, p := range sys.Peers() {
			if r := snetOf(sys, p); r != nil && r.Addr == root.Addr && p != owner {
				seeker = p
				break
			}
		}
		if seeker == nil {
			t.Skip("no second member")
		}
		delete(seeker.data, idHash(key))
		lr, err := sys.LookupSync(seeker, key)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.OK {
			t.Fatal("walkers missed a fully replicated item")
		}
	}
	if sys.Stats().WalksSent == 0 {
		t.Fatal("no walkers were launched despite RandomWalk mode")
	}
}

func TestWalkContactsFewerPeersThanFlood(t *testing.T) {
	// On a large s-network, a k-walker search for a MISSING key contacts
	// at most k*WalkTTL peers while a deep flood touches everyone.
	build := func(walk bool) int {
		sys := newTestSystem(t, 81, func(c *Config) {
			c.Ps = 0.95
			c.RandomWalk = walk
			c.WalkCount = 1
			c.WalkTTL = 4
			c.TTL = 16
			c.LookupTimeout = 3 * sim.Second
		})
		if _, _, err := sys.BuildPopulation(PopulationOpts{N: 100}); err != nil {
			t.Fatal(err)
		}
		sys.Settle(6 * sys.Cfg.HelloEvery)
		// A key that is local to the origin removes ring-path noise from
		// the comparison.
		origin := sys.SPeers()[0]
		key := ""
		for i := 0; i < 10000; i++ {
			cand := fmt.Sprintf("missing-%05d", i)
			if origin.inLocalSegment(origin.segmentID(cand)) {
				key = cand
				break
			}
		}
		if key == "" {
			t.Skip("no local key found")
		}
		var contacts int
		done := false
		origin.Lookup(key, func(r OpResult) { done = true; contacts = r.Contacts })
		for !done {
			if !sys.Eng().Step() {
				t.Fatal("engine dry")
			}
		}
		return contacts
	}
	walkContacts := build(true)
	floodContacts := build(false)
	if walkContacts >= floodContacts {
		t.Fatalf("walk contacted %d peers, flood %d; walks must touch fewer", walkContacts, floodContacts)
	}
}

// --- Caching (future work) ------------------------------------------------------

func TestCachingSpreadsHotLoad(t *testing.T) {
	run := func(caching bool) (maxServes uint64, lastLatency sim.Time) {
		sys := newTestSystem(t, 82, func(c *Config) {
			c.Ps = 0.8
			c.Caching = caching
			c.CacheHotThreshold = 5
			c.CacheWindow = 1000 * sim.Second
			c.CacheTTL = 1000 * sim.Second
			c.CacheFanout = 3
		})
		peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(6 * sys.Cfg.HelloEvery)
		if _, err := sys.StoreSync(peers[0], "viral-video", "v"); err != nil {
			t.Fatal(err)
		}
		// Everyone hammers the same item.
		for round := 0; round < 3; round++ {
			for i, p := range peers {
				if p.HasItem("viral-video") {
					continue
				}
				r, err := sys.LookupSync(p, "viral-video")
				if err != nil {
					t.Fatal(err)
				}
				if r.OK {
					lastLatency = r.Latency
				}
				_ = i
			}
		}
		for _, p := range sys.Peers() {
			if p.ServeCount() > maxServes {
				maxServes = p.ServeCount()
			}
		}
		return maxServes, lastLatency
	}
	hotNoCache, _ := run(false)
	hotCache, _ := run(true)
	if hotCache >= hotNoCache {
		t.Fatalf("caching did not reduce the hottest peer's load: %d vs %d", hotCache, hotNoCache)
	}
}

func TestCachePushAndHitCounters(t *testing.T) {
	sys := newTestSystem(t, 83, func(c *Config) {
		c.Ps = 0.8
		c.Caching = true
		c.CacheHotThreshold = 3
		c.CacheWindow = 1000 * sim.Second
		c.CacheTTL = 1000 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	if _, err := sys.StoreSync(peers[0], "hot-item", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := sys.LookupSync(peers[(i*7+1)%50], "hot-item"); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.CachePushes == 0 {
		t.Fatal("hot item never pushed to surrogates")
	}
	cached := 0
	for _, p := range sys.Peers() {
		cached += p.NumCached()
	}
	if cached == 0 {
		t.Fatal("no surrogate copies installed")
	}
	if st.CacheHits == 0 {
		t.Fatal("surrogate copies never served")
	}
}

func TestCacheEntriesExpire(t *testing.T) {
	sys := newTestSystem(t, 84, func(c *Config) {
		c.Ps = 0.8
		c.Caching = true
		c.CacheHotThreshold = 2
		c.CacheWindow = 1000 * sim.Second
		c.CacheTTL = 15 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 40})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	if _, err := sys.StoreSync(peers[0], "fading-item", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := sys.LookupSync(peers[(i*11+1)%40], "fading-item"); err != nil {
			t.Fatal(err)
		}
	}
	had := 0
	for _, p := range sys.Peers() {
		had += p.NumCached()
	}
	if had == 0 {
		t.Skip("item never became hot at this seed")
	}
	sys.Settle(60 * sim.Second)
	still := 0
	for _, p := range sys.Peers() {
		still += p.NumCached()
	}
	if still != 0 {
		t.Fatalf("%d cached copies survived their idle TTL", still)
	}
}

// --- Prefix search --------------------------------------------------------------

// plantLocalKey returns the next numbered key with the given format whose
// segment id falls inside m's own cached segment. Tests that plant items
// directly into a peer's data map must use locally-owned keys: the periodic
// rehome sweep (rehomeForeignItems) ships anything foreign to its owner
// segment, which would move planted items away mid-test.
func plantLocalKey(m *Peer, format string, n *int) string {
	for {
		key := fmt.Sprintf(format, *n)
		*n++
		if m.inLocalSegment(m.segmentID(key)) {
			return key
		}
	}
}

func TestSearchPrefixCollectsMatches(t *testing.T) {
	sys := newTestSystem(t, 85, func(c *Config) {
		c.Ps = 0.85
		c.TTL = 8
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	// Plant themed items directly inside one s-network so a local search
	// can see them all.
	origin := sys.SPeers()[0]
	root := snetOf(sys, origin)
	members := []*Peer{}
	for _, p := range sys.Peers() {
		if r := snetOf(sys, p); r != nil && r.Addr == root.Addr {
			members = append(members, p)
		}
	}
	want := 0
	kn := 0
	for _, m := range members {
		key := plantLocalKey(m, "music/track%03d.ogg", &kn)
		m.storeLocal(Item{Key: key, Value: "v", DID: idHash(key)})
		want++
		// Distractors must not match.
		other := plantLocalKey(m, "docs/file%03d", &kn)
		m.storeLocal(Item{Key: other, Value: "v", DID: idHash(other)})
	}
	res, err := sys.SearchSync(origin, "music/", 0, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != want {
		t.Fatalf("search found %d matches, want %d", len(res.Items), want)
	}
	for _, it := range res.Items {
		if len(it.Key) < 6 || it.Key[:6] != "music/" {
			t.Fatalf("non-matching result %q", it.Key)
		}
	}
	if res.Contacts == 0 && len(members) > 1 {
		t.Fatal("search contacted nobody")
	}
}

func TestSearchPrefixMaxResults(t *testing.T) {
	sys := newTestSystem(t, 86, func(c *Config) {
		c.Ps = 0.85
		c.TTL = 8
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 50}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	origin := sys.SPeers()[0]
	root := snetOf(sys, origin)
	n := 0
	kn := 0
	for _, p := range sys.Peers() {
		if r := snetOf(sys, p); r != nil && r.Addr == root.Addr {
			key := plantLocalKey(p, "pics/img%03d", &kn)
			p.storeLocal(Item{Key: key, Value: "v", DID: idHash(key)})
			n++
		}
	}
	if n < 3 {
		t.Skip("s-network too small")
	}
	res, err := sys.SearchSync(origin, "pics/", 2, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("maxResults ignored: got %d", len(res.Items))
	}
}

func TestSearchInterestRouted(t *testing.T) {
	sys := newTestSystem(t, 87, func(c *Config) {
		c.Ps = 0.8
		c.InterestCategories = 3
		c.Assignment = AssignInterest
		c.TTL = 10
	})
	tRole, sRole := TPeer, SPeer
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 9, ForceRole: &tRole}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(2 * sim.Second)
	interests := make([]int, 36)
	for i := range interests {
		interests[i] = i % 3
	}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 36, Interests: interests, ForceRole: &sRole})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)

	// Publish into category 1 from a cat-1 peer.
	var pub, other *Peer
	for _, p := range peers {
		if p.Interest == 1 && pub == nil {
			pub = p
		}
		if p.Interest == 2 && other == nil {
			other = p
		}
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("cat01/song%02d", i)
		if _, err := sys.StoreSync(pub, key, "v"); err != nil {
			t.Fatal(err)
		}
	}
	// A peer from another community searches the cat01/ field of interest:
	// the query routes to the serving s-network (§5.3 partial search).
	res, err := sys.SearchSync(other, "cat01/", 0, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) < 5 {
		t.Fatalf("cross-community field search found %d/6 items", len(res.Items))
	}
}

// idHash is a test shorthand.
func idHash(key string) idspace.ID {
	return idspace.HashKey(key)
}

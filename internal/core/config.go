// Package core implements the paper's contribution: a hybrid peer-to-peer
// system composed of a structured ring of t-peers (the t-network) with one
// unstructured, degree-bounded tree of s-peers (an s-network) attached to
// every t-peer.
//
// The package contains the full protocol suite from sections 3-5 of the
// paper: t-peer join/leave with the concurrency triangles and
// substitution-on-leave, s-peer join via random-branch walks, HELLO/ack
// failure detection with suppress timers, data insertion under both placement
// schemes, two-tier lookup (local flood, then t-network routing, then remote
// flood), and the five enhancements (link heterogeneity, topology awareness,
// interest-based s-networks, bypass links, and BitTorrent-style tracker
// s-networks).
package core

import (
	"fmt"

	"repro/internal/runtime"
)

// Role distinguishes the two peer kinds.
type Role uint8

// Peer roles.
const (
	// TPeer is a member of the structured core ring.
	TPeer Role = iota
	// SPeer is a member of an unstructured stub network.
	SPeer
)

func (r Role) String() string {
	if r == TPeer {
		return "t-peer"
	}
	return "s-peer"
}

// Placement selects the data placement scheme from section 3.4.
type Placement uint8

const (
	// PlaceAtTPeer is the first scheme: remotely generated data is stored
	// at the t-peer that owns the id segment. Simple, but hot-spots the
	// t-peers (Fig. 4a-c).
	PlaceAtTPeer Placement = iota
	// PlaceSpread is the improved scheme: the owning t-peer forwards the
	// insertion to a random directly connected peer (or keeps it), and
	// the chosen peer repeats the random step, spreading load across the
	// s-network (Fig. 4d-f).
	PlaceSpread
)

func (p Placement) String() string {
	if p == PlaceAtTPeer {
		return "t-peer"
	}
	return "spread"
}

// IDGen selects how the bootstrap server generates t-peer ids (§3.2.1).
type IDGen uint8

const (
	// IDRandom draws a uniform random id.
	IDRandom IDGen = iota
	// IDHashAddr hashes the peer's address.
	IDHashAddr
	// IDLocation derives the id from the peer's physical coordinates so
	// that physically close peers are close on the ring.
	IDLocation
)

// Assignment selects how the server maps joining s-peers to s-networks.
type Assignment uint8

const (
	// AssignSmallest picks the s-network with the fewest s-peers,
	// distributing the load evenly (the default in §3.2.2).
	AssignSmallest Assignment = iota
	// AssignRandom picks uniformly at random.
	AssignRandom
	// AssignInterest matches the peer's declared interest category to the
	// s-network serving it (§5.3).
	AssignInterest
	// AssignCluster uses landmark binning to co-locate physically close
	// peers in the same s-network (§5.2).
	AssignCluster
)

// Config carries every tunable of the hybrid system.
type Config struct {
	// Ps is the target proportion of s-peers (the paper's central knob).
	Ps float64
	// Delta is the s-network degree constraint δ.
	Delta int
	// TTL is the default flood radius inside an s-network.
	TTL int
	// Placement selects the data placement scheme.
	Placement Placement
	// IDGen selects t-peer id generation.
	IDGen IDGen
	// Assignment selects s-network assignment for joining s-peers.
	Assignment Assignment

	// Heterogeneity makes the server rank peers by link capacity and
	// assign the fastest as t-peers (§5.1), and makes connect points
	// check link usage before accepting a child.
	Heterogeneity bool
	// MaxLinkUsage is the link-usage threshold (degree / capacity) above
	// which a connect point passes a join request on (§5.1).
	MaxLinkUsage float64

	// TopologyAware enables landmark binning (§5.2); Landmarks is the
	// number of landmark peers.
	TopologyAware bool
	Landmarks     int

	// InterestCategories > 0 enables interest-based s-networks (§5.3)
	// with that many content categories.
	InterestCategories int

	// Bypass enables bypass links (§5.4); BypassTTL is their idle expiry.
	Bypass    bool
	BypassTTL runtime.Time

	// TrackerMode turns every s-network into a BitTorrent-style tracker
	// network (§5.5): the t-peer indexes its s-network's content and no
	// flooding happens.
	TrackerMode bool

	// Reflood is how many times a failed local flood is retried with the
	// TTL increased by one (§3.4 allows the peer to "increase the TTL
	// value ... and reflood"). 0 disables refloods.
	Reflood int

	// RandomWalk replaces s-network flooding with k-walker random walks
	// (§3.1 allows "flooding or random walks"). WalkCount walkers with
	// WalkTTL hop budgets search the tree.
	RandomWalk bool
	WalkCount  int
	WalkTTL    int

	// Caching implements the paper's future-work scheme: a peer that
	// serves the same item more than CacheHotThreshold times within
	// CacheWindow pushes copies to CacheFanout random tree neighbors
	// (surrogates); cached copies answer lookups and expire after
	// CacheTTL of idleness.
	Caching           bool
	CacheHotThreshold int
	CacheWindow       runtime.Time
	CacheTTL          runtime.Time
	CacheFanout       int

	// SuccessorRouting forwards data operations along successor pointers
	// only, without finger acceleration. The paper's NS2 simulation
	// behaves this way — its Table 2 reports ~N/2 contacted peers per
	// lookup at p_s = 0 and Fig. 6a calls the t-network step
	// "proportional to the total number of t-peers" — so the experiments
	// regenerating those results enable this to match the paper's shape.
	// Join requests always use fingers, as §4.1 assumes.
	SuccessorRouting bool

	// HelloEvery is the heartbeat period; HelloTimeout the failure
	// detection timeout; SuppressTimeout gates acknowledgment messages.
	HelloEvery      runtime.Time
	HelloTimeout    runtime.Time
	SuppressTimeout runtime.Time

	// LookupTimeout bounds lookup and store operations.
	LookupTimeout runtime.Time
	// JoinTimeout bounds a join before the peer retries through the
	// server.
	JoinTimeout runtime.Time

	// MessageBytes is the nominal control message size; DataBytes the
	// nominal data item payload size.
	MessageBytes int
	DataBytes    int

	// FingerRefreshEvery is the period of the t-network finger refresh.
	FingerRefreshEvery runtime.Time

	// ReplicationK is the replication factor: every stored item is kept on
	// its owning t-peer plus up to K−1 live ring successors, so a crash
	// cannot lose the only copy. 1 (the default) disables replication
	// entirely — no replica messages, no replica state, behavior identical
	// to the pre-replication protocol.
	ReplicationK int

	// LookupAlpha is the number of parallel ring probes a remote lookup fans
	// out, Kademlia-style: the origin (or, for s-peer origins, the first
	// t-peer on the climb) forwards the request toward the owning segment
	// along up to α distinct next hops; the first success wins and late
	// replies only decrement the outstanding-probe count. 1 (the default) is
	// the paper's single sequential probe, byte-identical to the pre-seam
	// protocol. Bounded by MaxLookupAlpha.
	LookupAlpha int

	// PathCache enables lookup-path caching: a successful remote lookup
	// deposits a (DID -> holder) hint at the origin and its ring entry
	// point, and later lookups shortcut straight at the holder. Hints expire
	// after PathCacheTTL of idleness (the surrogate-cache pattern), are
	// dropped when the suspect machinery marks the holder dead, and a holder
	// that no longer has the item bounces the hint off in one extra hop. See
	// pathcache.go.
	PathCache    bool
	PathCacheTTL runtime.Time

	// Route overrides the ring routing strategy; nil selects FingerWalk,
	// the paper's closest-preceding-finger walk. See RouteStrategy.
	Route RouteStrategy
}

// DefaultConfig returns the parameter set used by the paper-scale
// experiments: δ = 3 (as in §6), TTL = 4, scheme-2 placement.
func DefaultConfig() Config {
	return Config{
		Ps:                 0.5,
		Delta:              3,
		TTL:                4,
		Placement:          PlaceSpread,
		IDGen:              IDRandom,
		Assignment:         AssignSmallest,
		MaxLinkUsage:       3,
		Landmarks:          8,
		BypassTTL:          120 * runtime.Second,
		Reflood:            0,
		HelloEvery:         2 * runtime.Second,
		HelloTimeout:       5 * runtime.Second,
		SuppressTimeout:    1 * runtime.Second,
		LookupTimeout:      30 * runtime.Second,
		JoinTimeout:        30 * runtime.Second,
		MessageBytes:       128,
		DataBytes:          512,
		FingerRefreshEvery: 2 * runtime.Second,
		WalkCount:          4,
		WalkTTL:            32,
		CacheHotThreshold:  8,
		CacheWindow:        30 * runtime.Second,
		CacheTTL:           120 * runtime.Second,
		CacheFanout:        2,
		ReplicationK:       1,
		LookupAlpha:        1,
		PathCacheTTL:       120 * runtime.Second,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Ps < 0 || c.Ps > 1:
		return fmt.Errorf("core: Ps %v outside [0, 1]", c.Ps)
	case c.Delta < 2:
		return fmt.Errorf("core: Delta %d < 2 cannot form a tree", c.Delta)
	case c.TTL < 1:
		return fmt.Errorf("core: TTL %d < 1", c.TTL)
	case c.HelloEvery <= 0, c.HelloTimeout <= 0:
		return fmt.Errorf("core: HELLO periods must be positive")
	case c.HelloTimeout <= c.HelloEvery:
		return fmt.Errorf("core: HelloTimeout %v must exceed HelloEvery %v", c.HelloTimeout, c.HelloEvery)
	case c.LookupTimeout <= 0:
		return fmt.Errorf("core: LookupTimeout must be positive")
	case c.MessageBytes <= 0:
		return fmt.Errorf("core: MessageBytes must be positive")
	case c.TopologyAware && c.Landmarks < 1:
		return fmt.Errorf("core: TopologyAware requires at least one landmark")
	case c.ReplicationK < 0:
		return fmt.Errorf("core: ReplicationK %d must be >= 0", c.ReplicationK)
	case c.LookupAlpha < 1 || c.LookupAlpha > MaxLookupAlpha:
		return fmt.Errorf("core: LookupAlpha %d outside [1, %d]", c.LookupAlpha, MaxLookupAlpha)
	case c.PathCacheTTL <= 0:
		return fmt.Errorf("core: PathCacheTTL must be positive")
	}
	return nil
}

// withDefaults fills zero-valued fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Delta == 0 {
		c.Delta = d.Delta
	}
	if c.TTL == 0 {
		c.TTL = d.TTL
	}
	if c.MaxLinkUsage == 0 {
		c.MaxLinkUsage = d.MaxLinkUsage
	}
	if c.Landmarks == 0 {
		c.Landmarks = d.Landmarks
	}
	if c.BypassTTL == 0 {
		c.BypassTTL = d.BypassTTL
	}
	if c.HelloEvery == 0 {
		c.HelloEvery = d.HelloEvery
	}
	if c.HelloTimeout == 0 {
		c.HelloTimeout = d.HelloTimeout
	}
	if c.SuppressTimeout == 0 {
		c.SuppressTimeout = d.SuppressTimeout
	}
	if c.LookupTimeout == 0 {
		c.LookupTimeout = d.LookupTimeout
	}
	if c.JoinTimeout == 0 {
		c.JoinTimeout = d.JoinTimeout
	}
	if c.MessageBytes == 0 {
		c.MessageBytes = d.MessageBytes
	}
	if c.DataBytes == 0 {
		c.DataBytes = d.DataBytes
	}
	if c.FingerRefreshEvery == 0 {
		c.FingerRefreshEvery = d.FingerRefreshEvery
	}
	if c.WalkCount == 0 {
		c.WalkCount = d.WalkCount
	}
	if c.WalkTTL == 0 {
		c.WalkTTL = d.WalkTTL
	}
	if c.CacheHotThreshold == 0 {
		c.CacheHotThreshold = d.CacheHotThreshold
	}
	if c.CacheWindow == 0 {
		c.CacheWindow = d.CacheWindow
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = d.CacheTTL
	}
	if c.CacheFanout == 0 {
		c.CacheFanout = d.CacheFanout
	}
	if c.ReplicationK == 0 {
		c.ReplicationK = d.ReplicationK
	}
	if c.LookupAlpha == 0 {
		c.LookupAlpha = d.LookupAlpha
	}
	if c.PathCacheTTL == 0 {
		c.PathCacheTTL = d.PathCacheTTL
	}
	if c.Route == nil {
		c.Route = FingerWalk{}
	}
	return c
}

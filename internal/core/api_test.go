package core

import (
	"testing"

	"repro/internal/sim"
)

func TestConfigValidateErrors(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"ps<0", func(c *Config) { c.Ps = -0.1 }},
		{"ps>1", func(c *Config) { c.Ps = 1.1 }},
		{"delta<2", func(c *Config) { c.Delta = 1 }},
		{"ttl<1", func(c *Config) { c.TTL = 0 }},
		{"hello0", func(c *Config) { c.HelloEvery = 0 }},
		{"timeout<=hello", func(c *Config) { c.HelloTimeout = c.HelloEvery }},
		{"lookup0", func(c *Config) { c.LookupTimeout = 0 }},
		{"msg0", func(c *Config) { c.MessageBytes = 0 }},
		{"landmarks", func(c *Config) { c.TopologyAware = true; c.Landmarks = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	var zero Config
	filled := zero.withDefaults()
	d := DefaultConfig()
	if filled.Delta != d.Delta || filled.TTL != d.TTL ||
		filled.HelloEvery != d.HelloEvery || filled.LookupTimeout != d.LookupTimeout ||
		filled.WalkCount != d.WalkCount || filled.CacheTTL != d.CacheTTL {
		t.Fatalf("withDefaults left gaps: %+v", filled)
	}
	// Explicit values are preserved.
	custom := Config{Delta: 5, TTL: 9}
	out := custom.withDefaults()
	if out.Delta != 5 || out.TTL != 9 {
		t.Fatal("withDefaults clobbered explicit values")
	}
}

func TestEnumStrings(t *testing.T) {
	if TPeer.String() != "t-peer" || SPeer.String() != "s-peer" {
		t.Fatal("Role strings")
	}
	if PlaceAtTPeer.String() != "t-peer" || PlaceSpread.String() != "spread" {
		t.Fatal("Placement strings")
	}
}

func TestPeerAccessors(t *testing.T) {
	sys := newTestSystem(t, 90, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 30}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	tp := sys.TPeers()[0]
	if !tp.Successor().Valid() || !tp.Predecessor().Valid() {
		t.Fatal("t-peer ring accessors invalid")
	}
	if tp.TNet().Addr != tp.Addr {
		t.Fatal("t-peer is its own s-network root")
	}
	if tp.ConnectPoint().Valid() {
		t.Fatal("t-peer has a connect point")
	}
	sp := sys.SPeers()[0]
	if !sp.ConnectPoint().Valid() || !sp.TNet().Valid() {
		t.Fatal("s-peer accessors invalid")
	}
	if sp.NumItems() != len(sp.data) {
		t.Fatal("NumItems mismatch")
	}
}

func TestServerAccessors(t *testing.T) {
	sys := newTestSystem(t, 91, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	sv := sys.Server()
	if sv.RingSize() != len(sys.TPeers()) {
		t.Fatalf("RingSize %d != live t-peers %d", sv.RingSize(), len(sys.TPeers()))
	}
	if len(sv.Landmarks()) == 0 {
		t.Fatal("no landmarks")
	}
	sizes := sv.SNetSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != len(sys.SPeers()) {
		t.Fatalf("registry s-peer count %d != live %d", total, len(sys.SPeers()))
	}
}

func TestRingLocateHealsOrphanTPeer(t *testing.T) {
	// White box: blow away a t-peer's ring pointers; the next finger tick
	// must re-anchor it through the server's registry.
	sys := newTestSystem(t, 92, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 12}) // all t-peers
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	victim := peers[5]
	victim.pred = NilRef
	victim.succ = NilRef
	sys.Settle(6 * sys.Cfg.FingerRefreshEvery)
	if !victim.succ.Valid() {
		t.Fatal("orphaned t-peer did not re-anchor")
	}
	// Stabilization then reconciles the whole ring.
	sys.Settle(10 * sys.Cfg.FingerRefreshEvery)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerIndexRemoveOnLoadTransfer(t *testing.T) {
	// When a t-join moves items out of a tracker s-network, the tracker's
	// stale index entries must be withdrawn.
	sys := newTestSystem(t, 93, func(c *Config) {
		c.Ps = 0.5
		c.TrackerMode = true
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 120; i++ {
		if _, err := sys.StoreSync(peers[i%20], keyf("idx-%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Grow the ring: segments split, load transfers run, indexes shrink.
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 20}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(20 * sim.Second)
	// Every lookup must still resolve (fresh announcements beat stale
	// entries; stale fetches fall back to notFound and the data is found
	// via its new tracker).
	ok := 0
	for i := 0; i < 120; i++ {
		r, err := sys.LookupSync(sys.Peers()[i%sys.NumPeers()], keyf("idx-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			ok++
		}
	}
	if ok < 110 {
		t.Fatalf("only %d/120 tracker lookups after ring growth", ok)
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Two systems built with identical seeds and workloads must agree on
	// every observable statistic.
	run := func() (SystemStats, int, int) {
		sys := newTestSystem(t, 94, func(c *Config) { c.Ps = 0.7 })
		peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
		if err != nil {
			t.Fatal(err)
		}
		sys.Settle(10 * sim.Second)
		for i := 0; i < 60; i++ {
			if _, err := sys.StoreSync(peers[i%50], keyf("det-%03d", i), "v"); err != nil {
				t.Fatal(err)
			}
		}
		hops := 0
		for i := 0; i < 60; i++ {
			r, err := sys.LookupSync(peers[(i*7)%50], keyf("det-%03d", i))
			if err != nil {
				t.Fatal(err)
			}
			hops += r.Hops
		}
		return sys.Stats(), hops, int(sys.Eng().Dispatched())
	}
	s1, h1, d1 := run()
	s2, h2, d2 := run()
	if s1 != s2 || h1 != h2 || d1 != d2 {
		t.Fatalf("non-deterministic:\n%+v hops=%d events=%d\n%+v hops=%d events=%d", s1, h1, d1, s2, h2, d2)
	}
}

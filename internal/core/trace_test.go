package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestLookupTraceReconstruction attaches a tracer, runs lookups, and checks
// that a single lookup's full event chain (start, hops, hit or fail) can be
// reconstructed from the trace by lookup id.
func TestLookupTraceReconstruction(t *testing.T) {
	sys := newTestSystem(t, 3, func(c *Config) { c.Ps = 0.5 })
	tr := obs.NewTracer(1 << 18)
	sys.SetTracer(tr)
	sys.Net().SetTracer(tr)

	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(10 * sim.Second)

	for i, p := range peers {
		if _, err := sys.StoreSync(p, keyf("trace-%03d", i), "v"); err != nil {
			t.Fatalf("store: %v", err)
		}
	}

	// Peer lifecycle events must have been traced during the build.
	joins := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.EvPeerJoin {
			joins++
		}
	}
	if joins != 60 {
		t.Errorf("peer_join events = %d, want 60", joins)
	}

	// Run lookups from distant peers until at least one traced chain has a
	// routed (cross-segment) portion.
	reconstructed := 0
	for i := range peers {
		origin := peers[(i+23)%len(peers)]
		r, err := sys.LookupSync(origin, keyf("trace-%03d", i))
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if r.Hops == 0 {
			continue // local hit: single-event chain, not interesting here
		}
		// Reconstruct this lookup from the trace. The qid is not returned
		// by the public API, so find it via the start event carrying the key.
		var qid uint64
		for _, e := range tr.Events() {
			if e.Kind == obs.EvLookupStart && e.Note == r.Key && e.From == int(origin.Addr) {
				qid = e.Lookup
			}
		}
		if qid == 0 {
			t.Fatalf("no lookup_start event for key %s", r.Key)
		}
		chain := tr.LookupEvents(qid)
		if len(chain) < 2 {
			t.Fatalf("lookup %d chain has %d events, want >= 2", qid, len(chain))
		}
		if chain[0].Kind != obs.EvLookupStart {
			t.Fatalf("chain does not begin with lookup_start: %v", chain[0].Kind)
		}
		last := chain[len(chain)-1].Kind
		terminal := last == obs.EvLookupHit || last == obs.EvLookupFail
		// A hit answer may race with a parallel flood hop; accept a hit
		// anywhere after the start as terminal evidence.
		for _, e := range chain[1:] {
			if e.Kind == obs.EvLookupHit || e.Kind == obs.EvLookupFail {
				terminal = true
			}
		}
		if r.OK && !terminal {
			t.Fatalf("successful lookup %d has no hit event in chain: %v", qid, chain)
		}
		// Hop events must carry monotonically consistent timestamps.
		for j := 1; j < len(chain); j++ {
			if chain[j].At < chain[j-1].At {
				t.Fatalf("lookup %d events out of order: %v then %v", qid, chain[j-1], chain[j])
			}
		}
		hops := 0
		for _, e := range chain {
			if e.Kind == obs.EvLookupHop || e.Kind == obs.EvLookupForward {
				hops++
			}
		}
		if r.OK && hops == 0 {
			t.Fatalf("multi-hop lookup %d traced no hop events", qid)
		}
		reconstructed++
	}
	if reconstructed == 0 {
		t.Fatal("no multi-hop lookup was reconstructed from the trace")
	}

	// Message-level events from simnet must be interleaved in the same trace.
	msgs := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.EvMsgSend {
			msgs++
		}
	}
	if msgs == 0 {
		t.Fatal("no msg_send events traced")
	}
}

// TestTracerOffIsInert checks the nil-tracer fast path end to end: a run with
// no tracer attached behaves identically (this is also implicitly covered by
// every other core test, which run untraced).
func TestTracerOffIsInert(t *testing.T) {
	sys := newTestSystem(t, 4, nil)
	if sys.tracer.Enabled() {
		t.Fatal("fresh system has tracing enabled")
	}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(5 * sim.Second)
	if _, err := sys.StoreSync(peers[0], "k", "v"); err != nil {
		t.Fatalf("store: %v", err)
	}
	r, err := sys.LookupSync(peers[len(peers)-1], "k")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !r.OK {
		t.Fatal("lookup failed without tracer")
	}
	// trace() on a nil tracer must be a no-op, not a panic.
	sys.trace(obs.EvLookupStart, 1, 1, simnet.None, 0, "x")
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/idspace"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// replConfig is the hardened DES timer set with replication enabled.
func replConfig(k int) func(*Config) {
	return func(c *Config) {
		c.Ps = 0.7
		hardenedConfig(c)
		c.ReplicationK = k
	}
}

// keyOwner finds the live t-peer whose segment covers the key (hash
// placement, the mode every test here runs in). Call under Do.
func keyOwner(sys *System, key string) *Peer {
	return ownerOf(sys, idspace.HashKey(key))
}

// TestReadRepair is the table-driven read-repair suite: with k >= 2 a lookup
// must keep succeeding after the owner of a key dies, served from a replica
// and repaired back onto the new owner.
func TestReadRepair(t *testing.T) {
	cases := []struct {
		name string
		k    int
		n    int
	}{
		{name: "owner-dead-replica-hit-k2", k: 2, n: 40},
		{name: "owner-dead-replica-hit-k3", k: 3, n: 40},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := newTestSystem(t, 77, replConfig(tc.k))
			peers, _, err := sys.BuildPopulation(PopulationOpts{N: tc.n})
			if err != nil {
				t.Fatal(err)
			}
			sys.Settle(10 * sim.Second)

			keys := make([]string, 24)
			for i := range keys {
				keys[i] = keyf("repl-%03d", i)
				r, err := sys.StoreSync(peers[(i*7)%len(peers)], keys[i], "v")
				if err != nil || !r.OK {
					t.Fatalf("store %s: ok=%v err=%v", keys[i], r.OK, err)
				}
			}
			// Let replication rounds push every key to its successors.
			sys.Settle(4 * sys.Cfg.HelloEvery)
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("after store: %v", err)
			}

			// Kill the owner of the first key, wait only until suspicion has
			// set in, and demand the key is still readable.
			var owner *Peer
			sys.Runtime().Do(func() { owner = keyOwner(sys, keys[0]) })
			if owner == nil {
				t.Fatal("no owner for key")
			}
			sys.Runtime().Do(func() { owner.Crash() })
			sys.Settle(2 * sys.Cfg.HelloTimeout)

			origin := peers[3]
			sys.Runtime().Do(func() {
				if !origin.Alive() {
					origin = sys.Peers()[0]
				}
			})
			r, err := sys.LookupSync(origin, keys[0])
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK {
				t.Fatalf("lookup of %s failed after owner crash", keys[0])
			}

			// At quiescence the key must live on the new owner again and the
			// replica invariant must hold system-wide.
			sys.Settle(6 * sys.Cfg.HelloTimeout)
			var repaired bool
			sys.Runtime().Do(func() {
				if p := keyOwner(sys, keys[0]); p != nil {
					repaired = p.HasItem(keys[0])
				}
			})
			if !repaired {
				t.Fatalf("key %s not re-installed on its new owner", keys[0])
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("after repair: %v", err)
			}
			st := sys.Stats()
			if st.ReplicasPushed == 0 {
				t.Fatal("no replicas were ever pushed at k>1")
			}
			if st.ReplicaServes+st.ReadRepairs+st.ReplicaPromotions == 0 {
				t.Fatal("owner died but no replica ever served, repaired or promoted")
			}
		})
	}
}

// TestReplicationDegradesBelowK: with fewer live t-peers than k the invariant
// degrades to "every item on every live t-peer" (want = min(k, live)) via the
// wrap-around detection, and must not report a perpetual deficit.
func TestReplicationDegradesBelowK(t *testing.T) {
	tRole := TPeer
	sys := newTestSystem(t, 5, func(c *Config) {
		hardenedConfig(c)
		c.ReplicationK = 3
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 2, ForceRole: &tRole})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	for i := 0; i < 12; i++ {
		r, err := sys.StoreSync(peers[i%2], keyf("deg-%02d", i), "v")
		if err != nil || !r.OK {
			t.Fatalf("store %d: ok=%v err=%v", i, r.OK, err)
		}
	}
	sys.Settle(4 * sys.Cfg.HelloEvery)
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("two t-peers, k=3: %v", err)
	}
	// With the ring shorter than the chain, both peers must hold every item.
	sys.Runtime().Do(func() {
		var h HealthScore
		h = sys.HealthScore()
		if h.ReplicaDeficit != 0 {
			t.Errorf("replica deficit %d reported in a fully wrapped ring", h.ReplicaDeficit)
		}
	})

	// Down to one: the survivor owns the whole ring and must still answer.
	sys.Runtime().Do(func() { peers[0].Crash() })
	sys.Settle(6 * sys.Cfg.HelloTimeout)
	for i := 0; i < 12; i++ {
		r, err := sys.LookupSync(peers[1], keyf("deg-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			t.Fatalf("lone survivor lost deg-%02d", i)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("lone survivor: %v", err)
	}
}

// TestRehomeSweepDedupes is the regression test for the double-send bug: an
// item present both in the local database and in the owned index (the normal
// state for an owner) that becomes foreign must be rehomed exactly once, not
// once per table.
func TestRehomeSweepDedupes(t *testing.T) {
	sys := newTestSystem(t, 11, replConfig(2))
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 30}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	sys.Runtime().Do(func() {
		tps := sys.TPeers()
		if len(tps) < 2 {
			t.Fatal("need at least two t-peers")
		}
		p := tps[0]
		// Find a key p does not own and plant it in both tables, the state a
		// segment handoff leaves behind.
		var it Item
		for i := 0; ; i++ {
			key := keyf("foreign-%04d", i)
			if !p.inLocalSegment(p.segmentID(key)) {
				it = Item{Key: key, Value: "v", DID: idspace.HashKey(key)}
				break
			}
		}
		p.storeLocal(it)
		p.ownedAdd(it)

		before := sys.stats.ItemsRehomed
		p.rehomeForeignItems()
		if got := sys.stats.ItemsRehomed - before; got != 1 {
			t.Fatalf("foreign item rehomed %d times, want exactly 1", got)
		}
		if _, ok := p.data[it.DID]; ok {
			t.Fatal("foreign item still in data after sweep")
		}
		if _, ok := p.owned[it.DID]; ok {
			t.Fatal("foreign item still in owned after sweep")
		}
	})
}

// TestDeleteDropsReplicas: a delete must remove the item from the owner, its
// replica chain and any s-peer holders, and a second delete of the same key
// must report that the key no longer existed.
func TestDeleteDropsReplicas(t *testing.T) {
	sys := newTestSystem(t, 23, replConfig(3))
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 36})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	key := "doomed-key"
	if r, err := sys.StoreSync(peers[2], key, "v"); err != nil || !r.OK {
		t.Fatalf("store: ok=%v err=%v", r.OK, err)
	}
	sys.Settle(4 * sys.Cfg.HelloEvery)

	r, err := sys.DeleteSync(peers[9], key)
	if err != nil || !r.OK {
		t.Fatalf("delete: ok=%v err=%v", r.OK, err)
	}
	if r.Value != "deleted" {
		t.Fatalf("first delete reported %q, want \"deleted\"", r.Value)
	}
	sys.Settle(4 * sys.Cfg.HelloEvery)

	if lr, err := sys.LookupSync(peers[4], key); err != nil || lr.OK {
		t.Fatalf("lookup after delete: ok=%v err=%v", lr.OK, err)
	}
	sys.Runtime().Do(func() {
		did := idspace.HashKey(key)
		for _, p := range sys.Peers() {
			if _, ok := p.data[did]; ok {
				t.Errorf("peer %d still stores deleted item", p.Addr)
			}
			if _, ok := p.reps[did]; ok {
				t.Errorf("peer %d still holds a replica of deleted item", p.Addr)
			}
		}
	})
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("after delete: %v", err)
	}

	r2, err := sys.DeleteSync(peers[9], key)
	if err != nil || !r2.OK {
		t.Fatalf("second delete: ok=%v err=%v", r2.OK, err)
	}
	if r2.Value != "" {
		t.Fatalf("second delete reported %q, want miss", r2.Value)
	}
}

// TestReplicationChurnStorm is the replication variant of the churn-storm
// crash test at N=400: epochs of concurrent joins, leaves and crashes over a
// lossy network, and after each epoch the full invariant suite — including
// the replica-coverage check — must hold, for each k in {1, 2, 3}.
func TestReplicationChurnStorm(t *testing.T) {
	epochs := 6
	if testing.Short() {
		epochs = 2
	}
	for _, k := range []int{1, 2, 3} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			sys := newTestSystem(t, 4242, replConfig(k))
			fc := simnet.FaultConfig{
				DropRate:  0.01,
				DupRate:   0.01,
				JitterMax: 10 * sim.Millisecond,
				Seed:      9100 + int64(k),
			}
			arm := func() { sys.Net().SetFaults(simnet.NewFaults(fc)) }
			arm()
			peers, _, err := sys.BuildPopulation(PopulationOpts{N: 400})
			if err != nil {
				t.Fatal(err)
			}
			sys.Settle(10 * sim.Second)
			// Seed the data set over a clean network: a dropped storeReq
			// times the operation out, and lost stores are not what this
			// test is about.
			sys.Net().SetFaults(nil)
			for i := 0; i < 100; i++ {
				key := keyf("storm-%03d", i)
				if r, err := sys.StoreSync(peers[(i*13)%len(peers)], key, "v"); err != nil || !r.OK {
					t.Fatalf("store %s: ok=%v err=%v", key, r.OK, err)
				}
			}
			sys.Settle(4 * sys.Cfg.HelloEvery)
			arm()
			stubs := sys.Topo().StubNodes()
			for epoch := 0; epoch < epochs; epoch++ {
				for i := 0; i < 9; i++ {
					at := sys.Eng().Now() + sim.Time(i)*300*sim.Millisecond
					switch i % 3 {
					case 0:
						host := stubs[sys.Eng().Rand().Intn(len(stubs))]
						sys.Eng().At(at, func() {
							sys.Join(JoinOpts{Host: host, Capacity: 1}, nil)
						})
					case 1:
						sys.Eng().At(at, func() {
							live := sys.Peers()
							if len(live) <= 5 {
								return
							}
							live[sys.Eng().Rand().Intn(len(live))].Leave()
						})
					default:
						sys.Eng().At(at, func() {
							live := sys.Peers()
							if len(live) <= 5 {
								return
							}
							live[sys.Eng().Rand().Intn(len(live))].Crash()
						})
					}
				}
				sys.Settle(4 * sys.Cfg.HelloTimeout)
				sys.Net().SetFaults(nil)
				sys.Settle(6 * sys.Cfg.HelloTimeout)
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("k=%d epoch %d: %v", k, epoch, err)
				}
				arm()
			}
		})
	}
}

// TestReplicationLiveRuntime runs the k=2 crash/repair path on the live
// wall-clock runtime, which makes it the -race exercise for the replication
// and delete message handlers.
func TestReplicationLiveRuntime(t *testing.T) {
	rt := live.New(live.Config{Seed: 99, Delay: 200 * time.Microsecond, AwaitTimeout: 60 * time.Second})
	t.Cleanup(rt.Close)
	cfg := DefaultConfig()
	cfg.Ps = 0.6
	cfg.ReplicationK = 2
	cfg.HelloEvery = 100 * runtime.Millisecond
	cfg.HelloTimeout = 400 * runtime.Millisecond
	cfg.SuppressTimeout = 50 * runtime.Millisecond
	cfg.LookupTimeout = 2 * runtime.Second
	cfg.JoinTimeout = 5 * runtime.Second
	cfg.FingerRefreshEvery = 250 * runtime.Millisecond
	sys, err := NewSystem(rt, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 24})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * cfg.HelloEvery)

	keys := make([]string, 20)
	for i := range keys {
		keys[i] = keyf("live-%03d", i)
		r, err := sys.StoreSync(peers[(i*5)%len(peers)], keys[i], "v")
		if err != nil || !r.OK {
			t.Fatalf("store %s: ok=%v err=%v", keys[i], r.OK, err)
		}
	}
	sys.Settle(4 * cfg.HelloEvery)

	// Crash the owner of every fifth key in one wave — but never two
	// ring-adjacent peers: at k=2 the owner and its successor are the only
	// holders, so killing an adjacent pair simultaneously is genuine,
	// unavoidable data loss rather than a repair failure.
	rt.Do(func() {
		forbidden := map[runtime.Addr]bool{}
		for i := 0; i < len(keys); i += 5 {
			p := keyOwner(sys, keys[i])
			if p == nil || forbidden[p.Addr] || len(sys.Peers()) <= 6 {
				continue
			}
			forbidden[p.Addr] = true
			forbidden[p.succ.Addr] = true
			forbidden[p.pred.Addr] = true
			p.Crash()
		}
	})
	sys.Settle(3 * cfg.HelloTimeout)

	// Invariants converge under the live runtime rather than holding at the
	// first poll; bound the wait in wall-clock time.
	deadline := time.Now().Add(20 * time.Second)
	for {
		var ierr error
		rt.Do(func() { ierr = sys.CheckInvariants() })
		if ierr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("invariants never converged: %v", ierr)
		}
		rt.Sleep(100 * runtime.Millisecond)
	}

	ok := 0
	for _, key := range keys {
		origin := peers[7]
		rt.Do(func() {
			if !origin.Alive() {
				origin = sys.Peers()[0]
			}
		})
		r, err := sys.LookupSync(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			ok++
		}
	}
	if ok != len(keys) {
		t.Fatalf("only %d/%d keys survived the crash wave at k=2", ok, len(keys))
	}
}

package core

import (
	"sort"
	"sync"

	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// This file is the online ring-health sampler: the invariant checker
// (invariants.go) re-run in a non-failing *scored* mode. CheckInvariants is a
// quiescence audit — it stops at the first violation and returns an error —
// which makes it useless while churn is in flight, when violations are
// expected and the interesting question is "how many, and are they trending
// to zero". HealthScore walks the same structures (ring pointers, s-trees,
// the δ bound, data ownership, pending-op tables) but counts violations
// instead of failing, and HealthSampler publishes the counts as registry
// gauges on a runtime.Ticker so /metrics and /healthz track repair
// convergence live during a crash wave.

// HealthScore is one non-failing pass over the system's invariants: counts
// of live membership and of every violation class the quiescence checker
// would report, taken at a moment that may be mid-repair.
type HealthScore struct {
	At runtime.Time `json:"t_us"`

	LivePeers  int `json:"live_peers"`
	LiveTPeers int `json:"live_tpeers"`
	LiveSPeers int `json:"live_speers"`

	// SuspectedPtrs counts routing-suspected neighbors across all live
	// peers: watchdogs have expired but repair has not landed. Nonzero is
	// normal during churn and must drain to zero at quiescence.
	SuspectedPtrs int `json:"suspected_ptrs"`
	// DeadRingPtrs counts succ/pred pointers of live t-peers that reference
	// a dead or departed peer.
	DeadRingPtrs int `json:"dead_ring_ptrs"`
	// BrokenRingLinks counts successor links whose far end does not point
	// back (succ.pred != self) — the ring asymmetry CheckRing fails on.
	BrokenRingLinks int `json:"broken_ring_links"`

	// TreeDepthMax is the deepest live s-peer's distance to its t-network
	// root; OrphanSPeers counts s-peers with no (or a dead) connect point.
	TreeDepthMax int `json:"stree_depth_max"`
	OrphanSPeers int `json:"orphan_speers"`
	// DeltaViolations counts peers over their degree bound: s-peers above δ,
	// t-peers above the 2δ inheritance bound.
	DeltaViolations int `json:"delta_violations"`

	// UnownedItems counts stored items living outside the s-network of the
	// t-peer whose ring segment covers them (rehoming not yet converged).
	UnownedItems int `json:"unowned_items"`
	// StuckOps counts in-flight client operations (excluding finger-refresh
	// probes, which keep a rolling window alive by design).
	StuckOps int `json:"stuck_ops"`
	// ReplicaDeficit sums the per-owner replica shortfall (ReplicationK > 1):
	// how many of the k−1 successor copies each local t-peer's last tracked
	// push failed to confirm. Nonzero is a normal churn transient — it does
	// not fail Healthy — and must drain to zero once re-replication
	// converges. Partial views sum their local t-peers only.
	ReplicaDeficit int `json:"replica_deficit"`
}

// Healthy reports the sampler's verdict: no structural violations. Suspected
// pointers and in-flight ops are excluded — both are legitimate transients of
// a system under load — so Healthy flips false only while ring pointers,
// trees, degree bounds or data placement are actually broken.
func (h HealthScore) Healthy() bool {
	return h.DeadRingPtrs == 0 && h.BrokenRingLinks == 0 &&
		h.OrphanSPeers == 0 && h.DeltaViolations == 0 && h.UnownedItems == 0
}

// HealthScore computes one scored invariant pass. It is strictly read-only
// and must run under the runtime's execution guarantee (inside a handler, a
// timer callback, or Runtime.Do); it never mutates protocol state, draws no
// randomness and sends no protocol messages, so sampling cannot change
// behavior. On a partial system the liveness of remote ring and tree
// pointers is read through the runtime's Attached, which on the socket
// runtime is a directory query to the bootstrap — transport traffic, not
// protocol traffic, and explicitly safe under the execution guarantee.
func (s *System) HealthScore() HealthScore {
	h := HealthScore{At: s.rt.Now()}

	tps := s.TPeers()
	h.LiveTPeers = len(tps)
	liveT := make(map[runtime.Addr]*Peer, len(tps))
	for _, p := range tps {
		liveT[p.Addr] = p
	}

	owner := func(sid idspace.ID) runtime.Addr {
		i := sort.Search(len(tps), func(i int) bool { return tps[i].ID >= sid })
		if i == len(tps) {
			i = 0
		}
		return tps[i].Addr
	}

	for _, p := range s.peers {
		if p == nil || !p.alive {
			continue
		}
		h.LivePeers++
		h.SuspectedPtrs += len(p.suspect)
		for _, o := range p.pending {
			if o.kind != "fixfinger" {
				h.StuckOps++
			}
		}

		// Data ownership (counted, not failed): same rule as
		// CheckDataOwnership, skipping mid-rejoin s-peers whose root is
		// unknown. A partial system cannot compute it at all — the owner
		// function needs the full t-peer ring, and this process holds only
		// its slice — so the count stays zero there rather than reporting
		// correctly-placed items as violations.
		if len(p.data) > 0 && len(tps) > 0 && !s.partial {
			root := p.Addr
			known := true
			if p.Role == SPeer {
				if !p.tpeer.Valid() {
					known = false
				} else {
					root = p.tpeer.Addr
				}
			}
			if known {
				for _, it := range p.data {
					if owner(p.segmentID(it.Key)) != root {
						h.UnownedItems++
					}
				}
			}
		}

		if p.Role == TPeer {
			h.ReplicaDeficit += p.repDeficit
			if len(p.children) > 2*s.Cfg.Delta {
				h.DeltaViolations++
			}
			for _, r := range [2]Ref{p.succ, p.pred} {
				if !r.Valid() {
					h.DeadRingPtrs++
					continue
				}
				if t := s.peerAt(r.Addr); t != nil {
					if !t.alive || t.Role != TPeer {
						h.DeadRingPtrs++
					}
				} else if !s.partial || !s.rt.Attached(r.Addr) {
					// Not in the local table. On a full-view system that
					// means dead; on a partial one the peer may live in
					// another process, so ask the runtime, which consults
					// the cluster directory.
					h.DeadRingPtrs++
				}
			}
			if p.succ.Valid() {
				if next, ok := liveT[p.succ.Addr]; ok && next.pred.Addr != p.Addr {
					h.BrokenRingLinks++
				}
			}
			continue
		}

		// S-peer tree shape.
		h.LiveSPeers++
		if p.Degree() > s.Cfg.Delta {
			h.DeltaViolations++
		}
		parent := s.peerAt(p.cp.Addr)
		if parent != nil && !parent.alive {
			parent = nil
		}
		if !p.cp.Valid() || (parent == nil && (!s.partial || !s.rt.Attached(p.cp.Addr))) {
			h.OrphanSPeers++
			continue
		}
		if parent == nil {
			continue // remote connect point, alive per the directory; depth unknowable here
		}
		depth := 0
		cur := p
		for cur.Role == SPeer {
			next := s.peerAt(cur.cp.Addr)
			if next == nil || !next.alive {
				break // ancestry broken mid-walk; already counted at the orphan
			}
			cur = next
			depth++
			if depth > s.numPeers {
				break // cycle; CheckTrees reports it at quiescence
			}
		}
		if depth > h.TreeDepthMax {
			h.TreeDepthMax = depth
		}
	}
	return h
}

// healthGauges is the fixed set of registry gauges a sampler publishes.
type healthGauges struct {
	live, tpeers, speers   *obs.Gauge
	suspected, deadPtrs    *obs.Gauge
	brokenLinks, treeDepth *obs.Gauge
	deltaViol, unowned     *obs.Gauge
	orphans, stuckOps      *obs.Gauge
	repDeficit             *obs.Gauge
	healthy                *obs.Gauge
	samples                *obs.Counter
	// Cumulative replication-activity counters mirrored from SystemStats so
	// a /metrics scrape can watch repair traffic without protocol access.
	repPushed, repServes       *obs.Gauge
	readRepairs, repPromotions *obs.Gauge
}

func newHealthGauges(reg *obs.Registry) healthGauges {
	return healthGauges{
		live:        reg.Gauge("health.live_peers"),
		tpeers:      reg.Gauge("health.live_tpeers"),
		speers:      reg.Gauge("health.live_speers"),
		suspected:   reg.Gauge("health.suspected_ptrs"),
		deadPtrs:    reg.Gauge("health.dead_ring_ptrs"),
		brokenLinks: reg.Gauge("health.broken_ring_links"),
		treeDepth:   reg.Gauge("health.stree_depth_max"),
		deltaViol:   reg.Gauge("health.delta_violations"),
		unowned:     reg.Gauge("health.unowned_items"),
		orphans:     reg.Gauge("health.orphan_speers"),
		stuckOps:    reg.Gauge("health.stuck_ops"),
		repDeficit:  reg.Gauge("health.replica_deficit"),
		healthy:     reg.Gauge("health.healthy"),
		samples:     reg.Counter("health.samples"),

		repPushed:     reg.Gauge("core.replicas_pushed"),
		repServes:     reg.Gauge("core.replica_serves"),
		readRepairs:   reg.Gauge("core.read_repairs"),
		repPromotions: reg.Gauge("core.replica_promotions"),
	}
}

func (g *healthGauges) publish(h HealthScore) {
	g.live.Set(float64(h.LivePeers))
	g.tpeers.Set(float64(h.LiveTPeers))
	g.speers.Set(float64(h.LiveSPeers))
	g.suspected.Set(float64(h.SuspectedPtrs))
	g.deadPtrs.Set(float64(h.DeadRingPtrs))
	g.brokenLinks.Set(float64(h.BrokenRingLinks))
	g.treeDepth.Set(float64(h.TreeDepthMax))
	g.deltaViol.Set(float64(h.DeltaViolations))
	g.unowned.Set(float64(h.UnownedItems))
	g.orphans.Set(float64(h.OrphanSPeers))
	g.stuckOps.Set(float64(h.StuckOps))
	g.repDeficit.Set(float64(h.ReplicaDeficit))
	if h.Healthy() {
		g.healthy.Set(1)
	} else {
		g.healthy.Set(0)
	}
	g.samples.Inc()
}

// HealthSampler periodically scores the system's invariants and publishes
// the counts as "health.*" registry gauges. It works identically under the
// DES and live runtimes because it runs off a runtime.Ticker: each sample
// executes under the execution guarantee, read-only, so continuous sampling
// during a churn wave observes repair without perturbing it.
type HealthSampler struct {
	sys    *System
	gauges healthGauges
	ticker *runtime.Ticker

	// mu guards last/seen: Last is read from outside the execution guarantee
	// (the introspection server's HTTP goroutines).
	mu   sync.Mutex
	last HealthScore
	seen bool
}

// NewHealthSampler creates a sampler publishing into reg every period. Start
// must be called under the runtime's execution guarantee (e.g. inside
// Runtime.Do).
func NewHealthSampler(sys *System, reg *obs.Registry, period runtime.Time) *HealthSampler {
	hs := &HealthSampler{sys: sys, gauges: newHealthGauges(reg)}
	hs.ticker = runtime.NewTicker(sys.rt, period, hs.sample)
	return hs
}

// Start begins periodic sampling (first sample one period from now) after
// taking an immediate baseline sample. Must run under the execution
// guarantee.
func (hs *HealthSampler) Start() {
	hs.sample()
	hs.ticker.Start()
}

// Stop halts sampling. Must run under the execution guarantee.
func (hs *HealthSampler) Stop() { hs.ticker.Stop() }

// Sample takes one scored pass immediately and publishes it. Must run under
// the execution guarantee.
func (hs *HealthSampler) Sample() HealthScore {
	hs.sample()
	h, _ := hs.Last()
	return h
}

func (hs *HealthSampler) sample() {
	h := hs.sys.HealthScore()
	hs.gauges.publish(h)
	hs.gauges.repPushed.Set(float64(hs.sys.stats.ReplicasPushed))
	hs.gauges.repServes.Set(float64(hs.sys.stats.ReplicaServes))
	hs.gauges.readRepairs.Set(float64(hs.sys.stats.ReadRepairs))
	hs.gauges.repPromotions.Set(float64(hs.sys.stats.ReplicaPromotions))
	hs.mu.Lock()
	hs.last = h
	hs.seen = true
	hs.mu.Unlock()
}

// Last returns the most recent score (false if no sample has run yet). Safe
// to call from any goroutine.
func (hs *HealthSampler) Last() (HealthScore, bool) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.last, hs.seen
}

// Samples returns how many scored passes have been published.
func (hs *HealthSampler) Samples() int64 { return hs.gauges.samples.Value() }

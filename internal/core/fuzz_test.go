package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestProtocolFuzz drives randomized interleavings of every external
// operation — joins, graceful leaves, abrupt crashes, stores, lookups,
// searches, settles — across many seeds and configurations, then verifies
// the global invariants:
//
//  1. the t-network ring is a single consistent cycle,
//  2. every s-network is a well-formed tree rooted at a live t-peer,
//  3. every key whose entire store-to-now holder chain stayed alive is
//     still retrievable,
//  4. no operation wedges the engine.
//
// This is the adversarial complement to the scenario tests: it explores
// interleavings nobody thought to write down.
func TestProtocolFuzz(t *testing.T) {
	seeds := []int64{101, 202, 303, 404}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed)
		})
	}
}

func fuzzOnce(t *testing.T, seed int64) {
	t.Helper()
	script := rand.New(rand.NewSource(seed))
	cfg := func(c *Config) {
		c.Ps = []float64{0.3, 0.6, 0.8}[script.Intn(3)]
		c.Delta = script.Intn(3) + 2
		c.TTL = script.Intn(5) + 3
		c.Placement = Placement(script.Intn(2))
		c.Bypass = script.Intn(2) == 0
		c.Caching = script.Intn(2) == 0
		c.LookupTimeout = 4 * sim.Second
	}
	sys := newTestSystem(t, seed, cfg)
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)

	stubs := sys.Topo().StubNodes()
	stored := 0
	type inflight struct {
		origin *Peer
		done   bool
	}
	var lookups []*inflight
	const ops = 400
	for i := 0; i < ops; i++ {
		live := sys.Peers()
		if len(live) < 6 {
			break
		}
		p := live[script.Intn(len(live))]
		switch script.Intn(10) {
		case 0: // join
			sys.Join(JoinOpts{Host: stubs[script.Intn(len(stubs))], Capacity: 1}, nil)
		case 1: // graceful leave
			p.Leave()
		case 2: // crash
			p.Crash()
		case 3, 4, 5: // store
			key := fmt.Sprintf("fz-%04d", stored)
			stored++
			p.Store(key, "v", nil)
		case 6, 7, 8: // lookup (outcome checked statistically below)
			if stored > 0 {
				fl := &inflight{origin: p}
				lookups = append(lookups, fl)
				p.Lookup(fmt.Sprintf("fz-%04d", script.Intn(stored)), func(OpResult) { fl.done = true })
			}
		case 9: // prefix search
			p.SearchPrefix("fz-0", 4, 2*sim.Second, nil)
		}
		// Let a random slice of simulated time pass between operations.
		sys.Settle(sim.Time(script.Intn(2000)+1) * sim.Millisecond)
	}

	// Quiesce: deliver everything, let failure detection and stabilization
	// finish, then check the invariants.
	sys.Settle(120 * sim.Second)
	for _, fl := range lookups {
		// A lookup may only vanish with its issuer: a crashed or departed
		// peer takes its in-flight client operations with it.
		if !fl.done && fl.origin.Alive() {
			t.Fatalf("lookup by live peer %d never resolved", fl.origin.Addr)
		}
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatalf("ring invariant: %v", err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatalf("tree invariant: %v", err)
	}

	// The system must still serve new work end to end.
	live := sys.Peers()
	if len(live) < 2 {
		t.Skip("population died out")
	}
	r, err := sys.StoreSync(live[0], "fz-final", "v")
	if err != nil || !r.OK {
		t.Fatalf("post-fuzz store: %+v %v", r, err)
	}
	lr, err := sys.LookupSync(live[len(live)/2], "fz-final")
	if err != nil || !lr.OK {
		t.Fatalf("post-fuzz lookup: %+v %v", lr, err)
	}
}

// TestFuzzTrackerMode runs a shorter fuzz with tracker s-networks, whose
// index maintenance has its own failure modes.
func TestFuzzTrackerMode(t *testing.T) {
	script := rand.New(rand.NewSource(777))
	sys := newTestSystem(t, 777, func(c *Config) {
		c.Ps = 0.7
		c.TrackerMode = true
		c.LookupTimeout = 4 * sim.Second
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 50}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	stubs := sys.Topo().StubNodes()
	stored := 0
	for i := 0; i < 200; i++ {
		live := sys.Peers()
		if len(live) < 6 {
			break
		}
		p := live[script.Intn(len(live))]
		switch script.Intn(8) {
		case 0:
			sys.Join(JoinOpts{Host: stubs[script.Intn(len(stubs))], Capacity: 1}, nil)
		case 1:
			p.Leave()
		case 2:
			p.Crash()
		default:
			key := fmt.Sprintf("tk-%04d", stored)
			stored++
			p.Store(key, "v", nil)
		}
		sys.Settle(sim.Time(script.Intn(1500)+1) * sim.Millisecond)
	}
	sys.Settle(120 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"

	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func sprintfT(f string, a ...any) string { return fmt.Sprintf(f, a...) }

// TestSustainedChurnKeepsInvariants drives two minutes of live Poisson churn
// (joins, graceful leaves and crashes at ~1 event/s against 150 peers) and
// verifies the ring and tree invariants still hold after recovery. This is
// the regression test for the stabilization and repair machinery.
func TestSustainedChurnKeepsInvariants(t *testing.T) {
	sys := newTestSystem(t, 931, func(c *Config) {
		c.Ps = 0.7
		c.HelloEvery = 5 * sim.Second
		c.HelloTimeout = 12 * sim.Second
		c.FingerRefreshEvery = 5 * sim.Second
		c.LookupTimeout = 5 * sim.Second
		c.JoinTimeout = 40 * sim.Second
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 150}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)
	schedule := workload.PoissonSchedule(sys.Eng().Rand(), workload.ChurnConfig{
		Duration: 120 * sim.Second, JoinRate: 0.5, LeaveRate: 0.25, CrashRate: 0.25,
	})
	stubs := sys.Topo().StubNodes()
	base := sys.Eng().Now()
	for _, ev := range schedule {
		ev := ev
		sys.Eng().At(base+ev.At, func() {
			switch ev.Kind {
			case workload.Join:
				sys.Join(JoinOpts{Host: stubs[sys.Eng().Rand().Intn(len(stubs))], Capacity: 1}, nil)
			default:
				live := sys.Peers()
				if len(live) <= 3 {
					return
				}
				p := live[ev.Peer%len(live)]
				if ev.Kind == workload.Leave {
					p.Leave()
				} else {
					p.Crash()
				}
			}
		})
	}
	sys.Settle(120*sim.Second + 6*sys.Cfg.HelloTimeout)
	var lines []string
	sys.SetTraceHook(func(f string, a ...any) { lines = append(lines, sprintfT(f, a...)) })
	defer sys.SetTraceHook(nil)
	sys.Settle(4 * sys.Cfg.HelloTimeout)
	if err := sys.CheckRing(); err != nil {
		_ = lines
		all := sys.TPeers()
		t.Logf("== %d t-peers in id order:", len(all))
		for _, p := range all {
			t.Logf("  addr=%-4d id=%s pred=%-4d succ=%-4d", p.Addr, p.ID, p.pred.Addr, p.succ.Addr)
		}
		tps := sys.TPeers()
		byAddr := map[int]*Peer{}
		for _, p := range tps {
			byAddr[int(p.Addr)] = p
		}
		visited := map[int]bool{}
		cur := tps[0]
		for !visited[int(cur.Addr)] {
			visited[int(cur.Addr)] = true
			nxt := byAddr[int(cur.succ.Addr)]
			if nxt == nil {
				t.Logf("cycle hits dead succ %d from %d", cur.succ.Addr, cur.Addr)
				break
			}
			cur = nxt
		}
		for _, p := range tps {
			if !visited[int(p.Addr)] {
				t.Logf("orphan addr=%d id=%s pred=%d(%s) succ=%d(%s) joining=%v leaving=%v joinDoneNil=%v",
					p.Addr, p.ID, p.pred.Addr, p.pred.ID, p.succ.Addr, p.succ.ID, p.joining, p.leaving, p.joinDone == nil)
				if sp := byAddr[int(p.succ.Addr)]; sp != nil {
					t.Logf("  succ %d: pred=%d succAlive=%v", sp.Addr, sp.pred.Addr, sp.Alive())
				} else {
					t.Logf("  succ %d is not a live t-peer (peer=%v)", p.succ.Addr, sys.Peer(p.succ.Addr) != nil)
				}
			}
		}
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnStormUnderFaults is the randomized churn-storm crash test: epochs
// of concurrent joins, graceful leaves and crashes run over a lossy,
// duplicating, jittery network, and after every epoch the full invariant
// suite must hold. The fault layer stays armed through each churn burst and
// is lifted only for the per-epoch quiescence check: under sustained loss,
// watchdog false positives keep some edge mid-repair at any instant, so the
// invariant contract is convergence once delivery is restored.
func TestChurnStormUnderFaults(t *testing.T) {
	rates := []float64{0, 0.01, 0.05}
	epochs := 20
	if testing.Short() {
		epochs = 6
	}
	for _, rate := range rates {
		rate := rate
		t.Run(fmt.Sprintf("drop=%g", rate), func(t *testing.T) {
			sys := newTestSystem(t, 4242, func(c *Config) {
				c.Ps = 0.7
				hardenedConfig(c)
			})
			fc := simnet.FaultConfig{
				DropRate:  rate,
				DupRate:   rate,
				JitterMax: 10 * sim.Millisecond,
				Seed:      9000 + int64(rate*1000),
			}
			arm := func() { sys.Net().SetFaults(simnet.NewFaults(fc)) }
			arm()
			if _, _, err := sys.BuildPopulation(PopulationOpts{N: 120}); err != nil {
				t.Fatal(err)
			}
			sys.Settle(10 * sim.Second)
			stubs := sys.Topo().StubNodes()
			for epoch := 0; epoch < epochs; epoch++ {
				// One storm burst: nine churn events (joins, graceful
				// leaves, crashes) spread over ~3 seconds.
				for i := 0; i < 9; i++ {
					at := sys.Eng().Now() + sim.Time(i)*300*sim.Millisecond
					switch i % 3 {
					case 0:
						host := stubs[sys.Eng().Rand().Intn(len(stubs))]
						sys.Eng().At(at, func() {
							sys.Join(JoinOpts{Host: host, Capacity: 1}, nil)
						})
					case 1:
						sys.Eng().At(at, func() {
							live := sys.Peers()
							if len(live) <= 5 {
								return
							}
							live[sys.Eng().Rand().Intn(len(live))].Leave()
						})
					default:
						sys.Eng().At(at, func() {
							live := sys.Peers()
							if len(live) <= 5 {
								return
							}
							live[sys.Eng().Rand().Intn(len(live))].Crash()
						})
					}
				}
				sys.Settle(4 * sys.Cfg.HelloTimeout)
				sys.Net().SetFaults(nil)
				sys.Settle(6 * sys.Cfg.HelloTimeout)
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("drop=%g epoch %d: %v", rate, epoch, err)
				}
				arm()
			}
			if rate > 0 && sys.Net().Stats().MessagesDropped == 0 {
				t.Fatalf("fault layer armed with drop rate %g but dropped nothing", rate)
			}
		})
	}
}

package core

import (
	"testing"

	"repro/internal/sim"
)

func TestLeaveWhilePredIsJoining(t *testing.T) {
	// §3.3: pre mid-triangle postpones a leave request; the leaver retries
	// and eventually departs.
	sys := newTestSystem(t, 98, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	leaver := peers[4]
	pred := sys.Peer(leaver.pred.Addr)
	pred.joining = true // hold the mutex open by hand
	leaver.Leave()
	sys.Settle(2 * sim.Second)
	if !leaver.Alive() {
		t.Fatal("leave completed while pred was mid-triangle")
	}
	pred.joining = false
	pred.drainJoinQueue()
	// The leaver's retry loop (or force-finish timeout) must conclude.
	sys.Settle(2 * sys.Cfg.JoinTimeout)
	if leaver.Alive() {
		t.Fatal("leave never completed after the triangle closed")
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

func TestOrphanedSPeerRehomesThroughServer(t *testing.T) {
	// An s-peer whose whole ancestry (cp and t-peer) disappears at once
	// must re-home via the server rather than staying orphaned.
	sys := newTestSystem(t, 99, func(c *Config) {
		c.Ps = 0.75
		c.Delta = 2
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)

	// Find a chain t-peer -> child -> grandchild.
	var grandchild *Peer
	for _, sp := range sys.SPeers() {
		parent := sys.Peer(sp.cp.Addr)
		if parent != nil && parent.Role == SPeer {
			grandchild = sp
			break
		}
	}
	if grandchild == nil {
		t.Skip("no depth-2 s-peer at this seed")
	}
	parent := sys.Peer(grandchild.cp.Addr)
	root := sys.Peer(grandchild.tpeer.Addr)
	// Crash the parent and the root together: the grandchild's rejoin
	// target is gone too.
	parent.Crash()
	root.Crash()
	sys.Settle(12 * sys.Cfg.HelloTimeout)

	if !grandchild.Alive() {
		t.Fatal("grandchild should survive")
	}
	if grandchild.Role == SPeer && !grandchild.cp.Valid() {
		t.Fatal("grandchild still orphaned after server re-homing window")
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchUncategorizedStaysLocal(t *testing.T) {
	sys := newTestSystem(t, 100, func(c *Config) { c.Ps = 0.8 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	origin := sys.SPeers()[0]
	before := sys.Stats().RingForwards
	if _, err := sys.SearchSync(origin, "plain-prefix/", 0, 3*sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().RingForwards - before; got != 0 {
		t.Fatalf("uncategorized search used %d ring forwards; must stay in the local s-network", got)
	}
}

func TestSearchEmptyResult(t *testing.T) {
	sys := newTestSystem(t, 101, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 20}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	res, err := sys.SearchSync(sys.Peers()[0], "nothing-matches/", 0, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("found %d phantom items", len(res.Items))
	}
	if res.Latency < 2*sim.Second {
		t.Fatal("empty search returned before its collection window closed")
	}
}

func TestWalkOnLoneTPeer(t *testing.T) {
	// Walk mode on a peer with no tree neighbors must fail cleanly via the
	// timeout rather than hanging or panicking.
	sys := newTestSystem(t, 102, func(c *Config) {
		c.Ps = 0
		c.RandomWalk = true
		c.LookupTimeout = 2 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(2 * sim.Second)
	r, err := sys.LookupSync(peers[0], "missing")
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("missing key found")
	}
}

func TestStoreWithNilCallback(t *testing.T) {
	sys := newTestSystem(t, 103, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	peers[0].Store("fire-and-forget", "v", nil)
	peers[1].Lookup("fire-and-forget", nil)
	sys.Settle(10 * sim.Second) // must not panic or wedge
	found := false
	for _, p := range sys.Peers() {
		if p.HasItem("fire-and-forget") {
			found = true
		}
	}
	if !found {
		t.Fatal("fire-and-forget store lost")
	}
}

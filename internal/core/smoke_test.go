package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// newTestSystem builds a small system over a compact transit-stub topology.
func newTestSystem(t *testing.T, seed int64, mut func(*Config)) *System {
	t.Helper()
	tcfg := topology.Config{
		TransitDomains:        2,
		TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2,
		StubNodesPerDomain:    10,
		ExtraTransitEdges:     2,
		ExtraStubEdges:        2,
		TransitScale:          10,
		BaseLatency:           500,
		LatencyPerUnit:        20000,
	}
	topo, err := topology.GenerateTransitStub(tcfg, seed)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	eng := sim.New(seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	sys, err := NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	return sys
}

func TestSmokeBuildAndLookup(t *testing.T) {
	sys := newTestSystem(t, 1, func(c *Config) { c.Ps = 0.5 })
	peers, stats, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(peers) != 60 || len(stats) != 60 {
		t.Fatalf("got %d peers, %d stats", len(peers), len(stats))
	}
	sys.Settle(10 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		t.Fatalf("ring: %v", err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatalf("trees: %v", err)
	}

	nt, ns := len(sys.TPeers()), len(sys.SPeers())
	if nt+ns != 60 {
		t.Fatalf("t=%d s=%d, want total 60", nt, ns)
	}
	if nt < 25 || nt > 35 {
		t.Errorf("t-peer count %d far from 30", nt)
	}

	// Store from many peers, then look up from others.
	for i, p := range peers {
		key := keyf("smoke-%03d", i)
		r, err := sys.StoreSync(p, key, "v")
		if err != nil {
			t.Fatalf("store %s: %v", key, err)
		}
		if !r.OK {
			t.Fatalf("store %s failed", key)
		}
	}
	okCount := 0
	for i := range peers {
		origin := peers[(i+17)%len(peers)]
		r, err := sys.LookupSync(origin, keyf("smoke-%03d", i))
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if r.OK {
			okCount++
		}
	}
	if okCount < 55 {
		t.Errorf("only %d/60 lookups succeeded", okCount)
	}
	if got := sys.TotalItems(); got != 60 {
		t.Errorf("TotalItems = %d, want 60", got)
	}
}

func keyf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

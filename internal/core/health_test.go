package core

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestHealthScoreQuiescentSystemIsHealthy(t *testing.T) {
	sys := newTestSystem(t, 11, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(10 * sim.Second)
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	h := sys.HealthScore()
	if !h.Healthy() {
		t.Fatalf("quiescent system scored unhealthy: %+v", h)
	}
	if h.LivePeers != 60 || h.LiveTPeers+h.LiveSPeers != 60 {
		t.Fatalf("population miscount: %+v", h)
	}
	if h.LiveTPeers != len(sys.TPeers()) || h.LiveSPeers != len(sys.SPeers()) {
		t.Fatalf("role miscount: %+v vs %d t / %d s", h, len(sys.TPeers()), len(sys.SPeers()))
	}
	if h.SuspectedPtrs != 0 || h.DeadRingPtrs != 0 || h.UnownedItems != 0 || h.StuckOps != 0 {
		t.Fatalf("quiescent system has nonzero violation counts: %+v", h)
	}
	if h.LiveSPeers > 0 && h.TreeDepthMax < 1 {
		t.Fatalf("s-peers exist but tree depth is %d", h.TreeDepthMax)
	}
}

// TestHealthSamplerTracksCrashWave is the scored-mode acceptance check: a
// crash wave must drive the sampler's gauges visibly unhealthy (dead ring
// pointers, shrunken population), and repair must bring the verdict back to
// healthy — all observed from registry gauges, without failing any check.
func TestHealthSamplerTracksCrashWave(t *testing.T) {
	sys := newTestSystem(t, 12, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(10 * sim.Second)
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants before crash: %v", err)
	}

	reg := obs.NewRegistry()
	hs := NewHealthSampler(sys, reg, sys.Cfg.HelloEvery)
	sys.Runtime().Do(hs.Start)
	if h, ok := hs.Last(); !ok || !h.Healthy() {
		t.Fatalf("baseline sample missing or unhealthy: %+v ok=%v", h, ok)
	}

	// Crash three live t-peers outright: their neighbors' succ/pred now
	// reference dead peers, which the scored pass must count immediately.
	tps := sys.TPeers()
	if len(tps) < 8 {
		t.Fatalf("too few t-peers to crash: %d", len(tps))
	}
	for _, p := range []*Peer{tps[0], tps[2], tps[4]} {
		p.Crash()
	}
	mid := hs.Sample()
	if mid.Healthy() {
		t.Fatalf("sample right after t-peer crash scored healthy: %+v", mid)
	}
	if mid.DeadRingPtrs == 0 {
		t.Fatalf("crashed t-peers left no dead ring pointers: %+v", mid)
	}
	if mid.LivePeers != 57 {
		t.Fatalf("live peers after crash = %d, want 57", mid.LivePeers)
	}
	if g := reg.Gauge("health.dead_ring_ptrs").Value(); g != float64(mid.DeadRingPtrs) {
		t.Fatalf("gauge %v does not track score %d", g, mid.DeadRingPtrs)
	}
	if g := reg.Gauge("health.healthy").Value(); g != 0 {
		t.Fatalf("health.healthy gauge = %v, want 0 mid-crash", g)
	}

	// Let failure detection and repair run; the ticker keeps sampling the
	// whole way (samples counter proves it ran during churn).
	before := hs.Samples()
	sys.Settle(8*sys.Cfg.HelloTimeout + 10*sys.Cfg.FingerRefreshEvery)
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	if hs.Samples() <= before {
		t.Fatal("ticker took no samples during the repair window")
	}
	end := hs.Sample()
	if !end.Healthy() {
		t.Fatalf("post-repair sample unhealthy: %+v", end)
	}
	if g := reg.Gauge("health.healthy").Value(); g != 1 {
		t.Fatalf("health.healthy gauge = %v, want 1 after repair", g)
	}
	if g := reg.Gauge("health.live_peers").Value(); g != float64(end.LivePeers) {
		t.Fatalf("live-peers gauge %v does not track score %d", g, end.LivePeers)
	}

	hs.Stop()
	stopped := hs.Samples()
	sys.Settle(10 * sys.Cfg.HelloEvery)
	if hs.Samples() != stopped {
		t.Fatal("sampler kept sampling after Stop")
	}
}

func TestRingSummary(t *testing.T) {
	sys := newTestSystem(t, 13, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(10 * sim.Second)
	for i := 0; i < 20; i++ {
		if _, err := sys.StoreSync(peers[i], keyf("ring-%03d", i), "v"); err != nil {
			t.Fatalf("store: %v", err)
		}
	}

	v := sys.RingSummary()
	if v.LivePeers != 50 || v.LiveTPeers != len(sys.TPeers()) {
		t.Fatalf("totals wrong: %+v", v)
	}
	if len(v.Ring) != v.LiveTPeers {
		t.Fatalf("ring has %d entries, want %d", len(v.Ring), v.LiveTPeers)
	}
	if v.Items != 20 {
		t.Fatalf("items = %d, want 20", v.Items)
	}
	totalSub := 0
	for i, tp := range v.Ring {
		if i > 0 && v.Ring[i-1].ID >= tp.ID {
			t.Fatalf("ring not in id order at %d", i)
		}
		if tp.Succ == nil || tp.Pred == nil {
			t.Fatalf("t-peer %d missing ring pointers: %+v", tp.Addr, tp)
		}
		totalSub += tp.Subtree
	}
	if totalSub != v.LivePeers {
		t.Fatalf("subtree totals %d do not cover the population %d", totalSub, v.LivePeers)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("summary not marshalable: %v", err)
	}
}

package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Server is the well-known bootstrap server (§3.2): it hands joining peers a
// role, an id and an entry point, assigns s-peers to s-networks, manages the
// landmark list, and arbitrates the replacement of crashed t-peers.
//
// The server holds soft state only — a registry mirroring what peers report —
// and is never on the data path, so it is not the BitTorrent-style single
// point of failure the paper distinguishes itself from.
type Server struct {
	sys  *System
	Host int

	// ring mirrors the live t-network, ordered by id.
	ring []Ref
	// snetSize tracks s-peers per s-network, keyed by t-peer address.
	snetSize map[simnet.Addr]int
	// tCount/sCount track how many role assignments were made.
	tCount, sCount int

	// landmarks are the physical hosts acting as binning landmarks.
	landmarks []int
	// clusterRR advances round-robin assignment within a landmark bin.
	clusterRR map[string]int

	// replaced remembers crash substitutions so late reporters learn the
	// new t-peer instead of being promoted twice.
	replaced map[simnet.Addr]Ref
	// deadPending tracks crashed t-peers whose s-network is expected to
	// drive the replacement; if none arrives before the fallback fires
	// the server force-patches the ring.
	deadPending map[simnet.Addr]bool

	// firstIssued flips when the very first t-peer role is handed out; it
	// closes the window in which a second joiner could race the first
	// peer's ringRegister and be crowned a second "first" ring.
	firstIssued bool
}

// Server-bound registration messages.
type (
	ringRegister   struct{ Self Ref }
	ringUnregister struct {
		Self Ref
		Succ Ref
	}
	ringReplace struct{ Old, New Ref }
	sRegister   struct{ TPeer Ref }
	sUnregister struct{ TPeer Ref }
)

func newServer(sys *System, host int) *Server {
	sv := &Server{
		sys:         sys,
		Host:        host,
		snetSize:    make(map[simnet.Addr]int),
		clusterRR:   make(map[string]int),
		replaced:    make(map[simnet.Addr]Ref),
		deadPending: make(map[simnet.Addr]bool),
	}
	sv.pickLandmarks()
	sys.Net.Attach(ServerAddr, host, 10, simnet.HandlerFunc(sv.recv))
	return sv
}

// pickLandmarks chooses evenly spaced stub hosts as landmarks ("the
// landmarks are predetermined so that they are uniformly distributed around
// the network").
func (sv *Server) pickLandmarks() {
	n := sv.sys.Cfg.Landmarks
	stubs := sv.sys.Topo.StubNodes()
	if len(stubs) == 0 {
		stubs = []int{0}
	}
	if n > len(stubs) {
		n = len(stubs)
	}
	sv.landmarks = make([]int, n)
	for i := 0; i < n; i++ {
		sv.landmarks[i] = stubs[i*len(stubs)/n]
	}
}

// Landmarks returns the landmark hosts.
func (sv *Server) Landmarks() []int { return append([]int(nil), sv.landmarks...) }

// RingSize returns the number of registered t-peers.
func (sv *Server) RingSize() int { return len(sv.ring) }

// SNetSizes returns a copy of the per-s-network size table.
func (sv *Server) SNetSizes() map[simnet.Addr]int {
	out := make(map[simnet.Addr]int, len(sv.snetSize))
	for k, v := range sv.snetSize {
		out[k] = v
	}
	return out
}

func (sv *Server) recv(from simnet.Addr, msg any) {
	switch m := msg.(type) {
	case serverJoinReq:
		sv.handleJoin(from, m)
	case ringRegister:
		sv.ringInsert(m.Self)
		delete(sv.replaced, m.Self.Addr)
	case ringUnregister:
		sv.ringRemove(m.Self.Addr)
		delete(sv.snetSize, m.Self.Addr)
	case ringReplace:
		sv.ringSubstitute(m.Old, m.New)
		sv.snetSize[m.New.Addr] = sv.snetSize[m.Old.Addr]
		delete(sv.snetSize, m.Old.Addr)
		sv.replaced[m.Old.Addr] = m.New
	case sRegister:
		sv.snetSize[m.TPeer.Addr]++
	case sUnregister:
		if sv.snetSize[m.TPeer.Addr] > 0 {
			sv.snetSize[m.TPeer.Addr]--
		}
	case replaceReq:
		sv.handleReplace(from, m)
	case ringLocate:
		sv.handleRingLocate(m)
	case ringDeadReq:
		sv.handleRingDead(m)
	default:
		panic(fmt.Sprintf("core: server received unknown message %T", msg))
	}
}

func (sv *Server) send(to simnet.Addr, msg any) {
	sv.sys.Net.Send(ServerAddr, to, sv.sys.Cfg.MessageBytes, msg)
}

// handleJoin decides role, id and entry point for a joining peer.
func (sv *Server) handleJoin(from simnet.Addr, m serverJoinReq) {
	if len(sv.ring) == 0 && sv.firstIssued {
		// The first t-peer was created but its registration is still in
		// flight; park this join briefly instead of minting a second
		// disconnected ring.
		sv.sys.Eng.After(20*sim.Millisecond, func() { sv.handleJoin(from, m) })
		return
	}
	role := sv.decideRole(m)
	resp := serverJoinResp{Role: role}
	switch role {
	case TPeer:
		sv.tCount++
		resp.ID = sv.generateID(from, m)
		if !sv.firstIssued {
			sv.firstIssued = true
			resp.First = true
		} else {
			// An arbitrary existing t-peer is the entry point.
			resp.Entry = sv.ring[sv.sys.Eng.Rand().Intn(len(sv.ring))]
		}
	case SPeer:
		entry, ok := sv.assignSNetwork(m)
		if !ok {
			// No t-network yet: promote to first t-peer instead.
			sv.tCount++
			sv.firstIssued = true
			resp.Role = TPeer
			resp.ID = sv.generateID(from, m)
			resp.First = true
			break
		}
		sv.sCount++
		resp.Entry = entry
	}
	sv.send(from, resp)
}

// decideRole implements the role policy. Without heterogeneity the server
// keeps the realized t:s ratio as close to (1-Ps):Ps as arrival order
// allows. With heterogeneity it additionally requires t-peers to come from
// the highest capacity class available, relaxing the bar only when the
// deficit grows (§5.1: "we assign peers with higher link capacities as
// t-peers").
func (sv *Server) decideRole(m serverJoinReq) Role {
	if m.ForceRole == int8(TPeer) {
		return TPeer
	}
	if m.ForceRole == int8(SPeer) && len(sv.ring) > 0 {
		return SPeer
	}
	total := sv.tCount + sv.sCount + 1
	desiredT := int(math.Round((1 - sv.sys.Cfg.Ps) * float64(total)))
	if desiredT < 1 {
		desiredT = 1
	}
	deficit := desiredT - sv.tCount
	if deficit <= 0 {
		return SPeer
	}
	if !sv.sys.Cfg.Heterogeneity {
		return TPeer
	}
	switch {
	case m.Capacity >= 10:
		return TPeer
	case m.Capacity >= 3 && deficit > 3:
		return TPeer
	case deficit > 20:
		return TPeer
	default:
		return SPeer
	}
}

// generateID produces a p_id per the configured policy. Conflicts are
// possible and are resolved at the insertion point with the midpoint rule.
func (sv *Server) generateID(from simnet.Addr, m serverJoinReq) idspace.ID {
	switch sv.sys.Cfg.IDGen {
	case IDHashAddr:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(from))
		return idspace.HashBytes(b[:])
	case IDLocation:
		// Project the host's coordinates onto the ring by angle around
		// the unit square's center so physically close peers get close
		// ids.
		n := sv.sys.Topo.Nodes[m.Host]
		theta := math.Atan2(n.Y-0.5, n.X-0.5) + math.Pi
		return idspace.ID(theta / (2 * math.Pi) * float64(math.MaxUint64))
	default:
		return idspace.ID(sv.sys.Eng.Rand().Uint64())
	}
}

// assignSNetwork picks the s-network for a joining s-peer.
func (sv *Server) assignSNetwork(m serverJoinReq) (Ref, bool) {
	if len(sv.ring) == 0 {
		return NilRef, false
	}
	switch sv.sys.Cfg.Assignment {
	case AssignRandom:
		return sv.ring[sv.sys.Eng.Rand().Intn(len(sv.ring))], true
	case AssignInterest:
		return sv.ringSuccessor(CategoryID(m.Interest)), true
	case AssignCluster:
		if sv.sys.Cfg.TopologyAware && m.Coord != "" {
			return sv.assignByCluster(m.Coord), true
		}
		return sv.smallestSNet(), true
	default: // AssignSmallest
		return sv.smallestSNet(), true
	}
}

// smallestSNet returns the t-peer with the fewest s-peers (§3.2.2: "the
// server is responsible for assigning a joining s-peer to some s-network
// with a smaller size").
func (sv *Server) smallestSNet() Ref {
	best := sv.ring[0]
	bestSize := sv.snetSize[best.Addr]
	for _, r := range sv.ring[1:] {
		if s := sv.snetSize[r.Addr]; s < bestSize {
			best, bestSize = r, s
		}
	}
	return best
}

// assignByCluster maps a landmark bin to an s-network (§5.2). Peers in the
// same bin land in the same s-network unless that network has grown well
// past the average, in which case the bin advances round-robin to keep
// sizes balanced.
func (sv *Server) assignByCluster(coord string) Ref {
	base := int(idspace.HashBytes([]byte(coord)) % idspace.ID(len(sv.ring)))
	idx := (base + sv.clusterRR[coord]) % len(sv.ring)
	chosen := sv.ring[idx]

	total := 0
	for _, s := range sv.snetSize {
		total += s
	}
	avg := float64(total) / float64(len(sv.ring))
	if float64(sv.snetSize[chosen.Addr]) > avg+float64(len(sv.ring)) {
		sv.clusterRR[coord]++
		idx = (base + sv.clusterRR[coord]) % len(sv.ring)
		chosen = sv.ring[idx]
	}
	return chosen
}

// --- ring registry -----------------------------------------------------------

func (sv *Server) ringInsert(r Ref) {
	for i, e := range sv.ring {
		if e.Addr == r.Addr {
			sv.ring[i] = r
			return
		}
	}
	sv.ring = append(sv.ring, r)
	sort.Slice(sv.ring, func(i, j int) bool {
		if sv.ring[i].ID != sv.ring[j].ID {
			return sv.ring[i].ID < sv.ring[j].ID
		}
		return sv.ring[i].Addr < sv.ring[j].Addr
	})
}

func (sv *Server) ringRemove(addr simnet.Addr) {
	for i, e := range sv.ring {
		if e.Addr == addr {
			sv.ring = append(sv.ring[:i], sv.ring[i+1:]...)
			if len(sv.ring) == 0 {
				// The t-network died out entirely; the next t-join
				// bootstraps a fresh ring.
				sv.firstIssued = false
			}
			return
		}
	}
}

func (sv *Server) ringSubstitute(old, new Ref) {
	for i, e := range sv.ring {
		if e.Addr == old.Addr {
			sv.ring[i] = new
			return
		}
	}
	sv.ringInsert(new)
}

// ringSuccessor returns the registered t-peer owning the given id.
func (sv *Server) ringSuccessor(id idspace.ID) Ref {
	if len(sv.ring) == 0 {
		return NilRef
	}
	for _, r := range sv.ring {
		if r.ID >= id {
			return r
		}
	}
	return sv.ring[0]
}

// ringNeighbors returns the registered predecessor and successor of the
// entry with the given address.
func (sv *Server) ringNeighbors(addr simnet.Addr) (pred, succ Ref, ok bool) {
	for i, e := range sv.ring {
		if e.Addr == addr {
			if len(sv.ring) == 1 {
				return e, e, true
			}
			pred = sv.ring[(i-1+len(sv.ring))%len(sv.ring)]
			succ = sv.ring[(i+1)%len(sv.ring)]
			return pred, succ, true
		}
	}
	return NilRef, NilRef, false
}

// handleRingLocate re-anchors a t-peer that lost its ring pointers: it is
// (re-)registered and told its registry neighbors unconditionally; the ring
// stabilization protocol then reconciles the eager pointers around it.
func (sv *Server) handleRingLocate(m ringLocate) {
	sv.ringInsert(m.Self)
	delete(sv.replaced, m.Self.Addr)
	pred, succ, ok := sv.ringNeighbors(m.Self.Addr)
	if !ok {
		return
	}
	sv.send(m.Self.Addr, pointerUpdate{Pred: pred, Succ: succ})
	// Tell the registry neighbors too, conditionally: only a neighbor
	// whose pointer is missing adopts it (IfCurrent of None matches the
	// invalid pointer case in handlePointerUpdate via the !Valid branch).
	if pred.Addr != m.Self.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: m.Self, Pred: NilRef, IfCurrent: Ref{Addr: -2}})
	}
	if succ.Addr != m.Self.Addr && succ.Addr != pred.Addr {
		sv.send(succ.Addr, pointerUpdate{Pred: m.Self, Succ: NilRef, IfCurrent: Ref{Addr: -2}})
	}
}

// --- crash arbitration --------------------------------------------------------

// handleReplace arbitrates the replacement of a crashed t-peer. The paper
// lets disconnected s-peers "compete to replace the crashed t-peer by
// sending messages to the server"; the server picks one (the first reporter
// here — any deterministic rule works) and points the rest at the winner.
func (sv *Server) handleReplace(from simnet.Addr, m replaceReq) {
	if rep, done := sv.replaced[m.Crashed.Addr]; done {
		sv.send(from, replaceResp{Promote: false, NewT: rep})
		return
	}
	pred, succ, registered := sv.ringNeighbors(m.Crashed.Addr)
	if !registered {
		// Unknown crash report: steer the reporter to the segment owner.
		sv.send(from, replaceResp{Promote: false, NewT: sv.ringSuccessor(m.Crashed.ID)})
		return
	}
	winner := m.Self
	newRef := Ref{ID: m.Crashed.ID, Addr: winner.Addr}
	sv.ringSubstitute(m.Crashed, newRef)
	sv.replaced[m.Crashed.Addr] = newRef
	size := sv.snetSize[m.Crashed.Addr]
	delete(sv.snetSize, m.Crashed.Addr)
	if size > 0 {
		sv.snetSize[winner.Addr] = size - 1 // the winner is no longer an s-peer
	}
	sv.sys.stats.Promotions++

	if pred.Addr == m.Crashed.Addr {
		pred = newRef // singleton ring
	}
	if succ.Addr == m.Crashed.Addr {
		succ = newRef
	}
	sv.send(from, replaceResp{Promote: true, ID: m.Crashed.ID, Pred: pred, Succ: succ})
	// Patch the ring neighbors' pointers directly; the promoted peer also
	// circulates a finger substitution when it takes over.
	if pred.Addr != winner.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: newRef, Pred: NilRef, IfCurrent: m.Crashed})
	}
	if succ.Addr != winner.Addr {
		sv.send(succ.Addr, pointerUpdate{Pred: newRef, Succ: NilRef, IfCurrent: m.Crashed})
	}
}

// handleRingDead handles a crashed-t-peer report from a ring neighbor. If
// the registry says the dead peer had an empty s-network the ring is patched
// around it immediately; otherwise the s-network is given one failure-
// detection window to drive the replacement (replaceReq) before the server
// force-patches anyway. Either way the reporter gets a targeted ringRepair
// so its own stale pointer heals.
func (sv *Server) handleRingDead(m ringDeadReq) {
	if rep, done := sv.replaced[m.Crashed.Addr]; done {
		sv.send(m.Self.Addr, ringRepair{Crashed: m.Crashed, Pred: rep, Succ: rep})
		return
	}
	pred, succ, registered := sv.ringNeighbors(m.Crashed.Addr)
	if !registered {
		sv.send(m.Self.Addr, ringRepair{
			Crashed: m.Crashed,
			Pred:    sv.ringPredecessor(m.Crashed.ID),
			Succ:    sv.ringSuccessor(m.Crashed.ID),
		})
		return
	}
	if sv.snetSize[m.Crashed.Addr] > 0 {
		// The s-network should drive replacement through replaceReq; if
		// it does not (the size accounting can drift, or the children
		// crashed too), force-patch after one more detection window.
		if !sv.deadPending[m.Crashed.Addr] {
			sv.deadPending[m.Crashed.Addr] = true
			crashed := m.Crashed
			sv.sys.Eng.After(2*sv.sys.Cfg.HelloTimeout, func() {
				delete(sv.deadPending, crashed.Addr)
				if _, done := sv.replaced[crashed.Addr]; done {
					return
				}
				if _, _, still := sv.ringNeighbors(crashed.Addr); still {
					sv.patchAround(crashed)
				}
			})
		}
		return
	}
	sv.patchAround(m.Crashed)
	_ = pred
	_ = succ
}

// patchAround removes a dead t-peer from the registry and splices its ring
// neighbors together, folding its segment into the successor.
func (sv *Server) patchAround(crashed Ref) {
	pred, succ, registered := sv.ringNeighbors(crashed.Addr)
	if !registered {
		return
	}
	sv.ringRemove(crashed.Addr)
	delete(sv.snetSize, crashed.Addr)
	sv.replaced[crashed.Addr] = succ
	if pred.Addr != crashed.Addr && pred.Addr != succ.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: succ, Pred: NilRef, IfCurrent: crashed})
		sv.send(succ.Addr, pointerUpdate{Pred: pred, Succ: NilRef, IfCurrent: crashed})
	} else if pred.Addr == succ.Addr && pred.Addr != crashed.Addr {
		// Two-node ring collapsing to one.
		sv.send(pred.Addr, pointerUpdate{Pred: pred, Succ: pred, IfCurrent: crashed})
	}
	// Circulate a finger substitution so stale fingers route to the
	// successor, which now owns the dead peer's segment.
	if succ.Addr != crashed.Addr {
		sv.send(succ.Addr, substituteMsg{Old: crashed, New: succ, Origin: succ.Addr})
	}
}

// ringPredecessor returns the registered t-peer preceding the given id.
func (sv *Server) ringPredecessor(id idspace.ID) Ref {
	if len(sv.ring) == 0 {
		return NilRef
	}
	for i := len(sv.ring) - 1; i >= 0; i-- {
		if sv.ring[i].ID < id {
			return sv.ring[i]
		}
	}
	return sv.ring[len(sv.ring)-1]
}

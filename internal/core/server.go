package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// Server is the well-known bootstrap server (§3.2): it hands joining peers a
// role, an id and an entry point, assigns s-peers to s-networks, manages the
// landmark list, and arbitrates the replacement of crashed t-peers.
//
// The server holds soft state only — a registry mirroring what peers report —
// and is never on the data path, so it is not the BitTorrent-style single
// point of failure the paper distinguishes itself from.
type Server struct {
	sys  *System
	Host int

	// ring mirrors the live t-network, ordered by id.
	ring []Ref
	// ringMember mirrors ring's address set so the hot per-HELLO paths
	// (size sync, dead-peer bookkeeping) check membership in O(1) instead
	// of scanning the registry; at scale the scan made every sync round
	// quadratic in the number of t-peers.
	ringMember map[runtime.Addr]bool
	// ringUnsorted flips when an in-place update (id change on
	// re-registration, address change on crash substitution) may have
	// broken the (id, addr) sort order. While set, insertion falls back to
	// append+sort — the pre-existing behavior — and clears the flag.
	ringUnsorted bool
	// detachDirty flips whenever a peer detaches (or a registration
	// arrives from an already-dead peer) and arms the next sweepDead scan.
	// Without the gate the sweep walks the whole registry on every size
	// sync even when nobody has crashed since the last one.
	detachDirty bool
	// snetSize tracks s-peers per s-network, keyed by t-peer address.
	snetSize map[runtime.Addr]int
	// tCount/sCount track how many role assignments were made.
	tCount, sCount int

	// landmarks are the physical hosts acting as binning landmarks.
	landmarks []int
	// clusterRR advances round-robin assignment within a landmark bin.
	clusterRR map[string]int

	// replaced remembers crash substitutions so late reporters learn the
	// new t-peer instead of being promoted twice.
	replaced map[runtime.Addr]Ref
	// deadPending tracks crashed t-peers whose s-network is expected to
	// drive the replacement; if none arrives before the fallback fires
	// the server force-patches the ring.
	deadPending map[runtime.Addr]bool

	// firstIssued flips when the very first t-peer role is handed out; it
	// closes the window in which a second joiner could race the first
	// peer's ringRegister and be crowned a second "first" ring. firstAddr
	// remembers who got that role so a lost response can be re-issued and a
	// crashed first joiner does not park every later join forever.
	firstIssued bool
	firstAddr   runtime.Addr
}

// Server-bound registration messages.
type (
	ringRegister   struct{ Self Ref }
	ringUnregister struct {
		Self Ref
		Succ Ref
	}
	ringReplace struct{ Old, New Ref }
	sRegister   struct{ TPeer Ref }
	sUnregister struct{ TPeer Ref }
	// sSizeSync carries a t-peer's authoritative count of its s-network
	// (piggybacked on its HELLO tick). The incremental sRegister/sUnregister
	// stream drifts under crashes — a parent that dies with its child causes
	// one decrement for two losses, a subtree that rejoins elsewhere
	// increments the new network but never decrements the old — so the
	// absolute figure periodically overwrites the counter.
	sSizeSync struct {
		Self Ref
		Size int
	}
)

func newServer(sys *System, host int) *Server {
	sv := &Server{
		sys:         sys,
		Host:        host,
		ringMember:  make(map[runtime.Addr]bool),
		snetSize:    make(map[runtime.Addr]int),
		clusterRR:   make(map[string]int),
		replaced:    make(map[runtime.Addr]Ref),
		deadPending: make(map[runtime.Addr]bool),
		firstAddr:   runtime.None,
	}
	sv.pickLandmarks()
	sys.rt.Attach(sv.sys.serverAddr, runtime.Endpoint{Host: host, Capacity: 10}, runtime.HandlerFunc(sv.recv))
	return sv
}

// pickLandmarks chooses evenly spaced stub hosts as landmarks ("the
// landmarks are predetermined so that they are uniformly distributed around
// the network").
func (sv *Server) pickLandmarks() {
	n := sv.sys.Cfg.Landmarks
	var stubs []int
	if pl := sv.sys.rt.Placement(); pl != nil {
		stubs = pl.StubHosts()
	}
	if len(stubs) == 0 {
		stubs = []int{0}
	}
	if n > len(stubs) {
		n = len(stubs)
	}
	sv.landmarks = make([]int, n)
	for i := 0; i < n; i++ {
		sv.landmarks[i] = stubs[i*len(stubs)/n]
	}
}

// Landmarks returns the landmark hosts.
func (sv *Server) Landmarks() []int { return append([]int(nil), sv.landmarks...) }

// RingSize returns the number of registered t-peers.
func (sv *Server) RingSize() int { return len(sv.ring) }

// SNetSizes returns a copy of the per-s-network size table.
func (sv *Server) SNetSizes() map[runtime.Addr]int {
	out := make(map[runtime.Addr]int, len(sv.snetSize))
	for k, v := range sv.snetSize {
		out[k] = v
	}
	return out
}

func (sv *Server) recv(from runtime.Addr, msg any) {
	switch m := msg.(type) {
	case serverJoinReq:
		sv.handleJoin(from, m)
	case ringRegister:
		sv.ringInsert(m.Self)
		delete(sv.replaced, m.Self.Addr)
	case ringUnregister:
		sv.ringRemove(m.Self.Addr)
		delete(sv.snetSize, m.Self.Addr)
	case ringReplace:
		sv.ringSubstitute(m.Old, m.New)
		sv.snetSize[m.New.Addr] = sv.snetSize[m.Old.Addr]
		delete(sv.snetSize, m.Old.Addr)
		sv.replaced[m.Old.Addr] = m.New
	case sRegister:
		sv.snetSize[m.TPeer.Addr]++
	case sUnregister:
		if sv.snetSize[m.TPeer.Addr] > 0 {
			sv.snetSize[m.TPeer.Addr]--
		}
	case sSizeSync:
		sv.handleSizeSync(m)
	case replaceReq:
		sv.handleReplace(from, m)
	case ringLocate:
		sv.handleRingLocate(m)
	case ringDeadReq:
		sv.handleRingDead(m)
	default:
		panic(fmt.Sprintf("core: server received unknown message %T", msg))
	}
}

func (sv *Server) send(to runtime.Addr, msg any) {
	sv.sys.rt.Send(sv.sys.serverAddr, to, sv.sys.Cfg.MessageBytes, msg)
}

// handleSizeSync overwrites the incremental s-network counter with the
// t-peer's own count. The sync doubles as a registry keep-alive: a live
// t-peer that is missing from the ring registry (its ringRegister was lost,
// or a false crash alarm evicted it) is re-registered and re-anchored, while
// dead senders are ignored so a late sync cannot resurrect them.
func (sv *Server) handleSizeSync(m sSizeSync) {
	sv.sweepDead()
	if sv.ringMember[m.Self.Addr] {
		sv.snetSize[m.Self.Addr] = m.Size
		return
	}
	if !sv.sys.rt.Attached(m.Self.Addr) {
		return
	}
	sv.handleRingLocate(ringLocate{Self: m.Self})
	sv.snetSize[m.Self.Addr] = m.Size
}

// sweepDead notices registered t-peers that crashed without a surviving
// witness — both ring neighbors died in the same burst, or every crash
// report was lost — and starts the normal repair for each. Piggybacked on
// the periodic size sync, so the registry converges while at least one
// t-peer is alive, without a dedicated server timer.
func (sv *Server) sweepDead() {
	// Scan only when something detached since the last sweep. Skipped
	// sweeps change nothing: noteDead is idempotent (replaced/deadPending
	// guard every path after the first handling), so re-noticing the same
	// corpses on every sync round did only wasted work.
	if !sv.detachDirty {
		return
	}
	sv.detachDirty = false
	var dead []Ref
	for _, r := range sv.ring {
		if !sv.sys.rt.Attached(r.Addr) {
			dead = append(dead, r)
		}
	}
	for _, r := range dead {
		sv.noteDead(r)
	}
}

// noteDead schedules repair for a registered, confirmed-dead t-peer:
// immediate patch when its s-network is empty, one grace window otherwise so
// the s-peers can drive replacement arbitration (replaceReq) first.
func (sv *Server) noteDead(crashed Ref) {
	if _, done := sv.replaced[crashed.Addr]; done {
		return
	}
	if sv.sys.rt.Attached(crashed.Addr) {
		return
	}
	if !sv.ringMember[crashed.Addr] {
		return
	}
	if sv.snetSize[crashed.Addr] > 0 {
		if !sv.deadPending[crashed.Addr] {
			sv.deadPending[crashed.Addr] = true
			c := crashed
			sv.sys.rt.Schedule(2*sv.sys.Cfg.HelloTimeout, func() {
				delete(sv.deadPending, c.Addr)
				if _, done := sv.replaced[c.Addr]; done {
					return
				}
				if sv.ringMember[c.Addr] {
					sv.patchAround(c)
				}
			})
		}
		return
	}
	sv.patchAround(crashed)
}

// liveReplacement follows the replacement chain from a crashed t-peer until
// it reaches one that is still attached: the recorded replacement may itself
// have died since, and steering a reporter at a corpse would cost a full
// detection cycle per dead link. Falls back to the registry's current owner
// of the crashed peer's segment.
func (sv *Server) liveReplacement(crashed Ref) Ref {
	rep, ok := sv.replaced[crashed.Addr]
	for hops := 0; ok && hops < len(sv.replaced)+1; hops++ {
		if sv.sys.rt.Attached(rep.Addr) {
			return rep
		}
		next, chained := sv.replaced[rep.Addr]
		if !chained || next.Addr == rep.Addr {
			break
		}
		rep = next
	}
	return sv.ringSuccessor(crashed.ID)
}

// handleJoin decides role, id and entry point for a joining peer.
func (sv *Server) handleJoin(from runtime.Addr, m serverJoinReq) {
	if len(sv.ring) == 0 && sv.firstIssued {
		if sv.firstAddr != runtime.None && !sv.sys.rt.Attached(sv.firstAddr) {
			// The chosen first t-peer crashed before registering; unwind
			// the reservation and let this joiner bootstrap the ring.
			sv.firstIssued = false
			sv.firstAddr = runtime.None
		} else if from == sv.firstAddr {
			// The first joiner is retrying — its response was lost. Re-issue
			// the same role instead of parking it behind its own
			// registration.
			sv.send(from, serverJoinResp{Role: TPeer, ID: sv.generateID(from, m), First: true})
			return
		} else {
			// The first t-peer was created but its registration is still in
			// flight; park this join briefly instead of minting a second
			// disconnected ring.
			sv.sys.rt.Schedule(20*runtime.Millisecond, func() { sv.handleJoin(from, m) })
			return
		}
	}
	role := sv.decideRole(m)
	resp := serverJoinResp{Role: role}
	switch role {
	case TPeer:
		sv.tCount++
		resp.ID = sv.generateID(from, m)
		if !sv.firstIssued {
			sv.firstIssued = true
			sv.firstAddr = from
			resp.First = true
		} else {
			// An arbitrary existing t-peer is the entry point.
			resp.Entry = sv.ring[sv.sys.rt.Rand().Intn(len(sv.ring))]
		}
	case SPeer:
		entry, ok := sv.assignSNetwork(m)
		if !ok {
			// No t-network yet: promote to first t-peer instead.
			sv.tCount++
			sv.firstIssued = true
			sv.firstAddr = from
			resp.Role = TPeer
			resp.ID = sv.generateID(from, m)
			resp.First = true
			break
		}
		sv.sCount++
		resp.Entry = entry
	}
	sv.send(from, resp)
}

// decideRole implements the role policy. Without heterogeneity the server
// keeps the realized t:s ratio as close to (1-Ps):Ps as arrival order
// allows. With heterogeneity it additionally requires t-peers to come from
// the highest capacity class available, relaxing the bar only when the
// deficit grows (§5.1: "we assign peers with higher link capacities as
// t-peers").
func (sv *Server) decideRole(m serverJoinReq) Role {
	if m.ForceRole == int8(TPeer) {
		return TPeer
	}
	if m.ForceRole == int8(SPeer) && len(sv.ring) > 0 {
		return SPeer
	}
	total := sv.tCount + sv.sCount + 1
	desiredT := int(math.Round((1 - sv.sys.Cfg.Ps) * float64(total)))
	if desiredT < 1 {
		desiredT = 1
	}
	deficit := desiredT - sv.tCount
	if deficit <= 0 {
		return SPeer
	}
	if !sv.sys.Cfg.Heterogeneity {
		return TPeer
	}
	switch {
	case m.Capacity >= 10:
		return TPeer
	case m.Capacity >= 3 && deficit > 3:
		return TPeer
	case deficit > 20:
		return TPeer
	default:
		return SPeer
	}
}

// generateID produces a p_id per the configured policy. Conflicts are
// possible and are resolved at the insertion point with the midpoint rule.
func (sv *Server) generateID(from runtime.Addr, m serverJoinReq) idspace.ID {
	switch sv.sys.Cfg.IDGen {
	case IDHashAddr:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(from))
		return idspace.HashBytes(b[:])
	case IDLocation:
		// Project the host's coordinates onto the ring by angle around
		// the unit square's center so physically close peers get close
		// ids. Without a placement model there are no coordinates and the
		// id falls back to a uniform draw.
		pl := sv.sys.rt.Placement()
		if pl == nil {
			return idspace.ID(sv.sys.rt.Rand().Uint64())
		}
		x, y, ok := pl.HostCoord(m.Host)
		if !ok {
			return idspace.ID(sv.sys.rt.Rand().Uint64())
		}
		theta := math.Atan2(y-0.5, x-0.5) + math.Pi
		return idspace.ID(theta / (2 * math.Pi) * float64(math.MaxUint64))
	default:
		return idspace.ID(sv.sys.rt.Rand().Uint64())
	}
}

// assignSNetwork picks the s-network for a joining s-peer.
func (sv *Server) assignSNetwork(m serverJoinReq) (Ref, bool) {
	if len(sv.ring) == 0 {
		return NilRef, false
	}
	switch sv.sys.Cfg.Assignment {
	case AssignRandom:
		return sv.ring[sv.sys.rt.Rand().Intn(len(sv.ring))], true
	case AssignInterest:
		return sv.ringSuccessor(CategoryID(m.Interest)), true
	case AssignCluster:
		if sv.sys.Cfg.TopologyAware && m.Coord != "" {
			return sv.assignByCluster(m.Coord), true
		}
		return sv.smallestSNet(), true
	default: // AssignSmallest
		return sv.smallestSNet(), true
	}
}

// smallestSNet returns the t-peer with the fewest s-peers (§3.2.2: "the
// server is responsible for assigning a joining s-peer to some s-network
// with a smaller size").
func (sv *Server) smallestSNet() Ref {
	best := sv.ring[0]
	bestSize := sv.snetSize[best.Addr]
	for _, r := range sv.ring[1:] {
		if s := sv.snetSize[r.Addr]; s < bestSize {
			best, bestSize = r, s
		}
	}
	return best
}

// assignByCluster maps a landmark bin to an s-network (§5.2). Peers in the
// same bin land in the same s-network unless that network has grown well
// past the average, in which case the bin advances round-robin to keep
// sizes balanced.
func (sv *Server) assignByCluster(coord string) Ref {
	base := int(idspace.HashBytes([]byte(coord)) % idspace.ID(len(sv.ring)))
	idx := (base + sv.clusterRR[coord]) % len(sv.ring)
	chosen := sv.ring[idx]

	total := 0
	for _, s := range sv.snetSize {
		total += s
	}
	avg := float64(total) / float64(len(sv.ring))
	if float64(sv.snetSize[chosen.Addr]) > avg+float64(len(sv.ring)) {
		sv.clusterRR[coord]++
		idx = (base + sv.clusterRR[coord]) % len(sv.ring)
		chosen = sv.ring[idx]
	}
	return chosen
}

// --- ring registry -----------------------------------------------------------

func (sv *Server) ringInsert(r Ref) {
	if sv.ringMember[r.Addr] {
		for i, e := range sv.ring {
			if e.Addr == r.Addr {
				if e.ID != r.ID {
					// The id changed under an existing entry; the array may
					// now violate the sort order, exactly as it did before
					// sorted insertion existed. The next append re-sorts.
					sv.ringUnsorted = true
				}
				sv.ring[i] = r
				return
			}
		}
	}
	if !sv.sys.rt.Attached(r.Addr) {
		// A registration from a peer that crashed before it arrived: arm the
		// sweep, or the corpse would sit in the registry with no surviving
		// witness to report it.
		sv.detachDirty = true
	}
	sv.ringMember[r.Addr] = true
	if sv.ringUnsorted {
		sv.ring = append(sv.ring, r)
		sort.Slice(sv.ring, func(i, j int) bool {
			if sv.ring[i].ID != sv.ring[j].ID {
				return sv.ring[i].ID < sv.ring[j].ID
			}
			return sv.ring[i].Addr < sv.ring[j].Addr
		})
		sv.ringUnsorted = false
		return
	}
	// Sorted insert: (id, addr) is a strict total order (addresses are
	// unique), so the result is byte-identical to append+sort at a fraction
	// of the cost — building a 10k-entry registry no longer re-sorts 10k
	// times.
	i := sort.Search(len(sv.ring), func(i int) bool {
		if sv.ring[i].ID != r.ID {
			return sv.ring[i].ID > r.ID
		}
		return sv.ring[i].Addr > r.Addr
	})
	sv.ring = append(sv.ring, Ref{})
	copy(sv.ring[i+1:], sv.ring[i:])
	sv.ring[i] = r
}

func (sv *Server) ringRemove(addr runtime.Addr) {
	if !sv.ringMember[addr] {
		return
	}
	delete(sv.ringMember, addr)
	for i, e := range sv.ring {
		if e.Addr == addr {
			sv.ring = append(sv.ring[:i], sv.ring[i+1:]...)
			if len(sv.ring) == 0 {
				// The t-network died out entirely; the next t-join
				// bootstraps a fresh ring.
				sv.firstIssued = false
				sv.firstAddr = runtime.None
			}
			return
		}
	}
}

func (sv *Server) ringSubstitute(old, new Ref) {
	if sv.ringMember[old.Addr] {
		for i, e := range sv.ring {
			if e.Addr == old.Addr {
				sv.ring[i] = new
				delete(sv.ringMember, old.Addr)
				sv.ringMember[new.Addr] = true
				// Same id, different address: the (id, addr) tiebreak may
				// now be out of order, so fall back to append+sort on the
				// next insert (which is what always happened before).
				sv.ringUnsorted = true
				return
			}
		}
	}
	sv.ringInsert(new)
}

// ringSuccessor returns the registered t-peer owning the given id.
func (sv *Server) ringSuccessor(id idspace.ID) Ref {
	if len(sv.ring) == 0 {
		return NilRef
	}
	for _, r := range sv.ring {
		if r.ID >= id {
			return r
		}
	}
	return sv.ring[0]
}

// ringNeighbors returns the registered predecessor and successor of the
// entry with the given address.
func (sv *Server) ringNeighbors(addr runtime.Addr) (pred, succ Ref, ok bool) {
	for i, e := range sv.ring {
		if e.Addr == addr {
			if len(sv.ring) == 1 {
				return e, e, true
			}
			pred = sv.ring[(i-1+len(sv.ring))%len(sv.ring)]
			succ = sv.ring[(i+1)%len(sv.ring)]
			return pred, succ, true
		}
	}
	return NilRef, NilRef, false
}

// handleRingLocate re-anchors a t-peer that lost its ring pointers: it is
// (re-)registered and told its registry neighbors unconditionally; the ring
// stabilization protocol then reconciles the eager pointers around it.
func (sv *Server) handleRingLocate(m ringLocate) {
	sv.ringInsert(m.Self)
	delete(sv.replaced, m.Self.Addr)
	pred, succ, ok := sv.ringNeighbors(m.Self.Addr)
	if !ok {
		return
	}
	sv.send(m.Self.Addr, pointerUpdate{Pred: pred, Succ: succ})
	// Tell the registry neighbors too, conditionally: only a neighbor
	// whose pointer is missing adopts it (IfCurrent of None matches the
	// invalid pointer case in handlePointerUpdate via the !Valid branch).
	if pred.Addr != m.Self.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: m.Self, Pred: NilRef, IfCurrent: Ref{Addr: -2}})
	}
	if succ.Addr != m.Self.Addr && succ.Addr != pred.Addr {
		sv.send(succ.Addr, pointerUpdate{Pred: m.Self, Succ: NilRef, IfCurrent: Ref{Addr: -2}})
	}
}

// --- crash arbitration --------------------------------------------------------

// handleReplace arbitrates the replacement of a crashed t-peer. The paper
// lets disconnected s-peers "compete to replace the crashed t-peer by
// sending messages to the server"; the server picks one (the first reporter
// here — any deterministic rule works) and points the rest at the winner.
func (sv *Server) handleReplace(from runtime.Addr, m replaceReq) {
	if _, done := sv.replaced[m.Crashed.Addr]; done {
		rep := sv.liveReplacement(m.Crashed)
		if rep.Addr == from {
			// The recorded replacement itself is reporting the crash: its
			// takeover notice (promoteMsg from a leaving t-peer, or an
			// earlier replaceResp) was lost, so it is still an s-peer while
			// the registry already lists it in the ring. Crown it with the
			// position it was assigned instead of steering it at itself.
			if pred, succ, ok := sv.ringNeighbors(rep.Addr); ok {
				if pred.Addr == rep.Addr {
					pred = rep
				}
				if succ.Addr == rep.Addr {
					succ = rep
				}
				sv.send(from, replaceResp{Promote: true, ID: rep.ID, Pred: pred, Succ: succ})
				return
			}
		}
		sv.send(from, replaceResp{Promote: false, NewT: rep})
		return
	}
	if sv.sys.rt.Attached(m.Crashed.Addr) {
		// False alarm: the reported t-peer is alive (its HELLOs were lost).
		// Promoting a replacement for a living peer would fork the ring, so
		// steer the reporter back under its own t-peer instead.
		sv.send(from, replaceResp{Promote: false, NewT: m.Crashed})
		return
	}
	pred, succ, registered := sv.ringNeighbors(m.Crashed.Addr)
	if !registered {
		// Unknown crash report: steer the reporter to the segment owner.
		sv.send(from, replaceResp{Promote: false, NewT: sv.ringSuccessor(m.Crashed.ID)})
		return
	}
	winner := m.Self
	newRef := Ref{ID: m.Crashed.ID, Addr: winner.Addr}
	sv.ringSubstitute(m.Crashed, newRef)
	sv.replaced[m.Crashed.Addr] = newRef
	size := sv.snetSize[m.Crashed.Addr]
	delete(sv.snetSize, m.Crashed.Addr)
	if size > 0 {
		sv.snetSize[winner.Addr] = size - 1 // the winner is no longer an s-peer
	}
	sv.sys.stats.Promotions++

	if pred.Addr == m.Crashed.Addr {
		pred = newRef // singleton ring
	}
	if succ.Addr == m.Crashed.Addr {
		succ = newRef
	}
	sv.send(from, replaceResp{Promote: true, ID: m.Crashed.ID, Pred: pred, Succ: succ})
	// Patch the ring neighbors' pointers directly; the promoted peer also
	// circulates a finger substitution when it takes over.
	if pred.Addr != winner.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: newRef, Pred: NilRef, IfCurrent: m.Crashed})
	}
	if succ.Addr != winner.Addr {
		sv.send(succ.Addr, pointerUpdate{Pred: newRef, Succ: NilRef, IfCurrent: m.Crashed})
	}
}

// handleRingDead handles a crashed-t-peer report from a ring neighbor. If
// the registry says the dead peer had an empty s-network the ring is patched
// around it immediately; otherwise the s-network is given one failure-
// detection window to drive the replacement (replaceReq) before the server
// force-patches anyway. Either way the reporter gets a targeted ringRepair
// so its own stale pointer heals.
func (sv *Server) handleRingDead(m ringDeadReq) {
	if _, done := sv.replaced[m.Crashed.Addr]; done {
		rep := sv.liveReplacement(m.Crashed)
		sv.send(m.Self.Addr, ringRepair{Crashed: m.Crashed, Pred: rep, Succ: rep})
		return
	}
	if sv.sys.rt.Attached(m.Crashed.Addr) {
		// False alarm — the reported peer is alive. Ignore the report: the
		// reporter keeps watching and its suspicion clears when the next
		// HELLO gets through; evicting a live peer would split the ring.
		return
	}
	if _, _, registered := sv.ringNeighbors(m.Crashed.Addr); !registered {
		sv.send(m.Self.Addr, ringRepair{
			Crashed: m.Crashed,
			Pred:    sv.ringPredecessor(m.Crashed.ID),
			Succ:    sv.ringSuccessor(m.Crashed.ID),
		})
		return
	}
	// The s-network, if any, should drive replacement through replaceReq;
	// when it does not (the size accounting drifted, or the children
	// crashed too), noteDead force-patches after one detection window.
	sv.noteDead(m.Crashed)
}

// patchAround removes a dead t-peer from the registry and splices its ring
// neighbors together, folding its segment into the successor. A peer that is
// still attached is never patched around: force-patching a live peer on a
// false alarm would split the ring permanently.
func (sv *Server) patchAround(crashed Ref) {
	if sv.sys.rt.Attached(crashed.Addr) {
		return
	}
	pred, succ, registered := sv.ringNeighbors(crashed.Addr)
	if !registered {
		return
	}
	sv.ringRemove(crashed.Addr)
	delete(sv.snetSize, crashed.Addr)
	sv.replaced[crashed.Addr] = succ
	if pred.Addr != crashed.Addr && pred.Addr != succ.Addr {
		sv.send(pred.Addr, pointerUpdate{Succ: succ, Pred: NilRef, IfCurrent: crashed})
		sv.send(succ.Addr, pointerUpdate{Pred: pred, Succ: NilRef, IfCurrent: crashed})
	} else if pred.Addr == succ.Addr && pred.Addr != crashed.Addr {
		// Two-node ring collapsing to one.
		sv.send(pred.Addr, pointerUpdate{Pred: pred, Succ: pred, IfCurrent: crashed})
	}
	// Circulate a finger substitution so stale fingers route to the
	// successor, which now owns the dead peer's segment.
	if succ.Addr != crashed.Addr {
		sv.send(succ.Addr, substituteMsg{Old: crashed, New: succ, Origin: succ.Addr})
	}
}

// ringPredecessor returns the registered t-peer preceding the given id.
func (sv *Server) ringPredecessor(id idspace.ID) Ref {
	if len(sv.ring) == 0 {
		return NilRef
	}
	for i := len(sv.ring) - 1; i >= 0; i-- {
		if sv.ring[i].ID < id {
			return sv.ring[i]
		}
	}
	return sv.ring[len(sv.ring)-1]
}

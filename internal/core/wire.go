package core

// WireMessages returns prototype values for every message type the protocol
// puts on the transport, in a fixed order that is part of the cluster's wire
// contract: the socket runtime (internal/runtime/net) assigns codes by list
// position, so every process in a deployment must build its codec from this
// exact list. Append new message types at the end; reordering or removing
// entries breaks wire compatibility between builds.
//
// The list must stay in sync with the Recv dispatch switches (Server.recv,
// Peer.recv and the role-specific handlers): a type that is sent but not
// listed here fails at Send time on the socket runtime with an
// "unregistered wire type" error, which is how drift surfaces.
func WireMessages() []any {
	return []any{
		// Server dialogue.
		serverJoinReq{},
		serverJoinResp{},
		replaceReq{},
		replaceResp{},
		ringDeadReq{},
		ringRepair{},
		ringRegister{},
		ringUnregister{},
		ringReplace{},
		sRegister{},
		sUnregister{},
		sSizeSync{},
		ringLocate{},

		// T-network membership.
		tJoinReq{},
		tJoinSetup{},
		tJoinToSucc{},
		tJoinDone{},
		tJoinConfirm{},
		tJoinCancel{},
		loadTransferReq{},
		itemsMsg{},
		tLeaveToPred{},
		tLeaveToSucc{},
		tLeaveDone{},
		promoteMsg{},
		newParentMsg{},
		substituteMsg{},
		pointerUpdate{},
		findSuccReq{},
		findSuccResp{},

		// Ring stabilization.
		ringStabQ{},
		ringStabA{},
		ringNotify{},

		// S-network membership.
		sJoinReq{},
		sJoinAck{},
		sLeaveMsg{},

		// Failure detection.
		helloMsg{},
		ackMsg{},

		// Data operations.
		storeReq{},
		spreadReq{},
		storeAck{},
		lookupReq{},
		floodReq{},
		foundMsg{},
		notFoundMsg{},

		// Tracker mode.
		indexAdd{},
		indexRemove{},
		fetchReq{},

		// Extensions: bypass links, surrogate caching, random walks, search.
		bypassAdd{},
		cacheAdd{},
		walkReq{},
		searchReq{},
		searchHit{},

		// Replication and the client-facing delete (ReplicationK).
		replicaPut{},
		replicaAck{},
		replicaDrop{},
		ownerAnnounce{},
		deleteReq{},
		deleteAck{},
		deleteFlood{},

		// Lookup-path caching and cache-wide delete invalidation (PR 10).
		routeHint{},
		hintDrop{},
		deleteRing{},
	}
}

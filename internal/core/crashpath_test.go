package core

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// hardenedConfig tightens the maintenance cadence the way the experiment
// harness does, so crash tests settle in bounded simulated time.
func hardenedConfig(c *Config) {
	c.HelloEvery = 5 * sim.Second
	c.HelloTimeout = 12 * sim.Second
	c.FingerRefreshEvery = 5 * sim.Second
	c.LookupTimeout = 5 * sim.Second
	c.JoinTimeout = 40 * sim.Second
}

// TestParallelFloodSurvivesRingMiss is the regression test for the
// parallel-flood fast-fail race: lookupRemote floods the local s-network in
// parallel with ring routing, so a definitive miss from the ring must not
// fail the operation while the flood can still answer. Before the fix
// handleNotFound finished the op immediately and a later local hit was
// dropped on the floor.
func TestParallelFloodSurvivesRingMiss(t *testing.T) {
	sys := newTestSystem(t, 7, func(c *Config) {
		c.Ps = 0.7
		hardenedConfig(c)
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	var p *Peer
	for _, sp := range sys.SPeers() {
		if len(sp.neighbors()) > 0 {
			p = sp
			break
		}
	}
	if p == nil {
		t.Fatal("no s-peer with neighbors")
	}

	// Drive the race directly through the handlers: start a remote lookup
	// (which also floods locally), then deliver the ring's miss before any
	// flood answer.
	var got *OpResult
	o, qid := p.newOp("lookup", "race-key", func(r OpResult) { got = &r })
	p.lookupRemote(o, qid)
	if !o.localFlood {
		t.Fatal("lookupRemote did not start a parallel local flood")
	}
	p.handleNotFound(notFoundMsg{QID: qid, Hops: 3})
	if got != nil {
		t.Fatalf("ring miss failed the op while the local flood was outstanding: %+v", *got)
	}
	if _, ok := p.pending[qid]; !ok {
		t.Fatal("op no longer pending after ring miss")
	}
	if !o.ringMiss {
		t.Fatal("ring miss not recorded on the op")
	}
	// A duplicated miss (dup faults) must also be harmless.
	p.handleNotFound(notFoundMsg{QID: qid, Hops: 3})
	// The flood answers late: the op must still conclude successfully.
	p.handleFound(foundMsg{
		QID:    qid,
		Item:   Item{Key: "race-key", Value: "v", DID: o.did},
		Holder: p.Ref(),
		Hops:   2,
	})
	if got == nil || !got.OK {
		t.Fatalf("late flood hit did not complete the op: %+v", got)
	}
}

// TestCascadedChildCrashAccounting is the regression test for s-network size
// drift: when a parent and its child crash together only the parent's
// watchdog-driven unregistration fires (the child's own parent is dead), so
// the server's incremental counter ends up one too high. The periodic
// absolute size sync must reconcile it.
func TestCascadedChildCrashAccounting(t *testing.T) {
	sys := newTestSystem(t, 11, func(c *Config) {
		c.Ps = 0.8
		hardenedConfig(c)
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	// Find an s-peer that has a child: crashing both loses two peers but
	// triggers only one unregistration.
	var parent, child *Peer
	for _, sp := range sys.SPeers() {
		if len(sp.children) > 0 {
			parent = sp
			child = sys.Peer(sp.children[0].Ref.Addr)
			break
		}
	}
	if parent == nil || child == nil {
		t.Fatal("no s-peer parent/child pair found")
	}
	parent.Crash()
	child.Crash()

	// Let detection, subtree rejoin and several size-sync HELLO ticks run.
	sys.Settle(6 * sys.Cfg.HelloTimeout)

	if err := sys.CheckServerAccounting(); err != nil {
		t.Fatalf("server accounting did not reconcile after cascaded crash: %v", err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestLookupDetoursSuspectedSuccessor is the regression test for asymmetric
// dead-pointer handling: a t-peer keeps its crashed successor pointer while
// the repair is pending (repair messages match on the stale value), but data
// routing must stop forwarding into the crash and detour via the successor's
// successor learned from stabilization.
func TestLookupDetoursSuspectedSuccessor(t *testing.T) {
	sys := newTestSystem(t, 17, func(c *Config) {
		c.Ps = 0.5
		c.SuccessorRouting = true // force the lookup through the succ pointer
		c.Placement = PlaceAtTPeer
		hardenedConfig(c)
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(20 * sim.Second) // several stabilization rounds populate succ2

	// Pick a crash victim T with a non-empty s-network (so the server waits
	// for its s-peers to drive replacement before force-patching the ring,
	// which keeps the repair window open) and its ring neighbors P and S.
	sizes := sys.Server().SNetSizes()
	var pre, victim, succ *Peer
	for _, tp := range sys.TPeers() {
		if sizes[tp.Addr] == 0 {
			continue
		}
		p2 := sys.Peer(tp.succ.Addr)
		p0 := sys.Peer(tp.pred.Addr)
		if p0 == nil || p2 == nil || p0.Addr == tp.Addr || p2.Addr == tp.Addr || p0.Addr == p2.Addr {
			continue
		}
		if p0.succ2.Addr == p2.Addr { // stabilization has published S to P
			pre, victim, succ = p0, tp, p2
			break
		}
	}
	if victim == nil {
		t.Fatal("no suitable P -> T -> S ring triple found")
	}

	// Store a key owned by S (its segment is (T.ID, S.ID]).
	key := ""
	for i := 0; i < 100000; i++ {
		cand := keyf("detour-%05d", i)
		if idspace.Between(victim.ID, idspace.HashKey(cand), succ.ID) {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashing into S's segment")
	}
	if r, err := sys.StoreSync(succ, key, "v"); err != nil || !r.OK {
		t.Fatalf("store: %v %+v", err, r)
	}

	// Crash T together with its entire s-network so no s-peer competes to
	// replace it and the ring stays broken for the full arbitration window.
	for _, sp := range sys.SPeers() {
		if sp.tpeer.Addr == victim.Addr {
			sp.Crash()
		}
	}
	victim.Crash()

	// Settle past failure detection but inside the repair window: P has
	// marked T suspect and still has succ == T.
	sys.Settle(2 * sys.Cfg.HelloTimeout)
	if !pre.Alive() || !succ.Alive() {
		t.Fatal("test ring neighbors died during settling")
	}
	if !pre.suspect[victim.Addr] || pre.succ.Addr != victim.Addr {
		t.Fatalf("setup drifted: P must still point at the suspected-dead T here (succ=%d suspect=%v)",
			pre.succ.Addr, pre.suspect)
	}
	r, err := sys.LookupSync(pre, key)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("lookup through suspected successor failed; succ2=%d suspect=%v",
			pre.succ2.Addr, pre.suspect)
	}

	// After full recovery everything must be consistent again.
	sys.Settle(6 * sys.Cfg.HelloTimeout)
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestRecoveryPathsUnderFaults drives the three crash-recovery protocols the
// issue names — the join triangle, t-peer replace arbitration, and subtree
// rejoin — under message drop, duplication and jitter, and checks every
// system invariant at quiescence.
func TestRecoveryPathsUnderFaults(t *testing.T) {
	faultRows := []struct {
		name string
		fc   simnet.FaultConfig
	}{
		{"drop", simnet.FaultConfig{DropRate: 0.05, Seed: 1001}},
		{"dup", simnet.FaultConfig{DupRate: 0.2, Seed: 1002}},
		{"jitter", simnet.FaultConfig{JitterMax: 50 * sim.Millisecond, Seed: 1003}},
		{"combined", simnet.FaultConfig{DropRate: 0.02, DupRate: 0.1, JitterMax: 20 * sim.Millisecond, Seed: 1004}},
	}
	scenarios := []struct {
		name string
		ps   float64
		run  func(t *testing.T, sys *System)
	}{
		{
			// Joins exercise both triangle insertion (t-peers) and tree
			// descent (s-peers); with faults on, retries must finish them.
			name: "join-triangle",
			ps:   0.3,
			run:  func(t *testing.T, sys *System) {},
		},
		{
			// Crash a t-peer that has an s-network: the s-peers compete via
			// replaceReq and the winner is promoted into the ring.
			name: "replace-arbitration",
			ps:   0.7,
			run: func(t *testing.T, sys *System) {
				sizes := sys.Server().SNetSizes()
				for _, tp := range sys.TPeers() {
					if sizes[tp.Addr] > 0 {
						tp.Crash()
						return
					}
				}
				t.Fatal("no t-peer with an s-network")
			},
		},
		{
			// Crash an interior s-peer: its children's subtrees must rejoin
			// through the t-peer.
			name: "subtree-rejoin",
			ps:   0.85,
			run: func(t *testing.T, sys *System) {
				for _, sp := range sys.SPeers() {
					if len(sp.children) > 0 {
						sp.Crash()
						return
					}
				}
				t.Fatal("no interior s-peer")
			},
		},
	}
	for _, sc := range scenarios {
		for _, row := range faultRows {
			t.Run(sc.name+"/"+row.name, func(t *testing.T) {
				sys := newTestSystem(t, 23, func(c *Config) {
					c.Ps = sc.ps
					hardenedConfig(c)
				})
				sys.Net().SetFaults(simnet.NewFaults(row.fc))
				if _, _, err := sys.BuildPopulation(PopulationOpts{N: 50}); err != nil {
					t.Fatal(err)
				}
				sys.Settle(10 * sim.Second)
				sc.run(t, sys)
				sys.Settle(8 * sys.Cfg.HelloTimeout)
				// Under sustained loss, consecutive dropped HELLOs keep
				// producing false crash detections, so some edge is always
				// mid-repair; a point-in-time check would race the healing.
				// The invariant contract is convergence: once delivery is
				// restored, every repair must complete and the system must
				// reach a fully consistent fixpoint.
				sys.Net().SetFaults(nil)
				sys.Settle(6 * sys.Cfg.HelloTimeout)
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("invariants under %s faults: %v", row.name, err)
				}
			})
		}
	}
}

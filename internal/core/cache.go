package core

// The caching scheme the paper's conclusion sketches as future work: "in the
// case that some extremely popular data are requested by a large amount of
// peers, the peer hosting the data may be overwhelmed ... The idea is to
// distribute the load among as many peers as possible so that no peer is
// overwhelmed."
//
// The three open questions the paper lists are answered as follows:
//   - which surrogates: random tree neighbors of the overloaded holder, so
//     a flood reaching the neighborhood hits a copy before the holder;
//   - which data: any item served more than CacheHotThreshold times within
//     one CacheWindow;
//   - how long: CacheTTL of idleness, refreshed whenever the copy serves.

import (
	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// cacheEntry is one surrogate copy with its idle-expiry timer.
type cacheEntry struct {
	item  Item
	timer *runtime.Timer
}

// serveStat tracks per-item serve counts inside the current hot window.
type serveStat struct {
	count       int
	windowStart runtime.Time
}

// cacheAdd pushes a surrogate copy to a neighbor.
type cacheAdd struct {
	Item Item
}

// lookupCached consults the surrogate cache, refreshing the hit's expiry.
func (p *Peer) lookupCached(did idspace.ID) (Item, bool) {
	if !p.sys.Cfg.Caching || p.cache == nil {
		return Item{}, false
	}
	e, ok := p.cache[did]
	if !ok {
		return Item{}, false
	}
	e.timer.Reset()
	p.sys.stats.CacheHits++
	return e.item, true
}

// findLocal checks the database and then the cache.
func (p *Peer) findLocal(did idspace.ID) (Item, bool) {
	if it, ok := p.data[did]; ok {
		return it, true
	}
	return p.lookupCached(did)
}

// recordServe counts a successful answer for an item and, once the item
// turns hot within the window, pushes surrogate copies out.
func (p *Peer) recordServe(it Item) {
	if !p.sys.Cfg.Caching {
		return
	}
	if p.serves == nil {
		p.serves = make(map[idspace.ID]*serveStat)
	}
	now := p.sys.rt.Now()
	st, ok := p.serves[it.DID]
	if !ok || now-st.windowStart > p.sys.Cfg.CacheWindow {
		st = &serveStat{windowStart: now}
		p.serves[it.DID] = st
	}
	st.count++
	if st.count == p.sys.Cfg.CacheHotThreshold {
		st.count = 0
		st.windowStart = now
		p.pushSurrogates(it)
	}
}

// pushSurrogates copies a hot item to random tree neighbors.
func (p *Peer) pushSurrogates(it Item) {
	nbs := p.neighbors()
	if len(nbs) == 0 {
		return
	}
	rng := p.sys.rt.Rand()
	fanout := p.sys.Cfg.CacheFanout
	if fanout > len(nbs) {
		fanout = len(nbs)
	}
	for _, idx := range rng.Perm(len(nbs))[:fanout] {
		p.sendData(nbs[idx].Addr, 1, cacheAdd{Item: it})
		p.sys.stats.CachePushes++
	}
}

// handleCacheAdd installs a surrogate copy. Peers that already hold the item
// in their database ignore the push.
func (p *Peer) handleCacheAdd(m cacheAdd) {
	if _, owned := p.data[m.Item.DID]; owned {
		return
	}
	if p.cache == nil {
		p.cache = make(map[idspace.ID]*cacheEntry)
	}
	if e, ok := p.cache[m.Item.DID]; ok {
		e.item = m.Item
		e.timer.Reset()
		return
	}
	did := m.Item.DID
	e := &cacheEntry{item: m.Item}
	e.timer = runtime.NewTimer(p.sys.rt, p.sys.Cfg.CacheTTL, func() {
		delete(p.cache, did)
	})
	e.timer.Start()
	p.cache[did] = e
}

// NumCached returns the number of surrogate copies this peer holds.
func (p *Peer) NumCached() int { return len(p.cache) }

// ServeCount reports how many times this peer answered lookups (database or
// cache) since creation; the caching experiment uses it to measure load
// concentration.
func (p *Peer) ServeCount() uint64 { return p.served }

// answer sends the item to a lookup origin and does the serve bookkeeping
// shared by every hit path (flood, routed lookup, walk, fetch).
func (p *Peer) answer(origin Ref, qid uint64, it Item, hops int) {
	p.served++
	p.sys.trace(obs.EvLookupHit, qid, p.Addr, origin.Addr, hops, "")
	p.send(origin.Addr, foundMsg{QID: qid, Item: it, Holder: p.Ref(), HolderSegLo: p.segLo, Hops: hops})
	p.recordServe(it)
}

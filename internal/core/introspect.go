package core

import (
	"sort"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// This file builds the read-only JSON view the introspection server serves at
// /ring: the t-network ring with each root's s-tree summarized, plus
// system-wide totals. Like HealthScore, the summary must be computed under
// the runtime's execution guarantee (Runtime.Do); the returned value is a
// deep copy, safe to marshal from any goroutine afterwards.

// RefView is a peer reference in the introspection JSON.
type RefView struct {
	Addr runtime.Addr `json:"addr"`
	ID   idspace.ID   `json:"id"`
}

func refView(r Ref) *RefView {
	if !r.Valid() {
		return nil
	}
	return &RefView{Addr: r.Addr, ID: r.ID}
}

// TPeerView summarizes one live t-peer: its ring pointers, finger table, and
// the s-tree rooted at it.
type TPeerView struct {
	Addr runtime.Addr `json:"addr"`
	ID   idspace.ID   `json:"id"`

	Pred  *RefView `json:"pred,omitempty"`
	Succ  *RefView `json:"succ,omitempty"`
	Succ2 *RefView `json:"succ2,omitempty"`

	// Fingers lists the distinct valid finger targets in slot order.
	Fingers []RefView `json:"fingers,omitempty"`
	// Suspects lists neighbors this root currently suspects dead.
	Suspects []runtime.Addr `json:"suspects,omitempty"`

	// Children are the direct s-tree children; Subtree is the total number of
	// peers in this root's s-network per the latest aggregated reports.
	Children []RefView `json:"children,omitempty"`
	Subtree  int       `json:"subtree"`
	// Items is the number of data items stored at the root itself.
	Items int `json:"items"`
}

// RingView is the full introspection snapshot served at /ring.
type RingView struct {
	At runtime.Time `json:"t_us"`

	LivePeers  int `json:"live_peers"`
	LiveTPeers int `json:"live_tpeers"`
	LiveSPeers int `json:"live_speers"`
	Items      int `json:"items"`
	PendingOps int `json:"pending_ops"`

	// TreeDepthMax is the deepest live s-peer's distance to its root.
	TreeDepthMax int `json:"stree_depth_max"`

	// Ring lists the live t-peers in id order (ring order).
	Ring []TPeerView `json:"ring"`
}

// RingSummary builds the /ring snapshot. Read-only; must run under the
// runtime's execution guarantee.
func (s *System) RingSummary() RingView {
	v := RingView{At: s.rt.Now()}

	for _, p := range s.peers {
		if p == nil || !p.alive {
			continue
		}
		v.LivePeers++
		v.Items += len(p.data)
		v.PendingOps += len(p.pending)
		if p.Role == SPeer {
			v.LiveSPeers++
			if d := s.treeDepth(p); d > v.TreeDepthMax {
				v.TreeDepthMax = d
			}
			continue
		}
		v.LiveTPeers++

		tv := TPeerView{
			Addr:  p.Addr,
			ID:    p.ID,
			Pred:  refView(p.pred),
			Succ:  refView(p.succ),
			Succ2: refView(p.succ2),
			Items: len(p.data),
		}
		seen := map[runtime.Addr]bool{}
		for _, f := range p.finger {
			if f.Valid() && !seen[f.Addr] {
				seen[f.Addr] = true
				tv.Fingers = append(tv.Fingers, RefView{Addr: f.Addr, ID: f.ID})
			}
		}
		for a := range p.suspect {
			tv.Suspects = append(tv.Suspects, a)
		}
		sortAddrs(tv.Suspects)
		tv.Subtree = 1
		for _, c := range p.children {
			tv.Children = append(tv.Children, RefView{Addr: c.Ref.Addr, ID: c.Ref.ID})
			tv.Subtree += c.Subtree
		}
		v.Ring = append(v.Ring, tv)
	}

	sortTPeerViews(v.Ring)
	return v
}

// treeDepth walks an s-peer's connect-point chain to its root, bounded by the
// peer count so a transiently cyclic chain cannot hang the walk.
func (s *System) treeDepth(p *Peer) int {
	depth := 0
	cur := p
	for cur.Role == SPeer {
		next := s.peerAt(cur.cp.Addr)
		if next == nil || !next.alive {
			break
		}
		cur = next
		depth++
		if depth > s.numPeers {
			break
		}
	}
	return depth
}

func sortAddrs(a []runtime.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func sortTPeerViews(v []TPeerView) {
	sort.Slice(v, func(i, j int) bool { return v[i].ID < v[j].ID })
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// This file implements k-replication (Cfg.ReplicationK > 1): every stored
// item is kept on its owning t-peer plus up to k−1 live ring successors, so
// a crash cannot lose the only copy.
//
// Placement rule: the owning t-peer keeps an authoritative copy of every
// in-segment item in p.owned (even under spread placement, where the byte
// payload may physically live on an s-peer below it; s-peers report their
// in-segment items upward every hello tick via ownerAnnounce). The owner
// pushes its owned set down the successor chain as replicaPut batches with
// TTL = k−1; each successor keeps the batch in p.reps and forwards with
// TTL−1. A push that wraps all the way back to the owner proves the ring is
// smaller than k, which counts as fully replicated (min(k, live)).
//
// Repair triggers:
//   - every repPushEvery hello ticks the owner re-pushes (periodic anti-entropy);
//   - a changed owned set, a changed successor, or a detected deficit
//     (tracked rounds count distinct ackers) re-pushes immediately;
//   - the per-tick rehome sweep forwards replicas whose owner is suspected
//     or silent past repExpiry back to the owning segment, where the new
//     owner installs them (churn re-replication);
//   - lookups that route toward a suspected owner serve the local replica
//     and re-install the item on the current owner (read-repair).
//
// All of this is inert at k = 1: no state, no messages, no timers.

// repEntry is one replica held for another owner.
type repEntry struct {
	it    Item
	owner Ref
	seen  runtime.Time // last refresh, for orphan expiry
}

// repPushEvery is the owner's periodic re-push interval in hello ticks.
const repPushEvery = 3

// repExpiry returns how long a replica may go unrefreshed before the rehome
// sweep treats it as orphaned and forwards it back to the owning segment.
func (p *Peer) repExpiry() runtime.Time {
	return 10 * p.sys.Cfg.HelloEvery
}

// replicationOn reports whether this peer participates in replication.
func (p *Peer) replicationOn() bool { return p.sys.Cfg.ReplicationK > 1 }

// ownedAdd records an item in the owner's authoritative copy and marks the
// set dirty for the next push. Value-compare keeps the periodic data fold
// from re-dirtying an unchanged set every tick.
func (p *Peer) ownedAdd(it Item) {
	if !p.replicationOn() || p.Role != TPeer {
		return
	}
	if cur, ok := p.owned[it.DID]; ok && cur == it {
		return
	}
	if p.owned == nil {
		p.owned = make(map[idspace.ID]Item)
	}
	p.owned[it.DID] = it
	p.repDirty = true
}

// replicaSucc returns the next hop of the replica chain: the ring successor,
// detouring via succ2 when the successor is suspected dead (same rule as
// segment routing). NilRef when there is nowhere to push.
func (p *Peer) replicaSucc() Ref {
	next := p.succ
	if len(p.suspect) != 0 && p.suspect[next.Addr] &&
		p.succ2.Valid() && p.succ2.Addr != p.Addr && !p.suspect[p.succ2.Addr] {
		next = p.succ2
	}
	if !next.Valid() || next.Addr == p.Addr {
		return NilRef
	}
	return next
}

// eagerReplicate pushes a single just-stored item down the successor chain
// immediately (Round 0: untracked), so a crash right after the store ack
// still leaves k copies. The periodic tracked push repairs any loss.
func (p *Peer) eagerReplicate(it Item) {
	if !p.replicationOn() || p.Role != TPeer {
		return
	}
	succ := p.replicaSucc()
	if !succ.Valid() {
		return
	}
	p.sys.stats.ReplicasPushed++
	p.sendData(succ.Addr, 1, replicaPut{
		Owner: p.Ref(),
		TTL:   p.sys.Cfg.ReplicationK - 1,
		Items: []Item{it},
	})
}

// syncReplicas is the owner-side per-hello-tick replication maintenance:
// fold locally stored in-segment data into the owned set, evaluate the
// previous tracked round's ack count, and push the owned set down the
// successor chain when anything changed, a deficit is suspected, or the
// periodic interval elapsed.
func (p *Peer) syncReplicas() {
	// Fold in-segment data into owned: covers promotion, crash takeover and
	// direct t-peer placement without extra hooks (value-compare in ownedAdd
	// keeps this from perpetually re-dirtying).
	for _, it := range p.data {
		if p.inLocalSegment(p.segmentID(it.Key)) {
			p.ownedAdd(it)
		}
	}
	// Evaluate the previous round: a wrap (our own push came back around the
	// ring) means the ring is smaller than k and every live t-peer holds the
	// set; otherwise count distinct ackers against k−1.
	if p.repRound != 0 {
		if p.repWrapped {
			p.repDeficit = 0
		} else {
			deficit := p.sys.Cfg.ReplicationK - 1 - len(p.repAcks)
			if deficit < 0 {
				deficit = 0
			}
			p.repDeficit = deficit
		}
		p.repRound = 0
		p.repWrapped = false
		for a := range p.repAcks {
			delete(p.repAcks, a)
		}
	}
	succ := p.replicaSucc()
	if !succ.Valid() || len(p.owned) == 0 {
		p.repDeficit = 0
		p.repSucc = runtime.None
		return
	}
	succChanged := succ.Addr != p.repSucc
	p.repSucc = succ.Addr
	p.repTicks++
	if !p.repDirty && p.repDeficit == 0 && !succChanged && p.repTicks < repPushEvery {
		return
	}
	p.repTicks = 0
	p.repDirty = false
	round := p.sys.newTag()
	p.repRound = round
	if p.repAcks == nil {
		p.repAcks = make(map[runtime.Addr]bool)
	}
	items := make([]Item, 0, len(p.owned))
	for _, it := range p.owned {
		items = append(items, it)
	}
	sortItemsByDID(items)
	p.sys.stats.ReplicasPushed += uint64(len(items))
	p.sendData(succ.Addr, len(items), replicaPut{
		Owner: p.Ref(),
		Round: round,
		TTL:   p.sys.Cfg.ReplicationK - 1,
		Items: items,
	})
}

// announceOwned is the s-peer-side per-hello-tick half of the placement
// rule: report in-segment items physically stored here (spread placement)
// to the owning t-peer so its authoritative copy covers them.
func (p *Peer) announceOwned() {
	if len(p.data) == 0 || !p.tpeer.Valid() || p.tpeer.Addr == p.Addr {
		return
	}
	var items []Item
	for _, it := range p.data {
		if p.inLocalSegment(p.segmentID(it.Key)) {
			items = append(items, it)
		}
	}
	if len(items) == 0 {
		return
	}
	sortItemsByDID(items)
	p.sendData(p.tpeer.Addr, len(items), ownerAnnounce{Items: items})
}

// handleReplicaPut installs a replica batch and forwards it one hop further
// down the successor chain.
func (p *Peer) handleReplicaPut(from runtime.Addr, m replicaPut) {
	if !p.replicationOn() {
		return
	}
	if m.Owner.Addr == p.Addr {
		// Our own push wrapped around the ring: fewer than k t-peers are
		// live, so every one of them holds the set — no deficit.
		if m.Round != 0 && m.Round == p.repRound {
			p.repWrapped = true
		}
		return
	}
	if p.Role != TPeer {
		return
	}
	now := p.sys.rt.Now()
	for _, it := range m.Items {
		if p.inLocalSegment(p.segmentID(it.Key)) {
			// The pusher thinks it owns a segment that is now ours (its
			// pred pointer lags, or the owner crashed and we took over):
			// install authoritatively instead of as a replica.
			if _, ok := p.data[it.DID]; !ok {
				p.storeLocal(it)
			}
			p.ownedAdd(it)
			continue
		}
		if p.reps == nil {
			p.reps = make(map[idspace.ID]repEntry)
		}
		p.reps[it.DID] = repEntry{it: it, owner: m.Owner, seen: now}
	}
	if m.Round != 0 {
		p.send(m.Owner.Addr, replicaAck{Round: m.Round})
	}
	if m.TTL > 1 {
		// Forward even when the next hop is the owner: the wrap delivery is
		// what tells a small ring it is fully replicated. TTL bounds the
		// chain either way.
		if succ := p.replicaSucc(); succ.Valid() {
			p.sendData(succ.Addr, len(m.Items), replicaPut{
				Owner: m.Owner,
				Round: m.Round,
				TTL:   m.TTL - 1,
				Items: m.Items,
			})
		}
	}
}

// handleReplicaAck counts one distinct acker for the owner's in-flight
// tracked round.
func (p *Peer) handleReplicaAck(from runtime.Addr, m replicaAck) {
	if m.Round == 0 || m.Round != p.repRound {
		return
	}
	if p.repAcks == nil {
		p.repAcks = make(map[runtime.Addr]bool)
	}
	p.repAcks[from] = true
}

// handleReplicaDrop retires replicas of deleted items along the chain.
func (p *Peer) handleReplicaDrop(from runtime.Addr, m replicaDrop) {
	if !p.replicationOn() || m.Owner.Addr == p.Addr {
		return
	}
	for _, did := range m.DIDs {
		delete(p.reps, did)
	}
	if m.TTL > 1 {
		if succ := p.replicaSucc(); succ.Valid() {
			p.send(succ.Addr, replicaDrop{Owner: m.Owner, TTL: m.TTL - 1, DIDs: m.DIDs})
		}
	}
}

// handleOwnerAnnounce folds an s-peer's in-segment holdings into the owner's
// authoritative copy.
func (p *Peer) handleOwnerAnnounce(m ownerAnnounce) {
	if !p.replicationOn() || p.Role != TPeer {
		return
	}
	for _, it := range m.Items {
		if p.inLocalSegment(p.segmentID(it.Key)) {
			p.ownedAdd(it)
		}
	}
}

// replicaFallback serves a lookup from the local replica set when routing
// toward the owner would forward into a suspected crash, re-installing the
// item on the current owner (read-repair) so the next lookup routes
// normally. Returns false when normal routing should proceed.
func (p *Peer) replicaFallback(did, sid idspace.ID) (Item, bool) {
	if !p.replicationOn() || p.Role != TPeer || len(p.reps) == 0 {
		return Item{}, false
	}
	e, ok := p.reps[did]
	if !ok {
		return Item{}, false
	}
	suspected := func(a runtime.Addr) bool {
		return len(p.suspect) != 0 && p.suspect[a]
	}
	next := p.nextHopToward(sid)
	if !suspected(e.owner.Addr) && next.Valid() && !suspected(next.Addr) {
		return Item{}, false // the route is believed healthy; let it run
	}
	p.sys.stats.ReplicaServes++
	p.sys.stats.ReadRepairs++
	// Tag 0: the repair's storeAck hits finishOp(0), a no-op. The forward
	// detours around the suspected hop, reaching the segment's new owner.
	p.forwardTowardSegment(sid, storeReq{Item: e.it, SID: sid, Origin: p.Ref(), Hops: 1}, runtime.None)
	return e.it, true
}

// sweepReplicas extends the per-tick rehome sweep to replication state:
// owned entries whose segment moved away are dropped (and forwarded with the
// rest of the batch when absent from data), and held replicas are promoted
// (we became the owner), or forwarded home when their owner is suspected
// dead or silent past expiry.
func (p *Peer) sweepReplicas(moved []Item) []Item {
	if !p.replicationOn() || (len(p.owned) == 0 && len(p.reps) == 0) {
		return moved
	}
	var foreign []Item
	for _, it := range p.owned {
		if !p.inLocalSegment(p.segmentID(it.Key)) {
			foreign = append(foreign, it)
		}
	}
	sortItemsByDID(foreign)
	for _, it := range foreign {
		delete(p.owned, it.DID)
		p.repDirty = true
		moved = append(moved, it)
	}
	now := p.sys.rt.Now()
	var promote, orphaned []Item
	for _, e := range p.reps {
		switch {
		case p.Role == TPeer && p.inLocalSegment(p.segmentID(e.it.Key)):
			promote = append(promote, e.it)
		case now-e.seen >= p.repExpiry(),
			len(p.suspect) != 0 && p.suspect[e.owner.Addr]:
			// Forward home immediately on owner suspicion instead of waiting
			// out the expiry: shortens the unavailability window after an
			// owner crash. A false positive is an idempotent re-install.
			orphaned = append(orphaned, e.it)
		}
	}
	sortItemsByDID(promote)
	sortItemsByDID(orphaned)
	for _, it := range promote {
		delete(p.reps, it.DID)
		if _, ok := p.data[it.DID]; !ok {
			p.storeLocal(it)
		}
		p.ownedAdd(it)
		p.sys.stats.ReplicaPromotions++
	}
	for _, it := range orphaned {
		delete(p.reps, it.DID)
		moved = append(moved, it)
	}
	return moved
}

// transferOwned hands the in-range slice of the owned set to a joining
// predecessor along with the data items handleLoadTransfer already collected
// (spread placement can leave the owner holding an authoritative copy whose
// bytes live on an s-peer, and the joiner must become able to serve it).
func (p *Peer) transferOwned(m loadTransferReq, moved []Item) []Item {
	if !p.replicationOn() || len(p.owned) == 0 || m.Lo == m.Hi {
		return moved
	}
	seen := make(map[idspace.ID]bool, len(moved))
	for _, it := range moved {
		seen[it.DID] = true
	}
	var extra []Item
	for did, it := range p.owned {
		if idspace.Between(m.Lo, did, m.Hi) {
			delete(p.owned, did)
			p.repDirty = true
			if !seen[did] {
				extra = append(extra, it)
			}
		}
	}
	sortItemsByDID(extra)
	return append(moved, extra...)
}

// appendOwnedExtra adds owned entries absent from the data map to a leave
// dump, so authoritative copies of spread items survive a graceful leave.
// Callers re-sort the combined batch.
func (p *Peer) appendOwnedExtra(items []Item) []Item {
	if !p.replicationOn() || len(p.owned) == 0 {
		return items
	}
	seen := make(map[idspace.ID]bool, len(items))
	for _, it := range items {
		seen[it.DID] = true
	}
	var extra []Item
	for did, it := range p.owned {
		if !seen[did] {
			extra = append(extra, it)
		}
	}
	sortItemsByDID(extra)
	return append(items, extra...)
}

// --- delete -----------------------------------------------------------------

// Delete removes a key from the system: the owning t-peer deletes its copy,
// floods the removal through its s-network (spread and cached copies die
// too) and retires replicas down the successor chain. done may be nil.
func (p *Peer) Delete(key string, done func(OpResult)) {
	o, qid := p.newOp("delete", key, done)
	if p.Role == TPeer && p.inLocalSegment(o.sid) {
		existed := p.ownerDelete(o.did)
		r := OpResult{OK: true, Hops: 0, Holder: p.Ref()}
		if existed {
			r.Value = "deleted"
		}
		p.finishOp(qid, r)
		return
	}
	req := deleteReq{Key: key, DID: o.did, SID: o.sid, Origin: p.Ref(), Tag: qid, Hops: 1}
	p.forwardTowardSegment(req.SID, req, runtime.None)
}

// ownerDelete removes every local trace of an item at its owning t-peer and
// propagates the removal to spread copies (tree flood) and replicas
// (successor chain). Reports whether any local copy existed.
//
// Known limitation (documented in DESIGN.md): there are no tombstones, so a
// replica stranded outside the chain (e.g. on a partitioned peer) can
// resurrect a deleted item via orphan forwarding.
func (p *Peer) ownerDelete(did idspace.ID) bool {
	_, existed := p.data[did]
	delete(p.data, did)
	if _, ok := p.owned[did]; ok {
		delete(p.owned, did)
		p.repDirty = true
		existed = true
	}
	delete(p.reps, did)
	if p.sys.Cfg.TrackerMode && p.index != nil {
		if _, ok := p.index[did]; ok {
			delete(p.index, did)
			existed = true
		}
	}
	if e, ok := p.cache[did]; ok {
		e.timer.Stop()
		delete(p.cache, did)
	}
	p.dropHint(did)
	if len(p.children) > 0 {
		var flood any = deleteFlood{DID: did, TTL: 1 << 20}
		for i := range p.children {
			p.send(p.children[i].Ref.Addr, flood)
		}
	}
	// Requester-side surrogate copies (handleFound with Caching on) live in
	// other s-networks that this tree flood cannot reach; walk the ring so
	// every t-peer purges and re-floods its own tree. Never sent with
	// Caching off — no copy can exist outside the owner's segment then.
	if p.sys.Cfg.Caching && p.succ.Valid() && p.succ.Addr != p.Addr {
		p.send(p.succ.Addr, deleteRing{DID: did, Origin: p.Ref(), TTL: 1 << 20})
	}
	if p.replicationOn() {
		if succ := p.replicaSucc(); succ.Valid() {
			p.send(succ.Addr, replicaDrop{
				Owner: p.Ref(),
				TTL:   p.sys.Cfg.ReplicationK - 1,
				DIDs:  []idspace.ID{did},
			})
		}
	}
	return existed
}

// handleDeleteReq advances a deletion toward the owning segment, mirroring
// handleStoreReq.
func (p *Peer) handleDeleteReq(from runtime.Addr, m deleteReq) {
	if m.Hops > routeHopLimit {
		return // looping route; the op timer fails the delete
	}
	p.maybeAck(from)
	if !p.inLocalSegment(m.SID) || p.Role == SPeer {
		m.Hops++
		p.forwardTowardSegment(m.SID, m, from)
		return
	}
	existed := p.ownerDelete(m.DID)
	p.send(m.Origin.Addr, deleteAck{Tag: m.Tag, Existed: existed, Hops: m.Hops})
}

// handleDeleteAck closes the delete operation at its origin.
func (p *Peer) handleDeleteAck(m deleteAck) {
	r := OpResult{OK: true, Hops: m.Hops}
	if m.Existed {
		r.Value = "deleted"
	}
	p.finishOp(m.Tag, r)
}

// handleDeleteFlood removes stored and cached copies down an s-network tree.
// Path-cache hints for the item die with it: the route they name leads to a
// holder that no longer has anything to serve.
func (p *Peer) handleDeleteFlood(from runtime.Addr, m deleteFlood) {
	if _, ok := p.data[m.DID]; ok {
		delete(p.data, m.DID)
		if p.sys.Cfg.TrackerMode && p.Role == SPeer && p.tpeer.Valid() {
			p.send(p.tpeer.Addr, indexRemove{DID: m.DID, Holder: p.Ref()})
		}
	}
	if e, ok := p.cache[m.DID]; ok {
		e.timer.Stop()
		delete(p.cache, m.DID)
	}
	p.dropHint(m.DID)
	if m.TTL <= 1 {
		return
	}
	var flood any = deleteFlood{DID: m.DID, TTL: m.TTL - 1}
	for i := range p.children {
		if a := p.children[i].Ref.Addr; a != from {
			p.send(a, flood)
		}
	}
}

// handleDeleteRing purges one t-peer's surrogate cache on the ring-wide
// delete walk and floods the purge down its own s-network tree, then passes
// the walk to its successor until it closes back at the origin.
func (p *Peer) handleDeleteRing(m deleteRing) {
	if p.Addr == m.Origin.Addr || m.TTL <= 1 {
		return
	}
	if e, ok := p.cache[m.DID]; ok {
		e.timer.Stop()
		delete(p.cache, m.DID)
	}
	p.dropHint(m.DID)
	if len(p.children) > 0 {
		var flood any = deleteFlood{DID: m.DID, TTL: 1 << 20}
		for i := range p.children {
			p.send(p.children[i].Ref.Addr, flood)
		}
	}
	if p.Role == TPeer && p.succ.Valid() && p.succ.Addr != p.Addr && p.succ.Addr != m.Origin.Addr {
		m.TTL--
		p.send(p.succ.Addr, m)
	}
}

// --- invariant ---------------------------------------------------------------

// CheckReplication verifies the replication invariant at quiescence: every
// item present in any live peer's database has at least min(k, live t-peers)
// distinct holders across data, owned and replica sets. Partial (multi-
// process) views skip the check — no single process sees every holder.
func (s *System) CheckReplication() error {
	k := s.Cfg.ReplicationK
	if k <= 1 || s.partial {
		return nil
	}
	tps := s.TPeers()
	if len(tps) == 0 {
		return nil
	}
	want := k
	if len(tps) < want {
		want = len(tps)
	}
	holders := make(map[idspace.ID]map[runtime.Addr]bool)
	addHolder := func(did idspace.ID, a runtime.Addr) {
		m := holders[did]
		if m == nil {
			m = make(map[runtime.Addr]bool)
			holders[did] = m
		}
		m[a] = true
	}
	live := make(map[idspace.ID]bool)
	for _, p := range s.Peers() {
		for did := range p.data {
			live[did] = true
			addHolder(did, p.Addr)
		}
		for did := range p.owned {
			addHolder(did, p.Addr)
		}
		for did := range p.reps {
			addHolder(did, p.Addr)
		}
	}
	dids := make([]idspace.ID, 0, len(live))
	for did := range live {
		dids = append(dids, did)
	}
	sort.Slice(dids, func(i, j int) bool { return dids[i] < dids[j] })
	for _, did := range dids {
		if n := len(holders[did]); n < want {
			return fmt.Errorf("core: item %x has %d replicas, want >= %d (k=%d, %d t-peers)",
				did, n, want, k, len(tps))
		}
	}
	return nil
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// System owns one hybrid peer-to-peer deployment: the bootstrap server, the
// t-network ring and every attached s-network, all running over a shared
// runtime. The runtime may be the deterministic discrete-event implementation
// (internal/simnet) or the live goroutine implementation
// (internal/runtime/live); the protocol code is identical under both.
type System struct {
	Cfg Config

	rt         runtime.Runtime
	serverAddr runtime.Addr
	// route is Cfg.Route resolved once at construction (nil -> FingerWalk)
	// so the routing hot path loads one interface word instead of
	// re-checking the config every hop.
	route RouteStrategy

	server *Server
	// partial marks a system that hosts only a slice of the deployment's
	// peers (a worker process on the socket runtime): the dense peer table
	// is a partial view, so checks that need the full membership either
	// consult the runtime's Attached (ring/tree liveness) or are skipped
	// (global data ownership). See HealthScore.
	partial bool
	// peers is the dense peer table, indexed by Addr.Index() (both runtimes
	// allocate addresses sequentially — see runtime.Addr.Index). A nil slot
	// is a departed or never-used address. Replacing the former map keys
	// every peer lookup to one bounds-checked load and makes iteration
	// order the address order for free.
	peers    []*Peer
	numPeers int // live peers (maintained by Join and Peer.stop)

	// nextQID numbers lookups/stores globally so contact counts can be
	// attributed per query.
	nextQID uint64
	// contacts counts peers contacted per in-flight query (connum).
	contacts map[uint64]int
	// opFree recycles op records: every client operation allocates one, and
	// at sweep scale the churn of short-lived ops dominated the heap
	// profile. Release happens only in finishOp, after the timeout timer is
	// unscheduled, so no path can touch a recycled record.
	opFree []*op
	// coordCache memoizes landmarkCoord per host: the landmark set is fixed
	// for the server's lifetime, so the coordinate is a pure function of
	// the host index.
	coordCache map[int]string

	stats  SystemStats
	tracer *obs.Tracer
	// met caches registry metric pointers for the protocol hot paths; nil
	// (the default) disables recording. See SetMetrics in obsmetrics.go.
	met *sysMetrics

	// traceHook, when non-nil, receives protocol trace lines (tests only).
	// Per-System rather than package-global so concurrent systems (parallel
	// sweep workers, the live runtime) never race on it.
	traceHook func(format string, args ...any)
}

// SetTraceHook installs (or clears, with nil) the protocol trace sink.
func (s *System) SetTraceHook(fn func(format string, args ...any)) { s.traceHook = fn }

func (s *System) tracef(format string, args ...any) {
	if s.traceHook != nil {
		s.traceHook(format, args...)
	}
}

// SystemStats aggregates protocol-level counters for a run.
type SystemStats struct {
	TJoins, SJoins     int
	TLeaves, SLeaves   int
	Crashes            int
	Promotions         int // s-peer -> t-peer substitutions
	Rejoins            int // s-peers re-attaching after a parent loss
	FloodsSent         uint64
	RingForwards       uint64
	BypassUses         uint64
	IDConflicts        int
	HellosSent         uint64
	AcksSent           uint64
	AcksSuppressed     uint64
	WatchdogExpiries   uint64
	QueuedJoinRequests int
	CachePushes        uint64
	CacheHits          uint64
	WalksSent          uint64
	SearchesSent       uint64
	ItemsRehomed       uint64 // foreign items re-routed to their owning segment
	ReplicasPushed     uint64 // replica copies sent down the successor chain
	ReplicaServes      uint64 // lookups answered from an owned or replica copy
	ReadRepairs        uint64 // replica serves that re-installed the item on its owner
	ReplicaPromotions  uint64 // held replicas promoted to owned after a takeover
	ProbesSent         uint64 // α-parallel ring probes fanned out (LookupAlpha > 1)
	PathHintUses       uint64 // lookups forwarded straight at a path-cache hint
	PathHintDrops      uint64 // stale path-cache hints invalidated by a bounce
}

// NewSystem creates an empty hybrid system on the given runtime. The server
// is attached at the runtime's bootstrap address on the given physical host.
func NewSystem(rt runtime.Runtime, cfg Config, serverHost int) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		Cfg:        cfg,
		rt:         rt,
		serverAddr: rt.ServerAddr(),
		route:      cfg.Route,
		contacts:   make(map[uint64]int),
	}
	s.server = newServer(s, serverHost)
	return s, nil
}

// NewPeerSystem creates a system that hosts peers but not the bootstrap
// server: a worker process in a multi-process deployment on the socket
// runtime. Peers joined here talk to the cluster's real server at the
// runtime's bootstrap address, exactly as they would talk to a local one —
// the protocol is message-pure, so it cannot tell the difference. The
// system is marked partial: structural checks fall back to the runtime's
// view of remote liveness (see HealthScore).
func NewPeerSystem(rt runtime.Runtime, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		Cfg:        cfg,
		rt:         rt,
		serverAddr: rt.ServerAddr(),
		route:      cfg.Route,
		contacts:   make(map[uint64]int),
		partial:    true,
	}, nil
}

// Server returns the bootstrap server, or nil on a peer-only system.
func (s *System) Server() *Server { return s.server }

// Partial reports whether this system hosts only a slice of the deployment
// (a worker process in a multi-process cluster).
func (s *System) Partial() bool { return s.partial }

// MarkPartial marks the system as hosting only a slice of the deployment.
// The bootstrap process of a multi-process cluster needs this: it owns the
// server (so it is built with NewSystem), but other processes' peers join
// the same ring, so its peer table is still a partial view.
func (s *System) MarkPartial() { s.partial = true }

// Runtime returns the runtime the system executes on.
func (s *System) Runtime() runtime.Runtime { return s.rt }

// ServerAddr returns the bootstrap server's address on this system's runtime.
func (s *System) ServerAddr() runtime.Addr { return s.serverAddr }

// SetTracer attaches a structured trace sink for peer lifecycle and lookup
// events. A nil tracer (the default) disables tracing; every emission is
// guarded by a single pointer check.
func (s *System) SetTracer(t *obs.Tracer) { s.tracer = t }

// trace emits one structured trace event when a tracer is attached.
func (s *System) trace(kind obs.Kind, qid uint64, from, to runtime.Addr, hops int, note string) {
	if s.tracer.Enabled() {
		s.tracer.Emit(kind, s.rt.Now(), qid, int(from), int(to), hops, note)
	}
}

// Stats returns a copy of the protocol counters.
func (s *System) Stats() SystemStats { return s.stats }

// Peer returns the peer at the given address, or nil.
func (s *System) Peer(a runtime.Addr) *Peer { return s.peerAt(a) }

// peerAt resolves an address against the dense peer table.
func (s *System) peerAt(a runtime.Addr) *Peer {
	if i := a.Index(); i >= 0 && i < len(s.peers) {
		return s.peers[i]
	}
	return nil
}

// setPeer registers a peer in the dense table, growing it as needed.
func (s *System) setPeer(p *Peer) {
	i := p.Addr.Index()
	for i >= len(s.peers) {
		s.peers = append(s.peers, nil)
	}
	s.peers[i] = p
	s.numPeers++
}

// removePeer clears a departed peer's table slot.
func (s *System) removePeer(a runtime.Addr) {
	if i := a.Index(); i >= 0 && i < len(s.peers) && s.peers[i] != nil {
		s.peers[i] = nil
		s.numPeers--
	}
	// Every departure — graceful or crash — arms the server's next
	// dead-registry sweep; see Server.sweepDead.
	if s.server != nil {
		s.server.detachDirty = true
	}
}

// Peers returns all live peers sorted by address. The dense table is already
// in address order, so this is a filtered copy.
func (s *System) Peers() []*Peer {
	out := make([]*Peer, 0, s.numPeers)
	for _, p := range s.peers {
		if p != nil && p.alive {
			out = append(out, p)
		}
	}
	return out
}

// TPeers returns all live t-peers sorted by ring id.
func (s *System) TPeers() []*Peer {
	var out []*Peer
	for _, p := range s.peers {
		if p != nil && p.alive && p.Role == TPeer {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// SPeers returns all live s-peers sorted by address.
func (s *System) SPeers() []*Peer {
	var out []*Peer
	for _, p := range s.peers {
		if p != nil && p.alive && p.Role == SPeer {
			out = append(out, p)
		}
	}
	return out
}

// NumPeers returns the live peer count.
func (s *System) NumPeers() int { return s.numPeers }

// JoinStats reports how a join went.
type JoinStats struct {
	Role Role
	// Hops is the number of overlay hops the join request traveled: ring
	// forwarding hops for t-peers, tree walk hops for s-peers. This is
	// the quantity Eq. (1) of the paper models.
	Hops int
	// Latency is the time from contacting the server to being inserted.
	Latency runtime.Time
}

// JoinOpts describes a joining peer.
type JoinOpts struct {
	// Host is the physical topology node the peer lives on.
	Host int
	// Capacity is the relative access-link capacity (>= 1).
	Capacity float64
	// Interest is the peer's content category (interest-based mode).
	Interest int
	// ForceRole pins the role instead of letting the server decide.
	ForceRole *Role
}

// Join starts the join protocol for a new peer. The returned peer is live
// immediately as a network endpoint but only becomes a functional member
// when done fires. done may be nil.
func (s *System) Join(opts JoinOpts, done func(*Peer, JoinStats)) *Peer {
	if opts.Capacity < 1 {
		opts.Capacity = 1
	}
	// The data and pending maps are allocated lazily on first write and the
	// child/watchdog tables are slices, so an idle peer costs one struct —
	// the difference between 10k peers and 1M peers fitting in memory.
	p := &Peer{
		Addr:     s.rt.NewAddr(),
		Host:     opts.Host,
		Capacity: opts.Capacity,
		Interest: opts.Interest,
		sys:      s,
		alive:    true,

		pred:  NilRef,
		succ:  NilRef,
		succ2: NilRef,
		tpeer: NilRef,
		cp:    NilRef,
	}
	s.setPeer(p)
	s.rt.Attach(p.Addr, runtime.Endpoint{Host: opts.Host, Capacity: opts.Capacity}, runtime.HandlerFunc(p.recv))

	p.joinStart = s.rt.Now()
	p.joinDone = done
	req := serverJoinReq{
		Capacity:  opts.Capacity,
		Interest:  opts.Interest,
		Host:      opts.Host,
		ForceRole: -1,
	}
	if opts.ForceRole != nil {
		req.ForceRole = int8(*opts.ForceRole)
	}
	if s.Cfg.TopologyAware {
		req.Coord = s.landmarkCoord(opts.Host)
	}
	// Keep the request and arm the retry timer before the first send: with
	// faults injected even this initial message can be lost, and without a
	// pending response there is no watchdog to notice.
	p.joinReq = req
	p.armJoinTimer()
	p.send(s.serverAddr, req)
	return p
}

// landmarkCoord computes the peer's landmark bin: the landmark indices
// ordered by physical distance. In a deployment the peer would probe each
// landmark; the simulated probe returns exactly the shortest-path latency,
// so we read it from the topology directly.
func (s *System) landmarkCoord(host int) string {
	if s.server == nil {
		// Peer-only system: the landmark set lives with the real server in
		// another process, and topology awareness is a simulation feature.
		return ""
	}
	if c, ok := s.coordCache[host]; ok {
		return c
	}
	lms := s.server.landmarks
	type dl struct {
		idx int
		d   int64
	}
	pl := s.rt.Placement()
	ds := make([]dl, len(lms))
	for i, lm := range lms {
		var lat int64
		if pl == nil {
			// No physical model: every landmark is equidistant and the
			// coordinate degenerates to landmark index order.
			lat = 0
		} else if l, err := pl.HostLatency(host, lm); err == nil {
			lat = l
		} else {
			lat = 1 << 60
		}
		ds[i] = dl{idx: i, d: lat}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].idx < ds[j].idx
	})
	coord := make([]byte, 0, len(ds)*3)
	for _, e := range ds {
		coord = append(coord, byte('A'+e.idx/26), byte('A'+e.idx%26))
	}
	if s.coordCache == nil {
		s.coordCache = make(map[int]string)
	}
	s.coordCache[host] = string(coord)
	return s.coordCache[host]
}

// getOp pops a recycled op record or allocates a fresh one.
func (s *System) getOp() *op {
	if n := len(s.opFree); n > 0 {
		o := s.opFree[n-1]
		s.opFree = s.opFree[:n-1]
		return o
	}
	return new(op)
}

// putOp zeroes a finished op and returns it to the free list. Callers must
// guarantee no timer or handler still references the record; finishOp is the
// single release site and unschedules the op's timeout first.
func (s *System) putOp(o *op) {
	*o = op{}
	s.opFree = append(s.opFree, o)
}

// newQID allocates a globally unique query id and its contact counter.
func (s *System) newQID() uint64 {
	s.nextQID++
	s.contacts[s.nextQID] = 0
	return s.nextQID
}

// newTag allocates a globally unique request tag without contact tracking
// (internal requests such as finger refresh). Sharing the qid counter keeps
// every per-peer pending map collision-free.
func (s *System) newTag() uint64 {
	s.nextQID++
	return s.nextQID
}

// contact records that a peer was contacted on behalf of a query.
func (s *System) contact(qid uint64) {
	if _, ok := s.contacts[qid]; ok {
		s.contacts[qid]++
	}
}

// takeContacts returns and clears the contact count for a finished query.
func (s *System) takeContacts(qid uint64) int {
	n := s.contacts[qid]
	delete(s.contacts, qid)
	return n
}

// CheckRing validates the t-network ring invariants: following successor
// pointers from the smallest-id t-peer visits every live t-peer exactly once
// and ids increase monotonically around the ring. It returns nil when the
// ring is consistent. Intended for tests and debugging.
func (s *System) CheckRing() error {
	tps := s.TPeers()
	if len(tps) == 0 {
		return nil
	}
	byAddr := make(map[runtime.Addr]*Peer, len(tps))
	for _, p := range tps {
		byAddr[p.Addr] = p
	}
	start := tps[0]
	cur := start
	visited := make(map[runtime.Addr]bool)
	for {
		if visited[cur.Addr] {
			return fmt.Errorf("core: successor cycle revisits %d before covering the ring", cur.Addr)
		}
		visited[cur.Addr] = true
		if !cur.succ.Valid() {
			return fmt.Errorf("core: t-peer %d has no successor", cur.Addr)
		}
		next, ok := byAddr[cur.succ.Addr]
		if !ok {
			return fmt.Errorf("core: t-peer %d points at dead successor %d", cur.Addr, cur.succ.Addr)
		}
		if next.pred.Addr != cur.Addr {
			state := "dead"
			if pp, ok := byAddr[next.pred.Addr]; ok {
				state = fmt.Sprintf("live, id=%s pred=%d succ=%d joining=%v leaving=%v",
					pp.ID, pp.pred.Addr, pp.succ.Addr, pp.joining, pp.leaving)
			}
			state += fmt.Sprintf("; cur id=%s joining=%v leaving=%v; next id=%s joining=%v leaving=%v",
				cur.ID, cur.joining, cur.leaving, next.ID, next.joining, next.leaving)
			watched := next.watching(next.pred.Addr)
			return fmt.Errorf("core: t-peer %d predecessor is %d (%s, watched=%v, suspect=%v), want %d",
				next.Addr, next.pred.Addr, state, watched, next.suspect[next.pred.Addr], cur.Addr)
		}
		cur = next
		if cur == start {
			break
		}
	}
	if len(visited) != len(tps) {
		return fmt.Errorf("core: ring covers %d of %d t-peers", len(visited), len(tps))
	}
	return nil
}

// CheckTrees validates the s-network invariants: every live s-peer has a
// connect point, parent/child pointers agree, degrees respect δ (except
// roots that inherited children during substitution), and every s-peer
// reaches its t-peer by following connect points.
func (s *System) CheckTrees() error {
	for _, p := range s.SPeers() {
		if !p.cp.Valid() {
			return fmt.Errorf("core: s-peer %d has no connect point (joined=%v joining=%v leaving=%v epoch=%d ticks=%d ticker=%v tpeer=%d)",
				p.Addr, p.joined, p.joining, p.leaving, p.joinEpoch, p.cpLostTicks, p.helloTicker != nil, p.tpeer.Addr)
		}
		parent := s.peerAt(p.cp.Addr)
		if parent == nil || !parent.alive {
			return fmt.Errorf("core: s-peer %d connect point %d is dead", p.Addr, p.cp.Addr)
		}
		if parent.childIndex(p.Addr) < 0 {
			return fmt.Errorf("core: peer %d does not list s-peer %d as a child", parent.Addr, p.Addr)
		}
		// Walk to the root.
		cur := p
		steps := 0
		for cur.Role == SPeer {
			next := s.peerAt(cur.cp.Addr)
			if next == nil || !next.alive {
				return fmt.Errorf("core: s-peer %d ancestry broken at %d", p.Addr, cur.cp.Addr)
			}
			cur = next
			steps++
			if steps > s.numPeers {
				return fmt.Errorf("core: s-peer %d connect-point cycle", p.Addr)
			}
		}
		if p.tpeer.Valid() && cur.Addr != p.tpeer.Addr {
			return fmt.Errorf("core: s-peer %d cached t-peer %d but root is %d", p.Addr, p.tpeer.Addr, cur.Addr)
		}
	}
	return nil
}

// TotalItems returns the number of data items stored across all live peers.
func (s *System) TotalItems() int {
	total := 0
	for _, p := range s.peers {
		if p != nil && p.alive {
			total += len(p.data)
		}
	}
	return total
}

// ItemsPerPeer returns the per-peer stored item counts (live peers, sorted
// by address), feeding the Fig. 4 distributions.
func (s *System) ItemsPerPeer() []int {
	peers := s.Peers()
	out := make([]int, len(peers))
	for i, p := range peers {
		out[i] = len(p.data)
	}
	return out
}

// DebugPendingOps lists in-flight client operations per peer ("kind key"),
// for tests and debugging.
func (s *System) DebugPendingOps() map[runtime.Addr][]string {
	out := make(map[runtime.Addr][]string)
	for _, p := range s.peers {
		if p == nil {
			continue
		}
		for _, o := range p.pending {
			if o.kind == "fixfinger" {
				continue
			}
			out[p.Addr] = append(out[p.Addr], fmt.Sprintf("%s %s timer=%v", o.kind, o.key, s.rt.Scheduled(o.timer)))
		}
	}
	return out
}

package core

import (
	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// FingerBits is the finger table size (one entry per power of two of the
// 64-bit id space).
const FingerBits = 64

// routeHopLimit caps how many hops any ring- or tree-routed request may
// take. With consistent pointers a route needs O(log n) hops; while repairs
// are in flight the pointer graph can transiently contain cycles that would
// circulate a request forever (each hop is a fresh event, so one looping
// message livelocks a simulation run). Capped messages are dropped: every
// affected protocol has a timeout-driven retry or failure path.
const routeHopLimit = 512

// handleServerJoinResp reacts to the server's placement decision and starts
// the role-specific join protocol.
func (p *Peer) handleServerJoinResp(m serverJoinResp) {
	if p.joined {
		return // stale response: an earlier attempt already completed
	}
	p.joinAttempts++
	p.joinEpoch++
	switch m.Role {
	case TPeer:
		p.Role = TPeer
		p.ID = m.ID
		p.tpeer = p.Ref()
		p.ensureFingers()
		if m.First {
			self := p.Ref()
			p.pred, p.succ = self, self
			p.segLo = p.ID
			for i := range p.finger {
				p.finger[i] = self
			}
			p.send(p.sys.serverAddr, ringRegister{Self: self})
			p.sys.stats.TJoins++
			p.completeJoin(0)
			return
		}
		p.armJoinTimer()
		p.send(m.Entry.Addr, tJoinReq{Joiner: p.Ref(), Epoch: p.joinEpoch, Hops: 1})
	case SPeer:
		p.Role = SPeer
		p.armJoinTimer()
		p.send(m.Entry.Addr, sJoinReq{Joiner: Ref{Addr: p.Addr}, Epoch: p.joinEpoch, Hops: 1})
	}
}

// armJoinTimer retries the whole join through the server if the current
// attempt stalls (e.g. the entry point crashed mid-protocol, or any message
// of the handshake was lost). The retry resends the original request — role
// pin included — and re-arms itself, so a join survives losing any number of
// individual messages.
func (p *Peer) armJoinTimer() {
	p.sys.rt.Unschedule(p.joinTimer)
	p.joinTimer = p.sys.rt.Schedule(p.sys.Cfg.JoinTimeout, func() {
		if !p.alive || p.joined {
			return
		}
		if p.sys.Cfg.TopologyAware {
			p.joinReq.Coord = p.sys.landmarkCoord(p.Host)
		}
		p.send(p.sys.serverAddr, p.joinReq)
		p.armJoinTimer()
	})
}

// ensureFingers sizes the finger table and its flat refresh-tag table.
func (p *Peer) ensureFingers() {
	if p.finger == nil {
		p.finger = make([]Ref, FingerBits)
		for i := range p.finger {
			p.finger[i] = NilRef
		}
	}
	if p.fingerTag == nil {
		p.fingerTag = make([]uint64, FingerBits)
	}
}

// --- join request routing -----------------------------------------------------

// handleTJoinReq routes a t-join along the ring until it reaches the
// predecessor-to-be, then runs the join triangle there.
func (p *Peer) handleTJoinReq(m tJoinReq) {
	if m.Hops > routeHopLimit {
		return // looping route; the joiner's timer retries the whole join
	}
	if p.Role != TPeer || !p.succ.Valid() {
		// Not a ring member (promotion in flight): bounce to our root.
		if p.tpeer.Valid() && p.tpeer.Addr != p.Addr {
			p.send(p.tpeer.Addr, m)
		}
		return
	}
	if idspace.Between(p.ID, m.Joiner.ID, p.succ.ID) || p.succ.Addr == p.Addr {
		p.startJoinTriangle(m)
		return
	}
	next := p.closestPreceding(m.Joiner.ID)
	if !next.Valid() || next.Addr == p.Addr {
		next = p.succ
	}
	m.Hops++
	p.sys.stats.RingForwards++
	p.send(next.Addr, m)
}

// startJoinTriangle begins the §3.3 join triangle with this peer as pre.
// While the triangle is open the peer queues further join requests and
// refuses leave requests (its own included).
func (p *Peer) startJoinTriangle(m tJoinReq) {
	if p.joining || p.leaving {
		p.joinQueue = append(p.joinQueue, m)
		p.sys.stats.QueuedJoinRequests++
		return
	}
	p.joining = true
	p.triJoiner = m.Joiner.Addr
	p.triEpoch = m.Epoch
	p.armMutexGuard(p.sys.Cfg.HelloTimeout)
	p.sys.tracef("t=%v TRIANGLE pre=%d joiner=%d succ=%d", p.sys.rt.Now(), p.Addr, m.Joiner.Addr, p.succ.Addr)
	setup := tJoinSetup{Pred: p.Ref(), Succ: p.succ, Epoch: m.Epoch, Hops: m.Hops}
	// pre.check: resolve id conflicts with the midpoint rule (Table 1).
	if m.Joiner.ID == p.ID || m.Joiner.ID == p.succ.ID {
		setup.NewID = idspace.Midpoint(p.ID, p.succ.ID)
		setup.HasNewID = true
		p.sys.stats.IDConflicts++
	}
	p.send(m.Joiner.Addr, setup)
}

// handleTJoinSetup is the joiner receiving its ring neighbors from pre.
func (p *Peer) handleTJoinSetup(from runtime.Addr, m tJoinSetup) {
	if m.Epoch != p.joinEpoch || p.Role != TPeer {
		// Handshake of an abandoned join attempt: this triangle can never
		// complete, so release pre's mutex right away.
		p.send(from, tJoinCancel{Joiner: Ref{ID: p.ID, Addr: p.Addr}, Epoch: m.Epoch})
		return
	}
	if p.joined && p.pred.Valid() {
		// Duplicate setup (e.g. pre re-ran a triangle it had queued, or the
		// network duplicated the message). While our own insertion is still
		// awaiting confirmation the triangle is live and will close through
		// tJoinDone; once it has closed, tell pre to release — its copy of
		// tJoinDone may have been lost.
		if !p.insertPending {
			p.send(from, tJoinCancel{Joiner: Ref{ID: p.ID, Addr: p.Addr}, Epoch: m.Epoch})
		}
		return
	}
	if m.HasNewID {
		p.ID = m.NewID
		p.tpeer = p.Ref()
	}
	p.pred = m.Pred
	p.succ = m.Succ
	p.segLo = m.Pred.ID
	p.ensureFingers()
	for i := range p.finger {
		p.finger[i] = m.Succ
	}
	p.watch(m.Pred.Addr)
	if m.Succ.Addr != m.Pred.Addr {
		p.watch(m.Succ.Addr)
	}
	// Hold our own joining mutex until succ confirms the insertion, so any
	// triangle we anchor as pre cannot reach succ before our own did.
	p.joining = true
	p.insertPending = true
	p.armMutexGuard(p.sys.Cfg.JoinTimeout)
	p.send(m.Succ.Addr, tJoinToSucc{Joiner: p.Ref(), Hops: m.Hops + 1})
	p.armInsertRetry(m.Succ, 0)
	p.send(p.sys.serverAddr, ringRegister{Self: p.Ref()})
	p.sys.stats.TJoins++
	p.completeJoin(m.Hops)
}

// armInsertRetry re-sends the joiner's second triangle edge until succ
// confirms it. The insertion only becomes visible to the ring through succ,
// so a lost tJoinToSucc leaves the joiner with correct pointers that nobody
// reciprocates — and the joiner's own failure detector would then raise
// false crash alarms on both neighbors before stabilization catches up.
// tJoinToSucc is idempotent at succ, so re-sending is safe.
func (p *Peer) armInsertRetry(succ Ref, attempt int) {
	if attempt >= 5 {
		return // give up; the stabilize/notify pair reconciles eventually
	}
	epoch := p.joinEpoch
	p.sys.rt.Schedule(p.sys.Cfg.HelloEvery, func() {
		if !p.alive || !p.insertPending || p.joinEpoch != epoch || p.succ.Addr != succ.Addr {
			return
		}
		p.send(succ.Addr, tJoinToSucc{Joiner: p.Ref(), Hops: 1})
		p.armInsertRetry(succ, attempt+1)
	})
}

// armMutexGuard self-heals a joining mutex that a crashed counterparty would
// otherwise leave set forever. The duration depends on the role holding the
// mutex: a joiner keeps it through its armInsertRetry window (JoinTimeout
// covers that), but pre's triangle needs only a few message hops, so pre's
// guard is much shorter — a queue of triangles whose joiners crashed must
// not wedge pre for minutes, one JoinTimeout each.
func (p *Peer) armMutexGuard(d runtime.Time) {
	p.mutexEpoch++
	epoch := p.mutexEpoch
	p.sys.rt.Schedule(d, func() {
		if p.alive && p.joining && p.mutexEpoch == epoch {
			p.joining = false
			p.drainJoinQueue()
		}
	})
}

// handleTJoinToSucc is succ learning about the inserted joiner: it adopts the
// joiner as predecessor, triggers the load transfer and closes the triangle.
func (p *Peer) handleTJoinToSucc(m tJoinToSucc) {
	p.sys.tracef("t=%v TOSUCC at=%d joiner=%d oldpred=%d", p.sys.rt.Now(), p.Addr, m.Joiner.Addr, p.pred.Addr)
	oldPred := p.pred
	p.pred = m.Joiner
	p.segLo = m.Joiner.ID
	p.watch(m.Joiner.Addr)
	if oldPred.Valid() && oldPred.Addr != m.Joiner.Addr &&
		oldPred.Addr != p.succ.Addr && oldPred.Addr != p.Addr {
		p.unwatch(oldPred.Addr)
	}
	// suc.loadtransfer(n.id): everything in (oldPred, joiner] now belongs
	// to the joiner; ask the whole s-network to ship matching items.
	lo := oldPred.ID
	if !oldPred.Valid() {
		lo = p.ID
	}
	p.handleLoadTransfer(p.Addr, loadTransferReq{
		Lo: lo, Hi: m.Joiner.ID, Target: m.Joiner, TTL: 1 << 20,
	})
	// Release the joiner's self-mutex and close the triangle at pre.
	p.send(m.Joiner.Addr, tJoinConfirm{})
	pre := oldPred
	if !pre.Valid() || pre.Addr == p.Addr {
		// Singleton or bootstrap ring: we are pre ourselves.
		p.handleTJoinDone(tJoinDone{Joiner: m.Joiner, Hops: m.Hops})
		return
	}
	p.send(pre.Addr, tJoinDone{Joiner: m.Joiner, Hops: m.Hops + 1})
}

// handleTJoinDone is pre finishing the triangle: flip the successor pointer,
// then drain the queued join requests (FIFO, §3.3).
func (p *Peer) handleTJoinDone(m tJoinDone) {
	if m.Joiner.Addr == p.Addr {
		// A re-sent tJoinToSucc makes succ close the triangle toward its
		// current pred — the joiner itself. Adopting ourselves as successor
		// would detach us from the ring.
		return
	}
	p.sys.tracef("t=%v DONE at=%d joiner=%d oldsucc=%d", p.sys.rt.Now(), p.Addr, m.Joiner.Addr, p.succ.Addr)
	// Pre may have released the triangle mutex already (cancel or guard)
	// and moved on, so only flip the successor when the joiner is still an
	// improvement: strictly between us and the current successor. A stale
	// done for a joiner that no longer belongs there must not detach the
	// successor pointer stabilization has since repaired.
	if !p.succ.Valid() || p.succ.Addr == p.Addr ||
		idspace.StrictBetween(p.ID, m.Joiner.ID, p.succ.ID) {
		oldSucc := p.succ
		p.succ = m.Joiner
		p.watch(m.Joiner.Addr)
		if oldSucc.Valid() && oldSucc.Addr != m.Joiner.Addr &&
			oldSucc.Addr != p.pred.Addr && oldSucc.Addr != p.Addr {
			p.unwatch(oldSucc.Addr)
		}
	}
	// Release the mutex only for the triangle actually being closed; a
	// stale done must not unlock a newer, still-open triangle.
	if p.joining && !p.insertPending && p.triJoiner == m.Joiner.Addr {
		p.joining = false
		p.drainJoinQueue()
	}
}

// handleTJoinCancel is pre learning its open triangle is dead: the joiner
// refused the setup (stale epoch or already inserted elsewhere). Release the
// mutex and move on to the queued requests instead of waiting out the mutex
// guard's full JoinTimeout.
func (p *Peer) handleTJoinCancel(m tJoinCancel) {
	if !p.joining || p.insertPending {
		return // not anchoring a triangle (the mutex is our own insertion's)
	}
	if p.triJoiner != m.Joiner.Addr || p.triEpoch != m.Epoch {
		return // cancel for an older triangle than the one now open
	}
	p.joining = false
	p.drainJoinQueue()
}

// drainJoinQueue processes the next queued join request, or honors a
// deferred leave once the queue is empty.
func (p *Peer) drainJoinQueue() {
	if p.joining {
		return
	}
	if len(p.joinQueue) > 0 {
		next := p.joinQueue[0]
		p.joinQueue = p.joinQueue[1:]
		// Re-route rather than assume we are still pre: the ring moved.
		p.handleTJoinReq(next)
		return
	}
	if p.deferLeave {
		p.deferLeave = false
		p.Leave()
	}
}

// handleLoadTransfer ships every local item in (Lo, Hi] to the target and
// propagates the request down the s-network tree.
func (p *Peer) handleLoadTransfer(from runtime.Addr, m loadTransferReq) {
	var moved []Item
	for did, it := range p.data {
		if idspace.Between(m.Lo, did, m.Hi) && m.Lo != m.Hi {
			moved = append(moved, it)
			delete(p.data, did)
		}
	}
	moved = p.transferOwned(m, moved)
	if len(moved) > 0 && m.Target.Addr != p.Addr {
		sortItemsByDID(moved)
		p.sendData(m.Target.Addr, len(moved), itemsMsg{Items: moved})
		if p.sys.Cfg.TrackerMode && p.tpeer.Valid() {
			for _, it := range moved {
				p.send(p.tpeer.Addr, indexRemove{DID: it.DID, Holder: p.Ref()})
			}
		}
	}
	if m.TTL <= 1 {
		return
	}
	m.TTL--
	var fwd any = m
	for i := range p.children {
		if a := p.children[i].Ref.Addr; a != from {
			p.send(a, fwd)
		}
	}
}

// handleItems stores delivered items locally (load transfer, load dump or
// spreading) and, in tracker mode, announces them to the tracker. A t-peer
// whose segment shrank while the items were in flight re-routes them to the
// current owner instead of keeping them — otherwise a load transfer racing a
// concurrent join could strand data at a stale owner.
func (p *Peer) handleItems(m itemsMsg) {
	kept := m.Items[:0:0]
	for _, it := range m.Items {
		sid := p.segmentID(it.Key)
		if p.Role == TPeer && !p.inLocalSegment(sid) &&
			p.succ.Valid() && p.succ.Addr != p.Addr {
			p.forwardTowardSegment(sid, storeReq{Item: it, SID: sid, Origin: p.Ref(), Hops: 1}, runtime.None)
			continue
		}
		if p.data == nil {
			p.data = make(map[idspace.ID]Item)
		}
		p.data[it.DID] = it
		p.ownedAdd(it)
		kept = append(kept, it)
	}
	if p.sys.Cfg.TrackerMode && len(kept) > 0 {
		p.announceItems(kept)
	}
}

// --- leave ---------------------------------------------------------------------

// Leave departs gracefully. T-peers with a non-empty s-network hand their
// role to a random s-peer (substitution); t-peers with an empty s-network
// run the leave triangle; s-peers notify neighbors and transfer load.
func (p *Peer) Leave() {
	if !p.alive || p.leaving {
		return
	}
	p.sys.trace(obs.EvPeerLeave, 0, p.Addr, runtime.None, 0, p.Role.String())
	if p.Role == SPeer {
		p.leaveSPeer()
		return
	}
	if p.joining || len(p.joinQueue) > 0 {
		// §3.3: process queued joins first, then leave.
		p.deferLeave = true
		return
	}
	p.leaving = true
	p.sys.stats.TLeaves++
	if len(p.children) > 0 {
		p.leaveBySubstitution()
		return
	}
	p.leaveEmpty()
}

// leaveBySubstitution promotes a random direct child to take over this
// t-peer's identity: ring position, fingers, data and remaining children.
// The total number and position of t-peers is unchanged, so no finger
// recomputation happens anywhere — other t-peers only swap an address.
func (p *Peer) leaveBySubstitution() {
	children := p.Children()
	pick := children[p.sys.rt.Rand().Intn(len(children))]
	newRef := Ref{ID: p.ID, Addr: pick.Addr}

	items := make([]Item, 0, len(p.data))
	for _, it := range p.data {
		items = append(items, it)
	}
	items = p.appendOwnedExtra(items)
	sortItemsByDID(items)
	rest := make([]Ref, 0, len(children)-1)
	for _, c := range children {
		if c.Addr != pick.Addr {
			rest = append(rest, c)
		}
	}
	pm := promoteMsg{
		ID:       p.ID,
		Pred:     p.pred,
		Succ:     p.succ,
		Fingers:  append([]Ref(nil), p.finger...),
		Items:    items,
		Children: rest,
	}
	if pm.Pred.Addr == p.Addr {
		pm.Pred = newRef // singleton ring hands itself over
	}
	if pm.Succ.Addr == p.Addr {
		pm.Succ = newRef
	}
	p.sendData(pick.Addr, len(items), pm)
	for _, c := range rest {
		p.send(c.Addr, newParentMsg{Parent: newRef})
	}
	if p.pred.Valid() && p.pred.Addr != p.Addr {
		p.send(p.pred.Addr, pointerUpdate{Succ: newRef, Pred: NilRef, IfCurrent: p.Ref()})
	}
	if p.succ.Valid() && p.succ.Addr != p.Addr && p.succ.Addr != p.pred.Addr {
		p.send(p.succ.Addr, pointerUpdate{Pred: newRef, Succ: NilRef, IfCurrent: p.Ref()})
	}
	p.send(p.sys.serverAddr, ringReplace{Old: p.Ref(), New: newRef})
	if p.succ.Valid() && p.succ.Addr != p.Addr {
		p.send(p.succ.Addr, substituteMsg{Old: p.Ref(), New: newRef, Origin: p.Addr})
	}
	p.sys.stats.Promotions++
	p.stop()
}

// leaveEmpty runs the leave triangle (Fig. 2 right) for a t-peer with no
// s-network, then dumps its data onto its successor (Table 1, n.loaddump).
func (p *Peer) leaveEmpty() {
	if !p.succ.Valid() || p.succ.Addr == p.Addr {
		// Last t-peer of the system.
		p.send(p.sys.serverAddr, ringUnregister{Self: p.Ref(), Succ: NilRef})
		p.stop()
		return
	}
	p.send(p.pred.Addr, tLeaveToPred{Leaver: p.Ref(), Succ: p.succ})
	// Departure completes when succ confirms with tLeaveDone. If a
	// triangle counterparty dies first the confirmation never comes, so
	// the leaver force-finishes after a timeout rather than lingering
	// half-departed with its mutex set.
	p.sys.rt.Schedule(p.sys.Cfg.JoinTimeout, func() {
		if p.alive && p.leaving {
			p.finishEmptyLeave()
		}
	})
}

// handleTLeaveToPred is pre receiving the first edge of the leave triangle.
// If pre is itself mid-join it retries shortly rather than interleaving the
// two topology changes.
func (p *Peer) handleTLeaveToPred(from runtime.Addr, m tLeaveToPred) {
	if p.joining {
		retry := m
		p.sys.rt.Schedule(10*runtime.Millisecond, func() {
			if p.alive {
				p.handleTLeaveToPred(from, retry)
			}
		})
		return
	}
	if p.succ.Addr != m.Leaver.Addr {
		// Stale: the leaver is no longer our successor.
		return
	}
	oldSucc := p.succ
	p.succ = m.Succ
	p.watch(m.Succ.Addr)
	if oldSucc.Addr != p.pred.Addr {
		p.unwatch(oldSucc.Addr)
	}
	p.send(m.Succ.Addr, tLeaveToSucc{Leaver: m.Leaver, Pred: p.Ref()})
}

// handleTLeaveToSucc is suc verifying and completing the leave triangle:
// "only if they are the same peer, will the peer suc set its predecessor
// pointer to peer pre and send a packet to the leaving peer".
func (p *Peer) handleTLeaveToSucc(m tLeaveToSucc) {
	if p.pred.Addr != m.Leaver.Addr {
		return
	}
	oldPred := p.pred
	p.pred = m.Pred
	p.segLo = m.Pred.ID
	p.watch(m.Pred.Addr)
	if oldPred.Addr != p.succ.Addr {
		p.unwatch(oldPred.Addr)
	}
	p.send(m.Leaver.Addr, tLeaveDone{})
	// The leaver's segment folds into ours; circulate the substitution so
	// stale fingers route here. The leaver dumps its data on us when it
	// receives tLeaveDone.
	p.handleSubstitute(substituteMsg{Old: m.Leaver, New: p.Ref(), Origin: p.Addr})
}

// finishEmptyLeave completes the departure after the triangle closes.
func (p *Peer) finishEmptyLeave() {
	var items []Item
	for _, it := range p.data {
		items = append(items, it)
	}
	items = p.appendOwnedExtra(items)
	if len(items) > 0 && p.succ.Valid() && p.succ.Addr != p.Addr {
		sortItemsByDID(items)
		p.sendData(p.succ.Addr, len(items), itemsMsg{Items: items})
	}
	p.send(p.sys.serverAddr, ringUnregister{Self: p.Ref(), Succ: p.succ})
	p.stop()
}

// handlePromote converts an s-peer into the t-peer it is substituting.
func (p *Peer) handlePromote(m promoteMsg) {
	p.Role = TPeer
	p.ID = m.ID
	p.tpeer = p.Ref()
	p.segLo = m.Pred.ID
	oldCP := p.cp
	p.cp = NilRef
	if oldCP.Valid() {
		p.unwatch(oldCP.Addr)
	}
	p.pred = m.Pred
	p.succ = m.Succ
	p.ensureFingers()
	copy(p.finger, m.Fingers)
	if len(m.Items) > 0 && p.data == nil {
		p.data = make(map[idspace.ID]Item)
	}
	for _, it := range m.Items {
		p.data[it.DID] = it
		p.ownedAdd(it)
	}
	for _, c := range m.Children {
		p.addChild(c)
		p.watch(c.Addr)
	}
	if p.pred.Valid() && p.pred.Addr != p.Addr {
		p.watch(p.pred.Addr)
	}
	if p.succ.Valid() && p.succ.Addr != p.Addr {
		p.watch(p.succ.Addr)
	}
	if p.fingerTicker == nil {
		p.fingerTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.FingerRefreshEvery, p.refreshFingers)
		p.fingerTicker.Start()
	}
	if p.sys.Cfg.TrackerMode {
		p.ensureIndex()
		p.announceItems(m.Items)
	}
}

// handleNewParent re-parents this peer onto the promoted substitute.
func (p *Peer) handleNewParent(m newParentMsg) {
	if p.Role != SPeer {
		return
	}
	old := p.cp
	p.cp = m.Parent
	p.tpeer = m.Parent
	if old.Valid() {
		p.unwatch(old.Addr)
	}
	p.watch(m.Parent.Addr)
}

// handleSubstitute swaps Old for New in the ring pointers and finger table,
// then forwards the notice along successor pointers. The circulation
// terminates when it reaches the substitute itself (which occupies the old
// ring position, so a full traversal always lands there) or its origin.
func (p *Peer) handleSubstitute(m substituteMsg) {
	if p.Role != TPeer {
		return
	}
	// A swapped-in ring neighbor needs a failure detector like any other:
	// without it a substitute that later crashes is never detected and the
	// dead pointer survives quiescence.
	if p.pred.Addr == m.Old.Addr {
		p.pred = m.New
		p.segLo = m.New.ID
		if m.New.Addr != p.Addr {
			p.watch(m.New.Addr)
		}
	}
	if p.succ.Addr == m.Old.Addr {
		p.succ = m.New
		if m.New.Addr != p.Addr {
			p.watch(m.New.Addr)
		}
	}
	for i := range p.finger {
		if p.finger[i].Addr == m.Old.Addr {
			p.finger[i] = m.New
		}
	}
	if p.Addr == m.New.Addr {
		return // the substitute swallows the notice
	}
	if p.succ.Valid() && p.succ.Addr != m.Origin && p.succ.Addr != m.New.Addr && p.succ.Addr != p.Addr {
		p.send(p.succ.Addr, m)
	}
}

// handlePointerUpdate applies a ring pointer patch, honoring the IfCurrent
// condition so stale repairs cannot overwrite newer pointers.
func (p *Peer) handlePointerUpdate(m pointerUpdate) {
	if m.Pred.Valid() {
		if !m.IfCurrent.Valid() || p.pred.Addr == m.IfCurrent.Addr || !p.pred.Valid() {
			segChanged := p.segLo != m.Pred.ID
			p.pred = m.Pred
			p.segLo = m.Pred.ID
			p.watch(m.Pred.Addr)
			if segChanged {
				// A re-anchor can shrink our arc; anything we no
				// longer own must move to its owner.
				p.rehomeForeignItems()
			}
		}
	}
	if m.Succ.Valid() {
		if !m.IfCurrent.Valid() || p.succ.Addr == m.IfCurrent.Addr || !p.succ.Valid() {
			p.succ = m.Succ
			p.watch(m.Succ.Addr)
		}
	}
}

// --- finger maintenance ---------------------------------------------------------

// closestPreceding returns the known t-peer closest to target from below,
// skipping suspected-dead entries while their repair is pending.
func (p *Peer) closestPreceding(target idspace.ID) Ref {
	for i := len(p.finger) - 1; i >= 0; i-- {
		f := p.finger[i]
		if f.Valid() && f.Addr != p.Addr && idspace.StrictBetween(p.ID, f.ID, target) {
			if len(p.suspect) != 0 && p.suspect[f.Addr] {
				continue
			}
			return f
		}
	}
	if p.succ.Valid() && p.succ.Addr != p.Addr && idspace.StrictBetween(p.ID, p.succ.ID, target) {
		return p.succ
	}
	return NilRef
}

// refreshFingers refreshes a few finger entries per tick by resolving their
// targets through the ring.
func (p *Peer) refreshFingers() {
	if !p.alive || p.Role != TPeer {
		return
	}
	if !p.succ.Valid() {
		// Orphaned ring member (both triangle counterparties died):
		// re-anchor through the server's registry.
		p.send(p.sys.serverAddr, ringLocate{Self: p.Ref()})
		return
	}
	p.stabilizeRing()
	p.ensureFingers()
	const perRound = 8
	start := p.nextFinger
	var firstTag uint64
	for i := 0; i < perRound; i++ {
		idx := p.nextFinger
		p.nextFinger = (p.nextFinger + 1) % FingerBits
		target := idspace.FingerStart(p.ID, idx)
		tag := p.sys.newTag()
		if i == 0 {
			firstTag = tag
		}
		p.fingerTag[idx] = tag
		p.routeFindSucc(findSuccReq{Target: target, Origin: p.Addr, Tag: tag, Fidx: idx})
	}
	// A refresh that never answers was routed into a dead finger (a crashed
	// peer gives no error). Clearing the slot on timeout makes the next
	// route fall back to lower fingers or the successor, un-wedging the
	// refresh itself. One timer covers the whole round: the loop draws its
	// tags back to back, so slot k of this round holds exactly firstTag+k
	// until the answer (or this timeout) clears it, and a slot is never
	// re-issued before the timeout fires (the refresh cycles through all 64
	// slots before returning, eight rounds later).
	p.sys.rt.Schedule(p.sys.Cfg.FingerRefreshEvery, func() {
		if !p.alive {
			return
		}
		for k := 0; k < perRound; k++ {
			idx := (start + k) % FingerBits
			if p.fingerTag[idx] == firstTag+uint64(k) {
				p.fingerTag[idx] = 0
				p.finger[idx] = NilRef
			}
		}
	})
}

// routeFindSucc forwards a successor query one step (or answers it).
func (p *Peer) routeFindSucc(m findSuccReq) {
	if m.Hops > routeHopLimit {
		return // looping route; the refresh timeout clears the finger slot
	}
	if !p.succ.Valid() || p.succ.Addr == p.Addr {
		p.send(m.Origin, findSuccResp{Succ: p.Ref(), Tag: m.Tag, Fidx: m.Fidx, Hops: m.Hops})
		return
	}
	if idspace.Between(p.ID, m.Target, p.succ.ID) {
		p.send(m.Origin, findSuccResp{Succ: p.succ, Tag: m.Tag, Fidx: m.Fidx, Hops: m.Hops + 1})
		return
	}
	next := p.closestPreceding(m.Target)
	if !next.Valid() || next.Addr == p.Addr {
		next = p.succ
	}
	m.Hops++
	p.send(next.Addr, m)
}

func (p *Peer) handleFindSucc(m findSuccReq) {
	if p.Role != TPeer {
		return
	}
	p.routeFindSucc(m)
}

func (p *Peer) handleFindSuccResp(m findSuccResp) {
	// Accept only the answer to the probe currently in flight for the slot:
	// a zero or stale tag means the probe timed out (or the peer changed
	// role) and the slot has moved on, exactly as the old pending-record
	// lookup decided.
	if m.Fidx < 0 || m.Fidx >= len(p.fingerTag) ||
		m.Tag == 0 || p.fingerTag[m.Fidx] != m.Tag {
		return
	}
	p.fingerTag[m.Fidx] = 0
	p.finger[m.Fidx] = m.Succ
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Peer is one participant of the hybrid system. A single struct serves both
// roles because the paper's substitution mechanism converts s-peers into
// t-peers in place.
type Peer struct {
	ID       idspace.ID
	Addr     runtime.Addr
	Host     int
	Capacity float64
	Interest int
	Role     Role

	sys   *System
	alive bool

	// --- t-network state ---
	pred, succ Ref
	// succ2 is the successor's successor, learned from ring stabilization
	// answers. It is a routing fallback only — never a ring pointer: when
	// the successor is suspected dead and its repair has not landed yet,
	// segment routing detours via succ2 instead of forwarding into the
	// crash.
	succ2 Ref
	// suspect marks neighbors whose watchdog expired but whose repair is
	// still pending; routing avoids them. Entries clear on any liveness
	// signal or once the pointer heals. Lazily allocated: nil for the
	// (common) peers that never see a neighbor crash.
	suspect    map[runtime.Addr]bool
	finger     []Ref // lazily sized to FingerBits
	nextFinger int
	// joining/leaving are the §3.3 mutex variables; joinQueue serializes
	// join requests that arrive while a triangle is in flight.
	joining    bool
	leaving    bool
	mutexEpoch int
	joinQueue  []tJoinReq

	// --- s-network state ---
	// tpeer is the root of this peer's s-network (self for t-peers).
	tpeer Ref
	// segLo is the lower bound of the s-network's id segment (the
	// t-peer's predecessor id), cached from sJoinAck and HELLO piggyback.
	segLo idspace.ID
	// cp is the connect point (tree parent); invalid for t-peers.
	cp Ref
	// children are downstream tree neighbors.
	children map[runtime.Addr]Ref
	// childSubtree holds the latest subtree-size report per child
	// (piggybacked on HELLO). Summing them gives this peer's own subtree
	// size, which t-peers report to the server so the s-network size
	// registry self-corrects after cascaded crashes and cross-network
	// rejoins that the event-by-event accounting cannot see.
	childSubtree map[runtime.Addr]int

	// --- failure detection ---
	helloTicker *runtime.Ticker
	// watchdog holds one failure-detection timer per monitored neighbor.
	watchdog map[runtime.Addr]*runtime.Timer
	// lastAck is the per-neighbor suppress clock: an ack is sent only if
	// the suppress timeout elapsed since the previous one (§3.2.2).
	lastAck map[runtime.Addr]runtime.Time

	// --- data ---
	data map[idspace.ID]Item
	// index is the tracker-mode content index (tracker t-peers only).
	index map[idspace.ID]Ref
	// cache holds surrogate copies of hot items (future-work caching).
	cache map[idspace.ID]*cacheEntry
	// serves tracks per-item hot-window serve counts.
	serves map[idspace.ID]*serveStat
	// served counts every lookup this peer answered.
	served uint64

	// --- bypass links (§5.4) ---
	bypass map[runtime.Addr]*bypassLink

	// --- client operations ---
	pending map[uint64]*op
	// searches holds in-flight prefix searches (search.go).
	searches map[uint64]*searchOp

	// --- pending join ---
	joinStart runtime.Time
	joinDone  func(*Peer, JoinStats)
	joinTimer runtime.Handle
	// joinReq is the original server request, kept so join retries preserve
	// the caller's role pin instead of letting the server re-decide.
	joinReq      serverJoinReq
	joinAttempts int
	// joined flips once the peer is a full member; retries and duplicate
	// handshake suppression key off it (joinDone may legitimately be nil).
	joined bool
	// joinEpoch numbers join attempts; handshake messages echo it so a
	// retried join cannot be completed by a stale earlier attempt.
	joinEpoch int
	// insertPending is true from sending tJoinToSucc until succ confirms
	// the ring insertion; it gates the re-send loop (armInsertRetry).
	insertPending bool
	// triJoiner/triEpoch identify the join triangle this peer currently
	// anchors as pre, so a tJoinCancel from the joiner can release the
	// joining mutex without racing a different (newer) triangle.
	triJoiner runtime.Addr
	triEpoch  int
	// cpLostTicks counts consecutive hello ticks a joined s-peer has spent
	// without a connect point; past a small grace it forces a rejoin
	// through the server (a wedged rejoin would otherwise strand the peer
	// silently forever).
	cpLostTicks int
	// deferLeave marks a leave requested while a join triangle was in
	// flight; it runs once the triangle closes (§3.3: a joining pre
	// accepts no leave requests, including its own).
	deferLeave bool

	fingerTicker *runtime.Ticker
}

// op is an in-flight store or lookup issued by this peer.
type op struct {
	kind    string // "store", "lookup" or "fixfinger"
	key     string
	qid     uint64
	did     idspace.ID
	sid     idspace.ID // segment-selection id (differs from did in interest mode)
	start   runtime.Time
	ttl     int
	fidx    int // finger index (fixfinger ops)
	attempt int
	// localFlood records that a remote lookup also flooded the local
	// s-network in parallel (§3.1); ringMiss records that the ring path
	// answered with a definitive miss while that flood was outstanding.
	// The op fails only when both paths have concluded (or the timer
	// fires), so a spread or cached copy can still win the race.
	localFlood bool
	ringMiss   bool
	done       func(OpResult)
	timer      runtime.Handle
}

// OpResult reports the outcome of a store or lookup.
type OpResult struct {
	OK    bool
	Key   string
	Value string
	// Hops is the overlay hop count experienced by the request path that
	// produced the result.
	Hops int
	// Latency is the simulated end-to-end time.
	Latency runtime.Time
	// Contacts is the number of peers the operation touched (connum).
	Contacts int
	// Holder is where the item lives (valid on success).
	Holder Ref
}

// Alive reports whether the peer participates in the system.
func (p *Peer) Alive() bool { return p.alive }

// Ref returns the peer's own reference.
func (p *Peer) Ref() Ref { return Ref{ID: p.ID, Addr: p.Addr} }

// TNet returns the peer's s-network root reference.
func (p *Peer) TNet() Ref { return p.tpeer }

// ConnectPoint returns the peer's tree parent (invalid for t-peers).
func (p *Peer) ConnectPoint() Ref { return p.cp }

// Degree returns the peer's s-network degree: children plus the parent link
// for s-peers. This is the quantity the δ constraint bounds.
func (p *Peer) Degree() int {
	d := len(p.children)
	if p.Role == SPeer && p.cp.Valid() {
		d++
	}
	return d
}

// Children returns the tree children sorted by address.
func (p *Peer) Children() []Ref {
	out := make([]Ref, 0, len(p.children))
	for _, r := range p.children {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// NumItems returns the number of locally stored items.
func (p *Peer) NumItems() int { return len(p.data) }

// HasItem reports whether the peer stores the item with the given key.
func (p *Peer) HasItem(key string) bool {
	_, ok := p.data[idspace.HashKey(key)]
	return ok
}

// Successor returns the ring successor (t-peers).
func (p *Peer) Successor() Ref { return p.succ }

// Predecessor returns the ring predecessor (t-peers).
func (p *Peer) Predecessor() Ref { return p.pred }

// send transmits a control-sized message.
func (p *Peer) send(to runtime.Addr, msg any) {
	p.sys.rt.Send(p.Addr, to, p.sys.Cfg.MessageBytes, msg)
}

// sendData transmits a message carrying n data items.
func (p *Peer) sendData(to runtime.Addr, n int, msg any) {
	size := p.sys.Cfg.MessageBytes + n*p.sys.Cfg.DataBytes
	p.sys.rt.Send(p.Addr, to, size, msg)
}

// recv dispatches an incoming message to its protocol handler.
func (p *Peer) recv(from runtime.Addr, msg any) {
	if !p.alive {
		return
	}
	switch m := msg.(type) {
	// Server dialogue.
	case serverJoinResp:
		p.handleServerJoinResp(m)
	case replaceResp:
		p.handleReplaceResp(m)

	// T-network membership.
	case tJoinReq:
		p.handleTJoinReq(m)
	case tJoinSetup:
		p.handleTJoinSetup(from, m)
	case tJoinToSucc:
		p.handleTJoinToSucc(m)
	case tJoinDone:
		p.handleTJoinDone(m)
	case tJoinConfirm:
		p.joining = false
		p.insertPending = false
		p.drainJoinQueue()
	case tJoinCancel:
		p.handleTJoinCancel(m)
	case loadTransferReq:
		p.handleLoadTransfer(from, m)
	case itemsMsg:
		p.handleItems(m)
	case tLeaveToPred:
		p.handleTLeaveToPred(from, m)
	case tLeaveToSucc:
		p.handleTLeaveToSucc(m)
	case tLeaveDone:
		if p.leaving {
			p.finishEmptyLeave()
		}
	case promoteMsg:
		p.handlePromote(m)
	case newParentMsg:
		p.handleNewParent(m)
	case substituteMsg:
		p.handleSubstitute(m)
	case pointerUpdate:
		p.handlePointerUpdate(m)
	case ringRepair:
		p.handleRingRepair(m)
	case findSuccReq:
		p.handleFindSucc(m)
	case findSuccResp:
		p.handleFindSuccResp(m)

	// S-network membership.
	case sJoinReq:
		p.handleSJoinReq(m)
	case sJoinAck:
		p.handleSJoinAck(from, m)
	case sLeaveMsg:
		p.handleSLeave(from)

	// Failure detection.
	case helloMsg:
		p.handleHello(from, m)
	case ackMsg:
		p.refreshWatchdog(from)

	// Data operations.
	case storeReq:
		p.handleStoreReq(from, m)
	case spreadReq:
		p.handleSpreadReq(m)
	case storeAck:
		p.handleStoreAck(m)
	case lookupReq:
		p.handleLookupReq(from, m)
	case floodReq:
		p.handleFlood(from, m)
	case foundMsg:
		p.handleFound(m)
	case notFoundMsg:
		p.handleNotFound(m)
	case indexAdd:
		p.handleIndexAdd(m)
	case indexRemove:
		p.handleIndexRemove(m)
	case bypassAdd:
		p.handleBypassAdd(m)
	case cacheAdd:
		p.handleCacheAdd(m)
	case walkReq:
		p.handleWalk(m)
	case searchReq:
		p.handleSearch(from, m)
	case searchHit:
		p.handleSearchHit(m)
	case ringStabQ:
		p.send(from, ringStabA{Pred: p.pred, Succ: p.succ})
	case ringStabA:
		p.handleRingStabA(from, m)
	case ringNotify:
		p.handleRingNotify(m)
	case fetchReq:
		p.handleFetch(m)

	default:
		panic(fmt.Sprintf("core: peer %d received unknown message %T", p.Addr, msg))
	}
}

// neighbors returns every s-network tree neighbor (parent first, then
// children) in deterministic order.
func (p *Peer) neighbors() []Ref {
	var out []Ref
	if p.Role == SPeer && p.cp.Valid() {
		out = append(out, p.cp)
	}
	out = append(out, p.Children()...)
	return out
}

// --- HELLO / failure detection ----------------------------------------------

// startMaintenance begins the peer's periodic protocols once it is a full
// member: HELLO heartbeats for everyone, finger refresh for t-peers.
func (p *Peer) startMaintenance() {
	if p.helloTicker == nil {
		p.helloTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.HelloEvery, p.broadcastHello)
		p.helloTicker.Start()
	}
	if p.Role == TPeer && p.fingerTicker == nil {
		p.fingerTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.FingerRefreshEvery, p.refreshFingers)
		p.fingerTicker.Start()
	}
}

// broadcastHello sends the periodic heartbeat to all monitored neighbors.
// T-peers include their ring neighbors so an empty-s-network crash is still
// detected. The heartbeat piggybacks the current s-network metadata so
// segment boundaries propagate down the tree.
func (p *Peer) broadcastHello() {
	if !p.alive {
		return
	}
	// Every child must stay under a failure detector: ring-pointer churn can
	// unwatch an address that still sits in the children map (the watchdog
	// entry is shared per address), which would leave a stale child edge
	// unreapable. Re-arm; a real child's hellos refresh it, a stale one
	// expires into the child-crash cleanup.
	for _, c := range p.Children() {
		if _, ok := p.watchdog[c.Addr]; !ok {
			p.watch(c.Addr)
		}
	}
	// Self-heal a wedged rejoin: an s-peer can lose its connect point and
	// have every recovery message lost (e.g. a leaving t-peer's takeover
	// notice), leaving it silent — no neighbors, so no hellos, so nobody
	// ever detects it. After a grace of three ticks with no connect point,
	// go back to the server.
	if p.Role == SPeer && p.joined && !p.leaving && !p.cp.Valid() {
		p.cpLostTicks++
		if p.cpLostTicks >= 3 {
			p.cpLostTicks = 0
			p.rejoinViaServer()
			return
		}
	} else {
		p.cpLostTicks = 0
	}
	// Rehoming is otherwise edge-triggered (segment-change events), so a
	// load-transfer shipment lost by the network would strand a foreign
	// item forever. Sweep every tick as the backstop; it is a no-op scan
	// when nothing is foreign.
	if p.joined && !p.leaving && (p.Role == TPeer || p.cp.Valid()) {
		p.rehomeForeignItems()
	}
	hello := helloMsg{Root: p.tpeer, SegLo: p.segLo, Subtree: p.subtreeSize()}
	for _, nb := range p.neighbors() {
		p.send(nb.Addr, hello)
		p.sys.stats.HellosSent++
	}
	if p.Role == TPeer {
		if p.pred.Valid() && p.pred.Addr != p.Addr {
			p.send(p.pred.Addr, hello)
			p.sys.stats.HellosSent++
		}
		if p.succ.Valid() && p.succ.Addr != p.Addr && p.succ.Addr != p.pred.Addr {
			p.send(p.succ.Addr, hello)
			p.sys.stats.HellosSent++
		}
		if p.joined && !p.leaving {
			// Absolute size report: the event-by-event sRegister and
			// sUnregister accounting drifts whenever a departure goes
			// unobserved (a parent and child crash together, an s-peer
			// rejoins into a different s-network), so every hello tick the
			// t-peer syncs the server with its aggregated subtree count.
			// The sync also acts as the registry keep-alive, so a leaving
			// peer must not send it — it could race its own unregistration.
			p.send(p.sys.serverAddr, sSizeSync{Self: p.Ref(), Size: p.subtreeSize() - 1})
		}
	}
}

// subtreeSize returns the number of peers in this peer's subtree, itself
// included, from the latest per-child HELLO reports (a child that has not
// reported yet counts as a bare leaf).
func (p *Peer) subtreeSize() int {
	n := 1
	for a := range p.children {
		if r, ok := p.childSubtree[a]; ok {
			n += r
		} else {
			n++
		}
	}
	return n
}

// handleHello refreshes the sender's watchdog and, for heartbeats arriving
// from the tree parent, adopts the piggybacked s-network metadata: the root
// reference, the segment lower bound and the s-network's shared p_id.
func (p *Peer) handleHello(from runtime.Addr, m helloMsg) {
	p.refreshWatchdog(from)
	if _, isChild := p.children[from]; isChild {
		if m.Root.Valid() && m.Root.Addr == from {
			// The listed child announces itself as a root: a retried join
			// re-assigned it as a t-peer, so the child edge is stale. (Its
			// ring hellos would otherwise keep the stale edge's subtree
			// count fresh forever.) The watchdog entry stays — it may be
			// doing ring-neighbor duty for the same address.
			delete(p.children, from)
			delete(p.childSubtree, from)
		} else if m.Subtree > 0 {
			p.childSubtree[from] = m.Subtree
		}
	}
	if p.Role != SPeer || p.cp.Addr != from || !m.Root.Valid() {
		return
	}
	rootChanged := p.tpeer.Addr != m.Root.Addr
	segChanged := p.segLo != m.SegLo
	p.tpeer = m.Root
	p.ID = m.Root.ID
	p.segLo = m.SegLo
	if rootChanged && p.sys.Cfg.TrackerMode && len(p.data) > 0 {
		// A substituted or replaced tracker lost the old index; re-announce.
		items := make([]Item, 0, len(p.data))
		for _, it := range p.data {
			items = append(items, it)
		}
		sortItemsByDID(items)
		p.announceItems(items)
	}
	if rootChanged || segChanged {
		// The segment under our data moved (rejoin into a different
		// s-network, ring membership change): forward anything we no
		// longer own to its owning segment.
		p.rehomeForeignItems()
	}
}

// watch (re)arms the failure detector for a neighbor.
func (p *Peer) watch(nb runtime.Addr) {
	if nb == p.Addr || nb == runtime.None {
		return
	}
	if t, ok := p.watchdog[nb]; ok {
		t.Reset()
		return
	}
	nbCopy := nb
	t := runtime.NewTimer(p.sys.rt, p.sys.Cfg.HelloTimeout, func() {
		p.neighborTimeout(nbCopy)
	})
	p.watchdog[nb] = t
	t.Start()
}

// unwatch stops monitoring a neighbor.
func (p *Peer) unwatch(nb runtime.Addr) {
	if t, ok := p.watchdog[nb]; ok {
		t.Stop()
		delete(p.watchdog, nb)
	}
}

// refreshWatchdog resets the failure detector for a neighbor on any
// liveness signal (HELLO or ack).
func (p *Peer) refreshWatchdog(from runtime.Addr) {
	if t, ok := p.watchdog[from]; ok {
		t.Reset()
	}
	if len(p.suspect) != 0 {
		// Any liveness signal clears the routing suspicion (a partition
		// healing looks exactly like this).
		delete(p.suspect, from)
	}
}

// markSuspect flags a neighbor as suspected dead for routing purposes.
func (p *Peer) markSuspect(nb runtime.Addr) {
	if p.suspect == nil {
		p.suspect = make(map[runtime.Addr]bool)
	}
	p.suspect[nb] = true
}

// maybeAck responds to a data query with an acknowledgment unless the
// suppress timer says one was sent recently (§3.2.2). Acks double as
// liveness signals, letting failure detection accelerate under query load.
func (p *Peer) maybeAck(to runtime.Addr) {
	if _, monitored := p.watchdog[to]; !monitored {
		return // acks only matter between tree neighbors
	}
	now := p.sys.rt.Now()
	if last, ok := p.lastAck[to]; ok && now-last < p.sys.Cfg.SuppressTimeout {
		p.sys.stats.AcksSuppressed++
		return
	}
	p.lastAck[to] = now
	p.send(to, ackMsg{})
	p.sys.stats.AcksSent++
}

// stop halts all timers and detaches the peer from the network.
func (p *Peer) stop() {
	p.alive = false
	if p.helloTicker != nil {
		p.helloTicker.Stop()
	}
	if p.fingerTicker != nil {
		p.fingerTicker.Stop()
	}
	for _, t := range p.watchdog {
		t.Stop()
	}
	p.watchdog = make(map[runtime.Addr]*runtime.Timer)
	p.sys.rt.Unschedule(p.joinTimer)
	// Fail in-flight operations instead of silently dropping them: a live
	// client blocked in LookupSync/StoreSync on this peer must get its
	// callback, or it waits out the full Await timeout. The DES harnesses
	// never crash a peer with its own operation pending (ops are issued
	// synchronously), so this is only observable under the live runtime.
	pending := make([]uint64, 0, len(p.pending))
	for qid := range p.pending {
		pending = append(pending, qid)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, qid := range pending {
		p.finishOp(qid, OpResult{OK: false})
	}
	for _, e := range p.cache {
		e.timer.Stop()
	}
	// Close search windows for the same reason: report what was collected
	// so far rather than leaving a SearchSync caller hanging.
	searches := make([]uint64, 0, len(p.searches))
	for qid := range p.searches {
		searches = append(searches, qid)
	}
	sort.Slice(searches, func(i, j int) bool { return searches[i] < searches[j] })
	for _, qid := range searches {
		p.finishSearch(qid)
	}
	p.sys.rt.Detach(p.Addr)
	delete(p.sys.peers, p.Addr)
}

// Crash removes the peer abruptly: no notifications, all stored data lost.
// Neighbors discover the failure through HELLO/ack timeouts.
func (p *Peer) Crash() {
	if !p.alive {
		return
	}
	p.sys.trace(obs.EvPeerCrash, 0, p.Addr, runtime.None, 0, p.Role.String())
	p.sys.stats.Crashes++
	p.stop()
}

// completeJoin finalizes membership and reports statistics.
func (p *Peer) completeJoin(hops int) {
	if p.joined {
		return
	}
	p.joined = true
	p.sys.rt.Unschedule(p.joinTimer)
	p.joinTimer = runtime.Handle{}
	p.sys.trace(obs.EvPeerJoin, 0, p.Addr, runtime.None, hops, p.Role.String())
	p.startMaintenance()
	if p.joinDone != nil {
		done := p.joinDone
		p.joinDone = nil
		done(p, JoinStats{
			Role:    p.Role,
			Hops:    hops,
			Latency: p.sys.rt.Now() - p.joinStart,
		})
	}
}

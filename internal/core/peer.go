package core

import (
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Peer is one participant of the hybrid system. A single struct serves both
// roles because the paper's substitution mechanism converts s-peers into
// t-peers in place.
type Peer struct {
	ID       idspace.ID
	Addr     runtime.Addr
	Host     int
	Capacity float64
	Interest int
	Role     Role

	sys   *System
	alive bool

	// --- t-network state ---
	pred, succ Ref
	// succ2 is the successor's successor, learned from ring stabilization
	// answers. It is a routing fallback only — never a ring pointer: when
	// the successor is suspected dead and its repair has not landed yet,
	// segment routing detours via succ2 instead of forwarding into the
	// crash.
	succ2 Ref
	// suspect marks neighbors whose watchdog expired but whose repair is
	// still pending; routing avoids them. Entries clear on any liveness
	// signal or once the pointer heals. Lazily allocated: nil for the
	// (common) peers that never see a neighbor crash.
	suspect    map[runtime.Addr]bool
	finger     []Ref // lazily sized to FingerBits
	nextFinger int
	// fingerTag is the flat per-slot refresh table (sized with finger): a
	// non-zero entry is the tag of the in-flight findSuccReq refreshing that
	// slot. It replaces the per-probe pending-op records — eight fresh op
	// structs and timeout closures per refresh tick — with two array writes.
	fingerTag []uint64
	// joining/leaving are the §3.3 mutex variables; joinQueue serializes
	// join requests that arrive while a triangle is in flight.
	joining    bool
	leaving    bool
	mutexEpoch int
	joinQueue  []tJoinReq

	// --- s-network state ---
	// tpeer is the root of this peer's s-network (self for t-peers).
	tpeer Ref
	// segLo is the lower bound of the s-network's id segment (the
	// t-peer's predecessor id), cached from sJoinAck and HELLO piggyback.
	segLo idspace.ID
	// cp is the connect point (tree parent); invalid for t-peers.
	cp Ref
	// children are the downstream tree neighbors, kept sorted by address so
	// iteration order is deterministic without per-call sorting. The tree
	// degree is bounded by δ (plus one inheritance), so a sorted slice beats
	// the two maps it replaced on both lookup cost and per-peer footprint.
	children []childLink

	// --- failure detection ---
	helloTicker *runtime.Ticker
	// nbrs is the flat failure-detection table: one entry per neighbor this
	// peer has ever monitored, merging the watchdog timer and the ack
	// suppress clock. An entry whose timer is nil is not being watched but
	// keeps its suppress history (the previous map never forgot it either).
	nbrs []nbrWatch

	// --- data ---
	data map[idspace.ID]Item
	// index is the tracker-mode content index (tracker t-peers only).
	index map[idspace.ID]Ref
	// cache holds surrogate copies of hot items (future-work caching).
	cache map[idspace.ID]*cacheEntry
	// serves tracks per-item hot-window serve counts.
	serves map[idspace.ID]*serveStat
	// served counts every lookup this peer answered.
	served uint64

	// --- bypass links (§5.4) ---
	bypass map[runtime.Addr]*bypassLink

	// --- lookup-path cache (Config.PathCache; nil when off) ---
	// hints maps a data id to the holder a successful remote lookup
	// reported; ring routing consults it to shortcut straight at the
	// holder. Expiry and invalidation live in pathcache.go.
	hints map[idspace.ID]*hintEntry

	// --- replication (ReplicationK > 1; all state nil/zero at k = 1) ---
	// owned is the t-peer's authoritative copy of every in-segment item,
	// including spread items whose bytes live on an s-peer below it.
	owned map[idspace.ID]Item
	// reps holds replicas kept on behalf of other owners.
	reps map[idspace.ID]repEntry
	// repRound is the in-flight tracked push round (0 = none); repAcks
	// counts its distinct ackers and repWrapped records that the push came
	// back around a ring smaller than k.
	repRound   uint64
	repAcks    map[runtime.Addr]bool
	repWrapped bool
	// repDeficit is the last evaluated replica deficit (0 = fully
	// replicated); repDirty marks an owned-set change since the last push.
	repDeficit int
	repDirty   bool
	// repSucc is the successor of the last push; repTicks counts hello
	// ticks since it. The zero value of repSucc is the server address,
	// never a real successor, so a fresh t-peer's first sync always pushes.
	repSucc  runtime.Addr
	repTicks int

	// --- client operations ---
	pending map[uint64]*op
	// searches holds in-flight prefix searches (search.go).
	searches map[uint64]*searchOp

	// --- pending join ---
	joinStart runtime.Time
	joinDone  func(*Peer, JoinStats)
	joinTimer runtime.Handle
	// joinReq is the original server request, kept so join retries preserve
	// the caller's role pin instead of letting the server re-decide.
	joinReq      serverJoinReq
	joinAttempts int
	// joined flips once the peer is a full member; retries and duplicate
	// handshake suppression key off it (joinDone may legitimately be nil).
	joined bool
	// joinEpoch numbers join attempts; handshake messages echo it so a
	// retried join cannot be completed by a stale earlier attempt.
	joinEpoch int
	// insertPending is true from sending tJoinToSucc until succ confirms
	// the ring insertion; it gates the re-send loop (armInsertRetry).
	insertPending bool
	// triJoiner/triEpoch identify the join triangle this peer currently
	// anchors as pre, so a tJoinCancel from the joiner can release the
	// joining mutex without racing a different (newer) triangle.
	triJoiner runtime.Addr
	triEpoch  int
	// cpLostTicks counts consecutive hello ticks a joined s-peer has spent
	// without a connect point; past a small grace it forces a rejoin
	// through the server (a wedged rejoin would otherwise strand the peer
	// silently forever).
	cpLostTicks int
	// deferLeave marks a leave requested while a join triangle was in
	// flight; it runs once the triangle closes (§3.3: a joining pre
	// accepts no leave requests, including its own).
	deferLeave bool

	fingerTicker *runtime.Ticker
}

// childLink is one s-tree child edge plus the latest subtree-size report
// piggybacked on the child's HELLOs (0 = not reported yet, counted as a bare
// leaf). Summing the reports gives this peer's own subtree size, which
// t-peers report to the server so the s-network size registry self-corrects
// after cascaded crashes and cross-network rejoins that the event-by-event
// accounting cannot see.
type childLink struct {
	Ref     Ref
	Subtree int
}

// nbrWatch is one monitored neighbor: the failure-detection timer plus the
// ack suppress clock (§3.2.2). timer is nil while the neighbor is not being
// watched; the suppress fields outlive the watch, matching the old lastAck
// map which was never pruned.
type nbrWatch struct {
	addr    runtime.Addr
	timer   *runtime.Timer
	lastAck runtime.Time
	acked   bool
}

// op is an in-flight store or lookup issued by this peer.
type op struct {
	kind    string // "store", "lookup" or "fixfinger"
	key     string
	qid     uint64
	did     idspace.ID
	sid     idspace.ID // segment-selection id (differs from did in interest mode)
	start   runtime.Time
	ttl     int
	fidx    int // finger index (fixfinger ops)
	attempt int
	// localFlood records that a remote lookup also flooded the local
	// s-network in parallel (§3.1); ringMiss records that the ring path
	// answered with a definitive miss while that flood was outstanding.
	// The op fails only when both paths have concluded (or the timer
	// fires), so a spread or cached copy can still win the race.
	localFlood bool
	ringMiss   bool
	// probes counts outstanding ring probes (LookupAlpha > 1): a definitive
	// ring miss only counts once every probe has reported. hinted records
	// that one probe went straight at a path-cache hint, so a timeout can
	// invalidate the hint before failing.
	probes int
	hinted bool
	done   func(OpResult)
	timer  runtime.Handle
}

// OpResult reports the outcome of a store or lookup.
type OpResult struct {
	OK    bool
	Key   string
	Value string
	// Hops is the overlay hop count experienced by the request path that
	// produced the result.
	Hops int
	// Latency is the simulated end-to-end time.
	Latency runtime.Time
	// Contacts is the number of peers the operation touched (connum).
	Contacts int
	// Holder is where the item lives (valid on success).
	Holder Ref
}

// Alive reports whether the peer participates in the system.
func (p *Peer) Alive() bool { return p.alive }

// Ref returns the peer's own reference.
func (p *Peer) Ref() Ref { return Ref{ID: p.ID, Addr: p.Addr} }

// TNet returns the peer's s-network root reference.
func (p *Peer) TNet() Ref { return p.tpeer }

// ConnectPoint returns the peer's tree parent (invalid for t-peers).
func (p *Peer) ConnectPoint() Ref { return p.cp }

// Degree returns the peer's s-network degree: children plus the parent link
// for s-peers. This is the quantity the δ constraint bounds.
func (p *Peer) Degree() int {
	d := len(p.children)
	if p.Role == SPeer && p.cp.Valid() {
		d++
	}
	return d
}

// Children returns the tree children sorted by address. The backing table is
// kept sorted, so this is a straight copy; hot paths iterate p.children
// directly instead.
func (p *Peer) Children() []Ref {
	out := make([]Ref, len(p.children))
	for i := range p.children {
		out[i] = p.children[i].Ref
	}
	return out
}

// childIndex returns the position of the child with the given address, or -1.
func (p *Peer) childIndex(a runtime.Addr) int {
	i := sort.Search(len(p.children), func(i int) bool { return p.children[i].Ref.Addr >= a })
	if i < len(p.children) && p.children[i].Ref.Addr == a {
		return i
	}
	return -1
}

// addChild inserts (or refreshes) a child edge, keeping the table address-
// sorted.
func (p *Peer) addChild(r Ref) {
	i := sort.Search(len(p.children), func(i int) bool { return p.children[i].Ref.Addr >= r.Addr })
	if i < len(p.children) && p.children[i].Ref.Addr == r.Addr {
		p.children[i].Ref = r
		return
	}
	p.children = append(p.children, childLink{})
	copy(p.children[i+1:], p.children[i:])
	p.children[i] = childLink{Ref: r}
}

// removeChild drops a child edge (and its subtree report), reporting whether
// the address was a child.
func (p *Peer) removeChild(a runtime.Addr) bool {
	i := p.childIndex(a)
	if i < 0 {
		return false
	}
	p.children = append(p.children[:i], p.children[i+1:]...)
	return true
}

// nbrIndex returns the position of the failure-detection entry for the given
// address, or -1. The table is small (tree degree plus ring neighbors), so a
// linear scan beats a map.
func (p *Peer) nbrIndex(a runtime.Addr) int {
	for i := range p.nbrs {
		if p.nbrs[i].addr == a {
			return i
		}
	}
	return -1
}

// watching reports whether the address is under an armed failure detector.
func (p *Peer) watching(a runtime.Addr) bool {
	i := p.nbrIndex(a)
	return i >= 0 && p.nbrs[i].timer != nil
}

// NumItems returns the number of locally stored items.
func (p *Peer) NumItems() int { return len(p.data) }

// HasItem reports whether the peer stores the item with the given key.
func (p *Peer) HasItem(key string) bool {
	_, ok := p.data[idspace.HashKey(key)]
	return ok
}

// Successor returns the ring successor (t-peers).
func (p *Peer) Successor() Ref { return p.succ }

// Predecessor returns the ring predecessor (t-peers).
func (p *Peer) Predecessor() Ref { return p.pred }

// send transmits a control-sized message.
func (p *Peer) send(to runtime.Addr, msg any) {
	p.sys.rt.Send(p.Addr, to, p.sys.Cfg.MessageBytes, msg)
}

// sendData transmits a message carrying n data items.
func (p *Peer) sendData(to runtime.Addr, n int, msg any) {
	size := p.sys.Cfg.MessageBytes + n*p.sys.Cfg.DataBytes
	p.sys.rt.Send(p.Addr, to, size, msg)
}

// recv dispatches an incoming message to its protocol handler.
func (p *Peer) recv(from runtime.Addr, msg any) {
	if !p.alive {
		return
	}
	switch m := msg.(type) {
	// Server dialogue.
	case serverJoinResp:
		p.handleServerJoinResp(m)
	case replaceResp:
		p.handleReplaceResp(m)

	// T-network membership.
	case tJoinReq:
		p.handleTJoinReq(m)
	case tJoinSetup:
		p.handleTJoinSetup(from, m)
	case tJoinToSucc:
		p.handleTJoinToSucc(m)
	case tJoinDone:
		p.handleTJoinDone(m)
	case tJoinConfirm:
		p.joining = false
		p.insertPending = false
		p.drainJoinQueue()
	case tJoinCancel:
		p.handleTJoinCancel(m)
	case loadTransferReq:
		p.handleLoadTransfer(from, m)
	case itemsMsg:
		p.handleItems(m)
	case tLeaveToPred:
		p.handleTLeaveToPred(from, m)
	case tLeaveToSucc:
		p.handleTLeaveToSucc(m)
	case tLeaveDone:
		if p.leaving {
			p.finishEmptyLeave()
		}
	case promoteMsg:
		p.handlePromote(m)
	case newParentMsg:
		p.handleNewParent(m)
	case substituteMsg:
		p.handleSubstitute(m)
	case pointerUpdate:
		p.handlePointerUpdate(m)
	case ringRepair:
		p.handleRingRepair(m)
	case findSuccReq:
		p.handleFindSucc(m)
	case findSuccResp:
		p.handleFindSuccResp(m)

	// S-network membership.
	case sJoinReq:
		p.handleSJoinReq(m)
	case sJoinAck:
		p.handleSJoinAck(from, m)
	case sLeaveMsg:
		p.handleSLeave(from)

	// Failure detection.
	case helloMsg:
		p.handleHello(from, m)
	case ackMsg:
		p.refreshWatchdog(from)

	// Data operations.
	case storeReq:
		p.handleStoreReq(from, m)
	case spreadReq:
		p.handleSpreadReq(m)
	case storeAck:
		p.handleStoreAck(m)
	case lookupReq:
		p.handleLookupReq(from, m)
	case floodReq:
		p.handleFlood(from, m)
	case foundMsg:
		p.handleFound(m)
	case notFoundMsg:
		p.handleNotFound(m)
	case indexAdd:
		p.handleIndexAdd(m)
	case indexRemove:
		p.handleIndexRemove(m)
	case bypassAdd:
		p.handleBypassAdd(m)
	case cacheAdd:
		p.handleCacheAdd(m)
	case walkReq:
		p.handleWalk(m)
	case searchReq:
		p.handleSearch(from, m)
	case searchHit:
		p.handleSearchHit(m)
	case ringStabQ:
		p.send(from, ringStabA{Pred: p.pred, Succ: p.succ})
	case ringStabA:
		p.handleRingStabA(from, m)
	case ringNotify:
		p.handleRingNotify(m)
	case fetchReq:
		p.handleFetch(m)

	// Replication and delete (ReplicationK).
	case replicaPut:
		p.handleReplicaPut(from, m)
	case replicaAck:
		p.handleReplicaAck(from, m)
	case replicaDrop:
		p.handleReplicaDrop(from, m)
	case ownerAnnounce:
		p.handleOwnerAnnounce(m)
	case deleteReq:
		p.handleDeleteReq(from, m)
	case deleteAck:
		p.handleDeleteAck(m)
	case deleteFlood:
		p.handleDeleteFlood(from, m)

	// Lookup-path caching (PathCache).
	case routeHint:
		p.handleRouteHint(m)
	case hintDrop:
		p.handleHintDrop(from, m)
	case deleteRing:
		p.handleDeleteRing(m)

	default:
		panic(fmt.Sprintf("core: peer %d received unknown message %T", p.Addr, msg))
	}
}

// neighbors returns every s-network tree neighbor (parent first, then
// children in address order). Cold paths only; the flood/hello/lookup hot
// paths iterate the parent pointer and child table in place via
// forEachNeighbor instead of materializing a slice per event.
func (p *Peer) neighbors() []Ref {
	out := make([]Ref, 0, len(p.children)+1)
	if p.Role == SPeer && p.cp.Valid() {
		out = append(out, p.cp)
	}
	for i := range p.children {
		out = append(out, p.children[i].Ref)
	}
	return out
}

// forEachNeighbor visits every tree neighbor in the same order neighbors
// returns them, without allocating. The callback must not mutate the child
// table.
func (p *Peer) forEachNeighbor(fn func(Ref)) {
	if p.Role == SPeer && p.cp.Valid() {
		fn(p.cp)
	}
	for i := range p.children {
		fn(p.children[i].Ref)
	}
}

// numNeighbors counts tree neighbors without materializing them.
func (p *Peer) numNeighbors() int {
	n := len(p.children)
	if p.Role == SPeer && p.cp.Valid() {
		n++
	}
	return n
}

// --- HELLO / failure detection ----------------------------------------------

// startMaintenance begins the peer's periodic protocols once it is a full
// member: HELLO heartbeats for everyone, finger refresh for t-peers.
func (p *Peer) startMaintenance() {
	if p.helloTicker == nil {
		p.helloTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.HelloEvery, p.broadcastHello)
		p.helloTicker.Start()
	}
	if p.Role == TPeer && p.fingerTicker == nil {
		p.fingerTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.FingerRefreshEvery, p.refreshFingers)
		p.fingerTicker.Start()
	}
}

// broadcastHello sends the periodic heartbeat to all monitored neighbors.
// T-peers include their ring neighbors so an empty-s-network crash is still
// detected. The heartbeat piggybacks the current s-network metadata so
// segment boundaries propagate down the tree.
func (p *Peer) broadcastHello() {
	if !p.alive {
		return
	}
	// Every child must stay under a failure detector: ring-pointer churn can
	// unwatch an address that still sits in the child table (the watchdog
	// entry is shared per address), which would leave a stale child edge
	// unreapable. Re-arm; a real child's hellos refresh it, a stale one
	// expires into the child-crash cleanup.
	for i := range p.children {
		if a := p.children[i].Ref.Addr; !p.watching(a) {
			p.watch(a)
		}
	}
	// Self-heal a wedged rejoin: an s-peer can lose its connect point and
	// have every recovery message lost (e.g. a leaving t-peer's takeover
	// notice), leaving it silent — no neighbors, so no hellos, so nobody
	// ever detects it. After a grace of three ticks with no connect point,
	// go back to the server.
	if p.Role == SPeer && p.joined && !p.leaving && !p.cp.Valid() {
		p.cpLostTicks++
		if p.cpLostTicks >= 3 {
			p.cpLostTicks = 0
			p.rejoinViaServer()
			return
		}
	} else {
		p.cpLostTicks = 0
	}
	// Rehoming is otherwise edge-triggered (segment-change events), so a
	// load-transfer shipment lost by the network would strand a foreign
	// item forever. Sweep every tick as the backstop; it is a no-op scan
	// when nothing is foreign.
	if p.joined && !p.leaving && (p.Role == TPeer || p.cp.Valid()) {
		p.rehomeForeignItems()
	}
	// Replication maintenance rides the hello tick: owners push the owned
	// set down the successor chain, s-peers report in-segment holdings up.
	if p.sys.Cfg.ReplicationK > 1 && p.joined && !p.leaving {
		if p.Role == TPeer {
			p.syncReplicas()
		} else if p.cp.Valid() {
			p.announceOwned()
		}
	}
	// Box the heartbeat into an interface value once per tick, not once per
	// neighbor: every peer runs this forever, so per-send boxing dominates
	// steady-state allocation.
	var hello any = helloMsg{Root: p.tpeer, SegLo: p.segLo, Subtree: p.subtreeSize()}
	p.forEachNeighbor(func(nb Ref) {
		p.send(nb.Addr, hello)
		p.sys.stats.HellosSent++
	})
	if p.Role == TPeer {
		if p.pred.Valid() && p.pred.Addr != p.Addr {
			p.send(p.pred.Addr, hello)
			p.sys.stats.HellosSent++
		}
		if p.succ.Valid() && p.succ.Addr != p.Addr && p.succ.Addr != p.pred.Addr {
			p.send(p.succ.Addr, hello)
			p.sys.stats.HellosSent++
		}
		if p.joined && !p.leaving {
			// Absolute size report: the event-by-event sRegister and
			// sUnregister accounting drifts whenever a departure goes
			// unobserved (a parent and child crash together, an s-peer
			// rejoins into a different s-network), so every hello tick the
			// t-peer syncs the server with its aggregated subtree count.
			// The sync also acts as the registry keep-alive, so a leaving
			// peer must not send it — it could race its own unregistration.
			p.send(p.sys.serverAddr, sSizeSync{Self: p.Ref(), Size: p.subtreeSize() - 1})
		}
	}
}

// subtreeSize returns the number of peers in this peer's subtree, itself
// included, from the latest per-child HELLO reports (a child that has not
// reported yet counts as a bare leaf).
func (p *Peer) subtreeSize() int {
	n := 1
	for i := range p.children {
		if r := p.children[i].Subtree; r > 0 {
			n += r
		} else {
			n++
		}
	}
	return n
}

// handleHello refreshes the sender's watchdog and, for heartbeats arriving
// from the tree parent, adopts the piggybacked s-network metadata: the root
// reference, the segment lower bound and the s-network's shared p_id.
func (p *Peer) handleHello(from runtime.Addr, m helloMsg) {
	p.refreshWatchdog(from)
	if ci := p.childIndex(from); ci >= 0 {
		if m.Root.Valid() && m.Root.Addr == from {
			// The listed child announces itself as a root: a retried join
			// re-assigned it as a t-peer, so the child edge is stale. (Its
			// ring hellos would otherwise keep the stale edge's subtree
			// count fresh forever.) The watchdog entry stays — it may be
			// doing ring-neighbor duty for the same address.
			p.removeChild(from)
		} else if m.Subtree > 0 {
			p.children[ci].Subtree = m.Subtree
		}
	}
	if p.Role != SPeer || p.cp.Addr != from || !m.Root.Valid() {
		return
	}
	rootChanged := p.tpeer.Addr != m.Root.Addr
	segChanged := p.segLo != m.SegLo
	p.tpeer = m.Root
	p.ID = m.Root.ID
	p.segLo = m.SegLo
	if rootChanged && p.sys.Cfg.TrackerMode && len(p.data) > 0 {
		// A substituted or replaced tracker lost the old index; re-announce.
		items := make([]Item, 0, len(p.data))
		for _, it := range p.data {
			items = append(items, it)
		}
		sortItemsByDID(items)
		p.announceItems(items)
	}
	if rootChanged || segChanged {
		// The segment under our data moved (rejoin into a different
		// s-network, ring membership change): forward anything we no
		// longer own to its owning segment.
		p.rehomeForeignItems()
	}
}

// watch (re)arms the failure detector for a neighbor.
func (p *Peer) watch(nb runtime.Addr) {
	if nb == p.Addr || nb == runtime.None {
		return
	}
	i := p.nbrIndex(nb)
	if i >= 0 && p.nbrs[i].timer != nil {
		p.nbrs[i].timer.Reset()
		return
	}
	if i < 0 {
		p.nbrs = append(p.nbrs, nbrWatch{addr: nb})
		i = len(p.nbrs) - 1
	}
	nbCopy := nb
	t := runtime.NewTimer(p.sys.rt, p.sys.Cfg.HelloTimeout, func() {
		p.neighborTimeout(nbCopy)
	})
	p.nbrs[i].timer = t
	t.Start()
}

// unwatch stops monitoring a neighbor. The table entry stays so the ack
// suppress history survives a watch/unwatch cycle, exactly like the old
// never-pruned lastAck map.
func (p *Peer) unwatch(nb runtime.Addr) {
	if i := p.nbrIndex(nb); i >= 0 && p.nbrs[i].timer != nil {
		p.nbrs[i].timer.Stop()
		p.nbrs[i].timer = nil
	}
}

// refreshWatchdog resets the failure detector for a neighbor on any
// liveness signal (HELLO or ack).
func (p *Peer) refreshWatchdog(from runtime.Addr) {
	if i := p.nbrIndex(from); i >= 0 && p.nbrs[i].timer != nil {
		p.nbrs[i].timer.Reset()
	}
	if len(p.suspect) != 0 {
		// Any liveness signal clears the routing suspicion (a partition
		// healing looks exactly like this).
		delete(p.suspect, from)
	}
}

// markSuspect flags a neighbor as suspected dead for routing purposes.
// Path-cache hints naming the suspect are invalidated with it: a hint is a
// routing shortcut, and shortcuts into a crash are worse than none.
func (p *Peer) markSuspect(nb runtime.Addr) {
	if p.suspect == nil {
		p.suspect = make(map[runtime.Addr]bool)
	}
	p.suspect[nb] = true
	p.dropHintsTo(nb)
}

// maybeAck responds to a data query with an acknowledgment unless the
// suppress timer says one was sent recently (§3.2.2). Acks double as
// liveness signals, letting failure detection accelerate under query load.
func (p *Peer) maybeAck(to runtime.Addr) {
	i := p.nbrIndex(to)
	if i < 0 || p.nbrs[i].timer == nil {
		return // acks only matter between tree neighbors
	}
	now := p.sys.rt.Now()
	if p.nbrs[i].acked && now-p.nbrs[i].lastAck < p.sys.Cfg.SuppressTimeout {
		p.sys.stats.AcksSuppressed++
		return
	}
	p.nbrs[i].acked = true
	p.nbrs[i].lastAck = now
	p.send(to, ackMsg{})
	p.sys.stats.AcksSent++
}

// stop halts all timers and detaches the peer from the network.
func (p *Peer) stop() {
	p.alive = false
	if p.helloTicker != nil {
		p.helloTicker.Stop()
	}
	if p.fingerTicker != nil {
		p.fingerTicker.Stop()
	}
	for i := range p.nbrs {
		if p.nbrs[i].timer != nil {
			p.nbrs[i].timer.Stop()
		}
	}
	p.nbrs = nil
	p.sys.rt.Unschedule(p.joinTimer)
	// Fail in-flight operations instead of silently dropping them: a live
	// client blocked in LookupSync/StoreSync on this peer must get its
	// callback, or it waits out the full Await timeout. The DES harnesses
	// never crash a peer with its own operation pending (ops are issued
	// synchronously), so this is only observable under the live runtime.
	pending := make([]uint64, 0, len(p.pending))
	for qid := range p.pending {
		pending = append(pending, qid)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, qid := range pending {
		p.finishOp(qid, OpResult{OK: false})
	}
	for _, e := range p.cache {
		e.timer.Stop()
	}
	p.stopHints()
	// Close search windows for the same reason: report what was collected
	// so far rather than leaving a SearchSync caller hanging.
	searches := make([]uint64, 0, len(p.searches))
	for qid := range p.searches {
		searches = append(searches, qid)
	}
	sort.Slice(searches, func(i, j int) bool { return searches[i] < searches[j] })
	for _, qid := range searches {
		p.finishSearch(qid)
	}
	p.sys.rt.Detach(p.Addr)
	p.sys.removePeer(p.Addr)
}

// Crash removes the peer abruptly: no notifications, all stored data lost.
// Neighbors discover the failure through HELLO/ack timeouts.
func (p *Peer) Crash() {
	if !p.alive {
		return
	}
	p.sys.trace(obs.EvPeerCrash, 0, p.Addr, runtime.None, 0, p.Role.String())
	p.sys.stats.Crashes++
	p.stop()
}

// completeJoin finalizes membership and reports statistics.
func (p *Peer) completeJoin(hops int) {
	if p.joined {
		return
	}
	p.joined = true
	p.sys.rt.Unschedule(p.joinTimer)
	p.joinTimer = runtime.Handle{}
	p.sys.trace(obs.EvPeerJoin, 0, p.Addr, runtime.None, hops, p.Role.String())
	p.startMaintenance()
	if p.joinDone != nil {
		done := p.joinDone
		p.joinDone = nil
		done(p, JoinStats{
			Role:    p.Role,
			Hops:    hops,
			Latency: p.sys.rt.Now() - p.joinStart,
		})
	}
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// CategoryID maps an interest category to the ring position whose s-network
// serves it. Interest-based deployments place and look up a key by its
// category id instead of its own hash, so an entire content category lives
// in one s-network (§5.3).
func CategoryID(cat int) idspace.ID {
	return idspace.HashBytes([]byte(fmt.Sprintf("interest-category-%d", cat)))
}

// CategoryOf extracts the category index from keys of the form
// "cat<NN>/...", returning -1 for uncategorized keys. This is the naming
// convention the workload generator uses for interest-based experiments.
func CategoryOf(key string) int {
	if len(key) < 4 || key[0] != 'c' || key[1] != 'a' || key[2] != 't' {
		return -1
	}
	n := 0
	i := 3
	for ; i < len(key) && key[i] >= '0' && key[i] <= '9'; i++ {
		n = n*10 + int(key[i]-'0')
	}
	if i == 3 || i >= len(key) || key[i] != '/' {
		return -1
	}
	return n
}

// segmentID returns the id used to pick the serving s-network for a key:
// the key hash normally, the category id in interest-based mode.
func (p *Peer) segmentID(key string) idspace.ID {
	if p.sys.Cfg.InterestCategories > 0 {
		if cat := CategoryOf(key); cat >= 0 {
			return CategoryID(cat)
		}
	}
	return idspace.HashKey(key)
}

// inLocalSegment reports whether an id belongs to this peer's s-network,
// using the segment bounds cached from join time and HELLO piggyback.
func (p *Peer) inLocalSegment(sid idspace.ID) bool {
	if p.Role == TPeer {
		if !p.pred.Valid() {
			return true // lone t-peer owns the whole space
		}
		return idspace.Between(p.pred.ID, sid, p.ID)
	}
	return idspace.Between(p.segLo, sid, p.ID)
}

// newOp registers an in-flight operation with a timeout. Records come from
// the system-wide free list and go back to it in finishOp.
func (p *Peer) newOp(kind, key string, done func(OpResult)) (*op, uint64) {
	qid := p.sys.newQID()
	o := p.sys.getOp()
	o.kind = kind
	o.key = key
	o.qid = qid
	o.did = idspace.HashKey(key)
	o.sid = p.segmentID(key)
	o.start = p.sys.rt.Now()
	o.ttl = p.sys.Cfg.TTL
	o.done = done
	if p.pending == nil {
		p.pending = make(map[uint64]*op)
	}
	p.pending[qid] = o
	timerAt := p.sys.rt.Now() + p.sys.Cfg.LookupTimeout
	o.timer = p.sys.rt.Schedule(p.sys.Cfg.LookupTimeout, func() {
		p.opTimeout(qid)
	})
	p.sys.tracef("t=%v NEWOP peer=%d qid=%d kind=%s key=%s timerAt=%v", p.sys.rt.Now(), p.Addr, qid, kind, key, timerAt)
	if kind == "lookup" {
		p.sys.trace(obs.EvLookupStart, qid, p.Addr, runtime.None, 0, key)
	}
	return o, qid
}

// finishOp completes an operation exactly once and reports the result.
func (p *Peer) finishOp(qid uint64, r OpResult) {
	o, ok := p.pending[qid]
	p.sys.tracef("t=%v FINISH peer=%d qid=%d known=%v ok=%v", p.sys.rt.Now(), p.Addr, qid, ok, r.OK)
	if !ok {
		return
	}
	delete(p.pending, qid)
	p.sys.rt.Unschedule(o.timer)
	r.Key = o.key
	r.Latency = p.sys.rt.Now() - o.start
	r.Contacts = p.sys.takeContacts(qid)
	if !r.OK {
		p.sys.trace(obs.EvLookupFail, qid, p.Addr, runtime.None, r.Hops, o.kind)
	}
	if p.sys.met != nil {
		p.sys.met.recordOp(o.kind, r)
	}
	done := o.done
	// Recycle before the callback runs: the timer is unscheduled and the
	// pending entry is gone, so nothing references the record — and the
	// callback may synchronously issue the next operation, which then reuses
	// it immediately.
	p.sys.putOp(o)
	if done != nil {
		done(r)
	}
}

// opTimeout handles an expired operation timer: refloods with a larger TTL
// if configured (§3.4), otherwise declares failure.
func (p *Peer) opTimeout(qid uint64) {
	o, ok := p.pending[qid]
	p.sys.tracef("t=%v OPTIMEOUT peer=%d qid=%d known=%v", p.sys.rt.Now(), p.Addr, qid, ok)
	if !ok {
		return
	}
	o.timer = runtime.Handle{}
	if o.kind == "lookup" && o.attempt < p.sys.Cfg.Reflood && p.inLocalSegment(o.sid) && !p.sys.Cfg.TrackerMode {
		o.attempt++
		o.ttl++
		// "The peer may choose to increase the TTL value and the
		// expiration duration of the timer and reflood."
		longer := p.sys.Cfg.LookupTimeout * runtime.Time(1<<uint(o.attempt))
		o.timer = p.sys.rt.Schedule(longer, func() {
			p.opTimeout(qid)
		})
		p.floodOut(qid, o.did, o.ttl, p.Ref())
		return
	}
	if o.hinted {
		// The hinted holder never answered (crashed before the suspect
		// machinery noticed, or unreachable): invalidate the hint so the next
		// lookup for this item rides the ring instead of the same dead end.
		p.dropHint(o.did)
	}
	p.finishOp(qid, OpResult{OK: false})
}

// Store inserts a (key, value) pair into the system (§3.4). If the key
// belongs to the local s-network it is stored in the peer's own database;
// otherwise it travels up the tree, along the t-network, and is placed in
// the owning s-network per the configured placement scheme. done may be nil.
func (p *Peer) Store(key, value string, done func(OpResult)) {
	it := Item{Key: key, Value: value, DID: idspace.HashKey(key)}
	o, qid := p.newOp("store", key, done)
	if p.inLocalSegment(o.sid) {
		p.storeLocal(it)
		if p.sys.Cfg.ReplicationK > 1 && p.Role == TPeer {
			p.ownedAdd(it)
			p.eagerReplicate(it)
		}
		p.finishOp(qid, OpResult{OK: true, Hops: 0, Holder: p.Ref()})
		return
	}
	req := storeReq{Item: it, SID: o.sid, Origin: p.Ref(), Tag: qid, Hops: 1}
	p.forwardTowardSegment(req.SID, req, runtime.None)
}

// storeLocal inserts an item into the local database and, in tracker mode,
// announces it to the s-network's tracker.
func (p *Peer) storeLocal(it Item) {
	if p.data == nil {
		p.data = make(map[idspace.ID]Item)
	}
	p.data[it.DID] = it
	if p.sys.Cfg.TrackerMode {
		p.announceItems([]Item{it})
	}
}

// forwardTowardSegment moves a segment-routed request one step: s-peers
// climb to their connect point, t-peers route along the ring via the
// configured RouteStrategy (finger walk + suspect detour by default).
// Returns without sending when this peer already owns the segment (callers
// check ownership first).
func (p *Peer) forwardTowardSegment(sid idspace.ID, msg any, from runtime.Addr) {
	if p.Role == SPeer {
		if p.cp.Valid() {
			p.send(p.cp.Addr, msg)
		}
		return
	}
	next := p.sys.route.NextHop(p, sid)
	if !next.Valid() || next.Addr == p.Addr {
		return // lone t-peer: nowhere to forward
	}
	p.sys.stats.RingForwards++
	p.send(next.Addr, msg)
}

// nextHopToward picks the ring hop for a segment-routed request before the
// suspect detour: closest preceding finger normally, the successor under
// SuccessorRouting or when fingers have nothing closer.
func (p *Peer) nextHopToward(sid idspace.ID) Ref {
	next := NilRef
	if !p.sys.Cfg.SuccessorRouting {
		next = p.closestPreceding(sid)
	}
	if !next.Valid() || next.Addr == p.Addr {
		next = p.succ
	}
	return next
}

// rehomeForeignItems re-routes stored items that this peer's s-network no
// longer owns. A peer ends up holding foreign items when the segment moves
// under its data: an s-peer re-attached into a different s-network after a
// crash keeps its database, a t-peer re-anchored by the server can shrink its
// arc. Such items are unreachable where they are — lookups route to the
// owning segment and flood there, never here — so they are forwarded like
// fresh insertions. Called whenever the root or segment bounds change.
func (p *Peer) rehomeForeignItems() {
	if len(p.data) == 0 && len(p.owned) == 0 && len(p.reps) == 0 {
		return
	}
	var moved []Item
	for _, it := range p.data {
		if !p.inLocalSegment(p.segmentID(it.Key)) {
			moved = append(moved, it)
		}
	}
	for _, it := range moved {
		delete(p.data, it.DID)
	}
	moved = p.sweepReplicas(moved)
	if len(moved) == 0 {
		return
	}
	sortItemsByDID(moved)
	for i, it := range moved {
		if i > 0 && it.DID == moved[i-1].DID {
			// The same item can surface from both the data scan and the
			// replica sweep in one tick (owner and detour target suspected
			// together); a duplicate transfer would double-count rehomes
			// and double-send the batch downstream.
			continue
		}
		sid := p.segmentID(it.Key)
		p.sys.stats.ItemsRehomed++
		p.forwardTowardSegment(sid, storeReq{Item: it, SID: sid, Origin: p.Ref(), Hops: 1}, runtime.None)
	}
}

// sortItemsByDID puts an item batch in deterministic order before it is sent
// or announced. Every batch is collected by ranging over the data map, and map
// iteration order must not leak into the event sequence.
func sortItemsByDID(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].DID < items[j].DID })
}

// handleStoreReq advances an insertion toward the owning segment and places
// the item once it arrives.
func (p *Peer) handleStoreReq(from runtime.Addr, m storeReq) {
	if m.Hops > routeHopLimit {
		return // looping route; the op timer fails the store
	}
	p.maybeAck(from)
	if !p.inLocalSegment(m.SID) || p.Role == SPeer {
		m.Hops++
		p.forwardTowardSegment(m.SID, m, from)
		return
	}
	// We are the owning t-peer: record the authoritative copy and replicate
	// before placement — under spread the bytes may land on an s-peer, but
	// the replica chain always starts here.
	if p.sys.Cfg.ReplicationK > 1 {
		p.ownedAdd(m.Item)
		p.eagerReplicate(m.Item)
	}
	// Place per the configured scheme.
	switch p.sys.Cfg.Placement {
	case PlaceAtTPeer:
		p.storeLocal(m.Item)
		p.send(m.Origin.Addr, storeAck{Tag: m.Tag, Holder: p.Ref(), HolderSegLo: p.segLo, Hops: m.Hops})
	case PlaceSpread:
		p.handleSpreadReq(spreadReq{Item: m.Item, Origin: m.Origin, Tag: m.Tag, Hops: m.Hops, From: from})
	}
}

// handleSpreadReq performs one step of the scheme-2 random spreading walk:
// the current peer picks uniformly among itself and its directly connected
// downstream peers; picking itself ends the walk.
func (p *Peer) handleSpreadReq(m spreadReq) {
	// Index len(p.children) stands for "keep it here". The child table is
	// address-sorted, so indexing it directly draws the same candidate the
	// old sorted-copy code did.
	pick := p.sys.rt.Rand().Intn(len(p.children) + 1)
	if pick == len(p.children) {
		p.storeLocal(m.Item)
		p.send(m.Origin.Addr, storeAck{Tag: m.Tag, Holder: p.Ref(), HolderSegLo: p.segLo, Hops: m.Hops})
		return
	}
	m.From = p.Addr
	m.Hops++
	p.send(p.children[pick].Ref.Addr, m)
}

// handleStoreAck closes the store operation and creates a bypass link when
// the item landed in a different s-network (§5.4, rule 2).
func (p *Peer) handleStoreAck(m storeAck) {
	if p.sys.Cfg.Bypass && m.Holder.ID != p.ID {
		p.addBypass(m.Holder, m.HolderSegLo)
	}
	p.finishOp(m.Tag, OpResult{OK: true, Hops: m.Hops, Holder: m.Holder})
}

package core

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

func TestStabilizationHealsHalfInsertion(t *testing.T) {
	// Construct the failure mode §3.3's triangles cannot survive: a
	// t-peer whose own pointers are right but at whom nobody points.
	sys := newTestSystem(t, 95, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 12})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}

	// Splice peer X out by hand: its neighbors bypass it, but X keeps its
	// own (correct) pointers — the half-inserted state.
	tps := sys.TPeers()
	x := tps[4]
	pred := sys.Peer(x.pred.Addr)
	succ := sys.Peer(x.succ.Addr)
	pred.succ = succ.Ref()
	succ.pred = pred.Ref()

	if err := sys.CheckRing(); err == nil {
		t.Fatal("splice did not break the ring (test setup wrong)")
	}
	// Stabilize/notify must reintegrate X.
	sys.Settle(8 * sys.Cfg.FingerRefreshEvery)
	if err := sys.CheckRing(); err != nil {
		t.Fatalf("stabilization failed to heal: %v", err)
	}
	_ = peers
}

func TestStabilizationHealsDanglingChain(t *testing.T) {
	// A whole consecutive segment of the ring dangles: each member points
	// forward correctly, but the main ring bypasses all of them. The
	// cascading stabilize walk must reattach the chain in one settle.
	sys := newTestSystem(t, 96, func(c *Config) { c.Ps = 0 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 16}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	tps := sys.TPeers() // id-sorted
	// Bypass three consecutive members.
	before := sys.Peer(tps[5].pred.Addr)
	after := sys.Peer(tps[8].succ.Addr)
	before.succ = after.Ref()
	after.pred = before.Ref()

	sys.Settle(10 * sys.Cfg.FingerRefreshEvery)
	if err := sys.CheckRing(); err != nil {
		t.Fatalf("chain not reattached: %v", err)
	}
}

func TestRingNotifyTransfersLoad(t *testing.T) {
	// When stabilization adopts a new predecessor, the slice of the
	// segment it owns must move to it (same as a triangle insertion).
	sys := newTestSystem(t, 97, func(c *Config) {
		c.Ps = 0
		c.Placement = PlaceAtTPeer
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	for i := 0; i < 200; i++ {
		if _, err := sys.StoreSync(peers[i%10], keyf("st-%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Half-insert a "new" position: splice out a peer and let notify
	// reintegrate it; afterwards every item must be at its ring owner.
	tps := sys.TPeers()
	x := tps[3]
	pred := sys.Peer(x.pred.Addr)
	succ := sys.Peer(x.succ.Addr)
	pred.succ = succ.Ref()
	succ.pred = pred.Ref()
	// The successor now believes it owns x's segment; move x's items there
	// to simulate the worst case (data landed at the wrong owner).
	for did, it := range x.data {
		succ.storeLocal(it)
		delete(x.data, did)
	}
	sys.Settle(10 * sys.Cfg.FingerRefreshEvery)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := keyf("st-%03d", i)
		owner := ownerOf(sys, idspace.HashKey(key))
		if owner == nil || !owner.HasItem(key) {
			t.Errorf("item %s not at ring owner after notify load transfer", key)
		}
	}
}

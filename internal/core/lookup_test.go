package core

import (
	"fmt"
	"testing"

	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// populate builds a system and stores n items from deterministic origins.
func populate(t *testing.T, seed int64, nPeers, nItems int, mut func(*Config)) (*System, []*Peer, []string) {
	t.Helper()
	sys := newTestSystem(t, seed, mut)
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: nPeers})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	keys := make([]string, nItems)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%05d", i)
		r, err := sys.StoreSync(peers[(i*7)%nPeers], keys[i], "value-"+keys[i])
		if err != nil || !r.OK {
			t.Fatalf("store %s: %+v %v", keys[i], r, err)
		}
	}
	return sys, peers, keys
}

func TestLookupFindsEverythingWithAmpleTTL(t *testing.T) {
	sys, peers, keys := populate(t, 50, 60, 120, func(c *Config) { c.Ps = 0.6 })
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+5)%60], key)
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			t.Errorf("lookup %s failed", key)
			continue
		}
		if r.Value != "value-"+key {
			t.Errorf("lookup %s returned %q", key, r.Value)
		}
	}
}

func TestLookupMissingKeyFails(t *testing.T) {
	sys, peers, _ := populate(t, 51, 40, 10, func(c *Config) {
		c.Ps = 0.5
		c.LookupTimeout = 3 * sim.Second
	})
	r, err := sys.LookupSync(peers[0], "no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("missing key found")
	}
}

func TestLocalHitIsInstant(t *testing.T) {
	sys, peers, keys := populate(t, 52, 30, 30, func(c *Config) { c.Ps = 0.5 })
	// Find a key held by its own storer.
	for i, key := range keys {
		origin := peers[(i*7)%30]
		if origin.HasItem(key) {
			r, err := sys.LookupSync(origin, key)
			if err != nil || !r.OK {
				t.Fatalf("self lookup: %+v %v", r, err)
			}
			if r.Hops != 0 || r.Contacts != 0 {
				t.Fatalf("self lookup hops=%d contacts=%d", r.Hops, r.Contacts)
			}
			return
		}
	}
	t.Skip("no self-held key at this seed")
}

func TestSmallTTLCausesFailures(t *testing.T) {
	// Deep trees (δ=2) + TTL 1 must miss distant items inside large
	// s-networks — the Fig. 5a mechanism.
	sys, peers, keys := populate(t, 53, 80, 200, func(c *Config) {
		c.Ps = 0.9
		c.Delta = 2
		c.LookupTimeout = 3 * sim.Second
	})
	fails1, fails8 := 0, 0
	for i, key := range keys {
		origin := peers[(i*17+3)%80]
		r1, err := func() (OpResult, error) {
			var res OpResult
			var done bool
			origin.LookupWithTTL(key, 1, func(rr OpResult) { done = true; res = rr })
			for !done {
				if !sys.Eng().Step() {
					t.Fatal("engine dry")
				}
			}
			return res, nil
		}()
		if err != nil {
			t.Fatal(err)
		}
		if !r1.OK {
			fails1++
		}
		var r8 OpResult
		done := false
		origin.LookupWithTTL(key, 8, func(rr OpResult) { done = true; r8 = rr })
		for !done {
			if !sys.Eng().Step() {
				t.Fatal("engine dry")
			}
		}
		if !r8.OK {
			fails8++
		}
	}
	if fails1 == 0 {
		t.Fatal("TTL=1 found everything in deep trees — flood radius not enforced")
	}
	if fails8 >= fails1 {
		t.Fatalf("larger TTL did not reduce failures: ttl1=%d ttl8=%d", fails1, fails8)
	}
}

func TestRefloodRecoversTTLMiss(t *testing.T) {
	sys, peers, keys := populate(t, 54, 80, 150, func(c *Config) {
		c.Ps = 0.9
		c.Delta = 2
		c.LookupTimeout = 2 * sim.Second
		c.TTL = 1
		c.Reflood = 6
	})
	// With refloods enabled, local lookups that would fail at TTL 1 should
	// mostly recover by widening the radius.
	fails := 0
	local := 0
	for i, key := range keys {
		origin := peers[(i*11+1)%80]
		if !origin.inLocalSegment(origin.segmentID(key)) {
			continue
		}
		local++
		r, err := sys.LookupSync(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			fails++
		}
	}
	if local == 0 {
		t.Skip("no local lookups at this seed")
	}
	if fails*5 > local {
		t.Fatalf("reflood left %d/%d local lookups failing", fails, local)
	}
}

func TestContactsCounted(t *testing.T) {
	sys, peers, keys := populate(t, 55, 60, 100, func(c *Config) { c.Ps = 0.7 })
	totalContacts := 0
	remote := 0
	for i, key := range keys {
		origin := peers[(i*19+7)%60]
		r, err := sys.LookupSync(origin, key)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK && r.Holder.Addr != origin.Addr {
			remote++
			if r.Contacts == 0 {
				t.Errorf("remote lookup %s contacted nobody", key)
			}
		}
		totalContacts += r.Contacts
	}
	if remote == 0 {
		t.Fatal("no remote lookups happened")
	}
	if totalContacts == 0 {
		t.Fatal("connum accounting is dead")
	}
}

func TestFloodExactlyOnce(t *testing.T) {
	// The paper's tree argument: "a tree structure guarantees that each
	// peer receives the query message exactly once." Count floodReq
	// receipts per peer for a full-radius flood of one s-network.
	sys := newTestSystem(t, 56, func(c *Config) {
		c.Ps = 0.85
		c.Delta = 3
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)

	receipts := make(map[simnet.Addr]int)
	for _, p := range sys.Peers() {
		p := p
		host, cap := p.Host, p.Capacity
		inner := p
		sys.Net().Attach(p.Addr, runtime.Endpoint{Host: host, Capacity: cap}, simnet.HandlerFunc(func(from simnet.Addr, msg any) {
			if _, ok := msg.(floodReq); ok {
				receipts[inner.Addr]++
			}
			inner.recv(from, msg)
		}))
	}
	// One deep flood from an s-peer for a key that misses (no early stop).
	origin := sys.SPeers()[0]
	done := false
	origin.LookupWithTTL("definitely-missing", 64, func(OpResult) { done = true })
	for !done {
		if !sys.Eng().Step() {
			t.Fatal("engine dry")
		}
	}
	for addr, n := range receipts {
		if n > 1 {
			t.Fatalf("peer %d received the flood %d times (tree must deliver exactly once)", addr, n)
		}
	}
	if len(receipts) == 0 {
		t.Fatal("flood reached nobody")
	}
}

func TestLookupAfterRingGrowth(t *testing.T) {
	// Items keep being findable while the ring grows underneath them.
	sys, peers, keys := populate(t, 57, 30, 60, func(c *Config) { c.Ps = 0.3 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 30}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(20 * sim.Second)
	fails := 0
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*3)%30], key)
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/60 lookups failed after ring growth", fails)
	}
}

func TestLookupLatencyPositiveAndBounded(t *testing.T) {
	sys, peers, keys := populate(t, 58, 50, 50, func(c *Config) { c.Ps = 0.6 })
	for i, key := range keys {
		origin := peers[(i*23+11)%50]
		r, err := sys.LookupSync(origin, key)
		if err != nil || !r.OK {
			continue
		}
		if r.Holder.Addr != origin.Addr && r.Latency <= 0 {
			t.Fatalf("remote lookup %s latency %v", key, r.Latency)
		}
		if r.Latency >= sys.Cfg.LookupTimeout {
			t.Fatalf("successful lookup %s slower than the timeout", key)
		}
	}
}

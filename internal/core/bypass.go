package core

import (
	"repro/internal/idspace"
	"repro/internal/runtime"
)

// bypassLink is a soft cross-s-network shortcut (§5.4). Links expire when
// idle; using one refreshes its timer.
type bypassLink struct {
	peer  Ref
	segLo idspace.ID
	timer *runtime.Timer
}

// addBypass installs a bypass link to a peer of another s-network, obeying
// rule 1: the combined degree (tree plus bypass) must stay under δ. The
// remote side is told so the link is bidirectional.
func (p *Peer) addBypass(peer Ref, segLo idspace.ID) {
	p.installBypass(peer, segLo, true)
}

// installBypass performs the local bookkeeping; announce propagates the
// reverse half once.
func (p *Peer) installBypass(peer Ref, segLo idspace.ID, announce bool) {
	if peer.Addr == p.Addr {
		return
	}
	if p.bypass == nil {
		p.bypass = make(map[runtime.Addr]*bypassLink)
	}
	if l, ok := p.bypass[peer.Addr]; ok {
		l.peer = peer
		l.segLo = segLo
		l.timer.Reset()
		return
	}
	if p.Degree()+len(p.bypass) >= p.sys.Cfg.Delta {
		return // rule 1: no bypass link on a peer at the degree threshold
	}
	addr := peer.Addr
	l := &bypassLink{peer: peer, segLo: segLo}
	l.timer = runtime.NewTimer(p.sys.rt, p.sys.Cfg.BypassTTL, func() {
		delete(p.bypass, addr)
	})
	l.timer.Start()
	p.bypass[peer.Addr] = l
	if announce {
		p.send(peer.Addr, bypassAdd{Peer: p.Ref(), SegLo: p.segLo})
	}
}

// handleBypassAdd installs the reverse half of a link created by a remote
// peer.
func (p *Peer) handleBypassAdd(m bypassAdd) {
	p.installBypass(m.Peer, m.SegLo, false)
}

// bypassFor returns a live bypass link whose s-network segment covers the
// given id, refreshing its expiry ("transmitting a packet through the
// bypass link will refresh the attached timer"). Links are scanned in
// address order for determinism.
func (p *Peer) bypassFor(sid idspace.ID) *bypassLink {
	if len(p.bypass) == 0 {
		return nil
	}
	var best *bypassLink
	for _, l := range p.bypass {
		if !idspace.Between(l.segLo, sid, l.peer.ID) {
			continue
		}
		if best == nil || l.peer.Addr < best.peer.Addr {
			best = l
		}
	}
	if best != nil {
		best.timer.Reset()
	}
	return best
}

// NumBypass returns the number of live bypass links.
func (p *Peer) NumBypass() int { return len(p.bypass) }

package core

import (
	"sort"

	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Lookup-path caching (Config.PathCache), the trick Kademlia gets from its
// iterative design ported onto the hybrid overlay's recursive routing: a
// successful remote lookup deposits a (DID -> holder) hint at the origin and
// at the origin's ring entry point, and later lookups for the same item
// shortcut straight at the holder instead of walking the ring. Hints follow
// the surrogate cache's idle-TTL pattern (cache.go) and are invalidated
// three ways:
//
//   - the suspect/dead machinery: markSuspect drops every hint naming the
//     suspected address (dropHintsTo);
//   - a stale bounce: a hinted peer that no longer has the item replies
//     hintDrop to whoever used the hint and the request continues as a
//     normal routed lookup, so one stale hint costs one extra hop, never a
//     failure;
//   - a silent death: when a hinted lookup times out the origin drops its
//     own hint before failing (opTimeout).
//
// Hints store routes, never values, so an expired or deleted item cannot be
// resurrected through the path cache: the hinted holder simply misses and
// bounces.

// hintEntry is one cached (DID -> holder) route. The timer evicts the hint
// after PathCacheTTL of idleness and is reset on every use, exactly like the
// surrogate cache's entries.
type hintEntry struct {
	holder Ref
	timer  *runtime.Timer
}

// routeHint deposits a lookup-path hint at the receiver: the origin of a
// successful remote lookup sends one to its t-peer so the whole s-network
// shares the shortcut on its next lookup.
type routeHint struct {
	DID    idspace.ID
	Holder Ref
}

// hintDrop tells the receiver its path-cache hint for DID is stale — the
// sender was probed off that hint and no longer holds the item.
type hintDrop struct {
	DID idspace.ID
}

// addHint records (or refreshes) a path-cache hint. Self-hints and invalid
// holders are ignored; a refresh also updates the holder, so read-repair
// moves hints to the item's new home.
func (p *Peer) addHint(did idspace.ID, holder Ref) {
	if !p.sys.Cfg.PathCache || !holder.Valid() || holder.Addr == p.Addr {
		return
	}
	if e, ok := p.hints[did]; ok {
		e.holder = holder
		e.timer.Reset()
		return
	}
	if p.hints == nil {
		p.hints = make(map[idspace.ID]*hintEntry)
	}
	e := &hintEntry{holder: holder}
	e.timer = runtime.NewTimer(p.sys.rt, p.sys.Cfg.PathCacheTTL, func() {
		delete(p.hints, did)
	})
	e.timer.Start()
	p.hints[did] = e
}

// pathHint returns the cached holder for an item, refreshing the entry's
// idle timer. Hints naming a suspected-dead holder are dropped on sight —
// the watchdog may have marked the holder after the hint was deposited.
func (p *Peer) pathHint(did idspace.ID) (Ref, bool) {
	e, ok := p.hints[did]
	if !ok {
		return NilRef, false
	}
	if len(p.suspect) != 0 && p.suspect[e.holder.Addr] {
		p.dropHint(did)
		return NilRef, false
	}
	e.timer.Reset()
	return e.holder, true
}

// dropHint invalidates one path-cache hint.
func (p *Peer) dropHint(did idspace.ID) {
	if e, ok := p.hints[did]; ok {
		e.timer.Stop()
		delete(p.hints, did)
	}
}

// dropHintsTo invalidates every hint naming an address, called when the
// suspect machinery marks it presumed-dead. The dids are deleted in sorted
// order so map iteration order cannot leak into the event sequence through
// timer unscheduling.
func (p *Peer) dropHintsTo(a runtime.Addr) {
	if len(p.hints) == 0 {
		return
	}
	var stale []idspace.ID
	for did, e := range p.hints {
		if e.holder.Addr == a {
			stale = append(stale, did)
		}
	}
	if len(stale) > 1 {
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	}
	for _, did := range stale {
		p.dropHint(did)
	}
}

// stopHints releases every hint timer; part of Peer.stop.
func (p *Peer) stopHints() {
	for _, e := range p.hints {
		e.timer.Stop()
	}
}

// NumHints reports the live path-cache hint count (tests, introspection).
func (p *Peer) NumHints() int { return len(p.hints) }

// handleRouteHint deposits a hint pushed along a successful reply path.
func (p *Peer) handleRouteHint(m routeHint) {
	p.addHint(m.DID, m.Holder)
}

// handleHintDrop invalidates a stale hint bounced back by its holder. Only
// the hinted holder itself may drop the hint, so a late bounce cannot clear
// a fresher hint pointing elsewhere.
func (p *Peer) handleHintDrop(from runtime.Addr, m hintDrop) {
	if e, ok := p.hints[m.DID]; ok && e.holder.Addr == from {
		p.sys.stats.PathHintDrops++
		if p.sys.met != nil {
			p.sys.met.hintDrops.Inc()
		}
		p.dropHint(m.DID)
	}
}

// sendRingProbes fans a remote lookup out along up to max ring paths
// (α-parallel probes, Kademlia-style). A t-peer origin picks the candidate
// hops itself; an s-peer origin sends indexed copies up the tree and the
// first t-peer on the climb diverges them (lookupReq.Probe). Returns the
// number of probes actually sent.
func (p *Peer) sendRingProbes(sid idspace.ID, m lookupReq, max int) int {
	if p.Role == SPeer {
		if !p.cp.Valid() {
			return 0
		}
		for i := 0; i < max; i++ {
			pm := m
			pm.Probe = uint8(i)
			p.send(p.cp.Addr, pm)
		}
		p.sys.stats.ProbesSent += uint64(max)
		if p.sys.met != nil {
			p.sys.met.probesSent.Add(int64(max))
		}
		return max
	}
	var buf [MaxLookupAlpha]Ref
	cands := p.sys.route.NextHops(p, sid, max, buf[:0])
	for _, c := range cands {
		p.sys.stats.RingForwards++
		p.sys.stats.ProbesSent++
		p.send(c.Addr, m)
	}
	if p.sys.met != nil {
		p.sys.met.probesSent.Add(int64(len(cands)))
	}
	return len(cands)
}

// forwardProbe routes one α-parallel probe at its divergence point: the
// first t-peer on the path picks the Probe-th best candidate hop (falling
// back to the best available) and clears the index, so from here the probe
// follows the normal best-hop walk.
func (p *Peer) forwardProbe(m lookupReq, from runtime.Addr) {
	idx := int(m.Probe)
	m.Probe = 0
	var buf [MaxLookupAlpha]Ref
	cands := p.sys.route.NextHops(p, m.SID, idx+1, buf[:0])
	if len(cands) == 0 {
		p.forwardTowardSegment(m.SID, m, from)
		return
	}
	if idx >= len(cands) {
		idx = len(cands) - 1
	}
	p.sys.trace(obs.EvLookupForward, m.QID, p.Addr, cands[idx].Addr, m.Hops, "probe")
	p.sys.stats.RingForwards++
	p.send(cands[idx].Addr, m)
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// This file is the system-wide invariant checker: a white-box audit of every
// structural property the protocol is supposed to re-establish after churn.
// CheckInvariants is meant to be called at quiescence — after the failure
// detectors, the crash arbitration and the stabilization rounds have had time
// to run — and returns every violation it finds, joined into one error.
//
// The individual checks:
//
//   - CheckRing / CheckTrees (system.go): ring pointer consistency t-peer by
//     t-peer, s-tree acyclicity and parent/child agreement.
//   - CheckDegrees: the δ bound on s-network degrees.
//   - CheckDataOwnership: every stored item lives in the s-network of the
//     t-peer whose segment covers it.
//   - CheckWatchdogs: no failure-detection timer keeps watching a dead peer.
//   - CheckOpsDrained: no client operation is stuck in a pending table.
//   - CheckServerAccounting: the server's soft state (ring registry,
//     s-network sizes) matches the live system.

// CheckInvariants runs every system invariant check and returns the joined
// violations, or nil when the system is consistent.
func (s *System) CheckInvariants() error {
	return errors.Join(
		s.CheckRing(),
		s.CheckTrees(),
		s.CheckDegrees(),
		s.CheckDataOwnership(),
		s.CheckWatchdogs(),
		s.CheckOpsDrained(),
		s.CheckServerAccounting(),
		s.CheckReplication(),
	)
}

// CheckDegrees validates the δ bound (§3.2.2). S-peers are bounded strictly:
// degree (children plus parent link) at most δ, enforced at join time by
// acceptChild. T-peers are allowed up to 2δ children: a substitution or crash
// promotion hands the promoted peer the departing t-peer's remaining children
// on top of its own (handlePromote, handleReplaceResp), which is the paper's
// trade — keep the tree connected now, let growth rebalance later — so the
// checker flags only runaway accumulation beyond one inheritance.
func (s *System) CheckDegrees() error {
	delta := s.Cfg.Delta
	for _, p := range s.Peers() {
		if p.Role == SPeer {
			if d := p.Degree(); d > delta {
				return fmt.Errorf("core: s-peer %d degree %d exceeds delta %d", p.Addr, d, delta)
			}
			continue
		}
		if len(p.children) > 2*delta {
			return fmt.Errorf("core: t-peer %d has %d children, above the 2*delta=%d inheritance bound", p.Addr, len(p.children), 2*delta)
		}
	}
	return nil
}

// CheckDataOwnership validates data placement: every item stored at a live
// peer must live in the s-network rooted at the t-peer whose ring segment
// covers the item's segment id (its key hash, or its category id in
// interest-based mode). Cached surrogate copies are exempt by construction —
// they live in the separate cache map.
func (s *System) CheckDataOwnership() error {
	tps := s.TPeers()
	if len(tps) == 0 {
		return nil
	}
	owner := func(sid idspace.ID) runtime.Addr {
		i := sort.Search(len(tps), func(i int) bool { return tps[i].ID >= sid })
		if i == len(tps) {
			i = 0 // wrap: the smallest id owns the arc past the largest
		}
		return tps[i].Addr
	}
	for _, p := range s.Peers() {
		root := p.Addr
		if p.Role == SPeer {
			if !p.tpeer.Valid() {
				continue // mid-rejoin; CheckTrees reports the structural issue
			}
			root = p.tpeer.Addr
		}
		for _, it := range p.data {
			if own := owner(p.segmentID(it.Key)); own != root {
				sid := p.segmentID(it.Key)
				detail := fmt.Sprintf("sid=%s holder segLo=%s id=%s local=%v",
					sid, p.segLo, p.ID, p.inLocalSegment(sid))
				if rp := s.peerAt(root); rp != nil && rp.Addr != p.Addr {
					detail += fmt.Sprintf("; root segLo=%s id=%s pred=%d", rp.segLo, rp.ID, rp.pred.Addr)
				}
				return fmt.Errorf("core: item %q stored at peer %d (s-network %d) but segment owner is t-peer %d (%s)",
					it.Key, p.Addr, root, own, detail)
			}
		}
	}
	return nil
}

// CheckWatchdogs validates failure-detector hygiene at quiescence: every armed
// watchdog must monitor a live peer. A watchdog on a crashed neighbor is
// legitimate only transiently — it is how the crash gets detected — so a
// surviving one means a timeout handler leaked a timer on a dead address.
func (s *System) CheckWatchdogs() error {
	for _, p := range s.Peers() {
		for i := range p.nbrs {
			if p.nbrs[i].timer == nil {
				continue // retired entry kept for ack-suppression history
			}
			nb := p.nbrs[i].addr
			if t := s.peerAt(nb); t == nil || !t.alive {
				return fmt.Errorf("core: peer %d still watches dead peer %d", p.Addr, nb)
			}
		}
	}
	return nil
}

// CheckOpsDrained validates that no client operation outlives its protocol:
// at quiescence every pending table is empty (finger-refresh probes are
// exempt — the refresh ticker keeps a rolling window of them alive by
// design), every search table is empty, and the system-wide contact counters
// have all been consumed by finished operations.
func (s *System) CheckOpsDrained() error {
	for _, p := range s.Peers() {
		for _, o := range p.pending {
			if o.kind == "fixfinger" {
				continue
			}
			return fmt.Errorf("core: peer %d has stuck %s op for key %q", p.Addr, o.kind, o.key)
		}
		if n := len(p.searches); n > 0 {
			return fmt.Errorf("core: peer %d has %d stuck searches", p.Addr, n)
		}
	}
	return nil
}

// CheckServerAccounting validates the server's soft state against the live
// system: the ring registry names exactly the live t-peers, every s-network
// size entry matches the actual live membership of that s-network, and no
// crash report is still parked awaiting a replacement.
func (s *System) CheckServerAccounting() error {
	sv := s.server
	if sv == nil {
		return nil // peer-only system: the server lives in another process
	}
	tps := s.TPeers()
	liveT := make(map[runtime.Addr]bool, len(tps))
	for _, p := range tps {
		liveT[p.Addr] = true
	}
	reg := make(map[runtime.Addr]bool, len(sv.ring))
	for _, r := range sv.ring {
		reg[r.Addr] = true
		if !liveT[r.Addr] {
			return fmt.Errorf("core: server registry lists dead t-peer %d", r.Addr)
		}
	}
	for _, p := range tps {
		if !reg[p.Addr] {
			return fmt.Errorf("core: live t-peer %d missing from server registry", p.Addr)
		}
	}
	actual := make(map[runtime.Addr]int)
	for _, p := range s.SPeers() {
		if p.tpeer.Valid() {
			actual[p.tpeer.Addr]++
		}
	}
	// Sorted so a failing run always reports the same (lowest-address)
	// violation rather than one picked by map iteration order.
	tracked := make([]runtime.Addr, 0, len(sv.snetSize))
	for addr := range sv.snetSize {
		tracked = append(tracked, addr)
	}
	sort.Slice(tracked, func(i, j int) bool { return tracked[i] < tracked[j] })
	for _, addr := range tracked {
		if !reg[addr] {
			return fmt.Errorf("core: server tracks s-network size for unregistered t-peer %d", addr)
		}
		if size := sv.snetSize[addr]; size != actual[addr] {
			return fmt.Errorf("core: server thinks s-network of t-peer %d has %d peers, actual %d", addr, size, actual[addr])
		}
	}
	populated := make([]runtime.Addr, 0, len(actual))
	for addr, n := range actual {
		if n > 0 {
			populated = append(populated, addr)
		}
	}
	sort.Slice(populated, func(i, j int) bool { return populated[i] < populated[j] })
	for _, addr := range populated {
		if _, ok := sv.snetSize[addr]; !ok {
			return fmt.Errorf("core: s-network of t-peer %d has %d peers but no server size entry", addr, actual[addr])
		}
	}
	if n := len(sv.deadPending); n > 0 {
		return fmt.Errorf("core: server has %d unresolved crash reports", n)
	}
	return nil
}

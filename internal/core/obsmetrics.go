package core

import "repro/internal/obs"

// sysMetrics caches the registry metrics the protocol hot paths record into.
// The pointers are resolved once at SetMetrics time, so the per-lookup cost
// is one nil check plus atomic adds — no map lookups, no locks, no
// allocation, and (critically) no feedback into protocol behavior: recording
// draws no randomness and reads no clock the protocol does not already read.
type sysMetrics struct {
	lookupLatUs *obs.Histogram // end-to-end lookup latency, microseconds
	lookupHops  *obs.Histogram // overlay hops of successful lookups
	lookupOK    *obs.Counter
	lookupFail  *obs.Counter
	storeLatUs  *obs.Histogram // end-to-end store latency, microseconds
	deleteLatUs *obs.Histogram // end-to-end delete latency, microseconds
	probesSent  *obs.Counter   // α-parallel ring probes fanned out
	hintUses    *obs.Counter   // lookups forwarded straight at a path-cache hint
	hintDrops   *obs.Counter   // stale path-cache hints bounced off
}

// SetMetrics attaches a metrics registry to the system: lookup and store
// completions (the EvLookupHit/EvLookupFail sites) are recorded into
// histograms and counters registered under "lookup.*" and "store.*". A nil
// registry (the default) disables recording; every emission is guarded by a
// single pointer check, mirroring SetTracer.
func (s *System) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.met = nil
		return
	}
	s.met = &sysMetrics{
		lookupLatUs: reg.Histogram("lookup.latency_us"),
		lookupHops:  reg.Histogram("lookup.hops"),
		lookupOK:    reg.Counter("lookup.ok"),
		lookupFail:  reg.Counter("lookup.fail"),
		storeLatUs:  reg.Histogram("store.latency_us"),
		deleteLatUs: reg.Histogram("delete.latency_us"),
		probesSent:  reg.Counter("lookup.probes_sent"),
		hintUses:    reg.Counter("lookup.hint_uses"),
		hintDrops:   reg.Counter("lookup.hint_drops"),
	}
}

// recordOp records a finished client operation. Called from finishOp with the
// final OpResult; r.Latency is already computed there.
func (m *sysMetrics) recordOp(kind string, r OpResult) {
	switch kind {
	case "lookup":
		if r.OK {
			m.lookupOK.Inc()
			m.lookupLatUs.Record(int64(r.Latency))
			m.lookupHops.Record(int64(r.Hops))
		} else {
			m.lookupFail.Inc()
		}
	case "store":
		if r.OK {
			m.storeLatUs.Record(int64(r.Latency))
		}
	case "delete":
		if r.OK {
			m.deleteLatUs.Record(int64(r.Latency))
		}
	}
}

package core

import (
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Test-only accessors into the discrete-event runtime underneath a System.
// The shipped package is engine-agnostic (it imports only internal/runtime);
// the tests, which all run on the DES runtime, still need to single-step the
// engine, inject faults and inspect the topology. Living in a _test.go file,
// these helpers keep sim/simnet out of the package's import graph.

func (s *System) desRuntime() *simnet.Runtime { return s.rt.(*simnet.Runtime) }

// Eng returns the simulation engine under the system's runtime.
func (s *System) Eng() *sim.Engine { return s.desRuntime().Eng }

// Net returns the simulated network under the system's runtime.
func (s *System) Net() *simnet.Network { return s.desRuntime().Net }

// Topo returns the physical topology under the system's runtime.
func (s *System) Topo() *topology.Graph { return s.desRuntime().Net.Topo }

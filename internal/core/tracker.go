package core

import "repro/internal/idspace"

// Tracker-mode support (§5.5): each s-network behaves like a BitTorrent
// swarm whose tracker is the t-peer. Peers report stored items to the
// tracker; lookups go to the tracker, which answers with the holder, and the
// item is fetched directly — no flooding anywhere.

// ensureIndex allocates the tracker index.
func (p *Peer) ensureIndex() {
	if p.index == nil {
		p.index = make(map[idspace.ID]Ref)
	}
}

// announceItems reports locally stored items to this s-network's tracker.
// T-peers index their own items directly.
func (p *Peer) announceItems(items []Item) {
	if p.Role == TPeer {
		p.ensureIndex()
		for _, it := range items {
			p.index[it.DID] = p.Ref()
		}
		return
	}
	if !p.tpeer.Valid() {
		return
	}
	for _, it := range items {
		p.send(p.tpeer.Addr, indexAdd{DID: it.DID, Holder: p.Ref()})
	}
}

// handleIndexAdd records a holder for an item.
func (p *Peer) handleIndexAdd(m indexAdd) {
	if p.Role != TPeer {
		// A stale announcement to a demoted peer; re-point it.
		if p.tpeer.Valid() && p.tpeer.Addr != p.Addr {
			p.send(p.tpeer.Addr, m)
		}
		return
	}
	p.ensureIndex()
	p.index[m.DID] = m.Holder
}

// handleIndexRemove withdraws an index entry, but only if it still points at
// the withdrawing holder (a newer announcement wins).
func (p *Peer) handleIndexRemove(m indexRemove) {
	if p.index == nil {
		return
	}
	if cur, ok := p.index[m.DID]; ok && cur.Addr == m.Holder.Addr {
		delete(p.index, m.DID)
	}
}

// resolveFromIndex answers a tracker-mode lookup at the t-peer: consult the
// index and either dispatch a direct fetch to the holder or fail fast.
func (p *Peer) resolveFromIndex(m lookupReq) {
	if it, ok := p.findLocal(m.DID); ok {
		p.answer(m.Origin, m.QID, it, m.Hops+1)
		return
	}
	holder, ok := Ref{}, false
	if p.index != nil {
		holder, ok = p.index[m.DID]
	}
	if !ok {
		p.send(m.Origin.Addr, notFoundMsg{QID: m.QID, Hops: m.Hops + 1})
		return
	}
	p.send(holder.Addr, fetchReq{QID: m.QID, DID: m.DID, Origin: m.Origin, Hops: m.Hops + 1})
}

// handleFetch delivers the item directly to the requester ("the data item
// is delivered between the two peers directly").
func (p *Peer) handleFetch(m fetchReq) {
	p.sys.contact(m.QID)
	if it, ok := p.findLocal(m.DID); ok {
		p.answer(m.Origin, m.QID, it, m.Hops+1)
		return
	}
	// Stale index entry: the item moved or was lost with a crash.
	p.send(m.Origin.Addr, notFoundMsg{QID: m.QID, Hops: m.Hops + 1})
}

// IndexSize returns the tracker index size (t-peers in tracker mode).
func (p *Peer) IndexSize() int { return len(p.index) }

package core

import (
	"repro/internal/runtime"
)

// handleSJoinReq walks a joining s-peer down the tree until it lands on a
// peer with spare degree (§3.2.2). The walk starts at the s-network's t-peer
// and picks a random branch at every full peer, so the resulting topology is
// a tree with maximum degree δ. FCFS concurrency falls out of the engine's
// run-to-completion event processing: the first request to arrive takes the
// last slot and later ones walk on.
func (p *Peer) handleSJoinReq(m sJoinReq) {
	if m.Joiner.Addr == p.Addr || m.Hops > routeHopLimit {
		// A rejoin walk that reaches the joiner itself descended through a
		// stale child edge into the joiner's own subtree; accepting would
		// make the peer its own ancestor. Dropping the walk is safe — the
		// rejoin retry goes through the server.
		return
	}
	if p.acceptChild() {
		joiner := Ref{ID: p.ID, Addr: m.Joiner.Addr}
		p.addChild(joiner)
		p.watch(joiner.Addr)
		root := p.tpeer
		if p.Role == TPeer {
			root = p.Ref()
		}
		p.send(m.Joiner.Addr, sJoinAck{
			CP:    p.Ref(),
			TPeer: root,
			ID:    p.ID,
			Epoch: m.Epoch,
			Hops:  m.Hops,
		})
		if !m.Rejoin {
			p.send(p.sys.serverAddr, sRegister{TPeer: root})
		}
		return
	}
	// Degree (or link usage) exhausted: pass the request down a random
	// branch — but never into the joiner itself (a rejoining subtree root
	// may still be listed as a stale child somewhere; descending through it
	// would attach the root beneath its own subtree).
	eligible := len(p.children)
	if p.childIndex(m.Joiner.Addr) >= 0 {
		eligible--
	}
	if eligible == 0 {
		// δ < 2 would make trees impossible; Validate prevents it, so a
		// full peer always has a live branch unless the only one is the
		// joiner — then the walk dies and the rejoin retry covers it.
		return
	}
	// Draw among the eligible children (same address order, same draw as
	// the old filtered-copy code) and step to the picked one.
	pick := p.sys.rt.Rand().Intn(eligible)
	var next Ref
	for i := range p.children {
		if p.children[i].Ref.Addr == m.Joiner.Addr {
			continue
		}
		if pick == 0 {
			next = p.children[i].Ref
			break
		}
		pick--
	}
	m.Hops++
	p.send(next.Addr, m)
}

// acceptChild applies the degree constraint and, with link heterogeneity on,
// the link-usage gate from §5.1: a connect point only accepts when
// degree/capacity stays under the threshold.
func (p *Peer) acceptChild() bool {
	if p.Degree() >= p.sys.Cfg.Delta {
		return false
	}
	if p.sys.Cfg.Heterogeneity {
		usage := float64(p.Degree()+1) / p.Capacity
		if usage > p.sys.Cfg.MaxLinkUsage {
			return len(p.children) == 0 // never strand the walk at a leaf
		}
	}
	return true
}

// handleSJoinAck finalizes an s-peer's membership: it records its connect
// point, its s-network's t-peer, and adopts the s-network's p_id ("the p_id
// of the s-peer is the same as its neighbor").
func (p *Peer) handleSJoinAck(from runtime.Addr, m sJoinAck) {
	if m.Epoch != p.joinEpoch {
		return // handshake of an abandoned join attempt
	}
	if p.cp.Valid() {
		return // duplicate ack from a retried join
	}
	if m.CP.Addr == p.Addr {
		return // self-offer from a forked walk; wait for a real parent
	}
	p.Role = SPeer
	p.ID = m.ID
	p.cp = m.CP
	p.tpeer = m.TPeer
	p.segLo = m.ID // refined by HELLO piggyback and lookups
	p.watch(m.CP.Addr)
	p.sys.stats.SJoins++
	p.completeJoin(m.Hops)
}

// leaveSPeer departs gracefully: neighbors are notified, the stored load is
// transferred to a neighbor, and children rejoin through the t-peer.
func (p *Peer) leaveSPeer() {
	p.leaving = true
	p.sys.stats.SLeaves++
	nbs := p.neighbors()
	for _, nb := range nbs {
		p.send(nb.Addr, sLeaveMsg{})
	}
	if len(p.data) > 0 && len(nbs) > 0 {
		// "The leaving s-peer should also choose a neighbor to transfer
		// the load to."
		target := nbs[p.sys.rt.Rand().Intn(len(nbs))]
		items := make([]Item, 0, len(p.data))
		for _, it := range p.data {
			items = append(items, it)
		}
		sortItemsByDID(items)
		p.sendData(target.Addr, len(items), itemsMsg{Items: items})
	}
	if p.tpeer.Valid() {
		p.send(p.sys.serverAddr, sUnregister{TPeer: p.tpeer})
	}
	p.stop()
}

// handleSLeave reacts to a neighbor's graceful departure: parents drop the
// child; children whose connect point left rejoin through the t-peer.
func (p *Peer) handleSLeave(from runtime.Addr) {
	if p.removeChild(from) {
		p.unwatch(from)
		return
	}
	if p.Role == SPeer && p.cp.Addr == from {
		p.unwatch(from)
		p.rejoin()
	}
}

// rejoin re-attaches this s-peer (with its intact subtree) to its s-network
// after its connect point left or crashed: "the neighbor whose cp is the
// leaving peer should rejoin the s-network by sending a join request to the
// t-peer again."
func (p *Peer) rejoin() {
	p.cp = NilRef
	p.sys.stats.Rejoins++
	if !p.tpeer.Valid() {
		p.rejoinViaServer()
		return
	}
	p.send(p.tpeer.Addr, sJoinReq{Joiner: Ref{Addr: p.Addr}, Rejoin: true, Epoch: p.joinEpoch, Hops: 1})
	// If the t-peer is also gone the request vanishes; the watchdog on
	// nothing won't fire, so arm a retry through the server.
	addr := p.Addr
	p.sys.rt.Schedule(p.sys.Cfg.HelloTimeout, func() {
		pp := p.sys.peerAt(addr)
		if pp == nil || !pp.alive || pp.cp.Valid() || pp.Role != SPeer {
			return
		}
		pp.rejoinViaServer()
	})
}

// rejoinViaServer asks the server for a fresh s-network when the local
// t-peer is unreachable.
func (p *Peer) rejoinViaServer() {
	req := serverJoinReq{
		Capacity:  p.Capacity,
		Interest:  p.Interest,
		Host:      p.Host,
		ForceRole: int8(SPeer),
	}
	if p.sys.Cfg.TopologyAware {
		req.Coord = p.sys.landmarkCoord(p.Host)
	}
	// Re-enter the join state machine: the completed-join guard must not
	// swallow the server's response, and the fresh ack must be accepted.
	// The retry timer covers a lost request or response.
	p.cp = NilRef
	p.joined = false
	p.joinStart = p.sys.rt.Now()
	p.joinReq = req
	p.armJoinTimer()
	p.send(p.sys.serverAddr, req)
}

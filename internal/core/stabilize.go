package core

// Ring stabilization: a Chord-style safety net for the t-network. The
// eager join/leave triangles of §3.3 keep the ring consistent on their own
// when every participant survives the handshake, but under heavy churn a
// triangle's counterparty can crash mid-protocol and leave a joiner
// half-inserted: its own pointers are right, yet nobody points back at it.
// The t-network therefore runs the classic stabilize/notify pair
// (piggybacked on the finger-refresh tick) that the paper inherits from
// Chord ("the t-network ... organizes peers into a ring similar to a chord
// ring"): ask the successor for its predecessor, adopt a closer successor if
// one appeared, and notify the successor so it can adopt us as predecessor.

import (
	"repro/internal/idspace"
	"repro/internal/runtime"
)

type (
	// ringStabQ asks the successor for its current predecessor.
	ringStabQ struct{}
	// ringStabA is the answer; it also carries the answerer's successor so
	// the asker learns its successor's successor (a one-deep successor
	// list used as a routing fallback while a crashed successor awaits
	// repair).
	ringStabA struct{ Pred, Succ Ref }
	// ringNotify proposes the sender as the receiver's predecessor.
	ringNotify struct{ Cand Ref }
)

// stabilizeRing runs one stabilization round; it is invoked from the finger
// refresh ticker so it shares that cadence.
func (p *Peer) stabilizeRing() {
	if p.Role != TPeer || p.joining || p.leaving {
		return
	}
	if !p.succ.Valid() || p.succ.Addr == p.Addr {
		return
	}
	p.send(p.succ.Addr, ringStabQ{})
}

// handleRingStabA adopts a closer successor if the current successor knows
// one, then notifies the (possibly new) successor.
func (p *Peer) handleRingStabA(from runtime.Addr, m ringStabA) {
	if p.Role != TPeer || p.joining || p.leaving {
		return
	}
	if from != p.succ.Addr {
		return // stale answer from a replaced successor
	}
	p.succ2 = m.Succ
	if m.Pred.Valid() && m.Pred.Addr != p.Addr &&
		idspace.StrictBetween(p.ID, m.Pred.ID, p.succ.ID) {
		p.succ = m.Pred
		p.watch(m.Pred.Addr)
		// Cascade: re-probe the adopted successor right away instead of
		// waiting a full tick, so a long dangling chain reconnects in one
		// round trip per hop rather than one tick per hop. Each adoption
		// strictly shrinks the successor arc, so the cascade terminates.
		p.send(p.succ.Addr, ringStabQ{})
	}
	if p.succ.Valid() && p.succ.Addr != p.Addr {
		p.send(p.succ.Addr, ringNotify{Cand: p.Ref()})
	}
}

// handleRingNotify adopts the candidate as predecessor when it sits between
// the current predecessor and us, handing over the slice of our segment it
// now owns — the same load transfer a triangle insertion performs.
func (p *Peer) handleRingNotify(m ringNotify) {
	if p.Role != TPeer || m.Cand.Addr == p.Addr {
		return
	}
	if p.pred.Valid() && p.pred.Addr != p.Addr &&
		!idspace.StrictBetween(p.pred.ID, m.Cand.ID, p.ID) {
		return
	}
	oldPred := p.pred
	if oldPred.Addr == m.Cand.Addr {
		return // already our predecessor
	}
	p.pred = m.Cand
	p.segLo = m.Cand.ID
	p.watch(m.Cand.Addr)
	lo := oldPred.ID
	if !oldPred.Valid() {
		lo = p.ID
	}
	p.handleLoadTransfer(p.Addr, loadTransferReq{
		Lo: lo, Hi: m.Cand.ID, Target: m.Cand, TTL: 1 << 20,
	})
}

package core

import (
	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Lookup resolves a key (§3.4). The operation checks the local database,
// then floods the local s-network if the key belongs to it; otherwise the
// request climbs to the t-peer, rides the ring to the owning segment and is
// flooded (or tracker-resolved) there. done receives the outcome, including
// hop count, latency and the number of peers contacted.
func (p *Peer) Lookup(key string, done func(OpResult)) {
	p.LookupWithTTL(key, 0, done)
}

// LookupWithTTL is Lookup with an explicit flood radius; ttl <= 0 uses the
// configured default. The experiment harness sweeps TTL per lookup so one
// built system serves several TTL settings.
func (p *Peer) LookupWithTTL(key string, ttl int, done func(OpResult)) {
	o, qid := p.newOp("lookup", key, done)
	if ttl > 0 {
		o.ttl = ttl
	}
	if it, ok := p.findLocal(o.did); ok {
		p.finishOp(qid, OpResult{OK: true, Value: it.Value, Hops: 0, Holder: p.Ref()})
		return
	}
	if p.sys.Cfg.ReplicationK > 1 && p.Role == TPeer {
		// The authoritative copy answers spread items whose bytes live on an
		// s-peer below; a held replica answers when the owner's route is
		// suspected dead (with read-repair toward the segment's new owner).
		if it, ok := p.owned[o.did]; ok {
			p.sys.stats.ReplicaServes++
			p.finishOp(qid, OpResult{OK: true, Value: it.Value, Hops: 0, Holder: p.Ref()})
			return
		}
		if it, ok := p.replicaFallback(o.did, o.sid); ok {
			p.finishOp(qid, OpResult{OK: true, Value: it.Value, Hops: 0, Holder: p.Ref()})
			return
		}
	}
	if p.inLocalSegment(o.sid) {
		p.lookupLocal(o, qid)
		return
	}
	p.lookupRemote(o, qid)
}

// lookupLocal searches the peer's own s-network.
func (p *Peer) lookupLocal(o *op, qid uint64) {
	if p.sys.Cfg.TrackerMode {
		// "A data lookup request is sent to the t-peer directly."
		if p.Role == TPeer {
			p.resolveFromIndex(lookupReq{QID: qid, DID: o.did, SID: o.sid, Origin: p.Ref(), TTL: o.ttl, Hops: 0})
			return
		}
		if p.tpeer.Valid() {
			p.send(p.tpeer.Addr, lookupReq{QID: qid, DID: o.did, SID: o.sid, Origin: p.Ref(), TTL: o.ttl, Hops: 1})
		}
		return
	}
	if p.numNeighbors() == 0 {
		// Nobody to flood to: the item cannot exist elsewhere locally.
		p.finishOp(qid, OpResult{OK: false})
		return
	}
	if p.sys.Cfg.RandomWalk {
		p.startWalks(qid, o.did, p.Ref())
		return
	}
	p.floodOut(qid, o.did, o.ttl, p.Ref())
}

// lookupRemote routes a lookup toward a different s-network, taking a
// bypass link when one covers the segment (§5.4). Per §3.1 — "the query
// message is first flooded within the same s-network; in the meanwhile, it
// is forwarded to other s-networks through the t-network" — the local
// s-network is searched in parallel, which lets spread or cached copies
// answer without a ring round-trip.
func (p *Peer) lookupRemote(o *op, qid uint64) {
	if !p.sys.Cfg.TrackerMode && p.numNeighbors() > 0 {
		o.localFlood = true
		if p.sys.Cfg.RandomWalk {
			p.startWalks(qid, o.did, p.Ref())
		} else {
			p.floodOut(qid, o.did, o.ttl, p.Ref())
		}
	}
	m := lookupReq{QID: qid, DID: o.did, SID: o.sid, Origin: p.Ref(), TTL: o.ttl, Hops: 1}
	if p.sys.Cfg.Bypass {
		if link := p.bypassFor(o.sid); link != nil {
			o.probes = 1
			p.sys.stats.BypassUses++
			p.sys.trace(obs.EvLookupForward, qid, p.Addr, link.peer.Addr, 1, "bypass")
			p.send(link.peer.Addr, m)
			return
		}
	}
	alpha := p.sys.Cfg.LookupAlpha
	if p.sys.Cfg.PathCache {
		if holder, ok := p.pathHint(o.did); ok {
			// Probe the hinted holder directly. Under α>1 the remaining
			// probes still ride the ring, so a stale hint costs nothing:
			// either path may answer first.
			o.hinted = true
			o.probes = 1
			p.sys.stats.PathHintUses++
			if p.sys.met != nil {
				p.sys.met.hintUses.Inc()
			}
			p.sys.trace(obs.EvLookupForward, qid, p.Addr, holder.Addr, 1, "hint")
			hm := m
			hm.Hinted = true
			p.send(holder.Addr, hm)
			if alpha > 1 {
				o.probes += p.sendRingProbes(o.sid, m, alpha-1)
			}
			return
		}
	}
	if alpha > 1 {
		if n := p.sendRingProbes(o.sid, m, alpha); n > 0 {
			o.probes = n
			return
		}
		// Nowhere to fan out (lone t-peer, detached s-peer): fall through to
		// the single-probe path so behavior matches α=1 exactly.
	}
	o.probes = 1
	p.sys.trace(obs.EvLookupForward, qid, p.Addr, runtime.None, 1, "ring")
	p.forwardTowardSegment(o.sid, m, runtime.None)
}

// floodOut starts (or restarts) a flood of the local s-network from this
// peer: the query travels every tree edge away from the entry point, so
// each peer of the s-network receives it exactly once within the TTL.
func (p *Peer) floodOut(qid uint64, did idspace.ID, ttl int, origin Ref) {
	// One interface boxing for the whole fan-out instead of one per edge.
	var m any = floodReq{QID: qid, DID: did, Origin: origin, TTL: ttl, Hops: 1}
	p.forEachNeighbor(func(nb Ref) {
		p.sys.stats.FloodsSent++
		p.send(nb.Addr, m)
	})
}

// handleLookupReq advances a routed lookup one step: toward the owning
// segment while remote, into a flood (or tracker resolution) on arrival.
func (p *Peer) handleLookupReq(from runtime.Addr, m lookupReq) {
	if m.Hops > routeHopLimit {
		return // looping route; the op timer fails the lookup
	}
	p.sys.contact(m.QID)
	p.sys.trace(obs.EvLookupHop, m.QID, from, p.Addr, m.Hops, "route")
	p.maybeAck(from)
	if it, ok := p.findLocal(m.DID); ok {
		p.answer(m.Origin, m.QID, it, m.Hops+1)
		return
	}
	wasHinted := m.Hinted
	if wasHinted {
		// This peer was probed straight off a path-cache hint but no longer
		// has the item: bounce the stale hint back to whoever used it, then
		// continue as a normal routed lookup — one extra hop, not a failure.
		m.Hinted = false
		p.send(from, hintDrop{DID: m.DID})
	}
	if !p.inLocalSegment(m.SID) {
		if it, ok := p.replicaFallback(m.DID, m.SID); ok {
			// Forwarding would route into a suspected crash: serve the local
			// replica and let read-repair re-home the item.
			p.answer(m.Origin, m.QID, it, m.Hops+1)
			return
		}
		if p.sys.Cfg.PathCache && p.Role == TPeer && !wasHinted {
			// Mid-route shortcut: a hint deposited here by an earlier reply
			// sends the request straight at the holder. wasHinted guards the
			// two-peer ping-pong where each end hints at the other.
			if holder, ok := p.pathHint(m.DID); ok && holder.Addr != from && holder.Addr != m.Origin.Addr {
				p.sys.stats.PathHintUses++
				if p.sys.met != nil {
					p.sys.met.hintUses.Inc()
				}
				m.Hinted = true
				m.Probe = 0
				m.Hops++
				p.sys.trace(obs.EvLookupForward, m.QID, p.Addr, holder.Addr, m.Hops, "hint")
				p.send(holder.Addr, m)
				return
			}
		}
		m.Hops++
		if m.Probe > 0 && p.Role == TPeer {
			// α-divergence point: the first t-peer under an s-peer origin
			// spreads the indexed probes across distinct candidate hops.
			p.forwardProbe(m, from)
			return
		}
		p.forwardTowardSegment(m.SID, m, from)
		return
	}
	// The request reached the owning s-network.
	if p.sys.Cfg.ReplicationK > 1 && p.Role == TPeer {
		// The owner's authoritative copy covers spread items; a replica not
		// yet promoted after a takeover still answers (the sweep promotes it
		// on the next tick).
		if it, ok := p.owned[m.DID]; ok {
			p.sys.stats.ReplicaServes++
			p.answer(m.Origin, m.QID, it, m.Hops+1)
			return
		}
		if e, ok := p.reps[m.DID]; ok {
			p.sys.stats.ReplicaServes++
			p.answer(m.Origin, m.QID, e.it, m.Hops+1)
			return
		}
	}
	if p.sys.Cfg.TrackerMode {
		if p.Role == TPeer {
			p.resolveFromIndex(m)
		} else if p.tpeer.Valid() {
			m.Hops++
			p.send(p.tpeer.Addr, m)
		}
		return
	}
	if p.sys.Cfg.RandomWalk {
		p.startWalks(m.QID, m.DID, m.Origin)
		return
	}
	// Flood away from where the request came from; for requests arriving
	// off-tree (ring hop or bypass link) every tree edge qualifies.
	targets := p.numNeighbors()
	if p.Role == SPeer && p.cp.Valid() && p.cp.Addr == from {
		targets--
	} else if p.childIndex(from) >= 0 {
		targets--
	}
	if targets == 0 {
		// Owning peer with no s-network and no local copy: definitive miss.
		p.send(m.Origin.Addr, notFoundMsg{QID: m.QID, Hops: m.Hops + 1})
		return
	}
	ttl := m.TTL
	if ttl <= 0 {
		ttl = p.sys.Cfg.TTL
	}
	var fm any = floodReq{QID: m.QID, DID: m.DID, Origin: m.Origin, TTL: ttl, Hops: m.Hops + 1}
	p.forEachNeighbor(func(nb Ref) {
		if nb.Addr != from {
			p.sys.stats.FloodsSent++
			p.send(nb.Addr, fm)
		}
	})
}

// handleFlood processes one hop of an s-network flood: check the database,
// answer on a hit, otherwise keep flooding away from the sender while TTL
// lasts. The tree topology guarantees each peer sees the query once, so no
// duplicate-suppression state is needed (§3.2.2).
func (p *Peer) handleFlood(from runtime.Addr, m floodReq) {
	p.sys.contact(m.QID)
	p.sys.trace(obs.EvLookupHop, m.QID, from, p.Addr, m.Hops, "flood")
	p.maybeAck(from)
	if it, ok := p.findLocal(m.DID); ok {
		// "The peer will stop flooding and send the data item to the
		// peer requesting the data item directly."
		p.answer(m.Origin, m.QID, it, m.Hops+1)
		return
	}
	if m.TTL <= 1 {
		return
	}
	m.TTL--
	m.Hops++
	var fwd any = m
	p.forEachNeighbor(func(nb Ref) {
		if nb.Addr != from {
			p.sys.stats.FloodsSent++
			p.send(nb.Addr, fwd)
		}
	})
}

// handleFound closes a successful lookup and creates a bypass link when the
// holder lives in a different s-network (§5.4, rule 3). With caching on, the
// requester keeps a surrogate copy, so its s-network's parallel local floods
// can answer the next request for the same item nearby.
func (p *Peer) handleFound(m foundMsg) {
	if p.sys.Cfg.Bypass && m.Holder.ID != p.ID {
		p.addBypass(m.Holder, m.HolderSegLo)
	}
	if p.sys.Cfg.Caching && m.Holder.Addr != p.Addr {
		p.handleCacheAdd(cacheAdd{Item: m.Item})
	}
	if p.sys.Cfg.PathCache && m.Holder.Addr != p.Addr {
		if o, ok := p.pending[m.QID]; ok && !p.inLocalSegment(o.sid) {
			// Deposit the route here and at the ring entry point, so both
			// this peer's next lookup and the whole s-network's shortcut.
			p.addHint(m.Item.DID, m.Holder)
			if p.Role == SPeer && p.tpeer.Valid() && p.tpeer.Addr != m.Holder.Addr {
				p.send(p.tpeer.Addr, routeHint{DID: m.Item.DID, Holder: m.Holder})
			}
		}
	}
	p.finishOp(m.QID, OpResult{OK: true, Value: m.Item.Value, Hops: m.Hops, Holder: m.Holder})
}

// handleNotFound fails a lookup fast on a definitive miss — unless probes
// are still outstanding (α>1: first success wins, so one probe's miss only
// decrements the count) or the lookup also flooded the local s-network in
// parallel (§3.1). The ring's miss says nothing about spread or cached
// copies nearby, so in that case the miss is recorded and the op concludes
// through foundMsg or its timer.
func (p *Peer) handleNotFound(m notFoundMsg) {
	if o, ok := p.pending[m.QID]; ok {
		if o.probes > 1 {
			o.probes--
			return
		}
		if o.localFlood {
			o.ringMiss = true
			return
		}
	}
	p.finishOp(m.QID, OpResult{OK: false, Hops: m.Hops})
}

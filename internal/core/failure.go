package core

import (
	"repro/internal/sim"
	"repro/internal/simnet"
)

// neighborTimeout fires when a monitored neighbor produced neither a HELLO
// nor an acknowledgment within the timeout: the neighbor is presumed
// crashed (§3.2.2) and recovery depends on who it was.
func (p *Peer) neighborTimeout(nb simnet.Addr) {
	if !p.alive {
		return
	}
	p.sys.stats.WatchdogExpiries++
	tracef("t=%v TIMEOUT at=%d nb=%d role=%v pred=%d succ=%d cp=%d", p.sys.Eng.Now(), p.Addr, nb, p.Role, p.pred.Addr, p.succ.Addr, p.cp.Addr)
	p.unwatch(nb)

	// A crashed child: drop it from the tree. Its own subtree re-attaches
	// itself when the grandchildren's watchdogs fire.
	if child, ok := p.children[nb]; ok {
		delete(p.children, nb)
		root := p.tpeer
		if p.Role == TPeer {
			root = p.Ref()
		}
		if root.Valid() {
			p.send(ServerAddr, sUnregister{TPeer: root})
		}
		_ = child
		return
	}

	if p.Role == SPeer && p.cp.Addr == nb {
		if p.tpeer.Addr == nb {
			// Our connect point was the t-peer itself: compete to
			// replace it (§3.2.1).
			p.send(ServerAddr, replaceReq{Crashed: p.tpeer, Self: p.Ref()})
			return
		}
		// An interior tree peer crashed; rejoin through the t-peer.
		p.rejoin()
		return
	}

	if p.Role == TPeer {
		// A ring neighbor went silent. Report it; the server patches an
		// empty-s-network crash directly and otherwise lets the dead
		// peer's s-network drive the replacement.
		var crashed Ref
		switch nb {
		case p.pred.Addr:
			crashed = p.pred
			// Clear the dead predecessor so ring stabilization can
			// adopt the next live candidate that notifies us. The
			// segment bound (segLo) is kept until a real predecessor
			// appears.
			p.pred = NilRef
		case p.succ.Addr:
			crashed = p.succ
		default:
			return
		}
		p.send(ServerAddr, ringDeadReq{Crashed: crashed, Self: p.Ref()})
		// Keep watching: if recovery stalls we report again.
		p.watch(nb)
	}
}

// handleRingRepair swaps whichever of this peer's ring pointers still names
// the crashed peer for the registry's current neighbor.
func (p *Peer) handleRingRepair(m ringRepair) {
	if p.Role != TPeer {
		return
	}
	if p.succ.Addr == m.Crashed.Addr && m.Succ.Valid() && m.Succ.Addr != m.Crashed.Addr {
		p.succ = m.Succ
		if m.Succ.Addr != p.Addr {
			p.watch(m.Succ.Addr)
		}
	}
	if p.pred.Addr == m.Crashed.Addr && m.Pred.Valid() && m.Pred.Addr != m.Crashed.Addr {
		p.pred = m.Pred
		p.segLo = m.Pred.ID
		if m.Pred.Addr != p.Addr {
			p.watch(m.Pred.Addr)
		}
	}
	for i := range p.finger {
		if p.finger[i].Addr == m.Crashed.Addr {
			p.finger[i] = m.Succ
		}
	}
}

// handleReplaceResp concludes the server's crash arbitration: the winner is
// promoted into the crashed t-peer's ring position, the losers rejoin the
// s-network under the winner.
func (p *Peer) handleReplaceResp(m replaceResp) {
	if p.Role != SPeer {
		return // stale: already promoted or re-homed
	}
	if m.Promote {
		p.Role = TPeer
		oldAddr := p.tpeer
		p.ID = m.ID
		p.tpeer = p.Ref()
		p.cp = NilRef
		p.pred = m.Pred
		p.succ = m.Succ
		p.segLo = m.Pred.ID
		p.ensureFingers()
		for i := range p.finger {
			if !p.finger[i].Valid() || p.finger[i].Addr == oldAddr.Addr {
				p.finger[i] = m.Succ
			}
		}
		p.watch(m.Pred.Addr)
		p.watch(m.Succ.Addr)
		if p.fingerTicker == nil {
			p.fingerTicker = sim.NewTicker(p.sys.Eng, p.sys.Cfg.FingerRefreshEvery, p.refreshFingers)
			p.fingerTicker.Start()
		}
		// Swap the dead address out of every finger table on the ring.
		if p.succ.Valid() && p.succ.Addr != p.Addr {
			p.send(p.succ.Addr, substituteMsg{Old: oldAddr, New: p.Ref(), Origin: p.Addr})
		}
		if p.sys.Cfg.TrackerMode {
			p.ensureIndex()
			items := make([]Item, 0, len(p.data))
			for _, it := range p.data {
				items = append(items, it)
			}
			p.announceItems(items)
		}
		return
	}
	// Lost the race: rejoin under the replacement.
	if !m.NewT.Valid() {
		p.rejoinViaServer()
		return
	}
	p.cp = NilRef
	p.tpeer = m.NewT
	p.ID = m.NewT.ID
	p.sys.stats.Rejoins++
	p.send(m.NewT.Addr, sJoinReq{Joiner: Ref{Addr: p.Addr}, Rejoin: true, Epoch: p.joinEpoch, Hops: 1})
	// Guard against the replacement crashing too.
	addr := p.Addr
	p.sys.Eng.After(p.sys.Cfg.HelloTimeout, func() {
		pp := p.sys.peers[addr]
		if pp == nil || !pp.alive || pp.cp.Valid() || pp.Role != SPeer {
			return
		}
		pp.rejoinViaServer()
	})
}

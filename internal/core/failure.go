package core

import (
	"repro/internal/runtime"
)

// neighborTimeout fires when a monitored neighbor produced neither a HELLO
// nor an acknowledgment within the timeout: the neighbor is presumed
// crashed (§3.2.2) and recovery depends on who it was.
func (p *Peer) neighborTimeout(nb runtime.Addr) {
	if !p.alive {
		return
	}
	p.sys.stats.WatchdogExpiries++
	p.sys.tracef("t=%v TIMEOUT at=%d nb=%d role=%v pred=%d succ=%d cp=%d", p.sys.rt.Now(), p.Addr, nb, p.Role, p.pred.Addr, p.succ.Addr, p.cp.Addr)
	p.unwatch(nb)

	// A crashed child: drop it from the tree. Its own subtree re-attaches
	// itself when the grandchildren's watchdogs fire. The unregistration
	// covers the crashed peer only — the subtree stays counted because its
	// members stay in the s-network; any residual drift (a child that
	// crashed along with its parent, a grandchild that rejoined elsewhere)
	// is reconciled by the periodic absolute size sync (sSizeSync).
	if p.removeChild(nb) {
		root := p.tpeer
		if p.Role == TPeer {
			root = p.Ref()
		}
		if root.Valid() {
			p.send(p.sys.serverAddr, sUnregister{TPeer: root})
		}
		return
	}

	if p.Role == SPeer && p.cp.Addr == nb {
		if p.tpeer.Addr == nb {
			// Our connect point was the t-peer itself: compete to
			// replace it (§3.2.1).
			p.send(p.sys.serverAddr, replaceReq{Crashed: p.tpeer, Self: p.Ref()})
			p.armReplaceRetry(p.tpeer)
			return
		}
		// An interior tree peer crashed; rejoin through the t-peer.
		p.rejoin()
		return
	}

	if p.Role == TPeer {
		// A ring neighbor went silent. Report it; the server patches an
		// empty-s-network crash directly and otherwise lets the dead
		// peer's s-network drive the replacement.
		var crashed Ref
		switch nb {
		case p.pred.Addr:
			crashed = p.pred
			// Clear the dead predecessor so ring stabilization can
			// adopt the next live candidate that notifies us. The
			// segment bound (segLo) is kept until a real predecessor
			// appears.
			p.pred = NilRef
			p.markSuspect(nb)
		case p.succ.Addr:
			crashed = p.succ
			// The successor pointer is kept because the pending repair
			// messages (ringRepair, conditional pointerUpdate) match on
			// the stale value — but routing must stop forwarding into
			// the crash. Mark it suspect so segment routing detours via
			// the successor's successor until the repair lands.
			p.markSuspect(nb)
		default:
			// The watchdog re-armed on a crashed neighbor that a repair
			// has since replaced: it monitors nobody and the suspicion
			// is obsolete.
			delete(p.suspect, nb)
			return
		}
		p.send(p.sys.serverAddr, ringDeadReq{Crashed: crashed, Self: p.Ref()})
		// Keep watching: if recovery stalls we report again.
		p.watch(nb)
	}
}

// armReplaceRetry re-sends the crash-arbitration request if no outcome
// arrived within one detection window: the server's replaceResp travels the
// same lossy network as everything else, and an s-peer whose response is lost
// would otherwise keep a dead connect point forever. Re-asking is safe — the
// server is idempotent and steers late reporters to the winner.
func (p *Peer) armReplaceRetry(crashed Ref) {
	addr := p.Addr
	p.sys.rt.Schedule(p.sys.Cfg.HelloTimeout, func() {
		pp := p.sys.peerAt(addr)
		if pp == nil || !pp.alive || pp.Role != SPeer || pp.cp.Addr != crashed.Addr {
			return // arbitration concluded: promoted, re-homed, or gone
		}
		if pp.watching(crashed.Addr) {
			// The connect point is back under active monitoring: the
			// report was a false alarm (its HELLOs were lost) and the
			// server steered us back under the same t-peer, so the cp
			// address matches `crashed` even though arbitration is over.
			// Without this check the retry and the steer-back
			// re-attachment chase each other every detection window,
			// forever.
			return
		}
		pp.send(p.sys.serverAddr, replaceReq{Crashed: crashed, Self: pp.Ref()})
		pp.armReplaceRetry(crashed)
	})
}

// handleRingRepair swaps whichever of this peer's ring pointers still names
// the crashed peer for the registry's current neighbor.
func (p *Peer) handleRingRepair(m ringRepair) {
	if p.Role != TPeer {
		return
	}
	if p.succ.Addr == m.Crashed.Addr && m.Succ.Valid() && m.Succ.Addr != m.Crashed.Addr {
		p.succ = m.Succ
		if m.Succ.Addr != p.Addr {
			p.watch(m.Succ.Addr)
		}
	}
	if p.pred.Addr == m.Crashed.Addr && m.Pred.Valid() && m.Pred.Addr != m.Crashed.Addr {
		p.pred = m.Pred
		p.segLo = m.Pred.ID
		if m.Pred.Addr != p.Addr {
			p.watch(m.Pred.Addr)
		}
	}
	for i := range p.finger {
		if p.finger[i].Addr == m.Crashed.Addr {
			p.finger[i] = m.Succ
		}
	}
}

// handleReplaceResp concludes the server's crash arbitration: the winner is
// promoted into the crashed t-peer's ring position, the losers rejoin the
// s-network under the winner.
func (p *Peer) handleReplaceResp(m replaceResp) {
	if p.Role != SPeer {
		return // stale: already promoted or re-homed
	}
	if m.Promote {
		p.Role = TPeer
		oldAddr := p.tpeer
		p.ID = m.ID
		p.tpeer = p.Ref()
		p.cp = NilRef
		p.pred = m.Pred
		p.succ = m.Succ
		p.segLo = m.Pred.ID
		p.ensureFingers()
		for i := range p.finger {
			if !p.finger[i].Valid() || p.finger[i].Addr == oldAddr.Addr {
				p.finger[i] = m.Succ
			}
		}
		p.watch(m.Pred.Addr)
		p.watch(m.Succ.Addr)
		if p.fingerTicker == nil {
			p.fingerTicker = runtime.NewTicker(p.sys.rt, p.sys.Cfg.FingerRefreshEvery, p.refreshFingers)
			p.fingerTicker.Start()
		}
		// Swap the dead address out of every finger table on the ring.
		if p.succ.Valid() && p.succ.Addr != p.Addr {
			p.send(p.succ.Addr, substituteMsg{Old: oldAddr, New: p.Ref(), Origin: p.Addr})
		}
		if p.sys.Cfg.TrackerMode {
			p.ensureIndex()
			items := make([]Item, 0, len(p.data))
			for _, it := range p.data {
				items = append(items, it)
			}
			sortItemsByDID(items)
			p.announceItems(items)
		}
		return
	}
	// Lost the race: rejoin under the replacement.
	if !m.NewT.Valid() {
		p.rejoinViaServer()
		return
	}
	if p.cp.Valid() && p.cp.Addr == m.NewT.Addr {
		if p.watching(p.cp.Addr) {
			// Stale or duplicate arbitration response — typically the
			// server's false-alarm steer-back racing a re-attachment that
			// already completed. We hang off the target through a
			// monitored connect point; tearing it down to rejoin the same
			// tree would reopen the no-connect-point window for nothing.
			return
		}
	}
	p.cp = NilRef
	p.tpeer = m.NewT
	p.ID = m.NewT.ID
	p.sys.stats.Rejoins++
	p.send(m.NewT.Addr, sJoinReq{Joiner: Ref{Addr: p.Addr}, Rejoin: true, Epoch: p.joinEpoch, Hops: 1})
	// Guard against the replacement crashing too.
	addr := p.Addr
	p.sys.rt.Schedule(p.sys.Cfg.HelloTimeout, func() {
		pp := p.sys.peerAt(addr)
		if pp == nil || !pp.alive || pp.cp.Valid() || pp.Role != SPeer {
			return
		}
		pp.rejoinViaServer()
	})
}

package core

// Partial / keyword search. §3.1 notes that exact-match lookup "is easy to
// extend ... to support more complex data lookup such as regular-expression-
// based data lookup", and §5.3 describes partial search scoped to an
// interest s-network. SearchPrefix implements that: the query floods an
// s-network matching keys by prefix, every match flows back to the origin,
// and the origin returns whatever arrived when its collection window closes
// (or as soon as MaxResults are in).
//
// In interest-based deployments a categorized prefix ("cat07/") routes to
// the s-network serving that category first, exactly as §5.3's "partial
// search first indicates a field of interest". Uncategorized prefixes search
// the origin's own s-network — best-effort, like any unstructured search.

import (
	"strings"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// searchReq floods a prefix query through an s-network tree. When HasSID is
// set the query is first routed along the t-network to the segment owning
// SID (the §5.3 "field of interest"), and only floods there.
type searchReq struct {
	QID    uint64
	Prefix string
	Origin Ref
	SID    idspace.ID
	HasSID bool
	TTL    int
	Hops   int
}

// searchHit returns matching items to the origin.
type searchHit struct {
	QID   uint64
	Items []Item
}

// SearchResult is the outcome of a prefix search.
type SearchResult struct {
	Prefix string
	Items  []Item
	// Contacts is the number of peers the search touched.
	Contacts int
	// Latency is the collection window actually spent.
	Latency runtime.Time
}

// searchOp collects hits until the window closes.
type searchOp struct {
	prefix  string
	qid     uint64
	start   runtime.Time
	items   []Item
	seen    map[string]bool
	max     int
	done    func(SearchResult)
	timer   runtime.Handle
	expired bool
}

// SearchPrefix floods a prefix query and calls done with every match
// collected within the window. window <= 0 uses half the lookup timeout;
// maxResults <= 0 collects without bound until the window closes.
func (p *Peer) SearchPrefix(prefix string, maxResults int, window runtime.Time, done func(SearchResult)) {
	if window <= 0 {
		window = p.sys.Cfg.LookupTimeout / 2
	}
	qid := p.sys.newQID()
	op := &searchOp{
		prefix: prefix,
		qid:    qid,
		start:  p.sys.rt.Now(),
		seen:   make(map[string]bool),
		max:    maxResults,
		done:   done,
	}
	if p.searches == nil {
		p.searches = make(map[uint64]*searchOp)
	}
	p.searches[qid] = op
	op.timer = p.sys.rt.Schedule(window, func() { p.finishSearch(qid) })

	// Local matches count immediately. Sorted first: collection dedups by
	// key and cuts off at maxResults, so map iteration order would decide
	// which items win.
	local := make([]Item, 0, len(p.data))
	for _, it := range p.data {
		local = append(local, it)
	}
	sortItemsByDID(local)
	for _, it := range local {
		p.collectSearchHit(op, it)
	}

	ttl := p.sys.Cfg.TTL + 2 // searches want coverage over latency
	sid, routed := p.searchTarget(prefix)
	if routed && !p.inLocalSegment(sid) {
		m := searchReq{QID: qid, Prefix: prefix, Origin: p.Ref(), SID: sid, HasSID: true, TTL: ttl, Hops: 1}
		p.forwardTowardSegment(sid, m, runtime.None)
		return
	}
	m := searchReq{QID: qid, Prefix: prefix, Origin: p.Ref(), TTL: ttl, Hops: 1}
	for _, nb := range p.neighbors() {
		p.sys.stats.SearchesSent++
		p.send(nb.Addr, m)
	}
}

// searchTarget maps a categorized prefix to the serving s-network.
func (p *Peer) searchTarget(prefix string) (sid idspace.ID, routed bool) {
	if p.sys.Cfg.InterestCategories > 0 {
		if cat := CategoryOf(prefix); cat >= 0 {
			return CategoryID(cat), true
		}
	}
	return 0, false
}

// handleSearch answers matches and keeps flooding within the TTL. Arriving
// off-tree (via ring routing) it fans out over every tree edge; inside the
// tree it avoids the sender like any flood.
func (p *Peer) handleSearch(from runtime.Addr, m searchReq) {
	p.sys.contact(m.QID)
	p.maybeAck(from)
	if m.HasSID && !p.inLocalSegment(m.SID) {
		// Still in transit toward the field-of-interest segment.
		m.Hops++
		p.forwardTowardSegment(m.SID, m, from)
		return
	}
	if m.HasSID {
		// Arrived: from here on it is an ordinary tree flood.
		m.HasSID = false
	}
	var matches []Item
	for _, it := range p.data {
		if strings.HasPrefix(it.Key, m.Prefix) {
			matches = append(matches, it)
		}
	}
	if len(matches) > 0 {
		sortItemsByDID(matches)
		p.served++
		p.sendData(m.Origin.Addr, len(matches), searchHit{QID: m.QID, Items: matches})
	}
	if m.TTL <= 1 {
		return
	}
	m.TTL--
	m.Hops++
	for _, nb := range p.neighbors() {
		if nb.Addr != from {
			p.sys.stats.SearchesSent++
			p.send(nb.Addr, m)
		}
	}
}

// handleSearchHit accumulates matches at the origin.
func (p *Peer) handleSearchHit(m searchHit) {
	op, ok := p.searches[m.QID]
	if !ok || op.expired {
		return
	}
	for _, it := range m.Items {
		p.collectSearchHit(op, it)
	}
}

// collectSearchHit deduplicates by key and closes the search early once
// maxResults are in.
func (p *Peer) collectSearchHit(op *searchOp, it Item) {
	if !strings.HasPrefix(it.Key, op.prefix) || op.seen[it.Key] {
		return
	}
	op.seen[it.Key] = true
	op.items = append(op.items, it)
	if op.max > 0 && len(op.items) >= op.max {
		p.finishSearch(op.qid)
	}
}

// finishSearch closes the collection window and reports.
func (p *Peer) finishSearch(qid uint64) {
	op, ok := p.searches[qid]
	if !ok || op.expired {
		return
	}
	op.expired = true
	delete(p.searches, qid)
	p.sys.rt.Unschedule(op.timer)
	res := SearchResult{
		Prefix:   op.prefix,
		Items:    op.items,
		Contacts: p.sys.takeContacts(qid),
		Latency:  p.sys.rt.Now() - op.start,
	}
	if op.done != nil {
		op.done(res)
	}
}

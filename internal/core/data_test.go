package core

import (
	"fmt"
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

// ownerOf returns the live t-peer owning an id, per the actual ring.
func ownerOf(sys *System, id idspace.ID) *Peer {
	for _, tp := range sys.TPeers() {
		if !tp.pred.Valid() {
			return tp
		}
		if idspace.Between(tp.pred.ID, id, tp.ID) {
			return tp
		}
	}
	return nil
}

// snetOf returns the root of the s-network a peer belongs to.
func snetOf(sys *System, p *Peer) *Peer {
	cur := p
	for cur != nil && cur.Role == SPeer {
		cur = sys.Peer(cur.cp.Addr)
	}
	return cur
}

func TestStoreLocalWhenSegmentMatches(t *testing.T) {
	sys := newTestSystem(t, 40, func(c *Config) { c.Ps = 0.5 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	// Find a (peer, key) pair where the key falls into the peer's own
	// segment; the store must complete with zero hops and stay local.
	for _, p := range sys.Peers() {
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("local-probe-%d", i)
			if p.inLocalSegment(p.segmentID(key)) {
				r, err := sys.StoreSync(p, key, "v")
				if err != nil || !r.OK {
					t.Fatalf("local store failed: %+v %v", r, err)
				}
				if r.Hops != 0 {
					t.Fatalf("local store took %d hops", r.Hops)
				}
				if !p.HasItem(key) {
					t.Fatal("local store left the peer")
				}
				return
			}
		}
	}
	t.Fatal("no local (peer, key) pair found")
}

func TestPlacementSchemeOneTargetsTPeer(t *testing.T) {
	sys := newTestSystem(t, 41, func(c *Config) {
		c.Ps = 0.7
		c.Placement = PlaceAtTPeer
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("s1-%03d", i)
		origin := peers[(i*7)%60]
		r, err := sys.StoreSync(origin, key, "v")
		if err != nil || !r.OK {
			t.Fatalf("store %s: %+v %v", key, r, err)
		}
		holder := sys.Peer(r.Holder.Addr)
		if holder == origin {
			continue // the key happened to be local
		}
		if holder.Role != TPeer {
			t.Fatalf("scheme 1 placed %s on an s-peer (%d)", key, holder.Addr)
		}
	}
}

func TestPlacementSchemeTwoSpreads(t *testing.T) {
	sys := newTestSystem(t, 42, func(c *Config) {
		c.Ps = 0.8
		c.Placement = PlaceSpread
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 80})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	sHolders := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("s2-%04d", i)
		r, err := sys.StoreSync(peers[(i*11)%80], key, "v")
		if err != nil || !r.OK {
			t.Fatalf("store %s: %+v %v", key, r, err)
		}
		if h := sys.Peer(r.Holder.Addr); h != nil && h.Role == SPeer {
			sHolders++
		}
	}
	if sHolders < 50 {
		t.Fatalf("scheme 2 placed only %d/300 items on s-peers", sHolders)
	}
}

func TestItemsLandInOwningSNetwork(t *testing.T) {
	// Property: wherever placement puts an item, the holder's s-network
	// root must be the ring owner of the item's segment id.
	sys := newTestSystem(t, 43, func(c *Config) { c.Ps = 0.7 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("seg-%04d", i)
		r, err := sys.StoreSync(peers[(i*13)%60], key, "v")
		if err != nil || !r.OK {
			t.Fatalf("store %s: %+v %v", key, r, err)
		}
		holder := sys.Peer(r.Holder.Addr)
		origin := peers[(i*13)%60]
		if holder == origin {
			continue // stored locally by the §3.4 local rule
		}
		root := snetOf(sys, holder)
		owner := ownerOf(sys, idspace.HashKey(key))
		if root == nil || owner == nil {
			t.Fatalf("key %s: root/owner missing", key)
		}
		if root.Addr != owner.Addr {
			t.Errorf("key %s landed in s-network %d, segment owner is %d", key, root.Addr, owner.Addr)
		}
	}
}

func TestLoadTransferOnJoin(t *testing.T) {
	// A new t-peer splits a segment: items in its half must move to it
	// (Table 1, suc.loadtransfer).
	sys := newTestSystem(t, 44, func(c *Config) {
		c.Ps = 0
		c.Placement = PlaceAtTPeer
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	// Fill the system with data.
	for i := 0; i < 300; i++ {
		if _, err := sys.StoreSync(peers[i%10], fmt.Sprintf("lt-%04d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.TotalItems()

	// Insert new t-peers and verify ownership remains exact.
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 10}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(20 * sim.Second)
	if got := sys.TotalItems(); got != before {
		t.Fatalf("items changed during load transfer: %d -> %d", before, got)
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("lt-%04d", i)
		did := idspace.HashKey(key)
		owner := ownerOf(sys, did)
		if owner == nil {
			t.Fatal("no owner")
		}
		if !owner.HasItem(key) {
			t.Errorf("item %s not at its owner after ring growth", key)
		}
	}
}

func TestStoreFromTPeerAndSPeer(t *testing.T) {
	sys := newTestSystem(t, 45, func(c *Config) { c.Ps = 0.5 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 40}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	tp := sys.TPeers()[0]
	sp := sys.SPeers()[0]
	for i, origin := range []*Peer{tp, sp} {
		r, err := sys.StoreSync(origin, fmt.Sprintf("origin-%d", i), "v")
		if err != nil || !r.OK {
			t.Fatalf("store from %v failed: %+v %v", origin.Role, r, err)
		}
	}
}

func TestStoreAckCarriesHops(t *testing.T) {
	sys := newTestSystem(t, 46, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 40})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	sawRemote := false
	for i := 0; i < 40 && !sawRemote; i++ {
		r, err := sys.StoreSync(peers[i], fmt.Sprintf("hop-%d", i), "v")
		if err != nil || !r.OK {
			t.Fatal(err)
		}
		if r.Holder.Addr != peers[i].Addr {
			sawRemote = true
			if r.Hops < 1 {
				t.Fatalf("remote store reported %d hops", r.Hops)
			}
			if r.Latency <= 0 {
				t.Fatal("remote store reported zero latency")
			}
		}
	}
	if !sawRemote {
		t.Fatal("all 40 stores were local; suspicious")
	}
}

func TestCategoryOf(t *testing.T) {
	cases := []struct {
		key  string
		want int
	}{
		{"cat03/item-000001", 3},
		{"cat12/x", 12},
		{"cat5/x", 5},
		{"cat/x", -1},
		{"catXY/x", -1},
		{"cat03", -1},
		{"dog01/x", -1},
		{"", -1},
	}
	for _, c := range cases {
		if got := CategoryOf(c.key); got != c.want {
			t.Errorf("CategoryOf(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestCategoryIDStable(t *testing.T) {
	if CategoryID(3) != CategoryID(3) {
		t.Fatal("CategoryID unstable")
	}
	if CategoryID(3) == CategoryID(4) {
		t.Fatal("category collision")
	}
}

func TestTotalItemsAndPerPeer(t *testing.T) {
	sys := newTestSystem(t, 47, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for i := 0; i < 50; i++ {
		if _, err := sys.StoreSync(peers[i%20], fmt.Sprintf("tc-%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if sys.TotalItems() != 50 {
		t.Fatalf("TotalItems = %d", sys.TotalItems())
	}
	per := sys.ItemsPerPeer()
	sum := 0
	for _, c := range per {
		sum += c
	}
	if sum != 50 || len(per) != 20 {
		t.Fatalf("ItemsPerPeer sums to %d over %d peers", sum, len(per))
	}
}

package core

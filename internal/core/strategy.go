package core

import (
	"fmt"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// MaxLookupAlpha bounds the α-parallel probe fan-out of a single lookup.
const MaxLookupAlpha = 8

// RouteStrategy is the seam between segment routing and the policy that
// picks the next ring hop(s) for a target id. The t-network's data plane
// (forwardTowardSegment, the α-parallel probe fan-out) asks the strategy for
// candidates; everything else — suspect bookkeeping, stats, the actual
// sends — stays in the protocol code, so a strategy is a pure hop-selection
// function over the peer's routing state.
//
// Strategies must be stateless (or share-nothing) values: one instance
// serves every peer of a System, including concurrently under the live
// runtimes.
type RouteStrategy interface {
	// Name identifies the strategy in CLI flags and docs.
	Name() string
	// NextHop picks the single best ring hop for a request targeting sid,
	// or an invalid/self Ref when there is nowhere to forward. This is the
	// hot path: it must not allocate.
	NextHop(p *Peer, sid idspace.ID) Ref
	// NextHops appends distinct live hop candidates for sid to dst, best
	// first, until len(dst) == max, and returns dst. Used by the
	// α-parallel probe fan-out; only called with max > 1.
	NextHops(p *Peer, sid idspace.ID, max int, dst []Ref) []Ref
}

// FingerWalk is the paper's default routing: the closest preceding finger
// (or the plain successor under Config.SuccessorRouting), with the
// suspect/succ2 detour when the chosen hop is presumed crashed. This is
// byte-for-byte the pre-seam behavior.
type FingerWalk struct{}

// Name implements RouteStrategy.
func (FingerWalk) Name() string { return "finger" }

// NextHop implements RouteStrategy.
func (FingerWalk) NextHop(p *Peer, sid idspace.ID) Ref {
	next := p.nextHopToward(sid)
	if len(p.suspect) != 0 && p.suspect[next.Addr] &&
		p.succ2.Valid() && p.succ2.Addr != p.Addr && !p.suspect[p.succ2.Addr] {
		// The chosen hop is suspected dead and its repair has not landed:
		// detour via the successor's successor learned from stabilization
		// instead of forwarding into the crash.
		next = p.succ2
	}
	return next
}

// NextHops implements RouteStrategy: the best hop first, then the remaining
// preceding fingers scanned from above, then the successor chain — every
// candidate distinct, live (not suspect) and strictly between this peer and
// the target, so α probes enter the ring on genuinely diverse paths.
func (s FingerWalk) NextHops(p *Peer, sid idspace.ID, max int, dst []Ref) []Ref {
	first := s.NextHop(p, sid)
	if !first.Valid() || first.Addr == p.Addr {
		return dst
	}
	dst = append(dst, first)
	for i := len(p.finger) - 1; i >= 0 && len(dst) < max; i-- {
		f := p.finger[i]
		if !f.Valid() || f.Addr == p.Addr || !idspace.StrictBetween(p.ID, f.ID, sid) {
			continue
		}
		if len(p.suspect) != 0 && p.suspect[f.Addr] {
			continue
		}
		if hopsContain(dst, f.Addr) {
			continue
		}
		dst = append(dst, f)
	}
	for _, c := range [2]Ref{p.succ, p.succ2} {
		if len(dst) >= max {
			break
		}
		if !c.Valid() || c.Addr == p.Addr || hopsContain(dst, c.Addr) {
			continue
		}
		if len(p.suspect) != 0 && p.suspect[c.Addr] {
			continue
		}
		dst = append(dst, c)
	}
	return dst
}

// SuccessorWalk routes every request along the immediate successor only, no
// finger acceleration: O(n) hops, but immune to stale finger tables. It is
// the strategy-seam equivalent of Config.SuccessorRouting and exists mainly
// to prove the seam admits more than one implementation.
type SuccessorWalk struct{}

// Name implements RouteStrategy.
func (SuccessorWalk) Name() string { return "succ" }

// NextHop implements RouteStrategy.
func (SuccessorWalk) NextHop(p *Peer, _ idspace.ID) Ref {
	next := p.succ
	if len(p.suspect) != 0 && p.suspect[next.Addr] &&
		p.succ2.Valid() && p.succ2.Addr != p.Addr && !p.suspect[p.succ2.Addr] {
		next = p.succ2
	}
	return next
}

// NextHops implements RouteStrategy: the successor chain is the only path,
// so at most succ and succ2 diverge.
func (s SuccessorWalk) NextHops(p *Peer, sid idspace.ID, max int, dst []Ref) []Ref {
	first := s.NextHop(p, sid)
	if !first.Valid() || first.Addr == p.Addr {
		return dst
	}
	dst = append(dst, first)
	if len(dst) < max && p.succ2.Valid() && p.succ2.Addr != p.Addr && !hopsContain(dst, p.succ2.Addr) {
		if len(p.suspect) == 0 || !p.suspect[p.succ2.Addr] {
			dst = append(dst, p.succ2)
		}
	}
	return dst
}

// hopsContain reports whether the candidate list already names the address.
// The list is at most MaxLookupAlpha long, so a linear scan wins.
func hopsContain(hops []Ref, a runtime.Addr) bool {
	for i := range hops {
		if hops[i].Addr == a {
			return true
		}
	}
	return false
}

// StrategyByName resolves a CLI strategy name.
func StrategyByName(name string) (RouteStrategy, error) {
	switch name {
	case "", "finger":
		return FingerWalk{}, nil
	case "succ", "successor":
		return SuccessorWalk{}, nil
	default:
		return nil, fmt.Errorf("core: unknown routing strategy %q (want finger or succ)", name)
	}
}

package core

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

func TestNoFalseCrashDetection(t *testing.T) {
	// A healthy system settling for a long time must not see watchdogs
	// expire: HELLOs keep every failure detector armed.
	sys := newTestSystem(t, 20, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(120 * sim.Second)
	if n := sys.Stats().WatchdogExpiries; n != 0 {
		t.Fatalf("%d watchdog expiries in a crash-free run", n)
	}
	if sys.Stats().HellosSent == 0 {
		t.Fatal("no heartbeats sent")
	}
}

func TestSPeerCrashSubtreeRejoins(t *testing.T) {
	sys := newTestSystem(t, 21, func(c *Config) {
		c.Ps = 0.85
		c.Delta = 2
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	var victim *Peer
	for _, sp := range sys.SPeers() {
		if len(sp.children) > 0 {
			victim = sp
			break
		}
	}
	if victim == nil {
		t.Fatal("no interior s-peer")
	}
	children := victim.Children()
	victim.Crash()
	// Detection takes a HELLO timeout; recovery a rejoin walk.
	sys.Settle(4 * sys.Cfg.HelloTimeout)

	for _, c := range children {
		cp := sys.Peer(c.Addr)
		if cp == nil || !cp.Alive() {
			t.Fatalf("child %d dead after parent crash", c.Addr)
		}
		if !cp.cp.Valid() || cp.cp.Addr == victim.Addr {
			t.Fatalf("child %d not re-attached (cp=%v)", c.Addr, cp.cp)
		}
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().WatchdogExpiries == 0 {
		t.Fatal("crash went undetected")
	}
}

func TestTPeerCrashPromotesSPeer(t *testing.T) {
	sys := newTestSystem(t, 22, func(c *Config) { c.Ps = 0.7 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	var victim *Peer
	for _, tp := range sys.TPeers() {
		if len(tp.children) > 0 {
			victim = tp
			break
		}
	}
	if victim == nil {
		t.Fatal("no t-peer with children")
	}
	id := victim.ID
	nT := len(sys.TPeers())
	victim.Crash()
	sys.Settle(5 * sys.Cfg.HelloTimeout)

	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	// The position survives: one of the s-peers was promoted with the
	// crashed peer's id.
	var substitute *Peer
	for _, tp := range sys.TPeers() {
		if tp.ID == id {
			substitute = tp
		}
	}
	if substitute == nil {
		t.Fatal("crashed ring position not taken over")
	}
	if got := len(sys.TPeers()); got != nT {
		t.Fatalf("t-peers = %d, want %d (replacement keeps the count)", got, nT)
	}
	if sys.Stats().Promotions == 0 {
		t.Fatal("no promotion recorded")
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
}

func TestTPeerCrashEmptySNetworkPatchesRing(t *testing.T) {
	sys := newTestSystem(t, 23, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	victim := peers[9]
	nT := len(sys.TPeers())
	victim.Crash()
	sys.Settle(6 * sys.Cfg.HelloTimeout)

	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.TPeers()); got != nT-1 {
		t.Fatalf("t-peers = %d, want %d (empty s-network: position folds away)", got, nT-1)
	}
}

func TestCrashedDataIsLost(t *testing.T) {
	sys := newTestSystem(t, 24, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 40})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	r, err := sys.StoreSync(peers[3], "precious", "v")
	if err != nil || !r.OK {
		t.Fatalf("store: %v %v", r, err)
	}
	holder := sys.Peer(r.Holder.Addr)
	holder.Crash()
	sys.Settle(6 * sys.Cfg.HelloTimeout)

	lr, err := sys.LookupSync(peers[7], "precious")
	if err != nil {
		t.Fatal(err)
	}
	if lr.OK {
		t.Fatal("item survived its holder's crash without replication")
	}
}

func TestMassCrashRecovery(t *testing.T) {
	sys := newTestSystem(t, 25, func(c *Config) { c.Ps = 0.7 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	// Crash 20% of all peers at once.
	for i := 0; i < 20; i++ {
		peers[i*5].Crash()
	}
	sys.Settle(10 * sys.Cfg.HelloTimeout)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if sys.NumPeers() != 80 {
		t.Fatalf("peers = %d, want 80", sys.NumPeers())
	}
	// The system still serves operations.
	r, err := sys.StoreSync(sys.Peers()[0], "after-storm", "v")
	if err != nil || !r.OK {
		t.Fatalf("store after mass crash: %+v %v", r, err)
	}
	lr, err := sys.LookupSync(sys.Peers()[10], "after-storm")
	if err != nil || !lr.OK {
		t.Fatalf("lookup after mass crash: %+v %v", lr, err)
	}
}

func TestAckSuppression(t *testing.T) {
	sys := newTestSystem(t, 26, func(c *Config) {
		c.Ps = 0.8
		c.SuppressTimeout = 10 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	// Seed one item and hammer the same s-network with lookups: acks for
	// the repeated queries must be suppressed.
	if _, err := sys.StoreSync(peers[0], "hot", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := sys.LookupSync(peers[(i*7)%50], "hot"); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.AcksSent == 0 {
		t.Fatal("no acks sent at all")
	}
	if st.AcksSuppressed == 0 {
		t.Fatal("suppress timer never suppressed an ack under a hot query load")
	}
}

func TestAcksResetWatchdog(t *testing.T) {
	// With HELLOs disabled-ish (very long period), query acks alone must
	// keep neighbors alive — §3.2.2's point that acks double as liveness.
	sys := newTestSystem(t, 27, func(c *Config) {
		c.Ps = 0.8
		c.HelloEvery = 300 * sim.Second // effectively off
		c.HelloTimeout = 301 * sim.Second
		c.SuppressTimeout = 1 * sim.Second
	})
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StoreSync(peers[0], "keepalive", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := sys.LookupSync(peers[(i*3)%30], "keepalive"); err != nil {
			t.Fatal(err)
		}
		sys.Settle(2 * sim.Second)
	}
	if sys.Stats().WatchdogExpiries != 0 {
		t.Fatalf("%d false expiries despite ack traffic", sys.Stats().WatchdogExpiries)
	}
	if sys.Stats().AcksSent == 0 {
		t.Fatal("no acks under query load")
	}
}

func TestRejoinViaServerWhenTPeerGone(t *testing.T) {
	// Crash a whole s-network root and its replacement candidates' paths:
	// orphaned s-peers must eventually re-home through the server.
	sys := newTestSystem(t, 28, func(c *Config) { c.Ps = 0.75 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	var root *Peer
	for _, tp := range sys.TPeers() {
		if len(tp.children) >= 2 {
			root = tp
			break
		}
	}
	if root == nil {
		t.Skip("no s-network with >= 2 direct children at this seed")
	}
	children := root.Children()
	// Crash the root AND the first child (a likely replacement) together.
	first := sys.Peer(children[0].Addr)
	root.Crash()
	first.Crash()
	sys.Settle(12 * sys.Cfg.HelloTimeout)

	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	// Every surviving former child is attached somewhere.
	for _, c := range children[1:] {
		cp := sys.Peer(c.Addr)
		if cp == nil || !cp.Alive() {
			continue
		}
		if cp.Role == SPeer && !cp.cp.Valid() {
			t.Fatalf("former child %d still orphaned", c.Addr)
		}
	}
}

func TestCrashIdempotent(t *testing.T) {
	sys := newTestSystem(t, 29, func(c *Config) { c.Ps = 0.5 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Stats().Crashes
	peers[0].Crash()
	peers[0].Crash()
	peers[0].Leave()
	if sys.Stats().Crashes != before+1 {
		t.Fatal("crash not idempotent")
	}
}

func TestHelloPiggybackPropagatesSegment(t *testing.T) {
	sys := newTestSystem(t, 30, func(c *Config) {
		c.Ps = 0.8
		c.Delta = 2
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	// Several HELLO rounds propagate segment bounds down every tree.
	sys.Settle(6 * sys.Cfg.HelloEvery)
	for _, sp := range sys.SPeers() {
		root := sys.Peer(sp.tpeer.Addr)
		if root == nil || root.Role != TPeer {
			continue
		}
		if sp.segLo != root.segLo {
			t.Fatalf("s-peer %d segLo %s != root segLo %s", sp.Addr, sp.segLo, root.segLo)
		}
	}
}

func TestWatchSelfIgnored(t *testing.T) {
	sys := newTestSystem(t, 31, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := peers[0]
	p.watch(p.Addr)
	if p.watching(p.Addr) {
		t.Fatal("peer watches itself")
	}
	_ = idspace.ID(0)
}

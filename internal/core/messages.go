package core

import (
	"repro/internal/idspace"
	"repro/internal/runtime"
)

// Ref names a remote peer by id and address.
type Ref struct {
	ID   idspace.ID
	Addr runtime.Addr
}

// NilRef is the null peer reference.
var NilRef = Ref{Addr: runtime.None}

// Valid reports whether the reference points at a peer.
func (r Ref) Valid() bool { return r.Addr != runtime.None }

// Item is a stored (key, value) pair together with its hashed id.
type Item struct {
	Key   string
	Value string
	DID   idspace.ID
}

// --- Server dialogue -------------------------------------------------------

// serverJoinReq is a new peer's first message: it asks the well-known server
// for a role, an id and an entry point into the system.
type serverJoinReq struct {
	Capacity float64
	Interest int
	// Coord is the peer's landmark coordinate (ordered landmark indices)
	// when topology awareness is on; nil otherwise.
	Coord string
	Host  int
	// ForceRole pins the role (-1 = let the server decide).
	ForceRole int8
}

// serverJoinResp carries the server's placement decision.
type serverJoinResp struct {
	Role Role
	// ID is the assigned p_id (t-peers only; s-peers copy their
	// t-peer's id on arrival).
	ID idspace.ID
	// Entry is where to send the join request: an arbitrary t-peer for
	// t-joins, the target s-network's t-peer for s-joins.
	Entry Ref
	// First marks the very first t-peer, which forms the ring alone.
	First bool
}

// replaceReq is sent to the server by an s-peer that detected its t-peer
// crashed; the server arbitrates a single replacement (§3.2.1).
type replaceReq struct {
	Crashed Ref // the dead t-peer
	Self    Ref // the reporting s-peer
}

// replaceResp tells the reporter the outcome of the arbitration.
type replaceResp struct {
	// Promote is true if the reporter was chosen as the new t-peer.
	Promote bool
	// NewT is the replacement t-peer (for losers to rejoin under).
	NewT Ref
	// Ring state handed to the chosen peer.
	ID         idspace.ID
	Pred, Succ Ref
}

// ringDeadReq reports a crashed t-peer with an empty s-network; the server
// patches the ring around it.
type ringDeadReq struct {
	Crashed Ref
	Self    Ref
}

// ringRepair is the server's targeted answer to a ringDeadReq: the reporter
// swaps whichever of its ring pointers still names the crashed peer for the
// registry's current neighbor.
type ringRepair struct {
	Crashed    Ref
	Pred, Succ Ref
}

// --- T-network membership --------------------------------------------------

// tJoinReq is routed along the ring (accelerated by fingers) until it
// reaches the predecessor-to-be of the joining peer. Epoch is the joiner's
// join-attempt counter: handshakes from an abandoned attempt are dropped.
type tJoinReq struct {
	Joiner Ref
	Epoch  int
	Hops   int
}

// tJoinSetup is the first edge of the join triangle (Fig. 2 left): pre sends
// the new peer its future neighbors.
type tJoinSetup struct {
	Pred, Succ Ref
	// NewID is set (with HasNewID) when pre resolved an id conflict with
	// the midpoint rule; the joiner must adopt it.
	NewID    idspace.ID
	HasNewID bool
	Epoch    int
	Hops     int
}

// tJoinToSucc is the second edge: the new peer introduces itself to succ.
type tJoinToSucc struct {
	Joiner Ref
	Hops   int
}

// tJoinDone is the closing edge: succ tells pre the insertion is complete,
// and pre flips its successor pointer and unblocks its request queue.
type tJoinDone struct {
	Joiner Ref
	Hops   int
}

// tJoinConfirm tells the joiner its successor has processed the insertion.
// Until it arrives the joiner keeps its own joining mutex set, so triangles
// it anchors as pre cannot overtake its own insertion at the shared
// successor.
type tJoinConfirm struct{}

// tJoinCancel is the joiner refusing a tJoinSetup: the triangle belongs to
// an abandoned join attempt, or the joiner is already inserted and its own
// triangle has fully closed. It releases pre's joining mutex immediately.
// Without it, retried and duplicated join requests (common under message
// faults) wedge pre in back-to-back JoinTimeout mutex-guard windows, and a
// wedged pre neither stabilizes nor serves queued joins — the retrying
// joiner and the mutex guard can phase-lock into a livelock.
type tJoinCancel struct {
	Joiner Ref
	Epoch  int
}

// loadTransferReq asks every peer of succ's s-network to ship the items the
// new t-peer now owns (Table 1, suc.loadtransfer).
type loadTransferReq struct {
	// Range (Lo, Hi]: items with d_id in this arc move to Target.
	Lo, Hi idspace.ID
	Target Ref
	// TTLs the broadcast through the tree.
	TTL int
}

// itemsMsg carries data items between peers (load transfer, load dump,
// placement forwarding).
type itemsMsg struct {
	Items []Item
}

// tLeaveToPred/tLeaveToSucc implement the leave triangle (Fig. 2 right) for
// a t-peer leaving with an empty s-network.
type tLeaveToPred struct {
	Leaver Ref
	Succ   Ref
}
type tLeaveToSucc struct {
	Leaver Ref
	Pred   Ref
}
type tLeaveDone struct{}

// promoteMsg transfers the t-role to an s-peer of the same s-network
// (substitution-on-leave, §3.2.1). The promoted peer takes over the ring
// pointers, finger table, stored data and the remaining direct children of
// the departing t-peer.
type promoteMsg struct {
	ID         idspace.ID
	Pred, Succ Ref
	Fingers    []Ref
	Items      []Item
	Children   []Ref
}

// newParentMsg re-parents a child onto the promoted peer.
type newParentMsg struct {
	Parent Ref
}

// substituteMsg circulates the ring after a substitution so every t-peer
// replaces the old address in its finger table ("other t-peers only need to
// substitute the leaving t-peer with the new t-peer in the finger table").
type substituteMsg struct {
	Old, New Ref
	Origin   runtime.Addr
}

// pointerUpdate patches a single ring pointer (used by the server after
// crash recovery and by substitution leaves). When IfCurrent is valid the
// update is conditional: it applies only to a pointer that still names that
// peer, so a repair raced by newer membership changes cannot clobber them.
type pointerUpdate struct {
	Pred, Succ Ref // invalid fields are left unchanged
	IfCurrent  Ref
}

// ringLocate asks the server for this t-peer's current ring neighbors; sent
// by a t-peer that lost a ring pointer (e.g. both triangle counterparties
// died mid-protocol). The server re-registers the peer if needed and answers
// with a pointerUpdate.
type ringLocate struct {
	Self Ref
}

// findSuccReq resolves the successor of Target on the t-network; used for
// finger maintenance. Fidx is the finger slot being refreshed; it rides the
// request and is echoed in the response so the issuer can match the answer
// against its flat per-slot tag table (fingerTag) instead of keeping one
// pending-op record per probe.
type findSuccReq struct {
	Target idspace.ID
	Origin runtime.Addr
	Tag    uint64
	Fidx   int
	Hops   int
}
type findSuccResp struct {
	Succ Ref
	Tag  uint64
	Fidx int
	Hops int
}

// --- S-network membership ---------------------------------------------------

// sJoinReq walks from the t-peer down a random branch until it reaches a
// peer with degree < δ (§3.2.2). Rejoin marks an existing s-peer
// re-attaching after losing its connect point, so the server's s-network
// size accounting is not inflated.
type sJoinReq struct {
	Joiner Ref
	Rejoin bool
	Epoch  int
	Hops   int
}

// sJoinAck tells the joiner its connect point and its s-network's t-peer.
type sJoinAck struct {
	CP    Ref
	TPeer Ref
	ID    idspace.ID // s-peers adopt their t-peer's p_id
	Epoch int
	Hops  int
}

// sLeaveMsg notifies neighbors of a graceful s-peer departure.
type sLeaveMsg struct{}

// --- Failure detection -------------------------------------------------------

// helloMsg is the periodic heartbeat. Heartbeats flowing down the tree
// piggyback the s-network's identity and segment bounds so every s-peer
// tracks them without extra traffic; heartbeats flowing up carry the
// sender's subtree size so every ancestor (and ultimately the server's size
// registry) tracks live membership.
type helloMsg struct {
	Root    Ref
	SegLo   idspace.ID
	Subtree int // size of the sender's subtree, itself included
}

// ackMsg acknowledges a data query, doubling as a liveness signal (§3.2.2).
type ackMsg struct{}

// --- Data operations ---------------------------------------------------------

// storeReq routes an insertion along the t-network toward the owning
// segment. SID is the segment-selection id: the item's d_id normally, its
// category id in interest-based mode.
type storeReq struct {
	Item   Item
	SID    idspace.ID
	Origin Ref
	Tag    uint64
	Hops   int
}

// spreadReq performs the scheme-2 random spreading walk inside the owning
// s-network.
type spreadReq struct {
	Item   Item
	Origin Ref
	Tag    uint64
	Hops   int
	From   runtime.Addr // upstream neighbor, excluded from the next step
}

// storeAck confirms an insertion back to the origin; Holder is where the
// item landed (used for bypass-link creation, so the holder's segment lower
// bound rides along).
type storeAck struct {
	Tag         uint64
	Holder      Ref
	HolderSegLo idspace.ID
	Hops        int
}

// lookupReq routes a lookup along the t-network toward the owning segment.
// TTL, when positive, overrides the configured flood radius at the target
// s-network.
type lookupReq struct {
	QID    uint64
	DID    idspace.ID
	SID    idspace.ID
	Origin Ref
	TTL    int
	Hops   int
	// Probe is the α-parallel probe index (LookupAlpha > 1): the first
	// t-peer that ring-routes the request picks the Probe-th best candidate
	// hop and clears it, so probes from an s-peer origin diverge at the ring
	// entry point. 0 on the plain single-probe path.
	Probe uint8
	// Hinted marks a request sent straight at a path-cache hint (PathCache):
	// the receiver must not re-apply its own hints, and if it no longer has
	// the item it bounces the stale hint back with hintDrop.
	Hinted bool
}

// floodReq searches an s-network tree. It travels every tree edge away from
// its entry point at most once, so each peer receives it exactly once.
type floodReq struct {
	QID    uint64
	DID    idspace.ID
	Origin Ref
	TTL    int
	Hops   int
}

// foundMsg delivers the item directly to the lookup origin.
type foundMsg struct {
	QID         uint64
	Item        Item
	Holder      Ref
	HolderSegLo idspace.ID
	Hops        int
}

// notFoundMsg is a definitive miss from a tracker-mode t-peer (no flooding
// to wait out, so the origin can fail fast).
type notFoundMsg struct {
	QID  uint64
	Hops int
}

// --- Tracker mode (§5.5) -----------------------------------------------------

// indexAdd reports a locally stored item to the s-network's tracker t-peer.
type indexAdd struct {
	DID    idspace.ID
	Holder Ref
}

// indexRemove withdraws an index entry when an item moves away.
type indexRemove struct {
	DID    idspace.ID
	Holder Ref
}

// fetchReq asks a specific holder for an item (tracker mode direct fetch).
type fetchReq struct {
	QID    uint64
	DID    idspace.ID
	Origin Ref
	Hops   int
}

// bypassAdd installs the reverse half of a new bypass link (§5.4).
type bypassAdd struct {
	Peer  Ref
	SegLo idspace.ID
}

// --- Replication (ReplicationK > 1) ------------------------------------------

// replicaPut pushes replicas of the owner's items down the successor chain.
// TTL is the number of further hops the batch may travel (k−1 at the owner);
// each t-peer stores a replica and forwards with TTL−1 until it runs out or
// the batch wraps back to the owner. Round tags a tracked push so the owner
// can count distinct ackers; Round 0 is an untracked eager push on store.
type replicaPut struct {
	Owner Ref
	Round uint64
	TTL   int
	Items []Item
}

// replicaAck confirms one hop of a tracked replicaPut chain back to the owner.
type replicaAck struct {
	Round uint64
}

// replicaDrop retires replicas of deleted items along the successor chain.
type replicaDrop struct {
	Owner Ref
	TTL   int
	DIDs  []idspace.ID
}

// ownerAnnounce reports the in-segment items an s-peer holds (spread
// placement) to its owning t-peer, so the owner's authoritative copy covers
// items physically stored below it in the tree.
type ownerAnnounce struct {
	Items []Item
}

// deleteReq routes a deletion along the t-network toward the owning segment,
// mirroring storeReq.
type deleteReq struct {
	Key    string
	DID    idspace.ID
	SID    idspace.ID
	Origin Ref
	Tag    uint64
	Hops   int
}

// deleteAck confirms a deletion back to the origin. Existed reports whether
// the owner actually held the item.
type deleteAck struct {
	Tag     uint64
	Existed bool
	Hops    int
}

// deleteFlood removes every stored or cached copy of an item from an
// s-network tree (the owner floods it on delete so spread copies die too).
type deleteFlood struct {
	DID idspace.ID
	TTL int
}

// deleteRing walks a deletion around the t-network ring when the surrogate
// caching scheme is on: requester-side cache copies (handleFound) live in
// arbitrary s-networks that the owner's own tree flood cannot reach, so each
// t-peer on the walk purges its cache and re-floods the purge down its own
// tree. Without Caching no copy can exist outside the owner's segment and
// the walk is never sent.
type deleteRing struct {
	DID    idspace.ID
	Origin Ref
	TTL    int
}

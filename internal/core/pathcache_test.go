package core

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

// pathCacheConfig turns the PR-10 lookup-path cache on over the standard
// test population.
func pathCacheConfig(c *Config) {
	c.Ps = 0.6
	c.PathCache = true
	c.LookupTimeout = 5 * sim.Second
}

// totalHints sums the live path-cache hints across the population.
func totalHints(sys *System) int {
	n := 0
	for _, p := range sys.Peers() {
		n += p.NumHints()
	}
	return n
}

func TestPathCacheDepositAndUse(t *testing.T) {
	sys, peers, keys := populate(t, 60, 60, 80, pathCacheConfig)

	// First pass deposits hints at every origin whose key lives in a remote
	// segment; second pass from the same origins must consult them.
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+5)%len(peers)], key)
		if err != nil || !r.OK {
			t.Fatalf("warm lookup %s: %+v %v", key, r, err)
		}
	}
	if totalHints(sys) == 0 {
		t.Fatal("no hints deposited by successful remote lookups")
	}
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+5)%len(peers)], key)
		if err != nil || !r.OK {
			t.Fatalf("hinted lookup %s: %+v %v", key, r, err)
		}
	}
	st := sys.Stats()
	if st.PathHintUses == 0 {
		t.Fatal("repeat lookups never used a path-cache hint")
	}
}

func TestPathCacheOffDepositsNothing(t *testing.T) {
	sys, peers, keys := populate(t, 61, 50, 40, func(c *Config) { c.Ps = 0.6 })
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*7+3)%len(peers)], key)
		if err != nil || !r.OK {
			t.Fatalf("lookup %s: %+v %v", key, r, err)
		}
	}
	if n := totalHints(sys); n != 0 {
		t.Fatalf("path cache off but %d hints deposited", n)
	}
	if st := sys.Stats(); st.PathHintUses != 0 || st.PathHintDrops != 0 {
		t.Fatalf("path cache off but stats moved: %+v", st)
	}
}

// TestPathCacheStaleHintBounces plants a hint at a live t-peer that does not
// hold the item: the hinted lookup must bounce (hintDrop), clear the planted
// hint, continue as a normal routed lookup, and still succeed.
func TestPathCacheStaleHintBounces(t *testing.T) {
	sys, peers, keys := populate(t, 62, 60, 40, pathCacheConfig)

	key := keys[0]
	did := idspace.HashKey(key)
	// Find a t-peer that does not own the key's segment and does not hold it.
	var wrong *Peer
	for _, tp := range sys.TPeers() {
		if !tp.inLocalSegment(did) {
			wrong = tp
			break
		}
	}
	if wrong == nil {
		t.Fatal("no off-segment t-peer found")
	}
	// Pick an origin that is not the wrong holder itself.
	origin := peers[1]
	if origin.Addr == wrong.Addr {
		origin = peers[2]
	}
	origin.addHint(did, Ref{ID: wrong.ID, Addr: wrong.Addr})

	r, err := sys.LookupSync(origin, key)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("stale hint turned into a lookup failure; it must cost a bounce, not the result")
	}
	st := sys.Stats()
	if st.PathHintDrops == 0 {
		t.Fatal("stale holder never bounced a hintDrop")
	}
	if e, ok := origin.hints[did]; ok && e.holder.Addr == wrong.Addr {
		t.Fatal("bounced hint still cached at the origin")
	}
}

// TestPathCacheSuspectInvalidation: marking an address suspect must drop
// every hint naming it (dropHintsTo), and a hint to an address already
// suspected must be dropped on sight instead of used (pathHint).
func TestPathCacheSuspectInvalidation(t *testing.T) {
	sys, peers, keys := populate(t, 63, 60, 40, pathCacheConfig)
	origin := peers[0]
	tp := sys.TPeers()[0]
	if tp.Addr == origin.Addr {
		tp = sys.TPeers()[1]
	}
	ref := Ref{ID: tp.ID, Addr: tp.Addr}
	for _, key := range keys[:5] {
		origin.addHint(idspace.HashKey(key), ref)
	}
	if origin.NumHints() < 5 {
		t.Fatalf("planted 5 hints, have %d", origin.NumHints())
	}
	origin.markSuspect(tp.Addr)
	if n := origin.NumHints(); n != 0 {
		t.Fatalf("markSuspect left %d hints naming the suspect", n)
	}

	// Drop-on-sight: a hint that arrives after the suspicion is not used.
	did := idspace.HashKey(keys[6])
	origin.addHint(did, ref)
	if _, ok := origin.pathHint(did); ok {
		t.Fatal("pathHint served a hint naming a suspected-dead holder")
	}
	if origin.NumHints() != 0 {
		t.Fatal("suspect hint survived its own use attempt")
	}
}

// TestPathCacheCrashDropsHintOnTimeout: a hint to a silently-dead holder is
// dropped when the hinted lookup times out (opTimeout), so the stale route
// costs at most one timed-out operation, never a wedged cache.
func TestPathCacheCrashDropsHintOnTimeout(t *testing.T) {
	sys, peers, keys := populate(t, 67, 60, 40, func(c *Config) {
		pathCacheConfig(c)
		c.LookupTimeout = 3 * sim.Second
	})
	// Crash a t-peer and plant a hint at a far origin pointing at the corpse
	// before any failure detector there could know.
	tps := sys.TPeers()
	victim := tps[len(tps)-1]
	ref := Ref{ID: victim.ID, Addr: victim.Addr}
	victim.Crash()
	origin := peers[0]
	if origin.Addr == victim.Addr {
		origin = peers[1]
	}
	key := keys[0]
	did := idspace.HashKey(key)
	origin.addHint(did, ref)

	r, err := sys.LookupSync(origin, key)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := origin.hints[did]; ok && e.holder.Addr == victim.Addr {
		t.Fatalf("hint to the dead holder survived the lookup (result %+v)", r)
	}
	// The hint is gone, so a retry routes normally and must find the item
	// (its owner segment is intact — only the hinted-at victim died).
	sys.Settle(8*sys.Cfg.HelloTimeout + 10*sys.Cfg.FingerRefreshEvery)
	r2, err := sys.LookupSync(origin, key)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.OK && idspace.Between(victim.pred.ID, did, victim.ID) {
		t.Skip("key was owned by the crashed victim; nothing to recover without replication")
	}
	if !r2.OK {
		t.Fatalf("retry after hint drop failed: %+v", r2)
	}
}

// TestPathCacheDeletedKeyDoesNotResurrect exercises the interplay with the
// surrogate cache (cache.go): a deleted item must stay gone even when path
// hints and surrogate copies both referenced it, because hints store routes,
// never values.
func TestPathCacheDeletedKeyDoesNotResurrect(t *testing.T) {
	sys, peers, keys := populate(t, 64, 60, 40, func(c *Config) {
		pathCacheConfig(c)
		c.Caching = true // surrogate copies on too
	})
	// Heat the keys so hints and surrogate copies exist.
	for round := 0; round < 3; round++ {
		for i, key := range keys {
			r, err := sys.LookupSync(peers[(i*13+5)%len(peers)], key)
			if err != nil || !r.OK {
				t.Fatalf("warm lookup %s: %+v %v", key, r, err)
			}
		}
	}
	for _, key := range keys {
		r, err := sys.DeleteSync(peers[0], key)
		if err != nil || !r.OK {
			t.Fatalf("delete %s: %+v %v", key, r, err)
		}
	}
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+5)%len(peers)], key)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			t.Fatalf("deleted key %s resurrected with value %q", key, r.Value)
		}
	}
}

// TestPathCacheTTLExpiry: an idle hint must evict after PathCacheTTL, the
// same idle-reset discipline as the surrogate cache.
func TestPathCacheTTLExpiry(t *testing.T) {
	sys, peers, keys := populate(t, 65, 50, 40, func(c *Config) {
		pathCacheConfig(c)
		c.PathCacheTTL = 20 * sim.Second
	})
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*7+3)%len(peers)], key)
		if err != nil || !r.OK {
			t.Fatalf("lookup %s: %+v %v", key, r, err)
		}
	}
	if totalHints(sys) == 0 {
		t.Fatal("no hints deposited")
	}
	sys.Settle(25 * sim.Second)
	if n := totalHints(sys); n != 0 {
		t.Fatalf("%d hints survived past PathCacheTTL", n)
	}
}

// TestAlphaProbesUnderLookups: α=3 on a healthy system must stay correct
// (first success wins, late replies cancelled) and account its extra probes.
func TestAlphaProbesUnderLookups(t *testing.T) {
	sys, peers, keys := populate(t, 66, 60, 60, func(c *Config) {
		c.Ps = 0.6
		c.LookupAlpha = 3
		c.LookupTimeout = 5 * sim.Second
	})
	for i, key := range keys {
		r, err := sys.LookupSync(peers[(i*13+5)%len(peers)], key)
		if err != nil || !r.OK {
			t.Fatalf("α=3 lookup %s: %+v %v", key, r, err)
		}
	}
	if st := sys.Stats(); st.ProbesSent == 0 {
		t.Fatal("α=3 sent no extra probes")
	}
	// Every operation completed, so the op tables must be empty again.
	for _, p := range sys.Peers() {
		if n := len(p.pending); n != 0 {
			t.Fatalf("peer %v left %d ops pending after α-parallel lookups", p.Addr, n)
		}
	}
}

package core

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
)

func TestRingInvariantAcrossPsAndSeeds(t *testing.T) {
	for _, ps := range []float64{0, 0.3, 0.5, 0.8} {
		for seed := int64(1); seed <= 3; seed++ {
			sys := newTestSystem(t, seed, func(c *Config) { c.Ps = ps })
			if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80}); err != nil {
				t.Fatalf("ps=%v seed=%d: %v", ps, seed, err)
			}
			sys.Settle(5 * sim.Second)
			if err := sys.CheckRing(); err != nil {
				t.Errorf("ps=%v seed=%d: %v", ps, seed, err)
			}
			if err := sys.CheckTrees(); err != nil {
				t.Errorf("ps=%v seed=%d: %v", ps, seed, err)
			}
		}
	}
}

func TestRingIDsOrdered(t *testing.T) {
	sys := newTestSystem(t, 4, func(c *Config) { c.Ps = 0.4 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	tps := sys.TPeers() // sorted by id
	if len(tps) < 3 {
		t.Fatal("too few t-peers")
	}
	// Walking successors from the smallest id must visit ids in ascending
	// order (single wrap).
	cur := tps[0]
	wraps := 0
	for i := 0; i < len(tps); i++ {
		next := sys.Peer(cur.succ.Addr)
		if next == cur {
			break
		}
		if next.ID < cur.ID {
			wraps++
		}
		cur = next
	}
	if wraps != 1 {
		t.Fatalf("ring wraps %d times, want exactly 1", wraps)
	}
}

func TestRoleRatioTracksPs(t *testing.T) {
	for _, ps := range []float64{0.2, 0.5, 0.8} {
		sys := newTestSystem(t, 5, func(c *Config) { c.Ps = ps })
		if _, _, err := sys.BuildPopulation(PopulationOpts{N: 100}); err != nil {
			t.Fatal(err)
		}
		got := float64(len(sys.SPeers())) / 100
		if got < ps-0.06 || got > ps+0.06 {
			t.Errorf("ps=%v: realized s fraction %v", ps, got)
		}
	}
}

func TestDegreeConstraintHolds(t *testing.T) {
	for _, delta := range []int{2, 3, 5} {
		sys := newTestSystem(t, 6, func(c *Config) {
			c.Ps = 0.8
			c.Delta = delta
		})
		if _, _, err := sys.BuildPopulation(PopulationOpts{N: 100}); err != nil {
			t.Fatal(err)
		}
		for _, p := range sys.Peers() {
			if p.Degree() > delta {
				t.Errorf("delta=%d: peer %d has degree %d", delta, p.Addr, p.Degree())
			}
		}
	}
}

func TestSPeerAdoptsTPeerID(t *testing.T) {
	sys := newTestSystem(t, 7, func(c *Config) { c.Ps = 0.7 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	for _, sp := range sys.SPeers() {
		root := sys.Peer(sp.tpeer.Addr)
		if root == nil {
			t.Fatalf("s-peer %d has dead root", sp.Addr)
		}
		if sp.ID != root.ID {
			t.Errorf("s-peer %d id %s != root id %s", sp.Addr, sp.ID, root.ID)
		}
	}
}

func TestConcurrentTJoins(t *testing.T) {
	// Fire many t-joins simultaneously; the join triangles must serialize
	// them into a consistent ring (§3.3).
	sys := newTestSystem(t, 8, func(c *Config) { c.Ps = 0 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 3}); err != nil {
		t.Fatal(err)
	}
	role := TPeer
	joined := 0
	stubs := sys.Topo().StubNodes()
	for i := 0; i < 40; i++ {
		sys.Join(JoinOpts{
			Host:      stubs[i%len(stubs)],
			Capacity:  1,
			ForceRole: &role,
		}, func(*Peer, JoinStats) { joined++ })
	}
	// Let everything resolve, including queued triangles.
	sys.Settle(240 * sim.Second)
	if joined != 40 {
		t.Fatalf("only %d/40 concurrent joins completed", joined)
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.TPeers()); got != 43 {
		t.Fatalf("t-peers = %d, want 43", got)
	}
	if sys.Stats().QueuedJoinRequests == 0 {
		t.Log("note: no joins were queued (triangles never overlapped)")
	}
}

func TestConcurrentMixedJoins(t *testing.T) {
	sys := newTestSystem(t, 9, func(c *Config) { c.Ps = 0.6 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 10}); err != nil {
		t.Fatal(err)
	}
	joined := 0
	stubs := sys.Topo().StubNodes()
	for i := 0; i < 60; i++ {
		sys.Join(JoinOpts{Host: stubs[(i*3)%len(stubs)], Capacity: 1},
			func(*Peer, JoinStats) { joined++ })
	}
	sys.Settle(240 * sim.Second)
	if joined != 60 {
		t.Fatalf("only %d/60 mixed concurrent joins completed", joined)
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if sys.NumPeers() != 70 {
		t.Fatalf("peers = %d, want 70", sys.NumPeers())
	}
}

func TestIDConflictResolvedByMidpoint(t *testing.T) {
	// End to end: location-based id generation gives two peers on the same
	// physical host the same p_id; the insertion point must detect the
	// conflict and assign the midpoint id instead (Table 1, pre.check).
	sys := newTestSystem(t, 10, func(c *Config) {
		c.Ps = 0
		c.IDGen = IDLocation
	})
	host := sys.Topo().StubNodes()[3]
	hosts := []int{host, sys.Topo().StubNodes()[9], sys.Topo().StubNodes()[20], host}
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 4, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(10 * sim.Second)
	if got := sys.Stats().IDConflicts; got == 0 {
		t.Fatal("co-located peers did not trigger an id conflict")
	}
	if peers[0].ID == peers[3].ID {
		t.Fatal("conflicting id kept")
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	// The midpoint id lies strictly between the original and its successor
	// at insertion time; at minimum it must be owned consistently now.
	if got := len(sys.TPeers()); got != 4 {
		t.Fatalf("t-peers = %d, want 4", got)
	}
}

func TestTLeaveBySubstitution(t *testing.T) {
	sys := newTestSystem(t, 11, func(c *Config) { c.Ps = 0.7 })
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 60}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	var victim *Peer
	for _, tp := range sys.TPeers() {
		if len(tp.children) > 0 {
			victim = tp
			break
		}
	}
	if victim == nil {
		t.Fatal("no t-peer with children")
	}
	// Seed some data on the victim so the promotion must carry it.
	victim.storeLocal(Item{Key: "carried", Value: "v", DID: idspace.HashKey("carried")})
	id := victim.ID
	nT := len(sys.TPeers())

	victim.Leave()
	sys.Settle(10 * sim.Second)

	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.TPeers()); got != nT {
		t.Fatalf("t-peer count changed: %d -> %d (substitution must preserve it)", nT, got)
	}
	// The ring position survives with the same id at a new address.
	var substitute *Peer
	for _, tp := range sys.TPeers() {
		if tp.ID == id {
			substitute = tp
			break
		}
	}
	if substitute == nil {
		t.Fatal("substituted ring position disappeared")
	}
	if substitute.Addr == victim.Addr {
		t.Fatal("substitute is the departed peer")
	}
	if !substitute.HasItem("carried") {
		t.Fatal("data not carried to the substitute")
	}
	if sys.Stats().Promotions == 0 {
		t.Fatal("no promotion recorded")
	}
}

func TestTLeaveEmptyUsesTriangle(t *testing.T) {
	sys := newTestSystem(t, 12, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	victim := peers[7]
	// Give it data: the leave must dump it on the successor (Table 1,
	// n.loaddump).
	did := idspace.HashKey("dumped")
	victim.storeLocal(Item{Key: "dumped", Value: "v", DID: did})
	succ := sys.Peer(victim.succ.Addr)
	nT := len(sys.TPeers())

	victim.Leave()
	sys.Settle(10 * sim.Second)

	if victim.Alive() {
		t.Fatal("victim still alive")
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.TPeers()); got != nT-1 {
		t.Fatalf("t-peers = %d, want %d", got, nT-1)
	}
	// The dump lands on the successor, which re-routes it to the segment
	// owner if the id belongs elsewhere; either way it must survive.
	if succ.HasItem("dumped") {
		return
	}
	for _, p := range sys.Peers() {
		if p.HasItem("dumped") {
			return
		}
	}
	t.Fatal("load dump lost the departing peer's data")
}

func TestLeaveWhileJoiningIsDeferred(t *testing.T) {
	sys := newTestSystem(t, 13, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	pre := peers[2]
	// Open a triangle by hand, then ask pre to leave: §3.3 says the leave
	// must wait.
	pre.joining = true
	pre.Leave()
	if !pre.Alive() {
		t.Fatal("pre left while a join triangle was open")
	}
	if !pre.deferLeave {
		t.Fatal("leave not deferred")
	}
	// Closing the triangle releases the deferred leave.
	pre.joining = false
	pre.drainJoinQueue()
	sys.Settle(10 * sim.Second)
	if pre.Alive() {
		t.Fatal("deferred leave never executed")
	}
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

func TestSLeaveReattachesChildren(t *testing.T) {
	sys := newTestSystem(t, 14, func(c *Config) {
		c.Ps = 0.85
		c.Delta = 2 // deep trees => interior s-peers with children
	})
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 80}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)

	var victim *Peer
	for _, sp := range sys.SPeers() {
		if len(sp.children) > 0 {
			victim = sp
			break
		}
	}
	if victim == nil {
		t.Fatal("no interior s-peer found")
	}
	children := victim.Children()
	victim.storeLocal(Item{Key: "heirloom", Value: "v", DID: idspace.HashKey("heirloom")})

	victim.Leave()
	sys.Settle(20 * sim.Second)

	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	for _, c := range children {
		cp := sys.Peer(c.Addr)
		if cp == nil || !cp.Alive() {
			t.Fatalf("child %d died with its parent", c.Addr)
		}
		if cp.cp.Addr == victim.Addr {
			t.Fatalf("child %d still points at the departed parent", c.Addr)
		}
	}
	// The heirloom moved to some neighbor.
	found := false
	for _, p := range sys.Peers() {
		if p.HasItem("heirloom") {
			found = true
		}
	}
	if !found {
		t.Fatal("departing s-peer's data was lost despite graceful leave")
	}
	if sys.Stats().Rejoins == 0 {
		t.Fatal("no rejoin recorded")
	}
}

func TestManyConcurrentLeaves(t *testing.T) {
	sys := newTestSystem(t, 15, func(c *Config) { c.Ps = 0.6 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 90})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	// A burst of simultaneous graceful leaves across both tiers.
	for i := 0; i < 30; i++ {
		peers[i*3].Leave()
	}
	sys.Settle(120 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckTrees(); err != nil {
		t.Fatal(err)
	}
	if sys.NumPeers() != 60 {
		t.Fatalf("peers = %d, want 60", sys.NumPeers())
	}
}

func TestJoinStatsPopulated(t *testing.T) {
	sys := newTestSystem(t, 16, func(c *Config) { c.Ps = 0.5 })
	_, stats, err := sys.BuildPopulation(PopulationOpts{N: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range stats {
		if js.Hops < 0 {
			t.Fatalf("join %d negative hops", i)
		}
		if i > 0 && js.Latency <= 0 {
			t.Fatalf("join %d non-positive latency", i)
		}
	}
}

func TestLastTPeerCanLeave(t *testing.T) {
	sys := newTestSystem(t, 17, func(c *Config) { c.Ps = 0 })
	peers, _, err := sys.BuildPopulation(PopulationOpts{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	peers[0].Leave()
	sys.Settle(5 * sim.Second)
	if sys.NumPeers() != 0 {
		t.Fatal("last peer did not leave")
	}
	// The system can bootstrap again afterwards.
	if _, _, err := sys.BuildPopulation(PopulationOpts{N: 5}); err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * sim.Second)
	if err := sys.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

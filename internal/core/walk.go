package core

import (
	"repro/internal/idspace"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Random-walk search: §3.1 lets s-networks be searched by "flooding or
// random walks". With Config.RandomWalk set, a local search launches
// WalkCount walkers that each wander the tree for up to WalkTTL hops,
// checking every peer they visit. Walks contact far fewer peers than floods
// on large s-networks at the price of a higher miss probability.

// walkReq is one walker.
type walkReq struct {
	QID    uint64
	DID    idspace.ID
	Origin Ref
	TTL    int
	Hops   int
	From   runtime.Addr // previous hop, avoided when possible
}

// startWalks launches the configured number of walkers from this peer.
func (p *Peer) startWalks(qid uint64, did idspace.ID, origin Ref) {
	nbs := p.neighbors()
	if len(nbs) == 0 {
		return
	}
	rng := p.sys.rt.Rand()
	for i := 0; i < p.sys.Cfg.WalkCount; i++ {
		nb := nbs[rng.Intn(len(nbs))]
		p.sys.stats.WalksSent++
		p.send(nb.Addr, walkReq{
			QID: qid, DID: did, Origin: origin,
			TTL: p.sys.Cfg.WalkTTL, Hops: 1, From: p.Addr,
		})
	}
}

// handleWalk advances one walker: check locally, then step to a random
// neighbor (preferring not to bounce straight back).
func (p *Peer) handleWalk(m walkReq) {
	p.sys.contact(m.QID)
	p.sys.trace(obs.EvLookupHop, m.QID, m.From, p.Addr, m.Hops, "walk")
	p.maybeAck(m.From)
	if it, ok := p.findLocal(m.DID); ok {
		p.answer(m.Origin, m.QID, it, m.Hops+1)
		return
	}
	if m.TTL <= 1 {
		return
	}
	nbs := p.neighbors()
	if len(nbs) == 0 {
		return
	}
	// Avoid the immediate previous hop when there is any alternative.
	candidates := nbs[:0:0]
	for _, nb := range nbs {
		if nb.Addr != m.From {
			candidates = append(candidates, nb)
		}
	}
	if len(candidates) == 0 {
		candidates = nbs
	}
	next := candidates[p.sys.rt.Rand().Intn(len(candidates))]
	m.TTL--
	m.Hops++
	m.From = p.Addr
	p.send(next.Addr, m)
}

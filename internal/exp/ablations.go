package exp

import (
	"repro/internal/core"
	"repro/internal/gnutella"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// RunAblationTree quantifies the design decision of §3.2.2: tree-shaped
// s-networks deliver each flooded query to each peer exactly once, while a
// Gnutella-style mesh of the same population re-delivers queries over cross
// links. The experiment floods the same workload over both and reports
// deliveries and duplicates per query.
func RunAblationTree(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("AblationTree")

	keys := keysN(o.Items / 2)
	queries := o.Lookups / 2

	// Both arms flood the same workload over the shared topology; each is
	// an independent simulation, so they run as two worker-pool tasks.
	type arm struct {
		delPerQuery, dupPerQuery, success float64
	}
	arms, err := sweep(o, 2, func(i int) (arm, error) {
		if i == 1 {
			// The hybrid tree: same scale at p_s = 0.9 so floods dominate.
			cfg := expConfig(0.9)
			sc, err := buildScenario(o, cfg, o.Seed+701, nil, nil)
			if err != nil {
				return arm{}, err
			}
			if _, err := sc.storeItems(keys); err != nil {
				return arm{}, err
			}
			rs, err := sc.lookupBatch(queries, 4, keys, func(k int) int { return k })
			if err != nil {
				return arm{}, err
			}
			sc.observe(o, "AblationTree hybrid")
			return arm{
				delPerQuery: float64(totalContacts(rs)) / float64(len(rs)),
				success:     1 - failureRatio(rs),
			}, nil
		}

		topo, err := expTopology(o, o.topoSeed())
		if err != nil {
			return arm{}, err
		}
		eng := sim.New(o.Seed + 700)
		net := simnet.New(eng, topo, simnet.DefaultConfig())
		gcfg := gnutella.DefaultConfig()
		gcfg.DegreeTarget = 4
		gnet := gnutella.NewNetwork(simnet.NewRuntime(eng, net), gcfg)

		stubs := topo.StubNodes()
		peers := make([]*gnutella.Peer, o.N)
		for i := range peers {
			peers[i] = gnet.Join(stubs[eng.Rand().Intn(len(stubs))], 1)
		}
		for i, key := range keys {
			peers[(i*13)%len(peers)].StoreLocal(key, "v")
		}

		hits := 0
		for i := 0; i < queries; i++ {
			var done bool
			ok := false
			peers[(i*29)%len(peers)].Lookup(keys[i%len(keys)], 5, func(r gnutella.Result) {
				done = true
				ok = r.OK
			})
			for !done && eng.Step() {
			}
			if ok {
				hits++
			}
		}
		return arm{
			delPerQuery: float64(gnet.QueryDeliveries) / float64(queries),
			dupPerQuery: float64(gnet.DuplicateDeliveries) / float64(queries),
			success:     float64(hits) / float64(queries),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	mesh, tree := arms[0], arms[1]

	t := metrics.NewTable("Ablation: mesh flooding vs tree s-networks",
		"topology", "deliveries/query", "duplicates/query", "success")
	t.AddRow("gnutella mesh (deg 4, TTL 5)", mesh.delPerQuery, mesh.dupPerQuery, mesh.success)
	t.AddRow("hybrid tree (p_s=0.9, TTL 4)", tree.delPerQuery, 0.0, tree.success)
	res.Tables = append(res.Tables, t)

	res.Values["mesh_duplicates_per_query"] = mesh.dupPerQuery
	res.Values["tree_duplicates_per_query"] = 0
	res.Values["mesh_deliveries_per_query"] = mesh.delPerQuery
	res.Values["tree_contacts_per_query"] = tree.delPerQuery
	res.Notes = append(res.Notes,
		"a tree guarantees each peer receives the query exactly once; the mesh pays extra bandwidth for duplicates")
	return res, nil
}

// RunAblationBypass quantifies §5.4: with bypass links, repeated
// cross-s-network lookups divert from the t-network onto direct shortcuts,
// reducing ring forwarding and latency under a skewed (repeat-heavy)
// workload.
func RunAblationBypass(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("AblationBypass")

	keys := keysN(200) // small, hot key set so repeats hit bypass links
	modes := []struct {
		name   string
		bypass bool
	}{
		{"no bypass", false},
		{"bypass links", true},
	}

	type bypassArm struct {
		ringPer, latency, success float64
		uses                      uint64
	}
	arms, err := sweep(o, len(modes), func(i int) (bypassArm, error) {
		mode := modes[i]
		cfg := expConfig(0.7)
		cfg.Bypass = mode.bypass
		sc, err := buildScenario(o, cfg, o.Seed+720, nil, nil)
		if err != nil {
			return bypassArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return bypassArm{}, err
		}
		// Bypass links live per peer, so they only pay off for peers that
		// repeatedly reach the same remote s-networks: route the workload
		// through a small set of heavy consumers (leaf s-peers with spare
		// degree, per rule 1).
		var origins []*core.Peer
		for _, sp := range sc.Sys.SPeers() {
			if sp.Degree() == 1 {
				origins = append(origins, sp)
				if len(origins) == 10 {
					break
				}
			}
		}
		if len(origins) == 0 {
			origins = sc.Sys.Peers()[:10]
		}
		before := sc.Sys.Stats().RingForwards
		rs, err := sc.lookupFrom(origins, o.Lookups/2, 4, keys, func(k int) int { return k % len(keys) })
		if err != nil {
			return bypassArm{}, err
		}
		after := sc.Sys.Stats()
		sc.observe(o, "AblationBypass "+mode.name)
		return bypassArm{
			ringPer: float64(after.RingForwards-before) / float64(len(rs)),
			latency: meanLatencyMs(rs),
			success: 1 - failureRatio(rs),
			uses:    after.BypassUses,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Ablation: bypass links (p_s=0.7, hot keys, 10 heavy consumers)",
		"mode", "ring-forwards/lookup", "mean latency ms", "bypass uses", "success")
	for i, mode := range modes {
		a := arms[i]
		t.AddRow(mode.name, a.ringPer, a.latency, a.uses, a.success)
		key := "nobypass"
		if mode.bypass {
			key = "bypass"
		}
		res.Values["ringforwards_"+key] = a.ringPer
		res.Values["latency_"+key] = a.latency
		res.Values["uses_"+key] = float64(a.uses)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"bypass links shed repeated cross-s-network traffic from the t-network (§5.4)")
	return res, nil
}

package exp

import (
	"encoding/binary"

	"repro/internal/chord"
	"repro/internal/gnutella"
	"repro/internal/idspace"
	"repro/internal/kad"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// RunBaselines compares the standalone Chord, Gnutella and Kademlia
// implementations against the hybrid system at several p_s values on the
// same topology and workload: mean lookup hops, latency and failure ratio.
// This is the "compared to structured / unstructured peer-to-peer networks"
// framing of the paper's conclusions, with the pure systems implemented
// outright rather than taken as the hybrid's degenerate ends — Kademlia
// (XOR metric, k-buckets, α-parallel iterative lookup) being the
// industry-standard comparator. Each system is an independent simulation,
// so the five arms run as worker-pool tasks.
func RunBaselines(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Baselines")
	keys := keysN(o.Items / 2)
	queries := o.Lookups / 2

	type row struct {
		name                   string
		tag                    string // value-key prefix; latency omitted when empty for that metric
		hops, latency, failure float64
		noLatencyValue         bool
	}
	arms, err := sweep(o, 5, func(i int) (row, error) {
		switch i {
		case 0: // Chord
			topo, err := expTopology(o, o.topoSeed())
			if err != nil {
				return row{}, err
			}
			eng := sim.New(o.Seed + 800)
			net := simnet.New(eng, topo, simnet.DefaultConfig())
			cnet := chord.NewNetwork(simnet.NewRuntime(eng, net), chord.DefaultConfig())
			stubs := topo.StubNodes()
			var nodes []*chord.Node
			boot := simnet.None
			for i := 0; i < o.N; i++ {
				n := cnet.CreateNode(idspace.ID(eng.Rand().Uint64()), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
				if boot == simnet.None {
					boot = n.Addr
				}
				// Give each join a slice of stabilization time.
				eng.RunUntil(eng.Now() + 600*sim.Millisecond)
				nodes = append(nodes, n)
			}
			eng.RunUntil(eng.Now() + 30*sim.Second)

			for i, key := range keys {
				var done bool
				nodes[(i*11)%len(nodes)].Store(key, "v", func(chord.Result) { done = true })
				for !done && eng.Step() {
				}
			}
			var hops, lat metrics.Summary
			fails := 0
			for i := 0; i < queries; i++ {
				var done bool
				var r chord.Result
				nodes[(i*17)%len(nodes)].Lookup(keys[i%len(keys)], func(res chord.Result) {
					done = true
					r = res
				})
				for !done && eng.Step() {
				}
				if r.OK {
					hops.Add(float64(r.Hops))
					lat.Add(float64(r.Latency) / float64(sim.Millisecond))
				} else {
					fails++
				}
			}
			return row{
				name: "chord (pure structured)", tag: "chord",
				hops: hops.Mean(), latency: lat.Mean(),
				failure: float64(fails) / float64(queries),
			}, nil

		case 1: // Gnutella
			topo, err := expTopology(o, o.topoSeed())
			if err != nil {
				return row{}, err
			}
			eng := sim.New(o.Seed + 810)
			net := simnet.New(eng, topo, simnet.DefaultConfig())
			gnet := gnutella.NewNetwork(simnet.NewRuntime(eng, net), gnutella.DefaultConfig())
			stubs := topo.StubNodes()
			peers := make([]*gnutella.Peer, o.N)
			for i := range peers {
				peers[i] = gnet.Join(stubs[eng.Rand().Intn(len(stubs))], 1)
			}
			for i, key := range keys {
				peers[(i*13)%len(peers)].StoreLocal(key, "v")
			}
			var hops, lat metrics.Summary
			fails := 0
			for i := 0; i < queries; i++ {
				var done bool
				var r gnutella.Result
				peers[(i*19)%len(peers)].Lookup(keys[i%len(keys)], 5, func(res gnutella.Result) {
					done = true
					r = res
				})
				for !done && eng.Step() {
				}
				if r.OK {
					hops.Add(float64(r.Hops))
					lat.Add(float64(r.Latency) / float64(sim.Millisecond))
				} else {
					fails++
				}
			}
			return row{
				name: "gnutella (pure unstructured, TTL 5)", tag: "gnutella",
				hops: hops.Mean(), latency: lat.Mean(),
				failure:        float64(fails) / float64(queries),
				noLatencyValue: true,
			}, nil

		case 2: // Kademlia
			topo, err := expTopology(o, o.topoSeed())
			if err != nil {
				return row{}, err
			}
			eng := sim.New(o.Seed + 830)
			net := simnet.New(eng, topo, simnet.DefaultConfig())
			kcfg := kad.DefaultConfig()
			kcfg.K = 8 // replica sets sized for paper-scale swarms, not the open internet
			knet := kad.NewNetwork(simnet.NewRuntime(eng, net), kcfg)
			stubs := topo.StubNodes()
			var nodes []*kad.Node
			boot := kad.NilContact
			for i := 0; i < o.N; i++ {
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], eng.Rand().Uint64())
				n := knet.CreateNode(kad.HashBytes(b[:]), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
				if !boot.Valid() {
					boot = kad.Contact{ID: n.ID, Addr: n.Addr}
				}
				// Give each join's self-lookup a slice of time to settle.
				eng.RunUntil(eng.Now() + 200*sim.Millisecond)
				nodes = append(nodes, n)
			}
			eng.RunUntil(eng.Now() + 30*sim.Second)

			for i, key := range keys {
				var done bool
				nodes[(i*11)%len(nodes)].Store(key, "v", func(kad.Result) { done = true })
				for !done && eng.Step() {
				}
			}
			var hops, lat metrics.Summary
			fails := 0
			for i := 0; i < queries; i++ {
				var done bool
				var r kad.Result
				nodes[(i*17)%len(nodes)].Lookup(keys[i%len(keys)], func(res kad.Result) {
					done = true
					r = res
				})
				for !done && eng.Step() {
				}
				if r.OK {
					hops.Add(float64(r.Hops))
					lat.Add(float64(r.Latency) / float64(sim.Millisecond))
				} else {
					fails++
				}
			}
			return row{
				name: "kademlia (α=3, k=8 iterative)", tag: "kad",
				hops: hops.Mean(), latency: lat.Mean(),
				failure: float64(fails) / float64(queries),
			}, nil

		default: // Hybrid at p_s = 0.3 and 0.7
			ps := 0.3
			name, tag := "hybrid p_s=0.3", "hybrid_ps0.3"
			if i == 4 {
				ps, name, tag = 0.7, "hybrid p_s=0.7", "hybrid_ps0.7"
			}
			cfg := expConfig(ps)
			sc, err := buildScenario(o, cfg, o.Seed+820+int64(ps*100), nil, nil)
			if err != nil {
				return row{}, err
			}
			if _, err := sc.storeItems(keys); err != nil {
				return row{}, err
			}
			rs, err := sc.lookupBatch(queries, 4, keys, func(k int) int { return k })
			if err != nil {
				return row{}, err
			}
			sc.observe(o, "Baselines "+name)
			return row{
				name: name, tag: tag,
				hops: meanHops(rs), latency: meanLatencyMs(rs), failure: failureRatio(rs),
			}, nil
		}
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Baselines vs hybrid",
		"system", "mean hops", "mean latency ms", "failure ratio")
	for _, r := range arms {
		t.AddRow(r.name, r.hops, r.latency, r.failure)
		res.Values[r.tag+"_hops"] = r.hops
		if !r.noLatencyValue {
			res.Values[r.tag+"_latency_ms"] = r.latency
		}
		res.Values[r.tag+"_failure"] = r.failure
	}

	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"the hybrid sits between the pure systems: near-structured accuracy with fewer routing hops as p_s grows")
	return res, nil
}

package exp

import (
	"repro/internal/chord"
	"repro/internal/gnutella"
	"repro/internal/idspace"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// RunBaselines compares the standalone Chord and Gnutella implementations
// against the hybrid system at several p_s values on the same topology and
// workload: mean lookup hops, latency and failure ratio. This is the
// "compared to structured / unstructured peer-to-peer networks" framing of
// the paper's conclusions, with the pure systems implemented outright rather
// than taken as the hybrid's degenerate ends.
func RunBaselines(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Baselines")
	keys := keysN(o.Items / 2)
	queries := o.Lookups / 2

	t := metrics.NewTable("Baselines vs hybrid",
		"system", "mean hops", "mean latency ms", "failure ratio")

	// --- Chord ---
	{
		topo, err := expTopology(o, o.Seed+800)
		if err != nil {
			return nil, err
		}
		eng := sim.New(o.Seed + 800)
		net := simnet.New(eng, topo, simnet.DefaultConfig())
		cnet := chord.NewNetwork(net, chord.DefaultConfig())
		stubs := topo.StubNodes()
		var nodes []*chord.Node
		boot := simnet.None
		for i := 0; i < o.N; i++ {
			n := cnet.CreateNode(idspace.ID(eng.Rand().Uint64()), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
			if boot == simnet.None {
				boot = n.Addr
			}
			// Give each join a slice of stabilization time.
			eng.RunUntil(eng.Now() + 600*sim.Millisecond)
			nodes = append(nodes, n)
		}
		eng.RunUntil(eng.Now() + 30*sim.Second)

		for i, key := range keys {
			var done bool
			nodes[(i*11)%len(nodes)].Store(key, "v", func(chord.Result) { done = true })
			for !done && eng.Step() {
			}
		}
		var hops, lat metrics.Summary
		fails := 0
		for i := 0; i < queries; i++ {
			var done bool
			var r chord.Result
			nodes[(i*17)%len(nodes)].Lookup(keys[i%len(keys)], func(res chord.Result) {
				done = true
				r = res
			})
			for !done && eng.Step() {
			}
			if r.OK {
				hops.Add(float64(r.Hops))
				lat.Add(float64(r.Latency) / float64(sim.Millisecond))
			} else {
				fails++
			}
		}
		fr := float64(fails) / float64(queries)
		t.AddRow("chord (pure structured)", hops.Mean(), lat.Mean(), fr)
		res.Values["chord_hops"] = hops.Mean()
		res.Values["chord_latency_ms"] = lat.Mean()
		res.Values["chord_failure"] = fr
	}

	// --- Gnutella ---
	{
		topo, err := expTopology(o, o.Seed+810)
		if err != nil {
			return nil, err
		}
		eng := sim.New(o.Seed + 810)
		net := simnet.New(eng, topo, simnet.DefaultConfig())
		gnet := gnutella.NewNetwork(net, gnutella.DefaultConfig())
		stubs := topo.StubNodes()
		peers := make([]*gnutella.Peer, o.N)
		for i := range peers {
			peers[i] = gnet.Join(stubs[eng.Rand().Intn(len(stubs))], 1)
		}
		for i, key := range keys {
			peers[(i*13)%len(peers)].StoreLocal(key, "v")
		}
		var hops, lat metrics.Summary
		fails := 0
		for i := 0; i < queries; i++ {
			var done bool
			var r gnutella.Result
			peers[(i*19)%len(peers)].Lookup(keys[i%len(keys)], 5, func(res gnutella.Result) {
				done = true
				r = res
			})
			for !done && eng.Step() {
			}
			if r.OK {
				hops.Add(float64(r.Hops))
				lat.Add(float64(r.Latency) / float64(sim.Millisecond))
			} else {
				fails++
			}
		}
		fr := float64(fails) / float64(queries)
		t.AddRow("gnutella (pure unstructured, TTL 5)", hops.Mean(), lat.Mean(), fr)
		res.Values["gnutella_hops"] = hops.Mean()
		res.Values["gnutella_failure"] = fr
	}

	// --- Hybrid at several p_s ---
	for _, ps := range []float64{0.3, 0.7} {
		cfg := expConfig(ps)
		sc, err := buildScenario(o, cfg, o.Seed+820+int64(ps*100), nil, nil)
		if err != nil {
			return nil, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return nil, err
		}
		rs, err := sc.lookupBatch(queries, 4, keys, func(k int) int { return k })
		if err != nil {
			return nil, err
		}
		name := "hybrid p_s=0.3"
		tag := "hybrid_ps0.3"
		if ps > 0.5 {
			name, tag = "hybrid p_s=0.7", "hybrid_ps0.7"
		}
		t.AddRow(name, meanHops(rs), meanLatencyMs(rs), failureRatio(rs))
		res.Values[tag+"_hops"] = meanHops(rs)
		res.Values[tag+"_latency_ms"] = meanLatencyMs(rs)
		res.Values[tag+"_failure"] = failureRatio(rs)
	}

	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"the hybrid sits between the pure systems: near-structured accuracy with fewer routing hops as p_s grows")
	return res, nil
}

package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweep runs fn for every index in [0, n) on a pool of o.workers()
// goroutines and returns the results in index order.
//
// This is the harness behind every experiment's parameter sweep: each sweep
// point is an independent simulation (its own engine, its own seed, its own
// population), so points parallelize perfectly. Determinism is preserved by
// construction: fn must derive all randomness from per-point seeds, results
// are collected by index, and the caller assembles tables in index order, so
// the rendered output is byte-identical for any worker count.
//
// If any point fails, the error of the lowest-indexed failing point is
// returned (matching what a sequential run would have reported first); the
// remaining points still run to completion.
func sweep[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)

	workers := o.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// sweepPoints is sweep over an explicit slice of p_s (or other sweep-axis)
// values, handing fn both the index and the value.
func sweepPoints[T any](o Options, points []float64, fn func(i int, ps float64) (T, error)) ([]T, error) {
	return sweep(o, len(points), func(i int) (T, error) {
		return fn(i, points[i])
	})
}

// workers resolves the worker-pool size: Options.Workers if set, otherwise
// one worker per available CPU.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// RunScale is the memory-density and throughput sweep: it builds systems of
// 10k, 100k and 1M peers (one point at a reduced size in quick mode) and
// reports how many peers fit in a gigabyte of heap and how many simulation
// events per wall-clock second the build-and-drive workload sustains.
//
// The sweep exists to keep the per-peer memory footprint honest: the paper's
// pitch is scalability, and a simulator that needs tens of GB for a million
// peers cannot check any claim at that scale. The rendered table carries only
// engine-deterministic columns (sizes, event counts, lookup outcomes); the
// host-dependent measurements (bytes/peer, peers/GB, events/sec) go into the
// result's key values and notes, so diffing the CSV across runs and machines
// stays meaningful.
//
// Methodology: heap cost is the growth of runtime.MemStats.HeapAlloc across
// the population build, read after a forced GC on both sides, so it counts
// live protocol state (peers, tables, timers, pooled events) rather than
// transient garbage. Throughput divides the engine's dispatched-event counter
// by the wall clock of the whole point (build, maintenance rounds, store and
// lookup batches).
func RunScale(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Scale")

	t := metrics.NewTable("Scale: build-and-drive at increasing population sizes",
		"n", "t_peers", "s_peers", "sim_events", "sim_time_s", "lookups_ok", "lookups")
	for _, n := range scaleSizes(o) {
		p, err := runScalePoint(o, n)
		if err != nil {
			return nil, fmt.Errorf("scale point n=%d: %w", n, err)
		}
		t.AddRow(n, p.tPeers, p.sPeers, p.events, fmt.Sprintf("%.1f", p.simSeconds), p.lookupsOK, p.lookups)

		res.Values[fmt.Sprintf("bytes_per_peer_n%d", n)] = p.bytesPerPeer
		res.Values[fmt.Sprintf("peers_per_gb_n%d", n)] = p.peersPerGB
		res.Values[fmt.Sprintf("events_per_sec_n%d", n)] = p.eventsPerSec
		res.Notes = append(res.Notes, fmt.Sprintf(
			"n=%d: %.0f bytes/peer -> %.0f peers/GB, %.2fM events/sec over %.1fs wall (host-dependent)",
			n, p.bytesPerPeer, p.peersPerGB, p.eventsPerSec/1e6, p.wall.Seconds()))

		if o.Obs != nil {
			reg := obs.NewRegistry()
			reg.Gauge("scale.bytes_per_peer").Set(p.bytesPerPeer)
			reg.Gauge("scale.peers_per_gb").Set(p.peersPerGB)
			reg.Gauge("scale.events_per_sec").Set(p.eventsPerSec)
			reg.Counter("scale.sim_events").Add(int64(p.events))
			reg.Gauge("scale.peers").Set(float64(n))
			o.Obs.Point(fmt.Sprintf("Scale n=%d", n), p.wall, reg.Snapshot())
		}
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"peers/GB counts live heap growth across the build (post-GC), not transient garbage; events/sec is wall-clock and varies by host")
	return res, nil
}

// scaleSizes returns the population ladder. The full sweep is fixed at
// 10k/100k/1M regardless of -n (the point is the ladder, not one size);
// quick mode runs a single reduced point, honoring -n up to 10k so
// `make benchscale` (N=10k) and the test suite (N in the hundreds) share the
// code path.
func scaleSizes(o Options) []int {
	if o.Quick {
		n := o.N
		if n <= 0 || n > 10_000 {
			n = 10_000
		}
		return []int{n}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// scaleConfig is expConfig retuned for very large populations: assignment
// must be O(1) per join (random instead of smallest-network scans), and the
// maintenance period is stretched so the build phase is dominated by joins
// rather than by HELLO rounds over an ever-growing population. The settle
// phase still runs full HELLO rounds — that is the maintenance workload the
// throughput figure measures.
func scaleConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ps = 0.99 // ~1% t-peers: 10k-peer ring under the 1M-peer point
	cfg.Delta = 3
	// With ~1% t-peers an s-network holds ~100 peers; a δ=3 tree of that
	// size runs ~7 levels deep, so the paper-scale TTL of 4 would fail a
	// third of the lookups on pure radius grounds.
	cfg.TTL = 8
	cfg.Assignment = core.AssignRandom
	cfg.HelloEvery = 2000 * sim.Second
	cfg.HelloTimeout = 4800 * sim.Second
	cfg.FingerRefreshEvery = 2000 * sim.Second
	cfg.LookupTimeout = 30 * sim.Second
	cfg.JoinTimeout = 40 * sim.Second
	return cfg
}

// scalePoint is the measurement of one population size.
type scalePoint struct {
	tPeers, sPeers int
	events         uint64
	simSeconds     float64
	lookups        int
	lookupsOK      int
	bytesPerPeer   float64
	peersPerGB     float64
	eventsPerSec   float64
	wall           time.Duration
}

// runScalePoint builds one system of n peers and drives it through a store
// and lookup workload plus two full maintenance rounds.
func runScalePoint(o Options, n int) (p scalePoint, err error) {
	start := time.Now()

	// A compact physical network: peers share stub hosts, so the host graph
	// does not need to grow with the population. The latency matrix is never
	// precomputed — topology-aware routing is off here.
	tc := expTopoConfig(Options{Quick: true})
	topo, err := topology.GenerateTransitStub(tc, o.topoSeed())
	if err != nil {
		return p, err
	}
	cfg := scaleConfig()
	eng := sim.New(o.Seed + int64(n))
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		return p, err
	}

	heapBefore := heapAlloc()
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: n})
	if err != nil {
		return p, err
	}
	grown := float64(heapAlloc()) - float64(heapBefore)
	if grown < 1 {
		grown = 1 // a tiny point can be swallowed by GC noise; avoid /0
	}
	p.bytesPerPeer = grown / float64(n)
	p.peersPerGB = float64(1<<30) / p.bytesPerPeer

	// Two full HELLO rounds over the complete population: every peer pings
	// its neighbors, watchdogs re-arm, t-peers sync sizes and refresh
	// fingers. This is the steady-state maintenance workload.
	sys.Settle(2 * cfg.HelloEvery)

	// A store+lookup batch exercises the data path end to end.
	items := o.Items
	if items > n {
		items = n
	}
	lookups := o.Lookups
	keys := make([]string, items)
	for i := range keys {
		keys[i] = fmt.Sprintf("scale-%07d", i)
	}
	sc := &scenario{Sys: sys, Eng: eng, Net: net, Topo: topo, Peers: peers, wallStart: start}
	if _, err := sc.storeItems(keys); err != nil {
		return p, err
	}
	results, err := sc.lookupBatch(lookups, 0, keys, func(i int) int { return i * 7 })
	if err != nil {
		return p, err
	}
	p.lookups = len(results)
	for _, r := range results {
		if r.OK {
			p.lookupsOK++
		}
	}

	p.tPeers = len(sys.TPeers())
	p.sPeers = len(sys.SPeers())
	p.events = eng.Dispatched()
	p.simSeconds = float64(eng.Now()) / float64(sim.Second)
	p.wall = time.Since(start)
	if s := p.wall.Seconds(); s > 0 {
		p.eventsPerSec = float64(p.events) / s
	}
	return p, nil
}

// heapAlloc returns the live heap after a forced collection.
func heapAlloc() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

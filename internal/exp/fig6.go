package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// RunFig6a regenerates Fig. 6a: the average lookup latency (simulated
// milliseconds) with and without link heterogeneity support, as p_s grows.
// With heterogeneity the server makes the fastest third of peers t-peers and
// connect points gate on link usage, which should cut latency most visibly
// for p_s between 0.4 and 0.8 (the paper reports ~20% at p_s = 0.7).
func RunFig6a(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig6a")

	points := o.psPoints()
	keys := keysFor(o)
	modes := []struct {
		name   string
		hetero bool
	}{
		{"basic", false},
		{"heterogeneity", true},
	}

	lats, err := sweep(o, len(modes)*len(points), func(i int) (histVal, error) {
		mode := modes[i/len(points)]
		ps := points[i%len(points)]
		cfg := paperRoutingConfig(ps)
		cfg.Heterogeneity = mode.hetero
		sc, err := buildScenario(o, cfg, o.Seed+400+int64(ps*100), capacities13(o.N), nil)
		if err != nil {
			return histVal{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return histVal{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups/2, 4, keys, func(k int) int { return k })
		if err != nil {
			return histVal{}, err
		}
		sc.observe(o, fmt.Sprintf("Fig6a %s ps=%.2f", mode.name, ps))
		return histVal{meanLatencyMs(rs), sc.histPoint()}, nil
	})
	if err != nil {
		return nil, err
	}
	curves := make([]*metrics.Series, len(modes))
	for i, mode := range modes {
		curves[i] = &metrics.Series{Name: mode.name}
		for pi, ps := range points {
			curves[i].Add(ps, lats[i*len(points)+pi].v)
		}
	}

	t := metrics.NewTable("Fig 6a: average lookup latency (ms) with/without link heterogeneity")
	t.Headers = append([]string{"p_s"}, seriesNames(curves)...)
	for i, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	if o.Hist {
		labels := make([]string, len(lats))
		hps := make([]histPoint, len(lats))
		for i := range lats {
			labels[i] = fmt.Sprintf("%s ps=%.2f", modes[i/len(points)].name, points[i%len(points)])
			hps[i] = lats[i].hp
		}
		res.Tables = append(res.Tables, histTable(
			"Fig 6a supplement: lookup latency percentiles per mode and p_s", labels, hps))
	}

	mid := pointNear(points, 0.7)
	base, _ := curves[0].YAt(mid)
	het, _ := curves[1].YAt(mid)
	res.Values["latency_basic_ps0.7"] = base
	res.Values["latency_hetero_ps0.7"] = het
	if base > 0 {
		res.Values["hetero_improvement_ps0.7"] = (base - het) / base
	}
	res.Notes = append(res.Notes,
		"paper: latency decreases with p_s; heterogeneity support lowers it further, most visibly for p_s in [0.4, 0.8]")
	return res, nil
}

// RunFig6b regenerates Fig. 6b: the average lookup latency with and without
// topology awareness (landmark binning), for 8 and 12 landmarks. The aware
// curves should drop faster as p_s grows and converge with the basic curve
// near p_s = 0.9.
func RunFig6b(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig6b")

	points := o.psPoints()
	keys := keysFor(o)
	modes := []struct {
		name      string
		aware     bool
		landmarks int
	}{
		{"basic", false, 0},
		{"topo-aware L=8", true, 8},
		{"topo-aware L=12", true, 12},
	}

	lats, err := sweep(o, len(modes)*len(points), func(i int) (histVal, error) {
		mode := modes[i/len(points)]
		ps := points[i%len(points)]
		cfg := paperRoutingConfig(ps)
		if mode.aware {
			cfg.TopologyAware = true
			cfg.Landmarks = mode.landmarks
			cfg.Assignment = core.AssignCluster
		}
		sc, err := buildScenario(o, cfg, o.Seed+500+int64(ps*100), nil, nil)
		if err != nil {
			return histVal{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return histVal{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups/3, 4, keys, func(k int) int { return k })
		if err != nil {
			return histVal{}, err
		}
		sc.observe(o, fmt.Sprintf("Fig6b %s ps=%.2f", mode.name, ps))
		return histVal{meanLatencyMs(rs), sc.histPoint()}, nil
	})
	if err != nil {
		return nil, err
	}
	curves := make([]*metrics.Series, len(modes))
	for i, mode := range modes {
		curves[i] = &metrics.Series{Name: mode.name}
		for pi, ps := range points {
			curves[i].Add(ps, lats[i*len(points)+pi].v)
		}
	}

	t := metrics.NewTable("Fig 6b: average lookup latency (ms) with/without topology awareness")
	t.Headers = append([]string{"p_s"}, seriesNames(curves)...)
	for i, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	if o.Hist {
		labels := make([]string, len(lats))
		hps := make([]histPoint, len(lats))
		for i := range lats {
			labels[i] = fmt.Sprintf("%s ps=%.2f", modes[i/len(points)].name, points[i%len(points)])
			hps[i] = lats[i].hp
		}
		res.Tables = append(res.Tables, histTable(
			"Fig 6b supplement: lookup latency percentiles per mode and p_s", labels, hps))
	}

	mid := pointNear(points, 0.3)
	basic, _ := curves[0].YAt(mid)
	aware8, _ := curves[1].YAt(mid)
	aware12, _ := curves[2].YAt(mid)
	res.Values["latency_basic_ps0.3"] = basic
	res.Values["latency_aware8_ps0.3"] = aware8
	res.Values["latency_aware12_ps0.3"] = aware12
	res.Notes = append(res.Notes,
		"paper: awareness helps most around p_s = 0.3; more landmarks help more; curves merge near p_s = 0.9")
	return res, nil
}

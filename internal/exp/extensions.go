package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// RunExtCaching evaluates the caching scheme the paper's conclusion proposes
// as future work: under a Zipf-skewed lookup workload, hot items overwhelm
// their holders; with caching the load spreads to surrogates. Reported per
// mode: the hottest peer's serve count, the serve-count Gini, and mean
// latency.
func RunExtCaching(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ExtCaching")

	keys := keysN(o.Items / 4) // small universe so Zipf repeats bite
	modes := []bool{false, true}

	type cacheArm struct {
		maxServes     uint64
		gini, latency float64
		pushes, hits  uint64
	}
	arms, err := sweep(o, len(modes), func(i int) (cacheArm, error) {
		caching := modes[i]
		cfg := expConfig(0.8)
		cfg.Caching = caching
		cfg.CacheHotThreshold = 8
		cfg.CacheWindow = 60 * sim.Second
		cfg.CacheTTL = 600 * sim.Second
		sc, err := buildScenario(o, cfg, o.Seed+900, nil, nil)
		if err != nil {
			return cacheArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return cacheArm{}, err
		}
		zipf, err := workload.NewZipfPicker(sc.Eng.Rand(), 1.3, 1, len(keys))
		if err != nil {
			return cacheArm{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups, 4, keys, func(int) int { return zipf.Pick() })
		if err != nil {
			return cacheArm{}, err
		}
		var a cacheArm
		var serves []int
		for _, p := range sc.Sys.Peers() {
			serves = append(serves, int(p.ServeCount()))
			if p.ServeCount() > a.maxServes {
				a.maxServes = p.ServeCount()
			}
		}
		st := sc.Sys.Stats()
		a.gini = gini(serves)
		a.latency = meanLatencyMs(rs)
		a.pushes, a.hits = st.CachePushes, st.CacheHits
		sc.observe(o, "ExtCaching "+modeName(caching))
		return a, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: future-work caching under Zipf lookups (p_s=0.8)",
		"mode", "max serves", "serve gini", "mean ms", "cache pushes", "cache hits")
	for i, caching := range modes {
		a := arms[i]
		t.AddRow(modeName(caching), a.maxServes, a.gini, a.latency, a.pushes, a.hits)
		tag := "nocache"
		if caching {
			tag = "cache"
		}
		res.Values["maxserves_"+tag] = float64(a.maxServes)
		res.Values["gini_"+tag] = a.gini
		res.Values["latency_"+tag] = a.latency
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper (future work): 'distribute the load among as many peers as possible so that no peer is overwhelmed'")
	return res, nil
}

func modeName(caching bool) string {
	if caching {
		return "with caching"
	}
	return "no caching"
}

// RunExtWalk compares flooding with k-walker random walks (§3.1 allows both)
// inside large s-networks: contacts per lookup, failure ratio and latency.
func RunExtWalk(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ExtWalk")

	keys := keysFor(o)
	modes := []bool{false, true}

	type walkArm struct {
		contacts, failure, latency float64
	}
	arms, err := sweep(o, len(modes), func(i int) (walkArm, error) {
		walk := modes[i]
		cfg := expConfig(0.9)
		cfg.RandomWalk = walk
		cfg.WalkCount = 3
		cfg.WalkTTL = 12
		sc, err := buildScenario(o, cfg, o.Seed+910, nil, nil)
		if err != nil {
			return walkArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return walkArm{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups/2, 4, keys, func(k int) int { return k })
		if err != nil {
			return walkArm{}, err
		}
		if walk {
			sc.observe(o, "ExtWalk walk")
		} else {
			sc.observe(o, "ExtWalk flood")
		}
		return walkArm{
			contacts: float64(totalContacts(rs)) / float64(len(rs)),
			failure:  failureRatio(rs),
			latency:  meanLatencyMs(rs),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: flooding vs k-walker random walks (p_s=0.9)",
		"search", "contacts/lookup", "failure", "mean ms")
	for i, walk := range modes {
		a := arms[i]
		name, tag := "flood (TTL 4)", "flood"
		if walk {
			name, tag = "3 walkers, TTL 12", "walk"
		}
		t.AddRow(name, a.contacts, a.failure, a.latency)
		res.Values["contacts_"+tag] = a.contacts
		res.Values["failure_"+tag] = a.failure
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"walks bound per-query bandwidth at the price of a higher miss probability (§3.1)")
	return res, nil
}

// RunLinkStress measures the §5.2 motivation directly: the maximum physical
// link stress (copies of overlay messages crossing one physical link) with
// and without topology-aware peer clustering.
func RunLinkStress(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("LinkStress")

	keys := keysN(o.Items / 2)
	modes := []bool{false, true}

	type stressArm struct {
		maxStress, latency float64
	}
	arms, err := sweep(o, len(modes), func(i int) (stressArm, error) {
		aware := modes[i]
		// The simnet tracks per-link stress, so each arm builds its own net
		// over the shared immutable topology graph.
		topoGraph, err := expTopology(o, o.topoSeed())
		if err != nil {
			return stressArm{}, err
		}
		armStart := time.Now()
		eng := sim.New(o.Seed + 920)
		ncfg := simnet.DefaultConfig()
		ncfg.TrackLinkStress = true
		net := simnet.New(eng, topoGraph, ncfg)
		if o.Trace != nil {
			net.SetTracer(o.Trace)
		}
		cfg := expConfig(0.7)
		if aware {
			cfg.TopologyAware = true
			cfg.Landmarks = 8
			cfg.Assignment = core.AssignCluster
		}
		sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topoGraph.StubNodes()[0])
		if err != nil {
			return stressArm{}, err
		}
		peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: o.N})
		if err != nil {
			return stressArm{}, err
		}
		if o.Trace != nil {
			sys.SetTracer(o.Trace)
		}
		sys.Settle(2 * cfg.HelloEvery)
		sc := &scenario{Sys: sys, Eng: eng, Net: net, Topo: topoGraph, Peers: peers, Joins: joins, wallStart: armStart}
		if _, err := sc.storeItems(keys); err != nil {
			return stressArm{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups/2, 4, keys, func(k int) int { return k })
		if err != nil {
			return stressArm{}, err
		}
		if aware {
			sc.observe(o, "LinkStress aware")
		} else {
			sc.observe(o, "LinkStress basic")
		}
		return stressArm{
			maxStress: float64(net.MaxLinkStress()),
			latency:   meanLatencyMs(rs),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: physical link stress with/without topology awareness (p_s=0.7)",
		"mode", "max link stress", "mean ms")
	for i, aware := range modes {
		a := arms[i]
		name, tag := "basic", "basic"
		if aware {
			name, tag = "topology-aware (8 landmarks)", "aware"
		}
		t.AddRow(name, a.maxStress, a.latency)
		res.Values["maxstress_"+tag] = a.maxStress
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"link stress: 'the number of copies of a message transmitted over a certain physical link' (§5.2)")
	return res, nil
}

// RunChurn runs the system under live Poisson churn — joins, graceful leaves
// and crashes arriving concurrently with the lookup workload — and reports
// failure ratio and recovery counters per churn intensity. This extends
// Fig. 5b from a one-shot crash wave to sustained membership turnover.
func RunChurn(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Churn")

	intensities := []struct {
		name               string
		join, leave, crash float64 // events per simulated second
	}{
		{"calm (0.2/s)", 0.1, 0.05, 0.05},
		{"busy (1/s)", 0.5, 0.25, 0.25},
		{"storm (4/s)", 2, 1, 1},
	}
	keys := keysN(o.Items / 2)

	type churnArm struct {
		failure, latency    float64
		promotions, rejoins int
		peersEnd            int
	}
	arms, err := sweep(o, len(intensities), func(i int) (churnArm, error) {
		in := intensities[i]
		cfg := expConfig(0.7)
		sc, err := buildScenario(o, cfg, o.Seed+930+int64(i), nil, nil)
		if err != nil {
			return churnArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return churnArm{}, err
		}
		schedule := workload.PoissonSchedule(sc.Eng.Rand(), workload.ChurnConfig{
			Duration:  120 * sim.Second,
			JoinRate:  in.join,
			LeaveRate: in.leave,
			CrashRate: in.crash,
		})
		applyChurn(sc, schedule)

		rs, err := sc.lookupBatch(o.Lookups/3, 4, keys, func(k int) int { return k })
		if err != nil {
			return churnArm{}, err
		}
		if err := sc.Sys.CheckRing(); err != nil {
			return churnArm{}, fmt.Errorf("ring broken after churn %q: %w", in.name, err)
		}
		if err := sc.Sys.CheckTrees(); err != nil {
			return churnArm{}, fmt.Errorf("trees broken after churn %q: %w", in.name, err)
		}
		st := sc.Sys.Stats()
		sc.observe(o, "Churn "+in.name)
		return churnArm{
			failure:    failureRatio(rs),
			latency:    meanLatencyMs(rs),
			promotions: st.Promotions,
			rejoins:    st.Rejoins,
			peersEnd:   sc.Sys.NumPeers(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Extension: lookups under live churn (p_s=0.7)",
		"churn", "failure", "mean ms", "promotions", "rejoins", "peers end")
	for i, in := range intensities {
		a := arms[i]
		t.AddRow(in.name, a.failure, a.latency, a.promotions, a.rejoins, a.peersEnd)
		res.Values[fmt.Sprintf("churnfail_%d", i)] = a.failure
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"the ring and tree invariants are re-verified after every churn phase")
	return res, nil
}

// applyChurn executes a churn schedule against a built scenario: joins use
// fresh hosts, leaves/crashes resolve their population index against the
// currently live peers.
func applyChurn(sc *scenario, schedule []workload.ChurnEvent) {
	sys := sc.Sys
	stubs := sc.Topo.StubNodes()
	base := sc.Eng.Now()
	for _, ev := range schedule {
		ev := ev
		sc.Eng.At(base+ev.At, func() {
			switch ev.Kind {
			case workload.Join:
				sys.Join(core.JoinOpts{
					Host:     stubs[sc.Eng.Rand().Intn(len(stubs))],
					Capacity: 1,
				}, nil)
			case workload.Leave, workload.Crash:
				live := sys.Peers()
				if len(live) <= 3 {
					return
				}
				p := live[ev.Peer%len(live)]
				if ev.Kind == workload.Leave {
					p.Leave()
				} else {
					p.Crash()
				}
			}
		})
	}
	// Run through the churn phase plus a recovery window: failure
	// detection (HELLO timeouts), server arbitration and ring
	// stabilization all need a few rounds to quiesce after the last event.
	sys.Settle(120*sim.Second + 10*sys.Cfg.HelloTimeout + 10*sys.Cfg.FingerRefreshEvery)
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// RunChurnStorm is the randomized crash-test harness from the protocol
// hardening work: each arm runs repeated epochs of concurrent joins, graceful
// leaves and crashes over a network injecting message drop, duplication and
// delay jitter at a swept rate. After every epoch the faults are lifted, the
// system settles, and the full invariant suite (ring pointers, tree shape,
// data ownership, watchdog/op-table hygiene, server accounting) must hold —
// any violation fails the experiment with the rate and epoch that exposed it.
// The zero-rate arm keeps the fault layer attached but inert, so the run also
// demonstrates that an all-zero policy is behaviorally identical to none.
func RunChurnStorm(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("ChurnStorm")

	rates := []float64{0, 0.01, 0.05}
	epochs := 20
	if o.Quick {
		epochs = 6
	}
	keys := keysN(o.Items / 2)

	type stormArm struct {
		failure, latency    float64
		dropped, duplicated uint64
		jittered            uint64
		promotions, rejoins int
		peersEnd            int
	}
	arms, err := sweep(o, len(rates), func(i int) (stormArm, error) {
		rate := rates[i]
		fc := simnet.FaultConfig{
			DropRate:  rate,
			DupRate:   rate,
			JitterMax: 10 * sim.Millisecond,
			Seed:      5000 + int64(i),
		}
		oa := o
		oa.Faults = &fc // armed for the build too: joins must survive loss
		cfg := expConfig(0.7)
		sc, err := buildScenario(oa, cfg, o.Seed+970+int64(i), nil, nil)
		if err != nil {
			return stormArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return stormArm{}, err
		}
		sys := sc.Sys
		stubs := sc.Topo.StubNodes()
		var fs simnet.FaultStats
		accumulate := func() {
			if f := sc.Net.Faults(); f != nil {
				s := f.Stats()
				fs.Dropped += s.Dropped
				fs.Duplicated += s.Duplicated
				fs.Jittered += s.Jittered
				fs.PartitionDropped += s.PartitionDropped
			}
		}
		for epoch := 0; epoch < epochs; epoch++ {
			// One storm burst: nine churn events over ~3 seconds.
			for k := 0; k < 9; k++ {
				at := sc.Eng.Now() + sim.Time(k)*300*sim.Millisecond
				switch k % 3 {
				case 0:
					host := stubs[sc.Eng.Rand().Intn(len(stubs))]
					sc.Eng.At(at, func() {
						sys.Join(core.JoinOpts{Host: host, Capacity: 1}, nil)
					})
				case 1:
					sc.Eng.At(at, func() {
						live := sys.Peers()
						if len(live) <= 5 {
							return
						}
						live[sc.Eng.Rand().Intn(len(live))].Leave()
					})
				default:
					sc.Eng.At(at, func() {
						live := sys.Peers()
						if len(live) <= 5 {
							return
						}
						live[sc.Eng.Rand().Intn(len(live))].Crash()
					})
				}
			}
			sys.Settle(4 * cfg.HelloTimeout)
			// Lift the faults for the quiescence check: under sustained
			// loss some edge is always mid-repair (dropped HELLOs keep
			// producing false crash detections), so the invariant contract
			// is convergence once delivery is restored.
			accumulate()
			sc.Net.SetFaults(nil)
			sys.Settle(6 * cfg.HelloTimeout)
			if err := sys.CheckInvariants(); err != nil {
				return stormArm{}, fmt.Errorf("churn storm drop=%g epoch %d: %w", rate, epoch, err)
			}
			sc.Net.SetFaults(simnet.NewFaults(fc))
		}
		// Measure lookups with the faults still armed: the failure column
		// reports degradation under loss, not post-recovery performance.
		rs, err := sc.lookupBatch(o.Lookups/3, 4, keys, func(k int) int { return k })
		if err != nil {
			return stormArm{}, err
		}
		accumulate()
		sc.Net.SetFaults(nil)
		st := sys.Stats()
		sc.observe(o, fmt.Sprintf("ChurnStorm drop=%g", rate))
		return stormArm{
			failure:    failureRatio(rs),
			latency:    meanLatencyMs(rs),
			dropped:    fs.Dropped,
			duplicated: fs.Duplicated,
			jittered:   fs.Jittered,
			promotions: st.Promotions,
			rejoins:    st.Rejoins,
			peersEnd:   sys.NumPeers(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("Hardening: %d-epoch churn storm under injected faults (p_s=0.7)", epochs),
		"drop/dup rate", "failure", "mean ms", "dropped", "duplicated", "jittered",
		"promotions", "rejoins", "peers end")
	for i, rate := range rates {
		a := arms[i]
		t.AddRow(fmt.Sprintf("%.2f", rate), a.failure, a.latency,
			int(a.dropped), int(a.duplicated), int(a.jittered),
			a.promotions, a.rejoins, a.peersEnd)
		res.Values[fmt.Sprintf("stormfail_%d", i)] = a.failure
		res.Values[fmt.Sprintf("stormdrop_%d", i)] = float64(a.dropped)
	}
	res.Values["storm_epochs"] = float64(epochs)
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"every epoch ends with the full invariant suite checked at quiescence (faults lifted)",
		"rate 0 keeps the fault layer attached but inert, matching the no-faults baseline")
	return res, nil
}

package exp

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/metrics"
)

// RunFig3a regenerates Fig. 3a: the average join latency (in overlay hops)
// as a function of p_s for δ in {2, 3, 4}. Analytic curves come from Eq. (1);
// the simulated curve measures the hop counts of real joins at δ = 3 and
// must reproduce the U shape with its minimum around p_s = 0.7-0.8.
func RunFig3a(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig3a")

	deltas := []float64{2, 3, 4}
	points := o.psPoints()

	curves := make([]*metrics.Series, 0, len(deltas)+1)
	for _, d := range deltas {
		s := &metrics.Series{Name: fmt.Sprintf("analytic δ=%g", d)}
		for _, ps := range points {
			s.Add(ps, analytic.JoinLatency(analytic.Params{N: float64(o.N), Ps: ps, Delta: d}))
		}
		curves = append(curves, s)
	}

	simHops, err := sweepPoints(o, points, func(_ int, ps float64) (float64, error) {
		cfg := expConfig(ps)
		sc, err := buildScenario(o, cfg, o.Seed+int64(ps*100), nil, nil)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, js := range sc.Joins {
			total += float64(js.Hops)
		}
		sc.observe(o, fmt.Sprintf("Fig3a ps=%.2f", ps))
		return total / float64(len(sc.Joins)), nil
	})
	if err != nil {
		return nil, err
	}
	simSeries := &metrics.Series{Name: "simulated δ=3"}
	for i, ps := range points {
		simSeries.Add(ps, simHops[i])
	}
	curves = append(curves, simSeries)

	t := metrics.NewTable("Fig 3a: average join latency (hops) vs p_s")
	t.Headers = append([]string{"p_s"}, seriesNames(curves)...)
	for i, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	for _, d := range deltas {
		res.Values[fmt.Sprintf("optimal_ps_delta%g", d)] = analytic.OptimalJoinPs(float64(o.N), d)
	}
	res.Values["sim_argmin_ps"] = simSeries.ArgMin()
	res.Notes = append(res.Notes,
		"paper: join latency is minimized around p_s = 0.7 (δ=2); larger δ shifts the minimum right and lowers the curve")
	return res, nil
}

// RunFig3b regenerates Fig. 3b: the average data lookup latency (hops) as a
// function of p_s for δ in {2, 3, 4}, plus the measured hop count of
// simulated lookups at δ = 3. The curves must be flat-high for p_s < 0.5 and
// fall as p_s grows, with larger δ below smaller δ.
func RunFig3b(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig3b")

	deltas := []float64{2, 3, 4}
	points := o.psPoints()
	const ttl = 4

	curves := make([]*metrics.Series, 0, len(deltas)+1)
	for _, d := range deltas {
		s := &metrics.Series{Name: fmt.Sprintf("analytic δ=%g", d)}
		for _, ps := range points {
			s.Add(ps, analytic.LookupLatency(analytic.Params{N: float64(o.N), Ps: ps, Delta: d, TTL: ttl}))
		}
		curves = append(curves, s)
	}

	keys := keysFor(o)
	simHops, err := sweepPoints(o, points, func(_ int, ps float64) (histVal, error) {
		cfg := expConfig(ps)
		cfg.TTL = ttl
		sc, err := buildScenario(o, cfg, o.Seed+100+int64(ps*100), nil, nil)
		if err != nil {
			return histVal{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return histVal{}, err
		}
		rs, err := sc.lookupBatch(o.Lookups, ttl, keys, func(i int) int { return i })
		if err != nil {
			return histVal{}, err
		}
		sc.observe(o, fmt.Sprintf("Fig3b ps=%.2f", ps))
		return histVal{meanHops(rs), sc.histPoint()}, nil
	})
	if err != nil {
		return nil, err
	}
	simSeries := &metrics.Series{Name: "simulated δ=3"}
	for i, ps := range points {
		simSeries.Add(ps, simHops[i].v)
	}
	curves = append(curves, simSeries)

	t := metrics.NewTable("Fig 3b: average lookup latency (hops) vs p_s")
	t.Headers = append([]string{"p_s"}, seriesNames(curves)...)
	for i, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	if o.Hist {
		labels := make([]string, len(points))
		hps := make([]histPoint, len(points))
		for i, ps := range points {
			labels[i] = fmt.Sprintf("ps=%.2f", ps)
			hps[i] = simHops[i].hp
		}
		res.Tables = append(res.Tables, histTable(
			"Fig 3b supplement: simulated lookup percentiles per p_s", labels, hps))
	}

	first, _ := simSeries.YAt(points[0])
	last, _ := simSeries.YAt(points[len(points)-1])
	res.Values["sim_hops_at_low_ps"] = first
	res.Values["sim_hops_at_high_ps"] = last
	res.Notes = append(res.Notes,
		"paper: latency is flat for p_s < 0.5 (lookups dominated by the t-network) and falls as p_s grows")
	return res, nil
}

// seriesNames extracts curve names for table headers.
func seriesNames(curves []*metrics.Series) []string {
	names := make([]string, len(curves))
	for i, c := range curves {
		names[i] = c.Name
	}
	return names
}

// keysFor builds the experiment's key universe.
func keysFor(o Options) []string {
	return keysN(o.Items)
}

func keysN(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%06d", i)
	}
	return keys
}

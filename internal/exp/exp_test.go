package exp

import (
	"strconv"
	"strings"
	"testing"
)

// testOptions is small enough for CI but large enough for the paper's shapes
// to emerge.
func testOptions() Options {
	return Options{Seed: 42, N: 150, Items: 600, Lookups: 300, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"Fig3a", "Fig3b", "Fig4", "Fig5a", "Fig5b", "Fig6a", "Fig6b", "Table2",
		"AblationTree", "AblationBypass", "AblationRouting", "Baselines",
		"ExtCaching", "ExtWalk", "LinkStress", "Churn", "ChurnStorm", "Scale"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig5a"); !ok {
		t.Error("ByID not case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	d := DefaultOptions()
	if o.Seed != d.Seed || o.N != d.N || o.Items != d.Items || o.Lookups != d.Lookups {
		t.Fatalf("normalize: %+v", o)
	}
	if got := (Options{Quick: true}).psPoints(); len(got) != 5 {
		t.Fatalf("quick sweep has %d points", len(got))
	}
	if got := (Options{}).psPoints(); len(got) != 10 {
		t.Fatalf("full sweep has %d points", len(got))
	}
}

func TestFig3aShape(t *testing.T) {
	res, err := RunFig3a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The analytic minimum sits in the paper's 0.7..0.85 band.
	for _, d := range []string{"2", "3", "4"} {
		opt := res.Values["optimal_ps_delta"+d]
		if opt < 0.55 || opt > 0.95 {
			t.Errorf("delta %s: analytic optimum %v out of band", d, opt)
		}
	}
	// The simulated curve's minimum is away from the pure-structured end.
	if res.Values["sim_argmin_ps"] < 0.5 {
		t.Errorf("simulated join latency minimized at ps=%v; paper says ~0.7+", res.Values["sim_argmin_ps"])
	}
	if len(res.Tables) == 0 || !strings.Contains(res.String(), "p_s") {
		t.Error("missing table output")
	}
}

func TestFig3bShape(t *testing.T) {
	res, err := RunFig3b(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo := res.Values["sim_hops_at_low_ps"]
	hi := res.Values["sim_hops_at_high_ps"]
	if lo <= 0 {
		t.Fatal("no simulated hops at low ps")
	}
	// With finger routing the ring term is logarithmic, so at this small
	// scale the simulated curve is near-flat: the climb+flood hops added
	// at high p_s roughly offset the saved (logarithmic) ring hops. Guard
	// only against material growth.
	if hi > lo*1.35 {
		t.Errorf("lookup hops grew with ps: low=%v high=%v", lo, hi)
	}
	// The analytic curves (what Fig. 3b actually plots) must fall.
	tbl := res.Tables[0]
	firstRow, lastRow := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	first, err1 := strconv.ParseFloat(firstRow[1], 64)
	last, err2 := strconv.ParseFloat(lastRow[1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable cells %q %q", firstRow[1], lastRow[1])
	}
	if first <= last {
		t.Errorf("analytic δ=2 curve not decreasing: %v -> %v", first, last)
	}
}

func TestFig4PlacementShapes(t *testing.T) {
	res, err := RunFig4(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At high ps, scheme 1 leaves most peers empty; scheme 2 fixes that.
	z1 := res.Values["zerofrac_t-peer_ps0.9"]
	z2 := res.Values["zerofrac_spread_ps0.9"]
	if z1 < 0.5 {
		t.Errorf("scheme 1 empty fraction %v at ps=0.9; paper reports ~0.85", z1)
	}
	if z2 >= z1 {
		t.Errorf("scheme 2 did not reduce the empty fraction: %v vs %v", z2, z1)
	}
	// Scheme 2 is flatter: lower max and lower Gini at high ps.
	if res.Values["gini_spread_ps0.9"] >= res.Values["gini_t-peer_ps0.9"] {
		t.Errorf("scheme 2 gini %v >= scheme 1 gini %v",
			res.Values["gini_spread_ps0.9"], res.Values["gini_t-peer_ps0.9"])
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := RunFig5a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Near zero below ps=0.5 for every TTL.
	for _, ttl := range []string{"1", "2", "4"} {
		if v := res.Values["fail_ttl"+ttl+"_low_ps"]; v > 0.02 {
			t.Errorf("ttl %s: failure %v at low ps; paper says ~0", ttl, v)
		}
	}
	// At ps=0.9 larger TTLs fail less.
	f1 := res.Values["fail_ttl1_ps0.9"]
	f4 := res.Values["fail_ttl4_ps0.9"]
	if f1 <= f4 {
		t.Errorf("TTL ordering violated at ps=0.9: ttl1=%v ttl4=%v", f1, f4)
	}
	if f1 == 0 {
		t.Error("ttl=1 never failed at ps=0.9; flood radius not binding")
	}
}

func TestFig5bShape(t *testing.T) {
	res, err := RunFig5b(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []string{"0.1", "0.5", "0.9"} {
		base := res.Values["crashfail_ps"+ps+"_base"]
		worst := res.Values["crashfail_ps"+ps+"_worst"]
		if worst <= base {
			t.Errorf("ps=%s: crash failures did not grow: %v -> %v", ps, base, worst)
		}
		// The paper: failure ratio roughly tracks the crashed fraction
		// (lost data). 20% crashed => failures within a loose band; the
		// upper end is wide because t-peers carry disproportionate load
		// at small p_s, so losing one loses many items.
		if worst < 0.05 || worst > 0.8 {
			t.Errorf("ps=%s: worst crash failure %v implausible for 20%% crashes", ps, worst)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo := res.Values["connum_ps0_ttl4"]
	hi := res.Values["connum_ps0.9_ttl4"]
	if lo <= 0 {
		t.Fatal("no contacts at ps=0")
	}
	if hi >= lo {
		t.Errorf("connum did not fall with ps: %v -> %v", lo, hi)
	}
	if ratio := res.Values["connum_ratio_ps0.9_vs_ps0"]; ratio > 0.7 {
		t.Errorf("connum at ps=0.9 is %.0f%% of structured; paper reports a large drop", ratio*100)
	}
}

func TestAblationTreeShape(t *testing.T) {
	res, err := RunAblationTree(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["mesh_duplicates_per_query"] <= 0 {
		t.Error("mesh produced no duplicates")
	}
	if res.Values["tree_duplicates_per_query"] != 0 {
		t.Error("tree produced duplicates")
	}
}

func TestBaselinesShape(t *testing.T) {
	res, err := RunBaselines(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["chord_failure"] > 0.05 {
		t.Errorf("chord failure ratio %v; structured lookups should be ~exact", res.Values["chord_failure"])
	}
	if res.Values["chord_hops"] <= 0 || res.Values["hybrid_ps0.7_hops"] <= 0 {
		t.Error("missing hop measurements")
	}
	if res.Values["hybrid_ps0.7_failure"] > 0.1 {
		t.Errorf("hybrid failure %v too high at TTL 4", res.Values["hybrid_ps0.7_failure"])
	}
	if res.Values["kad_failure"] > 0.05 {
		t.Errorf("kademlia failure ratio %v; iterative lookups should be ~exact", res.Values["kad_failure"])
	}
	if res.Values["kad_hops"] <= 0 || res.Values["kad_latency_ms"] <= 0 {
		t.Error("missing kademlia measurements")
	}
}

// TestBaselinesDeterminism is the baseline determinism gate: all arms —
// hybrid, Chord, Gnutella, Kademlia — must render byte-identically across
// repeated runs at the same seed.
func TestBaselinesDeterminism(t *testing.T) {
	r1, err := RunBaselines(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBaselines(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatalf("baselines are not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", r1, r2)
	}
}

// TestAblationRoutingGate is the PR-10 acceptance gate: under the same
// fault schedule, the α=3 + path-cache arm must strictly beat the α=1
// baseline on failure ratio or latency (it loses strictly on neither).
func TestAblationRoutingGate(t *testing.T) {
	res, err := RunAblationRouting(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	f1, fc := res.Values["alpha1_failure"], res.Values["alpha3cache_failure"]
	l1, lc := res.Values["alpha1_latency_ms"], res.Values["alpha3cache_latency_ms"]
	if !(fc < f1 || lc < l1) {
		t.Fatalf("α=3+cache does not beat α=1 under faults: failure %v vs %v, latency %v vs %v",
			fc, f1, lc, l1)
	}
	if res.Values["alpha3_probes"] <= 0 {
		t.Error("α=3 arm sent no extra probes")
	}
	if res.Values["alpha3cache_hint_uses"] <= 0 {
		t.Error("path-cache arm recorded no hint uses")
	}
}

func TestResultString(t *testing.T) {
	res := newResult("X")
	res.Values["a"] = 1
	res.Notes = append(res.Notes, "hello")
	out := res.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "note: hello") {
		t.Fatalf("render: %s", out)
	}
}

func TestExtCachingShape(t *testing.T) {
	res, err := RunExtCaching(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["maxserves_cache"] >= res.Values["maxserves_nocache"] {
		t.Errorf("caching did not flatten the hottest peer: %v vs %v",
			res.Values["maxserves_cache"], res.Values["maxserves_nocache"])
	}
}

func TestExtWalkShape(t *testing.T) {
	res, err := RunExtWalk(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["failure_flood"] > res.Values["failure_walk"] {
		t.Errorf("flooding failed more than walks: %v vs %v",
			res.Values["failure_flood"], res.Values["failure_walk"])
	}
}

func TestLinkStressShape(t *testing.T) {
	res, err := RunLinkStress(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["maxstress_basic"] <= 0 || res.Values["maxstress_aware"] <= 0 {
		t.Fatal("link stress not measured")
	}
	// Topology awareness should not make the worst link busier.
	if res.Values["maxstress_aware"] > res.Values["maxstress_basic"]*1.2 {
		t.Errorf("awareness increased max link stress: %v vs %v",
			res.Values["maxstress_aware"], res.Values["maxstress_basic"])
	}
}

func TestChurnShape(t *testing.T) {
	res, err := RunChurn(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Failure grows with churn intensity.
	if res.Values["churnfail_2"] < res.Values["churnfail_0"] {
		t.Errorf("storm churn failed less than calm churn: %v vs %v",
			res.Values["churnfail_2"], res.Values["churnfail_0"])
	}
}

func TestFig6aShape(t *testing.T) {
	o := testOptions()
	o.Lookups = 150 // linear routing is expensive; keep the test snappy
	res, err := RunFig6a(o)
	if err != nil {
		t.Fatal(err)
	}
	// With successor-only routing the latency must fall as ps grows
	// (fewer t-peers on the linear path) — the paper's Fig. 6a shape.
	tbl := res.Tables[0]
	first, err1 := strconv.ParseFloat(tbl.Rows[0][1], 64)
	last, err2 := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatal("unparseable latency cells")
	}
	if last >= first {
		t.Errorf("basic latency did not fall with ps: %v -> %v", first, last)
	}
	if res.Values["latency_basic_ps0.7"] <= 0 {
		t.Error("no latency measured at ps=0.7")
	}
}

func TestFig6bShape(t *testing.T) {
	o := testOptions()
	o.Lookups = 150
	res, err := RunFig6b(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["latency_basic_ps0.3"] <= 0 || res.Values["latency_aware8_ps0.3"] <= 0 {
		t.Fatal("latency values missing")
	}
}

func TestAblationBypassShape(t *testing.T) {
	res, err := RunAblationBypass(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["uses_bypass"] == 0 {
		t.Error("bypass mode never used a bypass link")
	}
	if res.Values["ringforwards_bypass"] >= res.Values["ringforwards_nobypass"] {
		t.Errorf("bypass links did not shed ring load: %v vs %v",
			res.Values["ringforwards_bypass"], res.Values["ringforwards_nobypass"])
	}
}

func TestResultCSV(t *testing.T) {
	res, err := RunFig3a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "p_s,") || !strings.Contains(csv, "# Fig 3a") {
		t.Fatalf("CSV rendering:\n%s", csv)
	}
}

func TestQuickOptionsSane(t *testing.T) {
	q := QuickOptions()
	if !q.Quick || q.N == 0 || q.Items == 0 || q.Lookups == 0 {
		t.Fatalf("QuickOptions: %+v", q)
	}
}

package exp

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// RunAblationRouting quantifies the PR-10 routing seam: the same hybrid
// system at p_s = 0.7 is run with the default finger walk (α = 1), with
// α = 3 parallel probes, and with α = 3 plus the lookup-path cache, all
// under one identical fault schedule (a 10% crash wave followed by 5%
// message drop/duplication with delay jitter). Parallel probes buy loss
// tolerance — a lookup only fails when every outstanding probe is lost —
// and the path cache buys shorter routes on repeat keys, so the combined
// arm must strictly beat the baseline on failure ratio or latency.
func RunAblationRouting(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("AblationRouting")

	keys := keysN(o.Items / 2)
	queries := o.Lookups / 2

	modes := []struct {
		name, tag string
		alpha     int
		cache     bool
	}{
		{"hybrid alpha=1 (baseline walk)", "alpha1", 1, false},
		{"hybrid alpha=3", "alpha3", 3, false},
		{"hybrid alpha=3 + path cache", "alpha3cache", 3, true},
	}

	type routingArm struct {
		failure, latency            float64
		probes, hintUses, hintDrops uint64
	}
	arms, err := sweep(o, len(modes), func(i int) (routingArm, error) {
		mode := modes[i]
		// Every arm sees the identical fault schedule: same engine seed, same
		// crash wave, same drop/dup rates with the same fault seed. Only the
		// routing knobs differ.
		fc := simnet.FaultConfig{
			DropRate:  0.05,
			DupRate:   0.05,
			JitterMax: 10 * sim.Millisecond,
			Seed:      5100,
		}
		cfg := expConfig(0.7)
		cfg.LookupAlpha = mode.alpha
		cfg.PathCache = mode.cache
		sc, err := buildScenario(o, cfg, o.Seed+990, nil, nil)
		if err != nil {
			return routingArm{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return routingArm{}, err
		}
		// The crash wave creates suspects and dead holders, exercising hint
		// invalidation; the injected loss afterwards exercises the α probes.
		sc.crashFraction(0.10)
		// Warm pass with clean delivery: deposits path hints (cache arms) and
		// lets read-repair restore replicas, modeling a population that has
		// looked keys up before the loss sets in.
		if _, err := sc.lookupBatch(queries/2, 4, keys, func(k int) int { return k }); err != nil {
			return routingArm{}, err
		}
		sc.Net.SetFaults(simnet.NewFaults(fc))
		rs, err := sc.lookupBatch(queries, 4, keys, func(k int) int { return k })
		if err != nil {
			return routingArm{}, err
		}
		sc.Net.SetFaults(nil)
		st := sc.Sys.Stats()
		sc.observe(o, "AblationRouting "+mode.name)
		return routingArm{
			failure:   failureRatio(rs),
			latency:   meanLatencyMs(rs),
			probes:    st.ProbesSent,
			hintUses:  st.PathHintUses,
			hintDrops: st.PathHintDrops,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("Ablation: routing seam under faults (p_s=0.7, 10% crash wave, 5% drop/dup)",
		"mode", "failure", "mean latency ms", "extra probes", "hint uses", "hint drops")
	for i, mode := range modes {
		a := arms[i]
		t.AddRow(mode.name, a.failure, a.latency, int(a.probes), int(a.hintUses), int(a.hintDrops))
		res.Values[mode.tag+"_failure"] = a.failure
		res.Values[mode.tag+"_latency_ms"] = a.latency
		res.Values[mode.tag+"_probes"] = float64(a.probes)
		res.Values[mode.tag+"_hint_uses"] = float64(a.hintUses)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"α parallel probes tolerate message loss (a lookup fails only when every probe is lost)",
		"the path cache short-circuits repeat lookups; suspect/dead peers invalidate their hints")
	return res, nil
}

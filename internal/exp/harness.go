// Package exp is the experiment harness: one registered experiment per table
// and figure in the paper's evaluation (section 6), plus the ablations
// DESIGN.md calls out. Each experiment builds hybrid systems over a
// transit-stub topology, drives the workload, and reports the same rows or
// curves the paper shows.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Options controls experiment scale.
type Options struct {
	// Seed drives every random choice; same seed, same output. A zero
	// Seed means "use the default"; to actually run with seed 0, pass
	// SeedZero.
	Seed int64
	// N is the system size (the paper uses 1,000).
	N int
	// Items is the number of data items injected.
	Items int
	// Lookups is the number of lookups measured.
	Lookups int
	// Quick shrinks the sweep (fewer ps points) for tests and benches.
	Quick bool
	// Workers is the sweep worker-pool size: how many sweep points run
	// concurrently, each on its own simulation engine. 0 means one worker
	// per available CPU; 1 forces a sequential sweep. The rendered output
	// is byte-identical for any value.
	Workers int
	// Trace, when non-nil, receives structured protocol/network events from
	// every system the experiment builds. Tracing never alters results.
	Trace *obs.Tracer
	// Obs, when non-nil, records one PointRecord per sweep point (wall
	// clock plus a metrics snapshot) into the run manifest. Progress and
	// manifest output stay off the result path, so rendered tables remain
	// byte-identical with or without a recorder.
	Obs *obs.Recorder
	// Faults, when non-nil, arms the simnet fault-injection layer (message
	// drop, duplication, delay jitter) on every system the experiment
	// builds. A nil Faults and an all-zero FaultConfig must render
	// byte-identical results; TestFaultLayerOffIsByteIdentical guards that.
	Faults *simnet.FaultConfig
	// Hist attaches a lockless histogram registry to every scenario
	// (lookup/store latency and hop distributions) and appends a percentile
	// table per sweep to the lookup-measuring experiments. Recording never
	// feeds back into the simulation, so the primary tables stay
	// byte-identical with Hist on or off.
	Hist bool
}

// SeedZero is a sentinel requesting the literal random seed 0, which would
// otherwise be indistinguishable from an unset Seed field.
const SeedZero int64 = math.MinInt64

// DefaultOptions mirrors the paper's scale.
func DefaultOptions() Options {
	return Options{Seed: 42, N: 1000, Items: 10000, Lookups: 5000}
}

// QuickOptions is a scaled-down configuration for tests and benchmarks.
func QuickOptions() Options {
	return Options{Seed: 42, N: 200, Items: 1000, Lookups: 400, Quick: true}
}

// normalize fills unset fields from the defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == SeedZero {
		o.Seed = 0
	} else if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.N == 0 {
		o.N = d.N
	}
	if o.Items == 0 {
		o.Items = d.Items
	}
	if o.Lookups == 0 {
		o.Lookups = d.Lookups
	}
	return o
}

// psPoints returns the ps sweep for the experiment scale.
func (o Options) psPoints() []float64 {
	if o.Quick {
		return []float64{0, 0.3, 0.5, 0.7, 0.9}
	}
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Result is an experiment's output: human-readable tables plus named scalar
// values the tests and EXPERIMENTS.md assert on.
type Result struct {
	ID     string
	Tables []*metrics.Table
	Values map[string]float64
	Notes  []string
}

// newResult allocates a Result.
func newResult(id string) *Result {
	return &Result{ID: id, Values: make(map[string]float64)}
}

// CSV renders every table as comma-separated values, one block per table
// separated by blank lines, for plotting pipelines.
func (r *Result) CSV() string {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		if t.Title != "" {
			fmt.Fprintf(&b, "# %s\n", t.Title)
		}
		b.WriteString(t.CSV())
	}
	return b.String()
}

// String renders the result for the CLI.
func (r *Result) String() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("key values:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %.4f\n", k, r.Values[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "Fig3a", Title: "Average join latency vs p_s (analytic + simulated), delta in {2,3,4}", Run: RunFig3a},
		{ID: "Fig3b", Title: "Average lookup latency vs p_s (analytic + simulated hops)", Run: RunFig3b},
		{ID: "Fig4", Title: "PDF of data items per peer for the two placement schemes", Run: RunFig4},
		{ID: "Fig5a", Title: "Lookup failure ratio vs p_s under TTL in {1,2,4}", Run: RunFig5a},
		{ID: "Fig5b", Title: "Lookup failure ratio under peer crashes", Run: RunFig5b},
		{ID: "Fig6a", Title: "Average lookup latency with/without link heterogeneity", Run: RunFig6a},
		{ID: "Fig6b", Title: "Average lookup latency with/without topology awareness", Run: RunFig6b},
		{ID: "Table2", Title: "Total connum under different p_s and TTL values", Run: RunTable2},
		{ID: "AblationTree", Title: "Ablation: tree s-networks vs mesh flooding (duplicate deliveries)", Run: RunAblationTree},
		{ID: "AblationBypass", Title: "Ablation: bypass links on/off (t-network load and latency)", Run: RunAblationBypass},
		{ID: "AblationRouting", Title: "Ablation: routing seam — α-parallel probes and lookup-path cache under faults", Run: RunAblationRouting},
		{ID: "Baselines", Title: "Chord, Gnutella and Kademlia baselines vs the hybrid system", Run: RunBaselines},
		{ID: "ExtCaching", Title: "Extension: future-work caching scheme under Zipf load", Run: RunExtCaching},
		{ID: "ExtWalk", Title: "Extension: random-walk search vs flooding", Run: RunExtWalk},
		{ID: "LinkStress", Title: "Extension: physical link stress with/without topology awareness", Run: RunLinkStress},
		{ID: "Churn", Title: "Extension: lookups under live Poisson churn", Run: RunChurn},
		{ID: "ChurnStorm", Title: "Hardening: churn storm under injected faults, invariants checked every epoch", Run: RunChurnStorm},
		{ID: "Scale", Title: "Scale sweep: memory density (peers/GB) and event throughput, 10k to 1M peers", Run: RunScale},
	}
}

// ByID finds an experiment ("all" is handled by the caller).
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

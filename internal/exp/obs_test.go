package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObservabilityRecording runs a quick experiment with a Recorder and a
// Tracer attached and checks that (a) per-point metric snapshots land in the
// manifest, (b) the tracer captures events, and (c) neither changes the
// experiment's rendered output.
func TestObservabilityRecording(t *testing.T) {
	o := testOptions()
	plain, err := RunFig3b(o)
	if err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	rec := obs.NewRecorder("exp-test", o.Seed, 2, map[string]any{"n": o.N})
	rec.SetProgress(&progress)
	tr := obs.NewTracer(1 << 14)
	o.Obs = rec
	o.Trace = tr

	observed, err := RunFig3b(o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CSV() != observed.CSV() {
		t.Errorf("attaching observability changed the result:\n--- plain ---\n%s\n--- observed ---\n%s",
			plain.CSV(), observed.CSV())
	}

	m := rec.Manifest()
	pts := m.Points
	if len(pts) != len(o.psPoints()) {
		t.Fatalf("recorded %d points, want %d", len(pts), len(o.psPoints()))
	}
	for _, p := range pts {
		if !strings.HasPrefix(p.Label, "Fig3b ps=") {
			t.Errorf("unexpected point label %q", p.Label)
		}
		if p.WallSeconds < 0 {
			t.Errorf("point %q has negative wall time", p.Label)
		}
		if p.Metrics["sim.events"] <= 0 {
			t.Errorf("point %q missing sim.events metric: %v", p.Label, p.Metrics)
		}
		if p.Metrics["net.sent"] <= 0 {
			t.Errorf("point %q missing net.sent metric", p.Label)
		}
		if p.Metrics["core.peers"] != float64(o.N) {
			t.Errorf("point %q core.peers = %v, want %v", p.Label, p.Metrics["core.peers"], o.N)
		}
	}
	if progress.Len() == 0 {
		t.Error("no progress lines written")
	}

	if tr.Len() == 0 {
		t.Error("tracer captured no events")
	}
	var sawLookup, sawMsg bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.EvLookupStart:
			sawLookup = true
		case obs.EvMsgSend:
			sawMsg = true
		}
	}
	if !sawLookup || !sawMsg {
		t.Errorf("trace missing event kinds: lookup_start=%v msg_send=%v", sawLookup, sawMsg)
	}

	if m.Schema != obs.ManifestSchema || m.Tool != "exp-test" || m.Seed != o.Seed {
		t.Errorf("manifest header wrong: %+v", m)
	}
}

// TestObserveNilRecorderIsNoOp makes sure every harness can run with Obs and
// Trace unset (the default), i.e. observe() is nil-safe end to end.
func TestObserveNilRecorderIsNoOp(t *testing.T) {
	sc := &scenario{}
	sc.observe(Options{}, "nothing") // must not panic with a nil Sys when Obs is nil
}

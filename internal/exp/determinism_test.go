package exp

import (
	"errors"
	"fmt"
	"testing"
)

// TestParallelSweepDeterminism is the regression test for the worker-pool
// sweep runner: the same experiment at Workers:1 (forced sequential path) and
// Workers:8 (oversubscribed pool on any machine) must render byte-identical
// CSV. Topology sharing, result collection and table assembly may not depend
// on goroutine scheduling.
func TestParallelSweepDeterminism(t *testing.T) {
	for _, id := range []string{"Fig3a", "Fig5a", "Table2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		t.Run(id, func(t *testing.T) {
			seq := testOptions()
			seq.Workers = 1
			par := testOptions()
			par.Workers = 8

			rs, err := e.Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := e.Run(par)
			if err != nil {
				t.Fatal(err)
			}
			if rs.CSV() != rp.CSV() {
				t.Errorf("%s: Workers:1 and Workers:8 CSV differ\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, rs.CSV(), rp.CSV())
			}
		})
	}
}

func TestSweepOrderAndErrors(t *testing.T) {
	o := Options{Workers: 4}

	// Results land at their own index regardless of scheduling.
	got, err := sweep(o, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}

	// The error reported is the lowest-index one, matching what a
	// sequential run would have returned first.
	wantErr := errors.New("boom-3")
	_, err = sweep(o, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("boom-%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("sweep error = %v, want %v", err, wantErr)
	}

	// Workers:1 uses the sequential path and short-circuits like a loop.
	calls := 0
	_, err = sweep(Options{Workers: 1}, 10, func(i int) (int, error) {
		calls++
		return 0, errors.New("first")
	})
	if err == nil || calls != 1 {
		t.Fatalf("sequential sweep: err=%v calls=%d, want an error after 1 call", err, calls)
	}
}

func TestSeedZeroSentinel(t *testing.T) {
	// Seed:0 means "use the default" (historic behavior, now documented) ...
	if got := (Options{}).normalize().Seed; got != DefaultOptions().Seed {
		t.Fatalf("Seed:0 normalized to %d, want default %d", got, DefaultOptions().Seed)
	}
	// ... and SeedZero is the explicit way to request a literal zero seed.
	if got := (Options{Seed: SeedZero}).normalize().Seed; got != 0 {
		t.Fatalf("Seed:SeedZero normalized to %d, want 0", got)
	}
}

package exp

import (
	"fmt"

	"repro/internal/metrics"
)

// RunTable2 regenerates Table 2: the total number of peers contacted by all
// data lookups (connum) under different p_s and TTL values. Expected shape:
// connum drops roughly linearly as p_s grows (fewer t-peers on each routing
// path), and TTL only matters once p_s exceeds 0.5 (larger s-network floods).
func RunTable2(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Table2")

	ttls := []int{1, 2, 4}
	points := o.psPoints()
	keys := keysFor(o)
	perTTL := o.Lookups / len(ttls)

	t := metrics.NewTable(
		fmt.Sprintf("Table 2: total connum over %d lookups per cell", perTTL),
		"p_s", "TTL=1", "TTL=2", "TTL=4")
	rows, err := sweepPoints(o, points, func(_ int, ps float64) ([]int, error) {
		cfg := paperRoutingConfig(ps)
		sc, err := buildScenario(o, cfg, o.Seed+600+int64(ps*100), nil, nil)
		if err != nil {
			return nil, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return nil, err
		}
		out := make([]int, len(ttls))
		for i, ttl := range ttls {
			rs, err := sc.lookupBatch(perTTL, ttl, keys, func(k int) int { return k*3 + ttl })
			if err != nil {
				return nil, err
			}
			out[i] = totalContacts(rs)
		}
		sc.observe(o, fmt.Sprintf("Table2 ps=%.2f", ps))
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	totals := make(map[string]int)
	for pi, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for i, ttl := range ttls {
			c := rows[pi][i]
			totals[fmt.Sprintf("%.1f/%d", ps, ttl)] = c
			row = append(row, c)
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	res.Values["connum_ps0_ttl4"] = float64(totals[fmt.Sprintf("%.1f/%d", points[0], 4)])
	res.Values["connum_ps0.9_ttl4"] = float64(totals["0.9/4"])
	res.Values["connum_ps0.9_ttl1"] = float64(totals["0.9/1"])
	if v := totals[fmt.Sprintf("%.1f/%d", points[0], 4)]; v > 0 {
		res.Values["connum_ratio_ps0.9_vs_ps0"] = float64(totals["0.9/4"]) / float64(v)
	}
	res.Notes = append(res.Notes,
		"paper: connum decreases ~linearly in p_s; at p_s=0.9 it is ~10% of the structured network's; TTL matters only for p_s>0.5")
	return res, nil
}

package exp

import (
	"testing"

	"repro/internal/simnet"
)

// TestFaultLayerOffIsByteIdentical is the determinism guard for the fault
// injection layer: running an experiment with no fault layer at all and
// running it with the layer attached but configured to all-zero rates must
// render byte-identical CSV. The layer may not perturb delivery order, timing
// or RNG consumption when it has nothing to inject.
func TestFaultLayerOffIsByteIdentical(t *testing.T) {
	e, ok := ByID("Churn")
	if !ok {
		t.Fatal("unknown experiment Churn")
	}

	off := testOptions() // Faults == nil: layer never attached
	rOff, err := e.Run(off)
	if err != nil {
		t.Fatal(err)
	}

	zero := testOptions()
	zero.Faults = &simnet.FaultConfig{Seed: 99} // attached, all rates zero
	rZero, err := e.Run(zero)
	if err != nil {
		t.Fatal(err)
	}

	if rOff.CSV() != rZero.CSV() {
		t.Errorf("zero-rate fault layer changed the sweep output\n--- no layer ---\n%s\n--- zero-rate layer ---\n%s",
			rOff.CSV(), rZero.CSV())
	}
}

// TestChurnStormQuick runs the ChurnStorm experiment at test scale: every arm
// must finish with all invariants intact (violations surface as errors) and
// the lossy arms must actually have injected faults.
func TestChurnStormQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("churn storm is minutes of simulated time per arm")
	}
	o := testOptions()
	o.N = 100
	o.Items = 300
	o.Lookups = 150
	res, err := RunChurnStorm(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["storm_epochs"] < 6 {
		t.Fatalf("expected at least 6 epochs, got %v", res.Values["storm_epochs"])
	}
	if res.Values["stormdrop_0"] != 0 {
		t.Errorf("zero-rate arm dropped %v messages", res.Values["stormdrop_0"])
	}
	for _, k := range []string{"stormdrop_1", "stormdrop_2"} {
		if res.Values[k] == 0 {
			t.Errorf("lossy arm %s injected no drops", k)
		}
	}
}

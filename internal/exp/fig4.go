package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

// RunFig4 regenerates Fig. 4: the probability density function of the number
// of data items per peer under the two placement schemes, for
// p_s in {0, 0.4, 0.9}. The first scheme concentrates remotely generated
// data on t-peers (at p_s = 0.9 most peers hold nothing and a few t-peers
// hold hundreds); the second scheme spreads it across each s-network.
func RunFig4(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig4")

	psValues := []float64{0, 0.4, 0.9}
	schemes := []core.Placement{core.PlaceAtTPeer, core.PlaceSpread}
	keys := keysFor(o)

	// One worker-pool task per (scheme, p_s) cell; each returns its summary
	// row plus the PDF panel, assembled below in grid order.
	type fig4Cell struct {
		peers         int
		zero, g       float64
		med, p90, max int
		pdf           *metrics.Table
	}
	cells, err := sweep(o, len(schemes)*len(psValues), func(i int) (fig4Cell, error) {
		scheme := schemes[i/len(psValues)]
		ps := psValues[i%len(psValues)]
		cfg := expConfig(ps)
		cfg.Placement = scheme
		sc, err := buildScenario(o, cfg, o.Seed+int64(ps*1000)+int64(scheme), nil, nil)
		if err != nil {
			return fig4Cell{}, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return fig4Cell{}, err
		}
		sc.observe(o, fmt.Sprintf("Fig4 %s ps=%.1f", scheme, ps))
		counts := sc.Sys.ItemsPerPeer()
		var c fig4Cell
		c.peers = len(counts)
		c.zero, c.med, c.p90, c.max = distStats(counts)
		c.g = gini(counts)

		// Full PDF for the three panels the paper shows per scheme.
		hist := metrics.NewHistogram(bucketWidth(c.max))
		for _, n := range counts {
			hist.Add(n)
		}
		c.pdf = metrics.NewTable(
			fmt.Sprintf("Fig 4 PDF: scheme=%s p_s=%.1f (bucket width %d)", scheme, ps, hist.Width),
			"items-per-peer", "probability")
		bounds, probs := hist.PDF()
		for i := range bounds {
			c.pdf.AddRow(bounds[i], probs[i])
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	summary := metrics.NewTable("Fig 4: data distribution summary per (scheme, p_s)",
		"scheme", "p_s", "peers", "zero-frac", "median", "p90", "max", "gini")
	for si, scheme := range schemes {
		for pi, ps := range psValues {
			c := cells[si*len(psValues)+pi]
			summary.AddRow(scheme.String(), fmt.Sprintf("%.1f", ps), c.peers, c.zero, c.med, c.p90, c.max, c.g)
			tag := fmt.Sprintf("%s_ps%.1f", scheme, ps)
			res.Values["zerofrac_"+tag] = c.zero
			res.Values["max_"+tag] = float64(c.max)
			res.Values["gini_"+tag] = c.g
			res.Tables = append(res.Tables, c.pdf)
		}
	}
	res.Tables = append([]*metrics.Table{summary}, res.Tables...)
	res.Notes = append(res.Notes,
		"paper: at p_s=0.9 scheme 1 leaves ~85% of peers empty with maxima >500, scheme 2 drops the empty fraction to ~12%")
	return res, nil
}

// distStats returns the zero fraction, median, 90th percentile and maximum.
func distStats(counts []int) (zeroFrac float64, median, p90, max int) {
	if len(counts) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	zero := 0
	for _, c := range sorted {
		if c == 0 {
			zero++
		}
	}
	zeroFrac = float64(zero) / float64(len(sorted))
	median = sorted[len(sorted)/2]
	p90 = sorted[(len(sorted)*9)/10]
	max = sorted[len(sorted)-1]
	return
}

// gini computes the Gini coefficient of the per-peer load, a single-number
// imbalance measure (0 = perfectly even, 1 = one peer holds everything).
func gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	var cum, totalCum, total float64
	for _, c := range sorted {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	for _, c := range sorted {
		cum += float64(c)
		totalCum += cum
	}
	return (float64(n) + 1 - 2*totalCum/total) / float64(n)
}

// bucketWidth picks a PDF bucket size that keeps tables readable.
func bucketWidth(max int) int {
	switch {
	case max <= 40:
		return 1
	case max <= 200:
		return 5
	case max <= 1000:
		return 20
	default:
		return 50
	}
}

package exp

import (
	"fmt"

	"repro/internal/metrics"
)

// RunFig5a regenerates Fig. 5a: the lookup failure ratio as a function of
// p_s under TTL in {1, 2, 4}. Expected shape: ~0 for p_s < 0.5 (s-networks
// average less than one peer, every flood covers them) and rising sharply
// afterwards, with larger TTLs much flatter.
func RunFig5a(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig5a")

	ttls := []int{1, 2, 4}
	points := o.psPoints()
	keys := keysFor(o)

	curves := make([]*metrics.Series, len(ttls))
	for i, ttl := range ttls {
		curves[i] = &metrics.Series{Name: fmt.Sprintf("TTL=%d", ttl)}
	}
	fails, err := sweepPoints(o, points, func(_ int, ps float64) ([]float64, error) {
		cfg := expConfig(ps)
		sc, err := buildScenario(o, cfg, o.Seed+200+int64(ps*100), nil, nil)
		if err != nil {
			return nil, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return nil, err
		}
		out := make([]float64, len(ttls))
		for i, ttl := range ttls {
			rs, err := sc.lookupBatch(o.Lookups/len(ttls), ttl, keys, func(k int) int { return k*7 + i })
			if err != nil {
				return nil, err
			}
			out[i] = failureRatio(rs)
		}
		sc.observe(o, fmt.Sprintf("Fig5a ps=%.2f", ps))
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, ps := range points {
		for i := range ttls {
			curves[i].Add(ps, fails[pi][i])
		}
	}

	t := metrics.NewTable("Fig 5a: lookup failure ratio vs p_s")
	t.Headers = append([]string{"p_s"}, seriesNames(curves)...)
	for i, ps := range points {
		row := []any{fmt.Sprintf("%.2f", ps)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	for i, ttl := range ttls {
		lo, _ := curves[i].YAt(pointNear(points, 0.3))
		hi, _ := curves[i].YAt(0.9)
		res.Values[fmt.Sprintf("fail_ttl%d_low_ps", ttl)] = lo
		res.Values[fmt.Sprintf("fail_ttl%d_ps0.9", ttl)] = hi
	}
	res.Notes = append(res.Notes,
		"paper: failure ratio ~0 for p_s<0.5; at p_s=0.9 it reaches ~18% (TTL=1), ~14% (TTL=2), ~4% (TTL=4)")
	return res, nil
}

// RunFig5b regenerates Fig. 5b: the lookup failure ratio when a fraction of
// peers crash without transferring their load, under several p_s values with
// the improved placement scheme. Expected shape: failure ratio grows
// ~linearly with the crashed fraction and is nearly independent of p_s.
func RunFig5b(o Options) (*Result, error) {
	o = o.normalize()
	res := newResult("Fig5b")

	psValues := []float64{0.1, 0.5, 0.9}
	fractions := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if o.Quick {
		fractions = []float64{0, 0.1, 0.2}
	}
	keys := keysFor(o)

	// The sweep grid is (p_s, crashed fraction); flatten it so every cell
	// is one independent worker-pool task.
	fails, err := sweep(o, len(psValues)*len(fractions), func(i int) (float64, error) {
		ps := psValues[i/len(fractions)]
		f := fractions[i%len(fractions)]
		cfg := expConfig(ps)
		sc, err := buildScenario(o, cfg, o.Seed+300+int64(ps*100)+int64(f*1000), nil, nil)
		if err != nil {
			return 0, err
		}
		if _, err := sc.storeItems(keys); err != nil {
			return 0, err
		}
		sc.crashFraction(f)
		rs, err := sc.lookupBatch(o.Lookups/len(fractions), 4, keys, func(k int) int { return k })
		if err != nil {
			return 0, err
		}
		sc.observe(o, fmt.Sprintf("Fig5b ps=%.1f crash=%.2f", ps, f))
		return failureRatio(rs), nil
	})
	if err != nil {
		return nil, err
	}
	curves := make([]*metrics.Series, len(psValues))
	for i, ps := range psValues {
		curves[i] = &metrics.Series{Name: fmt.Sprintf("p_s=%.1f", ps)}
		for j, f := range fractions {
			curves[i].Add(f, fails[i*len(fractions)+j])
		}
	}

	t := metrics.NewTable("Fig 5b: lookup failure ratio vs crashed fraction (scheme 2)")
	t.Headers = append([]string{"crashed"}, seriesNames(curves)...)
	for i, f := range fractions {
		row := []any{fmt.Sprintf("%.2f", f)}
		for _, c := range curves {
			row = append(row, c.Y[i])
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)

	for i, ps := range psValues {
		base := curves[i].Y[0]
		worst := curves[i].Y[len(curves[i].Y)-1]
		res.Values[fmt.Sprintf("crashfail_ps%.1f_base", ps)] = base
		res.Values[fmt.Sprintf("crashfail_ps%.1f_worst", ps)] = worst
	}
	res.Notes = append(res.Notes,
		"paper: the failure ratio rises linearly with the crashed fraction; changing p_s has little effect under scheme 2")
	return res, nil
}

// pointNear returns the sweep point closest to the target.
func pointNear(points []float64, target float64) float64 {
	best := points[0]
	for _, p := range points {
		if abs(p-target) < abs(best-target) {
			best = p
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

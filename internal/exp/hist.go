package exp

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the experiment-side view of the lockless histograms: with
// Options.Hist set, every scenario registers lookup/store histograms
// (core.SetMetrics) and the lookup-measuring experiments append a
// supplemental percentile table per sweep point. Recording never feeds back
// into the simulation, so the primary tables stay byte-identical with Hist
// on or off; TestHistOutputUnchanged guards that.

// histPoint captures one sweep point's lookup latency and hop percentiles.
// The zero value (no registry attached or no successful lookups) renders as
// an all-zero row.
type histPoint struct {
	n                           uint64
	p50ms, p90ms, p99ms, p999ms float64
	maxMs                       float64
	hopP50, hopP90, hopP99      float64
	hopMax                      float64
}

// histVal pairs a sweep point's primary scalar with its percentile capture,
// so existing sweeps can carry both through the worker pool.
type histVal struct {
	v  float64
	hp histPoint
}

// histPoint reads the scenario's registry histograms. Returns the zero value
// when the scenario has no registry (Options.Hist off).
func (s *scenario) histPoint() histPoint {
	if s.Reg == nil {
		return histPoint{}
	}
	const ms = float64(sim.Millisecond)
	lat := s.Reg.Histogram("lookup.latency_us").Snapshot()
	hops := s.Reg.Histogram("lookup.hops").Snapshot()
	return histPoint{
		n:     lat.Count,
		p50ms: lat.P50 / ms, p90ms: lat.P90 / ms,
		p99ms: lat.P99 / ms, p999ms: lat.P999 / ms,
		maxMs:  lat.Max / ms,
		hopP50: hops.P50, hopP90: hops.P90, hopP99: hops.P99,
		hopMax: hops.Max,
	}
}

// histTable renders per-point percentiles as a supplemental table appended
// after an experiment's primary table when Options.Hist is set.
func histTable(title string, labels []string, hps []histPoint) *metrics.Table {
	t := metrics.NewTable(title)
	t.Headers = []string{"point", "n",
		"lat p50 ms", "lat p90 ms", "lat p99 ms", "lat p999 ms", "lat max ms",
		"hops p50", "hops p90", "hops p99", "hops max"}
	for i, hp := range hps {
		t.AddRow(labels[i], float64(hp.n),
			hp.p50ms, hp.p90ms, hp.p99ms, hp.p999ms, hp.maxMs,
			hp.hopP50, hp.hopP90, hp.hopP99, hp.hopMax)
	}
	return t
}

// mergeHistSnapshot folds the scenario registry's expanded metrics (histogram
// quantiles included) into a point snapshot destined for the run manifest.
func (s *scenario) mergeHistSnapshot(snap map[string]float64) map[string]float64 {
	if s.Reg == nil {
		return snap
	}
	for k, v := range s.Reg.Snapshot() {
		snap[k] = v
	}
	return snap
}

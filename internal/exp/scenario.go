package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// expTopoConfig returns the paper-scale transit-stub generator configuration
// (or a compact one in quick mode).
func expTopoConfig(o Options) topology.Config {
	cfg := topology.DefaultConfig()
	if o.Quick {
		cfg.TransitDomains = 2
		cfg.TransitNodesPerDomain = 2
		cfg.StubDomainsPerTransit = 2
		cfg.StubNodesPerDomain = 12
	}
	return cfg
}

// topoCache shares generated graphs across sweep points and experiments.
// Graphs are immutable after generation and safe for concurrent routing, so
// every sweep point of an experiment reads the same one instead of
// regenerating ~1,000 nodes of topology per point. Each (config, seed) pair
// is generated exactly once per process.
var topoCache struct {
	mu sync.Mutex
	m  map[topoKey]*topoEntry
}

type topoKey struct {
	cfg  topology.Config
	seed int64
	// matrix records whether the dense stub latency table was requested,
	// so quick runs without it don't alias full-scale runs with it.
	matrix bool
}

type topoEntry struct {
	once sync.Once
	g    *topology.Graph
	err  error
}

// topoCacheHits/topoCacheMisses count shared-topology cache outcomes across
// the process, surfaced per sweep point in the run manifest.
var topoCacheHits, topoCacheMisses atomic.Int64

// expTopology returns the shared transit-stub topology for the experiment
// scale and seed. At full scale it also precomputes the stub-to-stub latency
// matrix, built once and amortized over every sweep point that shares the
// graph.
func expTopology(o Options, seed int64) (*topology.Graph, error) {
	cfg := expTopoConfig(o)
	wantMatrix := !o.Quick
	key := topoKey{cfg: cfg, seed: seed, matrix: wantMatrix}

	topoCache.mu.Lock()
	if topoCache.m == nil {
		topoCache.m = make(map[topoKey]*topoEntry)
	}
	e, ok := topoCache.m[key]
	if !ok {
		e = &topoEntry{}
		topoCache.m[key] = e
	}
	topoCache.mu.Unlock()

	generated := false
	e.once.Do(func() {
		generated = true
		topoCacheMisses.Add(1)
		e.g, e.err = topology.GenerateTransitStub(cfg, seed)
		if e.err == nil && wantMatrix {
			e.g.PrecomputeStubMatrix(o.workers())
		}
	})
	if !generated {
		topoCacheHits.Add(1)
	}
	return e.g, e.err
}

// topoSeed is the topology seed shared by every point of one experiment
// sweep. Points keep distinct engine seeds (protocol randomness differs per
// point) but route over the same physical network, exactly as the paper's
// evaluation holds the GT-ITM topology fixed while varying p_s.
func (o Options) topoSeed() int64 { return o.Seed }

// expConfig returns the core configuration shared by all experiments,
// tightened so that long sweeps spend little simulated time on maintenance
// and failed floods fail fast.
func expConfig(ps float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Ps = ps
	cfg.Delta = 3 // "δ is equal to three in the simulations"
	cfg.TTL = 4
	cfg.HelloEvery = 5 * sim.Second
	cfg.HelloTimeout = 12 * sim.Second
	cfg.FingerRefreshEvery = 5 * sim.Second
	cfg.LookupTimeout = 5 * sim.Second
	cfg.JoinTimeout = 40 * sim.Second
	return cfg
}

// paperRoutingConfig is expConfig plus the successor-only data routing the
// paper's own simulation used (see Config.SuccessorRouting); the lookup
// timeout grows to cover linear ring traversals.
func paperRoutingConfig(ps float64) core.Config {
	cfg := expConfig(ps)
	cfg.SuccessorRouting = true
	cfg.LookupTimeout = 180 * sim.Second
	return cfg
}

// scenario is one built hybrid system plus its population.
type scenario struct {
	Sys   *core.System
	Eng   *sim.Engine
	Net   *simnet.Network
	Topo  *topology.Graph
	Peers []*core.Peer
	Joins []core.JoinStats
	// Reg is the per-scenario metrics registry (lookup/store histograms);
	// nil unless Options.Hist is set.
	Reg *obs.Registry
	// wallStart is when the scenario build began; observe reports the
	// point's wall-clock cost relative to it.
	wallStart time.Time
}

// buildScenario creates a system with the given config and joins N peers.
// seed drives the simulation engine only; the topology is the experiment's
// shared graph (see topoSeed), so concurrent sweep points build their
// populations over one immutable physical network.
func buildScenario(o Options, cfg core.Config, seed int64, capacities []float64, interests []int) (*scenario, error) {
	start := time.Now()
	topo, err := expTopology(o, o.topoSeed())
	if err != nil {
		return nil, err
	}
	eng := sim.New(seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	if o.Faults != nil {
		net.SetFaults(simnet.NewFaults(*o.Faults))
	}
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		sys.SetTracer(o.Trace)
		net.SetTracer(o.Trace)
	}
	var reg *obs.Registry
	if o.Hist {
		reg = obs.NewRegistry()
		sys.SetMetrics(reg)
	}
	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{
		N:          o.N,
		Capacities: capacities,
		Interests:  interests,
	})
	if err != nil {
		return nil, err
	}
	sys.Settle(2 * cfg.HelloEvery)
	return &scenario{Sys: sys, Eng: eng, Net: net, Topo: topo, Peers: peers, Joins: joins, Reg: reg, wallStart: start}, nil
}

// observe snapshots the scenario's engine, network and protocol counters into
// the run recorder as one labeled point. It is a no-op without a recorder, and
// it never writes to the result path.
func (s *scenario) observe(o Options, label string) {
	if o.Obs == nil {
		return
	}
	reg := obs.NewRegistry()
	reg.Counter("sim.events").Add(int64(s.Eng.Dispatched()))
	reg.Gauge("sim.time_s").Set(float64(s.Eng.Now()) / float64(sim.Second))

	ns := s.Net.Stats()
	reg.Counter("net.sent").Add(int64(ns.MessagesSent))
	reg.Counter("net.delivered").Add(int64(ns.MessagesDelivered))
	reg.Counter("net.dropped").Add(int64(ns.MessagesDropped))
	reg.Counter("net.local_sent").Add(int64(ns.LocalSent))
	reg.Counter("net.bytes").Add(int64(ns.BytesSent))

	cs := s.Sys.Stats()
	reg.Counter("core.floods").Add(int64(cs.FloodsSent))
	reg.Counter("core.ring_forwards").Add(int64(cs.RingForwards))
	reg.Counter("core.bypass_uses").Add(int64(cs.BypassUses))
	reg.Counter("core.cache_hits").Add(int64(cs.CacheHits))
	reg.Gauge("core.peers").Set(float64(s.Sys.NumPeers()))

	items := reg.Timer("peer.items")
	for _, n := range s.Sys.ItemsPerPeer() {
		items.Observe(float64(n))
	}

	reg.Counter("exp.topo_cache_hits").Add(topoCacheHits.Load())
	reg.Counter("exp.topo_cache_misses").Add(topoCacheMisses.Load())

	wall := time.Duration(0)
	if !s.wallStart.IsZero() {
		wall = time.Since(s.wallStart)
	}
	o.Obs.Point(label, wall, s.mergeHistSnapshot(reg.Snapshot()))
}

// alivePeer returns the i-th peer if alive, else scans forward for a live
// one.
func (s *scenario) alivePeer(i int) *core.Peer {
	n := len(s.Peers)
	for k := 0; k < n; k++ {
		p := s.Peers[(i+k)%n]
		if p.Alive() {
			return p
		}
	}
	return nil
}

// storeItems injects keys from deterministically chosen origins and returns
// the number stored successfully.
func (s *scenario) storeItems(keys []string) (int, error) {
	rng := s.Eng.Rand()
	stored := 0
	const batch = 64
	for start := 0; start < len(keys); start += batch {
		end := start + batch
		if end > len(keys) {
			end = len(keys)
		}
		remaining := 0
		okCount := 0
		for _, key := range keys[start:end] {
			p := s.alivePeer(rng.Intn(len(s.Peers)))
			if p == nil {
				return stored, fmt.Errorf("exp: no live peers to store from")
			}
			remaining++
			p.Store(key, "value-of-"+key, func(r core.OpResult) {
				remaining--
				if r.OK {
					okCount++
				}
			})
		}
		if err := s.drain(&remaining); err != nil {
			return stored, err
		}
		stored += okCount
	}
	return stored, nil
}

// lookupBatch issues lookups in batches (so timeout waits overlap) and
// returns the results. pick chooses a key index per lookup; originOf chooses
// the requesting peer.
func (s *scenario) lookupBatch(count int, ttl int, keys []string, pick func(i int) int) ([]core.OpResult, error) {
	rng := s.Eng.Rand()
	results := make([]core.OpResult, 0, count)
	const batch = 64
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		remaining := 0
		for i := start; i < end; i++ {
			p := s.alivePeer(rng.Intn(len(s.Peers)))
			if p == nil {
				return results, fmt.Errorf("exp: no live peers to look up from")
			}
			key := keys[pick(i)%len(keys)]
			remaining++
			p.LookupWithTTL(key, ttl, func(r core.OpResult) {
				remaining--
				results = append(results, r)
			})
		}
		if err := s.drain(&remaining); err != nil {
			return results, err
		}
	}
	return results, nil
}

// lookupFrom is lookupBatch with a fixed origin set instead of random
// origins (used by workloads that model a few heavy consumers).
func (s *scenario) lookupFrom(origins []*core.Peer, count, ttl int, keys []string, pick func(i int) int) ([]core.OpResult, error) {
	results := make([]core.OpResult, 0, count)
	const batch = 64
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		remaining := 0
		for i := start; i < end; i++ {
			p := origins[i%len(origins)]
			if !p.Alive() {
				continue
			}
			key := keys[pick(i)%len(keys)]
			remaining++
			p.LookupWithTTL(key, ttl, func(r core.OpResult) {
				remaining--
				results = append(results, r)
			})
		}
		if err := s.drain(&remaining); err != nil {
			return results, err
		}
	}
	return results, nil
}

// drain steps the engine until *remaining reaches zero.
func (s *scenario) drain(remaining *int) error {
	for steps := 0; *remaining > 0; steps++ {
		if steps > 50_000_000 {
			return fmt.Errorf("exp: batch did not drain within event budget")
		}
		if !s.Eng.Step() {
			return fmt.Errorf("exp: engine ran dry with %d operations pending", *remaining)
		}
	}
	return nil
}

// crashFraction abruptly crashes the given fraction of live peers, chosen
// uniformly, without any load transfer, then lets failure detection and
// recovery run.
func (s *scenario) crashFraction(f float64) int {
	rng := s.Eng.Rand()
	var live []*core.Peer
	for _, p := range s.Peers {
		if p.Alive() {
			live = append(live, p)
		}
	}
	n := int(f * float64(len(live)))
	perm := rng.Perm(len(live))
	crashed := 0
	for _, idx := range perm[:n] {
		live[idx].Crash()
		crashed++
	}
	// Let watchdogs fire, replacements settle and the ring re-stabilize:
	// the paper's Fig. 5b measures the steady-state failure ratio caused
	// by lost data, not the transient routing breakage right after the
	// crash wave.
	s.Sys.Settle(8*s.Sys.Cfg.HelloTimeout + 10*s.Sys.Cfg.FingerRefreshEvery)
	return crashed
}

// capacities13 builds the paper's 1/3-1/3-1/3 capacity mix.
func capacities13(n int) []float64 { return workload.CapacityClasses(n) }

// meanHops averages the hop counts of successful results.
func meanHops(rs []core.OpResult) float64 {
	total, n := 0.0, 0
	for _, r := range rs {
		if r.OK {
			total += float64(r.Hops)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// meanLatencyMs averages the latency (in simulated milliseconds) of
// successful results.
func meanLatencyMs(rs []core.OpResult) float64 {
	total, n := 0.0, 0
	for _, r := range rs {
		if r.OK {
			total += float64(r.Latency) / float64(sim.Millisecond)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// failureRatio is failed / total.
func failureRatio(rs []core.OpResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	failed := 0
	for _, r := range rs {
		if !r.OK {
			failed++
		}
	}
	return float64(failed) / float64(len(rs))
}

// totalContacts sums the per-lookup contact counts (connum).
func totalContacts(rs []core.OpResult) int {
	total := 0
	for _, r := range rs {
		total += r.Contacts
	}
	return total
}

package exp

import (
	"strings"
	"testing"
)

// TestHistOutputUnchanged guards the obs-never-feeds-back acceptance
// criterion at the experiment layer: turning Options.Hist on must leave the
// primary tables and key values byte-identical, only appending the
// supplemental percentile table.
func TestHistOutputUnchanged(t *testing.T) {
	o := testOptions()
	plain, err := RunFig3b(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Hist = true
	hist, err := RunFig3b(o)
	if err != nil {
		t.Fatal(err)
	}

	if len(hist.Tables) != len(plain.Tables)+1 {
		t.Fatalf("Hist appended %d tables, want exactly 1", len(hist.Tables)-len(plain.Tables))
	}
	for i := range plain.Tables {
		if plain.Tables[i].CSV() != hist.Tables[i].CSV() {
			t.Fatalf("Hist changed primary table %d:\n--- plain ---\n%s\n--- hist ---\n%s",
				i, plain.Tables[i].CSV(), hist.Tables[i].CSV())
		}
	}
	for k, v := range plain.Values {
		if hist.Values[k] != v {
			t.Fatalf("Hist changed value %q: %v -> %v", k, v, hist.Values[k])
		}
	}

	sup := hist.Tables[len(hist.Tables)-1]
	if !strings.Contains(sup.Title, "percentiles") {
		t.Fatalf("supplemental table title %q", sup.Title)
	}
	csv := sup.CSV()
	if !strings.Contains(csv, "lat p50 ms") || !strings.Contains(csv, "hops p99") {
		t.Fatalf("supplemental table missing percentile columns:\n%s", csv)
	}
	// Each sweep point measured o.Lookups lookups; a point whose histogram
	// saw none would mean the registry was not attached.
	rows := strings.Split(strings.TrimSpace(csv), "\n")
	if len(rows) != len(o.psPoints())+1 {
		t.Fatalf("supplement has %d rows, want header + %d points", len(rows), len(o.psPoints()))
	}
	for _, row := range rows[1:] {
		if strings.HasPrefix(row, "ps=") && strings.Contains(row, ",0.0000,") {
			t.Fatalf("sweep point recorded no lookups: %s", row)
		}
	}
}

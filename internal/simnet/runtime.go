package simnet

import (
	"fmt"

	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

// MaxAwaitEvents bounds how many engine events a single Await may dispatch
// before it declares the condition stuck. The protocols' periodic tickers
// keep the event queue non-empty forever, so "run to quiescence" is not a
// usable stop condition.
const MaxAwaitEvents = 20_000_000

// Runtime is the discrete-event implementation of runtime.Runtime: the
// engine is the clock, the network is the transport, and the driver methods
// single-step the engine. It is the runtime every experiment and figure in
// the paper reproduction runs on; with a fixed seed its output is
// byte-identical across runs.
//
// Like the engine it wraps, a Runtime is not safe for concurrent use: all
// code runs inside event callbacks, dispatched one at a time. Do is
// therefore a plain call and the per-node serialization the protocol relies
// on holds trivially.
type Runtime struct {
	Eng *sim.Engine
	Net *Network

	serverAddr Addr
	nextAddr   Addr
}

// NewRuntime assembles the discrete-event runtime from an engine and a
// network. The bootstrap server owns address 0 and NewAddr hands out 1, 2, …
// — the same sequence the pre-runtime code used, which keeps seeded runs
// byte-identical.
func NewRuntime(eng *sim.Engine, net *Network) *Runtime {
	return &Runtime{Eng: eng, Net: net, serverAddr: 0, nextAddr: 1}
}

// Now implements runtime.Clock.
func (r *Runtime) Now() runtime.Time { return r.Eng.Now() }

// Schedule implements runtime.Clock.
func (r *Runtime) Schedule(d runtime.Time, fn func()) runtime.Handle {
	return r.Eng.Schedule(d, fn)
}

// Unschedule implements runtime.Clock.
func (r *Runtime) Unschedule(h runtime.Handle) bool { return r.Eng.Unschedule(h) }

// Scheduled implements runtime.Clock.
func (r *Runtime) Scheduled(h runtime.Handle) bool { return r.Eng.Scheduled(h) }

// Attach implements runtime.Transport.
func (r *Runtime) Attach(a Addr, ep runtime.Endpoint, h Handler) { r.Net.Attach(a, ep, h) }

// Detach implements runtime.Transport.
func (r *Runtime) Detach(a Addr) { r.Net.Detach(a) }

// Attached implements runtime.Transport.
func (r *Runtime) Attached(a Addr) bool { return r.Net.Attached(a) }

// Send implements runtime.Transport.
func (r *Runtime) Send(from, to Addr, size int, msg any) { r.Net.Send(from, to, size, msg) }

// SendLocal implements runtime.Transport.
func (r *Runtime) SendLocal(a Addr, msg any) { r.Net.SendLocal(a, msg) }

// Rand returns the engine's seeded random source.
func (r *Runtime) Rand() runtime.RNG { return r.Eng.Rand() }

// NewAddr allocates the next peer address.
func (r *Runtime) NewAddr() Addr {
	a := r.nextAddr
	r.nextAddr++
	return a
}

// ServerAddr returns the bootstrap server's address.
func (r *Runtime) ServerAddr() Addr { return r.serverAddr }

// Placement exposes the physical topology under the network.
func (r *Runtime) Placement() runtime.Placement { return placement{r.Net.Topo} }

// placement adapts topology.Graph to runtime.Placement.
type placement struct {
	topo *topology.Graph
}

func (p placement) StubHosts() []int { return p.topo.StubNodes() }

func (p placement) HostCoord(host int) (x, y float64, ok bool) {
	if host < 0 || host >= len(p.topo.Nodes) {
		return 0, 0, false
	}
	n := p.topo.Nodes[host]
	return n.X, n.Y, true
}

func (p placement) HostLatency(a, b int) (int64, error) { return p.topo.Latency(a, b) }

// Do implements runtime.Runtime. Everything is already serialized on the
// event loop, so it is a plain call.
func (r *Runtime) Do(fn func()) { fn() }

// Await single-steps the engine until cond holds. It fails if the event
// queue drains or the step budget is exhausted first.
func (r *Runtime) Await(cond func() bool) error {
	for steps := 0; !cond(); steps++ {
		if steps > MaxAwaitEvents {
			return fmt.Errorf("did not complete in %d events", MaxAwaitEvents)
		}
		if !r.Eng.Step() {
			return fmt.Errorf("stalled: event queue empty")
		}
	}
	return nil
}

// Sleep advances simulated time by d, dispatching everything due in between.
func (r *Runtime) Sleep(d runtime.Time) {
	r.Eng.RunUntil(r.Eng.Now() + d)
}

package simnet

import (
	"math/rand"

	"repro/internal/sim"
)

// This file is the deterministic fault-injection layer. The clean simnet
// delivers every overlay message exactly once and in timestamp order, which
// makes whole classes of crash-recovery bugs untestable: a recovery protocol
// that happens to work under perfect delivery may wedge forever the first
// time a repair message is lost. Faults are injected at the sender's edge,
// after the propagation delay is computed and before the delivery event is
// scheduled, so a faulty run is an ordinary run with some deliveries removed,
// doubled, or delayed.
//
// Determinism contract: the layer draws from its own seeded RNG, never the
// engine's, and it draws only when the corresponding rate is non-zero. A
// Faults value with all-zero rates attached to a Network therefore consumes
// no randomness and schedules exactly the events the bare network would —
// sweeps stay byte-identical with the layer compiled in but disabled, which
// exp's determinism guard asserts.
//
// Allocation note: a duplicated message is not copied here — the verdict only
// asks the network for a second delivery, and every delivery (original and
// duplicate alike) is a pooled record drawn from the Network's free list (see
// Network.schedule), so fault-heavy runs recycle delivery memory exactly like
// clean ones.

// FaultConfig is the global fault policy applied to every overlay message
// (per-link overrides and partitions are added on the Faults value).
type FaultConfig struct {
	// DropRate is the probability in [0,1] that a message is silently
	// lost in transit.
	DropRate float64
	// DupRate is the probability in [0,1] that a message is delivered
	// twice (the duplicate gets its own jitter draw).
	DupRate float64
	// JitterMax adds a uniform extra delay in [0, JitterMax) to every
	// delivery. Zero disables jitter.
	JitterMax sim.Time
	// Seed seeds the layer's private RNG. Runs with the same seed and the
	// same message sequence make identical fault decisions.
	Seed int64
}

// LinkFaults overrides the global policy for one unordered pair of overlay
// addresses.
type LinkFaults struct {
	DropRate  float64
	DupRate   float64
	JitterMax sim.Time
}

// Partition severs connectivity between two sets of physical hosts for a
// window of simulated time: messages whose endpoints are hosted on opposite
// sides are dropped while Start <= now < End. Partition decisions are purely
// deterministic (no RNG draw).
type Partition struct {
	Start, End sim.Time
	sideA      map[int]bool
}

// FaultStats counts the injected faults.
type FaultStats struct {
	Dropped          uint64 // messages lost to DropRate (excludes partitions)
	Duplicated       uint64 // messages delivered twice
	Jittered         uint64 // messages given extra delay
	PartitionDropped uint64 // messages lost to a scheduled partition
}

type addrPair struct{ a, b Addr }

func pairOf(a, b Addr) addrPair {
	if a > b {
		a, b = b, a
	}
	return addrPair{a, b}
}

// Faults holds the fault policy and its private RNG. Attach with
// Network.SetFaults; a nil Faults (the default) costs one pointer check per
// message.
type Faults struct {
	cfg        FaultConfig
	rng        *rand.Rand
	perLink    map[addrPair]LinkFaults
	partitions []Partition
	stats      FaultStats
}

// NewFaults builds a fault layer from the global policy.
func NewFaults(cfg FaultConfig) *Faults {
	return &Faults{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetLink overrides the global policy for messages between a and b (either
// direction).
func (f *Faults) SetLink(a, b Addr, lf LinkFaults) {
	if f.perLink == nil {
		f.perLink = make(map[addrPair]LinkFaults)
	}
	f.perLink[pairOf(a, b)] = lf
}

// AddPartition schedules a partition of the physical hosts in sideA away
// from every other host during [start, end).
func (f *Faults) AddPartition(start, end sim.Time, sideA []int) {
	side := make(map[int]bool, len(sideA))
	for _, h := range sideA {
		side[h] = true
	}
	f.partitions = append(f.partitions, Partition{Start: start, End: end, sideA: side})
}

// Stats returns a copy of the fault counters.
func (f *Faults) Stats() FaultStats { return f.stats }

// verdict is the fault decision for one message.
type faultVerdict struct {
	drop     bool
	dup      bool
	extra    sim.Time // extra delay for the original delivery
	dupExtra sim.Time // extra delay for the duplicate
}

// apply decides the fate of one message. RNG draws are gated on non-zero
// rates so an all-zero policy leaves the run untouched.
func (f *Faults) apply(now sim.Time, fromHost, toHost int, from, to Addr) faultVerdict {
	var v faultVerdict
	for i := range f.partitions {
		pt := &f.partitions[i]
		if now >= pt.Start && now < pt.End && pt.sideA[fromHost] != pt.sideA[toHost] {
			v.drop = true
			f.stats.PartitionDropped++
			return v
		}
	}
	lf := LinkFaults{DropRate: f.cfg.DropRate, DupRate: f.cfg.DupRate, JitterMax: f.cfg.JitterMax}
	if len(f.perLink) != 0 {
		if o, ok := f.perLink[pairOf(from, to)]; ok {
			lf = o
		}
	}
	if lf.DropRate > 0 && f.rng.Float64() < lf.DropRate {
		v.drop = true
		f.stats.Dropped++
		return v
	}
	if lf.JitterMax > 0 {
		v.extra = sim.Time(f.rng.Int63n(int64(lf.JitterMax)))
		f.stats.Jittered++
	}
	if lf.DupRate > 0 && f.rng.Float64() < lf.DupRate {
		v.dup = true
		f.stats.Duplicated++
		if lf.JitterMax > 0 {
			v.dupExtra = sim.Time(f.rng.Int63n(int64(lf.JitterMax)))
		}
	}
	return v
}

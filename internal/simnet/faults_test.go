package simnet

import (
	"testing"

	"repro/internal/runtime"
	"repro/internal/sim"
)

func TestFaultDropAll(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
	net.SetFaults(NewFaults(FaultConfig{DropRate: 1, Seed: 7}))

	for i := 0; i < 10; i++ {
		net.Send(1, 2, 10, i)
	}
	eng.Run()
	if len(r.msgs) != 0 {
		t.Fatalf("drop rate 1 delivered %d messages", len(r.msgs))
	}
	st := net.Stats()
	if st.MessagesSent != 10 || st.MessagesDropped != 10 || st.MessagesDelivered != 0 {
		t.Fatalf("stats %+v, want 10 sent / 10 dropped / 0 delivered", st)
	}
	if fs := net.Faults().Stats(); fs.Dropped != 10 {
		t.Fatalf("fault stats %+v, want Dropped=10", fs)
	}
}

func TestFaultDuplicateAll(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
	net.SetFaults(NewFaults(FaultConfig{DupRate: 1, Seed: 7}))

	net.Send(1, 2, 100, "x")
	eng.Run()
	if len(r.msgs) != 2 {
		t.Fatalf("dup rate 1 delivered %d copies, want 2", len(r.msgs))
	}
	// The duplicate counts as an extra send so delivered+dropped <= sent holds.
	st := net.Stats()
	if st.MessagesSent != 2 || st.MessagesDelivered != 2 || st.BytesSent != 200 {
		t.Fatalf("stats %+v, want 2 sent / 2 delivered / 200 bytes", st)
	}
	if fs := net.Faults().Stats(); fs.Duplicated != 1 {
		t.Fatalf("fault stats %+v, want Duplicated=1", fs)
	}
}

func TestFaultJitterBounded(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
	base, err := net.Delay(1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	const jmax = 50 * sim.Millisecond
	net.SetFaults(NewFaults(FaultConfig{JitterMax: jmax, Seed: 7}))

	for i := 0; i < 20; i++ {
		net.Send(1, 2, 10, i)
	}
	eng.Run()
	if len(r.times) != 20 {
		t.Fatalf("delivered %d, want 20", len(r.times))
	}
	anyLate := false
	for _, at := range r.times {
		if at < base || at >= base+jmax {
			t.Fatalf("delivery at %v outside [%v, %v)", at, base, base+jmax)
		}
		if at > base {
			anyLate = true
		}
	}
	if !anyLate {
		t.Fatal("jitter never delayed any of 20 messages")
	}
	if fs := net.Faults().Stats(); fs.Jittered != 20 {
		t.Fatalf("fault stats %+v, want Jittered=20", fs)
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
	net.Attach(3, runtime.Endpoint{Host: stubs[1], Capacity: 1}, r)
	f := NewFaults(FaultConfig{Seed: 7})
	f.AddPartition(0, sim.Second, []int{stubs[0], stubs[1]})
	net.SetFaults(f)

	net.Send(1, 2, 10, "cross") // across the cut: dropped
	net.Send(1, 3, 10, "same")  // both on side A: delivered
	eng.RunUntil(sim.Second)
	if len(r.msgs) != 1 || r.msgs[0] != "same" {
		t.Fatalf("during partition got %v, want only the same-side message", r.msgs)
	}
	// After the window heals, cross-side traffic flows again.
	net.Send(1, 2, 10, "healed")
	eng.Run()
	if len(r.msgs) != 2 || r.msgs[1] != "healed" {
		t.Fatalf("after heal got %v", r.msgs)
	}
	if fs := f.Stats(); fs.PartitionDropped != 1 || fs.Dropped != 0 {
		t.Fatalf("fault stats %+v, want PartitionDropped=1", fs)
	}
}

func TestFaultPerLinkOverride(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
	net.Attach(3, runtime.Endpoint{Host: stubs[6], Capacity: 1}, r)
	f := NewFaults(FaultConfig{Seed: 7}) // clean global policy
	f.SetLink(1, 2, LinkFaults{DropRate: 1})
	net.SetFaults(f)

	net.Send(1, 2, 10, "doomed")
	net.Send(2, 1, 10, "doomed-too") // override is unordered
	net.Send(1, 3, 10, "fine")
	eng.Run()
	if len(r.msgs) != 1 || r.msgs[0] != "fine" {
		t.Fatalf("per-link override wrong: delivered %v", r.msgs)
	}
}

func TestFaultLocalSendImmune(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: topo.StubNodes()[0], Capacity: 1}, r)
	net.SetFaults(NewFaults(FaultConfig{DropRate: 1, Seed: 7}))

	net.SendLocal(1, "self")
	eng.Run()
	if len(r.msgs) != 1 {
		t.Fatal("SendLocal must bypass the fault layer")
	}
}

// TestFaultZeroRateIdentical is the layer's determinism contract: an attached
// all-zero policy must produce exactly the run the bare network produces —
// same delivery times, same stats, no RNG consumed.
func TestFaultZeroRateIdentical(t *testing.T) {
	run := func(withFaults bool) (*recorder, Stats) {
		eng, net, topo := testNet(t, DefaultConfig())
		stubs := topo.StubNodes()
		r := &recorder{eng: eng}
		net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
		net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)
		if withFaults {
			net.SetFaults(NewFaults(FaultConfig{Seed: 99}))
		}
		for i := 0; i < 50; i++ {
			net.Send(1, 2, 10+i, i)
			net.Send(2, 1, 10, i)
		}
		eng.Run()
		return r, net.Stats()
	}
	bare, bareStats := run(false)
	zero, zeroStats := run(true)
	if bareStats != zeroStats {
		t.Fatalf("stats diverge: bare %+v vs zero-rate %+v", bareStats, zeroStats)
	}
	if len(bare.times) != len(zero.times) {
		t.Fatalf("delivery counts diverge: %d vs %d", len(bare.times), len(zero.times))
	}
	for i := range bare.times {
		if bare.times[i] != zero.times[i] || bare.msgs[i] != zero.msgs[i] {
			t.Fatalf("delivery %d diverges: (%v, %v) vs (%v, %v)",
				i, bare.times[i], bare.msgs[i], zero.times[i], zero.msgs[i])
		}
	}
}

// Package simnet is the overlay message layer: it delivers messages between
// peers hosted on physical topology nodes, charging each message the
// shortest-path propagation latency plus an access-link serialization delay
// derived from the endpoint with the lower link capacity.
//
// Together with sim and topology it replaces the NS2 substrate the paper ran
// on. Protocol code never sees the physical network; it only calls Send and
// implements Handler.
package simnet

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Addr identifies a peer endpoint. Each overlay peer is hosted on one
// physical topology node; the mapping is set at Attach time. It is an alias
// for runtime.Addr: simnet is the discrete-event implementation of the
// runtime.Transport the protocols are written against.
type Addr = runtime.Addr

// None is the null address.
const None = runtime.None

// Handler receives delivered messages inside the simulation loop.
type Handler = runtime.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc = runtime.HandlerFunc

// LinkKey identifies an undirected physical link by its ordered endpoints.
type LinkKey struct {
	A, B int
}

func linkKey(a, b int) LinkKey {
	if a > b {
		a, b = b, a
	}
	return LinkKey{A: a, B: b}
}

// Stats aggregates network-level accounting for a run. MessagesSent counts
// every send, including self-deliveries via SendLocal (which are additionally
// broken out under LocalSent), so MessagesDelivered+MessagesDropped can never
// exceed MessagesSent.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	BytesSent         uint64
	LocalSent         uint64
}

// Config tunes the message layer.
type Config struct {
	// BaseCapacity is the slowest access-link capacity in bytes per
	// simulated microsecond. The paper's slowest links are dial-up-class;
	// 0.015 B/us ~= 120 kbit/s.
	BaseCapacity float64
	// TrackLinkStress enables per-physical-link message counting. It
	// walks the physical path of every message, so leave it off for the
	// large sweeps that do not report link stress.
	TrackLinkStress bool
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{BaseCapacity: 0.015}
}

// Network delivers overlay messages over a physical topology.
//
// Endpoint state is kept in flat slices indexed by Addr.Index() rather than
// maps: runtimes allocate addresses densely from 0, so the tables stay dense,
// every per-message lookup is a bounds-checked load, and a million attached
// peers cost three machine words each instead of three map entries.
type Network struct {
	Eng  *sim.Engine
	Topo *topology.Graph

	cfg      Config
	handlers []Handler         // Addr.Index() -> handler (nil = detached)
	host     []int32           // Addr.Index() -> physical node (-1 = detached)
	capacity []float64         // Addr.Index() -> relative access-link capacity
	stress   map[LinkKey]int64 // physical link -> messages carried
	stats    Stats
	tracer   *obs.Tracer
	faults   *Faults

	// free is the delivery-event free list. Delivery events are pooled for
	// the same reason the engine pools its Event structs: scheduling one
	// delivery per overlay message through a fresh closure was the single
	// largest allocation site in the whole simulator. A pooled delivery
	// carries its pre-bound run thunk, so steady-state sends allocate
	// nothing — including the duplicated copies the fault layer injects,
	// which schedule through the same pool.
	free []*delivery
}

// delivery is one pooled in-flight message. run is bound to dispatch once,
// when the struct is first created, and reused across recycles.
type delivery struct {
	n        *Network
	from, to Addr
	note     string
	msg      any
	run      func()
}

// dispatch delivers (or drops) the message, releasing the struct back to the
// pool first so handlers that send messages can reuse it immediately.
func (dv *delivery) dispatch() {
	n, from, to, note, msg := dv.n, dv.from, dv.to, dv.note, dv.msg
	dv.msg = nil
	dv.note = ""
	n.free = append(n.free, dv)
	if h := n.handlerOf(to); h != nil {
		n.stats.MessagesDelivered++
		n.tracer.Emit(obs.EvMsgDeliver, n.Eng.Now(), 0, int(from), int(to), 0, note)
		h.Recv(from, msg)
		return
	}
	n.stats.MessagesDropped++
	n.tracer.Emit(obs.EvMsgDrop, n.Eng.Now(), 0, int(from), int(to), 0, note)
}

// getDelivery pops a pooled delivery (or makes one, binding its run thunk).
func (n *Network) getDelivery() *delivery {
	if ln := len(n.free); ln > 0 {
		dv := n.free[ln-1]
		n.free[ln-1] = nil
		n.free = n.free[:ln-1]
		return dv
	}
	dv := &delivery{n: n}
	dv.run = dv.dispatch
	return dv
}

// New creates a network over the given engine and topology.
func New(eng *sim.Engine, topo *topology.Graph, cfg Config) *Network {
	if cfg.BaseCapacity <= 0 {
		cfg.BaseCapacity = DefaultConfig().BaseCapacity
	}
	return &Network{
		Eng:    eng,
		Topo:   topo,
		cfg:    cfg,
		stress: make(map[LinkKey]int64),
	}
}

// grow extends the endpoint tables to cover index i.
func (n *Network) grow(i int) {
	for len(n.handlers) <= i {
		n.handlers = append(n.handlers, nil)
		n.host = append(n.host, -1)
		n.capacity = append(n.capacity, 0)
	}
}

// handlerOf returns the live handler for an address, or nil.
func (n *Network) handlerOf(a Addr) Handler {
	if i := a.Index(); i >= 0 && i < len(n.handlers) {
		return n.handlers[i]
	}
	return nil
}

// hostOf returns the physical host for an address, or -1 if detached.
func (n *Network) hostOf(a Addr) int {
	if i := a.Index(); i >= 0 && i < len(n.host) {
		return int(n.host[i])
	}
	return -1
}

// Attach registers a peer at the endpoint's physical host. The endpoint
// capacity is the relative access-link speed (1 = slowest class; the paper's
// fastest class is 10x the slowest).
func (n *Network) Attach(a Addr, ep runtime.Endpoint, h Handler) {
	if ep.Host < 0 || ep.Host >= n.Topo.NumNodes() {
		panic(fmt.Sprintf("simnet: host %d out of range", ep.Host))
	}
	if ep.Capacity < 1 {
		ep.Capacity = 1
	}
	i := a.Index()
	if i < 0 {
		panic(fmt.Sprintf("simnet: attaching invalid address %d", a))
	}
	n.grow(i)
	n.handlers[i] = h
	n.host[i] = int32(ep.Host)
	n.capacity[i] = ep.Capacity
}

// Detach removes a peer; in-flight messages to it are dropped on delivery.
// This models an abrupt crash.
func (n *Network) Detach(a Addr) {
	if i := a.Index(); i >= 0 && i < len(n.handlers) {
		n.handlers[i] = nil
		n.host[i] = -1
		n.capacity[i] = 0
	}
}

// Attached reports whether the address currently has a live handler.
func (n *Network) Attached(a Addr) bool {
	return n.handlerOf(a) != nil
}

// Host returns the physical node hosting the peer, or -1 if detached.
func (n *Network) Host(a Addr) int { return n.hostOf(a) }

// Capacity returns the peer's relative access-link capacity (0 if detached).
func (n *Network) Capacity(a Addr) float64 {
	if i := a.Index(); i >= 0 && i < len(n.capacity) {
		return n.capacity[i]
	}
	return 0
}

// Stats returns a copy of the accounting counters; mutating the returned
// value does not affect the network.
func (n *Network) Stats() Stats { return n.stats }

// SetTracer attaches a trace event sink for message send/deliver/drop events.
// A nil tracer (the default) disables tracing at the cost of one pointer
// check per message.
func (n *Network) SetTracer(t *obs.Tracer) { n.tracer = t }

// SetFaults attaches a fault-injection policy to every subsequent Send. A
// nil value (the default) disables the layer at the cost of one pointer
// check per message; SendLocal (in-process self-delivery) is never faulted.
func (n *Network) SetFaults(f *Faults) { n.faults = f }

// Faults returns the attached fault layer, or nil.
func (n *Network) Faults() *Faults { return n.faults }

// LinkStress returns a copy of the per-link message counts (only populated
// when TrackLinkStress is set); callers may freely mutate the returned map.
func (n *Network) LinkStress() map[LinkKey]int64 {
	out := make(map[LinkKey]int64, len(n.stress))
	for k, v := range n.stress {
		out[k] = v
	}
	return out
}

// MaxLinkStress returns the highest per-link message count.
func (n *Network) MaxLinkStress() int64 {
	var max int64
	for _, v := range n.stress {
		if v > max {
			max = v
		}
	}
	return max
}

// Delay returns the latency a message of the given size would experience
// between two attached peers right now.
func (n *Network) Delay(from, to Addr, size int) (sim.Time, error) {
	hf := n.hostOf(from)
	if hf < 0 {
		return 0, fmt.Errorf("simnet: sender %d not attached", from)
	}
	ht := n.hostOf(to)
	if ht < 0 {
		return 0, fmt.Errorf("simnet: receiver %d not attached", to)
	}
	prop, err := n.Topo.Latency(hf, ht)
	if err != nil {
		return 0, err
	}
	// The transfer speed between two peers is bounded by the slower
	// access link (paper, section 5.1).
	cap := n.capacity[from.Index()]
	if c := n.capacity[to.Index()]; c < cap {
		cap = c
	}
	ser := float64(size) / (n.cfg.BaseCapacity * cap)
	return sim.Time(prop) + sim.Time(ser), nil
}

// Send schedules delivery of msg from one peer to another. size is the
// message size in bytes and only affects the serialization delay. If the
// destination is detached now or at delivery time the message is dropped,
// exactly as a packet to a crashed host would be.
func (n *Network) Send(from, to Addr, size int, msg any) {
	n.stats.MessagesSent++
	n.stats.BytesSent += uint64(size)
	var note string
	if n.tracer.Enabled() {
		note = fmt.Sprintf("%T", msg)
		n.tracer.Emit(obs.EvMsgSend, n.Eng.Now(), 0, int(from), int(to), 0, note)
	}

	d, err := n.Delay(from, to, size)
	if err != nil {
		n.stats.MessagesDropped++
		n.tracer.Emit(obs.EvMsgDrop, n.Eng.Now(), 0, int(from), int(to), 0, note)
		return
	}
	copies := 1
	if n.faults != nil {
		v := n.faults.apply(n.Eng.Now(), n.hostOf(from), n.hostOf(to), from, to)
		if v.drop {
			// An injected loss looks exactly like a packet that never
			// arrived: the send was counted, the delivery never happens.
			n.stats.MessagesDropped++
			n.tracer.Emit(obs.EvMsgDrop, n.Eng.Now(), 0, int(from), int(to), 0, note)
			return
		}
		if v.dup {
			// The duplicate counts as its own send so the invariant
			// delivered+dropped <= sent keeps holding.
			copies = 2
			n.stats.MessagesSent++
			n.stats.BytesSent += uint64(size)
			n.schedule(d+v.dupExtra, from, to, note, msg)
		}
		d += v.extra
	}
	if n.cfg.TrackLinkStress {
		if path, err := n.Topo.Path(n.hostOf(from), n.hostOf(to)); err == nil {
			for i := 1; i < len(path); i++ {
				n.stress[linkKey(path[i-1], path[i])] += int64(copies)
			}
		}
	}
	n.schedule(d, from, to, note, msg)
}

// schedule enqueues one delivery attempt after delay d; the message is
// dropped if the destination handler is gone by delivery time. The event
// rides a pooled delivery struct instead of a fresh closure.
func (n *Network) schedule(d sim.Time, from, to Addr, note string, msg any) {
	dv := n.getDelivery()
	dv.from, dv.to, dv.note, dv.msg = from, to, note, msg
	n.Eng.After(d, dv.run)
}

// SendLocal schedules a message from a peer to itself with negligible delay.
// Protocols use it to defer work to a fresh event without network cost. Local
// sends count toward MessagesSent (and are broken out under LocalSent) so the
// delivered/dropped totals always have a matching send.
func (n *Network) SendLocal(a Addr, msg any) {
	n.stats.MessagesSent++
	n.stats.LocalSent++
	n.schedule(sim.Microsecond, a, a, "local", msg)
}

package simnet

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T, cfg Config) (*sim.Engine, *Network, *topology.Graph) {
	t.Helper()
	tc := topology.Config{
		TransitDomains:        2,
		TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 1,
		StubNodesPerDomain:    8,
		TransitScale:          10,
		BaseLatency:           500,
		LatencyPerUnit:        20000,
	}
	topo, err := topology.GenerateTransitStub(tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(1)
	return eng, New(eng, topo, cfg), topo
}

type recorder struct {
	msgs  []any
	froms []Addr
	times []sim.Time
	eng   *sim.Engine
}

func (r *recorder) Recv(from Addr, msg any) {
	r.froms = append(r.froms, from)
	r.msgs = append(r.msgs, msg)
	r.times = append(r.times, r.eng.Now())
}

func TestSendDelivers(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	ra, rb := &recorder{eng: eng}, &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, ra)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, rb)

	net.Send(1, 2, 100, "hello")
	eng.Run()
	if len(rb.msgs) != 1 || rb.msgs[0] != "hello" || rb.froms[0] != 1 {
		t.Fatalf("delivery wrong: %+v", rb)
	}
	if rb.times[0] <= 0 {
		t.Fatal("message delivered instantly; latency missing")
	}
	st := net.Stats()
	if st.MessagesSent != 1 || st.MessagesDelivered != 1 || st.BytesSent != 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDelayComposition(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, &recorder{eng: eng})
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, &recorder{eng: eng})

	small, err := net.Delay(1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	big, err := net.Delay(1, 2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("larger message not slower: %v vs %v", big, small)
	}
	prop, _ := topo.Latency(stubs[0], stubs[5])
	if small <= sim.Time(prop) {
		t.Fatalf("delay %v does not include serialization beyond propagation %v", small, prop)
	}
}

func TestCapacityBoundedBySlowerSide(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 10}, &recorder{eng: eng}) // fast
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, &recorder{eng: eng})  // slow
	net.Attach(3, runtime.Endpoint{Host: stubs[6], Capacity: 10}, &recorder{eng: eng}) // fast

	fastToSlow, _ := net.Delay(1, 2, 1000)
	slowToFast, _ := net.Delay(2, 1, 1000)
	if fastToSlow != slowToFast {
		t.Fatalf("min-capacity rule should be symmetric: %v vs %v", fastToSlow, slowToFast)
	}
	prop12, _ := topo.Latency(stubs[0], stubs[5])
	prop13, _ := topo.Latency(stubs[0], stubs[6])
	fastToFast, _ := net.Delay(1, 3, 1000)
	// Compare serialization components only.
	serSlow := fastToSlow - sim.Time(prop12)
	serFast := fastToFast - sim.Time(prop13)
	if serSlow <= serFast {
		t.Fatalf("slow endpoint should dominate: ser slow=%v fast=%v", serSlow, serFast)
	}
}

func TestDetachDropsMessages(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[1], Capacity: 1}, r)

	// Dropped at send time: receiver already gone.
	net.Detach(2)
	net.Send(1, 2, 10, "a")
	eng.Run()
	if st := net.Stats(); st.MessagesDropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.MessagesDropped)
	}

	// Dropped at delivery time: receiver crashes while in flight.
	net.Attach(2, runtime.Endpoint{Host: stubs[1], Capacity: 1}, r)
	net.Send(1, 2, 10, "b")
	net.Detach(2)
	eng.Run()
	if st := net.Stats(); st.MessagesDropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.MessagesDropped)
	}
	if len(r.msgs) != 0 {
		t.Fatalf("crashed peer received %v", r.msgs)
	}
}

func TestSenderDetachedErrors(t *testing.T) {
	_, net, topo := testNet(t, DefaultConfig())
	net.Attach(2, runtime.Endpoint{Host: topo.StubNodes()[0], Capacity: 1}, &recorder{})
	if _, err := net.Delay(1, 2, 10); err == nil {
		t.Fatal("detached sender Delay should error")
	}
	net.Send(1, 2, 10, "x") // silently counted as dropped
	if st := net.Stats(); st.MessagesDropped != 1 {
		t.Fatalf("dropped = %d", st.MessagesDropped)
	}
}

func TestSendLocal(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: topo.StubNodes()[0], Capacity: 1}, r)
	net.SendLocal(1, "self")
	eng.Run()
	if len(r.msgs) != 1 || r.froms[0] != 1 {
		t.Fatalf("SendLocal failed: %+v", r)
	}
}

func TestAttachedHostCapacity(t *testing.T) {
	_, net, topo := testNet(t, DefaultConfig())
	h := topo.StubNodes()[3]
	net.Attach(9, runtime.Endpoint{Host: h, Capacity: 5}, &recorder{})
	if !net.Attached(9) || net.Attached(8) {
		t.Fatal("Attached wrong")
	}
	if net.Host(9) != h || net.Host(8) != -1 {
		t.Fatal("Host wrong")
	}
	if net.Capacity(9) != 5 {
		t.Fatal("Capacity wrong")
	}
	// Capacity below 1 clamps.
	net.Attach(10, runtime.Endpoint{Host: h, Capacity: 0.1}, &recorder{})
	if net.Capacity(10) != 1 {
		t.Fatal("capacity not clamped to 1")
	}
}

func TestLinkStress(t *testing.T) {
	eng, net, topo := func() (*sim.Engine, *Network, *topology.Graph) {
		tc := topology.Config{
			TransitDomains: 2, TransitNodesPerDomain: 2,
			StubDomainsPerTransit: 1, StubNodesPerDomain: 8,
			TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
		}
		topo, err := topology.GenerateTransitStub(tc, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New(1)
		cfg := DefaultConfig()
		cfg.TrackLinkStress = true
		return eng, New(eng, topo, cfg), topo
	}()
	stubs := topo.StubNodes()
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, &recorder{eng: eng})
	net.Attach(2, runtime.Endpoint{Host: stubs[len(stubs)-1], Capacity: 1}, &recorder{eng: eng})
	for i := 0; i < 5; i++ {
		net.Send(1, 2, 10, i)
	}
	eng.Run()
	if net.MaxLinkStress() != 5 {
		t.Fatalf("max link stress = %d, want 5 (same path each time)", net.MaxLinkStress())
	}
	path, _ := topo.Path(stubs[0], stubs[len(stubs)-1])
	if len(net.LinkStress()) != len(path)-1 {
		t.Fatalf("stress tracked on %d links, path has %d", len(net.LinkStress()), len(path)-1)
	}
}

func TestSendLocalAccounting(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: topo.StubNodes()[0], Capacity: 1}, r)

	// Delivered local send.
	net.SendLocal(1, "self")
	eng.Run()
	// Dropped local send: receiver detaches before delivery.
	net.SendLocal(1, "late")
	net.Detach(1)
	eng.Run()

	st := net.Stats()
	if st.MessagesSent != 2 || st.LocalSent != 2 {
		t.Fatalf("sent=%d local=%d, want 2/2 (SendLocal must count as sent)", st.MessagesSent, st.LocalSent)
	}
	if st.MessagesDelivered != 1 || st.MessagesDropped != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1/1", st.MessagesDelivered, st.MessagesDropped)
	}
	if st.MessagesDelivered+st.MessagesDropped > st.MessagesSent {
		t.Fatalf("delivered+dropped (%d) exceeds sent (%d)",
			st.MessagesDelivered+st.MessagesDropped, st.MessagesSent)
	}
}

func TestLinkStressReturnsCopy(t *testing.T) {
	eng, net, topo := func() (*sim.Engine, *Network, *topology.Graph) {
		tc := topology.Config{
			TransitDomains: 2, TransitNodesPerDomain: 2,
			StubDomainsPerTransit: 1, StubNodesPerDomain: 8,
			TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
		}
		topo, err := topology.GenerateTransitStub(tc, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New(1)
		cfg := DefaultConfig()
		cfg.TrackLinkStress = true
		return eng, New(eng, topo, cfg), topo
	}()
	stubs := topo.StubNodes()
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, &recorder{eng: eng})
	net.Attach(2, runtime.Endpoint{Host: stubs[len(stubs)-1], Capacity: 1}, &recorder{eng: eng})
	net.Send(1, 2, 10, "x")
	eng.Run()

	got := net.LinkStress()
	if len(got) == 0 {
		t.Fatal("no link stress recorded")
	}
	// Mutating the returned map must not corrupt the network's counters.
	for k := range got {
		got[k] = -999
	}
	delete(got, linkKey(0, 1))
	for _, v := range net.LinkStress() {
		if v <= 0 {
			t.Fatal("LinkStress exposed internal map: external mutation visible")
		}
	}
	if net.MaxLinkStress() != 1 {
		t.Fatalf("MaxLinkStress = %d after external mutation, want 1", net.MaxLinkStress())
	}
}

func TestSendEmitsTraceEvents(t *testing.T) {
	eng, net, topo := testNet(t, DefaultConfig())
	tr := obs.NewTracer(64)
	net.SetTracer(tr)
	stubs := topo.StubNodes()
	r := &recorder{eng: eng}
	net.Attach(1, runtime.Endpoint{Host: stubs[0], Capacity: 1}, r)
	net.Attach(2, runtime.Endpoint{Host: stubs[5], Capacity: 1}, r)

	net.Send(1, 2, 100, "hello")
	net.SendLocal(1, "self")
	net.Send(1, 3, 10, "nobody") // dropped: 3 never attached
	eng.Run()

	counts := map[obs.Kind]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if counts[obs.EvMsgSend] != 2 { // Send x2; SendLocal has no network send
		t.Fatalf("msg_send events = %d, want 2", counts[obs.EvMsgSend])
	}
	if counts[obs.EvMsgDeliver] != 2 { // remote + local delivery
		t.Fatalf("msg_deliver events = %d, want 2", counts[obs.EvMsgDeliver])
	}
	if counts[obs.EvMsgDrop] != 1 {
		t.Fatalf("msg_drop events = %d, want 1", counts[obs.EvMsgDrop])
	}
	// Payload type travels in the note.
	found := false
	for _, e := range tr.Events() {
		if e.Kind == obs.EvMsgSend && e.Note == "string" && e.From == 1 && e.To == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("send event missing payload type note")
	}
}

func TestHandlerFunc(t *testing.T) {
	called := false
	HandlerFunc(func(from Addr, msg any) { called = true }).Recv(1, "x")
	if !called {
		t.Fatal("HandlerFunc did not dispatch")
	}
}

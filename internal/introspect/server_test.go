package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
)

// TestServerEndpoints is the in-tree smoke gate for the introspection server:
// a real live-runtime cluster with the full observability stack attached, all
// four endpoints scraped over real HTTP.
func TestServerEndpoints(t *testing.T) {
	rt := live.New(live.Config{Seed: 1, AwaitTimeout: 30 * time.Second})
	defer rt.Close()

	cfg := core.DefaultConfig()
	cfg.Ps = 0.5
	cfg.HelloEvery = 50 * runtime.Millisecond
	cfg.HelloTimeout = 200 * runtime.Millisecond
	cfg.SuppressTimeout = 25 * runtime.Millisecond
	cfg.LookupTimeout = 3 * runtime.Second
	cfg.JoinTimeout = 3 * runtime.Second
	cfg.FingerRefreshEvery = 100 * runtime.Millisecond

	sys, err := core.NewSystem(rt, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	sys.SetMetrics(reg)
	sys.SetTracer(tr)
	sampler := core.NewHealthSampler(sys, reg, cfg.HelloEvery)
	rt.Do(sampler.Start)

	srv, err := Start(Config{Addr: "127.0.0.1:0", Sys: sys, Reg: reg, Tracer: tr, Sampler: sampler})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 64})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys.Settle(4 * cfg.HelloEvery)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("smoke-%03d", i)
		if _, err := sys.StoreSync(peers[i%len(peers)], key, "v"); err != nil {
			t.Fatalf("store: %v", err)
		}
	}
	okCount := 0
	for i := 0; i < 32; i++ {
		r, err := sys.LookupSync(peers[(i*7)%len(peers)], fmt.Sprintf("smoke-%03d", i))
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if r.OK {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no lookup succeeded; nothing to scrape")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// /metrics: well-formed exposition with the lookup histogram series.
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE lookup_latency_us histogram",
		`lookup_latency_us_bucket{le="+Inf"}`,
		"lookup_latency_us_count",
		"# TYPE lookup_hops histogram",
		"# TYPE health_live_peers gauge",
		"health_live_peers 64",
		"# TYPE lookup_ok counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	// /healthz: a settled cluster must report healthy with a sampled score.
	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d body %s", code, body)
	}
	var hz struct {
		Healthy bool             `json:"healthy"`
		Sampled bool             `json:"sampled"`
		Score   core.HealthScore `json:"score"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if !hz.Healthy || !hz.Sampled || hz.Score.LivePeers != 64 {
		t.Fatalf("/healthz = %+v", hz)
	}

	// /ring: JSON summary consistent with the population.
	code, body = get("/ring")
	if code != http.StatusOK {
		t.Fatalf("/ring status %d", code)
	}
	var ring core.RingView
	if err := json.Unmarshal([]byte(body), &ring); err != nil {
		t.Fatalf("/ring not JSON: %v", err)
	}
	if ring.LivePeers != 64 || len(ring.Ring) != ring.LiveTPeers {
		t.Fatalf("/ring = live %d, %d entries for %d t-peers", ring.LivePeers, len(ring.Ring), ring.LiveTPeers)
	}

	// /trace: JSONL tail, bounded by ?n=.
	code, body = get("/trace?n=5")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || len(lines) > 5 {
		t.Fatalf("/trace?n=5 returned %d lines", len(lines))
	}
	for _, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("/trace line %q not JSON: %v", l, err)
		}
	}
	if code, _ := get("/trace?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/trace?n=bogus status %d, want 400", code)
	}
}

// Package introspect is the live-cluster introspection server: a small
// net/http server exposing the observability layer of a running system —
// Prometheus metrics, the ring-health sampler's verdict, a JSON ring summary,
// and the bounded trace ring — without ever touching protocol state outside
// the runtime's execution guarantee. It lives above both internal/core and
// internal/obs (core already imports obs, so the HTTP view cannot live in
// either package without a cycle) and is wired in by cmd/hybridnode's -http
// flag.
//
// Endpoints:
//
//	/metrics  Prometheus text exposition (0.0.4) of the whole registry
//	/healthz  JSON health verdict; 200 when healthy, 503 when not
//	/ring     JSON ring/finger/s-tree summary (core.RingSummary)
//	/trace    JSONL tail of the bounded tracer (?n=, default 256)
//	/kv/<key> client-facing KV surface: GET looks the key up, PUT/POST
//	          stores the request body as its value, DELETE removes it.
//	          Requests are issued from this process's live peers
//	          round-robin and ride the full protocol path (ring routing,
//	          placement, replication), so driving /kv on a multi-process
//	          cluster benchmarks the system as a real store.
package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config wires a server to a running system. Sys and Reg are required; a nil
// Tracer serves an empty /trace and a nil Sampler makes /healthz compute a
// fresh score per request instead of reporting the last sampled one.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr    string
	Sys     *core.System
	Reg     *obs.Registry
	Tracer  *obs.Tracer
	Sampler *core.HealthSampler
}

// Server is a running introspection HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
	// kvNext round-robins /kv requests across the process's live peers.
	kvNext atomic.Uint64
}

// defaultTraceTail bounds /trace responses when no ?n= is given.
const defaultTraceTail = 256

// Start binds the listen address and serves in a background goroutine.
func Start(cfg Config) (*Server, error) {
	if cfg.Sys == nil || cfg.Reg == nil {
		return nil, fmt.Errorf("introspect: Config.Sys and Config.Reg are required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/ring", s.handleRing)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/kv/", s.handleKV)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	if err := s.cfg.Reg.WritePromText(w); err != nil {
		// Headers are gone; nothing useful left to do but drop the conn.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var (
		score   core.HealthScore
		sampled bool
	)
	if s.cfg.Sampler != nil {
		score, sampled = s.cfg.Sampler.Last()
	}
	if !sampled {
		// No sampler (or it has not ticked yet): compute a fresh score under
		// the execution guarantee.
		s.cfg.Sys.Runtime().Do(func() { score = s.cfg.Sys.HealthScore() })
	}
	status := http.StatusOK
	if !score.Healthy() {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck // best-effort response body
		Healthy bool             `json:"healthy"`
		Sampled bool             `json:"sampled"`
		Score   core.HealthScore `json:"score"`
	}{score.Healthy(), sampled, score})
}

func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	var view core.RingView
	s.cfg.Sys.Runtime().Do(func() { view = s.cfg.Sys.RingSummary() })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view) //nolint:errcheck // best-effort response body
}

// kvMaxValueBytes bounds a PUT/POST body; the protocol models values as
// short strings, so a megabyte is already generous.
const kvMaxValueBytes = 1 << 20

// kvOrigin picks the live peer the next /kv request is issued from,
// round-robin so a benchmark load spreads across the process's peers.
func (s *Server) kvOrigin() *core.Peer {
	var peers []*core.Peer
	s.cfg.Sys.Runtime().Do(func() { peers = s.cfg.Sys.Peers() })
	if len(peers) == 0 {
		return nil
	}
	return peers[s.kvNext.Add(1)%uint64(len(peers))]
}

func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "introspect: /kv/<key> requires a key", http.StatusBadRequest)
		return
	}
	origin := s.kvOrigin()
	if origin == nil {
		http.Error(w, "introspect: no live peer to issue from", http.StatusServiceUnavailable)
		return
	}
	switch r.Method {
	case http.MethodGet:
		res, err := s.cfg.Sys.LookupSync(origin, key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if !res.OK {
			http.Error(w, "introspect: key not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		io.WriteString(w, res.Value) //nolint:errcheck // best-effort body
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, kvMaxValueBytes+1))
		if err != nil {
			http.Error(w, "introspect: reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > kvMaxValueBytes {
			http.Error(w, "introspect: value too large", http.StatusRequestEntityTooLarge)
			return
		}
		res, err := s.cfg.Sys.StoreSync(origin, key, string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if !res.OK {
			http.Error(w, "introspect: store did not complete", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		res, err := s.cfg.Sys.DeleteSync(origin, key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if !res.OK {
			http.Error(w, "introspect: delete did not complete", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "introspect: method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := defaultTraceTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "introspect: bad ?n=", http.StatusBadRequest)
			return
		}
		n = v // n <= 0 means "all retained events"
	}
	w.Header().Set("Content-Type", "application/jsonl")
	s.cfg.Tracer.WriteJSONLTail(w, n) //nolint:errcheck // best-effort body
}

// Package introspect is the live-cluster introspection server: a small
// net/http server exposing the observability layer of a running system —
// Prometheus metrics, the ring-health sampler's verdict, a JSON ring summary,
// and the bounded trace ring — without ever touching protocol state outside
// the runtime's execution guarantee. It lives above both internal/core and
// internal/obs (core already imports obs, so the HTTP view cannot live in
// either package without a cycle) and is wired in by cmd/hybridnode's -http
// flag.
//
// Endpoints:
//
//	/metrics  Prometheus text exposition (0.0.4) of the whole registry
//	/healthz  JSON health verdict; 200 when healthy, 503 when not
//	/ring     JSON ring/finger/s-tree summary (core.RingSummary)
//	/trace    JSONL tail of the bounded tracer (?n=, default 256)
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config wires a server to a running system. Sys and Reg are required; a nil
// Tracer serves an empty /trace and a nil Sampler makes /healthz compute a
// fresh score per request instead of reporting the last sampled one.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr    string
	Sys     *core.System
	Reg     *obs.Registry
	Tracer  *obs.Tracer
	Sampler *core.HealthSampler
}

// Server is a running introspection HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// defaultTraceTail bounds /trace responses when no ?n= is given.
const defaultTraceTail = 256

// Start binds the listen address and serves in a background goroutine.
func Start(cfg Config) (*Server, error) {
	if cfg.Sys == nil || cfg.Reg == nil {
		return nil, fmt.Errorf("introspect: Config.Sys and Config.Reg are required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/ring", s.handleRing)
	mux.HandleFunc("/trace", s.handleTrace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	if err := s.cfg.Reg.WritePromText(w); err != nil {
		// Headers are gone; nothing useful left to do but drop the conn.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var (
		score   core.HealthScore
		sampled bool
	)
	if s.cfg.Sampler != nil {
		score, sampled = s.cfg.Sampler.Last()
	}
	if !sampled {
		// No sampler (or it has not ticked yet): compute a fresh score under
		// the execution guarantee.
		s.cfg.Sys.Runtime().Do(func() { score = s.cfg.Sys.HealthScore() })
	}
	status := http.StatusOK
	if !score.Healthy() {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck // best-effort response body
		Healthy bool             `json:"healthy"`
		Sampled bool             `json:"sampled"`
		Score   core.HealthScore `json:"score"`
	}{score.Healthy(), sampled, score})
}

func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	var view core.RingView
	s.cfg.Sys.Runtime().Do(func() { view = s.cfg.Sys.RingSummary() })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view) //nolint:errcheck // best-effort response body
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := defaultTraceTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "introspect: bad ?n=", http.StatusBadRequest)
			return
		}
		n = v // n <= 0 means "all retained events"
	}
	w.Header().Set("Content-Type", "application/jsonl")
	s.cfg.Tracer.WriteJSONLTail(w, n) //nolint:errcheck // best-effort body
}

// Package analytic implements the closed-form performance models of
// section 4 of the paper: average join latency (Eq. 1), the out-of-range
// peer count behind the lookup failure ratio (Eq. 2), and the average data
// lookup latency with and without the degree constraint.
//
// All quantities are expressed in overlay hops, exactly as in the paper; the
// experiment harness plots them next to the simulated hop counts
// (Fig. 3a/3b) to check that the implementation matches the model.
package analytic

import (
	"math"
)

// Params carries the model inputs.
type Params struct {
	// N is the total number of peers.
	N float64
	// Ps is the proportion of s-peers.
	Ps float64
	// Delta is the s-network degree constraint δ.
	Delta float64
	// TTL is the flood radius.
	TTL float64
}

// log2 is the base-2 logarithm clamped at zero: the paper's hop estimates
// never go negative.
func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// logd is the base-δ logarithm clamped at zero.
func logd(x, d float64) float64 {
	if x <= 1 || d <= 1 {
		return 0
	}
	return math.Log(x) / math.Log(d)
}

// AvgSNetSize returns the average number of s-peers per s-network,
// p_s/(1-p_s) (section 4.1).
func AvgSNetSize(ps float64) float64 {
	if ps >= 1 {
		return math.Inf(1)
	}
	return ps / (1 - ps)
}

// TJoinHops returns the expected hop count of a t-peer join request
// traveling the ring with finger acceleration: log((1-ps)N/2).
func TJoinHops(p Params) float64 {
	return log2((1 - p.Ps) * p.N / 2)
}

// SJoinHops returns the expected hop count of an s-peer join walk: the
// average height of the degree-δ tree, log_δ(ps/(1-ps)).
func SJoinHops(p Params) float64 {
	return logd(AvgSNetSize(p.Ps), p.Delta)
}

// JoinLatency evaluates Eq. (1): the population-weighted average join hop
// count, (1-ps)*log((1-ps)N/2) + ps*log_δ(ps/(1-ps)).
func JoinLatency(p Params) float64 {
	return (1-p.Ps)*TJoinHops(p) + p.Ps*SJoinHops(p)
}

// PLocal returns p, the probability that a looked-up item is served by the
// requester's own s-network: ps/(N*(1-ps)) (section 4.2).
func PLocal(p Params) float64 {
	if p.Ps >= 1 {
		return 1
	}
	v := p.Ps / (p.N * (1 - p.Ps))
	if v > 1 {
		return 1
	}
	return v
}

// OutOfRange evaluates Eq. (2): the expected number of s-network peers
// beyond the flood radius, averaged over t-peer- and leaf-initiated floods.
// Negative values (the flood covers everything) clamp to zero.
func OutOfRange(p Params) float64 {
	size := AvgSNetSize(p.Ps)
	d, ttl := p.Delta, p.TTL
	if d <= 1 {
		if size > ttl {
			return size - ttl
		}
		return 0
	}
	covered := (math.Pow(d, ttl+1)*(d-1) + math.Pow(d, 2+ttl/2) - (d-1)*ttl/2) /
		(2 * (d - 1) * (d - 1))
	out := size - covered
	if out < 0 {
		return 0
	}
	return out
}

// FailureRatio approximates the lookup failure ratio as the out-of-range
// fraction of the average s-network.
func FailureRatio(p Params) float64 {
	size := AvgSNetSize(p.Ps)
	if size <= 0 {
		return 0
	}
	r := OutOfRange(p) / size
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// LookupLatencyStar returns the average lookup hop count when s-networks
// are stars (no degree constraint): p*2 + (1-p)*(2 + log((1-ps)N/2)).
func LookupLatencyStar(p Params) float64 {
	pl := PLocal(p)
	ring := log2((1 - p.Ps) * p.N / 2)
	return pl*2 + (1-pl)*(2+ring)
}

// LookupLatency returns the average lookup hop count with the degree
// constraint δ (section 4.2):
//
//	p*ttl + (1-p)*(max{0, ½·log_δ(ps/(1-ps))} + ttl + log((1-ps)N/2))
func LookupLatency(p Params) float64 {
	pl := PLocal(p)
	climb := logd(AvgSNetSize(p.Ps), p.Delta) / 2
	if climb < 0 {
		climb = 0
	}
	ring := log2((1 - p.Ps) * p.N / 2)
	return pl*p.TTL + (1-pl)*(climb+p.TTL+ring)
}

// Sweep evaluates f over ps in [lo, hi] with the given step and returns the
// (ps, value) series.
func Sweep(lo, hi, step float64, f func(ps float64) float64) (xs, ys []float64) {
	for ps := lo; ps <= hi+1e-9; ps += step {
		xs = append(xs, ps)
		ys = append(ys, f(ps))
	}
	return xs, ys
}

// OptimalJoinPs finds the ps in (0, 0.99] minimizing Eq. (1) by grid search;
// the paper reports values around 0.7-0.8.
func OptimalJoinPs(n, delta float64) float64 {
	best, bestVal := 0.0, math.Inf(1)
	for ps := 0.0; ps <= 0.99+1e-9; ps += 0.01 {
		v := JoinLatency(Params{N: n, Ps: ps, Delta: delta})
		if v < bestVal {
			best, bestVal = ps, v
		}
	}
	return best
}

package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJoinLatencyEndpoints(t *testing.T) {
	// ps = 0: pure structured; Eq. (1) reduces to log(N/2).
	got := JoinLatency(Params{N: 1000, Ps: 0, Delta: 3})
	want := math.Log2(500)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ps=0: %v, want %v", got, want)
	}
	// ps -> 1: the t-term vanishes.
	got = JoinLatency(Params{N: 1000, Ps: 0.999, Delta: 3})
	if got <= 0 || math.IsInf(got, 0) {
		t.Fatalf("ps~1: %v", got)
	}
}

func TestJoinLatencyUShape(t *testing.T) {
	// The curve must descend from ps=0 to its minimum and the minimum must
	// sit in the band the paper reports (0.6..0.9 for delta 2..4).
	for _, delta := range []float64{2, 3, 4} {
		opt := OptimalJoinPs(1000, delta)
		if opt < 0.55 || opt > 0.95 {
			t.Errorf("delta=%v: optimal ps %v outside [0.55, 0.95]", delta, opt)
		}
		atOpt := JoinLatency(Params{N: 1000, Ps: opt, Delta: delta})
		at0 := JoinLatency(Params{N: 1000, Ps: 0, Delta: delta})
		if atOpt >= at0 {
			t.Errorf("delta=%v: no improvement at optimum (%v vs %v)", delta, atOpt, at0)
		}
	}
}

func TestLargerDeltaLowersJoinLatency(t *testing.T) {
	// "Given system parameter ps, the larger the degree constraint δ, the
	// shorter the join latency" (for ps where the tree term matters).
	for _, ps := range []float64{0.6, 0.7, 0.8, 0.9} {
		l2 := JoinLatency(Params{N: 1000, Ps: ps, Delta: 2})
		l4 := JoinLatency(Params{N: 1000, Ps: ps, Delta: 4})
		if l4 > l2 {
			t.Errorf("ps=%v: delta=4 latency %v > delta=2 latency %v", ps, l4, l2)
		}
	}
}

func TestTJoinHopsMonotone(t *testing.T) {
	// T-join hops decrease as ps grows (fewer t-peers to route through).
	prev := math.Inf(1)
	for ps := 0.0; ps < 1.0; ps += 0.1 {
		h := TJoinHops(Params{N: 1000, Ps: ps})
		if h > prev+1e-9 {
			t.Fatalf("TJoinHops not monotone at ps=%v", ps)
		}
		prev = h
	}
}

func TestSJoinHopsMonotone(t *testing.T) {
	// S-join hops increase with ps (taller trees).
	prev := -1.0
	for ps := 0.1; ps < 0.99; ps += 0.1 {
		h := SJoinHops(Params{Ps: ps, Delta: 3})
		if h < prev-1e-9 {
			t.Fatalf("SJoinHops not monotone at ps=%v", ps)
		}
		prev = h
	}
}

func TestAvgSNetSize(t *testing.T) {
	if AvgSNetSize(0.5) != 1 {
		t.Fatal("ps=0.5 should average one s-peer per s-network")
	}
	if got := AvgSNetSize(0.9); math.Abs(got-9) > 1e-9 {
		t.Fatalf("ps=0.9: %v", got)
	}
	if !math.IsInf(AvgSNetSize(1), 1) {
		t.Fatal("ps=1 should be infinite")
	}
}

func TestPLocalBounds(t *testing.T) {
	f := func(psRaw uint8, nRaw uint16) bool {
		ps := float64(psRaw%100) / 100
		n := float64(nRaw%5000 + 2)
		p := PLocal(Params{N: n, Ps: ps})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureRatioBoundsAndShape(t *testing.T) {
	f := func(psRaw, ttlRaw uint8) bool {
		ps := float64(psRaw%95) / 100
		ttl := float64(ttlRaw%6 + 1)
		r := FailureRatio(Params{N: 1000, Ps: ps, Delta: 3, TTL: ttl})
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
	// "The lookup failure ratio increases if ps increases while it
	// decreases when ttl increases."
	lo := FailureRatio(Params{N: 1000, Ps: 0.3, Delta: 3, TTL: 1})
	hi := FailureRatio(Params{N: 1000, Ps: 0.95, Delta: 3, TTL: 1})
	if hi < lo {
		t.Fatalf("failure ratio not increasing in ps: %v -> %v", lo, hi)
	}
	t1 := FailureRatio(Params{N: 1000, Ps: 0.95, Delta: 3, TTL: 1})
	t4 := FailureRatio(Params{N: 1000, Ps: 0.95, Delta: 3, TTL: 4})
	if t4 > t1 {
		t.Fatalf("failure ratio not decreasing in ttl: ttl1=%v ttl4=%v", t1, t4)
	}
}

func TestOutOfRangeNonNegative(t *testing.T) {
	for ps := 0.0; ps < 1; ps += 0.05 {
		for ttl := 1.0; ttl <= 6; ttl++ {
			if v := OutOfRange(Params{Ps: ps, Delta: 3, TTL: ttl}); v < 0 {
				t.Fatalf("negative out-of-range at ps=%v ttl=%v", ps, ttl)
			}
		}
	}
}

func TestLookupLatencyShape(t *testing.T) {
	// Latency roughly flat for small ps, strictly lower at large ps.
	p03 := LookupLatency(Params{N: 1000, Ps: 0.3, Delta: 3, TTL: 4})
	p01 := LookupLatency(Params{N: 1000, Ps: 0.1, Delta: 3, TTL: 4})
	p09 := LookupLatency(Params{N: 1000, Ps: 0.9, Delta: 3, TTL: 4})
	if math.Abs(p03-p01) > 2 {
		t.Fatalf("low-ps region not flat: %v vs %v", p01, p03)
	}
	if p09 >= p03 {
		t.Fatalf("latency did not fall at high ps: %v vs %v", p09, p03)
	}
	// Larger delta => shorter lookup latency at high ps.
	d2 := LookupLatency(Params{N: 1000, Ps: 0.85, Delta: 2, TTL: 4})
	d4 := LookupLatency(Params{N: 1000, Ps: 0.85, Delta: 4, TTL: 4})
	if d4 > d2 {
		t.Fatalf("delta=4 latency %v > delta=2 %v", d4, d2)
	}
}

func TestLookupLatencyStar(t *testing.T) {
	// Star s-networks: two-hop local lookups; remote adds ring routing.
	v := LookupLatencyStar(Params{N: 1000, Ps: 0.5})
	if v < 2 || v > 2+math.Log2(500)+1 {
		t.Fatalf("star latency %v outside sane bounds", v)
	}
}

func TestSweep(t *testing.T) {
	xs, ys := Sweep(0, 0.9, 0.1, func(ps float64) float64 { return ps * 2 })
	if len(xs) != 10 || len(ys) != 10 {
		t.Fatalf("sweep lengths %d/%d", len(xs), len(ys))
	}
	if math.Abs(ys[9]-1.8) > 1e-9 {
		t.Fatalf("sweep value %v", ys[9])
	}
}

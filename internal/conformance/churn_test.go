package conformance

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime/live"
)

// TestLiveChurn runs sustained churn against the live runtime: peers crash
// while replacements join and clients keep issuing operations from separate
// goroutines. Under -race this is the main concurrency exercise for the
// executor-lock model — mailbox goroutines, wall-clock timer firings, and
// external Do/Await callers all contend for the same protocol state.
func TestLiveChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("needs wall-clock seconds")
	}
	cfg := liveConfig()
	rt := live.New(live.Config{Seed: 11, Delay: 200 * time.Microsecond, AwaitTimeout: 60 * time.Second})
	t.Cleanup(rt.Close)
	sys, err := core.NewSystem(rt, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(5 * cfg.HelloEvery)

	// Seed some data so the churn has something to disturb.
	keys := make([]string, 60)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%03d", i)
		if _, err := sys.StoreSync(peers[i%len(peers)], keys[i], "v"); err != nil {
			t.Fatal(err)
		}
	}

	// A client goroutine issues lookups concurrently with the churn script
	// below. Its failures are expected (items die with their holders); what
	// must not happen is a wedge (Await timeout) or a race report.
	stop := make(chan struct{})
	clientDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				clientDone <- nil
				return
			default:
			}
			var origin *core.Peer
			rt.Do(func() {
				if livePeers := sys.Peers(); len(livePeers) > 0 {
					origin = livePeers[i%len(livePeers)]
				}
			})
			if origin == nil {
				continue
			}
			if _, err := sys.LookupSync(origin, keys[i%len(keys)]); err != nil {
				clientDone <- err
				return
			}
		}
	}()

	// Churn script: 10 rounds of crash-one, join-one.
	for round := 0; round < 10; round++ {
		rt.Do(func() {
			livePeers := sys.Peers()
			if len(livePeers) > 1 {
				livePeers[rt.Rand().Intn(len(livePeers))].Crash()
			}
		})
		if _, _, err := sys.JoinSync(core.JoinOpts{Capacity: 1}); err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		sys.Settle(cfg.HelloTimeout)
	}
	close(stop)
	if err := <-clientDone; err != nil {
		t.Fatalf("concurrent client: %v", err)
	}

	// Let the failure detectors finish and require full consistency.
	sys.Settle(3 * cfg.HelloTimeout)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var err error
		rt.Do(func() { err = sys.CheckInvariants() })
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("invariants after churn: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var n int
	rt.Do(func() { n = sys.NumPeers() })
	if n != 64 {
		t.Fatalf("peer count after balanced churn: %d, want 64", n)
	}

	// The cluster must still serve operations end to end.
	var p *core.Peer
	rt.Do(func() { p = sys.Peers()[0] })
	r, err := sys.StoreSync(p, "post-churn", "v")
	if err != nil || !r.OK {
		t.Fatalf("post-churn store: ok=%v err=%v", r.OK, err)
	}
	r, err = sys.LookupSync(p, "post-churn")
	if err != nil || !r.OK {
		t.Fatalf("post-churn lookup: ok=%v err=%v", r.OK, err)
	}
}

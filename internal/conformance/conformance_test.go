// Package conformance runs the same protocol scenario on both runtime.Runtime
// implementations — the discrete-event simulation (internal/simnet) and the
// live goroutine/wall-clock runtime (internal/runtime/live) — and asserts the
// protocol-level outcomes agree: the cluster forms, every invariant holds at
// quiescence before and after a crash wave, and lookup success stays
// equivalent. The DES side is deterministic; the live side is genuinely
// concurrent, so the suite is also the -race exercise for the live runtime.
package conformance

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// scenario is the shared script: N peers join, store items, look them up,
// crash a fixed count, recover, look them up again.
const (
	scenarioN       = 48
	scenarioItems   = 80
	scenarioLookups = 120
	scenarioCrash   = 5
	scenarioSeed    = 7
)

// outcome is what a runtime must agree on.
type outcome struct {
	addrs     []runtime.Addr
	tPeers    int
	sPeers    int
	stored    int
	okBefore  int
	okAfter   int
	survivors int
}

// protocolConfig is the runtime-independent part of the configuration: the
// protocol shape (Ps, δ, TTL, placement) is identical across runtimes; only
// the timer scale differs (simulated seconds are free, wall-clock seconds are
// not).
func protocolConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ps = 0.6
	cfg.Delta = 3
	cfg.TTL = 4
	return cfg
}

func desConfig() core.Config {
	cfg := protocolConfig()
	cfg.LookupTimeout = 5 * runtime.Second
	return cfg
}

func liveConfig() core.Config {
	cfg := protocolConfig()
	cfg.HelloEvery = 100 * runtime.Millisecond
	cfg.HelloTimeout = 400 * runtime.Millisecond
	cfg.SuppressTimeout = 50 * runtime.Millisecond
	cfg.LookupTimeout = 1 * runtime.Second
	cfg.JoinTimeout = 3 * runtime.Second
	cfg.FingerRefreshEvery = 250 * runtime.Millisecond
	return cfg
}

// runScenario drives the shared script on any runtime. All protocol state is
// touched through Do/Await only, which is a no-op indirection under the DES
// and the executor lock under the live runtime.
func runScenario(t *testing.T, rt runtime.Runtime, cfg core.Config) outcome {
	t.Helper()
	sys, err := core.NewSystem(rt, cfg, serverHostFor(rt))
	if err != nil {
		t.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: scenarioN})
	if err != nil {
		t.Fatal(err)
	}
	var o outcome
	rt.Do(func() {
		for _, p := range peers {
			o.addrs = append(o.addrs, p.Addr)
		}
		o.tPeers, o.sPeers = len(sys.TPeers()), len(sys.SPeers())
	})

	sys.Settle(5 * cfg.HelloEvery)
	awaitInvariants(t, rt, sys, "after build")

	keys := make([]string, scenarioItems)
	for i := range keys {
		keys[i] = fmt.Sprintf("conf-%04d", i)
		r, err := sys.StoreSync(peers[(i*31)%len(peers)], keys[i], "v")
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			o.stored++
		}
	}

	o.okBefore = lookupPhase(t, sys, peers, keys)

	rt.Do(func() {
		livePeers := sys.Peers()
		for _, idx := range rt.Rand().Perm(len(livePeers))[:scenarioCrash] {
			livePeers[idx].Crash()
		}
	})
	sys.Settle(3 * cfg.HelloTimeout)
	awaitInvariants(t, rt, sys, "after crash")
	rt.Do(func() { o.survivors = sys.NumPeers() })

	o.okAfter = lookupPhase(t, sys, peers, keys)
	return o
}

// serverHostFor places the server on a stub host when the runtime has a
// physical model and on host 0 otherwise — the same fallback the protocol
// itself uses for peers.
func serverHostFor(rt runtime.Runtime) int {
	if pl := rt.Placement(); pl != nil {
		if stubs := pl.StubHosts(); len(stubs) > 0 {
			return stubs[0]
		}
	}
	return 0
}

func lookupPhase(t *testing.T, sys *core.System, peers []*core.Peer, keys []string) int {
	t.Helper()
	rt := sys.Runtime()
	ok := 0
	for i := 0; i < scenarioLookups; i++ {
		origin := peers[(i*53)%len(peers)]
		rt.Do(func() {
			if !origin.Alive() {
				if livePeers := sys.Peers(); len(livePeers) > 0 {
					origin = livePeers[i%len(livePeers)]
				}
			}
		})
		r, err := sys.LookupSync(origin, keys[(i*17)%len(keys)])
		if err != nil {
			t.Fatal(err)
		}
		if r.OK {
			ok++
		}
	}
	return ok
}

// awaitInvariants polls CheckInvariants until it passes or a wall-clock
// deadline expires. Under the DES the first poll already sees quiescence;
// under the live runtime a repair can be observed mid-flight.
func awaitInvariants(t *testing.T, rt runtime.Runtime, sys *core.System, phase string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		var err error
		rt.Do(func() { err = sys.CheckInvariants() })
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("invariants %s: %v", phase, err)
		}
		rt.Sleep(100 * runtime.Millisecond)
	}
}

func desOutcome(t *testing.T) outcome {
	t.Helper()
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), scenarioSeed)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(scenarioSeed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	return runScenario(t, simnet.NewRuntime(eng, net), desConfig())
}

func liveOutcome(t *testing.T) outcome {
	t.Helper()
	rt := live.New(live.Config{Seed: scenarioSeed, Delay: 200 * time.Microsecond, AwaitTimeout: 60 * time.Second})
	t.Cleanup(rt.Close)
	return runScenario(t, rt, liveConfig())
}

// TestConformanceDESvsLive runs the shared scenario on both runtimes and
// compares the protocol-level outcomes.
func TestConformanceDESvsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live half needs wall-clock seconds")
	}
	des := desOutcome(t)
	lv := liveOutcome(t)

	// Address allocation is part of the runtime contract: both implementations
	// hand out server=0, peers=1,2,… so traces and registries line up.
	if len(des.addrs) != len(lv.addrs) {
		t.Fatalf("peer counts differ: des=%d live=%d", len(des.addrs), len(lv.addrs))
	}
	for i := range des.addrs {
		if des.addrs[i] != lv.addrs[i] {
			t.Fatalf("addr sequence diverges at %d: des=%d live=%d", i, des.addrs[i], lv.addrs[i])
		}
	}

	for name, o := range map[string]outcome{"des": des, "live": lv} {
		if o.tPeers == 0 || o.sPeers == 0 {
			t.Errorf("%s: degenerate split: %d t-peers, %d s-peers", name, o.tPeers, o.sPeers)
		}
		if o.tPeers+o.sPeers != scenarioN {
			t.Errorf("%s: %d+%d peers, want %d", name, o.tPeers, o.sPeers, scenarioN)
		}
		if o.stored != scenarioItems {
			t.Errorf("%s: stored %d/%d items", name, o.stored, scenarioItems)
		}
		if o.okBefore < scenarioLookups*98/100 {
			t.Errorf("%s: pre-crash lookups %d/%d", name, o.okBefore, scenarioLookups)
		}
		if o.survivors != scenarioN-scenarioCrash {
			t.Errorf("%s: %d survivors, want %d", name, o.survivors, scenarioN-scenarioCrash)
		}
		// Crashing 5/48 peers loses at most the items they held; both
		// runtimes must keep the success rate in the same band.
		if o.okAfter < scenarioLookups*70/100 {
			t.Errorf("%s: post-crash lookups %d/%d below 70%%", name, o.okAfter, scenarioLookups)
		}
	}

	// Equivalent lookup success: the two runtimes may lose different items
	// (victim draws interleave differently), but the rates must be close.
	diff := des.okAfter - lv.okAfter
	if diff < 0 {
		diff = -diff
	}
	if diff > scenarioLookups*25/100 {
		t.Errorf("post-crash success diverges: des=%d live=%d (Δ%d of %d)",
			des.okAfter, lv.okAfter, diff, scenarioLookups)
	}
	t.Logf("des:  %+v", des)
	t.Logf("live: %+v", lv)
}

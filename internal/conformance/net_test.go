package conformance

import (
	"testing"
	"time"

	"repro/internal/core"
	rnet "repro/internal/runtime/net"
)

// netConfig mirrors liveConfig: the socket runtime is also wall-clock, so it
// shares the live timer scale.
func netConfig() core.Config {
	return liveConfig()
}

// netOutcome runs the shared scenario on the TCP socket runtime. A single
// bootstrap process hosts every peer, but delivery is not in-process: the
// socket runtime routes every Send through the codec, the wire envelope and
// a real loopback TCP connection (self-dial), so the whole scenario — joins,
// heartbeats, crash repair, lookups — exercises the serialization path.
// Multi-process operation is covered by scripts/net_smoke.sh.
func netOutcome(t *testing.T) outcome {
	t.Helper()
	rt, err := rnet.New(rnet.Config{
		Listen:       "127.0.0.1:0",
		Messages:     core.WireMessages(),
		Seed:         scenarioSeed,
		AwaitTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return runScenario(t, rt, netConfig())
}

// TestConformanceDESvsNet runs the shared scenario on the socket runtime and
// holds it to the same outcome bands as the DES reference: same address
// sequence, same membership split, full storage, equivalent lookup success
// before and after the crash wave.
func TestConformanceDESvsNet(t *testing.T) {
	if testing.Short() {
		t.Skip("socket half needs wall-clock seconds")
	}
	des := desOutcome(t)
	nt := netOutcome(t)

	if len(des.addrs) != len(nt.addrs) {
		t.Fatalf("peer counts differ: des=%d net=%d", len(des.addrs), len(nt.addrs))
	}
	for i := range des.addrs {
		if des.addrs[i] != nt.addrs[i] {
			t.Fatalf("addr sequence diverges at %d: des=%d net=%d", i, des.addrs[i], nt.addrs[i])
		}
	}

	for name, o := range map[string]outcome{"des": des, "net": nt} {
		if o.tPeers == 0 || o.sPeers == 0 {
			t.Errorf("%s: degenerate split: %d t-peers, %d s-peers", name, o.tPeers, o.sPeers)
		}
		if o.tPeers+o.sPeers != scenarioN {
			t.Errorf("%s: %d+%d peers, want %d", name, o.tPeers, o.sPeers, scenarioN)
		}
		if o.stored != scenarioItems {
			t.Errorf("%s: stored %d/%d items", name, o.stored, scenarioItems)
		}
		if o.okBefore < scenarioLookups*98/100 {
			t.Errorf("%s: pre-crash lookups %d/%d", name, o.okBefore, scenarioLookups)
		}
		if o.survivors != scenarioN-scenarioCrash {
			t.Errorf("%s: %d survivors, want %d", name, o.survivors, scenarioN-scenarioCrash)
		}
		if o.okAfter < scenarioLookups*70/100 {
			t.Errorf("%s: post-crash lookups %d/%d below 70%%", name, o.okAfter, scenarioLookups)
		}
	}

	diff := des.okAfter - nt.okAfter
	if diff < 0 {
		diff = -diff
	}
	if diff > scenarioLookups*25/100 {
		t.Errorf("post-crash success diverges: des=%d net=%d (Δ%d of %d)",
			des.okAfter, nt.okAfter, diff, scenarioLookups)
	}
	t.Logf("des: %+v", des)
	t.Logf("net: %+v", nt)
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := New(1)
	var got []int
	eng.At(30, func() { got = append(got, 3) })
	eng.At(10, func() { got = append(got, 1) })
	eng.At(20, func() { got = append(got, 2) })
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if eng.Now() != 30 {
		t.Fatalf("clock = %v, want 30", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		eng.At(5, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: position %d has %d", i, v)
		}
	}
}

func TestEngineSchedulingInsideEvents(t *testing.T) {
	eng := New(1)
	var order []string
	eng.At(10, func() {
		order = append(order, "a")
		eng.After(5, func() { order = append(order, "c") })
		eng.At(12, func() { order = append(order, "b") })
	})
	eng.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	eng := New(1)
	fired := false
	ev := eng.At(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("scheduled event not pending")
	}
	if !eng.Cancel(ev) {
		t.Fatal("cancel of a pending event reported false")
	}
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled handle still pending")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	if eng.Cancel(ev) {
		t.Fatal("double-cancel reported true")
	}
	if eng.Cancel(Handle{}) {
		t.Fatal("zero-handle cancel reported true")
	}
}

func TestEngineCancelOneOfMany(t *testing.T) {
	eng := New(1)
	var got []int
	var evs []Handle
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, eng.At(Time(i), func() { got = append(got, i) }))
	}
	eng.Cancel(evs[3])
	eng.Cancel(evs[7])
	eng.Run()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

// TestStaleHandleCancelIsHarmless pins the pooling contract: once an event
// fires, its struct may be reused by a later schedule, and cancelling the old
// handle must not touch the new event.
func TestStaleHandleCancelIsHarmless(t *testing.T) {
	eng := New(1)
	first := eng.At(1, func() {})
	eng.Run()
	if first.Pending() {
		t.Fatal("fired handle still pending")
	}
	fired := false
	second := eng.At(10, func() { fired = true })
	if eng.Cancel(first) {
		t.Fatal("stale cancel reported success")
	}
	eng.Run()
	if !fired {
		t.Fatal("stale cancel killed a recycled event")
	}
	if second.Pending() {
		t.Fatal("fired second handle still pending")
	}
}

// TestEventPoolReuse verifies fired events are recycled instead of
// reallocated.
func TestEventPoolReuse(t *testing.T) {
	eng := New(1)
	for i := 0; i < 100; i++ {
		eng.After(1, func() {})
		eng.Run()
	}
	if len(eng.free) == 0 {
		t.Fatal("free list empty after 100 fired events")
	}
	if got := len(eng.free); got > 2 {
		t.Fatalf("free list grew to %d; events are not being reused", got)
	}
}

// TestCancelMiddleOfHeap exercises heap removal from interior positions.
func TestCancelMiddleOfHeap(t *testing.T) {
	eng := New(1)
	var fired []int
	var hs []Handle
	for i := 0; i < 64; i++ {
		i := i
		hs = append(hs, eng.At(Time((i*37)%64), func() { fired = append(fired, i) }))
	}
	for i := 0; i < 64; i += 3 {
		eng.Cancel(hs[i])
	}
	eng.Run()
	want := 0
	for i := 0; i < 64; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEnginePastPanics(t *testing.T) {
	eng := New(1)
	eng.At(10, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.At(5, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	eng := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	eng.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	eng := New(1)
	fired := 0
	eng.At(10, func() { fired++ })
	eng.At(20, func() { fired++ })
	eng.At(30, func() { fired++ })
	eng.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if eng.Now() != 20 {
		t.Fatalf("clock = %v, want 20", eng.Now())
	}
	eng.RunUntil(100)
	if fired != 3 || eng.Now() != 100 {
		t.Fatalf("fired=%d now=%v after RunUntil(100)", fired, eng.Now())
	}
}

func TestRunSteps(t *testing.T) {
	eng := New(1)
	for i := 0; i < 10; i++ {
		eng.At(Time(i), func() {})
	}
	if got := eng.RunSteps(4); got != 4 {
		t.Fatalf("RunSteps = %d, want 4", got)
	}
	if got := eng.RunSteps(100); got != 6 {
		t.Fatalf("RunSteps = %d, want 6", got)
	}
	if eng.Dispatched() != 10 {
		t.Fatalf("Dispatched = %d", eng.Dispatched())
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []int64 {
		eng := New(99)
		rng := eng.Rand()
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, int64(eng.Now()))
			if depth >= 6 {
				return
			}
			kids := rng.Intn(3) + 1
			for i := 0; i < kids; i++ {
				eng.After(Time(rng.Intn(100)+1), func() { spawn(depth + 1) })
			}
		}
		eng.At(0, func() { spawn(0) })
		eng.Run()
		return trace
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestEventOrderProperty: for any set of scheduled times, dispatch order is
// the sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		eng := New(1)
		var fired []Time
		for _, ti := range times {
			at := Time(ti)
			eng.At(at, func() { fired = append(fired, at) })
		}
		eng.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetExtends(t *testing.T) {
	eng := New(1)
	fired := 0
	tm := NewTimer(eng, 100, func() { fired++ })
	tm.Start()
	eng.RunUntil(50)
	tm.Reset() // now expires at 150
	eng.RunUntil(120)
	if fired != 0 {
		t.Fatal("timer fired before the reset deadline")
	}
	eng.RunUntil(200)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Resets() != 1 || tm.Fires() != 1 {
		t.Fatalf("resets=%d fires=%d", tm.Resets(), tm.Fires())
	}
}

func TestTimerStop(t *testing.T) {
	eng := New(1)
	fired := 0
	tm := NewTimer(eng, 10, func() { fired++ })
	tm.Start()
	tm.Stop()
	eng.Run()
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer is active")
	}
}

func TestTimerStartAfterOverride(t *testing.T) {
	eng := New(1)
	var at Time
	tm := NewTimer(eng, 1000, func() { at = eng.Now() })
	tm.StartAfter(10)
	eng.Run()
	if at != 10 {
		t.Fatalf("fired at %v, want 10", at)
	}
}

func TestTimerRestart(t *testing.T) {
	eng := New(1)
	fired := 0
	tm := NewTimer(eng, 10, func() { fired++ })
	tm.Start()
	eng.Run()
	tm.Start()
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (timer is restartable)", fired)
	}
}

func TestTicker(t *testing.T) {
	eng := New(1)
	var times []Time
	tk := NewTicker(eng, 10, func() { times = append(times, eng.Now()) })
	tk.Start()
	eng.RunUntil(55)
	tk.Stop()
	eng.RunUntil(200)
	if len(times) != 5 {
		t.Fatalf("ticks = %d, want 5: %v", len(times), times)
	}
	for i, ti := range times {
		if ti != Time(10*(i+1)) {
			t.Fatalf("tick %d at %v", i, ti)
		}
	}
	if tk.Ticks() != 5 {
		t.Fatalf("Ticks() = %d", tk.Ticks())
	}
}

func TestTickerRestartResets(t *testing.T) {
	eng := New(1)
	ticks := 0
	tk := NewTicker(eng, 10, func() { ticks++ })
	tk.Start()
	eng.RunUntil(25)
	tk.Start() // restart re-phases the ticker
	eng.RunUntil(30)
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2 (restart at 25 pushes next tick to 35)", ticks)
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("String = %q", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v", got)
	}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every overlay in this repository runs on: it
// replaces the NS2 simulator used in the paper. Events are ordered by
// (time, sequence-number) so two runs with the same seed and the same
// schedule of calls produce byte-identical traces. There is no wall clock
// anywhere: simulated time only advances when the engine dispatches the next
// event.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated timestamp in microseconds since the start of the run.
type Time int64

// Common durations, expressed in simulated microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", t/Second, t%Second)
}

// Seconds converts the timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a single-threaded discrete-event scheduler.
//
// An Engine is not safe for concurrent use; all protocol code in this
// repository runs inside event callbacks, which the engine dispatches one at
// a time. This mirrors the run-to-completion semantics of NS2 and keeps the
// simulations deterministic without any locking.
type Engine struct {
	now        Time
	seq        uint64
	queue      eventHeap
	rng        *rand.Rand
	dispatched uint64
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a protocol bug, never a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Step dispatches the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunSteps dispatches at most n events and returns the number dispatched.
func (e *Engine) RunSteps(n int) int {
	ran := 0
	for ran < n && e.Step() {
		ran++
	}
	return ran
}

// eventHeap orders events by (time, seq) for deterministic dispatch.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every overlay in this repository runs on: it
// replaces the NS2 simulator used in the paper. Events are ordered by
// (time, sequence-number) so two runs with the same seed and the same
// schedule of calls produce byte-identical traces. There is no wall clock
// anywhere: simulated time only advances when the engine dispatches the next
// event.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/runtime"
)

// Time is a simulated timestamp in microseconds since the start of the run.
// It is an alias for runtime.Time: the engine is one implementation of the
// runtime.Clock the protocol is written against, and sharing the type means
// no conversions anywhere on the boundary.
type Time = runtime.Time

// Common durations, expressed in simulated microseconds.
const (
	Microsecond = runtime.Microsecond
	Millisecond = runtime.Millisecond
	Second      = runtime.Second
)

// Event is a scheduled callback slot. Event structs are pooled: once an
// event fires or is cancelled, its struct is recycled for a later schedule.
// Protocol code therefore never holds a *Event directly; it holds a Handle,
// whose epoch check makes operations on an already-recycled event no-ops.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 once removed
	epoch uint32
	fn    func()
}

// Handle refers to one scheduled firing of an event. The zero Handle is
// valid and refers to nothing: Cancel, Pending and At on it are no-ops.
// Handles are cheap values; store them instead of pointers.
type Handle struct {
	ev    *Event
	epoch uint32
}

// Pending reports whether the firing this handle refers to is still
// scheduled (not yet dispatched or cancelled).
func (h Handle) Pending() bool { return h.ev != nil && h.ev.epoch == h.epoch }

// At reports the time the firing is scheduled for, or 0 if the handle is
// stale or zero.
func (h Handle) At() Time {
	if h.Pending() {
		return h.ev.at
	}
	return 0
}

// Engine is a single-threaded discrete-event scheduler.
//
// An Engine is not safe for concurrent use; all protocol code in this
// repository runs inside event callbacks, which the engine dispatches one at
// a time. This mirrors the run-to-completion semantics of NS2 and keeps the
// simulations deterministic without any locking. Parallel experiment sweeps
// run one Engine per sweep point, never sharing an Engine across goroutines.
type Engine struct {
	now        Time
	seq        uint64
	queue      eventQueue
	free       []*Event // recycled Event structs
	rng        *rand.Rand
	dispatched uint64
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue.items) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a protocol bug, never a recoverable condition.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.queue.push(ev)
	return Handle{ev: ev, epoch: ev.epoch}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled firing. Cancelling a zero handle, or one whose
// event already fired or was already cancelled, is a no-op; it reports
// whether this call actually removed a pending event.
func (e *Engine) Cancel(h Handle) bool {
	if !h.Pending() {
		return false
	}
	ev := h.ev
	e.queue.remove(ev.index)
	e.recycle(ev)
	return true
}

// recycle retires an event struct: the epoch bump invalidates every
// outstanding handle to it, and the callback reference is dropped so the
// closure can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.epoch++
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// Step dispatches the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue.items) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.dispatched++
	fn := ev.fn
	// Recycle before running: fn may schedule new events and reuse the
	// struct immediately; stale handles are fenced off by the epoch bump.
	e.recycle(ev)
	fn()
	return true
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue.items) > 0 && e.queue.items[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Schedule implements runtime.Clock in terms of After. The returned
// runtime.Handle boxes the pooled *Event plus its epoch, so scheduling
// through the interface stays allocation-free.
func (e *Engine) Schedule(d Time, fn func()) runtime.Handle {
	h := e.After(d, fn)
	return runtime.MakeHandle(h.ev, h.epoch)
}

// Unschedule implements runtime.Clock; it is Cancel for handles issued by
// Schedule. Handles from other clocks (or the zero Handle) are no-ops.
func (e *Engine) Unschedule(h runtime.Handle) bool {
	ev, ok := h.Impl().(*Event)
	if !ok {
		return false
	}
	return e.Cancel(Handle{ev: ev, epoch: h.Epoch()})
}

// Scheduled implements runtime.Clock; it reports whether the firing h refers
// to is still pending on this engine.
func (e *Engine) Scheduled(h runtime.Handle) bool {
	ev, ok := h.Impl().(*Event)
	if !ok {
		return false
	}
	return (Handle{ev: ev, epoch: h.Epoch()}).Pending()
}

// RunSteps dispatches at most n events and returns the number dispatched.
func (e *Engine) RunSteps(n int) int {
	ran := 0
	for ran < n && e.Step() {
		ran++
	}
	return ran
}

// eventQueue is a binary min-heap over (time, seq), implemented inline
// (mirroring topology's distHeap) so scheduling involves no interface
// boxing or indirect Less/Swap calls.
type eventQueue struct {
	items []*Event
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) push(ev *Event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.up(ev.index)
}

func (q *eventQueue) pop() *Event {
	top := q.items[0]
	last := len(q.items) - 1
	q.swap(0, last)
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// remove deletes the item at heap index i.
func (q *eventQueue) remove(i int) {
	last := len(q.items) - 1
	if i != last {
		q.swap(i, last)
	}
	q.items[last].index = -1
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		if !q.up(i) {
			q.down(i)
		}
	}
}

// up sifts the item at i toward the root; reports whether it moved.
func (q *eventQueue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts the item at i toward the leaves.
func (q *eventQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.items) && q.less(l, small) {
			small = l
		}
		if r < len(q.items) && q.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		q.swap(i, small)
		i = small
	}
}

// Package idspace implements the circular 64-bit identifier space shared by
// every overlay in this repository.
//
// Peers (p_id) and data items (d_id) are hashed into the same space, exactly
// as in the paper: "a peer hashes the data key to an integer d_id which is in
// the same range as p_id". The space wraps around, so interval membership and
// distances are defined clockwise on the ring.
package idspace

import (
	"fmt"
	"hash/fnv"
)

// ID is a point on the identifier ring.
type ID uint64

// String renders the ID in fixed-width hexadecimal.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// HashKey maps an arbitrary data key to its d_id: FNV-1a followed by a
// 64-bit avalanche finalizer. Plain FNV-1a clusters near-identical keys
// ("item-000001", "item-000002", ...) in the high bits — whole workload
// blocks would land in one ring segment — so the finalizer mixes every
// input bit into every output bit. Deterministic across runs and platforms,
// which the experiment harness relies on.
func HashKey(key string) ID {
	h := fnv.New64a()
	h.Write([]byte(key))
	return ID(mix64(h.Sum64()))
}

// HashBytes maps raw bytes (e.g. a serialized network address) to an ID.
// The bootstrap server uses this for hash-of-address p_id generation.
func HashBytes(b []byte) ID {
	h := fnv.New64a()
	h.Write(b)
	return ID(mix64(h.Sum64()))
}

// mix64 is the MurmurHash3/SplitMix64 avalanche finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Distance returns the clockwise distance from a to b on the ring.
func Distance(a, b ID) uint64 { return uint64(b - a) }

// Between reports whether x lies in the half-open clockwise interval (a, b].
// This is the ownership test used throughout Chord-style protocols: peer b
// with predecessor a owns exactly the ids x with Between(a, x, b).
func Between(a, x, b ID) bool {
	if a == b {
		// Degenerate interval: a single peer owns the entire ring.
		return true
	}
	if a < b {
		return a < x && x <= b
	}
	return x > a || x <= b
}

// StrictBetween reports whether x lies in the open clockwise interval (a, b).
// Finger-table routing uses the open form.
func StrictBetween(a, x, b ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// Midpoint returns the id halfway along the clockwise arc from a to b. The
// paper uses the midpoint to resolve p_id conflicts: "the new p_id can be
// random or simply the midpoint for load balancing purpose".
func Midpoint(a, b ID) ID {
	return a + ID(Distance(a, b)/2)
}

// Add offsets an id clockwise, wrapping around the ring.
func Add(a ID, off uint64) ID { return a + ID(off) }

// FingerStart returns the start of the i-th finger interval for a peer with
// the given id: id + 2^i (mod 2^64), for i in [0, 64).
func FingerStart(id ID, i int) ID {
	if i < 0 || i >= 64 {
		panic(fmt.Sprintf("idspace: finger index %d out of range", i))
	}
	return id + ID(uint64(1)<<uint(i))
}

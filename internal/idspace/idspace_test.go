package idspace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministic(t *testing.T) {
	a := HashKey("item-000001")
	b := HashKey("item-000001")
	if a != b {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("item-000001") == HashKey("item-000002") {
		t.Fatal("distinct keys collide (astronomically unlikely)")
	}
}

func TestHashBytesMatchesKnownDistinction(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Fatal("HashBytes collision on trivial inputs")
	}
}

func TestBetweenBasics(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false}, // open at a
		{10, 20, 20, true},  // closed at b
		{10, 25, 20, false},
		{10, 5, 20, false},
		// Wrapped interval (20, 10]:
		{20, 25, 10, true},
		{20, 5, 10, true},
		{20, 10, 10, true},
		{20, 15, 10, false},
		{20, 20, 10, false},
		// Degenerate (a == b): whole ring.
		{7, 123, 7, true},
		{7, 7, 7, true},
	}
	for _, c := range cases {
		if got := Between(c.a, c.x, c.b); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestStrictBetweenBasics(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false},
		{10, 20, 20, false}, // open at b
		{20, 5, 10, true},
		{20, 10, 10, false},
		{7, 123, 7, true}, // degenerate: everything except a
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := StrictBetween(c.a, c.x, c.b); got != c.want {
			t.Errorf("StrictBetween(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

// Property: for distinct a, b, every x other than a and b lies in exactly
// one of (a, b] and (b, a].
func TestBetweenPartitionProperty(t *testing.T) {
	f := func(a, x, b uint64) bool {
		A, X, B := ID(a), ID(x), ID(b)
		if A == B {
			return true
		}
		in1 := Between(A, X, B)
		in2 := Between(B, X, A)
		if X == A {
			return !in1 && in2
		}
		if X == B {
			return in1 && !in2
		}
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Between(a, x, b) == StrictBetween(a, x, b) || x == b (for a != b).
func TestBetweenVsStrictProperty(t *testing.T) {
	f := func(a, x, b uint64) bool {
		A, X, B := ID(a), ID(x), ID(b)
		if A == B {
			return true
		}
		return Between(A, X, B) == (StrictBetween(A, X, B) || X == B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the midpoint of (a, b) lies in (a, b] and halves the distance.
func TestMidpointProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		A, B := ID(a), ID(b)
		if A == B {
			return Midpoint(A, B) == A
		}
		m := Midpoint(A, B)
		if Distance(A, B) >= 2 && !Between(A, m, B) {
			return false
		}
		return Distance(A, m) == Distance(A, B)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is additive around the ring.
func TestDistanceProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		A, B := ID(a), ID(b)
		if A == B {
			return Distance(A, B) == 0
		}
		return Distance(A, B)+Distance(B, A) == 0 // wraps to 2^64 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestAdd(t *testing.T) {
	if Add(10, 5) != 15 {
		t.Fatal("Add broken")
	}
	if Add(^ID(0), 1) != 0 {
		t.Fatal("Add does not wrap")
	}
}

func TestFingerStart(t *testing.T) {
	if FingerStart(0, 0) != 1 {
		t.Fatal("finger 0 of id 0 should be 1")
	}
	if FingerStart(0, 63) != 1<<63 {
		t.Fatal("finger 63 of id 0 should be 2^63")
	}
	if FingerStart(^ID(0), 0) != 0 {
		t.Fatal("finger wraps")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FingerStart(_, 64) should panic")
		}
	}()
	FingerStart(0, 64)
}

func TestIDString(t *testing.T) {
	if got := ID(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Fatalf("String = %q", got)
	}
}

// TestHashKeyDispersion guards against the FNV clustering regression: the
// hashes of sequential keys must spread across the whole ring, not share
// their high bits (which would put entire workloads into one segment).
func TestHashKeyDispersion(t *testing.T) {
	buckets := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		h := HashKey(fmt.Sprintf("item-%06d", i))
		buckets[uint64(h)>>56]++
	}
	// 1000 keys over 256 top-byte buckets: expect ~3.9 per bucket; any
	// bucket above 20 means the high bits are not avalanching.
	for b, n := range buckets {
		if n > 20 {
			t.Fatalf("top byte %02x holds %d of 1000 sequential keys", b, n)
		}
	}
	if len(buckets) < 200 {
		t.Fatalf("sequential keys cover only %d/256 top-byte buckets", len(buckets))
	}
}

package chord

import (
	"fmt"
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// ring builds a stabilized Chord ring of n nodes and returns its pieces.
func ring(t *testing.T, n int, seed int64) (*sim.Engine, *Network, []*Node) {
	t.Helper()
	tc := topology.Config{
		TransitDomains: 2, TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2, StubNodesPerDomain: 12,
		ExtraTransitEdges: 2, ExtraStubEdges: 2,
		TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
	}
	topo, err := topology.GenerateTransitStub(tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cfg := DefaultConfig()
	cfg.LookupTimeout = 10 * sim.Second
	cnet := NewNetwork(simnet.NewRuntime(eng, net), cfg)
	stubs := topo.StubNodes()
	var nodes []*Node
	boot := simnet.None
	for i := 0; i < n; i++ {
		nd := cnet.CreateNode(idspace.ID(eng.Rand().Uint64()), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
		if boot == simnet.None {
			boot = nd.Addr
		}
		eng.RunUntil(eng.Now() + 600*sim.Millisecond)
		nodes = append(nodes, nd)
	}
	eng.RunUntil(eng.Now() + 30*sim.Second)
	return eng, cnet, nodes
}

// checkRing verifies the successor cycle covers all live nodes with agreeing
// predecessor pointers.
func checkRing(t *testing.T, cnet *Network) {
	t.Helper()
	nodes := cnet.Nodes()
	if len(nodes) == 0 {
		return
	}
	visited := map[simnet.Addr]bool{}
	cur := nodes[0]
	for !visited[cur.Addr] {
		visited[cur.Addr] = true
		next := cnet.Node(cur.Successor())
		if next == nil {
			t.Fatalf("node %d has dead successor %d", cur.Addr, cur.Successor())
		}
		if next.Predecessor() != cur.Addr {
			t.Fatalf("pred mismatch: %d.succ=%d but %d.pred=%d", cur.Addr, next.Addr, next.Addr, next.Predecessor())
		}
		cur = next
	}
	if len(visited) != len(nodes) {
		t.Fatalf("ring cycle covers %d of %d nodes", len(visited), len(nodes))
	}
}

func drive(t *testing.T, eng *sim.Engine, done *bool) {
	t.Helper()
	for steps := 0; !*done; steps++ {
		if steps > 20_000_000 {
			t.Fatal("operation did not complete")
		}
		if !eng.Step() {
			t.Fatal("engine dry")
		}
	}
}

func TestRingFormsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, cnet, nodes := ring(t, 60, seed)
		if len(cnet.Nodes()) != 60 || len(nodes) != 60 {
			t.Fatalf("seed %d: node count wrong", seed)
		}
		checkRing(t, cnet)
	}
}

func TestStoreAndLookup(t *testing.T) {
	eng, _, nodes := ring(t, 50, 7)
	for i := 0; i < 150; i++ {
		key := fmt.Sprintf("k-%04d", i)
		done := false
		var r Result
		nodes[i%50].Store(key, "v-"+key, func(res Result) { done = true; r = res })
		drive(t, eng, &done)
		if !r.OK {
			t.Fatalf("store %s failed", key)
		}
	}
	for i := 0; i < 150; i++ {
		key := fmt.Sprintf("k-%04d", i)
		done := false
		var r Result
		nodes[(i*7+3)%50].Lookup(key, func(res Result) { done = true; r = res })
		drive(t, eng, &done)
		if !r.OK || r.Value != "v-"+key {
			t.Fatalf("lookup %s: ok=%v value=%q", key, r.OK, r.Value)
		}
		if r.Hops > 20 {
			t.Fatalf("lookup %s took %d hops in a 50-node ring", key, r.Hops)
		}
		if r.Latency <= 0 {
			t.Fatalf("lookup %s has non-positive latency", key)
		}
	}
}

func TestDataAtResponsibleNode(t *testing.T) {
	eng, cnet, nodes := ring(t, 40, 9)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("own-%03d", i)
		done := false
		nodes[i%40].Store(key, "v", func(Result) { done = true })
		drive(t, eng, &done)
	}
	eng.RunUntil(eng.Now() + 10*sim.Second)
	// Every item must sit at the node owning its id: the first node
	// clockwise from the item's hash.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("own-%03d", i)
		did := idspace.HashKey(key)
		var owner *Node
		for _, n := range cnet.Nodes() {
			pred := cnet.Node(n.Predecessor())
			if pred == nil {
				continue
			}
			if idspace.Between(pred.ID, did, n.ID) {
				owner = n
				break
			}
		}
		if owner == nil {
			t.Fatalf("no owner for %s", key)
		}
		if _, ok := owner.data[did]; !ok {
			t.Errorf("item %s not at owner %d", key, owner.Addr)
		}
	}
}

func TestLookupMissingKeyFails(t *testing.T) {
	eng, _, nodes := ring(t, 30, 11)
	done := false
	var r Result
	nodes[0].Lookup("never-stored", func(res Result) { done = true; r = res })
	drive(t, eng, &done)
	if r.OK {
		t.Fatal("lookup of missing key succeeded")
	}
}

func TestGracefulLeave(t *testing.T) {
	eng, cnet, nodes := ring(t, 40, 13)
	// Store some data so leave transfers it.
	for i := 0; i < 80; i++ {
		done := false
		nodes[i%40].Store(fmt.Sprintf("l-%03d", i), "v", func(Result) { done = true })
		drive(t, eng, &done)
	}
	before := 0
	for _, n := range cnet.Nodes() {
		before += n.NumItems()
	}
	// A third of the nodes leave gracefully.
	for i := 0; i < 13; i++ {
		nodes[i*3].Leave()
		eng.RunUntil(eng.Now() + 2*sim.Second)
	}
	eng.RunUntil(eng.Now() + 30*sim.Second)
	checkRing(t, cnet)
	after := 0
	for _, n := range cnet.Nodes() {
		after += n.NumItems()
	}
	if after != before {
		t.Fatalf("items lost on graceful leave: %d -> %d", before, after)
	}
	// Lookups still work.
	ok := 0
	for i := 0; i < 80; i++ {
		done := false
		var r Result
		live := cnet.Nodes()
		live[i%len(live)].Lookup(fmt.Sprintf("l-%03d", i), func(res Result) { done = true; r = res })
		drive(t, eng, &done)
		if r.OK {
			ok++
		}
	}
	if ok < 78 {
		t.Fatalf("only %d/80 lookups after graceful leaves", ok)
	}
}

func TestCrashRecovery(t *testing.T) {
	eng, cnet, nodes := ring(t, 50, 17)
	// Crash 10 random-ish nodes abruptly.
	for i := 0; i < 10; i++ {
		nodes[i*5+1].Crash()
	}
	// Successor lists plus stabilization must re-close the ring.
	eng.RunUntil(eng.Now() + 60*sim.Second)
	checkRing(t, cnet)
	if len(cnet.Nodes()) != 40 {
		t.Fatalf("live nodes = %d, want 40", len(cnet.Nodes()))
	}
}

func TestJoinAfterChurn(t *testing.T) {
	eng, cnet, nodes := ring(t, 30, 19)
	for i := 0; i < 5; i++ {
		nodes[i*2].Crash()
	}
	eng.RunUntil(eng.Now() + 60*sim.Second)
	// New nodes can still join through survivors.
	var live *Node
	for _, n := range cnet.Nodes() {
		live = n
		break
	}
	for i := 0; i < 10; i++ {
		cnet.CreateNode(idspace.ID(eng.Rand().Uint64()), cnet.Runtime().(*simnet.Runtime).Net.Host(live.Addr), 1, live.Addr)
		eng.RunUntil(eng.Now() + 2*sim.Second)
	}
	eng.RunUntil(eng.Now() + 60*sim.Second)
	checkRing(t, cnet)
	if len(cnet.Nodes()) != 35 {
		t.Fatalf("live nodes = %d, want 35", len(cnet.Nodes()))
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	eng, _, nodes := ring(t, 120, 23)
	for i := 0; i < 100; i++ {
		done := false
		nodes[i%120].Store(fmt.Sprintf("h-%03d", i), "v", func(Result) { done = true })
		drive(t, eng, &done)
	}
	totalHops, count := 0, 0
	for i := 0; i < 100; i++ {
		done := false
		var r Result
		nodes[(i*31)%120].Lookup(fmt.Sprintf("h-%03d", i), func(res Result) { done = true; r = res })
		drive(t, eng, &done)
		if r.OK {
			totalHops += r.Hops
			count++
		}
	}
	if count < 95 {
		t.Fatalf("only %d lookups succeeded", count)
	}
	mean := float64(totalHops) / float64(count)
	// log2(120) ~= 6.9; allow a loose band around O(log N).
	if mean > 14 {
		t.Fatalf("mean hops %.1f too high for finger routing in a 120-node ring", mean)
	}
}

// Package chord implements the Chord distributed hash table as a
// message-passing protocol over simnet.
//
// It serves two roles in this repository: it is the structured baseline the
// paper compares against (the hybrid system with p_s = 0 degenerates to a
// ring-based structured network), and it documents the machinery — ring
// pointers, finger tables, stabilization — that the hybrid t-network inherits
// and then simplifies via substitution-on-leave.
package chord

import (
	"fmt"

	"repro/internal/idspace"
	"repro/internal/runtime"
)

// FingerBits is the identifier size in bits; fingers cover 2^0 .. 2^63.
const FingerBits = 64

// Config tunes a Chord deployment.
type Config struct {
	// SuccessorListLen is r, the length of each node's successor list.
	SuccessorListLen int
	// StabilizeEvery is the period of the stabilization protocol.
	StabilizeEvery runtime.Time
	// FixFingersPerRound is how many finger entries each stabilization
	// round refreshes.
	FixFingersPerRound int
	// MessageBytes is the nominal size of a control message.
	MessageBytes int
	// LookupTimeout bounds a lookup before it is declared failed.
	LookupTimeout runtime.Time
}

// DefaultConfig returns the settings used in the experiments.
func DefaultConfig() Config {
	return Config{
		SuccessorListLen:   8,
		StabilizeEvery:     500 * runtime.Millisecond,
		FixFingersPerRound: 8,
		MessageBytes:       128,
		LookupTimeout:      60 * runtime.Second,
	}
}

// ref is a (id, address) pair naming a remote node.
type ref struct {
	ID   idspace.ID
	Addr runtime.Addr
}

var nilRef = ref{Addr: runtime.None}

func (r ref) valid() bool { return r.Addr != runtime.None }

// Network owns a set of Chord nodes running over one simnet.
type Network struct {
	rt  runtime.Runtime
	Cfg Config

	nodes map[runtime.Addr]*Node
	next  runtime.Addr
}

// NewNetwork creates an empty Chord deployment.
func NewNetwork(rt runtime.Runtime, cfg Config) *Network {
	if cfg.SuccessorListLen <= 0 {
		cfg.SuccessorListLen = DefaultConfig().SuccessorListLen
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = DefaultConfig().StabilizeEvery
	}
	if cfg.FixFingersPerRound <= 0 {
		cfg.FixFingersPerRound = DefaultConfig().FixFingersPerRound
	}
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = DefaultConfig().MessageBytes
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = DefaultConfig().LookupTimeout
	}
	return &Network{rt: rt, Cfg: cfg, nodes: make(map[runtime.Addr]*Node)}
}

// Node is one Chord participant.
type Node struct {
	ID   idspace.ID
	Addr runtime.Addr

	net *Network

	predecessor ref
	successors  []ref // successors[0] is the immediate successor
	finger      [FingerBits]ref
	nextFinger  int

	data map[idspace.ID]Item

	stabilizer *runtime.Ticker
	alive      bool

	// pending tracks outstanding lookup/store operations by request id.
	pending map[uint64]*op
	nextOp  uint64
}

// Item is a stored (key, value) pair along with its hashed id.
type Item struct {
	Key   string
	Value string
	DID   idspace.ID
}

// op is an outstanding client operation.
type op struct {
	kind    string
	start   runtime.Time
	fidx    int // finger index, for fixfinger ops
	done    func(Result)
	timeout runtime.Handle
}

// Result reports the outcome of a lookup or store.
type Result struct {
	OK      bool
	Key     string
	Value   string
	Hops    int
	Latency runtime.Time
	Owner   runtime.Addr
}

// CreateNode provisions a node hosted on the given physical topology node
// and, if bootstrap is invalid, makes it the first node of a fresh ring.
// Otherwise it joins via the bootstrap node.
func (nw *Network) CreateNode(id idspace.ID, host int, capacity float64, bootstrap runtime.Addr) *Node {
	addr := nw.next
	nw.next++
	n := &Node{
		ID:      id,
		Addr:    addr,
		net:     nw,
		data:    make(map[idspace.ID]Item),
		pending: make(map[uint64]*op),
		alive:   true,
	}
	n.predecessor = nilRef
	// The zero Ref would point at address 0 (a real node), so every
	// finger slot must start out explicitly nil.
	for i := range n.finger {
		n.finger[i] = nilRef
	}
	nw.nodes[addr] = n
	nw.rt.Attach(addr, runtime.Endpoint{Host: host, Capacity: capacity}, runtime.HandlerFunc(n.recv))

	n.stabilizer = runtime.NewTicker(nw.rt, nw.Cfg.StabilizeEvery, n.stabilize)
	n.stabilizer.Start()

	if bootstrap == runtime.None {
		// First node: closes the ring on itself.
		self := ref{ID: id, Addr: addr}
		n.successors = []ref{self}
		for i := range n.finger {
			n.finger[i] = self
		}
		return n
	}
	n.successors = []ref{{ID: id, Addr: addr}}
	n.join(bootstrap)
	return n
}

// Runtime returns the runtime the network executes on.
func (nw *Network) Runtime() runtime.Runtime { return nw.rt }

// Node returns the node at the given address, or nil.
func (nw *Network) Node(a runtime.Addr) *Node {
	return nw.nodes[a]
}

// Nodes returns all live nodes (order unspecified).
func (nw *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		if n.alive {
			out = append(out, n)
		}
	}
	return out
}

// Alive reports whether the node is still participating.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the immediate successor's address.
func (n *Node) Successor() runtime.Addr {
	if len(n.successors) == 0 {
		return runtime.None
	}
	return n.successors[0].Addr
}

// Predecessor returns the predecessor's address (None if unknown).
func (n *Node) Predecessor() runtime.Addr { return n.predecessor.Addr }

// NumItems returns the number of data items the node stores.
func (n *Node) NumItems() int { return len(n.data) }

// send transmits a control message of the configured nominal size.
func (n *Node) send(to runtime.Addr, msg any) {
	n.net.rt.Send(n.Addr, to, n.net.Cfg.MessageBytes, msg)
}

func (n *Node) self() ref { return ref{ID: n.ID, Addr: n.Addr} }

// Messages.
type (
	// findSuccReq asks to resolve the successor of Target and reply to
	// Origin with the caller-chosen tag.
	findSuccReq struct {
		Target idspace.ID
		Origin runtime.Addr
		Tag    uint64
		Hops   int
	}
	findSuccResp struct {
		Target idspace.ID
		Succ   ref
		Tag    uint64
		Hops   int
	}
	// getPredReq/Resp implement the stabilization probe.
	getPredReq  struct{}
	getPredResp struct {
		Pred  ref
		Succs []ref
	}
	notifyMsg struct{ Cand ref }
	storeMsg  struct {
		Item   Item
		Origin runtime.Addr
		Tag    uint64
		Hops   int
	}
	storeAck struct {
		Tag  uint64
		Hops int
	}
	lookupMsg struct {
		DID    idspace.ID
		Key    string
		Origin runtime.Addr
		Tag    uint64
		Hops   int
	}
	lookupResp struct {
		Tag   uint64
		OK    bool
		Value string
		Hops  int
	}
	transferMsg struct{ Items []Item }
	leaveMsg    struct {
		Pred ref // departing node's predecessor, sent to its successor
		Succ ref // departing node's successor, sent to its predecessor
	}
)

func (n *Node) recv(from runtime.Addr, msg any) {
	if !n.alive {
		return
	}
	switch m := msg.(type) {
	case findSuccReq:
		n.handleFindSucc(m)
	case findSuccResp:
		n.handleFindSuccResp(m)
	case getPredReq:
		n.send(from, getPredResp{Pred: n.predecessor, Succs: n.successorList()})
	case getPredResp:
		n.handleStabilizeResp(from, m)
	case notifyMsg:
		n.handleNotify(m.Cand)
	case storeMsg:
		n.handleStore(m)
	case storeAck:
		n.finishOp(m.Tag, Result{OK: true, Hops: m.Hops})
	case lookupMsg:
		n.handleLookup(m)
	case lookupResp:
		n.finishOp(m.Tag, Result{OK: m.OK, Value: m.Value, Hops: m.Hops})
	case transferMsg:
		for _, it := range m.Items {
			n.data[it.DID] = it
		}
	case leaveMsg:
		n.handleLeave(from, m)
	default:
		panic(fmt.Sprintf("chord: unknown message %T", msg))
	}
}

// closestPreceding returns the live finger entry closest to target from
// above (Chord's closest_preceding_node), falling back to the successor.
func (n *Node) closestPreceding(target idspace.ID) ref {
	for i := FingerBits - 1; i >= 0; i-- {
		f := n.finger[i]
		if f.valid() && f.Addr != n.Addr && idspace.StrictBetween(n.ID, f.ID, target) {
			return f
		}
	}
	for i := len(n.successors) - 1; i >= 0; i-- {
		s := n.successors[i]
		if s.valid() && s.Addr != n.Addr && idspace.StrictBetween(n.ID, s.ID, target) {
			return s
		}
	}
	return nilRef
}

// handleFindSucc resolves or forwards a successor query.
func (n *Node) handleFindSucc(m findSuccReq) {
	succ := n.successors[0]
	if idspace.Between(n.ID, m.Target, succ.ID) {
		n.send(m.Origin, findSuccResp{Target: m.Target, Succ: succ, Tag: m.Tag, Hops: m.Hops + 1})
		return
	}
	next := n.closestPreceding(m.Target)
	if !next.valid() || next.Addr == n.Addr {
		// No better hop known; answer with our successor as best effort.
		n.send(m.Origin, findSuccResp{Target: m.Target, Succ: succ, Tag: m.Tag, Hops: m.Hops + 1})
		return
	}
	m.Hops++
	n.send(next.Addr, m)
}

// join initiates the Chord join protocol through the bootstrap node.
func (n *Node) join(bootstrap runtime.Addr) {
	tag := n.newTag()
	n.pending[tag] = &op{kind: "join"}
	n.send(bootstrap, findSuccReq{Target: n.ID, Origin: n.Addr, Tag: tag})
}

func (n *Node) handleFindSuccResp(m findSuccResp) {
	o, ok := n.pending[m.Tag]
	if !ok {
		return
	}
	switch o.kind {
	case "join":
		delete(n.pending, m.Tag)
		n.successors = []ref{m.Succ}
		n.send(m.Succ.Addr, notifyMsg{Cand: n.self()})
	case "fixfinger":
		delete(n.pending, m.Tag)
		n.finger[o.fidx] = m.Succ
	default:
		delete(n.pending, m.Tag)
	}
}

// newTag allocates a unique request tag.
func (n *Node) newTag() uint64 {
	n.nextOp++
	return n.nextOp
}

// successorList returns this node's successor list, truncated to r,
// starting with itself so callers can splice it after their own successor.
func (n *Node) successorList() []ref {
	out := make([]ref, 0, len(n.successors)+1)
	out = append(out, n.self())
	out = append(out, n.successors...)
	if len(out) > n.net.Cfg.SuccessorListLen {
		out = out[:n.net.Cfg.SuccessorListLen]
	}
	return out
}

// stabilize runs one round of the periodic stabilization protocol.
func (n *Node) stabilize() {
	if !n.alive {
		return
	}
	// Skip dead successors: the first live entry in the list becomes the
	// working successor.
	for len(n.successors) > 1 && !n.net.rt.Attached(n.successors[0].Addr) {
		n.successors = n.successors[1:]
	}
	succ := n.successors[0]
	if succ.Addr == n.Addr {
		// Ring of one; still refresh fingers so a rejoining ring heals.
		n.fixFingers()
		return
	}
	n.send(succ.Addr, getPredReq{})
	n.fixFingers()
}

func (n *Node) handleStabilizeResp(from runtime.Addr, m getPredResp) {
	succ := n.successors[0]
	if from != succ.Addr {
		return // stale response from a replaced successor
	}
	if m.Pred.valid() && idspace.StrictBetween(n.ID, m.Pred.ID, succ.ID) && n.net.rt.Attached(m.Pred.Addr) {
		succ = m.Pred
	}
	list := append([]ref{succ}, m.Succs...)
	// Deduplicate while preserving order, drop self-loops beyond first.
	seen := map[runtime.Addr]bool{}
	var dedup []ref
	for _, r := range list {
		if r.valid() && !seen[r.Addr] {
			seen[r.Addr] = true
			dedup = append(dedup, r)
		}
	}
	if len(dedup) > n.net.Cfg.SuccessorListLen {
		dedup = dedup[:n.net.Cfg.SuccessorListLen]
	}
	n.successors = dedup
	n.send(succ.Addr, notifyMsg{Cand: n.self()})
}

func (n *Node) handleNotify(cand ref) {
	if cand.Addr == n.Addr {
		return
	}
	if !n.predecessor.valid() || !n.net.rt.Attached(n.predecessor.Addr) ||
		idspace.StrictBetween(n.predecessor.ID, cand.ID, n.ID) {
		prevValid := n.predecessor.valid()
		n.predecessor = cand
		// A new predecessor takes over part of our key range; hand over
		// the items it now owns.
		n.transferOwnedBelow(cand, prevValid)
	}
	if len(n.successors) == 1 && n.successors[0].Addr == n.Addr {
		// Singleton ring learning of a second node.
		n.successors = []ref{cand}
	}
}

// transferOwnedBelow ships items owned by the new predecessor to it.
func (n *Node) transferOwnedBelow(pred ref, _ bool) {
	var moved []Item
	for did, it := range n.data {
		if !idspace.Between(pred.ID, did, n.ID) {
			moved = append(moved, it)
			delete(n.data, did)
		}
	}
	if len(moved) > 0 {
		n.net.rt.Send(n.Addr, pred.Addr, n.net.Cfg.MessageBytes*len(moved), transferMsg{Items: moved})
	}
}

// fixFingers refreshes the next few finger entries.
func (n *Node) fixFingers() {
	for i := 0; i < n.net.Cfg.FixFingersPerRound; i++ {
		idx := n.nextFinger
		n.nextFinger = (n.nextFinger + 1) % FingerBits
		target := idspace.FingerStart(n.ID, idx)
		tag := n.newTag()
		n.pending[tag] = &op{kind: "fixfinger", fidx: idx}
		n.send(n.Addr, findSuccReq{Target: target, Origin: n.Addr, Tag: tag})
	}
}

// Store inserts a (key, value) pair; done (optional) fires with the result.
func (n *Node) Store(key, value string, done func(Result)) {
	it := Item{Key: key, Value: value, DID: idspace.HashKey(key)}
	tag := n.newTag()
	o := &op{kind: "store", start: n.net.rt.Now(), done: done}
	n.pending[tag] = o
	o.timeout = n.net.rt.Schedule(n.net.Cfg.LookupTimeout, func() {
		n.finishOp(tag, Result{OK: false, Key: key})
	})
	n.routeStore(storeMsg{Item: it, Origin: n.Addr, Tag: tag})
}

func (n *Node) routeStore(m storeMsg) {
	succ := n.successors[0]
	if idspace.Between(n.predecessor.ID, m.Item.DID, n.ID) && n.predecessor.valid() {
		// We own it ourselves.
		n.data[m.Item.DID] = m.Item
		n.send(m.Origin, storeAck{Tag: m.Tag, Hops: m.Hops})
		return
	}
	if idspace.Between(n.ID, m.Item.DID, succ.ID) {
		m.Hops++
		n.send(succ.Addr, m)
		return
	}
	next := n.closestPreceding(m.Item.DID)
	if !next.valid() || next.Addr == n.Addr {
		n.data[m.Item.DID] = m.Item
		n.send(m.Origin, storeAck{Tag: m.Tag, Hops: m.Hops})
		return
	}
	m.Hops++
	n.send(next.Addr, m)
}

func (n *Node) handleStore(m storeMsg) {
	n.routeStore(m)
}

// Lookup resolves key and calls done with the result (including hop count
// and latency). A timeout yields a failed Result.
func (n *Node) Lookup(key string, done func(Result)) {
	did := idspace.HashKey(key)
	tag := n.newTag()
	o := &op{kind: "lookup", start: n.net.rt.Now(), done: done}
	n.pending[tag] = o
	o.timeout = n.net.rt.Schedule(n.net.Cfg.LookupTimeout, func() {
		n.finishOp(tag, Result{OK: false, Key: key})
	})
	n.routeLookup(lookupMsg{DID: did, Key: key, Origin: n.Addr, Tag: tag})
}

func (n *Node) routeLookup(m lookupMsg) {
	if it, ok := n.data[m.DID]; ok {
		n.send(m.Origin, lookupResp{Tag: m.Tag, OK: true, Value: it.Value, Hops: m.Hops})
		return
	}
	succ := n.successors[0]
	if idspace.Between(n.ID, m.DID, succ.ID) && succ.Addr != n.Addr {
		m.Hops++
		n.send(succ.Addr, m)
		return
	}
	next := n.closestPreceding(m.DID)
	if !next.valid() || next.Addr == n.Addr {
		// We are the owner but do not have the item.
		n.send(m.Origin, lookupResp{Tag: m.Tag, OK: false, Hops: m.Hops})
		return
	}
	m.Hops++
	n.send(next.Addr, m)
}

func (n *Node) handleLookup(m lookupMsg) {
	n.routeLookup(m)
}

// finishOp completes a pending operation exactly once.
func (n *Node) finishOp(tag uint64, r Result) {
	o, ok := n.pending[tag]
	if !ok {
		return
	}
	delete(n.pending, tag)
	n.net.rt.Unschedule(o.timeout)
	r.Latency = n.net.rt.Now() - o.start
	if o.done != nil {
		o.done(r)
	}
}

// Leave performs a graceful departure: data moves to the successor and the
// ring pointers around the node are patched.
func (n *Node) Leave() {
	if !n.alive {
		return
	}
	succ := n.successors[0]
	if succ.Addr != n.Addr {
		var items []Item
		for _, it := range n.data {
			items = append(items, it)
		}
		if len(items) > 0 {
			n.net.rt.Send(n.Addr, succ.Addr, n.net.Cfg.MessageBytes*len(items), transferMsg{Items: items})
		}
		n.send(succ.Addr, leaveMsg{Pred: n.predecessor, Succ: nilRef})
		if n.predecessor.valid() {
			n.send(n.predecessor.Addr, leaveMsg{Succ: succ, Pred: nilRef})
		}
	}
	n.Crash()
}

func (n *Node) handleLeave(from runtime.Addr, m leaveMsg) {
	if m.Pred.valid() && n.predecessor.Addr == from {
		n.predecessor = m.Pred
	}
	if m.Succ.valid() && len(n.successors) > 0 && n.successors[0].Addr == from {
		n.successors[0] = m.Succ
	}
}

// Crash removes the node abruptly: no notifications, data lost.
func (n *Node) Crash() {
	if !n.alive {
		return
	}
	n.alive = false
	n.stabilizer.Stop()
	n.net.rt.Detach(n.Addr)
	delete(n.net.nodes, n.Addr)
}

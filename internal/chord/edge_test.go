package chord

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func TestAliveAndAccessors(t *testing.T) {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(31)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cnet := NewNetwork(simnet.NewRuntime(eng, net), Config{}) // zero config: defaults fill in
	if cnet.Cfg.SuccessorListLen == 0 || cnet.Cfg.LookupTimeout == 0 {
		t.Fatal("zero config not defaulted")
	}
	n := cnet.CreateNode(42, topo.StubNodes()[0], 1, simnet.None)
	if !n.Alive() {
		t.Fatal("fresh node not alive")
	}
	if n.Successor() != n.Addr {
		t.Fatal("singleton successor should be itself")
	}
	if cnet.Node(n.Addr) != n {
		t.Fatal("Node lookup")
	}
	n.Crash()
	if n.Alive() || cnet.Node(n.Addr) != nil {
		t.Fatal("crash did not deregister")
	}
	n.Crash() // idempotent
	n.Leave() // no-op on a dead node
}

func TestDataMovesToNewJoiner(t *testing.T) {
	// transferOwnedBelow: a new node joining between a key's id and its
	// current holder must receive the key.
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 33)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(33)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cnet := NewNetwork(simnet.NewRuntime(eng, net), DefaultConfig())
	stubs := topo.StubNodes()

	a := cnet.CreateNode(idspace.ID(100), stubs[0], 1, simnet.None)
	b := cnet.CreateNode(idspace.ID(1<<63), stubs[1], 1, a.Addr)
	eng.RunUntil(eng.Now() + 20*sim.Second)

	// Store a key owned by b (id in (100, 2^63]).
	var key string
	for i := 0; ; i++ {
		k := keyfmt(i)
		if idspace.Between(a.ID, idspace.HashKey(k), b.ID) {
			key = k
			break
		}
	}
	done := false
	a.Store(key, "v", func(Result) { done = true })
	for !done && eng.Step() {
	}
	if _, ok := b.data[idspace.HashKey(key)]; !ok {
		t.Fatalf("key not at owner b")
	}

	// A third node joins just past the key: ownership moves to it.
	mid := idspace.HashKey(key) + 1
	c := cnet.CreateNode(mid, stubs[2], 1, a.Addr)
	eng.RunUntil(eng.Now() + 30*sim.Second)
	if _, ok := c.data[idspace.HashKey(key)]; !ok {
		t.Fatalf("key did not transfer to the new owner (c id just past key)")
	}
	if _, still := b.data[idspace.HashKey(key)]; still {
		t.Fatal("key duplicated instead of moved")
	}
}

func keyfmt(i int) string {
	return "edge-key-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

package chord

import (
	"testing"

	"repro/internal/idspace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func TestChordBasic(t *testing.T) {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(3)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	cfg := DefaultConfig()
	cfg.LookupTimeout = 10 * sim.Second
	cnet := NewNetwork(simnet.NewRuntime(eng, net), cfg)
	stubs := topo.StubNodes()
	var nodes []*Node
	boot := simnet.None
	for i := 0; i < 100; i++ {
		n := cnet.CreateNode(idspace.ID(eng.Rand().Uint64()), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
		if boot == simnet.None {
			boot = n.Addr
		}
		eng.RunUntil(eng.Now() + 600*sim.Millisecond)
		nodes = append(nodes, n)
	}
	eng.RunUntil(eng.Now() + 30*sim.Second)
	// check ring consistency
	bad := 0
	for _, n := range nodes {
		s := cnet.Node(n.Successor())
		if s == nil || s.Predecessor() != n.Addr {
			bad++
		}
	}
	t.Logf("bad succ/pred pairs: %d/100, events=%d now=%v", bad, eng.Dispatched(), eng.Now())
	okStore, okLookup := 0, 0
	for i := 0; i < 200; i++ {
		var done bool
		var r Result
		nodes[(i*7)%100].Store(keyf(i), "v", func(res Result) { done = true; r = res })
		for !done && eng.Step() {
		}
		if r.OK {
			okStore++
		}
	}
	for i := 0; i < 200; i++ {
		var done bool
		var r Result
		nodes[(i*13)%100].Lookup(keyf(i), func(res Result) { done = true; r = res })
		for !done && eng.Step() {
		}
		if r.OK {
			okLookup++
		}
	}
	t.Logf("stores ok=%d/200 lookups ok=%d/200 events=%d now=%v", okStore, okLookup, eng.Dispatched(), eng.Now())
	if okLookup < 190 {
		t.Errorf("too many lookup failures")
	}
}

func keyf(i int) string {
	return "key-" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+(i/260)%10))
}

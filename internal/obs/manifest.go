package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// ManifestSchema is the current manifest JSON schema version.
const ManifestSchema = 1

// PointRecord is one sweep point (or experiment arm) in a run manifest.
type PointRecord struct {
	Label       string             `json:"label"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the machine-readable record of one experiment run: what was
// run, with which knobs, and what each point cost. It is written alongside
// the text tables, never instead of them.
type Manifest struct {
	Schema      int                `json:"schema"`
	Tool        string             `json:"tool"`
	StartedAt   string             `json:"started_at"`
	WallSeconds float64            `json:"wall_seconds"`
	Seed        int64              `json:"seed"`
	Workers     int                `json:"workers"`
	Config      map[string]any     `json:"config,omitempty"`
	Points      []PointRecord      `json:"points"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Recorder accumulates PointRecords from concurrent sweep workers and
// finalizes them into a Manifest. A nil *Recorder is a no-op, mirroring the
// Tracer fast path. Progress output (if enabled via SetProgress) goes to a
// side writer — normally stderr — never to the result stream, so table/CSV
// output stays byte-identical whether or not a recorder is attached.
type Recorder struct {
	mu       sync.Mutex
	tool     string
	started  time.Time
	seed     int64
	workers  int
	config   map[string]any
	points   []PointRecord
	metrics  map[string]float64
	progress io.Writer
	done     int
}

// NewRecorder starts a recorder for one run of the named tool.
func NewRecorder(tool string, seed int64, workers int, config map[string]any) *Recorder {
	return &Recorder{
		tool:    tool,
		started: time.Now(),
		seed:    seed,
		workers: workers,
		config:  config,
	}
}

// SetProgress directs a live one-line-per-point progress feed to w
// (normally os.Stderr). Pass nil to disable.
func (r *Recorder) SetProgress(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.progress = w
	r.mu.Unlock()
}

// Point records one completed sweep point with its wall-clock cost and a
// metrics snapshot. Safe to call from concurrent sweep workers.
func (r *Recorder) Point(label string, wall time.Duration, metrics map[string]float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points = append(r.points, PointRecord{
		Label:       label,
		WallSeconds: wall.Seconds(),
		Metrics:     metrics,
	})
	r.done++
	if r.progress != nil {
		fmt.Fprintf(r.progress, "[%s] point %d done: %s (%.2fs)\n", r.tool, r.done, label, wall.Seconds())
	}
	r.mu.Unlock()
}

// SetMetrics attaches a run-level metrics snapshot (as opposed to the
// per-point snapshots recorded via Point).
func (r *Recorder) SetMetrics(m map[string]float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metrics = m
	r.mu.Unlock()
}

// Points returns how many points have been recorded so far.
func (r *Recorder) Points() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.points)
}

// Manifest finalizes the run into a Manifest. Points are sorted by label so
// the document is stable across worker counts and scheduling orders.
func (r *Recorder) Manifest() *Manifest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pts := make([]PointRecord, len(r.points))
	copy(pts, r.points)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Label < pts[j].Label })
	return &Manifest{
		Schema:      ManifestSchema,
		Tool:        r.tool,
		StartedAt:   r.started.UTC().Format(time.RFC3339),
		WallSeconds: time.Since(r.started).Seconds(),
		Seed:        r.seed,
		Workers:     r.workers,
		Config:      r.config,
		Points:      pts,
		Metrics:     r.metrics,
	}
}

// WriteManifest finalizes the run and writes the manifest JSON to path.
func (r *Recorder) WriteManifest(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Manifest()); err != nil {
		return err
	}
	return f.Close()
}

// Package obs is the observability layer: a bounded structured trace of
// protocol and network events, a named metrics registry, machine-readable run
// manifests, and CPU/heap profiling hooks. Every layer of the simulator
// (sim, simnet, core, exp, the CLIs) reports into it; nothing in this package
// ever feeds back into protocol behavior, so enabling observability cannot
// change simulation results.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/runtime"
)

// Kind classifies a trace event.
type Kind uint8

// Trace event kinds. Message-level kinds come from simnet, peer and lookup
// kinds from core.
const (
	EvMsgSend Kind = iota
	EvMsgDeliver
	EvMsgDrop
	EvPeerJoin
	EvPeerLeave
	EvPeerCrash
	EvLookupStart
	EvLookupHop
	EvLookupForward
	EvLookupHit
	EvLookupFail
)

var kindNames = [...]string{
	EvMsgSend:       "msg_send",
	EvMsgDeliver:    "msg_deliver",
	EvMsgDrop:       "msg_drop",
	EvPeerJoin:      "peer_join",
	EvPeerLeave:     "peer_leave",
	EvPeerCrash:     "peer_crash",
	EvLookupStart:   "lookup_start",
	EvLookupHop:     "lookup_hop",
	EvLookupForward: "lookup_forward",
	EvLookupHit:     "lookup_hit",
	EvLookupFail:    "lookup_fail",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. From/To are peer addresses (simnet.Addr values;
// -1 means none) and Lookup is the query id threaded through the core message
// types (0 means the event is not tied to a lookup).
type Event struct {
	Seq    uint64
	At     runtime.Time
	Kind   Kind
	Lookup uint64
	From   int
	To     int
	Hops   int
	Note   string
}

// Tracer is a bounded in-memory ring of trace events. A nil *Tracer is the
// "tracing off" fast path: Enabled reports false and every method is a no-op,
// so call sites pay one pointer comparison when tracing is disabled.
//
// A Tracer is safe for concurrent use; parallel sweep points may share one
// (each event carries its own simulated timestamp, and the point label tells
// interleaved streams apart).
type Tracer struct {
	mu      sync.Mutex
	label   string
	cap     int
	buf     []Event
	start   int // index of the oldest event once the ring is full
	seq     uint64
	dropped uint64
}

// DefaultTraceCap is the default ring capacity (events kept before the oldest
// are overwritten).
const DefaultTraceCap = 1 << 16

// NewTracer creates a tracer keeping at most capacity events (<= 0 uses
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Enabled reports whether events should be emitted. It is nil-safe and is the
// TraceOff fast path: protocol code guards every Emit with it.
func (t *Tracer) Enabled() bool { return t != nil }

// SetLabel attaches a label (e.g. "ps=0.70") included in every exported line.
func (t *Tracer) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// Emit appends one event to the ring, overwriting the oldest when full.
func (t *Tracer) Emit(kind Kind, at runtime.Time, lookup uint64, from, to, hops int, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, At: at, Kind: kind, Lookup: lookup, From: from, To: to, Hops: hops, Note: note}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Overwritten returns how many events the ring has dropped to stay bounded.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

// eventsLocked copies the ring in emission order. Callers hold t.mu.
func (t *Tracer) eventsLocked() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.start:]...)
	out = append(out, t.buf[:t.start]...)
	return out
}

// snapshot returns the label and retained events under one lock acquisition,
// so a concurrent SetLabel can never produce a torn label/event pairing in an
// export.
func (t *Tracer) snapshot() (string, []Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.label, t.eventsLocked()
}

// LookupEvents returns the retained events for one lookup id, in emission
// order — the full hop sequence of a traced query.
func (t *Tracer) LookupEvents(qid uint64) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Lookup == qid {
			out = append(out, e)
		}
	}
	return out
}

// jsonEvent is the JSONL wire shape of an Event.
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	TUs    int64  `json:"t_us"`
	Kind   string `json:"kind"`
	Point  string `json:"point,omitempty"`
	Lookup uint64 `json:"lookup,omitempty"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Hops   int    `json:"hops,omitempty"`
	Note   string `json:"note,omitempty"`
}

// WriteJSONL exports the retained events as one JSON object per line. The
// label and event list are captured under a single lock acquisition, so the
// exported lines are always a consistent (label, events) pairing even when a
// concurrent SetLabel races the export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.WriteJSONLTail(w, 0)
}

// WriteJSONLTail exports the last n retained events (all of them when
// n <= 0) as one JSON object per line — the bounded "what just happened"
// view the introspection server serves at /trace.
func (t *Tracer) WriteJSONLTail(w io.Writer, n int) error {
	if t == nil {
		return nil
	}
	label, events := t.snapshot()
	if n > 0 && n < len(events) {
		events = events[len(events)-n:]
	}
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonEvent{
			Seq: e.Seq, TUs: int64(e.At), Kind: e.Kind.String(), Point: label,
			Lookup: e.Lookup, From: e.From, To: e.To, Hops: e.Hops, Note: e.Note,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

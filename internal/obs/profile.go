package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and arranges a heap profile
// at memPath; either path may be empty to skip that profile. The returned
// stop function flushes both (running a GC first so the heap profile reflects
// live objects) and must be called exactly once, typically via defer.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing named count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Timer accumulates observations into a metrics.Summary (count/mean/min/max).
// Despite the name it records any distribution, not just durations.
type Timer struct {
	mu sync.Mutex
	s  metrics.Summary
}

// Observe records one observation.
func (t *Timer) Observe(v float64) {
	t.mu.Lock()
	t.s.Add(v)
	t.mu.Unlock()
}

// Summary returns a copy of the accumulated summary.
func (t *Timer) Summary() metrics.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s
}

// Registry is a get-or-create namespace of counters, gauges and timers. It is
// safe for concurrent use; Snapshot flattens everything into a
// map[string]float64 suitable for a manifest point record.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.timers))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot flattens the registry into name -> value. Counters and gauges map
// directly; a timer named "x" expands to "x.count", "x.mean", "x.min", "x.max"
// (min/max omitted while empty).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+4*len(r.timers))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, t := range r.timers {
		s := t.Summary()
		out[n+".count"] = float64(s.N())
		out[n+".mean"] = s.Mean()
		if s.N() > 0 {
			out[n+".min"] = s.Min()
			out[n+".max"] = s.Max()
		}
	}
	return out
}

package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing named count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named value that can go up and down. The value is stored as an
// atomic uint64 bit pattern (math.Float64bits), so Set and Value are single
// atomic operations — no mutex, no allocation — and a gauge can sit on the
// same hot paths as a Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates observations into a metrics.Summary (count/mean/min/max).
// Despite the name it records any distribution, not just durations. For
// percentile reporting use a Histogram instead.
type Timer struct {
	mu sync.Mutex
	s  metrics.Summary
}

// Observe records one observation.
func (t *Timer) Observe(v float64) {
	t.mu.Lock()
	t.s.Add(v)
	t.mu.Unlock()
}

// Summary returns a copy of the accumulated summary.
func (t *Timer) Summary() metrics.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s
}

// Registry is a get-or-create namespace of counters, gauges, timers and
// histograms. It is safe for concurrent use; Snapshot flattens everything
// into a map[string]float64 suitable for a manifest point record, and
// WritePromText (prom.go) renders the whole registry in Prometheus text
// exposition format.
//
// A name belongs to exactly one metric kind. Re-registering a name as a
// different kind panics: the old behavior silently let Snapshot overwrite one
// metric with the other, which turns a naming slip into quietly corrupted
// results.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// claim records that name is used as the given kind, panicking if the name is
// already registered as a different kind. Callers hold r.mu.
func (r *Registry) claim(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, cannot re-register as a %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "timer")
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot flattens the registry into name -> value. Counters and gauges map
// directly; a timer named "x" expands to "x.count", "x.mean", "x.min", "x.max"
// (min/max omitted while empty); a histogram named "x" expands to "x.count",
// "x.p50", "x.p90", "x.p99", "x.p999", "x.max" (quantiles omitted while
// empty).
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+4*len(r.timers)+6*len(r.hists))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, t := range r.timers {
		s := t.Summary()
		out[n+".count"] = float64(s.N())
		out[n+".mean"] = s.Mean()
		if s.N() > 0 {
			out[n+".min"] = s.Min()
			out[n+".max"] = s.Max()
		}
	}
	for n, h := range r.hists {
		s := h.Snapshot()
		out[n+".count"] = float64(s.Count)
		if s.Count > 0 {
			out[n+".p50"] = s.P50
			out[n+".p90"] = s.P90
			out[n+".p99"] = s.P99
			out[n+".p999"] = s.P999
			out[n+".max"] = s.Max
		}
	}
	return out
}

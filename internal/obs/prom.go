package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): one TYPE comment plus sample lines per metric, sorted by
// metric name so the output is deterministic and golden-testable.
//
//   - counters and gauges render as single samples;
//   - a Timer "x" renders as a summary: x_count and x_sum;
//   - a Histogram "x" renders as a native Prometheus histogram: cumulative
//     x_bucket{le="..."} samples over the non-empty buckets, the mandatory
//     le="+Inf" bucket, x_sum and x_count.
//
// Metric names are sanitized to the Prometheus grammar: every character
// outside [a-zA-Z0-9_:] (our registry convention uses dots) becomes '_'.

// PromContentType is the Content-Type for the exposition this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry name into a legal Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value: shortest round-trip representation, with
// the spellings Prometheus expects for the special values.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePromText writes every metric in the registry to w in Prometheus text
// exposition format. Metrics are emitted in sorted name order; the writer
// takes a point-in-time snapshot of each metric, so a scrape during a run
// sees consistent recent values.
func (r *Registry) WritePromText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		names = append(names, n)
	}
	kinds := make(map[string]string, len(r.kinds))
	for n, k := range r.kinds {
		kinds[n] = k
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	timers := make(map[string]*Timer, len(r.timers))
	for n, t := range r.timers {
		timers[n] = t
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		pn := promName(name)
		switch kinds[name] {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(float64(counters[name].Value())))
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[name].Value()))
		case "timer":
			s := timers[name].Summary()
			fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
			fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(s.Mean()*float64(s.N())))
			fmt.Fprintf(&b, "%s_count %d\n", pn, s.N())
		case "histogram":
			s := hists[name].Snapshot()
			fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
			var cum uint64
			for _, bk := range s.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bk.High, cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", pn, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

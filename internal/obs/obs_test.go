package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(EvMsgSend, 0, 0, 1, 2, 0, "")
	tr.SetLabel("x")
	if tr.Len() != 0 || tr.Events() != nil || tr.Overwritten() != 0 {
		t.Fatal("nil tracer retained state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvMsgSend, runtime.Time(i), 0, i, i+1, 0, "")
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	evs := tr.Events()
	for i, e := range evs {
		wantSeq := uint64(7 + i) // oldest retained is seq 7 (events 1..10, last 4 kept)
		if e.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (events not chronological)", i, e.Seq, wantSeq)
		}
	}
}

func TestTracerLookupEvents(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(EvLookupStart, 10, 7, 1, -1, 0, "")
	tr.Emit(EvLookupHop, 20, 9, 2, 3, 1, "route")
	tr.Emit(EvLookupHop, 30, 7, 1, 2, 1, "route")
	tr.Emit(EvLookupHit, 40, 7, 2, 1, 2, "")
	evs := tr.LookupEvents(7)
	if len(evs) != 3 {
		t.Fatalf("LookupEvents(7) = %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvLookupStart || evs[2].Kind != EvLookupHit {
		t.Fatalf("wrong event chain: %v -> %v", evs[0].Kind, evs[2].Kind)
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.SetLabel("ps=0.70")
	tr.Emit(EvLookupStart, 1000, 42, 3, -1, 0, "")
	tr.Emit(EvLookupHit, 2000, 42, 5, 3, 2, "flood")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "lookup_start" || lines[0]["point"] != "ps=0.70" {
		t.Fatalf("bad first line: %v", lines[0])
	}
	if lines[1]["kind"] != "lookup_hit" || lines[1]["lookup"] != float64(42) || lines[1]["note"] != "flood" {
		t.Fatalf("bad second line: %v", lines[1])
	}
}

func TestKindStrings(t *testing.T) {
	for k := EvMsgSend; k <= EvLookupFail; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind name = %q", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.sent").Add(5)
	r.Counter("net.sent").Inc()
	r.Gauge("sim.time_s").Set(1.25)
	tm := r.Timer("peer.items")
	tm.Observe(2)
	tm.Observe(4)
	snap := r.Snapshot()
	want := map[string]float64{
		"net.sent":         6,
		"sim.time_s":       1.25,
		"peer.items.count": 2,
		"peer.items.mean":  3,
		"peer.items.min":   2,
		"peer.items.max":   4,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
	names := r.Names()
	if !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Fatalf("Names() = %v, want 3 sorted names", names)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Timer("t").Observe(1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap["c"] != 800 || snap["t.count"] != 800 {
		t.Fatalf("concurrent snapshot = %v, want c=800 t.count=800", snap)
	}
}

func TestRecorderManifest(t *testing.T) {
	rec := NewRecorder("paperexp", 42, 8, map[string]any{"n": 200})
	var wg sync.WaitGroup
	labels := []string{"ps=0.90", "ps=0.10", "ps=0.50"}
	for _, l := range labels {
		wg.Add(1)
		go func(l string) {
			defer wg.Done()
			rec.Point(l, 10*time.Millisecond, map[string]float64{"sim.events": 100})
		}(l)
	}
	wg.Wait()
	m := rec.Manifest()
	if m.Schema != ManifestSchema || m.Tool != "paperexp" || m.Seed != 42 || m.Workers != 8 {
		t.Fatalf("bad manifest header: %+v", m)
	}
	if len(m.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(m.Points))
	}
	// Points must come out sorted by label regardless of completion order.
	for i := 1; i < len(m.Points); i++ {
		if m.Points[i-1].Label > m.Points[i].Label {
			t.Fatalf("points not sorted: %q before %q", m.Points[i-1].Label, m.Points[i].Label)
		}
	}
	if m.Points[0].Metrics["sim.events"] != 100 || m.Points[0].WallSeconds <= 0 {
		t.Fatalf("bad point record: %+v", m.Points[0])
	}
	if _, err := time.Parse(time.RFC3339, m.StartedAt); err != nil {
		t.Fatalf("started_at not RFC3339: %v", err)
	}
}

func TestRecorderProgressOffResultPath(t *testing.T) {
	rec := NewRecorder("t", 1, 1, nil)
	var progress bytes.Buffer
	rec.SetProgress(&progress)
	rec.Point("p1", time.Millisecond, nil)
	if progress.Len() == 0 {
		t.Fatal("no progress output")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	rec.Point("x", time.Second, nil)
	rec.SetProgress(os.Stderr)
	rec.SetMetrics(nil)
	if rec.Points() != 0 || rec.Manifest() != nil {
		t.Fatal("nil recorder retained state")
	}
	if err := rec.WriteManifest("/nonexistent/never-written.json"); err != nil {
		t.Fatalf("nil WriteManifest: %v", err)
	}
}

func TestWriteManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	rec := NewRecorder("hybridsim", 7, 2, map[string]any{"peers": 50.0})
	rec.Point("ps=0.30", 5*time.Millisecond, map[string]float64{"net.sent": 12})
	if err := rec.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if m.Tool != "hybridsim" || m.Config["peers"] != 50.0 || len(m.Points) != 1 {
		t.Fatalf("round-trip mismatch: %+v", m)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Both paths empty: stop must still be safe.
	stop2, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

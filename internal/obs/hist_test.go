package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistBucketScheme checks the log-linear bucket geometry: contiguous
// coverage (every bucket starts where the previous one ends), correct
// round-trips (a value lands in a bucket that covers it), exactness below
// 2^histSubBits, and ≤12.5% relative width above.
func TestHistBucketScheme(t *testing.T) {
	for b := 1; b < histBuckets; b++ {
		if histLow(b) != histLow(b-1)+histWidth(b-1) {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)",
				b, histLow(b), histLow(b-1)+histWidth(b-1))
		}
	}
	check := func(u uint64) {
		b := histIndex(u)
		if b < 0 || b >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", u, b)
		}
		lo, hi := histLow(b), histLow(b)+histWidth(b)-1
		if u < lo || u > hi {
			t.Fatalf("value %d landed in bucket %d covering [%d, %d]", u, b, lo, hi)
		}
		if u < histSubs*2 && histWidth(b) != 1 {
			t.Fatalf("value %d should have an exact bucket, got width %d", u, histWidth(b))
		}
		if w := histWidth(b); u >= 2*histSubs && float64(w)/float64(lo) > 0.126 {
			t.Fatalf("bucket %d for value %d has relative width %f > 12.5%%", b, u, float64(w)/float64(lo))
		}
	}
	for u := uint64(0); u < 1<<12; u++ {
		check(u)
	}
	for e := uint(3); e < 64; e++ {
		check(1<<e - 1)
		check(1 << e)
		check(1<<e + 1)
	}
	check(math.MaxUint64)
	if histIndex(math.MaxUint64) != histBuckets-1 {
		t.Fatalf("MaxUint64 in bucket %d, want last bucket %d", histIndex(math.MaxUint64), histBuckets-1)
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v, want zero", s)
	}
}

func TestHistQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Record(7)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestHistQuantileAllOneBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(5)
	}
	s := h.Snapshot()
	if s.P50 != 5 || s.P90 != 5 || s.P99 != 5 || s.P999 != 5 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("all-one-bucket snapshot = %+v, want every quantile 5", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 1000 {
		t.Fatalf("buckets = %+v, want one bucket of 1000", s.Buckets)
	}
}

// TestHistQuantileNearestRank pins the rounding rule to nearest rank over the
// flattened sample (rank = q*(N-1) rounded half-up), matching
// metrics.Sample.Quantile: values 1..10 in the exact-bucket region.
func TestHistQuantileNearestRank(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 6}, {0.95, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	got := h.Quantiles([]float64{0, 0.5, 0.95, 1})
	want := []float64{1, 6, 10, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistRecordNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-12345)
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatalf("negative record: count=%d q1=%v, want 1 observation of 0", h.Count(), h.Quantile(1))
	}
}

// TestHistogramRecordAllocFree guards the hot path: recording must never
// allocate (scripts/check.sh gates on this test by name).
func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	v := int64(0)
	avg := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	})
	if avg != 0 {
		t.Fatalf("Histogram.Record allocates %.1f objects/op, want 0", avg)
	}
	reg := NewRegistry()
	reg.Gauge("g")
	g := reg.Gauge("g")
	avg = testing.AllocsPerRun(1000, func() { g.Set(3.14) })
	if avg != 0 {
		t.Fatalf("Gauge.Set allocates %.1f objects/op, want 0", avg)
	}
}

// TestRegistryKindCollisionPanics pins the registry's name-collision
// semantics: registering one name as two different metric kinds is a
// programming error and must panic, not silently shadow.
func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	if c2 := r.Counter("x"); c2 == nil {
		t.Fatal("re-registering the same kind must return the existing metric")
	}
	defer func() {
		m, ok := recover().(string)
		if !ok || !strings.Contains(m, "already registered") {
			t.Fatalf("Gauge on a counter name: recover() = %v, want kind-collision panic", m)
		}
	}()
	r.Gauge("x")
}

// TestWritePromTextGolden pins the Prometheus exposition byte-for-byte for a
// registry with all four metric kinds.
func TestWritePromTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.sent").Add(12)
	r.Gauge("sim.time_s").Set(1.5)
	tm := r.Timer("peer.items")
	tm.Observe(2)
	tm.Observe(4)
	h := r.Histogram("lookup.hops")
	h.Record(1)
	h.Record(3)
	h.Record(3)
	h.Record(20)

	const want = `# TYPE lookup_hops histogram
lookup_hops_bucket{le="1"} 1
lookup_hops_bucket{le="3"} 3
lookup_hops_bucket{le="21"} 4
lookup_hops_bucket{le="+Inf"} 4
lookup_hops_sum 27.5
lookup_hops_count 4
# TYPE net_sent counter
net_sent 12
# TYPE peer_items summary
peer_items_sum 6
peer_items_count 2
# TYPE sim_time_s gauge
sim_time_s 1.5
`
	var buf bytes.Buffer
	if err := r.WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestObsStress hammers the histogram, registry and tracer from 8 goroutines
// while readers snapshot concurrently; run under -race it proves the lockless
// read/write paths are sound, and the final counts prove no update is lost.
func TestObsStress(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	r := NewRegistry()
	h := r.Histogram("stress.hist")
	tr := NewTracer(512)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*perG + i))
				r.Counter("stress.count").Inc()
				r.Gauge("stress.gauge").Set(float64(i))
				r.Timer("stress.timer").Observe(1)
				tr.Emit(EvMsgSend, 0, uint64(i), g, g+1, 0, "")
				if i%64 == 0 {
					h.Quantile(0.99)
					r.Snapshot()
					tr.SetLabel("g")
					var buf bytes.Buffer
					if err := r.WritePromText(&buf); err != nil {
						t.Error(err)
						return
					}
					if err := tr.WriteJSONLTail(&buf, 16); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost updates: count = %d, want %d", got, total)
	}
	snap := r.Snapshot()
	if snap["stress.count"] != total || snap["stress.timer.count"] != total {
		t.Fatalf("registry lost updates: %v", snap)
	}
	if snap["stress.hist.count"] != total {
		t.Fatalf("snapshot histogram count = %v, want %d", snap["stress.hist.count"], total)
	}
}

// TestTracerLabelNeverTorn verifies that an export observes exactly one label
// across all its lines even while SetLabel races it: the label and events are
// captured under a single lock acquisition.
func TestTracerLabelNeverTorn(t *testing.T) {
	tr := NewTracer(256)
	tr.SetLabel("A")
	for i := 0; i < 64; i++ {
		tr.Emit(EvMsgSend, 0, 0, i, i+1, 0, "")
	}
	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				tr.SetLabel("A")
			} else {
				tr.SetLabel("B")
			}
		}
	}()
	for round := 0; round < 200; round++ {
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(&buf)
		seen := map[string]bool{}
		for sc.Scan() {
			var m struct {
				Point string `json:"point"`
			}
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatal(err)
			}
			seen[m.Point] = true
		}
		if len(seen) != 1 {
			t.Fatalf("export %d saw %d distinct labels %v, want exactly 1", round, len(seen), seen)
		}
	}
	close(stop)
	flip.Wait()
}

func TestWriteJSONLTail(t *testing.T) {
	tr := NewTracer(32)
	for i := 0; i < 10; i++ {
		tr.Emit(EvMsgSend, 0, 0, i, i+1, 0, "")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONLTail(&buf, 3); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var seqs []uint64
	for sc.Scan() {
		var m struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, m.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 8 || seqs[2] != 10 {
		t.Fatalf("tail(3) seqs = %v, want [8 9 10]", seqs)
	}
}

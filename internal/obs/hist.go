package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-linear histogram for non-negative integer
// observations (hop counts, latencies in microseconds). The record path is a
// single atomic add into a fixed bucket array — no locks, no allocation — so
// it can sit on protocol hot paths without feeding back into behavior or
// showing up on the heap profile.
//
// Bucket scheme: values below 2^histSubBits get one exact bucket each; every
// larger power-of-two octave [2^e, 2^(e+1)) is split into 2^histSubBits
// linear sub-buckets. With histSubBits = 3 that is 8 sub-buckets per octave:
// values 0..15 are exact and everything above is resolved to within 12.5%,
// which is tighter than the run-to-run variance of anything we measure.
//
// Readers (Quantile, Snapshot, the Prometheus writer) take a moment-in-time
// view by loading each bucket once; concurrent records may land between
// loads, so a reader sees some consistent recent past, never a torn value —
// the standard contract for scrape-style metrics.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
}

const (
	// histSubBits is the log2 of the per-octave sub-bucket count.
	histSubBits = 3
	histSubs    = 1 << histSubBits
	// histBuckets covers the exact region [0, histSubs) plus octaves
	// e = histSubBits .. 63, each with histSubs sub-buckets.
	histBuckets = histSubs + (64-histSubBits)*histSubs
)

// histIndex maps a value to its bucket.
func histIndex(u uint64) int {
	if u < histSubs {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1
	sub := (u >> (e - histSubBits)) & (histSubs - 1)
	return int(e-histSubBits+1)<<histSubBits + int(sub)
}

// histLow returns the smallest value a bucket covers.
func histLow(b int) uint64 {
	if b < histSubs {
		return uint64(b)
	}
	e := uint(b>>histSubBits) + histSubBits - 1
	sub := uint64(b & (histSubs - 1))
	return (histSubs + sub) << (e - histSubBits)
}

// histWidth returns how many distinct values a bucket covers.
func histWidth(b int) uint64 {
	if b < 2*histSubs {
		return 1
	}
	e := uint(b>>histSubBits) + histSubBits - 1
	return 1 << (e - histSubBits)
}

// histMid returns the bucket's representative value: the exact value for
// width-1 buckets, the midpoint otherwise.
func histMid(b int) float64 {
	w := histWidth(b)
	return float64(histLow(b)) + float64(w-1)/2
}

// Record counts one observation. Negative values clamp to zero. This is the
// hot path: one atomic add, no locks, no allocation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(uint64(v))].Add(1)
}

// Count returns the total number of observations recorded.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns the q-th (0..1) quantile by nearest rank over the bucket
// representatives. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	qs := [1]float64{q}
	out := [1]float64{}
	h.quantiles(qs[:], out[:])
	return out[0]
}

// Quantiles fills out[i] with the qs[i]-th quantile, loading each bucket
// exactly once for the whole batch. qs must be ascending; out must be the
// same length as qs.
func (h *Histogram) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	h.quantiles(qs, out)
	return out
}

func (h *Histogram) quantiles(qs, out []float64) {
	var local [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		local[i] = c
		total += c
	}
	if total == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	// Nearest-rank over the flattened sample: the same rounding rule as
	// metrics.Sample.Quantile, so small samples are not biased low.
	qi := 0
	var cum uint64
	for b := 0; b < histBuckets && qi < len(qs); b++ {
		if local[b] == 0 {
			continue
		}
		cum += local[b]
		for qi < len(qs) {
			rank := uint64(qs[qi]*float64(total-1) + 0.5)
			if rank >= total {
				rank = total - 1
			}
			if rank >= cum {
				break
			}
			out[qi] = histMid(b)
			qi++
		}
	}
	for ; qi < len(qs); qi++ {
		out[qi] = out[qi-1]
	}
}

// HistBucket is one non-empty histogram bucket in a snapshot. Low is the
// smallest value the bucket covers; High is the largest (inclusive).
type HistBucket struct {
	Low, High uint64
	Count     uint64
}

// HistSnapshot is a moment-in-time view of a histogram.
type HistSnapshot struct {
	Count               uint64
	Sum                 float64 // approximated from bucket representatives
	Min, Max            float64 // bucket representatives of the extremes
	P50, P90, P99, P999 float64
	Buckets             []HistBucket // non-empty buckets, ascending
}

// Snapshot captures the histogram: totals, standard quantiles and the
// non-empty buckets (for exposition formats that need the full shape).
func (h *Histogram) Snapshot() HistSnapshot {
	var local [histBuckets]uint64
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		local[i] = c
		s.Count += c
	}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make([]HistBucket, 0, 16)
	first := true
	for b := range local {
		if local[b] == 0 {
			continue
		}
		mid := histMid(b)
		s.Sum += mid * float64(local[b])
		if first {
			s.Min = mid
			first = false
		}
		s.Max = mid
		s.Buckets = append(s.Buckets, HistBucket{
			Low:   histLow(b),
			High:  histLow(b) + histWidth(b) - 1,
			Count: local[b],
		})
	}
	qs := [4]float64{0.50, 0.90, 0.99, 0.999}
	var out [4]float64
	// Quantiles over the already-loaded view would be ideal; re-loading is
	// close enough (scrape-consistency, as documented on the type) and keeps
	// one quantile walk shared by every caller.
	h.quantiles(qs[:], out[:])
	s.P50, s.P90, s.P99, s.P999 = out[0], out[1], out[2], out[3]
	return s
}

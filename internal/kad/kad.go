package kad

import (
	"fmt"
	"sort"

	"repro/internal/runtime"
)

// Config tunes a Kademlia deployment.
type Config struct {
	// K is the bucket size and the store replication factor (the paper's
	// k, classically 20).
	K int
	// Alpha is the lookup parallelism: at most α RPCs of one iterative
	// lookup are outstanding at a time.
	Alpha int
	// RPCTimeout bounds a single FIND_NODE/FIND_VALUE RPC before the
	// contact is written off as unreachable.
	RPCTimeout runtime.Time
	// LookupTimeout bounds a whole iterative operation.
	LookupTimeout runtime.Time
	// MessageBytes is the nominal size of a control message.
	MessageBytes int
}

// DefaultConfig returns the settings used in the experiments.
func DefaultConfig() Config {
	return Config{
		K:             20,
		Alpha:         3,
		RPCTimeout:    2 * runtime.Second,
		LookupTimeout: 60 * runtime.Second,
		MessageBytes:  128,
	}
}

// Contact names a remote node.
type Contact struct {
	ID   ID
	Addr runtime.Addr
}

// NilContact is the invalid contact (no bootstrap).
var NilContact = Contact{Addr: runtime.None}

// Valid reports whether the contact names a node.
func (c Contact) Valid() bool { return c.Addr != runtime.None }

// Item is a stored (key, value) pair along with its hashed id.
type Item struct {
	Key   string
	Value string
	DID   ID
}

// Result reports the outcome of a lookup or store.
type Result struct {
	OK    bool
	Key   string
	Value string
	// Hops is the iteration depth of the contact that produced the answer:
	// 1 for a contact already in the origin's buckets, +1 per learned-from
	// round. The iterative analogue of recursive route length.
	Hops    int
	Latency runtime.Time
}

// Network owns a set of Kademlia nodes running over one runtime.
type Network struct {
	rt  runtime.Runtime
	Cfg Config

	nodes map[runtime.Addr]*Node
	next  runtime.Addr
}

// NewNetwork creates an empty Kademlia deployment.
func NewNetwork(rt runtime.Runtime, cfg Config) *Network {
	d := DefaultConfig()
	if cfg.K <= 0 {
		cfg.K = d.K
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = d.Alpha
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = d.RPCTimeout
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = d.LookupTimeout
	}
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = d.MessageBytes
	}
	return &Network{rt: rt, Cfg: cfg, nodes: make(map[runtime.Addr]*Node)}
}

// Runtime returns the runtime the network executes on.
func (nw *Network) Runtime() runtime.Runtime { return nw.rt }

// Node returns the node at the given address, or nil.
func (nw *Network) Node(a runtime.Addr) *Node { return nw.nodes[a] }

// Nodes returns all live nodes (order unspecified).
func (nw *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		if n.alive {
			out = append(out, n)
		}
	}
	return out
}

// Node is one Kademlia participant.
type Node struct {
	ID   ID
	Addr runtime.Addr

	net   *Network
	alive bool

	// buckets[i] holds contacts whose XOR distance to this node has its
	// highest bit at position i. Front = least recently seen; a full
	// bucket evicts the front entry only when it is no longer attached,
	// otherwise the newcomer is dropped (the paper's stale-favoring LRU,
	// minus the ping round-trip the runtime answers directly).
	buckets [IDBits][]Contact

	data map[ID]Item

	// pending tracks iterative operations by tag; rpcs tracks the
	// individual outstanding RPCs feeding them.
	pending map[uint64]*lookupState
	rpcs    map[uint64]*rpcState
	nextTag uint64
}

// lookupState is one iterative FIND_NODE/FIND_VALUE in flight.
type lookupState struct {
	target    ID
	findValue bool
	key       string
	start     runtime.Time
	// short is the shortlist, sorted by XOR distance to target.
	short    []shortEntry
	queried  map[runtime.Addr]bool
	inflight int
	done     func(Result)
	// onNodes fires with the k closest responded contacts when a
	// FIND_NODE converges (store placement).
	onNodes func([]Contact)
	timeout runtime.Handle
}

// shortEntry is one shortlist candidate plus its iteration depth and fate.
type shortEntry struct {
	c         Contact
	depth     int
	responded bool
	failed    bool
}

// rpcState correlates one outstanding RPC with its lookup.
type rpcState struct {
	tag   uint64
	to    Contact
	depth int
	timer runtime.Handle
}

// Messages. Every message carries the sender's contact so receivers refresh
// their buckets from real traffic, per the paper.
type (
	findNodeReq struct {
		From   Contact
		Target ID
		RPC    uint64
	}
	findNodeResp struct {
		From    Contact
		RPC     uint64
		Closest []Contact
	}
	findValueReq struct {
		From   Contact
		Target ID
		RPC    uint64
	}
	findValueResp struct {
		From    Contact
		RPC     uint64
		Found   bool
		Value   string
		Closest []Contact
	}
	storeMsg struct {
		From Contact
		It   Item
	}
)

// CreateNode provisions a node on the given physical host and joins it
// through the bootstrap contact (pass NilContact for the first node).
func (nw *Network) CreateNode(id ID, host int, capacity float64, bootstrap Contact) *Node {
	addr := nw.next
	nw.next++
	n := &Node{
		ID:      id,
		Addr:    addr,
		net:     nw,
		alive:   true,
		data:    make(map[ID]Item),
		pending: make(map[uint64]*lookupState),
		rpcs:    make(map[uint64]*rpcState),
	}
	nw.nodes[addr] = n
	nw.rt.Attach(addr, runtime.Endpoint{Host: host, Capacity: capacity}, runtime.HandlerFunc(n.recv))
	if bootstrap.Valid() && bootstrap.Addr != addr {
		n.touch(bootstrap)
		// Iterative lookup of our own id populates the buckets along the
		// path and announces us to our closest neighbors (§2.3 join).
		n.startLookup(id, false, "", nil, nil)
	}
	return n
}

// Alive reports whether the node is still participating.
func (n *Node) Alive() bool { return n.alive }

// NumItems returns the number of stored items.
func (n *Node) NumItems() int { return len(n.data) }

// NumContacts returns the total routing-table size (tests).
func (n *Node) NumContacts() int {
	total := 0
	for i := range n.buckets {
		total += len(n.buckets[i])
	}
	return total
}

func (n *Node) self() Contact { return Contact{ID: n.ID, Addr: n.Addr} }

func (n *Node) send(to runtime.Addr, msg any) {
	n.net.rt.Send(n.Addr, to, n.net.Cfg.MessageBytes, msg)
}

func (n *Node) newTag() uint64 {
	n.nextTag++
	return n.nextTag
}

// touch records traffic from a contact: move-to-back in its bucket, insert
// when there is room, and evict the least-recently-seen entry only when the
// runtime says it is gone.
func (n *Node) touch(c Contact) {
	if !c.Valid() || c.Addr == n.Addr {
		return
	}
	bi := bucketIndex(n.ID.xor(c.ID))
	if bi < 0 {
		return
	}
	b := n.buckets[bi]
	for i := range b {
		if b[i].Addr == c.Addr {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = c
			return
		}
	}
	if len(b) < n.net.Cfg.K {
		n.buckets[bi] = append(b, c)
		return
	}
	if !n.net.rt.Attached(b[0].Addr) {
		copy(b, b[1:])
		b[len(b)-1] = c
		return
	}
	// Bucket full of live contacts: per the paper, prefer the old — nodes
	// that have been up longest are likeliest to stay up.
}

// dropContact removes an unresponsive contact from its bucket.
func (n *Node) dropContact(c Contact) {
	bi := bucketIndex(n.ID.xor(c.ID))
	if bi < 0 {
		return
	}
	b := n.buckets[bi]
	for i := range b {
		if b[i].Addr == c.Addr {
			n.buckets[bi] = append(b[:i], b[i+1:]...)
			return
		}
	}
}

// closestContacts returns up to k contacts from the routing table closest to
// target, sorted by XOR distance (address-tiebroken for determinism).
func (n *Node) closestContacts(target ID, k int) []Contact {
	var all []Contact
	for i := range n.buckets {
		all = append(all, n.buckets[i]...)
	}
	sort.Slice(all, func(i, j int) bool {
		di, dj := all[i].ID.xor(target), all[j].ID.xor(target)
		if di != dj {
			return di.less(dj)
		}
		return all[i].Addr < all[j].Addr
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func (n *Node) recv(from runtime.Addr, msg any) {
	if !n.alive {
		return
	}
	switch m := msg.(type) {
	case findNodeReq:
		n.touch(m.From)
		n.send(from, findNodeResp{From: n.self(), RPC: m.RPC, Closest: n.closestContacts(m.Target, n.net.Cfg.K)})
	case findNodeResp:
		n.touch(m.From)
		n.handleResp(m.RPC, m.From, false, "", m.Closest)
	case findValueReq:
		n.touch(m.From)
		if it, ok := n.data[m.Target]; ok {
			n.send(from, findValueResp{From: n.self(), RPC: m.RPC, Found: true, Value: it.Value})
			return
		}
		n.send(from, findValueResp{From: n.self(), RPC: m.RPC, Closest: n.closestContacts(m.Target, n.net.Cfg.K)})
	case findValueResp:
		n.touch(m.From)
		n.handleResp(m.RPC, m.From, m.Found, m.Value, m.Closest)
	case storeMsg:
		n.touch(m.From)
		n.data[m.It.DID] = m.It
	default:
		panic(fmt.Sprintf("kad: unknown message %T", msg))
	}
}

// startLookup begins an iterative operation toward target. done and onNodes
// may be nil (join lookups want neither).
func (n *Node) startLookup(target ID, findValue bool, key string, done func(Result), onNodes func([]Contact)) {
	tag := n.newTag()
	ls := &lookupState{
		target:    target,
		findValue: findValue,
		key:       key,
		start:     n.net.rt.Now(),
		queried:   make(map[runtime.Addr]bool),
		done:      done,
		onNodes:   onNodes,
	}
	for _, c := range n.closestContacts(target, n.net.Cfg.K) {
		ls.short = append(ls.short, shortEntry{c: c, depth: 1})
	}
	n.pending[tag] = ls
	ls.timeout = n.net.rt.Schedule(n.net.Cfg.LookupTimeout, func() {
		n.finishLookup(tag, Result{OK: false, Key: key})
	})
	n.step(tag, ls)
}

// step issues RPCs until α are in flight or the shortlist is exhausted, and
// detects convergence.
func (n *Node) step(tag uint64, ls *lookupState) {
	for ls.inflight < n.net.Cfg.Alpha {
		e := n.nextCandidate(ls)
		if e == nil {
			break
		}
		ls.queried[e.c.Addr] = true
		ls.inflight++
		rpc := n.newTag()
		n.rpcs[rpc] = &rpcState{tag: tag, to: e.c, depth: e.depth}
		n.rpcs[rpc].timer = n.net.rt.Schedule(n.net.Cfg.RPCTimeout, func() {
			n.rpcTimeout(rpc)
		})
		if ls.findValue {
			n.send(e.c.Addr, findValueReq{From: n.self(), Target: ls.target, RPC: rpc})
		} else {
			n.send(e.c.Addr, findNodeReq{From: n.self(), Target: ls.target, RPC: rpc})
		}
	}
	if ls.inflight == 0 {
		n.converge(tag, ls)
	}
}

// nextCandidate picks the closest unqueried live shortlist entry within the
// k closest — the classic termination window: once the k closest known
// contacts have all been queried, the lookup has converged.
func (n *Node) nextCandidate(ls *lookupState) *shortEntry {
	window := 0
	for i := range ls.short {
		e := &ls.short[i]
		if e.failed {
			continue
		}
		window++
		if !ls.queried[e.c.Addr] {
			return e
		}
		if window >= n.net.Cfg.K {
			break
		}
	}
	return nil
}

// converge ends an iterative operation that ran out of work: FIND_VALUE
// without a hit fails; FIND_NODE hands the k closest responded contacts to
// the store path and succeeds.
func (n *Node) converge(tag uint64, ls *lookupState) {
	if ls.findValue {
		n.finishLookup(tag, Result{OK: false, Key: ls.key})
		return
	}
	if ls.onNodes != nil {
		var closest []Contact
		for i := range ls.short {
			if ls.short[i].responded && len(closest) < n.net.Cfg.K {
				closest = append(closest, ls.short[i].c)
			}
		}
		onNodes := ls.onNodes
		ls.onNodes = nil
		onNodes(closest)
	}
	n.finishLookup(tag, Result{OK: true, Key: ls.key})
}

// handleResp feeds one RPC response into its lookup: mark the responder,
// merge its contacts at depth+1, finish on a value hit, continue otherwise.
func (n *Node) handleResp(rpc uint64, from Contact, found bool, value string, closest []Contact) {
	rs, ok := n.rpcs[rpc]
	if !ok {
		return // RPC already timed out, or its lookup already finished
	}
	delete(n.rpcs, rpc)
	n.net.rt.Unschedule(rs.timer)
	ls, ok := n.pending[rs.tag]
	if !ok {
		return
	}
	ls.inflight--
	for i := range ls.short {
		if ls.short[i].c.Addr == from.Addr {
			ls.short[i].responded = true
		}
	}
	if found && ls.findValue {
		n.finishLookup(rs.tag, Result{OK: true, Key: ls.key, Value: value, Hops: rs.depth})
		return
	}
	for _, c := range closest {
		n.mergeShort(ls, c, rs.depth+1)
	}
	n.step(rs.tag, ls)
}

// mergeShort inserts a learned contact into the shortlist, keeping it sorted
// by XOR distance to the target (address-tiebroken) and deduplicated.
func (n *Node) mergeShort(ls *lookupState, c Contact, depth int) {
	if !c.Valid() || c.Addr == n.Addr {
		return
	}
	dc := c.ID.xor(ls.target)
	i := sort.Search(len(ls.short), func(i int) bool {
		di := ls.short[i].c.ID.xor(ls.target)
		if di != dc {
			return dc.less(di)
		}
		return c.Addr <= ls.short[i].c.Addr
	})
	if i < len(ls.short) && ls.short[i].c.Addr == c.Addr {
		return
	}
	// The same address cannot appear elsewhere in the list: a contact's
	// (id, addr) pair is stable for the life of the deployment.
	ls.short = append(ls.short, shortEntry{})
	copy(ls.short[i+1:], ls.short[i:])
	ls.short[i] = shortEntry{c: c, depth: depth}
}

// rpcTimeout writes off an unresponsive contact: out of the bucket, failed
// in the shortlist, and the lookup moves on.
func (n *Node) rpcTimeout(rpc uint64) {
	rs, ok := n.rpcs[rpc]
	if !ok {
		return
	}
	delete(n.rpcs, rpc)
	n.dropContact(rs.to)
	ls, ok := n.pending[rs.tag]
	if !ok {
		return
	}
	ls.inflight--
	for i := range ls.short {
		if ls.short[i].c.Addr == rs.to.Addr {
			ls.short[i].failed = true
		}
	}
	n.step(rs.tag, ls)
}

// finishLookup completes an iterative operation exactly once.
func (n *Node) finishLookup(tag uint64, r Result) {
	ls, ok := n.pending[tag]
	if !ok {
		return
	}
	delete(n.pending, tag)
	n.net.rt.Unschedule(ls.timeout)
	r.Latency = n.net.rt.Now() - ls.start
	if ls.done != nil {
		ls.done(r)
	}
}

// Store places a (key, value) pair on the k nodes closest to its id: an
// iterative FIND_NODE converges on the neighborhood, then STOREs fan out.
// done (optional) fires once the placement is sent.
func (n *Node) Store(key, value string, done func(Result)) {
	it := Item{Key: key, Value: value, DID: HashKey(key)}
	start := n.net.rt.Now()
	n.startLookup(it.DID, false, key, nil, func(closest []Contact) {
		stored := 0
		for _, c := range closest {
			if stored >= n.net.Cfg.K {
				break
			}
			n.send(c.Addr, storeMsg{From: n.self(), It: it})
			stored++
		}
		if len(closest) < n.net.Cfg.K && !containsSelfByDistance(closest, n, it.DID) {
			// Fewer than k known nodes: we are in the k closest ourselves.
			n.data[it.DID] = it
		}
		if done != nil {
			done(Result{OK: true, Key: key, Latency: n.net.rt.Now() - start})
		}
	})
}

// containsSelfByDistance reports whether any found contact is closer to the
// target than this node — if none are and the set is short, the node itself
// belongs to the replica set.
func containsSelfByDistance(closest []Contact, n *Node, target ID) bool {
	for _, c := range closest {
		if !Closer(n.ID, c.ID, target) {
			return true
		}
	}
	return false
}

// Lookup resolves a key via iterative FIND_VALUE and calls done with the
// result (hop depth and latency included). A timeout or a converged miss
// yields a failed Result.
func (n *Node) Lookup(key string, done func(Result)) {
	did := HashKey(key)
	if it, ok := n.data[did]; ok {
		done(Result{OK: true, Key: key, Value: it.Value, Hops: 0})
		return
	}
	n.startLookup(did, true, key, done, nil)
}

// Crash removes the node abruptly: no notifications, data lost. Peers
// discover the failure through RPC timeouts and bucket eviction.
func (n *Node) Crash() {
	if !n.alive {
		return
	}
	n.alive = false
	n.net.rt.Detach(n.Addr)
	delete(n.net.nodes, n.Addr)
}

package kad

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// swarm builds a settled Kademlia network of n nodes and returns its pieces.
func swarm(t *testing.T, n int, seed int64, cfg Config) (*sim.Engine, *Network, []*Node) {
	t.Helper()
	tc := topology.Config{
		TransitDomains: 2, TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2, StubNodesPerDomain: 12,
		ExtraTransitEdges: 2, ExtraStubEdges: 2,
		TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
	}
	topo, err := topology.GenerateTransitStub(tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	knet := NewNetwork(simnet.NewRuntime(eng, net), cfg)
	stubs := topo.StubNodes()
	var nodes []*Node
	boot := NilContact
	for i := 0; i < n; i++ {
		nd := knet.CreateNode(randID(eng), stubs[eng.Rand().Intn(len(stubs))], 1, boot)
		if !boot.Valid() {
			boot = Contact{ID: nd.ID, Addr: nd.Addr}
		}
		eng.RunUntil(eng.Now() + 200*sim.Millisecond)
		nodes = append(nodes, nd)
	}
	eng.RunUntil(eng.Now() + 10*sim.Second)
	return eng, knet, nodes
}

// randID draws a deterministic pseudo-random node id from the engine's RNG.
func randID(eng *sim.Engine) ID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], eng.Rand().Uint64())
	return HashBytes(b[:])
}

func drive(eng *sim.Engine, done *bool) {
	for !*done && eng.Step() {
	}
}

func TestBucketIndex(t *testing.T) {
	var zero ID
	if got := bucketIndex(zero); got != -1 {
		t.Fatalf("bucketIndex(0) = %d, want -1", got)
	}
	var one ID
	one[19] = 1
	if got := bucketIndex(one); got != 0 {
		t.Fatalf("bucketIndex(1) = %d, want 0", got)
	}
	var top ID
	top[0] = 0x80
	if got := bucketIndex(top); got != IDBits-1 {
		t.Fatalf("bucketIndex(msb) = %d, want %d", got, IDBits-1)
	}
	var mid ID
	mid[10] = 0x10 // bit position (20-1-10)*8 + 4 = 76
	if got := bucketIndex(mid); got != 76 {
		t.Fatalf("bucketIndex(mid) = %d, want 76", got)
	}
}

func TestCloser(t *testing.T) {
	a := HashKey("a")
	b := HashKey("b")
	target := a
	if !Closer(a, b, target) {
		t.Fatal("a should be closest to itself")
	}
	if Closer(b, a, target) {
		t.Fatal("b cannot beat a at a's own id")
	}
}

func TestStoreAndLookup(t *testing.T) {
	eng, _, nodes := swarm(t, 40, 42, Config{K: 8, Alpha: 3})
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	for i, k := range keys {
		var done bool
		nodes[(i*7)%len(nodes)].Store(k, "v-"+k, func(Result) { done = true })
		drive(eng, &done)
		if !done {
			t.Fatalf("store of %s never completed", k)
		}
	}
	for i, k := range keys {
		var done bool
		var r Result
		nodes[(i*11)%len(nodes)].Lookup(k, func(res Result) { done = true; r = res })
		drive(eng, &done)
		if !r.OK {
			t.Fatalf("lookup of %s failed", k)
		}
		if r.Value != "v-"+k {
			t.Fatalf("lookup of %s returned %q", k, r.Value)
		}
		if r.Hops < 0 || r.Hops > 10 {
			t.Fatalf("lookup of %s took implausible hop depth %d", k, r.Hops)
		}
	}
}

func TestLookupMissingKeyFails(t *testing.T) {
	eng, _, nodes := swarm(t, 25, 7, Config{K: 8, Alpha: 3})
	var done bool
	var r Result
	nodes[3].Lookup("never-stored", func(res Result) { done = true; r = res })
	drive(eng, &done)
	if !done {
		t.Fatal("lookup never concluded")
	}
	if r.OK {
		t.Fatal("lookup of a missing key reported success")
	}
}

func TestReplicationSurvivesCrashes(t *testing.T) {
	eng, _, nodes := swarm(t, 40, 99, Config{K: 8, Alpha: 3})
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-key-%d", i)
	}
	for i, k := range keys {
		var done bool
		nodes[(i*7)%len(nodes)].Store(k, "v", func(Result) { done = true })
		drive(eng, &done)
	}
	// Crash a quarter of the swarm; with k = 8 replicas per key, nearly
	// every key must survive.
	for i := 0; i < len(nodes); i += 4 {
		nodes[i].Crash()
	}
	eng.RunUntil(eng.Now() + 10*sim.Second)
	var live []*Node
	for _, nd := range nodes {
		if nd.Alive() {
			live = append(live, nd)
		}
	}
	found := 0
	for i, k := range keys {
		var done bool
		var r Result
		live[(i*13)%len(live)].Lookup(k, func(res Result) { done = true; r = res })
		drive(eng, &done)
		if r.OK {
			found++
		}
	}
	if found < len(keys)*9/10 {
		t.Fatalf("only %d/%d keys survived a 25%% crash wave", found, len(keys))
	}
}

func TestBucketLRUEviction(t *testing.T) {
	eng := sim.New(1)
	tc := topology.Config{
		TransitDomains: 1, TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 2, StubNodesPerDomain: 8,
		ExtraTransitEdges: 1, ExtraStubEdges: 1,
		TransitScale: 10, BaseLatency: 500, LatencyPerUnit: 20000,
	}
	topo, err := topology.GenerateTransitStub(tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	knet := NewNetwork(simnet.NewRuntime(eng, net), Config{K: 2, Alpha: 1})
	stubs := topo.StubNodes()
	n := knet.CreateNode(HashBytes([]byte("self")), stubs[0], 1, NilContact)

	// Three contacts landing in the same bucket as each other (far half of
	// the space relative to self): with K=2 the third insert must evict
	// only if the least-recently-seen entry is detached.
	mk := func(name string, attach bool) Contact {
		id := HashBytes([]byte(name))
		// Force the top bit to differ from self so all land in bucket 159.
		id[0] = ^n.ID[0]
		addr := knet.next
		knet.next++
		if attach {
			knet.rt.Attach(addr, runtime.Endpoint{Host: stubs[1], Capacity: 1},
				runtime.HandlerFunc(func(runtime.Addr, any) {}))
		}
		return Contact{ID: id, Addr: addr}
	}
	a := mk("a", true)
	b := mk("b", true)
	c := mk("c", true)
	n.touch(a)
	n.touch(b)
	n.touch(c) // bucket full, a is live: newcomer dropped
	bi := bucketIndex(n.ID.xor(a.ID))
	if len(n.buckets[bi]) != 2 || n.buckets[bi][0].Addr != a.Addr {
		t.Fatalf("live LRU head should survive; bucket = %v", n.buckets[bi])
	}
	// Detach a; now c evicts it.
	knet.rt.Detach(a.Addr)
	n.touch(c)
	if len(n.buckets[bi]) != 2 || n.buckets[bi][0].Addr != b.Addr || n.buckets[bi][1].Addr != c.Addr {
		t.Fatalf("dead LRU head should be evicted; bucket = %v", n.buckets[bi])
	}
	// Touching b moves it to the back.
	n.touch(c)
	n.touch(b)
	if n.buckets[bi][1].Addr != b.Addr {
		t.Fatalf("touch should move contact to most-recent slot; bucket = %v", n.buckets[bi])
	}
}

func TestLookupDeterminism(t *testing.T) {
	run := func() []int {
		eng, _, nodes := swarm(t, 30, 5, Config{K: 8, Alpha: 3})
		keys := []string{"d0", "d1", "d2", "d3", "d4"}
		for i, k := range keys {
			var done bool
			nodes[(i*7)%len(nodes)].Store(k, "v", func(Result) { done = true })
			drive(eng, &done)
		}
		var hops []int
		for i, k := range keys {
			var done bool
			var r Result
			nodes[(i*11)%len(nodes)].Lookup(k, func(res Result) { done = true; r = res })
			drive(eng, &done)
			hops = append(hops, r.Hops)
		}
		return hops
	}
	h1, h2 := run(), run()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("non-deterministic hop counts: %v vs %v", h1, h2)
		}
	}
}

// Package kad implements a Kademlia node (Maymounkov & Mazières 2002) over
// the repository's runtime.Transport abstraction: 160-bit XOR ids, k-buckets
// with least-recently-seen eviction, and α-parallel iterative FIND_NODE /
// FIND_VALUE lookups.
//
// It is the third baseline next to internal/chord and internal/gnutella —
// the industry-standard comparator (BitTorrent Mainline DHT, IPFS) for the
// hybrid system's lookup cost and churn resilience — and the reference
// design for the α-probe and path-cache ports in internal/core (see
// Config.LookupAlpha and Config.PathCache there).
package kad

import (
	"crypto/sha1"
	"math/bits"
)

// IDBits is the identifier width; k-buckets cover distances 2^0 .. 2^159.
const IDBits = 160

// ID is a 160-bit Kademlia identifier, big-endian. Node ids and key ids
// share the space; closeness is XOR distance.
type ID [20]byte

// HashKey derives the id of a data key.
func HashKey(key string) ID { return sha1.Sum([]byte(key)) }

// HashBytes derives an id from arbitrary bytes (node ids in tests and the
// experiment harness).
func HashBytes(b []byte) ID { return sha1.Sum(b) }

// xor returns the XOR distance between two ids.
func (a ID) xor(b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// less compares two ids as big-endian integers.
func (a ID) less(b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Closer reports whether a is strictly closer to target than b in XOR
// distance.
func Closer(a, b, target ID) bool {
	return a.xor(target).less(b.xor(target))
}

// bucketIndex returns the k-bucket index for a contact at XOR distance d
// from self: the position of the highest set bit (0 = adjacent ids,
// IDBits-1 = opposite halves of the space), or -1 for distance zero (self).
func bucketIndex(d ID) int {
	for i := 0; i < len(d); i++ {
		if d[i] != 0 {
			return (len(d)-1-i)*8 + (7 - bits.LeadingZeros8(d[i]))
		}
	}
	return -1
}

package runtime

import (
	"math"
	"testing"
)

// TestTimeString pins the rendering of Time across signs. The negative cases
// are a regression test: integer division and modulo both carry the sign in
// Go, so the naive "%d.%06d" rendered -500µs as "0.-00500s".
func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0.000000s"},
		{1, "0.000001s"},
		{999999, "0.999999s"},
		{Second, "1.000000s"},
		{Second + 1, "1.000001s"},
		{90*Second + 250*Millisecond, "90.250000s"},
		{-1, "-0.000001s"},
		{-500, "-0.000500s"},
		{-500 * Millisecond, "-0.500000s"},
		{-Second, "-1.000000s"},
		{-(3*Second + 7), "-3.000007s"},
		{math.MaxInt64, "9223372036854.775807s"},
		{math.MinInt64, "-9223372036854.775808s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// TestTimeSeconds sanity-checks the float conversion both sides of zero.
func TestTimeSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (-500 * Millisecond).Seconds(); got != -0.5 {
		t.Errorf("Seconds() = %v, want -0.5", got)
	}
}

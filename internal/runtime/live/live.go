// Package live is the concurrent implementation of runtime.Runtime: real
// goroutines, channels and time.Timer instead of a discrete-event loop. It
// exists so the exact protocol code that reproduces the paper's figures under
// internal/simnet can also run as a real in-process system (cmd/hybridnode):
// same joins, same failure detectors, same lookups, now against a wall clock
// with genuinely concurrent message delivery.
//
// # Execution model
//
// The hybrid protocol in internal/core was written for run-to-completion
// semantics: a handler or timer callback runs alone, and peers share a
// System (statistics, contact counters, the server's membership tables), so
// per-node locking is not enough. The live runtime therefore serializes all
// protocol execution behind one executor mutex — the direct analogue of the
// DES dispatch loop — while keeping everything around it concurrent:
//
//   - each attached address has a mailbox goroutine, so message delivery is
//     asynchronous, per-node FIFO, and overlapping across nodes;
//   - timers are real time.AfterFunc firings that take the executor lock
//     before running, with an epoch-free cancelled/fired flag checked under
//     the lock (a stopped timer that already won the race to fire is a no-op);
//   - external callers (cmd/hybridnode, tests) enter protocol state only
//     through Do/Await, which take the same lock.
//
// The guarantees relative to the DES runtime: per-node handler serialization
// still holds (trivially — everything is serialized), message order between a
// pair of nodes is FIFO instead of latency-sorted, timer firing order is real
// scheduler order instead of (time, seq) order, and nothing is deterministic.
// Protocol invariants (ring consistency, tree shape, data ownership) must
// hold under both; the conformance suite in internal/conformance asserts it.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/runtime"
)

// Config tunes the live runtime.
type Config struct {
	// Seed seeds the runtime's RNG. The RNG is reproducible, but overall
	// execution is not: goroutine interleaving orders the draws.
	Seed int64
	// Delay is the artificial one-way delivery delay applied to every
	// Send, modeling a network round trip on the loopback transport.
	// Zero means deliver as fast as the mailbox drains.
	Delay time.Duration
	// AwaitTimeout bounds a single Await call in wall-clock time.
	// Zero means the default of 30 seconds.
	AwaitTimeout time.Duration
}

// Runtime is a live, wall-clock implementation of runtime.Runtime.
//
// Clock, Transport, Rand and NewAddr must only be called under the execution
// guarantee — from inside a handler, a timer callback, or Do. Do, Await,
// Sleep and Close are the external entry points and may be called from any
// goroutine.
type Runtime struct {
	cfg   Config
	start time.Time

	mu     sync.Mutex // the executor lock: all protocol execution holds it
	rng    *rand.Rand
	nodes  map[runtime.Addr]*node
	next   runtime.Addr
	closed bool

	// delayed tracks in-flight cfg.Delay sends so Close can cancel them:
	// without the ledger a firing scheduled before Close would touch the
	// nodes map of a runtime that has already shut down.
	delayed    map[uint64]*time.Timer
	delayedSeq uint64

	wg sync.WaitGroup // live mailbox goroutines
}

// serverAddr is the bootstrap address handed to the first System on this
// runtime; NewAddr starts right above it, mirroring the DES runtime.
const serverAddr runtime.Addr = 0

// node is one attached address: a handler plus its mailbox. The queue has
// its own tiny lock so senders holding the executor lock never block on a
// mailbox goroutine that is waiting for the executor lock.
type node struct {
	h runtime.Handler

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []envelope
	closed bool
}

type envelope struct {
	from runtime.Addr
	msg  any
}

// timer is one scheduled firing. All fields are guarded by the runtime's
// executor lock.
type timer struct {
	t         *time.Timer
	fn        func()
	cancelled bool
	fired     bool
}

// New creates a live runtime.
func New(cfg Config) *Runtime {
	if cfg.AwaitTimeout <= 0 {
		cfg.AwaitTimeout = 30 * time.Second
	}
	return &Runtime{
		cfg:     cfg,
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[runtime.Addr]*node),
		next:    serverAddr + 1,
		delayed: make(map[uint64]*time.Timer),
	}
}

// Now returns the wall-clock time since the runtime was created.
func (r *Runtime) Now() runtime.Time {
	return runtime.Time(time.Since(r.start) / time.Microsecond)
}

// Schedule arms a wall-clock timer. The callback takes the executor lock
// before running, so it has the same isolation as a message handler.
func (r *Runtime) Schedule(d runtime.Time, fn func()) runtime.Handle {
	if d < 0 {
		panic(fmt.Sprintf("live: negative delay %v", d))
	}
	if r.closed {
		return runtime.Handle{}
	}
	tm := &timer{fn: fn}
	tm.t = time.AfterFunc(time.Duration(d)*time.Microsecond, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if tm.cancelled || r.closed {
			return
		}
		tm.fired = true
		tm.fn()
	})
	return runtime.MakeHandle(tm, 0)
}

// Unschedule cancels a pending firing. A firing that already won the race
// (its goroutine holds or will get the executor lock first) reports false.
func (r *Runtime) Unschedule(h runtime.Handle) bool {
	tm, ok := h.Impl().(*timer)
	if !ok || tm.cancelled || tm.fired {
		return false
	}
	tm.cancelled = true
	tm.t.Stop()
	return true
}

// Scheduled reports whether the firing is still pending.
func (r *Runtime) Scheduled(h runtime.Handle) bool {
	tm, ok := h.Impl().(*timer)
	return ok && !tm.cancelled && !tm.fired
}

// Attach registers a handler and starts its mailbox goroutine. The endpoint
// is recorded for interface compatibility; the loopback transport has no
// physical placement, so Host and Capacity do not shape delivery.
func (r *Runtime) Attach(a runtime.Addr, _ runtime.Endpoint, h runtime.Handler) {
	if r.closed {
		return
	}
	if old, ok := r.nodes[a]; ok {
		old.close()
	}
	n := &node{h: h}
	n.qcond = sync.NewCond(&n.qmu)
	r.nodes[a] = n
	r.wg.Add(1)
	go r.deliverLoop(a, n)
}

// Detach removes an address; its mailbox goroutine drains out and queued
// messages to it are dropped, exactly like packets to a crashed host.
func (r *Runtime) Detach(a runtime.Addr) {
	if n, ok := r.nodes[a]; ok {
		n.close()
		delete(r.nodes, a)
	}
}

// Attached reports whether the address has a live handler.
func (r *Runtime) Attached(a runtime.Addr) bool {
	_, ok := r.nodes[a]
	return ok
}

// Send enqueues msg for delivery. Size only matters to transports that model
// serialization delay; the loopback transport ignores it. With cfg.Delay set,
// delivery is deferred by that much wall time, and the destination is
// resolved when the delay fires, not when Send is called: an address that
// detaches and re-attaches while the message is in flight is live again and
// must receive it, exactly as a packet addressed to a rebooted host would
// arrive. (Capturing the *node* at send time silently dropped such messages
// into the old incarnation's closed mailbox.)
func (r *Runtime) Send(from, to runtime.Addr, size int, msg any) {
	if r.cfg.Delay > 0 {
		// No liveness check here: with a delay the destination's liveness
		// is judged at delivery time, like any packet in flight.
		seq := r.delayedSeq
		r.delayedSeq++
		r.delayed[seq] = time.AfterFunc(r.cfg.Delay, func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			delete(r.delayed, seq)
			if r.closed {
				return
			}
			if n, ok := r.nodes[to]; ok {
				n.enqueue(from, msg)
			}
		})
		return
	}
	if n, ok := r.nodes[to]; ok {
		n.enqueue(from, msg)
	}
}

// SendLocal enqueues a self-message; it is delivered like any other, on a
// fresh mailbox turn.
func (r *Runtime) SendLocal(a runtime.Addr, msg any) {
	if n, ok := r.nodes[a]; ok {
		n.enqueue(a, msg)
	}
}

// deliverLoop is a node's mailbox goroutine: pop one envelope, take the
// executor lock, deliver, repeat. It must never hold the queue lock while
// taking the executor lock, or a sender holding the executor lock would
// deadlock against it.
func (r *Runtime) deliverLoop(a runtime.Addr, n *node) {
	defer r.wg.Done()
	for {
		n.qmu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.qcond.Wait()
		}
		if n.closed {
			n.qmu.Unlock()
			return
		}
		env := n.queue[0]
		n.queue = n.queue[1:]
		n.qmu.Unlock()

		r.mu.Lock()
		// Re-check liveness under the executor lock: the node may have
		// been detached between dequeue and delivery.
		if cur, ok := r.nodes[a]; ok && cur == n && !r.closed {
			n.h.Recv(env.from, env.msg)
		}
		r.mu.Unlock()
	}
}

func (n *node) enqueue(from runtime.Addr, msg any) {
	n.qmu.Lock()
	if !n.closed {
		n.queue = append(n.queue, envelope{from: from, msg: msg})
		n.qcond.Signal()
	}
	n.qmu.Unlock()
}

func (n *node) close() {
	n.qmu.Lock()
	n.closed = true
	n.queue = nil
	n.qcond.Broadcast()
	n.qmu.Unlock()
}

// Rand returns the runtime's RNG (use only under the execution guarantee).
func (r *Runtime) Rand() runtime.RNG { return r.rng }

// NewAddr allocates the next peer address: 1, 2, … — the same sequence the
// DES runtime produces, which the conformance tests rely on to compare runs.
func (r *Runtime) NewAddr() runtime.Addr {
	a := r.next
	r.next++
	return a
}

// ServerAddr returns the bootstrap server's address.
func (r *Runtime) ServerAddr() runtime.Addr { return serverAddr }

// Placement returns nil: the loopback transport has no physical model, so
// the protocol falls back to locality-free landmark and id assignment.
func (r *Runtime) Placement() runtime.Placement { return nil }

// Do runs fn under the executor lock, serialized against every handler and
// timer callback. It is the only way external code may touch protocol state.
func (r *Runtime) Do(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// Await polls cond under the executor lock until it reports true, yielding
// between polls so mailboxes and timers can run. It fails after the
// configured wall-clock timeout.
func (r *Runtime) Await(cond func() bool) error {
	deadline := time.Now().Add(r.cfg.AwaitTimeout)
	for {
		r.mu.Lock()
		ok := cond()
		r.mu.Unlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("live: condition not reached within %v", r.cfg.AwaitTimeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Sleep blocks the caller for d of wall-clock time while the runtime keeps
// executing. It must not be called while holding the executor lock (i.e.
// from inside Do or a handler).
func (r *Runtime) Sleep(d runtime.Time) {
	time.Sleep(time.Duration(d) * time.Microsecond)
}

// Close shuts the runtime down: every mailbox goroutine exits, pending timer
// firings become no-ops, and every delayed send still in flight is cancelled
// (a firing that already won the race to its AfterFunc observes the closed
// flag under the lock and delivers nothing). Close blocks until the
// mailboxes are gone.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for seq, t := range r.delayed {
		t.Stop()
		delete(r.delayed, seq)
	}
	for a, n := range r.nodes {
		n.close()
		delete(r.nodes, a)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

var _ runtime.Runtime = (*Runtime)(nil)

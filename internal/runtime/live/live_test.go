package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
)

// recorder is a test handler that appends every delivery under its own lock.
type recorder struct {
	mu   sync.Mutex
	got  []any
	from []runtime.Addr
}

func (c *recorder) Recv(from runtime.Addr, msg any) {
	c.mu.Lock()
	c.got = append(c.got, msg)
	c.from = append(c.from, from)
	c.mu.Unlock()
}

func (c *recorder) snapshot() []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]any(nil), c.got...)
}

// TestDelayedSendSurvivesReattach pins the delivery-time resolution of
// delayed sends: a message in flight to an address that detaches and
// re-attaches before the delay fires must reach the new incarnation. The old
// code captured the *node at send time, so the message died in the closed
// mailbox of the first incarnation even though the address was live again.
func TestDelayedSendSurvivesReattach(t *testing.T) {
	r := New(Config{Delay: 5 * time.Millisecond})
	defer r.Close()

	first, second := &recorder{}, &recorder{}
	const dst runtime.Addr = 7
	r.Do(func() {
		r.Attach(dst, runtime.Endpoint{}, first)
		r.Send(1, dst, 0, "in-flight")
		r.Detach(dst)
		r.Attach(dst, runtime.Endpoint{}, second)
	})

	deadline := time.Now().Add(2 * time.Second)
	for len(second.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("delayed send never reached the re-attached address; first got %v", first.snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	if got := second.snapshot(); len(got) != 1 || got[0] != "in-flight" {
		t.Fatalf("re-attached handler got %v, want [in-flight]", got)
	}
	if got := first.snapshot(); len(got) != 0 {
		t.Fatalf("detached incarnation got %v, want nothing", got)
	}
}

// TestDelayedSendToDetachedDropped: with no re-attach, the firing finds no
// node and the message is dropped silently, like a packet to a dead host.
func TestDelayedSendToDetachedDropped(t *testing.T) {
	r := New(Config{Delay: 2 * time.Millisecond})
	defer r.Close()

	rec := &recorder{}
	const dst runtime.Addr = 3
	r.Do(func() {
		r.Attach(dst, runtime.Endpoint{}, rec)
		r.Send(1, dst, 0, "doomed")
		r.Detach(dst)
	})
	time.Sleep(20 * time.Millisecond)
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("detached address received %v", got)
	}
	r.mu.Lock()
	pending := len(r.delayed)
	r.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d delayed sends still in the ledger after firing", pending)
	}
}

// TestCloseCancelsDelayedSends pins Close's accounting of pending delayed
// sends: the ledger drains, nothing is delivered after Close, and a firing
// racing Close observes the closed flag instead of touching freed state.
func TestCloseCancelsDelayedSends(t *testing.T) {
	r := New(Config{Delay: 10 * time.Millisecond})
	rec := &recorder{}
	const dst runtime.Addr = 2
	r.Do(func() {
		r.Attach(dst, runtime.Endpoint{}, rec)
		for i := 0; i < 50; i++ {
			r.Send(1, dst, 0, i)
		}
	})
	r.mu.Lock()
	pending := len(r.delayed)
	r.mu.Unlock()
	if pending != 50 {
		t.Fatalf("ledger holds %d delayed sends before Close, want 50", pending)
	}
	r.Close()
	r.mu.Lock()
	pending = len(r.delayed)
	r.mu.Unlock()
	if pending != 0 {
		t.Fatalf("ledger holds %d delayed sends after Close, want 0", pending)
	}
	time.Sleep(30 * time.Millisecond) // past the delay: any stray firing would land here
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("messages delivered after Close: %v", got)
	}
}

// TestDelayedSendCloseRace hammers delayed sends from one goroutine while
// another closes the runtime; the race detector is the assertion.
func TestDelayedSendCloseRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		r := New(Config{Delay: 100 * time.Microsecond})
		rec := &recorder{}
		r.Do(func() { r.Attach(1, runtime.Endpoint{}, rec) })
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Do(func() {
					if !r.closed {
						r.Send(2, 1, 0, i)
					}
				})
			}
		}()
		time.Sleep(time.Duration(iter%5) * 50 * time.Microsecond)
		r.Close()
		wg.Wait()
	}
}

// TestMailboxFIFOUnderConcurrentSenders asserts the per-pair FIFO guarantee
// with zero delay: each sender's messages arrive at the shared receiver in
// send order, even with many senders interleaving under the executor lock.
func TestMailboxFIFOUnderConcurrentSenders(t *testing.T) {
	r := New(Config{})
	defer r.Close()

	const (
		senders = 8
		perSend = 200
		dst     = runtime.Addr(100)
	)
	rec := &recorder{}
	r.Do(func() { r.Attach(dst, runtime.Endpoint{}, rec) })

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := runtime.Addr(s + 1)
			for i := 0; i < perSend; i++ {
				r.Do(func() { r.Send(from, dst, 0, i) })
			}
		}(s)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.mu.Lock()
		n := len(rec.got)
		rec.mu.Unlock()
		if n == senders*perSend {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d messages delivered", n, senders*perSend)
		}
		time.Sleep(time.Millisecond)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	next := make(map[runtime.Addr]int)
	for i, m := range rec.got {
		from := rec.from[i]
		seq := m.(int)
		if seq != next[from] {
			t.Fatalf("sender %d: message %d arrived when %d was expected (position %d)", from, seq, next[from], i)
		}
		next[from]++
	}
}

// TestDetachDropsQueuedMessages: with zero delay the message is enqueued into
// the current incarnation's mailbox, so a detach between enqueue and delivery
// drops it — it was in flight when the host crashed — and a re-attached
// incarnation must not see it.
func TestDetachDropsQueuedMessages(t *testing.T) {
	r := New(Config{})
	defer r.Close()

	first, second := &recorder{}, &recorder{}
	const dst runtime.Addr = 9
	r.Do(func() {
		r.Attach(dst, runtime.Endpoint{}, first)
		// The mailbox goroutine cannot deliver while we hold the executor
		// lock, so the detach below is guaranteed to beat delivery.
		r.Send(1, dst, 0, "crashing")
		r.Detach(dst)
		r.Attach(dst, runtime.Endpoint{}, second)
	})
	time.Sleep(10 * time.Millisecond)
	if got := first.snapshot(); len(got) != 0 {
		t.Fatalf("first incarnation got %v after detach", got)
	}
	if got := second.snapshot(); len(got) != 0 {
		t.Fatalf("second incarnation got %v; zero-delay sends bind at send time", got)
	}
}

package net

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The wire envelope. Every frame on a cluster connection is:
//
//	offset  size  field
//	0       2     Type   — codec message code, or a ctrl* code (>= 0xFF00)
//	2       8     From   — sender address (int64; -1 for control frames)
//	10      8     To     — destination address (int64; -1 for control frames)
//	18      8     MsgID  — request-correlation id; 0 on one-way frames
//	26      4     Len    — payload length
//	30      Len   payload
//
// all integers little-endian. Protocol messages are one-way datagrams (the
// transport contract is asynchronous and unreliable), so their MsgID is 0.
// Control frames — the bootstrap broker dialogue — are request/response:
// the requester stamps a fresh MsgID, parks a waiter channel in its
// inflight map, and the connection's reader delivers the matching response.
const (
	headerLen  = 30
	maxPayload = 16 << 20
)

// Control frame types. Codes at or above ctrlBase never collide with codec
// codes (codec codes are dense from 1 and far below 0xFF00).
const (
	ctrlBase uint16 = 0xFF00

	// ctrlAllocReq asks the bootstrap for a fresh peer address (JOIN-ALLOC).
	// Empty payload; the response carries the address. Addresses are handed
	// out densely from one counter, preserving the Addr.Index contract
	// across every process in the cluster.
	ctrlAllocReq  uint16 = 0xFF01
	ctrlAllocResp uint16 = 0xFF02

	// ctrlRegisterReq announces "address A is served at endpoint E" to the
	// bootstrap's directory. Payload: varint addr, uvarint len, endpoint.
	ctrlRegisterReq  uint16 = 0xFF03
	ctrlRegisterResp uint16 = 0xFF04

	// ctrlResolveReq asks the bootstrap which endpoint serves an address.
	// Payload: varint addr. Response: 1 byte found, uvarint len, endpoint.
	ctrlResolveReq  uint16 = 0xFF05
	ctrlResolveResp uint16 = 0xFF06

	// ctrlAttachedReq asks the bootstrap whether an address is currently
	// attached anywhere in the cluster. Payload: varint addr. Response:
	// 1 byte.
	ctrlAttachedReq  uint16 = 0xFF07
	ctrlAttachedResp uint16 = 0xFF08

	// ctrlDetach reports a local detach to the bootstrap's directory.
	// One-way (MsgID 0). Payload: varint addr.
	ctrlDetach uint16 = 0xFF09
)

type envelope struct {
	Type    uint16
	From    int64
	To      int64
	MsgID   uint64
	Payload []byte
}

// appendEnvelope serializes the frame into buf.
func appendEnvelope(buf []byte, env envelope) []byte {
	var h [headerLen]byte
	binary.LittleEndian.PutUint16(h[0:2], env.Type)
	binary.LittleEndian.PutUint64(h[2:10], uint64(env.From))
	binary.LittleEndian.PutUint64(h[10:18], uint64(env.To))
	binary.LittleEndian.PutUint64(h[18:26], env.MsgID)
	binary.LittleEndian.PutUint32(h[26:30], uint32(len(env.Payload)))
	buf = append(buf, h[:]...)
	return append(buf, env.Payload...)
}

// readEnvelope reads one frame. io.EOF on a clean boundary means the peer
// closed; a partial header surfaces as ErrUnexpectedEOF.
func readEnvelope(r io.Reader) (envelope, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return envelope{}, err
	}
	env := envelope{
		Type:  binary.LittleEndian.Uint16(h[0:2]),
		From:  int64(binary.LittleEndian.Uint64(h[2:10])),
		To:    int64(binary.LittleEndian.Uint64(h[10:18])),
		MsgID: binary.LittleEndian.Uint64(h[18:26]),
	}
	n := binary.LittleEndian.Uint32(h[26:30])
	if n > maxPayload {
		return envelope{}, fmt.Errorf("net: frame payload %d exceeds limit", n)
	}
	if n > 0 {
		env.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, env.Payload); err != nil {
			return envelope{}, err
		}
	}
	return env, nil
}

// Control payload helpers.

func addrPayload(a int64) []byte {
	return binary.AppendVarint(nil, a)
}

func readAddrPayload(b []byte) (int64, error) {
	a, n := binary.Varint(b)
	if n <= 0 {
		return 0, fmt.Errorf("net: bad addr payload")
	}
	return a, nil
}

func registerPayload(a int64, endpoint string) []byte {
	b := binary.AppendVarint(nil, a)
	b = binary.AppendUvarint(b, uint64(len(endpoint)))
	return append(b, endpoint...)
}

func readRegisterPayload(b []byte) (int64, string, error) {
	a, n := binary.Varint(b)
	if n <= 0 {
		return 0, "", fmt.Errorf("net: bad register payload")
	}
	b = b[n:]
	l, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < l {
		return 0, "", fmt.Errorf("net: bad register endpoint")
	}
	return a, string(b[w : w+int(l)]), nil
}

func resolvePayload(found bool, endpoint string) []byte {
	b := make([]byte, 1, 1+len(endpoint)+2)
	if found {
		b[0] = 1
	}
	b = binary.AppendUvarint(b, uint64(len(endpoint)))
	return append(b, endpoint...)
}

func readResolvePayload(b []byte) (bool, string, error) {
	if len(b) < 1 {
		return false, "", fmt.Errorf("net: bad resolve payload")
	}
	found := b[0] != 0
	b = b[1:]
	l, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < l {
		return false, "", fmt.Errorf("net: bad resolve endpoint")
	}
	return found, string(b[w : w+int(l)]), nil
}

func boolPayload(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

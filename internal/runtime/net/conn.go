package net

import (
	"bufio"
	nnet "net"
	"sync"
	"time"
)

// wconn is one cluster connection: a TCP conn plus a write lock (frames from
// concurrent writers must not interleave) and, on the bootstrap side, the
// list of addresses registered through it. That list is the cluster's
// failure detector of last resort: when the connection dies, every address
// the remote process registered over it is marked detached in the directory,
// exactly as the remote's peers stopped existing when the process did.
type wconn struct {
	c  nnet.Conn
	br *bufio.Reader

	wmu sync.Mutex

	regMu sync.Mutex
	reg   []int64
}

func newWconn(c nnet.Conn) *wconn {
	return &wconn{c: c, br: bufio.NewReaderSize(c, 32<<10)}
}

// write frames and sends one envelope. A single deadline-bounded write per
// frame: the receiver's reader never blocks (it only decodes and enqueues),
// so a stalled write means a dead or wedged peer, and failing the send is
// the correct unreliable-transport outcome.
func (c *wconn) write(env envelope, timeout time.Duration) error {
	buf := appendEnvelope(nil, env)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.c.SetWriteDeadline(time.Now().Add(timeout))
	_, err := c.c.Write(buf)
	return err
}

// addReg records an address registered via this connection.
func (c *wconn) addReg(a int64) {
	c.regMu.Lock()
	c.reg = append(c.reg, a)
	c.regMu.Unlock()
}

// takeReg returns the addresses registered via this connection.
func (c *wconn) takeReg() []int64 {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	out := c.reg
	c.reg = nil
	return out
}

// directory is the bootstrap's authoritative addr → endpoint map (and every
// other process's resolution cache). Endpoints are immutable once
// registered — addresses are never reused across processes — so cached
// entries cannot go stale; only liveness changes, and only the bootstrap's
// copy tracks it.
type directory struct {
	mu      sync.Mutex
	entries map[int64]*dirEntry
}

type dirEntry struct {
	endpoint string
	alive    bool
}

func newDirectory() *directory {
	return &directory{entries: make(map[int64]*dirEntry)}
}

func (d *directory) set(a int64, endpoint string, alive bool) {
	d.mu.Lock()
	d.entries[a] = &dirEntry{endpoint: endpoint, alive: alive}
	d.mu.Unlock()
}

func (d *directory) endpoint(a int64) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[a]; ok {
		return e.endpoint, true
	}
	return "", false
}

func (d *directory) alive(a int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[a]
	return ok && e.alive
}

func (d *directory) markDead(a int64) {
	d.mu.Lock()
	if e, ok := d.entries[a]; ok {
		e.alive = false
	}
	d.mu.Unlock()
}

func (d *directory) markDeadAll(addrs []int64) {
	d.mu.Lock()
	for _, a := range addrs {
		if e, ok := d.entries[a]; ok {
			e.alive = false
		}
	}
	d.mu.Unlock()
}

// liveAt returns the live addresses registered at the given endpoint, for
// re-announcing after a reconnect to the bootstrap.
func (d *directory) liveAt(endpoint string) []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int64
	for a, e := range d.entries {
		if e.alive && e.endpoint == endpoint {
			out = append(out, a)
		}
	}
	return out
}

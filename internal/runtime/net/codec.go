package net

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Codec is the wire registry for protocol messages: it assigns each
// registered Go type a dense uint16 code and encodes/decodes values with a
// reflection-driven compact binary format.
//
// The format is schema-implicit: both ends register the same types in the
// same order (the contract core.WireMessages provides), so no type
// descriptors travel on the wire — unlike gob, a message costs exactly its
// field payload. Supported field kinds are the closed set the protocol
// messages use: booleans, all fixed-size integer kinds (signed ints are
// zigzag-varint, unsigned are uvarint), float64, strings, structs, and
// slices of any supported kind. Named types (runtime.Addr, idspace.ID,
// core.Role, runtime.Time) encode as their underlying kind.
//
// Registration validates the full type tree eagerly, so an unencodable
// message type fails at startup, not mid-run on a live socket.
type Codec struct {
	types  []reflect.Type
	byType map[reflect.Type]uint16
}

// NewCodec builds a codec from prototype values, assigning codes 1..N in
// argument order. The order is part of the wire contract: every process in a
// cluster must build its codec from the same list.
func NewCodec(protos ...any) (*Codec, error) {
	c := &Codec{byType: make(map[reflect.Type]uint16, len(protos))}
	for _, p := range protos {
		t := reflect.TypeOf(p)
		if t == nil {
			return nil, fmt.Errorf("net: nil codec prototype")
		}
		if _, dup := c.byType[t]; dup {
			return nil, fmt.Errorf("net: duplicate codec prototype %v", t)
		}
		if err := validateWireType(t, 0); err != nil {
			return nil, fmt.Errorf("net: prototype %v: %w", t, err)
		}
		c.types = append(c.types, t)
		c.byType[t] = uint16(len(c.types)) // codes start at 1
	}
	return c, nil
}

// validateWireType checks every reachable field kind is encodable.
func validateWireType(t reflect.Type, depth int) error {
	if depth > 16 {
		return fmt.Errorf("type nesting too deep (cycle?)")
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float64, reflect.String:
		return nil
	case reflect.Slice:
		return validateWireType(t.Elem(), depth+1)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("field %s.%s is unexported", t, f.Name)
			}
			if err := validateWireType(f.Type, depth+1); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported wire kind %v", t.Kind())
	}
}

// Code returns the wire code for a message, or 0 if its type is unregistered.
func (c *Codec) Code(msg any) uint16 { return c.byType[reflect.TypeOf(msg)] }

// Encode serializes a registered message, returning its code and payload.
func (c *Codec) Encode(msg any) (uint16, []byte, error) {
	code, ok := c.byType[reflect.TypeOf(msg)]
	if !ok {
		return 0, nil, fmt.Errorf("net: unregistered wire type %T", msg)
	}
	return code, appendValue(nil, reflect.ValueOf(msg)), nil
}

// Decode reconstructs the message for a code from its payload. The returned
// value has the registered concrete type (not a pointer), so receiver-side
// type switches see exactly what an in-process transport would deliver.
func (c *Codec) Decode(code uint16, payload []byte) (any, error) {
	if code == 0 || int(code) > len(c.types) {
		return nil, fmt.Errorf("net: unknown wire code %d", code)
	}
	v := reflect.New(c.types[code-1]).Elem()
	rest, err := readValue(payload, v)
	if err != nil {
		return nil, fmt.Errorf("net: decoding %v: %w", c.types[code-1], err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("net: %d trailing bytes after %v", len(rest), c.types[code-1])
	}
	return v.Interface(), nil
}

func appendValue(buf []byte, v reflect.Value) []byte {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(buf, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.AppendUvarint(buf, v.Uint())
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case reflect.Slice:
		n := v.Len()
		buf = binary.AppendUvarint(buf, uint64(n))
		for i := 0; i < n; i++ {
			buf = appendValue(buf, v.Index(i))
		}
		return buf
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			buf = appendValue(buf, v.Field(i))
		}
		return buf
	default:
		panic(fmt.Sprintf("net: unreachable wire kind %v (validated at registration)", v.Kind()))
	}
}

// maxWireSlice bounds decoded slice and string lengths; a corrupt or hostile
// length prefix must not drive an allocation by itself.
const maxWireSlice = 1 << 20

func readValue(b []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		if len(b) < 1 {
			return nil, fmt.Errorf("short buffer for bool")
		}
		v.SetBool(b[0] != 0)
		return b[1:], nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x, n := binary.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("bad varint")
		}
		if v.OverflowInt(x) {
			return nil, fmt.Errorf("varint %d overflows %v", x, v.Type())
		}
		v.SetInt(x)
		return b[n:], nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("bad uvarint")
		}
		if v.OverflowUint(x) {
			return nil, fmt.Errorf("uvarint %d overflows %v", x, v.Type())
		}
		v.SetUint(x)
		return b[n:], nil
	case reflect.Float64:
		if len(b) < 8 {
			return nil, fmt.Errorf("short buffer for float64")
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
		return b[8:], nil
	case reflect.String:
		n, w := binary.Uvarint(b)
		if w <= 0 || n > maxWireSlice || uint64(len(b)-w) < n {
			return nil, fmt.Errorf("bad string length")
		}
		v.SetString(string(b[w : w+int(n)]))
		return b[w+int(n):], nil
	case reflect.Slice:
		n, w := binary.Uvarint(b)
		if w <= 0 || n > maxWireSlice {
			return nil, fmt.Errorf("bad slice length")
		}
		b = b[w:]
		if n == 0 {
			return b, nil // leave the field nil, matching the encoded value
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		var err error
		for i := 0; i < int(n); i++ {
			if b, err = readValue(b, s.Index(i)); err != nil {
				return nil, err
			}
		}
		v.Set(s)
		return b, nil
	case reflect.Struct:
		var err error
		for i := 0; i < v.NumField(); i++ {
			if b, err = readValue(b, v.Field(i)); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unsupported wire kind %v", v.Kind())
	}
}

package net

import (
	nnet "net"
	"sync"
	"testing"
	"time"

	"repro/internal/runtime"
)

// Test message types standing in for the protocol's wire set.
type ping struct {
	Seq  int
	Note string
}

type stats struct {
	ID    uint64
	Score float64
	Refs  []ref
	Live  bool
}

type ref struct {
	ID   uint64
	Addr int
}

func testMessages() []any {
	return []any{ping{}, stats{}}
}

// --- Codec ------------------------------------------------------------------

func TestCodecRoundTrip(t *testing.T) {
	c, err := NewCodec(testMessages()...)
	if err != nil {
		t.Fatal(err)
	}
	cases := []any{
		ping{Seq: 0, Note: ""},
		ping{Seq: -42, Note: "negative varints zigzag"},
		stats{ID: 1<<63 + 17, Score: -2.5, Refs: []ref{{ID: 1, Addr: -1}, {ID: 2, Addr: 900000}}, Live: true},
		stats{}, // zero value: nil slice must survive
	}
	for _, msg := range cases {
		code, payload, err := c.Encode(msg)
		if err != nil {
			t.Fatalf("encode %#v: %v", msg, err)
		}
		got, err := c.Decode(code, payload)
		if err != nil {
			t.Fatalf("decode %#v: %v", msg, err)
		}
		switch want := msg.(type) {
		case ping:
			if got != want {
				t.Fatalf("round trip %#v -> %#v", want, got)
			}
		case stats:
			g := got.(stats)
			if g.ID != want.ID || g.Score != want.Score || g.Live != want.Live || len(g.Refs) != len(want.Refs) {
				t.Fatalf("round trip %#v -> %#v", want, g)
			}
			for i := range g.Refs {
				if g.Refs[i] != want.Refs[i] {
					t.Fatalf("round trip refs %#v -> %#v", want.Refs, g.Refs)
				}
			}
		}
	}
}

func TestCodecRejectsBadTypes(t *testing.T) {
	type hasMap struct{ M map[string]int }
	if _, err := NewCodec(hasMap{}); err == nil {
		t.Fatal("map field accepted")
	}
	type hasUnexported struct{ x int } //nolint:unused
	if _, err := NewCodec(hasUnexported{}); err == nil {
		t.Fatal("unexported field accepted")
	}
	if _, err := NewCodec(ping{}, ping{}); err == nil {
		t.Fatal("duplicate prototype accepted")
	}
}

func TestCodecRejectsCorruptPayload(t *testing.T) {
	c, err := NewCodec(testMessages()...)
	if err != nil {
		t.Fatal(err)
	}
	code, payload, _ := c.Encode(ping{Seq: 7, Note: "x"})
	if _, err := c.Decode(code, payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := c.Decode(code, append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := c.Decode(99, payload); err == nil {
		t.Fatal("unknown code accepted")
	}
}

// --- Runtime ----------------------------------------------------------------

// rec is a Handler recording deliveries under its own lock.
type rec struct {
	mu   sync.Mutex
	got  []any
	from []runtime.Addr
}

func (c *rec) Recv(from runtime.Addr, msg any) {
	c.mu.Lock()
	c.got = append(c.got, msg)
	c.from = append(c.from, from)
	c.mu.Unlock()
}

func (c *rec) snapshot() ([]any, []runtime.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]any(nil), c.got...), append([]runtime.Addr(nil), c.from...)
}

func newBoot(t *testing.T) *Runtime {
	t.Helper()
	r, err := New(Config{Listen: "127.0.0.1:0", Messages: testMessages(), AwaitTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func newWorker(t *testing.T, boot *Runtime) *Runtime {
	t.Helper()
	r, err := New(Config{Listen: "127.0.0.1:0", Bootstrap: boot.Endpoint(), Messages: testMessages(), AwaitTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func awaitDelivery(t *testing.T, c *rec, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := c.snapshot()
		if len(got) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d messages arrived", len(got), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrossProcessExchange is the core tentpole scenario: two runtimes (one
// bootstrap, one worker), a peer on each, messages both ways over real
// sockets, with From addresses intact.
func TestCrossProcessExchange(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)

	bootRec, workRec := &rec{}, &rec{}
	var bootAddr, workAddr runtime.Addr
	boot.Do(func() {
		bootAddr = boot.NewAddr()
		boot.Attach(bootAddr, runtime.Endpoint{}, bootRec)
	})
	worker.Do(func() {
		workAddr = worker.NewAddr()
		worker.Attach(workAddr, runtime.Endpoint{}, workRec)
	})

	worker.Do(func() { worker.Send(workAddr, bootAddr, 0, ping{Seq: 1, Note: "up"}) })
	awaitDelivery(t, bootRec, 1)
	boot.Do(func() { boot.Send(bootAddr, workAddr, 0, ping{Seq: 2, Note: "down"}) })
	awaitDelivery(t, workRec, 1)

	got, from := bootRec.snapshot()
	if got[0] != (ping{Seq: 1, Note: "up"}) || from[0] != workAddr {
		t.Fatalf("bootstrap got %v from %v", got[0], from[0])
	}
	got, from = workRec.snapshot()
	if got[0] != (ping{Seq: 2, Note: "down"}) || from[0] != bootAddr {
		t.Fatalf("worker got %v from %v", got[0], from[0])
	}
}

// TestDenseAllocationAcrossProcesses pins the Addr.Index density contract:
// interleaved NewAddr calls from several processes draw from one counter.
func TestDenseAllocationAcrossProcesses(t *testing.T) {
	boot := newBoot(t)
	w1 := newWorker(t, boot)
	w2 := newWorker(t, boot)

	seen := make(map[runtime.Addr]bool)
	alloc := func(r *Runtime) {
		r.Do(func() {
			a := r.NewAddr()
			if seen[a] {
				t.Errorf("address %d allocated twice", a)
			}
			seen[a] = true
		})
	}
	for i := 0; i < 4; i++ {
		alloc(boot)
		alloc(w1)
		alloc(w2)
	}
	if len(seen) != 12 {
		t.Fatalf("%d distinct addresses, want 12", len(seen))
	}
	for a := runtime.Addr(1); a <= 12; a++ {
		if !seen[a] {
			t.Fatalf("allocation not dense: %d missing from %v", a, seen)
		}
	}
}

// TestSelfDialLoopback: a message between two local addresses still crosses
// the socket (the uniform path), and arrives.
func TestSelfDialLoopback(t *testing.T) {
	boot := newBoot(t)
	r1, r2 := &rec{}, &rec{}
	boot.Do(func() {
		boot.Attach(1, runtime.Endpoint{}, r1)
		boot.Attach(2, runtime.Endpoint{}, r2)
		boot.Send(1, 2, 0, ping{Seq: 9})
	})
	awaitDelivery(t, r2, 1)
	got, from := r2.snapshot()
	if got[0] != (ping{Seq: 9}) || from[0] != 1 {
		t.Fatalf("got %v from %v", got[0], from[0])
	}
}

// TestAttachedAcrossProcesses: Attached consults the bootstrap's directory,
// and Detach propagates.
func TestAttachedAcrossProcesses(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)

	var a runtime.Addr
	worker.Do(func() {
		a = worker.NewAddr()
		worker.Attach(a, runtime.Endpoint{}, &rec{})
	})

	var fromBoot bool
	boot.Do(func() { fromBoot = boot.Attached(a) })
	if !fromBoot {
		t.Fatal("bootstrap does not see the worker's address as attached")
	}

	worker.Do(func() { worker.Detach(a) })
	deadline := time.Now().Add(5 * time.Second)
	for {
		boot.Do(func() { fromBoot = boot.Attached(a) })
		if !fromBoot {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detach never propagated to the bootstrap directory")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnDropMarksDead: killing a worker process (modeled by Close) makes
// the bootstrap mark every address it registered as detached — TCP as the
// failure detector of last resort.
func TestConnDropMarksDead(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)

	var a1, a2 runtime.Addr
	worker.Do(func() {
		a1, a2 = worker.NewAddr(), worker.NewAddr()
		worker.Attach(a1, runtime.Endpoint{}, &rec{})
		worker.Attach(a2, runtime.Endpoint{}, &rec{})
	})

	var ok bool
	boot.Do(func() { ok = boot.Attached(a1) && boot.Attached(a2) })
	if !ok {
		t.Fatal("worker addresses not visible before the crash")
	}

	worker.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var any bool
		boot.Do(func() { any = boot.Attached(a1) || boot.Attached(a2) })
		if !any {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conn drop never marked the worker's addresses dead")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDetachDropsInFlight: a frame to a detached address is dropped on
// arrival; a later re-attach receives new traffic at the same address.
func TestDetachReattachRouting(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)

	first, second := &rec{}, &rec{}
	var a runtime.Addr
	worker.Do(func() {
		a = worker.NewAddr()
		worker.Attach(a, runtime.Endpoint{}, first)
	})
	boot.Do(func() { boot.Attach(0, runtime.Endpoint{}, &rec{}) })

	boot.Do(func() { boot.Send(0, a, 0, ping{Seq: 1}) })
	awaitDelivery(t, first, 1)

	worker.Do(func() {
		worker.Detach(a)
		worker.Attach(a, runtime.Endpoint{}, second)
	})
	boot.Do(func() { boot.Send(0, a, 0, ping{Seq: 2}) })
	awaitDelivery(t, second, 1)
	got, _ := second.snapshot()
	if got[0] != (ping{Seq: 2}) {
		t.Fatalf("re-attached handler got %v", got[0])
	}
	got, _ = first.snapshot()
	if len(got) != 1 {
		t.Fatalf("first incarnation got %v after detach", got)
	}
}

// TestUnknownAddrDropsSilently: sending to a never-registered address is a
// silent drop, not a panic or a hang.
func TestUnknownAddrDropsSilently(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)
	worker.Do(func() { worker.Send(1, 999, 0, ping{Seq: 1}) })
	boot.Do(func() { boot.Send(1, 999, 0, ping{Seq: 1}) })
	// Nothing to assert beyond "we got here without blocking".
}

// TestTimersAndAwait exercises the clock path: a timer fires under the
// executor lock and Await observes its effect.
func TestTimersAndAwait(t *testing.T) {
	boot := newBoot(t)
	fired := false
	boot.Do(func() {
		boot.Schedule(runtime.Millisecond, func() { fired = true })
	})
	if err := boot.Await(func() bool { return fired }); err != nil {
		t.Fatal(err)
	}

	cancelled := false
	var h runtime.Handle
	boot.Do(func() {
		h = boot.Schedule(50*runtime.Millisecond, func() { cancelled = true })
		if !boot.Scheduled(h) {
			t.Error("fresh timer not scheduled")
		}
		if !boot.Unschedule(h) {
			t.Error("unschedule failed")
		}
	})
	time.Sleep(80 * time.Millisecond)
	boot.Do(func() {
		if cancelled {
			t.Error("cancelled timer fired")
		}
	})
}

// TestConcurrentCrossTraffic hammers two runtimes with interleaved sends in
// both directions; the race detector plus per-sender FIFO are the assertions.
func TestConcurrentCrossTraffic(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)

	const perSide = 100
	bootRec, workRec := &rec{}, &rec{}
	boot.Do(func() { boot.Attach(0, runtime.Endpoint{}, bootRec) })
	var wa runtime.Addr
	worker.Do(func() {
		wa = worker.NewAddr()
		worker.Attach(wa, runtime.Endpoint{}, workRec)
	})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			boot.Do(func() { boot.Send(0, wa, 0, ping{Seq: i}) })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			worker.Do(func() { worker.Send(wa, 0, 0, ping{Seq: i}) })
		}
	}()
	wg.Wait()

	awaitDelivery(t, bootRec, perSide)
	awaitDelivery(t, workRec, perSide)

	check := func(c *rec) {
		got, _ := c.snapshot()
		for i, m := range got {
			if m.(ping).Seq != i {
				t.Fatalf("FIFO violated: position %d holds seq %d", i, m.(ping).Seq)
			}
		}
	}
	check(bootRec)
	check(workRec)
}

// TestSendReconnectsToLateListener: a Send to an endpoint whose listener is
// not up yet must not be dropped on the first refused dial — the reconnect
// loop queues the frames, retries with backoff, and delivers once the
// listener appears.
func TestSendReconnectsToLateListener(t *testing.T) {
	boot := newBoot(t)

	// Reserve an endpoint, then free it: dials to it are refused until the
	// late runtime binds the same port.
	ln, err := nnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep := ln.Addr().String()
	ln.Close()

	// Tell the sender where address 42 lives before anything listens there.
	const lateAddr runtime.Addr = 42
	boot.dir.set(int64(lateAddr), ep, true)
	boot.Do(func() { boot.Attach(1, runtime.Endpoint{}, &rec{}) })

	for i := 1; i <= 3; i++ {
		seq := i
		boot.Do(func() { boot.Send(1, lateAddr, 0, ping{Seq: seq}) })
	}

	// Let several dial attempts fail while the port is still closed.
	time.Sleep(300 * time.Millisecond)

	late, err := New(Config{
		Listen: ep, Bootstrap: boot.Endpoint(),
		Messages: testMessages(), AwaitTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Close)
	lateRec := &rec{}
	late.Do(func() { late.Attach(lateAddr, runtime.Endpoint{}, lateRec) })

	awaitDelivery(t, lateRec, 3)
	got, from := lateRec.snapshot()
	for i, m := range got {
		if m.(ping).Seq != i+1 || from[i] != 1 {
			t.Fatalf("position %d holds %v from %v", i, m, from[i])
		}
	}
}

// TestCloseUnblocksEverything: Close while a worker has in-flight broker
// traffic terminates promptly and leaves no goroutines wedged (the test
// binary would hang otherwise).
func TestCloseUnblocksEverything(t *testing.T) {
	boot := newBoot(t)
	worker := newWorker(t, boot)
	worker.Do(func() {
		a := worker.NewAddr()
		worker.Attach(a, runtime.Endpoint{}, &rec{})
	})
	done := make(chan struct{})
	go func() {
		worker.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker Close wedged")
	}
}

// Package net is the TCP-socket implementation of runtime.Runtime: the same
// hybrid protocol that runs under the discrete-event simulation
// (internal/simnet) and the in-process goroutine runtime
// (internal/runtime/live) here runs across real sockets, so a cluster can
// span processes and machines (cmd/hybridnode -addr/-bootstrap).
//
// # Topology
//
// Every process listens on one TCP endpoint and may host any number of
// protocol addresses. One process is the bootstrap: it hosts address 0 (the
// protocol's well-known server) and brokers the two pieces of cluster-global
// state the runtime contract requires:
//
//   - address allocation: NewAddr on a non-bootstrap process is a JOIN-ALLOC
//     request to the bootstrap, which hands out dense addresses 1, 2, 3, …
//     from a single counter. This preserves the Addr.Index density contract
//     (flat array-backed routing tables) across process boundaries.
//   - the directory: Attach registers "address A lives at endpoint E";
//     senders resolve unknown addresses through the bootstrap and cache the
//     result forever (addresses are never re-homed, so entries cannot go
//     stale). Liveness is tracked only at the bootstrap: explicit detaches
//     mark entries dead, and a process's connection dropping marks every
//     address it registered dead — TCP is the failure detector of last
//     resort for whole-process crashes.
//
// # Execution model
//
// Identical to internal/runtime/live, because it solves the same problem:
// the protocol wants run-to-completion semantics and peers on one process
// share a System. All protocol execution serializes behind one executor
// mutex; each attached address has a mailbox goroutine; timers are
// time.AfterFunc firings that take the executor lock. What differs is only
// Send: every message — including one whose destination is hosted by the
// sending process — is encoded by the codec (codec.go), framed in the wire
// envelope (wire.go), and written to the destination process's socket. The
// uniform path means the conformance suite exercises the codec and framing
// even in a single process.
//
// Each connection has exactly one reader goroutine, and it never blocks on
// protocol execution: data frames are decoded and appended to the target
// mailbox (dropped if the address is not attached here — a packet to a dead
// host), control responses are handed to the waiter parked in the
// inflight[msgID] map, and control requests touch only the directory and
// allocator locks, never the executor. A slow or wedged peer therefore
// cannot stall delivery to anyone else.
//
// Message-level guarantees match the live runtime: sends are asynchronous
// and unreliable (an unresolvable address, unreachable endpoint, or dead
// connection drops the message silently), and delivery between a pair of
// processes is FIFO because it shares one connection.
package net

import (
	"errors"
	"fmt"
	"math/rand"
	nnet "net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// Config tunes the socket runtime.
type Config struct {
	// Listen is the TCP endpoint to listen on, e.g. "127.0.0.1:7000" or
	// "127.0.0.1:0" (tests). Required.
	Listen string
	// Advertise is the endpoint other processes dial to reach this one. It
	// defaults to the listener's address, with an unspecified host
	// rewritten to 127.0.0.1 — set it explicitly when crossing machines.
	Advertise string
	// Bootstrap is the bootstrap process's advertised endpoint. Empty means
	// this process IS the bootstrap: it hosts address 0 and serves
	// allocation and directory requests.
	Bootstrap string
	// Messages are the codec prototypes, in the cluster-wide shared order
	// (core.WireMessages). Required.
	Messages []any
	// Seed seeds the runtime's RNG (execution stays nondeterministic).
	Seed int64
	// AwaitTimeout bounds a single Await call. Default 30s.
	AwaitTimeout time.Duration
	// DialTimeout bounds one connection attempt. Default 5s.
	DialTimeout time.Duration
	// RPCTimeout bounds one broker request. Default 5s.
	RPCTimeout time.Duration
	// WriteTimeout bounds one frame write. Default 10s.
	WriteTimeout time.Duration
	// Logf receives transport diagnostics (encode failures, broker errors).
	// Defaults to stderr.
	Logf func(format string, args ...any)
}

// Runtime is the TCP implementation of runtime.Runtime.
//
// Clock, Transport, Rand and NewAddr must only be called under the execution
// guarantee — from inside a handler, a timer callback, or Do. Do, Await,
// Sleep and Close are the external entry points and may be called from any
// goroutine.
type Runtime struct {
	cfg    Config
	codec  *Codec
	start  time.Time
	isBoot bool
	self   string // advertised endpoint
	boot   string // bootstrap endpoint (== self on the bootstrap)

	ln nnet.Listener

	mu     sync.Mutex // the executor lock: all protocol execution holds it
	rng    *rand.Rand
	closed bool

	// nodes has its own lock (not the executor's) because connection
	// readers must find mailboxes without ever waiting on protocol
	// execution. Lock order: mu before nmu; readers take nmu alone.
	nmu   sync.RWMutex
	nodes map[runtime.Addr]*node

	// amu guards the bootstrap's address counter; readers answering
	// JOIN-ALLOC take it, so it must not be the executor lock.
	amu  sync.Mutex
	next runtime.Addr

	dir *directory

	// cmu guards the connection cache, the inbound set and the negative
	// dial cache.
	cmu        sync.Mutex
	conns      map[string]*wconn
	inbound    map[*wconn]struct{}
	dialFailAt map[string]time.Time
	// dials holds, per endpoint with no live connection, the messages queued
	// while a background reconnect loop (dialLoop) retries the dial with
	// exponential backoff. Guarded by cmu.
	dials     map[string]*dialState
	connsDown bool // set by Close before sweeping, so no conn leaks past it

	// inflight parks one waiter channel per outstanding broker request,
	// keyed by MsgID; the bootstrap connection's reader completes them.
	imu      sync.Mutex
	inflight map[uint64]chan envelope
	msgID    atomic.Uint64

	closedCh chan struct{}
	wg       sync.WaitGroup // mailbox goroutines
	readers  sync.WaitGroup // accept loop + connection readers
}

// serverAddr is the bootstrap server's protocol address, hosted by the
// bootstrap process; NewAddr allocations start right above it.
const serverAddr runtime.Addr = 0

// node is one attached address: a handler plus its mailbox (identical to the
// live runtime's — see that package for the lock-ordering discussion).
type node struct {
	h runtime.Handler

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []envelopeLocal
	closed bool
}

type envelopeLocal struct {
	from runtime.Addr
	msg  any
}

type timer struct {
	t         *time.Timer
	fn        func()
	cancelled bool
	fired     bool
}

// New creates a socket runtime: it binds the listener, starts accepting,
// and (on non-bootstrap processes) is immediately able to reach the
// bootstrap at cfg.Bootstrap.
func New(cfg Config) (*Runtime, error) {
	if cfg.Listen == "" {
		return nil, errors.New("net: Config.Listen is required")
	}
	if len(cfg.Messages) == 0 {
		return nil, errors.New("net: Config.Messages is required (see core.WireMessages)")
	}
	if cfg.AwaitTimeout <= 0 {
		cfg.AwaitTimeout = 30 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "net: "+format+"\n", args...)
		}
	}
	codec, err := NewCodec(cfg.Messages...)
	if err != nil {
		return nil, err
	}
	ln, err := nnet.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("net: listen %s: %w", cfg.Listen, err)
	}
	r := &Runtime{
		cfg:        cfg,
		codec:      codec,
		start:      time.Now(),
		isBoot:     cfg.Bootstrap == "",
		ln:         ln,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		nodes:      make(map[runtime.Addr]*node),
		next:       serverAddr + 1,
		dir:        newDirectory(),
		conns:      make(map[string]*wconn),
		inbound:    make(map[*wconn]struct{}),
		dialFailAt: make(map[string]time.Time),
		dials:      make(map[string]*dialState),
		inflight:   make(map[uint64]chan envelope),
		closedCh:   make(chan struct{}),
	}
	r.self = cfg.Advertise
	if r.self == "" {
		r.self = advertisable(ln.Addr())
	}
	if r.isBoot {
		r.boot = r.self
	} else {
		r.boot = cfg.Bootstrap
		// The server's address is bootstrap information, not something to
		// discover: seed the resolution cache so the very first join can
		// reach address 0.
		r.dir.set(int64(serverAddr), r.boot, true)
	}
	r.readers.Add(1)
	go r.acceptLoop()
	return r, nil
}

// advertisable rewrites a listener address into something another process
// can dial: the unspecified host (listen ":0" / "0.0.0.0") becomes loopback.
func advertisable(a nnet.Addr) string {
	host, port, err := nnet.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := nnet.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return nnet.JoinHostPort(host, port)
}

// Endpoint returns this process's advertised endpoint.
func (r *Runtime) Endpoint() string { return r.self }

// IsBootstrap reports whether this process hosts address 0 and the broker.
func (r *Runtime) IsBootstrap() bool { return r.isBoot }

// --- Clock -----------------------------------------------------------------

// Now returns the wall-clock time since the runtime was created.
func (r *Runtime) Now() runtime.Time {
	return runtime.Time(time.Since(r.start) / time.Microsecond)
}

// Schedule arms a wall-clock timer; the callback takes the executor lock.
func (r *Runtime) Schedule(d runtime.Time, fn func()) runtime.Handle {
	if d < 0 {
		panic(fmt.Sprintf("net: negative delay %v", d))
	}
	if r.closed {
		return runtime.Handle{}
	}
	tm := &timer{fn: fn}
	tm.t = time.AfterFunc(time.Duration(d)*time.Microsecond, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if tm.cancelled || r.closed {
			return
		}
		tm.fired = true
		tm.fn()
	})
	return runtime.MakeHandle(tm, 0)
}

// Unschedule cancels a pending firing.
func (r *Runtime) Unschedule(h runtime.Handle) bool {
	tm, ok := h.Impl().(*timer)
	if !ok || tm.cancelled || tm.fired {
		return false
	}
	tm.cancelled = true
	tm.t.Stop()
	return true
}

// Scheduled reports whether the firing is still pending.
func (r *Runtime) Scheduled(h runtime.Handle) bool {
	tm, ok := h.Impl().(*timer)
	return ok && !tm.cancelled && !tm.fired
}

// --- Transport -------------------------------------------------------------

// Attach registers a handler, starts its mailbox goroutine, and announces
// the address to the bootstrap's directory so other processes can route to
// it. The announcement is synchronous: when Attach returns, a response sent
// to this address by any process resolves.
func (r *Runtime) Attach(a runtime.Addr, _ runtime.Endpoint, h runtime.Handler) {
	if r.closed {
		return
	}
	n := &node{h: h}
	n.qcond = sync.NewCond(&n.qmu)
	r.nmu.Lock()
	if old, ok := r.nodes[a]; ok {
		old.close()
	}
	r.nodes[a] = n
	r.nmu.Unlock()
	r.wg.Add(1)
	go r.deliverLoop(a, n)

	r.dir.set(int64(a), r.self, true)
	if !r.isBoot {
		if _, err := r.rpc(ctrlRegisterReq, registerPayload(int64(a), r.self)); err != nil {
			r.cfg.Logf("register addr %d: %v", a, err)
		}
	}
}

// Detach removes an address and reports it dead to the bootstrap. Frames
// already in flight to it are dropped on arrival, like packets to a crashed
// host.
func (r *Runtime) Detach(a runtime.Addr) {
	r.nmu.Lock()
	if n, ok := r.nodes[a]; ok {
		n.close()
		delete(r.nodes, a)
	}
	r.nmu.Unlock()
	r.dir.markDead(int64(a))
	if !r.isBoot {
		if c, err := r.connTo(r.boot); err == nil {
			if err := c.write(envelope{Type: ctrlDetach, From: -1, To: -1, Payload: addrPayload(int64(a))}, r.cfg.WriteTimeout); err != nil {
				r.dropConn(r.boot, c)
			}
		}
	}
}

// Attached reports whether the address currently has a live handler
// anywhere in the cluster: locally via the node table, elsewhere via the
// bootstrap's directory (a broker round trip on non-bootstrap processes).
func (r *Runtime) Attached(a runtime.Addr) bool {
	r.nmu.RLock()
	_, local := r.nodes[a]
	r.nmu.RUnlock()
	if local {
		return true
	}
	if r.isBoot {
		return r.dir.alive(int64(a))
	}
	resp, err := r.rpc(ctrlAttachedReq, addrPayload(int64(a)))
	if err != nil || len(resp.Payload) < 1 {
		return false
	}
	return resp.Payload[0] != 0
}

// Send encodes the message and writes it to the destination's process. An
// unknown address or dead connection drops the message silently — the
// transport contract is unreliable delivery. A transiently unreachable
// endpoint no longer drops on the spot: the message is queued (bounded) and
// a background reconnect loop retries the dial with exponential backoff,
// delivering the backlog once the endpoint comes up. size only models
// serialization cost on the simulated transports; here the real bytes are
// the cost.
func (r *Runtime) Send(from, to runtime.Addr, size int, msg any) {
	if r.closed {
		return
	}
	ep, ok := r.endpointOf(to)
	if !ok {
		return
	}
	code, payload, err := r.codec.Encode(msg)
	if err != nil {
		r.cfg.Logf("send %d->%d: %v", from, to, err)
		return
	}
	env := envelope{Type: code, From: int64(from), To: int64(to), Payload: payload}

	r.cmu.Lock()
	if r.connsDown {
		r.cmu.Unlock()
		return
	}
	if c, ok := r.conns[ep]; ok {
		r.cmu.Unlock()
		if err := c.write(env, r.cfg.WriteTimeout); err != nil {
			r.dropConn(ep, c)
		}
		return
	}
	// No live connection: queue the frame and make sure one reconnect loop
	// is working the endpoint. Overflow past the queue bound drops the
	// message — the contract is unreliable, the queue just covers transient
	// outages (a peer restarting, a listener coming up late).
	ds := r.dials[ep]
	if ds == nil {
		ds = &dialState{}
		r.dials[ep] = ds
	}
	if len(ds.pending) < dialQueueMax {
		ds.pending = append(ds.pending, env)
	}
	if !ds.active {
		ds.active = true
		r.readers.Add(1)
		go r.dialLoop(ep)
	}
	r.cmu.Unlock()
}

// SendLocal enqueues a self-message directly — it never touches the socket,
// mirroring the negligible-delay contract.
func (r *Runtime) SendLocal(a runtime.Addr, msg any) {
	r.nmu.RLock()
	n, ok := r.nodes[a]
	r.nmu.RUnlock()
	if ok {
		n.enqueue(a, msg)
	}
}

// endpointOf resolves an address to its hosting process's endpoint: local
// cache first, then a broker round trip. Endpoints are immutable once
// registered, so positive results are cached forever; negative results are
// not cached (the address may be registered a moment later).
func (r *Runtime) endpointOf(a runtime.Addr) (string, bool) {
	if ep, ok := r.dir.endpoint(int64(a)); ok {
		return ep, true
	}
	if r.isBoot {
		return "", false
	}
	resp, err := r.rpc(ctrlResolveReq, addrPayload(int64(a)))
	if err != nil {
		return "", false
	}
	found, ep, err := readResolvePayload(resp.Payload)
	if err != nil || !found {
		return "", false
	}
	r.dir.set(int64(a), ep, true)
	return ep, true
}

// deliverLoop is a node's mailbox goroutine: pop one envelope, take the
// executor lock, deliver, repeat (the live runtime's pattern, including the
// re-check that the address was not detached between dequeue and delivery).
func (r *Runtime) deliverLoop(a runtime.Addr, n *node) {
	defer r.wg.Done()
	for {
		n.qmu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.qcond.Wait()
		}
		if n.closed {
			n.qmu.Unlock()
			return
		}
		env := n.queue[0]
		n.queue = n.queue[1:]
		n.qmu.Unlock()

		r.mu.Lock()
		r.nmu.RLock()
		cur, ok := r.nodes[a]
		r.nmu.RUnlock()
		if ok && cur == n && !r.closed {
			n.h.Recv(env.from, env.msg)
		}
		r.mu.Unlock()
	}
}

func (n *node) enqueue(from runtime.Addr, msg any) {
	n.qmu.Lock()
	if !n.closed {
		n.queue = append(n.queue, envelopeLocal{from: from, msg: msg})
		n.qcond.Signal()
	}
	n.qmu.Unlock()
}

func (n *node) close() {
	n.qmu.Lock()
	n.closed = true
	n.queue = nil
	n.qcond.Broadcast()
	n.qmu.Unlock()
}

// --- Runtime ---------------------------------------------------------------

// Rand returns the runtime's RNG (use only under the execution guarantee).
func (r *Runtime) Rand() runtime.RNG { return r.rng }

// NewAddr allocates the next cluster-wide peer address: locally on the
// bootstrap, via a JOIN-ALLOC broker request elsewhere. Allocation is the
// one runtime operation that cannot degrade gracefully — a node that cannot
// reach its bootstrap while joining has no place in the cluster — so an
// unreachable broker panics after retries instead of corrupting the dense
// address space.
func (r *Runtime) NewAddr() runtime.Addr {
	if r.isBoot {
		r.amu.Lock()
		a := r.next
		r.next++
		r.amu.Unlock()
		return a
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		resp, err := r.rpc(ctrlAllocReq, nil)
		if err != nil {
			lastErr = err
			continue
		}
		a, err := readAddrPayload(resp.Payload)
		if err != nil || a < 0 {
			lastErr = fmt.Errorf("bad alloc response (addr %d, %v)", a, err)
			continue
		}
		return runtime.Addr(a)
	}
	panic(fmt.Sprintf("net: address allocation via %s failed: %v", r.boot, lastErr))
}

// ServerAddr returns the bootstrap server's address.
func (r *Runtime) ServerAddr() runtime.Addr { return serverAddr }

// Placement returns nil: the socket transport has no physical model.
func (r *Runtime) Placement() runtime.Placement { return nil }

// Do runs fn under the executor lock.
func (r *Runtime) Do(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// Await polls cond under the executor lock until it reports true, yielding
// between polls; it fails after the configured wall-clock timeout.
func (r *Runtime) Await(cond func() bool) error {
	deadline := time.Now().Add(r.cfg.AwaitTimeout)
	for {
		r.mu.Lock()
		ok := cond()
		r.mu.Unlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("net: condition not reached within %v", r.cfg.AwaitTimeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Sleep blocks the caller while the runtime keeps executing. It must not be
// called while holding the executor lock.
func (r *Runtime) Sleep(d runtime.Time) {
	time.Sleep(time.Duration(d) * time.Microsecond)
}

// Close shuts the runtime down: the listener and every connection close (so
// all readers exit), mailbox goroutines drain out, pending timer firings
// become no-ops, and outstanding broker requests fail. Close blocks until
// every goroutine is gone.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	close(r.closedCh)
	r.ln.Close()

	r.nmu.Lock()
	for a, n := range r.nodes {
		n.close()
		delete(r.nodes, a)
	}
	r.nmu.Unlock()

	r.cmu.Lock()
	r.connsDown = true
	for ep, c := range r.conns {
		c.c.Close()
		delete(r.conns, ep)
	}
	for c := range r.inbound {
		c.c.Close()
		delete(r.inbound, c)
	}
	r.cmu.Unlock()

	r.wg.Wait()
	r.readers.Wait()
}

// --- Connections and the broker dialogue -----------------------------------

// dialBackoff is how long a failed endpoint is considered unreachable
// before another synchronous dial (connTo: broker RPCs, Attach) is
// attempted; it keeps callers on the blocking path from paying a connect
// timeout per request.
const dialBackoff = 500 * time.Millisecond

// Reconnect-loop tuning: a queued endpoint is retried dialAttempts times
// with jittered exponential backoff from dialRetryBase up to dialRetryCap
// (~8 attempts spanning roughly six seconds), holding at most dialQueueMax
// frames. Past either bound the backlog is dropped — unreliable delivery.
const (
	dialQueueMax  = 1024
	dialAttempts  = 8
	dialRetryBase = 50 * time.Millisecond
	dialRetryCap  = 2 * time.Second
)

// dialState is the per-endpoint reconnect backlog (guarded by cmu).
type dialState struct {
	pending []envelope
	active  bool // a dialLoop goroutine is working this endpoint
}

// connTo returns the cached connection to an endpoint, dialing if needed.
// This is the synchronous path (broker RPCs, Attach): it respects the
// negative dial cache so blocking callers fail fast on a dead endpoint.
func (r *Runtime) connTo(ep string) (*wconn, error) {
	r.cmu.Lock()
	if r.connsDown {
		r.cmu.Unlock()
		return nil, errors.New("net: runtime closed")
	}
	if c, ok := r.conns[ep]; ok {
		r.cmu.Unlock()
		return c, nil
	}
	if t, ok := r.dialFailAt[ep]; ok && time.Since(t) < dialBackoff {
		r.cmu.Unlock()
		return nil, errors.New("net: endpoint recently unreachable")
	}
	r.cmu.Unlock()
	return r.dialAndInstall(ep)
}

// dialAndInstall dials an endpoint and installs the connection in the cache
// (or yields to a connection that won the install race). It bypasses the
// negative dial cache — the reconnect loop owns its own backoff schedule and
// must be able to retry faster than dialBackoff.
func (r *Runtime) dialAndInstall(ep string) (*wconn, error) {
	r.cmu.Lock()
	if r.connsDown {
		r.cmu.Unlock()
		return nil, errors.New("net: runtime closed")
	}
	if c, ok := r.conns[ep]; ok {
		r.cmu.Unlock()
		return c, nil
	}
	r.cmu.Unlock()

	nc, err := nnet.DialTimeout("tcp", ep, r.cfg.DialTimeout)
	if err != nil {
		r.cmu.Lock()
		r.dialFailAt[ep] = time.Now()
		r.cmu.Unlock()
		return nil, err
	}
	c := newWconn(nc)

	r.cmu.Lock()
	if r.connsDown {
		r.cmu.Unlock()
		nc.Close()
		return nil, errors.New("net: runtime closed")
	}
	if existing, ok := r.conns[ep]; ok {
		r.cmu.Unlock()
		nc.Close()
		return existing, nil
	}
	r.conns[ep] = c
	delete(r.dialFailAt, ep)
	r.cmu.Unlock()

	r.readers.Add(1)
	go r.readLoop(c, ep)

	// A fresh connection to the bootstrap re-announces every live local
	// address: if the previous connection dropped, the broker marked them
	// dead, and this revives them (one-way frames; nothing to await).
	if !r.isBoot && ep == r.boot {
		for _, a := range r.dir.liveAt(r.self) {
			if err := c.write(envelope{Type: ctrlRegisterReq, From: -1, To: -1, Payload: registerPayload(a, r.self)}, r.cfg.WriteTimeout); err != nil {
				break
			}
		}
	}
	return c, nil
}

// dialLoop is the per-endpoint reconnect worker: retry the dial with
// jittered exponential backoff until it lands, then flush the frames queued
// while the endpoint was down. Sends racing the flush write directly on the
// installed connection, so a brief reorder around the reconnect is possible
// — strictly milder than the old behavior, which dropped every one of these
// messages on the floor.
func (r *Runtime) dialLoop(ep string) {
	defer r.readers.Done()
	backoff := dialRetryBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		c, err := r.dialAndInstall(ep)
		if err == nil {
			r.cmu.Lock()
			var pending []envelope
			if ds := r.dials[ep]; ds != nil {
				pending = ds.pending
				ds.pending = nil
				ds.active = false
			}
			r.cmu.Unlock()
			for _, env := range pending {
				if err := c.write(env, r.cfg.WriteTimeout); err != nil {
					// The fresh connection died mid-flush: the rest of the
					// backlog is lost (unreliable contract).
					r.dropConn(ep, c)
					break
				}
			}
			return
		}
		// Jitter half the backoff window. The executor-locked r.rng must not
		// be touched from here; the global source is thread-safe.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-r.closedCh:
			r.abandonDial(ep)
			return
		}
		backoff *= 2
		if backoff > dialRetryCap {
			backoff = dialRetryCap
		}
	}
	r.abandonDial(ep)
}

// abandonDial drops an endpoint's backlog after the reconnect loop gives up
// (or the runtime closes), so a later Send can start a fresh loop.
func (r *Runtime) abandonDial(ep string) {
	r.cmu.Lock()
	if ds := r.dials[ep]; ds != nil {
		ds.pending = nil
		ds.active = false
	}
	r.cmu.Unlock()
}

// dropConn forgets a connection after a write error so the next send
// redials.
func (r *Runtime) dropConn(ep string, c *wconn) {
	c.c.Close()
	r.cmu.Lock()
	if cur, ok := r.conns[ep]; ok && cur == c {
		delete(r.conns, ep)
	}
	r.cmu.Unlock()
}

// rpc is one broker round trip: stamp a MsgID, park a waiter, write the
// request on the bootstrap connection, wait for the reader to complete it.
func (r *Runtime) rpc(typ uint16, payload []byte) (envelope, error) {
	if r.isBoot {
		return envelope{}, errors.New("net: the bootstrap answers locally")
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		c, err := r.connTo(r.boot)
		if err != nil {
			lastErr = err
			continue
		}
		id := r.msgID.Add(1)
		ch := make(chan envelope, 1)
		r.imu.Lock()
		r.inflight[id] = ch
		r.imu.Unlock()

		env := envelope{Type: typ, From: -1, To: -1, MsgID: id, Payload: payload}
		if err := c.write(env, r.cfg.WriteTimeout); err != nil {
			r.unpark(id)
			r.dropConn(r.boot, c)
			lastErr = err
			continue
		}
		select {
		case resp := <-ch:
			r.unpark(id)
			return resp, nil
		case <-time.After(r.cfg.RPCTimeout):
			r.unpark(id)
			lastErr = fmt.Errorf("broker request %#x timed out", typ)
		case <-r.closedCh:
			r.unpark(id)
			return envelope{}, errors.New("net: runtime closed")
		}
	}
	return envelope{}, lastErr
}

func (r *Runtime) unpark(id uint64) {
	r.imu.Lock()
	delete(r.inflight, id)
	r.imu.Unlock()
}

// acceptLoop owns the listener.
func (r *Runtime) acceptLoop() {
	defer r.readers.Done()
	for {
		nc, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := newWconn(nc)
		r.cmu.Lock()
		if r.connsDown {
			r.cmu.Unlock()
			nc.Close()
			return
		}
		r.inbound[c] = struct{}{}
		r.cmu.Unlock()
		r.readers.Add(1)
		go r.readLoop(c, "")
	}
}

// readLoop is a connection's single reader. It never takes the executor
// lock: every frame either lands in a mailbox, completes an inflight
// waiter, or touches the directory/allocator. ep is the dialed endpoint
// ("" for inbound connections).
func (r *Runtime) readLoop(c *wconn, ep string) {
	defer r.readers.Done()
	for {
		env, err := readEnvelope(c.br)
		if err != nil {
			break
		}
		r.handleFrame(c, env)
	}
	c.c.Close()
	r.cmu.Lock()
	if ep != "" {
		if cur, ok := r.conns[ep]; ok && cur == c {
			delete(r.conns, ep)
		}
	} else {
		delete(r.inbound, c)
	}
	r.cmu.Unlock()
	// The connection is gone: every address the remote process registered
	// through it went with the process.
	if r.isBoot {
		r.dir.markDeadAll(c.takeReg())
	}
}

// handleFrame dispatches one decoded envelope on a reader goroutine.
func (r *Runtime) handleFrame(c *wconn, env envelope) {
	switch {
	case env.Type < ctrlBase:
		msg, err := r.codec.Decode(env.Type, env.Payload)
		if err != nil {
			r.cfg.Logf("frame %d->%d: %v", env.From, env.To, err)
			return
		}
		r.nmu.RLock()
		n, ok := r.nodes[runtime.Addr(env.To)]
		r.nmu.RUnlock()
		if ok {
			n.enqueue(runtime.Addr(env.From), msg)
		}
		// else: not attached here — the host is gone (or never was);
		// drop, as the unreliable-transport contract promises.

	case env.Type == ctrlAllocReq:
		a := int64(-1)
		if r.isBoot {
			r.amu.Lock()
			a = int64(r.next)
			r.next++
			r.amu.Unlock()
		}
		r.reply(c, ctrlAllocResp, env.MsgID, addrPayload(a))

	case env.Type == ctrlRegisterReq:
		a, endpoint, err := readRegisterPayload(env.Payload)
		if err != nil {
			r.cfg.Logf("bad register frame: %v", err)
			return
		}
		r.dir.set(a, endpoint, true)
		c.addReg(a)
		if env.MsgID != 0 {
			r.reply(c, ctrlRegisterResp, env.MsgID, nil)
		}

	case env.Type == ctrlResolveReq:
		a, err := readAddrPayload(env.Payload)
		if err != nil {
			return
		}
		endpoint, found := r.dir.endpoint(a)
		r.reply(c, ctrlResolveResp, env.MsgID, resolvePayload(found, endpoint))

	case env.Type == ctrlAttachedReq:
		a, err := readAddrPayload(env.Payload)
		if err != nil {
			return
		}
		r.reply(c, ctrlAttachedResp, env.MsgID, boolPayload(r.dir.alive(a)))

	case env.Type == ctrlDetach:
		if a, err := readAddrPayload(env.Payload); err == nil {
			r.dir.markDead(a)
		}

	case env.Type == ctrlAllocResp || env.Type == ctrlRegisterResp ||
		env.Type == ctrlResolveResp || env.Type == ctrlAttachedResp:
		r.imu.Lock()
		ch := r.inflight[env.MsgID]
		r.imu.Unlock()
		if ch != nil {
			select {
			case ch <- env:
			default:
			}
		}

	default:
		r.cfg.Logf("unknown frame type %#x", env.Type)
	}
}

// reply writes a control response on the connection the request arrived on.
func (r *Runtime) reply(c *wconn, typ uint16, msgID uint64, payload []byte) {
	env := envelope{Type: typ, From: -1, To: -1, MsgID: msgID, Payload: payload}
	if err := c.write(env, r.cfg.WriteTimeout); err != nil {
		c.c.Close() // the reader will notice and clean up
	}
}

var _ runtime.Runtime = (*Runtime)(nil)

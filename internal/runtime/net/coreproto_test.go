package net_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	rnet "repro/internal/runtime/net"
)

// TestCoreWireMessagesEncodable pins the codec contract for the real
// protocol: every message type core puts on the transport registers cleanly
// (all field kinds encodable, no unexported fields) and round-trips its zero
// value byte-exactly. A new message type with an unencodable field fails
// here at build time, not on a live socket.
func TestCoreWireMessagesEncodable(t *testing.T) {
	protos := core.WireMessages()
	if len(protos) == 0 {
		t.Fatal("core.WireMessages returned nothing")
	}
	c, err := rnet.NewCodec(protos...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protos {
		code, payload, err := c.Encode(p)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		got, err := c.Decode(code, payload)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip %T: %#v -> %#v", p, p, got)
		}
	}
}

// Package runtime defines the narrow waist between the hybrid protocol and
// whatever executes it. The protocol in internal/core needs exactly four
// things from its environment: a clock with cancellable timers (Clock), a
// message transport with opaque peer addresses (Transport), a deterministic
// random source (RNG), and a way to drive execution until a condition holds
// (the Runtime driver methods). Everything else — discrete-event simulation,
// goroutines, wall clocks, physical topologies — lives behind these
// interfaces.
//
// Two implementations exist: internal/simnet provides the deterministic
// discrete-event runtime the paper's experiments run on (byte-identical
// output for a given seed), and internal/runtime/live provides a concurrent
// runtime backed by goroutines, channels and time.Timer for running the same
// protocol code as a real in-process cluster.
package runtime

import "fmt"

// Time is a timestamp in microseconds since the start of the run. Under the
// discrete-event runtime it is simulated time; under the live runtime it is
// wall-clock time since the runtime was created.
type Time int64

// Common durations, expressed in microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time as seconds with microsecond precision. Negative
// times (deltas, uninitialized sentinels) carry a single leading sign instead
// of the per-component signs integer division would produce ("-500µs" must
// render "-0.000500s", not "0.-00500s"). The magnitude is computed in uint64
// so even math.MinInt64 renders correctly.
func (t Time) String() string {
	u := uint64(t)
	sign := ""
	if t < 0 {
		sign = "-"
		u = -u
	}
	return fmt.Sprintf("%s%d.%06ds", sign, u/uint64(Second), u%uint64(Second))
}

// Seconds converts the timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Addr identifies a peer endpoint. Addresses are opaque to the protocol: the
// only operations it may rely on are comparison, use as a map key, and Index.
// Each runtime allocates its own addresses via NewAddr and designates one
// bootstrap server address via ServerAddr.
type Addr int

// None is the null address.
const None Addr = -1

// Index returns the address's dense non-negative integer identity, or -1 for
// None. Every runtime in this repository allocates addresses densely from
// small integers (the bootstrap server at 0, peers at 1, 2, 3, ...), and this
// accessor is the sanctioned way to exploit that: flat array-backed peer and
// routing tables index by Addr.Index() instead of hashing the address into a
// map, while the Addr type itself stays opaque. A runtime implementation that
// broke the density contract would have to change this accessor too.
func (a Addr) Index() int { return int(a) }

// Handler receives delivered messages. The runtime guarantees handlers for a
// given address are invoked one at a time (per-node serialized execution);
// the discrete-event runtime additionally serializes across all addresses.
type Handler interface {
	Recv(from Addr, msg any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg any)

// Recv calls f(from, msg).
func (f HandlerFunc) Recv(from Addr, msg any) { f(from, msg) }

// Endpoint describes where and how a peer attaches to the transport. Host is
// an index into the runtime's physical placement (0 when the runtime has no
// notion of placement); Capacity is the relative access-link speed (1 = the
// slowest class; the paper's fastest class is 10x the slowest).
type Endpoint struct {
	Host     int
	Capacity float64
}

// Handle refers to one scheduled firing on a Clock. The zero Handle is valid
// and refers to nothing: Unschedule and Scheduled on it are no-ops. A Handle
// is only meaningful to the Clock that issued it.
//
// Handles are plain values built from an implementation pointer plus an
// epoch; storing a pointer in the impl field does not allocate, which keeps
// timer churn allocation-free on the discrete-event hot paths.
type Handle struct {
	impl  any
	epoch uint32
}

// MakeHandle builds a Handle for a Clock implementation. Protocol code never
// calls this; only Clock implementations do.
func MakeHandle(impl any, epoch uint32) Handle {
	return Handle{impl: impl, epoch: epoch}
}

// Impl returns the implementation pointer the handle was built with.
func (h Handle) Impl() any { return h.impl }

// Epoch returns the epoch the handle was built with.
func (h Handle) Epoch() uint32 { return h.epoch }

// Zero reports whether this is the zero Handle.
func (h Handle) Zero() bool { return h.impl == nil }

// Clock schedules callbacks. Implementations invoke callbacks with the same
// serialization guarantee as message handlers: no two callbacks (or
// callback/handler pairs touching the same node) run concurrently.
type Clock interface {
	// Now returns the current time.
	Now() Time
	// Schedule runs fn once, d from now. Negative d panics: it is always a
	// protocol bug, never a recoverable condition.
	Schedule(d Time, fn func()) Handle
	// Unschedule prevents a scheduled firing. Unscheduling a zero handle,
	// or one whose callback already ran or was already cancelled, is a
	// no-op; it reports whether this call removed a pending firing.
	Unschedule(h Handle) bool
	// Scheduled reports whether the firing h refers to is still pending.
	Scheduled(h Handle) bool
}

// RNG is the random source the protocol draws from. The discrete-event
// runtime hands out a seeded *math/rand.Rand so runs are reproducible; the
// live runtime may use any source. *math/rand.Rand satisfies RNG.
type RNG interface {
	Intn(n int) int
	Uint64() uint64
	Float64() float64
	Perm(n int) []int
}

// Transport moves messages between attached addresses. Send is asynchronous
// and unreliable: messages to detached or crashed addresses are silently
// dropped, exactly as a packet to a dead host would be.
type Transport interface {
	// Attach registers a handler for an address at the given endpoint.
	Attach(a Addr, ep Endpoint, h Handler)
	// Detach removes an address; in-flight messages to it are dropped on
	// delivery. This models an abrupt crash.
	Detach(a Addr)
	// Attached reports whether the address currently has a live handler.
	Attached(a Addr) bool
	// Send delivers msg from one address to another after a
	// transport-defined delay. size is the message size in bytes and only
	// affects the delay, never the payload.
	Send(from, to Addr, size int, msg any)
	// SendLocal delivers a message from an address to itself with
	// negligible delay; protocols use it to defer work to a fresh event.
	SendLocal(a Addr, msg any)
}

// Placement exposes the physical topology underneath the transport, for
// protocol features that exploit locality: landmark-based ID assignment and
// coordinate hashing. A runtime with no physical model returns nil from
// Placement, and the protocol falls back to locality-free behavior.
type Placement interface {
	// StubHosts returns the hosts peers may be placed on, in ascending
	// order.
	StubHosts() []int
	// HostCoord returns a host's coordinates in the unit square.
	HostCoord(host int) (x, y float64, ok bool)
	// HostLatency returns the propagation latency between two hosts in
	// microseconds.
	HostLatency(a, b int) (int64, error)
}

// Runtime is everything the protocol needs from its environment. It bundles
// the clock and transport with address allocation, randomness, optional
// placement, and the driver methods that external callers (experiments,
// servers, tests) use to run protocol operations to completion.
type Runtime interface {
	Clock
	Transport

	// Rand returns the runtime's random source.
	Rand() RNG
	// NewAddr allocates a fresh, never-before-used peer address.
	NewAddr() Addr
	// ServerAddr returns the address of the bootstrap server. It is part
	// of the runtime's bootstrap information, fixed for the runtime's
	// lifetime, and never equals any address returned by NewAddr.
	ServerAddr() Addr
	// Placement returns the physical placement model, or nil if the
	// runtime has none.
	Placement() Placement

	// Do runs fn with the runtime's execution guarantee: fn does not run
	// concurrently with any handler or timer callback. External callers
	// must wrap every direct touch of protocol state in Do; code already
	// running inside a handler or callback must not.
	Do(fn func())
	// Await drives the runtime until cond reports true, then returns nil.
	// cond is evaluated under the same guarantee as Do. Await returns an
	// error if the runtime can make no further progress (discrete-event:
	// event queue drained or step budget exceeded; live: deadline).
	Await(cond func() bool) error
	// Sleep lets the runtime run for d without a completion condition.
	Sleep(d Time)
}

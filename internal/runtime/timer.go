package runtime

// Timer is a restartable one-shot timer driven by a Clock. It implements the
// timer idioms the paper's protocols need: HELLO timeouts that are reset
// whenever a heartbeat arrives, lookup timers that expire into a failure
// handler, and suppress timers that gate acknowledgment traffic.
//
// The zero value is not usable; create timers with NewTimer. A Timer has the
// same concurrency contract as the protocol state it guards: all calls must
// be made under the runtime's execution guarantee (inside a handler, a
// callback, or Runtime.Do).
type Timer struct {
	clk    Clock
	d      Time
	fn     func()
	run    func() // the expiry thunk, bound once at construction
	ev     Handle
	active bool
	fires  int
	resets int
}

// NewTimer returns a stopped timer that runs fn after d once started.
func NewTimer(clk Clock, d Time, fn func()) *Timer {
	t := &Timer{clk: clk, d: d, fn: fn}
	// Bind the expiry thunk once: HELLO watchdogs are reset on every
	// heartbeat, and allocating a fresh closure per (re)arm puts timer
	// maintenance on the allocation profile of every simulated second.
	t.run = func() {
		t.active = false
		t.ev = Handle{}
		t.fires++
		t.fn()
	}
	return t
}

// Start arms the timer. Starting an armed timer restarts it.
func (t *Timer) Start() {
	t.StartAfter(t.d)
}

// StartAfter arms the timer with an explicit duration, overriding the default
// for this firing only.
func (t *Timer) StartAfter(d Time) {
	t.Stop()
	t.active = true
	t.ev = t.clk.Schedule(d, t.run)
}

// Reset restarts the timer with its default duration, counting the reset.
// Reset on a stopped timer arms it; this matches the paper's semantics where
// any HELLO or acknowledgment re-arms the neighbor's failure detector.
func (t *Timer) Reset() {
	t.resets++
	t.StartAfter(t.d)
}

// Stop disarms the timer if it is armed.
func (t *Timer) Stop() {
	t.clk.Unschedule(t.ev)
	t.ev = Handle{}
	t.active = false
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.active }

// Fires returns how many times the timer has expired.
func (t *Timer) Fires() int { return t.fires }

// Resets returns how many times Reset was called.
func (t *Timer) Resets() int { return t.resets }

// Duration returns the default duration the timer was created with.
func (t *Timer) Duration() Time { return t.d }

// SetDuration changes the default duration used by Start and Reset.
func (t *Timer) SetDuration(d Time) { t.d = d }

// Ticker invokes a callback at a fixed period until stopped. It is used for
// periodic protocol maintenance: finger refresh and HELLO broadcasts.
type Ticker struct {
	clk    Clock
	period Time
	fn     func()
	run    func() // the tick thunk, bound once at construction
	ev     Handle
	ticks  int
}

// NewTicker returns a stopped ticker with the given period.
func NewTicker(clk Clock, period Time, fn func()) *Ticker {
	t := &Ticker{clk: clk, period: period, fn: fn}
	// One closure for the ticker's whole lifetime instead of one per tick;
	// every peer runs a HELLO ticker forever, so per-tick closures dominate
	// steady-state maintenance allocations.
	t.run = func() {
		t.ticks++
		t.schedule()
		t.fn()
	}
	return t
}

// Start begins periodic firing one period from now.
func (t *Ticker) Start() {
	t.Stop()
	t.schedule()
}

func (t *Ticker) schedule() {
	t.ev = t.clk.Schedule(t.period, t.run)
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.clk.Unschedule(t.ev)
	t.ev = Handle{}
}

// Ticks returns the number of completed firings.
func (t *Ticker) Ticks() int { return t.ticks }

// Package topology generates and routes over transit-stub physical network
// topologies, standing in for the GT-ITM generator the paper uses.
//
// A transit-stub topology models the late-1990s Internet shape GT-ITM was
// built around: a small set of densely connected transit (backbone) domains,
// with many stub (edge) domains hanging off transit nodes. Overlay peers live
// on stub nodes; every overlay message crosses the physical shortest path
// between its endpoints, and its latency is the sum of physical link
// latencies along that path.
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeKind classifies a physical node.
type NodeKind uint8

const (
	// Transit nodes form the backbone domains.
	Transit NodeKind = iota
	// Stub nodes form the edge domains where peers attach.
	Stub
)

func (k NodeKind) String() string {
	if k == Transit {
		return "transit"
	}
	return "stub"
}

// Node is a physical host/router.
type Node struct {
	ID     int
	Kind   NodeKind
	Domain int     // index of the domain the node belongs to
	X, Y   float64 // coordinates in the unit square, used for latencies
}

// Edge is a directed half of a physical link with a propagation latency in
// simulated microseconds.
type Edge struct {
	To      int
	Latency int64
}

// Graph is a physical network topology.
//
// Once generated, a Graph is immutable and safe for concurrent use: multiple
// simulation engines (e.g. parallel sweep points) may share one Graph and
// call Latency, Path and Diameter from different goroutines. A Graph must not
// be copied after first use.
type Graph struct {
	Nodes []Node
	Adj   [][]Edge

	// sp memoizes single-source shortest-path trees, one slot per source
	// node, each computed at most once even under concurrent access.
	sp     []spSlot
	spInit sync.Once
	// stubMatrix, when precomputed, holds a dense stub-to-stub latency
	// table consulted by Latency before falling back to Dijkstra.
	stubMatrix atomic.Pointer[latencyMatrix]
}

// spSlot guards lazy computation of one source's shortest-path tree.
type spSlot struct {
	once sync.Once
	t    *spTree
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.Adj {
		total += len(es)
	}
	return total / 2
}

// addEdge inserts an undirected link; duplicate links are ignored.
func (g *Graph) addEdge(a, b int, latency int64) {
	if a == b {
		return
	}
	for _, e := range g.Adj[a] {
		if e.To == b {
			return
		}
	}
	g.Adj[a] = append(g.Adj[a], Edge{To: b, Latency: latency})
	g.Adj[b] = append(g.Adj[b], Edge{To: a, Latency: latency})
}

// Degree returns the number of links at node n.
func (g *Graph) Degree(n int) int { return len(g.Adj[n]) }

// StubNodes returns the ids of all stub nodes in ascending order.
func (g *Graph) StubNodes() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Stub {
			out = append(out, n.ID)
		}
	}
	return out
}

// TransitNodes returns the ids of all transit nodes in ascending order.
func (g *Graph) TransitNodes() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Transit {
			out = append(out, n.ID)
		}
	}
	return out
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Adj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(g.Nodes)
}

// spTree is a single-source shortest-path tree.
type spTree struct {
	dist []int64
	prev []int
}

// shortestPaths returns the memoized Dijkstra tree from src, computing it at
// most once per source even when multiple goroutines race on the same source.
func (g *Graph) shortestPaths(src int) *spTree {
	g.spInit.Do(func() { g.sp = make([]spSlot, len(g.Nodes)) })
	slot := &g.sp[src]
	slot.once.Do(func() { slot.t = g.dijkstra(src) })
	return slot.t
}

// dijkstra computes a fresh single-source shortest-path tree.
func (g *Graph) dijkstra(src int) *spTree {
	n := len(g.Nodes)
	t := &spTree{dist: make([]int64, n), prev: make([]int, n)}
	for i := range t.dist {
		t.dist[i] = math.MaxInt64
		t.prev[i] = -1
	}
	t.dist[src] = 0

	pq := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for pq.Len() > 0 {
		it := pq.pop()
		if it.dist > t.dist[it.node] {
			continue
		}
		for _, e := range g.Adj[it.node] {
			nd := it.dist + e.Latency
			if nd < t.dist[e.To] {
				t.dist[e.To] = nd
				t.prev[e.To] = it.node
				pq.push(distItem{node: e.To, dist: nd})
			}
		}
	}
	return t
}

// Latency returns the shortest-path latency between two nodes in simulated
// microseconds, or an error if they are disconnected.
func (g *Graph) Latency(a, b int) (int64, error) {
	if a == b {
		return 0, nil
	}
	if m := g.stubMatrix.Load(); m != nil {
		if d, ok := m.lookup(a, b); ok {
			if d == math.MaxInt64 {
				return 0, fmt.Errorf("topology: nodes %d and %d are disconnected", a, b)
			}
			return d, nil
		}
	}
	t := g.shortestPaths(a)
	if t.dist[b] == math.MaxInt64 {
		return 0, fmt.Errorf("topology: nodes %d and %d are disconnected", a, b)
	}
	return t.dist[b], nil
}

// latencyMatrix is a dense latency table over the stub nodes, where overlay
// peers live. Row/column order follows StubNodes().
type latencyMatrix struct {
	index []int32 // node id -> compact stub index, -1 for transit nodes
	n     int
	dist  []int64 // n*n, MaxInt64 for disconnected pairs
}

// lookup returns the latency between two nodes if both are covered.
func (m *latencyMatrix) lookup(a, b int) (int64, bool) {
	ia, ib := m.index[a], m.index[b]
	if ia < 0 || ib < 0 {
		return 0, false
	}
	return m.dist[int(ia)*m.n+int(ib)], true
}

// PrecomputeStubMatrix builds the dense stub-to-stub latency table, running
// up to workers Dijkstra computations in parallel. It is optional: without it
// Latency falls back to per-source shortest-path trees. Intended for
// full-scale sweeps where every pair of the ~1,000 stub nodes is exercised.
// Safe to call while other goroutines read the graph; the table is published
// atomically and at most one build runs per call.
func (g *Graph) PrecomputeStubMatrix(workers int) {
	if g.stubMatrix.Load() != nil {
		return
	}
	stubs := g.StubNodes()
	m := &latencyMatrix{index: make([]int32, len(g.Nodes)), n: len(stubs)}
	for i := range m.index {
		m.index[i] = -1
	}
	for i, id := range stubs {
		m.index[id] = int32(i)
	}
	m.dist = make([]int64, len(stubs)*len(stubs))

	if workers < 1 {
		workers = 1
	}
	if workers > len(stubs) {
		workers = len(stubs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stubs) {
					return
				}
				// A throwaway tree per row: rows only need distances
				// to stubs, so the prev arrays are not retained.
				t := g.dijkstra(stubs[i])
				row := m.dist[i*m.n : (i+1)*m.n]
				for j, id := range stubs {
					row[j] = t.dist[id]
				}
			}
		}()
	}
	wg.Wait()
	g.stubMatrix.Store(m)
}

// HasStubMatrix reports whether the dense latency table is available.
func (g *Graph) HasStubMatrix() bool { return g.stubMatrix.Load() != nil }

// Path returns the node sequence of the shortest path from a to b, inclusive
// of both endpoints. Used for link-stress accounting.
func (g *Graph) Path(a, b int) ([]int, error) {
	if a == b {
		return []int{a}, nil
	}
	t := g.shortestPaths(a)
	if t.dist[b] == math.MaxInt64 {
		return nil, fmt.Errorf("topology: nodes %d and %d are disconnected", a, b)
	}
	var rev []int
	for n := b; n != -1; n = t.prev[n] {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Diameter returns the maximum shortest-path latency over sampled node pairs.
// sources limits the computation; pass NumNodes() for the exact diameter.
func (g *Graph) Diameter(sources int) int64 {
	if sources > len(g.Nodes) {
		sources = len(g.Nodes)
	}
	var max int64
	for i := 0; i < sources; i++ {
		t := g.shortestPaths(i)
		for _, d := range t.dist {
			if d != math.MaxInt64 && d > max {
				max = d
			}
		}
	}
	return max
}

// DegreeHistogram returns degree -> node count, with degrees sorted by the
// caller via SortedDegrees.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := range g.Nodes {
		h[g.Degree(i)]++
	}
	return h
}

// SortedDegrees returns the distinct degrees in ascending order.
func SortedDegrees(h map[int]int) []int {
	out := make([]int, 0, len(h))
	for d := range h {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// distItem and distHeap implement the Dijkstra priority queue without
// interface boxing.
type distItem struct {
	node int
	dist int64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes transit-stub generation, mirroring the GT-ITM knobs.
// The defaults produce roughly 1,000 nodes, matching the paper's setup
// ("each network topology is composed of 1,000 nodes").
type Config struct {
	// TransitDomains is the number of backbone domains.
	TransitDomains int
	// TransitNodesPerDomain is the size of each backbone domain.
	TransitNodesPerDomain int
	// StubDomainsPerTransit is how many stub domains attach to each
	// transit node.
	StubDomainsPerTransit int
	// StubNodesPerDomain is the size of each stub domain.
	StubNodesPerDomain int
	// ExtraTransitEdges adds this many random extra backbone links beyond
	// the connectivity spanning structure.
	ExtraTransitEdges int
	// ExtraStubEdges adds this many random extra intra-stub links per
	// stub domain.
	ExtraStubEdges int
	// TransitScale stretches backbone link latencies relative to stub
	// links; backbone hops are long-haul.
	TransitScale float64
	// BaseLatency is the minimum per-link latency in microseconds.
	BaseLatency int64
	// LatencyPerUnit converts Euclidean coordinate distance to
	// microseconds of propagation delay.
	LatencyPerUnit float64
}

// DefaultConfig returns the configuration used by the paper-scale
// experiments: 4 transit domains x 4 nodes, 3 stub domains per transit node,
// ~20 nodes per stub domain => 16 + 48*20.5 ~= 1,000 nodes.
func DefaultConfig() Config {
	return Config{
		TransitDomains:        4,
		TransitNodesPerDomain: 4,
		StubDomainsPerTransit: 3,
		StubNodesPerDomain:    20,
		ExtraTransitEdges:     6,
		ExtraStubEdges:        4,
		TransitScale:          10,
		BaseLatency:           500,   // 0.5 ms minimum per link
		LatencyPerUnit:        20000, // unit square crossing ~= 20 ms
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains %d < 1", c.TransitDomains)
	case c.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: TransitNodesPerDomain %d < 1", c.TransitNodesPerDomain)
	case c.StubDomainsPerTransit < 0:
		return fmt.Errorf("topology: StubDomainsPerTransit %d < 0", c.StubDomainsPerTransit)
	case c.StubNodesPerDomain < 1:
		return fmt.Errorf("topology: StubNodesPerDomain %d < 1", c.StubNodesPerDomain)
	case c.TransitScale <= 0:
		return fmt.Errorf("topology: TransitScale %v <= 0", c.TransitScale)
	case c.LatencyPerUnit <= 0:
		return fmt.Errorf("topology: LatencyPerUnit %v <= 0", c.LatencyPerUnit)
	}
	return nil
}

// TotalNodes returns the node count the configuration will generate.
func (c Config) TotalNodes() int {
	transit := c.TransitDomains * c.TransitNodesPerDomain
	stubs := transit * c.StubDomainsPerTransit * c.StubNodesPerDomain
	return transit + stubs
}

// GenerateTransitStub builds a random transit-stub topology. The same
// (config, seed) pair always yields the same graph.
func GenerateTransitStub(cfg Config, seed int64) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{}

	latency := func(a, b Node, scale float64) int64 {
		dx, dy := a.X-b.X, a.Y-b.Y
		d := math.Sqrt(dx*dx + dy*dy)
		l := cfg.BaseLatency + int64(d*cfg.LatencyPerUnit*scale)
		if l < cfg.BaseLatency {
			l = cfg.BaseLatency
		}
		return l
	}

	// Place transit domains at well-separated anchor points and scatter
	// their nodes tightly around each anchor.
	nextDomain := 0
	transitByDomain := make([][]int, cfg.TransitDomains)
	for d := 0; d < cfg.TransitDomains; d++ {
		angle := 2 * math.Pi * float64(d) / float64(cfg.TransitDomains)
		ax := 0.5 + 0.35*math.Cos(angle)
		ay := 0.5 + 0.35*math.Sin(angle)
		for i := 0; i < cfg.TransitNodesPerDomain; i++ {
			n := Node{
				ID:     len(g.Nodes),
				Kind:   Transit,
				Domain: nextDomain,
				X:      ax + (rng.Float64()-0.5)*0.08,
				Y:      ay + (rng.Float64()-0.5)*0.08,
			}
			g.Nodes = append(g.Nodes, n)
			g.Adj = append(g.Adj, nil)
			transitByDomain[d] = append(transitByDomain[d], n.ID)
		}
		nextDomain++
	}

	// Wire each transit domain internally as a ring plus random chords so
	// it is always connected.
	for _, nodes := range transitByDomain {
		wireDomain(g, nodes, rng, func(a, b int) int64 {
			return latency(g.Nodes[a], g.Nodes[b], 1)
		})
	}

	// Connect transit domains: a ring of domains plus random extra
	// inter-domain links.
	for d := 0; d < cfg.TransitDomains; d++ {
		next := (d + 1) % cfg.TransitDomains
		if next == d {
			break
		}
		a := transitByDomain[d][rng.Intn(len(transitByDomain[d]))]
		b := transitByDomain[next][rng.Intn(len(transitByDomain[next]))]
		g.addEdge(a, b, latency(g.Nodes[a], g.Nodes[b], cfg.TransitScale))
	}
	allTransit := g.TransitNodes()
	for i := 0; i < cfg.ExtraTransitEdges && len(allTransit) > 1; i++ {
		a := allTransit[rng.Intn(len(allTransit))]
		b := allTransit[rng.Intn(len(allTransit))]
		if a != b {
			g.addEdge(a, b, latency(g.Nodes[a], g.Nodes[b], cfg.TransitScale))
		}
	}

	// Attach stub domains to transit nodes.
	for _, tn := range allTransit {
		for s := 0; s < cfg.StubDomainsPerTransit; s++ {
			// Scatter the stub domain near its transit node.
			cx := g.Nodes[tn].X + (rng.Float64()-0.5)*0.12
			cy := g.Nodes[tn].Y + (rng.Float64()-0.5)*0.12
			var members []int
			for i := 0; i < cfg.StubNodesPerDomain; i++ {
				n := Node{
					ID:     len(g.Nodes),
					Kind:   Stub,
					Domain: nextDomain,
					X:      cx + (rng.Float64()-0.5)*0.05,
					Y:      cy + (rng.Float64()-0.5)*0.05,
				}
				g.Nodes = append(g.Nodes, n)
				g.Adj = append(g.Adj, nil)
				members = append(members, n.ID)
			}
			nextDomain++
			wireDomain(g, members, rng, func(a, b int) int64 {
				return latency(g.Nodes[a], g.Nodes[b], 1)
			})
			for i := 0; i < cfg.ExtraStubEdges && len(members) > 1; i++ {
				a := members[rng.Intn(len(members))]
				b := members[rng.Intn(len(members))]
				if a != b {
					g.addEdge(a, b, latency(g.Nodes[a], g.Nodes[b], 1))
				}
			}
			// Uplink: one gateway stub node connects to the transit node.
			gw := members[rng.Intn(len(members))]
			g.addEdge(gw, tn, latency(g.Nodes[gw], g.Nodes[tn], 2))
		}
	}

	if !g.Connected() {
		return nil, fmt.Errorf("topology: generated graph is disconnected (seed %d)", seed)
	}
	return g, nil
}

// wireDomain connects the node set as a ring plus a few random chords,
// guaranteeing intra-domain connectivity.
func wireDomain(g *Graph, nodes []int, rng *rand.Rand, lat func(a, b int) int64) {
	if len(nodes) <= 1 {
		return
	}
	for i := range nodes {
		a, b := nodes[i], nodes[(i+1)%len(nodes)]
		if a == b {
			continue
		}
		g.addEdge(a, b, lat(a, b))
	}
	chords := len(nodes) / 3
	for i := 0; i < chords; i++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		if a != b {
			g.addEdge(a, b, lat(a, b))
		}
	}
}

package topology

import (
	"sync"
	"testing"
)

// TestLatencyConcurrent exercises the lazily-built shortest-path cache from
// many goroutines at once, all hitting overlapping sources. Run under
// -race this is the regression test for the pathCache data race: the old
// map-based cache was populated without synchronization.
func TestLatencyConcurrent(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubNodes()

	// Sequential reference pass on a second, identical graph.
	ref, err := GenerateTransitStub(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const pairs = 400
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				a := stubs[(i*7+gi)%len(stubs)]
				b := stubs[(i*13+gi*5)%len(stubs)]
				got, err := g.Latency(a, b)
				if err != nil {
					errs[gi] = err
					return
				}
				want, err := ref.Latency(a, b)
				if err != nil {
					errs[gi] = err
					return
				}
				if got != want {
					t.Errorf("goroutine %d: Latency(%d,%d) = %d, want %d", gi, a, b, got, want)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStubMatrixMatchesDijkstra checks that the precomputed stub-to-stub
// latency matrix returns exactly the distances the on-demand Dijkstra cache
// computes, for every stub pair.
func TestStubMatrixMatchesDijkstra(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StubNodesPerDomain = 6 // keep the all-pairs check fast
	withMatrix, err := GenerateTransitStub(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GenerateTransitStub(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if withMatrix.HasStubMatrix() {
		t.Fatal("fresh graph claims a stub matrix")
	}
	withMatrix.PrecomputeStubMatrix(4)
	if !withMatrix.HasStubMatrix() {
		t.Fatal("PrecomputeStubMatrix did not publish the matrix")
	}

	stubs := withMatrix.StubNodes()
	for _, a := range stubs {
		for _, b := range stubs {
			got, err := withMatrix.Latency(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Latency(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("matrix Latency(%d,%d) = %d, Dijkstra says %d", a, b, got, want)
			}
		}
	}

	// Non-stub endpoints must still work (they fall back to the tree cache).
	tr := withMatrix.TransitNodes()
	if _, err := withMatrix.Latency(tr[0], stubs[0]); err != nil {
		t.Fatal(err)
	}
}

package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigScale(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := cfg.TotalNodes()
	if n < 800 || n > 1200 {
		t.Fatalf("default config generates %d nodes; the paper uses ~1000", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateTransitStub(DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransitStub(DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestGenerateConnectedAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := GenerateTransitStub(DefaultConfig(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
	}
}

func TestNodeKinds(t *testing.T) {
	cfg := DefaultConfig()
	g, err := GenerateTransitStub(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTransit := cfg.TransitDomains * cfg.TransitNodesPerDomain
	if got := len(g.TransitNodes()); got != wantTransit {
		t.Fatalf("transit nodes = %d, want %d", got, wantTransit)
	}
	if got := len(g.StubNodes()); got != g.NumNodes()-wantTransit {
		t.Fatalf("stub nodes = %d", got)
	}
	if Transit.String() != "transit" || Stub.String() != "stub" {
		t.Fatal("NodeKind strings")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{TransitDomains: 0, TransitNodesPerDomain: 1, StubNodesPerDomain: 1, TransitScale: 1, LatencyPerUnit: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 0, StubNodesPerDomain: 1, TransitScale: 1, LatencyPerUnit: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubDomainsPerTransit: -1, StubNodesPerDomain: 1, TransitScale: 1, LatencyPerUnit: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubNodesPerDomain: 0, TransitScale: 1, LatencyPerUnit: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubNodesPerDomain: 1, TransitScale: 0, LatencyPerUnit: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubNodesPerDomain: 1, TransitScale: 1, LatencyPerUnit: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := GenerateTransitStub(cfg, 1); err == nil {
			t.Errorf("case %d: generation accepted invalid config", i)
		}
	}
}

func TestLatencySymmetricAndPositive(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := rng.Intn(g.NumNodes())
		b := rng.Intn(g.NumNodes())
		lab, err := g.Latency(a, b)
		if err != nil {
			t.Fatal(err)
		}
		lba, err := g.Latency(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if lab != lba {
			t.Fatalf("latency asymmetric: %d vs %d", lab, lba)
		}
		if a != b && lab <= 0 {
			t.Fatalf("non-positive latency %d", lab)
		}
		if a == b && lab != 0 {
			t.Fatalf("self latency %d", lab)
		}
	}
}

func TestPathValidAndMatchesLatency(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	edgeLat := func(a, b int) (int64, bool) {
		for _, e := range g.Adj[a] {
			if e.To == b {
				return e.Latency, true
			}
		}
		return 0, false
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := rng.Intn(g.NumNodes())
		b := rng.Intn(g.NumNodes())
		path, err := g.Path(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != a || path[len(path)-1] != b {
			t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], a, b)
		}
		var sum int64
		for j := 1; j < len(path); j++ {
			l, ok := edgeLat(path[j-1], path[j])
			if !ok {
				t.Fatalf("path uses nonexistent edge %d-%d", path[j-1], path[j])
			}
			sum += l
		}
		want, _ := g.Latency(a, b)
		if sum != want {
			t.Fatalf("path latency %d != shortest %d", sum, want)
		}
	}
}

// TestDijkstraAgainstBruteForce cross-checks shortest paths on small random
// graphs against Floyd-Warshall.
func TestDijkstraAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 3
		g := &Graph{Nodes: make([]Node, n), Adj: make([][]Edge, n)}
		for i := range g.Nodes {
			g.Nodes[i] = Node{ID: i, Kind: Stub}
		}
		// Ring to guarantee connectivity plus random chords.
		for i := 0; i < n; i++ {
			g.addEdge(i, (i+1)%n, int64(rng.Intn(50)+1))
		}
		for i := 0; i < n; i++ {
			g.addEdge(rng.Intn(n), rng.Intn(n), int64(rng.Intn(50)+1))
		}
		// Floyd-Warshall.
		const inf = math.MaxInt64 / 4
		d := make([][]int64, n)
		for i := range d {
			d[i] = make([]int64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
			for _, e := range g.Adj[i] {
				if e.Latency < d[i][e.To] {
					d[i][e.To] = e.Latency
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got, err := g.Latency(i, j)
				if err != nil || got != d[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedError(t *testing.T) {
	g := &Graph{
		Nodes: []Node{{ID: 0}, {ID: 1}},
		Adj:   make([][]Edge, 2),
	}
	if _, err := g.Latency(0, 1); err == nil {
		t.Fatal("disconnected latency did not error")
	}
	if _, err := g.Path(0, 1); err == nil {
		t.Fatal("disconnected path did not error")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.NumNodes() {
		t.Fatalf("histogram covers %d of %d nodes", total, g.NumNodes())
	}
	ds := SortedDegrees(h)
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("SortedDegrees not ascending")
		}
	}
	if ds[0] < 1 {
		t.Fatal("graph has isolated nodes")
	}
}

func TestDiameterPositive(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Diameter(16); d <= 0 {
		t.Fatalf("diameter = %d", d)
	}
}

func TestTransitBackboneLongerThanStubLinks(t *testing.T) {
	g, err := GenerateTransitStub(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Average latency between transit nodes of different domains should
	// exceed the average intra-stub-domain link latency (TransitScale).
	trans := g.TransitNodes()
	var interTransit, n1 float64
	for i := 0; i < len(trans); i++ {
		for j := i + 1; j < len(trans); j++ {
			if g.Nodes[trans[i]].Domain != g.Nodes[trans[j]].Domain {
				l, _ := g.Latency(trans[i], trans[j])
				interTransit += float64(l)
				n1++
			}
		}
	}
	var intraStub, n2 float64
	for _, s := range g.StubNodes() {
		for _, e := range g.Adj[s] {
			if g.Nodes[e.To].Kind == Stub && g.Nodes[e.To].Domain == g.Nodes[s].Domain {
				intraStub += float64(e.Latency)
				n2++
			}
		}
	}
	if interTransit/n1 <= intraStub/n2 {
		t.Fatalf("backbone paths (%.0f) not longer than stub links (%.0f)", interTransit/n1, intraStub/n2)
	}
}

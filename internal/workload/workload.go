// Package workload generates the deterministic synthetic workloads driving
// every experiment: key universes, popularity distributions for lookups, and
// churn (join/leave/crash) schedules.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Keys returns n distinct data keys with a stable naming scheme.
func Keys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("item-%06d", i)
	}
	return keys
}

// InterestKeys returns n keys tagged with an interest category in [0, cats).
// The category is recoverable with KeyCategory, letting interest-based
// experiments route keys to themed s-networks.
func InterestKeys(n, cats int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cat%02d/item-%06d", i%cats, i)
	}
	return keys
}

// KeyCategory extracts the category index from an InterestKeys key, or -1.
func KeyCategory(key string) int {
	var cat, item int
	if _, err := fmt.Sscanf(key, "cat%02d/item-%06d", &cat, &item); err != nil {
		return -1
	}
	return cat
}

// Picker selects keys for lookups according to a popularity distribution.
type Picker interface {
	// Pick returns an index in [0, n) for a universe of n keys.
	Pick() int
}

// UniformPicker selects keys uniformly at random.
type UniformPicker struct {
	N   int
	Rng *rand.Rand
}

// Pick returns a uniform index.
func (p *UniformPicker) Pick() int { return p.Rng.Intn(p.N) }

// ZipfPicker selects keys with Zipf popularity (s > 1), modelling the heavy
// skew of file-sharing workloads.
type ZipfPicker struct {
	z *rand.Zipf
}

// NewZipfPicker creates a Zipf picker over n keys with exponent s and
// offset v (both per math/rand.NewZipf; s > 1, v >= 1).
func NewZipfPicker(rng *rand.Rand, s, v float64, n int) (*ZipfPicker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf over %d keys", n)
	}
	z := rand.NewZipf(rng, s, v, uint64(n-1))
	if z == nil {
		return nil, fmt.Errorf("workload: invalid zipf parameters s=%v v=%v", s, v)
	}
	return &ZipfPicker{z: z}, nil
}

// Pick returns a Zipf-distributed index.
func (p *ZipfPicker) Pick() int { return int(p.z.Uint64()) }

// EventKind classifies a churn event.
type EventKind uint8

// Churn event kinds.
const (
	Join EventKind = iota
	Leave
	Crash
)

func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return "crash"
	}
}

// ChurnEvent is one scheduled membership change. For Join events Peer is -1
// (the runner allocates the new peer); for Leave and Crash it indexes the
// currently-alive peer population and the runner maps it to a concrete peer.
type ChurnEvent struct {
	At   sim.Time
	Kind EventKind
	Peer int
}

// ChurnConfig parameterizes a Poisson churn schedule.
type ChurnConfig struct {
	// Duration of the churn phase.
	Duration sim.Time
	// JoinRate, LeaveRate, CrashRate are events per simulated second.
	JoinRate, LeaveRate, CrashRate float64
}

// PoissonSchedule draws a time-ordered churn schedule. Leave/Crash events
// carry a random population index the runner resolves at execution time.
func PoissonSchedule(rng *rand.Rand, cfg ChurnConfig) []ChurnEvent {
	var events []ChurnEvent
	gen := func(rate float64, kind EventKind) {
		if rate <= 0 {
			return
		}
		t := sim.Time(0)
		for {
			gap := expDraw(rng, rate)
			t += gap
			if t >= cfg.Duration {
				return
			}
			ev := ChurnEvent{At: t, Kind: kind, Peer: -1}
			if kind != Join {
				ev.Peer = rng.Intn(1 << 30)
			}
			events = append(events, ev)
		}
	}
	gen(cfg.JoinRate, Join)
	gen(cfg.LeaveRate, Leave)
	gen(cfg.CrashRate, Crash)
	sortEvents(events)
	return events
}

// expDraw samples an exponential inter-arrival gap for the given per-second
// rate, in simulated time.
func expDraw(rng *rand.Rand, ratePerSecond float64) sim.Time {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	seconds := -math.Log(u) / ratePerSecond
	return sim.Time(seconds * float64(sim.Second))
}

// sortEvents orders events by time, breaking ties by kind then index so the
// schedule is deterministic.
func sortEvents(events []ChurnEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

func less(a, b ChurnEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Peer < b.Peer
}

// CapacityClasses assigns the paper's heterogeneous access-link capacities:
// one third of peers at the lowest capacity, one third at the medium, one
// third at the highest, with highest = 10x lowest. The slice index is the
// peer's creation order; assignment is round-robin so every third is exact.
func CapacityClasses(n int) []float64 {
	caps := make([]float64, n)
	classes := [3]float64{1, math.Sqrt(10), 10}
	for i := range caps {
		caps[i] = classes[i%3]
	}
	return caps
}

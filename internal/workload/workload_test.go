package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestKeysDistinctAndStable(t *testing.T) {
	a := Keys(1000)
	b := Keys(1000)
	seen := make(map[string]bool)
	for i, k := range a {
		if k != b[i] {
			t.Fatal("Keys not stable")
		}
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestInterestKeysRoundTrip(t *testing.T) {
	keys := InterestKeys(200, 7)
	for i, k := range keys {
		if got := KeyCategory(k); got != i%7 {
			t.Fatalf("KeyCategory(%q) = %d, want %d", k, got, i%7)
		}
	}
	if KeyCategory("plain-key") != -1 {
		t.Fatal("uncategorized key should yield -1")
	}
}

func TestUniformPickerBounds(t *testing.T) {
	p := &UniformPicker{N: 10, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 1000; i++ {
		v := p.Pick()
		if v < 0 || v >= 10 {
			t.Fatalf("out of bounds: %d", v)
		}
	}
}

func TestZipfPickerSkewAndBounds(t *testing.T) {
	p, err := NewZipfPicker(rand.New(rand.NewSource(2)), 1.2, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		v := p.Pick()
		if v < 0 || v >= 1000 {
			t.Fatalf("out of bounds: %d", v)
		}
		counts[v]++
	}
	head := counts[0] + counts[1] + counts[2]
	tail := counts[500] + counts[501] + counts[502]
	if head <= tail*5 {
		t.Fatalf("zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfPickerErrors(t *testing.T) {
	if _, err := NewZipfPicker(rand.New(rand.NewSource(1)), 1.2, 1, 0); err == nil {
		t.Fatal("zero-size universe accepted")
	}
	if _, err := NewZipfPicker(rand.New(rand.NewSource(1)), 0.5, 1, 10); err == nil {
		t.Fatal("invalid s accepted")
	}
}

func TestPoissonScheduleOrderedAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := ChurnConfig{
			Duration:  100 * sim.Second,
			JoinRate:  2,
			LeaveRate: 1,
			CrashRate: 0.5,
		}
		evs := PoissonSchedule(rng, cfg)
		for i, ev := range evs {
			if ev.At < 0 || ev.At >= cfg.Duration {
				return false
			}
			if i > 0 && evs[i].At < evs[i-1].At {
				return false
			}
			if ev.Kind == Join && ev.Peer != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonScheduleRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := ChurnConfig{Duration: 1000 * sim.Second, JoinRate: 5}
	evs := PoissonSchedule(rng, cfg)
	// Expect ~5000 events; allow generous slack.
	if len(evs) < 4000 || len(evs) > 6000 {
		t.Fatalf("got %d events for rate 5 over 1000s", len(evs))
	}
}

func TestPoissonScheduleDeterministic(t *testing.T) {
	cfg := ChurnConfig{Duration: 50 * sim.Second, JoinRate: 3, LeaveRate: 2}
	a := PoissonSchedule(rand.New(rand.NewSource(9)), cfg)
	b := PoissonSchedule(rand.New(rand.NewSource(9)), cfg)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestPoissonZeroRates(t *testing.T) {
	evs := PoissonSchedule(rand.New(rand.NewSource(1)), ChurnConfig{Duration: 10 * sim.Second})
	if len(evs) != 0 {
		t.Fatalf("zero rates produced %d events", len(evs))
	}
}

func TestEventKindString(t *testing.T) {
	if Join.String() != "join" || Leave.String() != "leave" || Crash.String() != "crash" {
		t.Fatal("kind strings")
	}
}

func TestCapacityClasses(t *testing.T) {
	caps := CapacityClasses(300)
	counts := map[float64]int{}
	for _, c := range caps {
		counts[c]++
	}
	if counts[1] != 100 || counts[10] != 100 || counts[math.Sqrt(10)] != 100 {
		t.Fatalf("capacity thirds wrong: %v", counts)
	}
	// The paper: highest capacity is 10x the lowest.
	if caps[2]/caps[0] != 10 {
		t.Fatal("highest/lowest != 10")
	}
}

package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryAgainstDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		if math.Abs(s.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if s.Min() != min || s.Max() != max || s.N() != int64(len(xs)) {
			return false
		}
		if len(xs) >= 2 {
			varSum := 0.0
			for _, x := range xs {
				varSum += (x - mean) * (x - mean)
			}
			want := varSum / float64(len(xs)-1)
			if math.Abs(s.Var()-want) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
	if !strings.Contains(s.String(), "n=0") {
		t.Fatal("String missing n")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Fatal("N wrong")
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50) > 1.0 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Adding after sorting re-sorts on next query.
	s.Add(1000)
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("q1 after add = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestSampleQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single-q0", []float64{7}, 0, 7},
		{"single-q50", []float64{7}, 0.5, 7},
		{"single-q100", []float64{7}, 1, 7},
		{"pair-median", []float64{1, 3}, 0.5, 3},       // rank 0.5 rounds up
		{"four-p50", []float64{1, 2, 3, 4}, 0.5, 3},    // rank 1.5 rounds to 2
		{"four-p95", []float64{1, 2, 3, 4}, 0.95, 4},   // rank 2.85 rounds to 3, not floor 2
		{"five-p50", []float64{1, 2, 3, 4, 5}, 0.5, 3}, // exact middle
		{"ten-p95", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.95, 10}, // rank 8.55 -> 9
		{"negative-q", []float64{1, 2, 3}, -0.5, 1},
		{"overflow-q", []float64{1, 2, 3}, 1.5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			for _, x := range tc.xs {
				s.Add(x)
			}
			if got := s.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) on %v = %v, want %v", tc.q, tc.xs, got, tc.want)
			}
		})
	}
}

func TestSummaryAllNegative(t *testing.T) {
	var s Summary
	for _, x := range []float64{-5, -1, -9, -3} {
		s.Add(x)
	}
	if s.Min() != -9 {
		t.Fatalf("Min = %v, want -9", s.Min())
	}
	if s.Max() != -1 {
		t.Fatalf("Max = %v, want -1 (max must not stick at zero)", s.Max())
	}
	if math.Abs(s.Mean()-(-4.5)) > 1e-9 {
		t.Fatalf("Mean = %v, want -4.5", s.Mean())
	}
}

func TestHistogramMassAtOrBelowEmpty(t *testing.T) {
	h := NewHistogram(5)
	if got := h.MassAtOrBelow(100); got != 0 {
		t.Fatalf("MassAtOrBelow on empty histogram = %v, want 0 (not NaN)", got)
	}
	if math.IsNaN(h.MassAtOrBelow(0)) {
		t.Fatal("MassAtOrBelow on empty histogram is NaN")
	}
}

func TestRatioZeroTrials(t *testing.T) {
	var r Ratio
	if got := r.Value(); got != 0 {
		t.Fatalf("Value with zero trials = %v, want 0", got)
	}
	if math.IsNaN(r.Value()) {
		t.Fatal("Value with zero trials is NaN")
	}
}

func TestSeriesYAtTolerance(t *testing.T) {
	s := &Series{Name: "tol"}
	// An x accumulated by repeated float addition won't be bit-exact.
	x := 0.0
	for i := 0; i < 10; i++ {
		x += 0.1
	}
	s.Add(x, 42) // x ≈ 1.0 but != 1.0 exactly
	if x == 1.0 {
		t.Skip("platform added 0.1 ten times exactly")
	}
	// Within the 1e-9 tolerance the stored x must still be found.
	if v, ok := s.YAt(x + 1e-10); !ok || v != 42 {
		t.Fatalf("YAt within tolerance = %v %v, want 42 true", v, ok)
	}
	// Outside the tolerance it must not match.
	if _, ok := s.YAt(x + 1e-6); ok {
		t.Fatal("YAt matched outside tolerance")
	}
}

func TestHistogramPDFSumsToOne(t *testing.T) {
	f := func(raw []uint8, width uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(int(width%10) + 1)
		for _, v := range raw {
			h.Add(int(v))
		}
		_, probs := h.PDF()
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9 && h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 5, 9, 10, 19, 25, 25} {
		h.Add(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || bounds[0] != 0 || bounds[1] != 10 || bounds[2] != 20 {
		t.Fatalf("bounds = %v", bounds)
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if got := h.MassAtOrBelow(10); math.Abs(got-5.0/7) > 1e-9 {
		t.Fatalf("MassAtOrBelow(10) = %v", got)
	}
}

func TestHistogramWidthClamp(t *testing.T) {
	h := NewHistogram(0)
	if h.Width != 1 {
		t.Fatal("width not clamped to 1")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio")
	}
	r.Record(true)
	r.Record(true)
	r.Record(false)
	if math.Abs(r.Value()-2.0/3) > 1e-9 {
		t.Fatalf("ratio = %v", r.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title line.
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.5000") {
		t.Fatal("float formatting missing")
	}
	// Columns aligned: every data line has the value column at the same
	// offset.
	idx := strings.Index(lines[1], "value")
	if idx < 0 || !strings.HasPrefix(lines[3][idx:], "1.5000") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "curve"}
	s.Add(0, 5)
	s.Add(0.5, 2)
	s.Add(1, 9)
	if s.ArgMin() != 0.5 {
		t.Fatalf("ArgMin = %v", s.ArgMin())
	}
	if v, ok := s.YAt(0.5); !ok || v != 2 {
		t.Fatalf("YAt = %v %v", v, ok)
	}
	if _, ok := s.YAt(0.7); ok {
		t.Fatal("YAt found missing x")
	}
	var empty Series
	if empty.ArgMin() != 0 {
		t.Fatal("empty ArgMin")
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 3)
	b.Add(1, 4)
	out := RenderSeries("curves", "x", a, b)
	if !strings.Contains(out, "curves") || !strings.Contains(out, "3.0000") {
		t.Fatalf("render:\n%s", out)
	}
	if out := RenderSeries("none", "x"); !strings.Contains(out, "x") {
		t.Fatal("empty render broken")
	}
}

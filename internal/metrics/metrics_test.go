package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryAgainstDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		if math.Abs(s.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if s.Min() != min || s.Max() != max || s.N() != int64(len(xs)) {
			return false
		}
		if len(xs) >= 2 {
			varSum := 0.0
			for _, x := range xs {
				varSum += (x - mean) * (x - mean)
			}
			want := varSum / float64(len(xs)-1)
			if math.Abs(s.Var()-want) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
	if !strings.Contains(s.String(), "n=0") {
		t.Fatal("String missing n")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if s.N() != 100 {
		t.Fatal("N wrong")
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50) > 1.0 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Adding after sorting re-sorts on next query.
	s.Add(1000)
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("q1 after add = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestHistogramPDFSumsToOne(t *testing.T) {
	f := func(raw []uint8, width uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(int(width%10) + 1)
		for _, v := range raw {
			h.Add(int(v))
		}
		_, probs := h.PDF()
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9 && h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 5, 9, 10, 19, 25, 25} {
		h.Add(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || bounds[0] != 0 || bounds[1] != 10 || bounds[2] != 20 {
		t.Fatalf("bounds = %v", bounds)
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if got := h.MassAtOrBelow(10); math.Abs(got-5.0/7) > 1e-9 {
		t.Fatalf("MassAtOrBelow(10) = %v", got)
	}
}

func TestHistogramWidthClamp(t *testing.T) {
	h := NewHistogram(0)
	if h.Width != 1 {
		t.Fatal("width not clamped to 1")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio")
	}
	r.Record(true)
	r.Record(true)
	r.Record(false)
	if math.Abs(r.Value()-2.0/3) > 1e-9 {
		t.Fatalf("ratio = %v", r.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + 2 rows + title line.
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.5000") {
		t.Fatal("float formatting missing")
	}
	// Columns aligned: every data line has the value column at the same
	// offset.
	idx := strings.Index(lines[1], "value")
	if idx < 0 || !strings.HasPrefix(lines[3][idx:], "1.5000") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "curve"}
	s.Add(0, 5)
	s.Add(0.5, 2)
	s.Add(1, 9)
	if s.ArgMin() != 0.5 {
		t.Fatalf("ArgMin = %v", s.ArgMin())
	}
	if v, ok := s.YAt(0.5); !ok || v != 2 {
		t.Fatalf("YAt = %v %v", v, ok)
	}
	if _, ok := s.YAt(0.7); ok {
		t.Fatal("YAt found missing x")
	}
	var empty Series
	if empty.ArgMin() != 0 {
		t.Fatal("empty ArgMin")
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 3)
	b.Add(1, 4)
	out := RenderSeries("curves", "x", a, b)
	if !strings.Contains(out, "curves") || !strings.Contains(out, "3.0000") {
		t.Fatalf("render:\n%s", out)
	}
	if out := RenderSeries("none", "x"); !strings.Contains(out, "x") {
		t.Fatal("empty render broken")
	}
}

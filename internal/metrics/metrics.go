// Package metrics provides the statistics collectors and table/series
// renderers the experiment harness uses to report results in the same shape
// as the paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming mean/variance/min/max via Welford's method.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// String renders "mean=... n=... min=... max=...".
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.3f sd=%.3f n=%d min=%.3f max=%.3f",
		s.Mean(), s.Stddev(), s.n, s.min, s.max)
}

// Sample keeps every observation for exact quantiles.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range s.xs {
		total += x
	}
	return total / float64(len(s.xs))
}

// Quantile returns the q-th (0..1) quantile by nearest-rank. The rank is
// rounded to the nearest index rather than truncated, so p50/p95 are not
// biased low on small samples.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	idx := int(q*float64(len(s.xs)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.xs) {
		idx = len(s.xs) - 1
	}
	return s.xs[idx]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Histogram counts observations into fixed-width integer buckets; it backs
// the Fig. 4 probability-density functions (data items per peer).
type Histogram struct {
	Width  int
	counts map[int]int64
	total  int64
}

// NewHistogram creates a histogram with the given bucket width (>= 1).
func NewHistogram(width int) *Histogram {
	if width < 1 {
		width = 1
	}
	return &Histogram{Width: width, counts: make(map[int]int64)}
}

// Add records an integer observation.
func (h *Histogram) Add(v int) {
	h.counts[v/h.Width]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns (bucket lower bound, count) pairs in ascending order.
func (h *Histogram) Buckets() ([]int, []int64) {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	bounds := make([]int, len(keys))
	counts := make([]int64, len(keys))
	for i, k := range keys {
		bounds[i] = k * h.Width
		counts[i] = h.counts[k]
	}
	return bounds, counts
}

// PDF returns (bucket lower bound, probability mass) pairs.
func (h *Histogram) PDF() ([]int, []float64) {
	bounds, counts := h.Buckets()
	probs := make([]float64, len(counts))
	for i, c := range counts {
		probs[i] = float64(c) / float64(h.total)
	}
	return bounds, probs
}

// MassAtOrBelow returns the probability mass for values <= v.
func (h *Histogram) MassAtOrBelow(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var m int64
	for k, c := range h.counts {
		if k*h.Width <= v {
			m += c
		}
	}
	return float64(m) / float64(h.total)
}

// Ratio tracks successes over trials (e.g. the lookup failure ratio).
type Ratio struct {
	Hits, Total int64
}

// Record adds one trial.
func (r *Ratio) Record(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 with no trials.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Table is an aligned-column text table, used to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a named (x, y) sequence — one figure curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// ArgMin returns the x at which y is minimal (0 for an empty series).
func (s *Series) ArgMin() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	best := 0
	for i, y := range s.Y {
		if y < s.Y[best] {
			best = i
		}
	}
	return s.X[best]
}

// YAt returns the y value for the point with the given x, or (0, false).
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if math.Abs(xv-x) < 1e-9 {
			return s.Y[i], true
		}
	}
	return 0, false
}

// RenderSeries prints several curves that share an x-axis as one table.
func RenderSeries(title, xName string, curves ...*Series) string {
	headers := append([]string{xName}, make([]string, len(curves))...)
	for i, c := range curves {
		headers[i+1] = c.Name
	}
	t := NewTable(title, headers...)
	if len(curves) == 0 {
		return t.String()
	}
	for i := range curves[0].X {
		row := make([]any, len(curves)+1)
		row[0] = fmt.Sprintf("%.2f", curves[0].X[i])
		for j, c := range curves {
			if i < len(c.Y) {
				row[j+1] = c.Y[i]
			} else {
				row[j+1] = ""
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Command paperexp regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows or curve series
// the paper reports.
//
// Usage:
//
//	paperexp -list
//	paperexp -run Fig5a
//	paperexp -run all -quick
//	paperexp -run Table2 -n 1000 -lookups 10000 -seed 7
//	paperexp -run Fig3a -workers 1
//
// Sweeps run their points on a worker pool sized to the machine; -workers
// pins the pool size (1 forces the sequential path). Output is byte-identical
// for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "scaled-down sweep (fast, coarse)")
		n       = flag.Int("n", 0, "system size (default 1000, or 200 with -quick)")
		items   = flag.Int("items", 0, "data items injected")
		lookups = flag.Int("lookups", 0, "lookups measured")
		seed    = flag.Int64("seed", 42, "random seed")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = sequential)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with -run <id>, or -run all")
		}
		return
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed
	if *seed == 0 {
		// A literal -seed 0 means "seed zero", not "use the default".
		opts.Seed = exp.SeedZero
	}
	opts.Workers = *workers
	if *n > 0 {
		opts.N = *n
	}
	if *items > 0 {
		opts.Items = *items
	}
	if *lookups > 0 {
		opts.Lookups = *lookups
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.Registry()
	} else {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperexp: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		selected = []exp.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("### %s — %s (N=%d items=%d lookups=%d seed=%d)\n\n", e.ID, e.Title, opts.N, opts.Items, opts.Lookups, *seed)
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.String())
		}
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
	}
}

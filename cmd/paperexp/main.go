// Command paperexp regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows or curve series
// the paper reports.
//
// Usage:
//
//	paperexp -list
//	paperexp -run Fig5a
//	paperexp -run all -quick
//	paperexp -run Table2 -n 1000 -lookups 10000 -seed 7
//	paperexp -run Fig3a -workers 1
//	paperexp -run Fig5b -quick -trace fig5b.jsonl -manifest fig5b.json -progress
//
// Sweeps run their points on a worker pool sized to the machine; -workers
// pins the pool size (1 forces the sequential path). Output is byte-identical
// for any worker count.
//
// Observability: -trace writes a JSONL structured event log shared by every
// selected experiment, -manifest writes a machine-readable run manifest with
// one metric snapshot per sweep point, -progress streams per-point completion
// lines to stderr, and -cpuprofile/-memprofile capture pprof profiles. None
// of these change the rendered tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		runID   = flag.String("run", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "scaled-down sweep (fast, coarse)")
		n       = flag.Int("n", 0, "system size (default 1000, or 200 with -quick)")
		items   = flag.Int("items", 0, "data items injected")
		lookups = flag.Int("lookups", 0, "lookups measured")
		seed    = flag.Int64("seed", 42, "random seed")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = sequential)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		hist    = flag.Bool("hist", false, "record lookup histograms; lookup experiments append a percentile table")

		tracePath    = flag.String("trace", "", "write a JSONL structured event trace to this file")
		traceCap     = flag.Int("tracecap", obs.DefaultTraceCap, "trace ring-buffer capacity (with -trace)")
		manifestPath = flag.String("manifest", "", "write a machine-readable run manifest (JSON) to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		progress     = flag.Bool("progress", false, "stream per-point completion lines to stderr")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *runID == "" {
			fmt.Println("\nrun one with -run <id>, or -run all")
		}
		return 0
	}

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed
	if *seed == 0 {
		// A literal -seed 0 means "seed zero", not "use the default".
		opts.Seed = exp.SeedZero
	}
	opts.Workers = *workers
	opts.Hist = *hist
	if *n > 0 {
		opts.N = *n
	}
	if *items > 0 {
		opts.Items = *items
	}
	if *lookups > 0 {
		opts.Lookups = *lookups
	}

	var selected []exp.Experiment
	if *runID == "all" {
		selected = exp.Registry()
	} else {
		e, ok := exp.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "paperexp: unknown experiment %q (use -list)\n", *runID)
			return 2
		}
		selected = []exp.Experiment{e}
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperexp:", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "paperexp:", err)
		}
	}()

	// One tracer per experiment (fresh ring, labeled with the experiment ID),
	// appended to a single JSONL file as each experiment finishes.
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperexp:", err)
			return 1
		}
		defer traceFile.Close()
	}
	if *manifestPath != "" || *progress {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		opts.Obs = obs.NewRecorder("paperexp", opts.Seed, w, map[string]any{
			"run": *runID, "quick": *quick,
			"n": opts.N, "items": opts.Items, "lookups": opts.Lookups,
		})
		if *progress {
			opts.Obs.SetProgress(os.Stderr)
		}
	}

	for _, e := range selected {
		fmt.Printf("### %s — %s (N=%d items=%d lookups=%d seed=%d)\n\n", e.ID, e.Title, opts.N, opts.Items, opts.Lookups, *seed)
		start := time.Now()
		if traceFile != nil {
			opts.Trace = obs.NewTracer(*traceCap)
			opts.Trace.SetLabel(e.ID)
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperexp: %s: %v\n", e.ID, err)
			// Flush whatever the tracer captured: a failing run is exactly
			// when the event trace is most needed.
			if traceFile != nil {
				if werr := opts.Trace.WriteJSONL(traceFile); werr != nil {
					fmt.Fprintln(os.Stderr, "paperexp:", werr)
				}
			}
			return 1
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.String())
		}
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
		if traceFile != nil {
			if err := opts.Trace.WriteJSONL(traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "paperexp:", err)
				return 1
			}
		}
	}

	if *manifestPath != "" {
		if err := opts.Obs.WriteManifest(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "paperexp:", err)
			return 1
		}
	}
	return 0
}

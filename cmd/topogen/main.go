// Command topogen generates a random transit-stub physical topology (the
// GT-ITM stand-in every simulation runs on) and prints its statistics:
// node/edge counts, degree distribution, latency quantiles and diameter.
//
// Example:
//
//	topogen -seed 7
//	topogen -transit 4 -tnodes 4 -stubs 3 -snodes 20 -dot > topo.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		transit = flag.Int("transit", 4, "transit domains")
		tnodes  = flag.Int("tnodes", 4, "nodes per transit domain")
		stubs   = flag.Int("stubs", 3, "stub domains per transit node")
		snodes  = flag.Int("snodes", 20, "nodes per stub domain")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT to stdout instead of stats")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.TransitDomains = *transit
	cfg.TransitNodesPerDomain = *tnodes
	cfg.StubDomainsPerTransit = *stubs
	cfg.StubNodesPerDomain = *snodes

	g, err := topology.GenerateTransitStub(cfg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	if *dot {
		emitDOT(g)
		return
	}

	fmt.Printf("transit-stub topology (seed %d)\n", *seed)
	fmt.Printf("  nodes: %d (%d transit, %d stub)\n", g.NumNodes(), len(g.TransitNodes()), len(g.StubNodes()))
	fmt.Printf("  edges: %d, connected: %v\n", g.NumEdges(), g.Connected())

	hist := g.DegreeHistogram()
	t := metrics.NewTable("degree distribution", "degree", "nodes")
	for _, d := range topology.SortedDegrees(hist) {
		t.AddRow(d, hist[d])
	}
	fmt.Println(t)

	// Latency statistics over sampled pairs.
	var s metrics.Sample
	stubsList := g.StubNodes()
	for i := 0; i < 200 && i < len(stubsList); i++ {
		for j := i + 1; j < i+20 && j < len(stubsList); j++ {
			if l, err := g.Latency(stubsList[i], stubsList[j]); err == nil {
				s.Add(float64(l) / 1000) // ms
			}
		}
	}
	fmt.Printf("stub-to-stub latency (ms): median=%.2f p90=%.2f p99=%.2f\n",
		s.Median(), s.Quantile(0.9), s.Quantile(0.99))
	fmt.Printf("diameter (sampled): %.2f ms\n", float64(g.Diameter(64))/1000)
}

func emitDOT(g *topology.Graph) {
	fmt.Println("graph topo {")
	for i := range g.Nodes {
		n := g.Nodes[i]
		shape := "circle"
		if n.Kind == topology.Transit {
			shape = "box"
		}
		fmt.Printf("  n%d [shape=%s,pos=\"%.3f,%.3f!\"];\n", n.ID, shape, n.X*20, n.Y*20)
	}
	for i := range g.Adj {
		for _, e := range g.Adj[i] {
			if e.To > i {
				fmt.Printf("  n%d -- n%d;\n", i, e.To)
			}
		}
	}
	fmt.Println("}")
}

// Command hybridnode runs the hybrid protocol as a live system: every peer is
// a real node answering heartbeats, joins, stores and lookups against a wall
// clock. The exact same internal/core protocol code that regenerates the
// paper's figures under paperexp here forms a ring, builds s-networks, runs
// failure detection, survives a scripted crash, and answers store/lookup
// requests.
//
// Two transports are available:
//
//   - the default in-process mode runs every peer on the loopback transport
//     of the live runtime (goroutines, channels, wall-clock timers);
//   - with -addr the process becomes one node of a multi-process TCP cluster
//     on the socket runtime (internal/runtime/net). The process with no
//     -bootstrap hosts the well-known server and brokers address allocation;
//     every other process points -bootstrap at it and joins the same ring
//     over real sockets.
//
// Examples:
//
//	hybridnode -n 96 -items 200 -lookups 400 -crash 8
//	hybridnode -n 200 -ps 0.7 -delay 500us -seed 3
//
//	# 3-process TCP cluster on loopback:
//	hybridnode -addr 127.0.0.1:7000 -n 8 -items 40 -linger 1m &
//	hybridnode -addr 127.0.0.1:7001 -bootstrap 127.0.0.1:7000 -n 8 -items 0 -keys 40 -linger 1m &
//	hybridnode -addr 127.0.0.1:7002 -bootstrap 127.0.0.1:7000 -n 8 -items 0 -keys 40 -linger 1m &
//
// The run exits 0 only if the cluster passes every phase: all joins complete,
// the structural audit is satisfied before and after the crash, and the
// post-crash lookup success rate stays above -minsuccess. During -linger,
// SIGINT or SIGTERM shuts the node down cleanly (runtime and introspection
// server closed) and exits with the verdict computed so far.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/introspect"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	rnet "repro/internal/runtime/net"
	"repro/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		n          = flag.Int("n", 96, "number of peers this process joins (min 64 in-process, 1 with -addr)")
		ps         = flag.Float64("ps", 0.6, "proportion of s-peers (0..1)")
		delta      = flag.Int("delta", 3, "s-network degree constraint")
		items      = flag.Int("items", 200, "data items to store from this process")
		keys       = flag.Int("keys", 0, "size of the shared key universe to look up (0: the keys stored here); lets one cluster process look up items another stored")
		lookups    = flag.Int("lookups", 400, "lookups per measurement phase")
		crash      = flag.Int("crash", 8, "peers to crash abruptly mid-run")
		seed       = flag.Int64("seed", 1, "RNG seed (runs stay nondeterministic: real concurrency orders the draws)")
		delay      = flag.Duration("delay", 200*time.Microsecond, "artificial one-way message delay (in-process transport only)")
		minSuccess = flag.Float64("minsuccess", 0.75, "minimum post-crash lookup success rate")
		httpAddr   = flag.String("http", "", "serve live introspection (\"/metrics\", \"/healthz\", \"/ring\", \"/trace\") on this address, e.g. 127.0.0.1:8080")
		linger     = flag.Duration("linger", 0, "keep the cluster (and -http server) running this long after the phases finish")
		addr       = flag.String("addr", "", "TCP endpoint to listen on (e.g. 127.0.0.1:7000); selects the multi-process socket transport")
		advertise  = flag.String("advertise", "", "endpoint other cluster processes dial to reach this one (default: the -addr listener)")
		bootstrap  = flag.String("bootstrap", "", "the cluster bootstrap's endpoint; empty with -addr set makes this process the bootstrap")
		replK      = flag.Int("k", 1, "replication factor: each item lives on its owning t-peer plus k-1 ring successors (1 disables replication)")
		roleFlag   = flag.String("role", "", "pin every peer this process joins to one role: \"t\" or \"s\" (default: let the server decide)")
		alpha      = flag.Int("alpha", 1, "parallel lookup probes on the t-network (1 = single walk)")
		pathcache  = flag.Bool("pathcache", false, "enable lookup-path caching (route hints from successful lookups)")
		routeFlag  = flag.String("route", "finger", "t-network routing strategy: finger | succ")
	)
	flag.Parse()
	netMode := *addr != ""
	minN := 64
	if netMode {
		// A cluster process contributes its slice of the population; the
		// 64-node floor applies to the deployment, not to each process.
		minN = 1
	}
	if *n < minN {
		fmt.Fprintf(os.Stderr, "hybridnode: -n %d below the %d-node minimum\n", *n, minN)
		return 2
	}
	if *crash < 0 || *crash > *n/2 {
		fmt.Fprintf(os.Stderr, "hybridnode: -crash %d outside [0, n/2]\n", *crash)
		return 2
	}
	if !netMode && *bootstrap != "" {
		fmt.Fprintln(os.Stderr, "hybridnode: -bootstrap requires -addr")
		return 2
	}
	var forceRole *core.Role
	switch *roleFlag {
	case "":
	case "t":
		r := core.TPeer
		forceRole = &r
	case "s":
		r := core.SPeer
		forceRole = &r
	default:
		fmt.Fprintf(os.Stderr, "hybridnode: -role %q must be \"t\", \"s\" or empty\n", *roleFlag)
		return 2
	}

	// Wall-clock protocol timers, scaled down from the simulation defaults
	// (HELLO every 2s, 30s operation timeouts) so a demo run finishes in
	// seconds while keeping every Validate constraint: failure detection
	// still takes several missed heartbeats, operations still time out long
	// after any plausible delivery delay.
	cfg := core.DefaultConfig()
	cfg.Ps = *ps
	cfg.Delta = *delta
	cfg.HelloEvery = 100 * runtime.Millisecond
	cfg.HelloTimeout = 400 * runtime.Millisecond
	cfg.SuppressTimeout = 50 * runtime.Millisecond
	cfg.LookupTimeout = 3 * runtime.Second
	cfg.JoinTimeout = 3 * runtime.Second
	cfg.FingerRefreshEvery = 250 * runtime.Millisecond
	cfg.ReplicationK = *replK
	cfg.LookupAlpha = *alpha
	cfg.PathCache = *pathcache
	strat, stratErr := core.StrategyByName(*routeFlag)
	if stratErr != nil {
		fmt.Fprintln(os.Stderr, "hybridnode:", stratErr)
		return 2
	}
	cfg.Route = strat

	var rt runtime.Runtime
	var closeRT func()
	if netMode {
		nrt, err := rnet.New(rnet.Config{
			Listen:       *addr,
			Advertise:    *advertise,
			Bootstrap:    *bootstrap,
			Messages:     core.WireMessages(),
			Seed:         *seed,
			AwaitTimeout: 60 * time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode:", err)
			return 1
		}
		rt, closeRT = nrt, nrt.Close
		role := "worker"
		if nrt.IsBootstrap() {
			role = "bootstrap"
		}
		fmt.Printf("socket transport: %s node at %s\n", role, nrt.Endpoint())
	} else {
		lrt := live.New(live.Config{
			Seed:         *seed,
			Delay:        *delay,
			AwaitTimeout: 60 * time.Second,
		})
		rt, closeRT = lrt, lrt.Close
	}
	defer closeRT()

	var sys *core.System
	var err error
	if netMode && *bootstrap != "" {
		// Worker process: the real server lives with the bootstrap; this
		// system hosts peers only.
		sys, err = core.NewPeerSystem(rt, cfg)
	} else {
		sys, err = core.NewSystem(rt, cfg, 0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode:", err)
		return 1
	}
	if netMode {
		// Even the bootstrap's peer table is a partial view once workers
		// join: structural audits must consult the cluster directory for
		// remote liveness instead of treating unknown addresses as dead.
		sys.MarkPartial()
	}

	// Live introspection (opt-in): lookup/store histograms, a continuous
	// ring-health sampler, a bounded trace ring, and an HTTP server exposing
	// all of it. None of this feeds back into protocol behavior.
	var sampler *core.HealthSampler
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(0)
		sys.SetMetrics(reg)
		sys.SetTracer(tr)
		sampler = core.NewHealthSampler(sys, reg, cfg.HelloEvery)
		rt.Do(sampler.Start)
		srv, err := introspect.Start(introspect.Config{
			Addr: *httpAddr, Sys: sys, Reg: reg, Tracer: tr, Sampler: sampler,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode:", err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("introspection: http://%s/{metrics,healthz,ring,trace,kv}\n", srv.Addr())
	}

	wallStart := time.Now()
	fmt.Printf("joining %d live peers (ps=%.2f δ=%d)...\n", *n, *ps, *delta)
	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: *n, ForceRole: forceRole})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode:", err)
		return 1
	}
	var joinHops metrics.Summary
	for _, js := range joins {
		joinHops.Add(float64(js.Hops))
	}
	var tp, sp int
	rt.Do(func() { tp, sp = len(sys.TPeers()), len(sys.SPeers()) })
	fmt.Printf("cluster up in %v: %d t-peers, %d s-peers here; join hops %s\n",
		time.Since(wallStart).Round(time.Millisecond), tp, sp, &joinHops)

	// Let a few heartbeat and finger-refresh rounds run before auditing.
	sys.Settle(5 * cfg.HelloEvery)
	if err := awaitConsistent(rt, sys, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode: audit after build:", err)
		return 1
	}
	fmt.Println("audit: structure consistent after build")

	universe := workload.Keys(*items)
	if *keys > 0 {
		// The shared universe: workload.Keys is deterministic, so every
		// process in a cluster derives the same key names and lookups here
		// can hit items stored by a different process.
		universe = workload.Keys(*keys)
	}
	stored := 0
	if *items > 0 {
		for i := 0; i < *items; i++ {
			key := universe[i%len(universe)]
			r, err := sys.StoreSync(peers[(i*31)%len(peers)], key, "value-of-"+key)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hybridnode:", err)
				return 1
			}
			if r.OK {
				stored++
			}
		}
		fmt.Printf("stored %d/%d items\n", stored, *items)
	}

	okBefore := lookupPhase(sys, peers, universe, *lookups, "pre-crash")
	if okBefore < 0 {
		return 1
	}

	if *crash > 0 {
		// The crash script runs under Do: Crash mutates shared protocol
		// state, and drawing the victims from the runtime RNG must be
		// serialized against the protocol for the same reason.
		rt.Do(func() {
			live := sys.Peers()
			c := *crash
			if c > len(live)/2 {
				c = len(live) / 2
			}
			for _, idx := range rt.Rand().Perm(len(live))[:c] {
				live[idx].Crash()
			}
		})
		// Give the failure detectors a few timeout windows of wall time,
		// then poll the audit until repair converges.
		sys.Settle(3 * cfg.HelloTimeout)
		if err := awaitConsistent(rt, sys, 20*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode: audit after crash:", err)
			return 1
		}
		var survivors int
		var st core.SystemStats
		rt.Do(func() { survivors = sys.NumPeers(); st = sys.Stats() })
		fmt.Printf("crashed %d peers; %d survive here; promotions=%d rejoins=%d\n",
			*crash, survivors, st.Promotions, st.Rejoins)
		fmt.Println("audit: structure consistent after crash recovery")
	}

	okAfter := lookupPhase(sys, peers, universe, *lookups, "post-crash")
	if okAfter < 0 {
		return 1
	}
	rate := float64(okAfter) / float64(*lookups)
	if *linger > 0 {
		// A lingering node is a server: SIGINT/SIGTERM must shut it down
		// cleanly — runtime and introspection closed by the deferred
		// handlers on this return path — and still report the verdict,
		// instead of dying on the default signal action with the sockets
		// mid-frame.
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		fmt.Printf("lingering %v for introspection...\n", *linger)
		select {
		case <-time.After(*linger):
		case sig := <-sigCh:
			fmt.Printf("received %v; shutting down\n", sig)
		}
		signal.Stop(sigCh)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(wallStart).Round(time.Millisecond))
	if rate < *minSuccess {
		fmt.Fprintf(os.Stderr, "hybridnode: post-crash success %.2f below minimum %.2f\n", rate, *minSuccess)
		return 1
	}
	return 0
}

// lookupPhase issues count lookups of stored keys from surviving peers and
// prints a summary line. It returns the success count, or -1 on a runtime
// error (an Await timeout, i.e. the cluster wedged).
func lookupPhase(sys *core.System, peers []*core.Peer, keys []string, count int, label string) int {
	if len(keys) == 0 || count == 0 {
		return 0
	}
	rt := sys.Runtime()
	var hops, lat metrics.Summary
	ok := 0
	for i := 0; i < count; i++ {
		origin := peers[(i*53)%len(peers)]
		var alive bool
		rt.Do(func() { alive = origin.Alive() })
		if !alive {
			rt.Do(func() {
				if live := sys.Peers(); len(live) > 0 {
					origin = live[i%len(live)]
				}
			})
		}
		r, err := sys.LookupSync(origin, keys[(i*17)%len(keys)])
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridnode: %s lookup: %v\n", label, err)
			return -1
		}
		if r.OK {
			ok++
			hops.Add(float64(r.Hops))
			lat.Add(float64(r.Latency) / float64(runtime.Millisecond))
		}
	}
	fmt.Printf("%s lookups: %d/%d ok; hops %s; latency %s ms\n", label, ok, count, &hops, &lat)
	return ok
}

// awaitConsistent polls the structural audit under the executor lock until it
// passes or the wall-clock deadline expires. Live runs need the poll: the
// audit can observe a repair mid-flight (a watchdog not yet cancelled, an
// operation not yet drained) that the next heartbeat round resolves.
//
// A full-view system runs the white-box invariant checker. A partial system
// (one process of a multi-process cluster) cannot — ring and tree edges cross
// process boundaries — so it runs the scored HealthScore pass, which consults
// the cluster directory for remote liveness, and requires a clean bill.
func awaitConsistent(rt runtime.Runtime, sys *core.System, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var err error
		rt.Do(func() {
			if sys.Partial() {
				if h := sys.HealthScore(); !h.Healthy() {
					err = fmt.Errorf("health: %+v", h)
				}
			} else {
				err = sys.CheckInvariants()
			}
		})
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Command hybridnode runs the hybrid protocol as a live in-process system:
// every peer is a real node on the loopback transport of the live runtime
// (goroutines, channels, wall-clock timers) instead of a discrete-event
// simulation. The exact same internal/core protocol code that regenerates the
// paper's figures under paperexp here forms a ring, builds s-networks, runs
// heartbeats and failure detection against the wall clock, survives a
// scripted crash, and answers store/lookup requests.
//
// Example:
//
//	hybridnode -n 96 -items 200 -lookups 400 -crash 8
//	hybridnode -n 200 -ps 0.7 -delay 500us -seed 3
//
// The run exits 0 only if the cluster passes every phase: all joins complete,
// the invariant checker is satisfied before and after the crash, and the
// post-crash lookup success rate stays above -minsuccess.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/introspect"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/live"
	"repro/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		n          = flag.Int("n", 96, "number of peers (min 64)")
		ps         = flag.Float64("ps", 0.6, "proportion of s-peers (0..1)")
		delta      = flag.Int("delta", 3, "s-network degree constraint")
		items      = flag.Int("items", 200, "data items to store")
		lookups    = flag.Int("lookups", 400, "lookups per measurement phase")
		crash      = flag.Int("crash", 8, "peers to crash abruptly mid-run")
		seed       = flag.Int64("seed", 1, "RNG seed (runs stay nondeterministic: real concurrency orders the draws)")
		delay      = flag.Duration("delay", 200*time.Microsecond, "artificial one-way message delay on the loopback transport")
		minSuccess = flag.Float64("minsuccess", 0.75, "minimum post-crash lookup success rate")
		httpAddr   = flag.String("http", "", "serve live introspection (\"/metrics\", \"/healthz\", \"/ring\", \"/trace\") on this address, e.g. 127.0.0.1:8080")
		linger     = flag.Duration("linger", 0, "keep the cluster (and -http server) running this long after the phases finish")
	)
	flag.Parse()
	if *n < 64 {
		fmt.Fprintf(os.Stderr, "hybridnode: -n %d below the 64-node minimum\n", *n)
		return 2
	}
	if *crash < 0 || *crash > *n/2 {
		fmt.Fprintf(os.Stderr, "hybridnode: -crash %d outside [0, n/2]\n", *crash)
		return 2
	}

	// Wall-clock protocol timers, scaled down from the simulation defaults
	// (HELLO every 2s, 30s operation timeouts) so a demo run finishes in
	// seconds while keeping every Validate constraint: failure detection
	// still takes several missed heartbeats, operations still time out long
	// after any plausible delivery delay.
	cfg := core.DefaultConfig()
	cfg.Ps = *ps
	cfg.Delta = *delta
	cfg.HelloEvery = 100 * runtime.Millisecond
	cfg.HelloTimeout = 400 * runtime.Millisecond
	cfg.SuppressTimeout = 50 * runtime.Millisecond
	cfg.LookupTimeout = 3 * runtime.Second
	cfg.JoinTimeout = 3 * runtime.Second
	cfg.FingerRefreshEvery = 250 * runtime.Millisecond

	rt := live.New(live.Config{
		Seed:         *seed,
		Delay:        *delay,
		AwaitTimeout: 60 * time.Second,
	})
	defer rt.Close()

	sys, err := core.NewSystem(rt, cfg, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode:", err)
		return 1
	}

	// Live introspection (opt-in): lookup/store histograms, a continuous
	// ring-health sampler, a bounded trace ring, and an HTTP server exposing
	// all of it. None of this feeds back into protocol behavior.
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(0)
		sys.SetMetrics(reg)
		sys.SetTracer(tr)
		sampler := core.NewHealthSampler(sys, reg, cfg.HelloEvery)
		rt.Do(sampler.Start)
		srv, err := introspect.Start(introspect.Config{
			Addr: *httpAddr, Sys: sys, Reg: reg, Tracer: tr, Sampler: sampler,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode:", err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("introspection: http://%s/{metrics,healthz,ring,trace}\n", srv.Addr())
	}

	wallStart := time.Now()
	fmt.Printf("joining %d live peers (ps=%.2f δ=%d delay=%v)...\n", *n, *ps, *delta, *delay)
	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: *n})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode:", err)
		return 1
	}
	var joinHops metrics.Summary
	for _, js := range joins {
		joinHops.Add(float64(js.Hops))
	}
	var tp, sp int
	rt.Do(func() { tp, sp = len(sys.TPeers()), len(sys.SPeers()) })
	fmt.Printf("cluster up in %v: %d t-peers, %d s-peers; join hops %s\n",
		time.Since(wallStart).Round(time.Millisecond), tp, sp, &joinHops)

	// Let a few heartbeat and finger-refresh rounds run before auditing.
	sys.Settle(5 * cfg.HelloEvery)
	if err := awaitInvariants(rt, sys, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "hybridnode: invariants after build:", err)
		return 1
	}
	fmt.Println("invariants: all hold after build")

	keys := workload.Keys(*items)
	stored := 0
	for i, key := range keys {
		r, err := sys.StoreSync(peers[(i*31)%len(peers)], key, "value-of-"+key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode:", err)
			return 1
		}
		if r.OK {
			stored++
		}
	}
	fmt.Printf("stored %d/%d items\n", stored, *items)

	okBefore := lookupPhase(sys, peers, keys, *lookups, "pre-crash")
	if okBefore < 0 {
		return 1
	}

	if *crash > 0 {
		// The crash script runs under Do: Crash mutates shared protocol
		// state, and drawing the victims from the runtime RNG must be
		// serialized against the protocol for the same reason.
		rt.Do(func() {
			live := sys.Peers()
			for _, idx := range rt.Rand().Perm(len(live))[:*crash] {
				live[idx].Crash()
			}
		})
		// Give the failure detectors a few timeout windows of wall time,
		// then poll the invariant checker until repair converges.
		sys.Settle(3 * cfg.HelloTimeout)
		if err := awaitInvariants(rt, sys, 20*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "hybridnode: invariants after crash:", err)
			return 1
		}
		var survivors int
		var st core.SystemStats
		rt.Do(func() { survivors = sys.NumPeers(); st = sys.Stats() })
		fmt.Printf("crashed %d peers; %d survive; promotions=%d rejoins=%d\n",
			*crash, survivors, st.Promotions, st.Rejoins)
		fmt.Println("invariants: all hold after crash recovery")
	}

	okAfter := lookupPhase(sys, peers, keys, *lookups, "post-crash")
	if okAfter < 0 {
		return 1
	}
	rate := float64(okAfter) / float64(*lookups)
	if *linger > 0 {
		fmt.Printf("lingering %v for introspection...\n", *linger)
		time.Sleep(*linger)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(wallStart).Round(time.Millisecond))
	if rate < *minSuccess {
		fmt.Fprintf(os.Stderr, "hybridnode: post-crash success %.2f below minimum %.2f\n", rate, *minSuccess)
		return 1
	}
	return 0
}

// lookupPhase issues count lookups of stored keys from surviving peers and
// prints a summary line. It returns the success count, or -1 on a runtime
// error (an Await timeout, i.e. the cluster wedged).
func lookupPhase(sys *core.System, peers []*core.Peer, keys []string, count int, label string) int {
	rt := sys.Runtime()
	var hops, lat metrics.Summary
	ok := 0
	for i := 0; i < count; i++ {
		origin := peers[(i*53)%len(peers)]
		var alive bool
		rt.Do(func() { alive = origin.Alive() })
		if !alive {
			rt.Do(func() {
				if live := sys.Peers(); len(live) > 0 {
					origin = live[i%len(live)]
				}
			})
		}
		r, err := sys.LookupSync(origin, keys[(i*17)%len(keys)])
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridnode: %s lookup: %v\n", label, err)
			return -1
		}
		if r.OK {
			ok++
			hops.Add(float64(r.Hops))
			lat.Add(float64(r.Latency) / float64(runtime.Millisecond))
		}
	}
	fmt.Printf("%s lookups: %d/%d ok; hops %s; latency %s ms\n", label, ok, count, &hops, &lat)
	return ok
}

// awaitInvariants polls the invariant checker under the executor lock until
// it passes or the wall-clock deadline expires. Live runs need the poll: the
// checker can observe a repair mid-flight (a watchdog not yet cancelled, an
// operation not yet drained) that the next heartbeat round resolves.
func awaitInvariants(rt runtime.Runtime, sys *core.System, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var err error
		rt.Do(func() { err = sys.CheckInvariants() })
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

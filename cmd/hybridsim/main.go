// Command hybridsim runs one hybrid peer-to-peer simulation with every knob
// exposed and prints a protocol- and performance-level report. It is the
// free-form companion to paperexp: where paperexp regenerates the paper's
// exact tables, hybridsim answers "what happens if ...".
//
// Example:
//
//	hybridsim -n 1000 -ps 0.7 -delta 3 -ttl 4 -items 5000 -lookups 2000
//	hybridsim -ps 0.5 -tracker
//	hybridsim -ps 0.7 -hetero -topoaware -landmarks 12 -bypass
//	hybridsim -ps 0.8 -crash 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of peers")
		ps        = flag.Float64("ps", 0.7, "proportion of s-peers (0..1)")
		delta     = flag.Int("delta", 3, "s-network degree constraint")
		ttl       = flag.Int("ttl", 4, "flood TTL")
		items     = flag.Int("items", 5000, "data items to insert")
		lookups   = flag.Int("lookups", 2000, "lookups to measure")
		seed      = flag.Int64("seed", 1, "random seed")
		placement = flag.String("placement", "spread", "data placement: tpeer | spread")
		hetero    = flag.Bool("hetero", false, "enable link heterogeneity support")
		topoaware = flag.Bool("topoaware", false, "enable landmark binning")
		landmarks = flag.Int("landmarks", 8, "number of landmarks (with -topoaware)")
		bypass    = flag.Bool("bypass", false, "enable bypass links")
		tracker   = flag.Bool("tracker", false, "BitTorrent-style tracker s-networks")
		interests = flag.Int("interests", 0, "interest categories (>0 enables interest-based s-networks)")
		crash     = flag.Float64("crash", 0, "fraction of peers to crash before the lookup phase")
		zipf      = flag.Bool("zipf", false, "Zipf-skewed lookup popularity instead of uniform")
		walk      = flag.Bool("walk", false, "random-walk s-network search instead of flooding")
		caching   = flag.Bool("caching", false, "enable the future-work hot-data caching scheme")
		linear    = flag.Bool("linear", false, "successor-only ring routing (the paper's simulated behavior)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Ps = *ps
	cfg.Delta = *delta
	cfg.TTL = *ttl
	cfg.Heterogeneity = *hetero
	cfg.TopologyAware = *topoaware
	cfg.Landmarks = *landmarks
	cfg.Bypass = *bypass
	cfg.TrackerMode = *tracker
	cfg.InterestCategories = *interests
	cfg.RandomWalk = *walk
	cfg.Caching = *caching
	cfg.SuccessorRouting = *linear
	cfg.LookupTimeout = 5 * sim.Second
	if *linear {
		cfg.LookupTimeout = 180 * sim.Second
	}
	if *topoaware {
		cfg.Assignment = core.AssignCluster
	}
	if *interests > 0 {
		cfg.Assignment = core.AssignInterest
	}
	switch *placement {
	case "tpeer":
		cfg.Placement = core.PlaceAtTPeer
	case "spread":
		cfg.Placement = core.PlaceSpread
	default:
		fmt.Fprintf(os.Stderr, "hybridsim: unknown placement %q\n", *placement)
		os.Exit(2)
	}

	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), *seed)
	fatal(err)
	eng := sim.New(*seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	sys, err := core.NewSystem(eng, net, topo, cfg, topo.StubNodes()[0])
	fatal(err)

	fmt.Printf("building %d peers (ps=%.2f δ=%d ttl=%d placement=%s)...\n", *n, *ps, *delta, *ttl, cfg.Placement)
	var caps []float64
	if *hetero {
		caps = workload.CapacityClasses(*n)
	}
	var ints []int
	if *interests > 0 {
		ints = make([]int, *n)
		for i := range ints {
			ints[i] = i % *interests
		}
	}
	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: *n, Capacities: caps, Interests: ints})
	fatal(err)
	sys.Settle(10 * sim.Second)
	fatal(sys.CheckRing())
	fatal(sys.CheckTrees())

	var joinHops metrics.Summary
	for _, js := range joins {
		joinHops.Add(float64(js.Hops))
	}
	fmt.Printf("built: %d t-peers, %d s-peers; join hops %s\n",
		len(sys.TPeers()), len(sys.SPeers()), &joinHops)

	// Insert data.
	var keys []string
	if *interests > 0 {
		keys = workload.InterestKeys(*items, *interests)
	} else {
		keys = workload.Keys(*items)
	}
	stored := 0
	for i, key := range keys {
		r, err := sys.StoreSync(peers[(i*31)%len(peers)], key, "value-of-"+key)
		fatal(err)
		if r.OK {
			stored++
		}
	}
	fmt.Printf("stored %d/%d items; total items in system: %d\n", stored, *items, sys.TotalItems())

	if *crash > 0 {
		before := sys.NumPeers()
		rng := eng.Rand()
		var live []*core.Peer
		for _, p := range peers {
			if p.Alive() {
				live = append(live, p)
			}
		}
		for _, idx := range rng.Perm(len(live))[:int(*crash*float64(len(live)))] {
			live[idx].Crash()
		}
		sys.Settle(3 * cfg.HelloTimeout)
		fmt.Printf("crashed %d of %d peers; %d survive; promotions=%d rejoins=%d\n",
			before-sys.NumPeers(), before, sys.NumPeers(),
			sys.Stats().Promotions, sys.Stats().Rejoins)
	}

	// Lookups.
	var pick workload.Picker = &workload.UniformPicker{N: len(keys), Rng: eng.Rand()}
	if *zipf {
		zp, err := workload.NewZipfPicker(eng.Rand(), 1.2, 1, len(keys))
		fatal(err)
		pick = zp
	}
	var hops, lat, contacts metrics.Summary
	fails := 0
	for i := 0; i < *lookups; i++ {
		origin := peers[(i*53)%len(peers)]
		if !origin.Alive() {
			origin = sys.Peers()[i%sys.NumPeers()]
		}
		r, err := sys.LookupSync(origin, keys[pick.Pick()])
		fatal(err)
		if r.OK {
			hops.Add(float64(r.Hops))
			lat.Add(float64(r.Latency) / float64(sim.Millisecond))
		} else {
			fails++
		}
		contacts.Add(float64(r.Contacts))
	}
	fmt.Printf("\nlookups: %d issued, %d failed (%.2f%%)\n", *lookups, fails, 100*float64(fails)/float64(*lookups))
	fmt.Printf("  hops     %s\n", &hops)
	fmt.Printf("  latency  %s ms\n", &lat)
	fmt.Printf("  contacts %s (total connum %d)\n", &contacts, int64(contacts.Mean()*float64(contacts.N())))

	st := sys.Stats()
	if *caching {
		cached := 0
		for _, p := range sys.Peers() {
			cached += p.NumCached()
		}
		fmt.Printf("caching: %d surrogate copies, %d pushes, %d cache hits\n",
			cached, st.CachePushes, st.CacheHits)
	}
	ns := net.Stats()
	fmt.Printf("\nprotocol counters: %+v\n", st)
	fmt.Printf("network: sent=%d delivered=%d dropped=%d bytes=%d\n",
		ns.MessagesSent, ns.MessagesDelivered, ns.MessagesDropped, ns.BytesSent)
	fmt.Printf("simulated time: %v; events: %d\n", eng.Now(), eng.Dispatched())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

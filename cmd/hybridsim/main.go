// Command hybridsim runs one hybrid peer-to-peer simulation with every knob
// exposed and prints a protocol- and performance-level report. It is the
// free-form companion to paperexp: where paperexp regenerates the paper's
// exact tables, hybridsim answers "what happens if ...".
//
// Example:
//
//	hybridsim -n 1000 -ps 0.7 -delta 3 -ttl 4 -items 5000 -lookups 2000
//	hybridsim -ps 0.5 -tracker
//	hybridsim -ps 0.7 -hetero -topoaware -landmarks 12 -bypass
//	hybridsim -ps 0.8 -crash 0.2
//	hybridsim -ps 0.7 -crash 0.2 -droprate 0.05 -duprate 0.05 -jitter 20ms
//	hybridsim -ps 0.7 -partition 30,60
//	hybridsim -ps 0.1,0.3,0.5,0.7,0.9 -workers 4
//	hybridsim -ps 0.7 -trace run.jsonl -manifest run.json -progress
//
// -ps accepts a comma-separated list; the points run concurrently on a
// worker pool over one shared topology and the reports print in list order.
//
// Observability: -trace writes a JSONL event log (one tracer per sweep point,
// concatenated in point order), -manifest writes a machine-readable run
// manifest with per-point metric snapshots, -progress streams per-point
// completion lines to stderr, and -cpuprofile/-memprofile capture pprof
// profiles. None of these change the report output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// simParams carries every flag a single simulation run needs.
type simParams struct {
	n, delta, ttl  int
	items, lookups int
	seed           int64
	ps             float64
	placement      string
	hetero         bool
	topoaware      bool
	landmarks      int
	bypass         bool
	tracker        bool
	interests      int
	crash          float64
	zipf           bool
	walk           bool
	caching        bool
	linear         bool
	hist           bool
	alpha          int
	pathcache      bool
	route          string

	// Fault injection (see internal/simnet.FaultConfig).
	dropRate, dupRate  float64
	jitter             sim.Time
	partStart, partEnd sim.Time
	hasPartition       bool
	faultSeed          int64
}

// faultsEnabled reports whether any fault-injection flag is set.
func (p simParams) faultsEnabled() bool {
	return p.dropRate > 0 || p.dupRate > 0 || p.jitter > 0 || p.hasPartition
}

func main() { os.Exit(run()) }

func run() int {
	var (
		n         = flag.Int("n", 1000, "number of peers")
		psList    = flag.String("ps", "0.7", "proportion of s-peers (0..1); comma-separated list sweeps")
		delta     = flag.Int("delta", 3, "s-network degree constraint")
		ttl       = flag.Int("ttl", 4, "flood TTL")
		items     = flag.Int("items", 5000, "data items to insert")
		lookups   = flag.Int("lookups", 2000, "lookups to measure")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers for a -ps sweep (0 = all CPUs)")
		placement = flag.String("placement", "spread", "data placement: tpeer | spread")
		hetero    = flag.Bool("hetero", false, "enable link heterogeneity support")
		topoaware = flag.Bool("topoaware", false, "enable landmark binning")
		landmarks = flag.Int("landmarks", 8, "number of landmarks (with -topoaware)")
		bypass    = flag.Bool("bypass", false, "enable bypass links")
		tracker   = flag.Bool("tracker", false, "BitTorrent-style tracker s-networks")
		interests = flag.Int("interests", 0, "interest categories (>0 enables interest-based s-networks)")
		crash     = flag.Float64("crash", 0, "fraction of peers to crash before the lookup phase")
		zipf      = flag.Bool("zipf", false, "Zipf-skewed lookup popularity instead of uniform")
		walk      = flag.Bool("walk", false, "random-walk s-network search instead of flooding")
		caching   = flag.Bool("caching", false, "enable the future-work hot-data caching scheme")
		linear    = flag.Bool("linear", false, "successor-only ring routing (the paper's simulated behavior)")
		hist      = flag.Bool("hist", false, "record lookup/store histograms and print latency/hop percentiles")
		alpha     = flag.Int("alpha", 1, "parallel lookup probes on the t-network (1 = the paper's single walk)")
		pathcache = flag.Bool("pathcache", false, "enable lookup-path caching (successful lookups deposit route hints)")
		route     = flag.String("route", "finger", "t-network routing strategy: finger | succ")

		dropRate  = flag.Float64("droprate", 0, "fault injection: per-message drop probability (0..1)")
		dupRate   = flag.Float64("duprate", 0, "fault injection: per-message duplication probability (0..1)")
		jitter    = flag.Duration("jitter", 0, "fault injection: max extra delivery delay per message (e.g. 50ms)")
		partition = flag.String("partition", "", "fault injection: \"start,end\" in simulated seconds; isolates the first half of the stub hosts for that window")
		faultSeed = flag.Int64("faultseed", 1, "fault injection RNG seed (independent of -seed)")

		tracePath    = flag.String("trace", "", "write a JSONL structured event trace to this file")
		traceCap     = flag.Int("tracecap", obs.DefaultTraceCap, "ring-buffer capacity per sweep point (with -trace)")
		manifestPath = flag.String("manifest", "", "write a machine-readable run manifest (JSON) to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		progress     = flag.Bool("progress", false, "stream per-point completion lines to stderr")
	)
	flag.Parse()

	var points []float64
	for _, f := range strings.Split(*psList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridsim: bad -ps value %q: %v\n", f, err)
			return 2
		}
		points = append(points, v)
	}

	var partStart, partEnd sim.Time
	hasPartition := false
	if *partition != "" {
		lo, hi, ok := strings.Cut(*partition, ",")
		a, errA := strconv.ParseFloat(strings.TrimSpace(lo), 64)
		b, errB := strconv.ParseFloat(strings.TrimSpace(hi), 64)
		if !ok || errA != nil || errB != nil || a < 0 || b <= a {
			fmt.Fprintf(os.Stderr, "hybridsim: bad -partition %q: want \"start,end\" in seconds with end > start >= 0\n", *partition)
			return 2
		}
		partStart = sim.Time(a * float64(sim.Second))
		partEnd = sim.Time(b * float64(sim.Second))
		hasPartition = true
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", err)
		}
	}()

	params := make([]simParams, len(points))
	for i, ps := range points {
		params[i] = simParams{
			n: *n, delta: *delta, ttl: *ttl,
			items: *items, lookups: *lookups,
			seed: *seed, ps: ps, placement: *placement,
			hetero: *hetero, topoaware: *topoaware, landmarks: *landmarks,
			bypass: *bypass, tracker: *tracker, interests: *interests,
			crash: *crash, zipf: *zipf, walk: *walk, caching: *caching,
			linear: *linear, hist: *hist,
			alpha: *alpha, pathcache: *pathcache, route: *route,
			dropRate: *dropRate, dupRate: *dupRate, jitter: sim.Time(jitter.Microseconds()),
			partStart: partStart, partEnd: partEnd, hasPartition: hasPartition,
			faultSeed: *faultSeed,
		}
	}

	// One immutable topology shared by every point; Graph is concurrency-safe
	// after generation, and a single graph keeps a multi-point sweep from
	// paying N Dijkstra caches.
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		return 1
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(params) {
		w = len(params)
	}

	// One tracer per sweep point so concurrent points never interleave in the
	// ring; the JSONL file is written sequentially in point order afterwards.
	tracers := make([]*obs.Tracer, len(params))
	if *tracePath != "" {
		for i := range tracers {
			tracers[i] = obs.NewTracer(*traceCap)
			tracers[i].SetLabel(fmt.Sprintf("ps=%.2f", params[i].ps))
		}
	}
	var rec *obs.Recorder
	if *manifestPath != "" || *progress {
		rec = obs.NewRecorder("hybridsim", *seed, w, map[string]any{
			"n": *n, "ps": *psList, "delta": *delta, "ttl": *ttl,
			"items": *items, "lookups": *lookups, "placement": *placement,
			"hetero": *hetero, "topoaware": *topoaware, "landmarks": *landmarks,
			"bypass": *bypass, "tracker": *tracker, "interests": *interests,
			"crash": *crash, "zipf": *zipf, "walk": *walk, "caching": *caching,
			"linear": *linear, "hist": *hist,
			"alpha": *alpha, "pathcache": *pathcache, "route": *route,
			"droprate": *dropRate, "duprate": *dupRate, "jitter": jitter.String(),
			"partition": *partition, "faultseed": *faultSeed,
		})
		if *progress {
			rec.SetProgress(os.Stderr)
		}
	}

	outs := make([]strings.Builder, len(params))
	errs := make([]error, len(params))
	if w <= 1 {
		for i := range params {
			errs[i] = runSim(&outs[i], topo, params[i], tracers[i], rec)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(params) {
						return
					}
					errs[i] = runSim(&outs[i], topo, params[i], tracers[i], rec)
				}
			}()
		}
		wg.Wait()
	}

	for i := range params {
		if len(params) > 1 {
			fmt.Printf("===== ps=%.2f =====\n", params[i].ps)
		}
		os.Stdout.WriteString(outs[i].String())
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", errs[i])
			return 1
		}
		if len(params) > 1 {
			fmt.Println()
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", err)
			return 1
		}
		for _, tr := range tracers {
			if err := tr.WriteJSONL(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "hybridsim:", err)
				return 1
			}
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", err)
			return 1
		}
	}
	if *manifestPath != "" {
		if err := rec.WriteManifest(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", err)
			return 1
		}
	}
	return 0
}

// runSim executes one full simulation and writes the report to w. It only
// touches its own engine and system, so several runSims may execute
// concurrently over the same topology graph. tr and rec may be nil; neither
// affects the report.
func runSim(w io.Writer, topo *topology.Graph, p simParams, tr *obs.Tracer, rec *obs.Recorder) error {
	wallStart := time.Now()
	cfg := core.DefaultConfig()
	cfg.Ps = p.ps
	cfg.Delta = p.delta
	cfg.TTL = p.ttl
	cfg.Heterogeneity = p.hetero
	cfg.TopologyAware = p.topoaware
	cfg.Landmarks = p.landmarks
	cfg.Bypass = p.bypass
	cfg.TrackerMode = p.tracker
	cfg.InterestCategories = p.interests
	cfg.RandomWalk = p.walk
	cfg.Caching = p.caching
	cfg.SuccessorRouting = p.linear
	cfg.LookupAlpha = p.alpha
	cfg.PathCache = p.pathcache
	strat, err := core.StrategyByName(p.route)
	if err != nil {
		return err
	}
	cfg.Route = strat
	cfg.LookupTimeout = 5 * sim.Second
	if p.linear {
		cfg.LookupTimeout = 180 * sim.Second
	}
	if p.topoaware {
		cfg.Assignment = core.AssignCluster
	}
	if p.interests > 0 {
		cfg.Assignment = core.AssignInterest
	}
	switch p.placement {
	case "tpeer":
		cfg.Placement = core.PlaceAtTPeer
	case "spread":
		cfg.Placement = core.PlaceSpread
	default:
		return fmt.Errorf("unknown placement %q", p.placement)
	}

	eng := sim.New(p.seed)
	net := simnet.New(eng, topo, simnet.DefaultConfig())
	if p.faultsEnabled() {
		f := simnet.NewFaults(simnet.FaultConfig{
			DropRate:  p.dropRate,
			DupRate:   p.dupRate,
			JitterMax: p.jitter,
			Seed:      p.faultSeed,
		})
		if p.hasPartition {
			stubs := topo.StubNodes()
			f.AddPartition(p.partStart, p.partEnd, stubs[:len(stubs)/2])
		}
		net.SetFaults(f)
	}
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		return err
	}
	// checkQuiesced verifies every system invariant at quiescence. Under
	// armed faults some edge is always mid-repair (dropped HELLOs keep
	// raising false crash alarms), so the check lifts the faults, lets the
	// repairs converge, verifies, and re-arms the same layer (its counters
	// keep accumulating).
	checkQuiesced := func() error {
		f := net.Faults()
		if f != nil {
			net.SetFaults(nil)
			// Long enough for failure detection, repair, and one full
			// join-retry cycle for any peer wedged mid-rejoin.
			settle := 6 * cfg.HelloTimeout
			if s := 2 * cfg.JoinTimeout; s > settle {
				settle = s
			}
			sys.Settle(settle)
		}
		err := sys.CheckInvariants()
		if f != nil {
			net.SetFaults(f)
		}
		return err
	}
	if tr.Enabled() {
		net.SetTracer(tr)
		sys.SetTracer(tr)
	}
	// The registry exists up front so -hist can record lookup/store
	// histograms while the run executes; the manifest snapshot at the end
	// reuses it. Recording never feeds back into the simulation (no
	// randomness, no extra clock reads), so the report above these added
	// percentile lines stays byte-identical with -hist on or off.
	var reg *obs.Registry
	if p.hist || rec != nil {
		reg = obs.NewRegistry()
	}
	if p.hist {
		sys.SetMetrics(reg)
	}

	fmt.Fprintf(w, "building %d peers (ps=%.2f δ=%d ttl=%d placement=%s)...\n", p.n, p.ps, p.delta, p.ttl, cfg.Placement)
	var caps []float64
	if p.hetero {
		caps = workload.CapacityClasses(p.n)
	}
	var ints []int
	if p.interests > 0 {
		ints = make([]int, p.n)
		for i := range ints {
			ints[i] = i % p.interests
		}
	}
	peers, joins, err := sys.BuildPopulation(core.PopulationOpts{N: p.n, Capacities: caps, Interests: ints})
	if err != nil {
		return err
	}
	sys.Settle(10 * sim.Second)
	if err := checkQuiesced(); err != nil {
		return err
	}

	var joinHops metrics.Summary
	for _, js := range joins {
		joinHops.Add(float64(js.Hops))
	}
	fmt.Fprintf(w, "built: %d t-peers, %d s-peers; join hops %s\n",
		len(sys.TPeers()), len(sys.SPeers()), &joinHops)

	// Insert data.
	var keys []string
	if p.interests > 0 {
		keys = workload.InterestKeys(p.items, p.interests)
	} else {
		keys = workload.Keys(p.items)
	}
	stored := 0
	for i, key := range keys {
		r, err := sys.StoreSync(peers[(i*31)%len(peers)], key, "value-of-"+key)
		if err != nil {
			return err
		}
		if r.OK {
			stored++
		}
	}
	fmt.Fprintf(w, "stored %d/%d items; total items in system: %d\n", stored, p.items, sys.TotalItems())

	if p.crash > 0 {
		before := sys.NumPeers()
		rng := eng.Rand()
		var live []*core.Peer
		for _, pr := range peers {
			if pr.Alive() {
				live = append(live, pr)
			}
		}
		for _, idx := range rng.Perm(len(live))[:int(p.crash*float64(len(live)))] {
			live[idx].Crash()
		}
		sys.Settle(3 * cfg.HelloTimeout)
		fmt.Fprintf(w, "crashed %d of %d peers; %d survive; promotions=%d rejoins=%d\n",
			before-sys.NumPeers(), before, sys.NumPeers(),
			sys.Stats().Promotions, sys.Stats().Rejoins)
		if err := checkQuiesced(); err != nil {
			return fmt.Errorf("invariants after crash phase: %w", err)
		}
		fmt.Fprintf(w, "invariants: all hold after crash recovery\n")
	}

	// Lookups.
	var pick workload.Picker = &workload.UniformPicker{N: len(keys), Rng: eng.Rand()}
	if p.zipf {
		zp, err := workload.NewZipfPicker(eng.Rand(), 1.2, 1, len(keys))
		if err != nil {
			return err
		}
		pick = zp
	}
	var hops, lat, contacts metrics.Summary
	var latSamples []float64
	fails := 0
	for i := 0; i < p.lookups; i++ {
		origin := peers[(i*53)%len(peers)]
		if !origin.Alive() {
			origin = sys.Peers()[i%sys.NumPeers()]
		}
		r, err := sys.LookupSync(origin, keys[pick.Pick()])
		if err != nil {
			return err
		}
		if r.OK {
			ms := float64(r.Latency) / float64(sim.Millisecond)
			hops.Add(float64(r.Hops))
			lat.Add(ms)
			if rec != nil {
				latSamples = append(latSamples, ms)
			}
		} else {
			fails++
		}
		contacts.Add(float64(r.Contacts))
	}
	fmt.Fprintf(w, "\nlookups: %d issued, %d failed (%.2f%%)\n", p.lookups, fails, 100*float64(fails)/float64(p.lookups))
	fmt.Fprintf(w, "  hops     %s\n", &hops)
	fmt.Fprintf(w, "  latency  %s ms\n", &lat)
	fmt.Fprintf(w, "  contacts %s (total connum %d)\n", &contacts, int64(contacts.Mean()*float64(contacts.N())))
	if p.hist {
		hl := reg.Histogram("lookup.latency_us").Snapshot()
		hh := reg.Histogram("lookup.hops").Snapshot()
		const ms = 1000.0
		fmt.Fprintf(w, "  latency percentiles (ms): p50=%.3f p90=%.3f p99=%.3f p999=%.3f max=%.3f n=%d\n",
			hl.P50/ms, hl.P90/ms, hl.P99/ms, hl.P999/ms, hl.Max/ms, hl.Count)
		fmt.Fprintf(w, "  hop percentiles: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
			hh.P50, hh.P90, hh.P99, hh.Max)
	}

	st := sys.Stats()
	if p.caching {
		cached := 0
		for _, pr := range sys.Peers() {
			cached += pr.NumCached()
		}
		fmt.Fprintf(w, "caching: %d surrogate copies, %d pushes, %d cache hits\n",
			cached, st.CachePushes, st.CacheHits)
	}
	ns := net.Stats()
	fmt.Fprintf(w, "\nprotocol counters: %+v\n", st)
	fmt.Fprintf(w, "network: sent=%d delivered=%d dropped=%d bytes=%d\n",
		ns.MessagesSent, ns.MessagesDelivered, ns.MessagesDropped, ns.BytesSent)
	if f := net.Faults(); f != nil {
		fs := f.Stats()
		fmt.Fprintf(w, "faults injected: dropped=%d duplicated=%d jittered=%d partition_dropped=%d\n",
			fs.Dropped, fs.Duplicated, fs.Jittered, fs.PartitionDropped)
	}
	fmt.Fprintf(w, "simulated time: %v; events: %d\n", eng.Now(), eng.Dispatched())

	if rec != nil {
		reg.Counter("sim.events").Add(int64(eng.Dispatched()))
		reg.Gauge("sim.time_s").Set(float64(eng.Now()) / float64(sim.Second))
		reg.Counter("net.sent").Add(int64(ns.MessagesSent))
		reg.Counter("net.delivered").Add(int64(ns.MessagesDelivered))
		reg.Counter("net.dropped").Add(int64(ns.MessagesDropped))
		reg.Counter("net.local_sent").Add(int64(ns.LocalSent))
		reg.Counter("net.bytes").Add(int64(ns.BytesSent))
		reg.Counter("core.floods").Add(int64(st.FloodsSent))
		reg.Counter("core.ring_forwards").Add(int64(st.RingForwards))
		reg.Counter("core.bypass_uses").Add(int64(st.BypassUses))
		reg.Counter("core.cache_hits").Add(int64(st.CacheHits))
		reg.Gauge("core.peers").Set(float64(sys.NumPeers()))
		reg.Gauge("lookup.failed").Set(float64(fails))
		lt := reg.Timer("lookup.latency_ms")
		for _, v := range latSamples {
			lt.Observe(v)
		}
		rec.Point(fmt.Sprintf("ps=%.2f", p.ps), time.Since(wallStart), reg.Snapshot())
	}
	return nil
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be recorded in the repo
// (see BENCH_PR1.json) and diffed mechanically across changes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x | go run ./cmd/benchjson > BENCH_PR1.json
//
// With -baseline it instead acts as a regression guard: it parses the current
// run from stdin, compares the named benchmark's ns/op — and, when both runs
// carry -benchmem statistics, its B/op and allocs/op — against the baseline
// file, and exits non-zero if any current value exceeds the baseline by more
// than -tolerance (a fraction; 0.2 = 20%).
//
//	go test -run='^$' -bench=BenchmarkEventEngine ./internal/sim/ | \
//	    go run ./cmd/benchjson -baseline BENCH_PR1.json -bench BenchmarkEventEngine -tolerance 0.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName-P  N  x ns/op [y B/op  z allocs/op]` line.
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full parsed run, with the host metadata go test prints.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline JSON file (from a previous benchjson run) to compare against")
		benchName = flag.String("bench", "", "benchmark name to compare (with -baseline); empty compares every shared name")
		tolerance = flag.Float64("tolerance", 0.2, "allowed ns/op regression as a fraction (with -baseline)")
	)
	flag.Parse()

	rep, err := parseRun(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		if err := compare(rep, *baseline, *benchName, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseRun reads `go test -bench` output and returns the parsed report.
func parseRun(r io.Reader) (*Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return &rep, nil
}

// compare checks the current run against a recorded baseline and returns an
// error describing the first benchmark whose ns/op, B/op or allocs/op
// regressed past tolerance. The memory metrics are compared only when both
// the current run and the baseline recorded them (-benchmem on both sides).
// When the run repeats a benchmark (go test -count=N), the best (minimum)
// value per name and metric is compared, so scheduler noise on a loaded
// machine does not read as a regression; B/op and allocs/op barely vary
// between repetitions, so the minimum is as good as any.
func compare(cur *Report, baselinePath, benchName string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	best := make(map[string]Benchmark)
	var order []string
	for _, c := range cur.Benchmarks {
		if benchName != "" && c.Name != benchName {
			continue
		}
		v, ok := best[c.Name]
		if !ok {
			order = append(order, c.Name)
			best[c.Name] = c
			continue
		}
		if c.NsPerOp < v.NsPerOp {
			v.NsPerOp = c.NsPerOp
		}
		if c.BytesPerOp < v.BytesPerOp {
			v.BytesPerOp = c.BytesPerOp
		}
		if c.AllocsPerOp < v.AllocsPerOp {
			v.AllocsPerOp = c.AllocsPerOp
		}
		best[c.Name] = v
	}

	checked := 0
	for _, name := range order {
		b, ok := baseBy[name]
		if !ok {
			continue // new benchmark, nothing to regress against
		}
		c := best[name]
		checked++
		limit := b.NsPerOp * (1 + tolerance)
		if c.NsPerOp > limit {
			return fmt.Errorf("%s regressed: %.2f ns/op vs baseline %.2f ns/op (limit %.2f, tolerance %.0f%%)",
				name, c.NsPerOp, b.NsPerOp, limit, tolerance*100)
		}
		fmt.Printf("benchjson: %s ok: %.2f ns/op vs baseline %.2f ns/op (limit %.2f)\n",
			name, c.NsPerOp, b.NsPerOp, limit)
		if b.BytesPerOp > 0 && c.BytesPerOp > 0 {
			memLimit := int64(float64(b.BytesPerOp) * (1 + tolerance))
			if c.BytesPerOp > memLimit {
				return fmt.Errorf("%s regressed: %d B/op vs baseline %d B/op (limit %d, tolerance %.0f%%)",
					name, c.BytesPerOp, b.BytesPerOp, memLimit, tolerance*100)
			}
			fmt.Printf("benchjson: %s ok: %d B/op vs baseline %d B/op (limit %d)\n",
				name, c.BytesPerOp, b.BytesPerOp, memLimit)
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			memLimit := int64(float64(b.AllocsPerOp) * (1 + tolerance))
			if c.AllocsPerOp > memLimit {
				return fmt.Errorf("%s regressed: %d allocs/op vs baseline %d allocs/op (limit %d, tolerance %.0f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp, memLimit, tolerance*100)
			}
			fmt.Printf("benchjson: %s ok: %d allocs/op vs baseline %d allocs/op (limit %d)\n",
				name, c.AllocsPerOp, b.AllocsPerOp, memLimit)
		}
	}
	if checked == 0 {
		if benchName != "" {
			return fmt.Errorf("benchmark %q not found in both current run and %s", benchName, baselinePath)
		}
		return fmt.Errorf("no shared benchmarks between current run and %s", baselinePath)
	}
	return nil
}

// parseLine parses one benchmark result line. Fields appear as
// value-then-unit pairs after the name and run count.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = f[0]
	b.Procs = 1
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(f); i += 2 {
		v := f[i]
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return b, true
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark baselines can be recorded in the repo
// (see BENCH_PR1.json) and diffed mechanically across changes.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x | go run ./cmd/benchjson > BENCH_PR1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkName-P  N  x ns/op [y B/op  z allocs/op]` line.
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full parsed run, with the host metadata go test prints.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line. Fields appear as
// value-then-unit pairs after the name and run count.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = f[0]
	b.Procs = 1
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(f); i += 2 {
		v := f[i]
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return b, true
}

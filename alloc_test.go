package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// Allocation guards for the two hot paths the memory work pinned down: the
// event engine's schedule/dispatch cycle and a full no-churn lookup. The
// guards use testing.AllocsPerRun so a regression fails `go test ./...`
// outright instead of waiting for someone to compare benchmark output.

// TestEventEngineAllocFree pins the engine hot path at zero allocations per
// event: after warm-up every Event comes from the engine's free list and the
// heap slice never grows, so a steady-state schedule/dispatch cycle touches
// no allocator at all.
func TestEventEngineAllocFree(t *testing.T) {
	eng := sim.New(1)
	tick := func() {}
	// Warm-up: grow the heap array and the event pool past anything the
	// measured loop needs.
	for i := 0; i < 1024; i++ {
		eng.After(sim.Time(i%100+1), tick)
	}
	eng.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			eng.After(sim.Time(i%100+1), tick)
		}
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("event engine hot path allocates: %.2f allocs per 64-event cycle, want 0", avg)
	}
}

// TestLookupAllocBudget pins the allocation cost of one no-churn lookup on a
// settled system. The budget is the measured steady state (see BENCH_PR6.json)
// plus headroom for run-to-run variation in routing distance; it exists to
// catch order-of-magnitude regressions (a per-message or per-event allocation
// sneaking back into the path), not single allocations.
func TestLookupAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full system")
	}
	sys, peers := benchSystem(t, 0.7)
	const keys = 64
	for i := 0; i < keys; i++ {
		if _, err := sys.StoreSync(peers[i%len(peers)], fmt.Sprintf("ak-%04d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		if _, err := sys.LookupSync(peers[(i*13)%len(peers)], fmt.Sprintf("ak-%04d", i%keys)); err != nil {
			t.Fatal(err)
		}
		i++
	})
	const budget = 400 // measured ~140 allocs/lookup after the pooling work
	if avg > budget {
		t.Fatalf("lookup allocates %.1f allocs/op, budget %d", avg, budget)
	}
	t.Logf("lookup allocs/op: %.1f (budget %d)", avg, budget)
}

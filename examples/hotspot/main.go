// Hotspot: the paper's future-work caching scheme under a flash crowd. One
// item goes viral — every peer wants it — and without caching its holder
// answers nearly every request. With caching, hot items spill over to
// surrogate peers and the load flattens. The example also shows the prefix
// search extension finding themed content.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	fmt.Println("flash crowd on one item, 300 peers, p_s = 0.8:")
	noCache := flashCrowd(false)
	withCache := flashCrowd(true)

	fmt.Printf("\n%-14s %-18s %-18s %s\n", "mode", "hottest peer", "top-5 peers", "mean latency")
	fmt.Printf("%-14s %-18s %-18s %.0f ms\n", "no caching",
		fmt.Sprintf("%d serves", noCache.max), fmt.Sprintf("%d serves", noCache.top5), noCache.ms)
	fmt.Printf("%-14s %-18s %-18s %.0f ms\n", "caching",
		fmt.Sprintf("%d serves", withCache.max), fmt.Sprintf("%d serves", withCache.top5), withCache.ms)
	fmt.Println("\nthe paper's future-work goal: 'distribute the load among as many peers")
	fmt.Println("as possible so that no peer is overwhelmed' — surrogate copies do exactly that.")
}

type crowdOutcome struct {
	max  uint64
	top5 uint64
	ms   float64
}

func flashCrowd(caching bool) crowdOutcome {
	topo, err := topology.GenerateTransitStub(topology.DefaultConfig(), 11)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(11)
	net := simnet.New(eng, topo, simnet.DefaultConfig())

	cfg := core.DefaultConfig()
	cfg.Ps = 0.8
	cfg.Caching = caching
	cfg.CacheHotThreshold = 6
	cfg.CacheWindow = 120 * sim.Second
	cfg.CacheTTL = 600 * sim.Second
	cfg.CacheFanout = 3
	cfg.LookupTimeout = 5 * sim.Second
	sys, err := core.NewSystem(simnet.NewRuntime(eng, net), cfg, topo.StubNodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	peers, _, err := sys.BuildPopulation(core.PopulationOpts{N: 300})
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle(10 * sim.Second)

	// Some background content plus the item about to go viral.
	for i := 0; i < 200; i++ {
		if _, err := sys.StoreSync(peers[(i*17)%300], fmt.Sprintf("videos/clip%04d.mkv", i), "…"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.StoreSync(peers[0], "videos/the-one-everyone-wants.mkv", "…"); err != nil {
		log.Fatal(err)
	}

	// The flash crowd: three waves of everyone fetching the viral item.
	var totalMs float64
	okCount := 0
	for wave := 0; wave < 3; wave++ {
		for _, p := range peers {
			if p.HasItem("videos/the-one-everyone-wants.mkv") {
				continue
			}
			r, err := sys.LookupSync(p, "videos/the-one-everyone-wants.mkv")
			if err != nil {
				log.Fatal(err)
			}
			if r.OK {
				totalMs += float64(r.Latency) / float64(sim.Millisecond)
				okCount++
			}
		}
	}

	// Who carried the load?
	var serves []uint64
	for _, p := range sys.Peers() {
		serves = append(serves, p.ServeCount())
	}
	sort.Slice(serves, func(i, j int) bool { return serves[i] > serves[j] })
	out := crowdOutcome{max: serves[0], ms: totalMs / float64(okCount)}
	for i := 0; i < 5 && i < len(serves); i++ {
		out.top5 += serves[i]
	}

	// Bonus: the prefix-search extension sees the whole catalog category.
	if caching {
		res, err := sys.SearchSync(peers[42], "videos/", 8, 5*sim.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (prefix search \"videos/\" from one peer found %d items in its s-network)\n", len(res.Items))
	}
	return out
}
